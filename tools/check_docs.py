#!/usr/bin/env python3
"""Documentation consistency checker (CI `docs` job).

Two checks, both over the repository's own files only:

1. Intra-repo markdown links resolve. Every relative `[text](target)` link
   in a tracked *.md file must point at an existing file or directory
   (anchors are stripped; http/https/mailto links are ignored — CI must not
   depend on the network).

2. EXPERIMENTS.md covers every bench target. Each executable declared in
   bench/CMakeLists.txt (`ccq_add_bench(<name> ...)` or a plain
   `add_executable(bench_* ...)`) must be mentioned in EXPERIMENTS.md, so a
   new bench cannot land without its experiment-book section.

3. The manifest schema documented in DESIGN.md §14 matches the keys the
   parser accepts. The key lists in src/harness/manifest.cpp sit between
   `// manifest-keys-begin` / `// manifest-keys-end` markers; the schema
   table in DESIGN.md sits between `<!-- manifest-schema-begin -->` /
   `<!-- manifest-schema-end -->`. A key documented but rejected, or
   accepted but undocumented, fails the build — the schema table cannot
   drift from the parser.

Exit status 0 when clean; 1 with one `file:line: message` diagnostic per
problem otherwise. No dependencies beyond the standard library.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — but not images' URL part differences; images ![alt](t)
# match too, which is what we want. Skips reference-style links (rare here).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
BENCH_DECL_RE = re.compile(
    r"^\s*(?:ccq_add_bench|add_executable)\s*\(\s*(bench_[A-Za-z0-9_]+)",
    re.MULTILINE,
)
# Fenced code blocks: links inside them are examples, not navigation.
FENCE_RE = re.compile(r"^(```|~~~)")


def tracked_markdown() -> list[Path]:
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout
        # Tracked-but-deleted files still show up in ls-files; skip them.
        files = [REPO / line for line in out.splitlines()
                 if line and (REPO / line).exists()]
    except (OSError, subprocess.CalledProcessError):
        files = [p for p in REPO.rglob("*.md")
                 if ".git" not in p.parts and "build" not in p.parts]
    return sorted(files)


def check_links(md: Path) -> list[str]:
    problems = []
    in_fence = False
    for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(),
                                  start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(REPO)}:{lineno}: broken link "
                    f"'{target}' (resolved to {resolved})"
                )
    return problems


def check_bench_coverage() -> list[str]:
    cmake = REPO / "bench" / "CMakeLists.txt"
    book = REPO / "EXPERIMENTS.md"
    problems = []
    if not book.exists():
        return [f"{cmake.relative_to(REPO)}:1: EXPERIMENTS.md is missing"]
    targets = BENCH_DECL_RE.findall(cmake.read_text(encoding="utf-8"))
    if not targets:
        return [f"{cmake.relative_to(REPO)}:1: no bench targets found "
                "(checker regex out of date?)"]
    text = book.read_text(encoding="utf-8")
    for t in sorted(set(targets)):
        if t not in text:
            problems.append(
                f"EXPERIMENTS.md:1: bench target '{t}' (declared in "
                f"bench/CMakeLists.txt) has no experiment-book entry"
            )
    return problems


def _between(text: str, begin: str, end: str, where: str) -> tuple[str, int]:
    """Return (slice, start-line) of text between two marker lines."""
    b, e = text.find(begin), text.find(end)
    if b < 0 or e < 0 or e < b:
        raise ValueError(f"{where}: markers '{begin}' / '{end}' not found")
    return text[b + len(begin):e], text[:b].count("\n") + 1


def check_manifest_schema() -> list[str]:
    cpp_path = REPO / "src" / "harness" / "manifest.cpp"
    design_path = REPO / "DESIGN.md"
    try:
        cpp_block, cpp_line = _between(
            cpp_path.read_text(encoding="utf-8"),
            "// manifest-keys-begin", "// manifest-keys-end",
            "src/harness/manifest.cpp")
        md_block, md_line = _between(
            design_path.read_text(encoding="utf-8"),
            "<!-- manifest-schema-begin -->", "<!-- manifest-schema-end -->",
            "DESIGN.md")
    except (OSError, ValueError) as exc:
        return [f"check_docs: manifest-schema check unavailable: {exc}"]
    accepted = set(re.findall(r'"([a-z_]+)"', cpp_block))
    # Schema-table rows document one key per row: | `key` | type | ...
    documented = set(re.findall(r"^\|\s*`([a-z_]+)`", md_block, re.MULTILINE))
    problems = []
    for key in sorted(documented - accepted):
        problems.append(
            f"DESIGN.md:{md_line}: manifest key '{key}' is documented in "
            f"§14 but src/harness/manifest.cpp does not accept it")
    for key in sorted(accepted - documented):
        problems.append(
            f"src/harness/manifest.cpp:{cpp_line}: manifest key '{key}' is "
            f"accepted by the parser but undocumented in DESIGN.md §14")
    return problems


def main() -> int:
    problems = []
    for md in tracked_markdown():
        problems.extend(check_links(md))
    problems.extend(check_bench_coverage())
    problems.extend(check_manifest_schema())
    for p in problems:
        print(p)
    if problems:
        print(f"\ncheck_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
