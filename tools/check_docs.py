#!/usr/bin/env python3
"""Documentation consistency checker (CI `docs` job).

Two checks, both over the repository's own files only:

1. Intra-repo markdown links resolve. Every relative `[text](target)` link
   in a tracked *.md file must point at an existing file or directory
   (anchors are stripped; http/https/mailto links are ignored — CI must not
   depend on the network).

2. EXPERIMENTS.md covers every bench target. Each executable declared in
   bench/CMakeLists.txt (`ccq_add_bench(<name> ...)` or a plain
   `add_executable(bench_* ...)`) must be mentioned in EXPERIMENTS.md, so a
   new bench cannot land without its experiment-book section.

Exit status 0 when clean; 1 with one `file:line: message` diagnostic per
problem otherwise. No dependencies beyond the standard library.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — but not images' URL part differences; images ![alt](t)
# match too, which is what we want. Skips reference-style links (rare here).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
BENCH_DECL_RE = re.compile(
    r"^\s*(?:ccq_add_bench|add_executable)\s*\(\s*(bench_[A-Za-z0-9_]+)",
    re.MULTILINE,
)
# Fenced code blocks: links inside them are examples, not navigation.
FENCE_RE = re.compile(r"^(```|~~~)")


def tracked_markdown() -> list[Path]:
    try:
        out = subprocess.run(
            ["git", "ls-files", "*.md", "**/*.md"],
            cwd=REPO, capture_output=True, text=True, check=True,
        ).stdout
        # Tracked-but-deleted files still show up in ls-files; skip them.
        files = [REPO / line for line in out.splitlines()
                 if line and (REPO / line).exists()]
    except (OSError, subprocess.CalledProcessError):
        files = [p for p in REPO.rglob("*.md")
                 if ".git" not in p.parts and "build" not in p.parts]
    return sorted(files)


def check_links(md: Path) -> list[str]:
    problems = []
    in_fence = False
    for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(),
                                  start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(REPO)}:{lineno}: broken link "
                    f"'{target}' (resolved to {resolved})"
                )
    return problems


def check_bench_coverage() -> list[str]:
    cmake = REPO / "bench" / "CMakeLists.txt"
    book = REPO / "EXPERIMENTS.md"
    problems = []
    if not book.exists():
        return [f"{cmake.relative_to(REPO)}:1: EXPERIMENTS.md is missing"]
    targets = BENCH_DECL_RE.findall(cmake.read_text(encoding="utf-8"))
    if not targets:
        return [f"{cmake.relative_to(REPO)}:1: no bench targets found "
                "(checker regex out of date?)"]
    text = book.read_text(encoding="utf-8")
    for t in sorted(set(targets)):
        if t not in text:
            problems.append(
                f"EXPERIMENTS.md:1: bench target '{t}' (declared in "
                f"bench/CMakeLists.txt) has no experiment-book entry"
            )
    return problems


def main() -> int:
    problems = []
    for md in tracked_markdown():
        problems.extend(check_links(md))
    problems.extend(check_bench_coverage())
    for p in problems:
        print(p)
    if problems:
        print(f"\ncheck_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
