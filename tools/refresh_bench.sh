#!/usr/bin/env bash
# Regenerate every committed perf baseline in one command.
#
# Rebuilds the Release tree and reruns each JSON-writing bench with its
# default sweep, rewriting the BENCH_*.json files at the repo root:
#
#   BENCH_routing.json    bench_routing     (plane + backend tables)
#   BENCH_exchange.json   bench_exchange    (flat vs legacy plane)
#   BENCH_kernels.json    bench_kernels     (local-compute kernels)
#   BENCH_chaos.json      bench_chaos_verifiers (soundness campaign)
#   BENCH_sharding.json   bench_sharding    (owner-computes backend)
#   BENCH_mm_sparse.json  bench_mm_sparse   (sparse vs dense MM)
#   BENCH_matrix.json     bench_matrix      (scenario matrix, default manifest)
#   BENCH_service.json    bench_service     (ccqd daemon, warm vs cold load)
#
# Every bench self-verifies (fatal on any result divergence), so a baseline
# refresh cannot silently bake in a correctness regression. Each bench runs
# under a guard that names the culprit and aborts on the first failure —
# a partial refresh never masquerades as a complete one. Run from anywhere;
# writes relative to the repo root.
#
# Usage: refresh_bench.sh [--only=<bench>]...
#   --only=<bench>  refresh only the named bench (repeatable; must be one of
#                   the BENCHES below — an unknown name aborts before
#                   anything is built or overwritten)
#
# After refreshing, sanity-check the new matrix baseline against itself:
#   python3 tools/check_trajectory.py --baseline BENCH_matrix.json \
#       --current BENCH_matrix.json

set -uo pipefail
cd "$(dirname "$0")/.."

BUILD=build-rel
BENCHES=(
  bench_routing bench_exchange bench_kernels bench_chaos_verifiers
  bench_sharding bench_mm_sparse bench_matrix bench_service
)

# --only=<bench> selects a subset; the selection is validated against
# BENCHES up front so a typo aborts instead of silently refreshing nothing.
ONLY=()
for arg in "$@"; do
  case "$arg" in
    --only=*)
      sel="${arg#--only=}"
      known=0
      for b in "${BENCHES[@]}"; do
        [[ "$b" == "$sel" ]] && known=1
      done
      if [[ $known -eq 0 ]]; then
        echo "refresh_bench: unknown bench '$sel' (choose from:" \
             "${BENCHES[*]})" >&2
        exit 1
      fi
      ONLY+=("$sel")
      ;;
    *)
      echo "usage: $0 [--only=<bench>]..." >&2
      exit 1
      ;;
  esac
done

# selected <name> — true when <name> should be refreshed this run.
selected() {
  [[ ${#ONLY[@]} -eq 0 ]] && return 0
  local b
  for b in "${ONLY[@]}"; do
    [[ "$b" == "$1" ]] && return 0
  done
  return 1
}

TARGETS=()
for b in "${BENCHES[@]}"; do
  selected "$b" && TARGETS+=("$b")
done

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release || {
  echo "refresh_bench: FAILED during cmake configure" >&2; exit 1; }
cmake --build "$BUILD" -j --target "${TARGETS[@]}" || {
  echo "refresh_bench: FAILED during build" >&2; exit 1; }

# Run one bench (skipping it when deselected by --only); on failure, name it
# and abort so nobody trusts a half-refreshed set of baselines.
run_bench() {
  local name=$1; shift
  selected "$name" || return 0
  echo "=== $name $*"
  if ! ./"$BUILD"/bench/"$name" "$@"; then
    echo >&2
    echo "refresh_bench: FAILED in $name — baselines are NOT fully" \
         "refreshed; fix $name before committing any BENCH_*.json" >&2
    exit 1
  fi
}

run_bench bench_routing
run_bench bench_exchange
run_bench bench_kernels
run_bench bench_chaos_verifiers
run_bench bench_sharding
run_bench bench_mm_sparse
run_bench bench_matrix --manifest=bench/manifests/default.json --check \
  --out=BENCH_matrix.json
run_bench bench_service --check --out=BENCH_service.json

echo
echo "refreshed:"
ls -l BENCH_*.json
