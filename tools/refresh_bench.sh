#!/usr/bin/env bash
# Regenerate every committed perf baseline in one command.
#
# Rebuilds the Release tree and reruns each JSON-writing bench with its
# default sweep, rewriting the BENCH_*.json files at the repo root:
#
#   BENCH_routing.json    bench_routing     (plane + backend tables)
#   BENCH_exchange.json   bench_exchange    (flat vs legacy plane)
#   BENCH_kernels.json    bench_kernels     (local-compute kernels)
#   BENCH_chaos.json      bench_chaos_verifiers (soundness campaign)
#   BENCH_sharding.json   bench_sharding    (owner-computes backend)
#   BENCH_mm_sparse.json  bench_mm_sparse   (sparse vs dense MM)
#
# Every bench self-verifies (fatal on any result divergence), so a baseline
# refresh cannot silently bake in a correctness regression. Run from
# anywhere; writes relative to the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-rel
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j --target \
  bench_routing bench_exchange bench_kernels bench_chaos_verifiers \
  bench_sharding bench_mm_sparse

./"$BUILD"/bench/bench_routing
./"$BUILD"/bench/bench_exchange
./"$BUILD"/bench/bench_kernels
./"$BUILD"/bench/bench_chaos_verifiers
./"$BUILD"/bench/bench_sharding
./"$BUILD"/bench/bench_mm_sparse

echo
echo "refreshed:"
ls -l BENCH_*.json
