#!/usr/bin/env python3
"""Perf-trajectory gate over BENCH_matrix.json (CI `bench-smoke` job).

Compares a freshly measured scenario matrix against the committed baseline
and exits non-zero on any regression:

* **Rounds** (and messages/bits) are deterministic model quantities — any
  increase over the baseline for the same cell id is a hard failure, on any
  machine. A *decrease* is reported as an improvement (refresh the baseline
  to lock it in).

* **Wall-clock** is machine-shaped, so the default mode (`normalized`)
  first estimates the machine-speed ratio as the median of
  wall_now/wall_base over all shared cells, then fails any cell slower
  than `median * (1 + tolerance)` (default 15%). A uniformly slower
  machine passes; one cell regressing against the fleet does not.
  `--wall-mode=absolute` compares raw times (same-machine trajectories,
  e.g. tools/refresh_bench.sh users); `--wall-mode=off` disables the gate.
  Cells whose baseline time is under `--wall-min-ms` (default 2 ms) are
  excluded from the wall gate — sub-millisecond timings cannot support a
  15% bound — but their rounds/messages/bits still gate exactly.

Cells present only in the baseline are reported but do not fail (CI runs
the smoke manifest, a subset of the default grid); cells present only in
the current run are new scenarios awaiting a baseline refresh.

With `--service` the gate reads BENCH_service.json (bench_service: the
ccqd daemon bench) instead, keyed by (mode, clients). Throughput
(jobs_per_sec) and tail latency (p99_ms) are machine-shaped, so both are
normalized to the median current/baseline ratio across configs — a config
falling behind the fleet by more than `--service-tolerance` fails, a
uniformly slower machine does not. The warm-over-cold invariant (warm
jobs/sec strictly above cold at every shared client count) is checked
within the *current* run, unnormalized: it is the service's reason to
exist, not a machine artifact.

`--selftest` exercises the gate against synthetic fixtures — including the
"baseline round count hand-lowered" case — and exits non-zero if the gate
fails to fire. No dependencies beyond the standard library.
"""

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_cells(path):
    """Parse a BENCH_matrix.json array into {cell_id: row}."""
    try:
        rows = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_trajectory: cannot read {path}: {e}")
    if not isinstance(rows, list):
        sys.exit(f"check_trajectory: {path}: expected a JSON array")
    cells = {}
    for row in rows:
        cid = row.get("cell")
        if cid is None:
            continue  # non-cell rows (e.g. appended phase tables)
        if cid in cells:
            sys.exit(f"check_trajectory: {path}: duplicate cell id '{cid}'")
        cells[cid] = row
    if not cells:
        sys.exit(f"check_trajectory: {path}: no cell rows found")
    return cells


def median(values):
    s = sorted(values)
    mid = len(s) // 2
    return s[mid] if len(s) % 2 else (s[mid - 1] + s[mid]) / 2


def compare(baseline, current, wall_mode, tolerance, wall_min_ms=0.0):
    """Returns (failures, notes): lists of diagnostic strings."""
    failures, notes = [], []
    shared = [cid for cid in current if cid in baseline]
    only_base = [cid for cid in baseline if cid not in current]
    only_cur = [cid for cid in current if cid not in baseline]
    if only_base:
        notes.append(
            f"{len(only_base)} baseline cell(s) not in this run "
            f"(subset manifest?): {', '.join(sorted(only_base)[:3])}"
            f"{', ...' if len(only_base) > 3 else ''}")
    if only_cur:
        notes.append(
            f"{len(only_cur)} new cell(s) with no baseline yet "
            f"(run tools/refresh_bench.sh to pin them): "
            f"{', '.join(sorted(only_cur)[:3])}"
            f"{', ...' if len(only_cur) > 3 else ''}")
    if not shared:
        failures.append("no cells in common with the baseline — the gate "
                        "cannot certify anything")
        return failures, notes

    # Deterministic quantities: exact, machine-independent.
    for cid in shared:
        base, cur = baseline[cid], current[cid]
        for field in ("rounds", "messages", "bits"):
            b, c = base.get(field), cur.get(field)
            if b is None or c is None:
                continue
            if c > b:
                failures.append(
                    f"{cid}: {field} regressed {b} -> {c}")
            elif c < b:
                notes.append(
                    f"{cid}: {field} improved {b} -> {c} "
                    f"(refresh the baseline to lock it in)")

    # Wall clock: machine-shaped, gate per --wall-mode.
    if wall_mode != "off":
        ratios = {}
        skipped = 0
        for cid in shared:
            b = baseline[cid].get("wall_ms")
            c = current[cid].get("wall_ms")
            if b is None or c is None or b <= 0:
                continue
            if b < wall_min_ms:
                skipped += 1  # below the noise floor: rounds still gate it
                continue
            ratios[cid] = c / b
        if skipped:
            notes.append(f"{skipped} cell(s) under the {wall_min_ms:g} ms "
                         f"noise floor excluded from the wall gate")
        if ratios:
            scale = median(ratios.values()) if wall_mode == "normalized" else 1.0
            bound = scale * (1 + tolerance)
            for cid, r in sorted(ratios.items()):
                if r > bound:
                    failures.append(
                        f"{cid}: wall-clock regressed "
                        f"{baseline[cid]['wall_ms']:.2f} ms -> "
                        f"{current[cid]['wall_ms']:.2f} ms "
                        f"(x{r:.2f} vs allowed x{bound:.2f}, "
                        f"machine scale x{scale:.2f})")
    return failures, notes


def load_service(path):
    """Parse a BENCH_service.json array into {"mode/clients=N": row}."""
    try:
        rows = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_trajectory: cannot read {path}: {e}")
    if not isinstance(rows, list):
        sys.exit(f"check_trajectory: {path}: expected a JSON array")
    configs = {}
    for row in rows:
        mode, clients = row.get("mode"), row.get("clients")
        if mode is None or clients is None:
            continue
        key = f"{mode}/clients={clients}"
        if key in configs:
            sys.exit(f"check_trajectory: {path}: duplicate config '{key}'")
        configs[key] = row
    if not configs:
        sys.exit(f"check_trajectory: {path}: no service config rows found")
    return configs


def compare_service(baseline, current, tolerance):
    """Service gate: (failures, notes) over BENCH_service.json configs."""
    failures, notes = [], []
    shared = [k for k in current if k in baseline]
    only_base = [k for k in baseline if k not in current]
    only_cur = [k for k in current if k not in baseline]
    if only_base:
        notes.append(f"{len(only_base)} baseline config(s) not in this run: "
                     f"{', '.join(sorted(only_base))}")
    if only_cur:
        notes.append(f"{len(only_cur)} new config(s) with no baseline yet: "
                     f"{', '.join(sorted(only_cur))}")

    # Warm-over-cold: checked within the current run, per client count.
    # This is the acceptance invariant — the warm engine cache must buy
    # actual throughput — so it holds on any machine, unnormalized.
    clients_seen = sorted({row["clients"] for row in current.values()})
    for n in clients_seen:
        warm = current.get(f"warm/clients={n}")
        cold = current.get(f"cold/clients={n}")
        if warm is None or cold is None:
            continue
        w, c = warm.get("jobs_per_sec", 0), cold.get("jobs_per_sec", 0)
        if not w > c:
            failures.append(
                f"warm/clients={n}: warm throughput {w:.1f} jobs/sec not "
                f"above cold {c:.1f} — the engine cache buys nothing")

    # Rejected-then-hung detector: the bench answers every job or fails
    # itself, so a nonzero error count in a committed/current file is a
    # hard failure, not a perf matter.
    for key, row in sorted(current.items()):
        if row.get("errors", 0):
            failures.append(f"{key}: {row['errors']} unanswered/errored "
                            f"job(s) in a bench run")

    if not shared:
        if baseline:
            failures.append("no service configs in common with the baseline")
        return failures, notes

    # Throughput: normalized to the median machine-speed ratio, like the
    # matrix wall gate. Falling behind the fleet fails; a slow machine
    # does not.
    ratios = {}
    for key in shared:
        b = baseline[key].get("jobs_per_sec")
        c = current[key].get("jobs_per_sec")
        if b and c and b > 0:
            ratios[key] = c / b
    if ratios:
        scale = median(ratios.values())
        floor = scale * (1 - tolerance)
        for key, r in sorted(ratios.items()):
            if r < floor:
                failures.append(
                    f"{key}: jobs/sec regressed "
                    f"{baseline[key]['jobs_per_sec']:.1f} -> "
                    f"{current[key]['jobs_per_sec']:.1f} "
                    f"(x{r:.2f} vs allowed x{floor:.2f}, "
                    f"machine scale x{scale:.2f})")

    # p99 latency: same normalization, upper-bounded. p99 over a short
    # closed loop is the noisiest statistic here, so it shares the
    # (generous) service tolerance rather than the matrix wall tolerance.
    ratios = {}
    for key in shared:
        b = baseline[key].get("p99_ms")
        c = current[key].get("p99_ms")
        if b and c and b > 0:
            ratios[key] = c / b
    if ratios:
        scale = median(ratios.values())
        bound = scale * (1 + tolerance)
        for key, r in sorted(ratios.items()):
            if r > bound:
                failures.append(
                    f"{key}: p99 latency regressed "
                    f"{baseline[key]['p99_ms']:.3f} ms -> "
                    f"{current[key]['p99_ms']:.3f} ms "
                    f"(x{r:.2f} vs allowed x{bound:.2f}, "
                    f"machine scale x{scale:.2f})")
    return failures, notes


def run_service_gate(args):
    baseline = load_service(args.baseline)
    current = load_service(args.current)
    failures, notes = compare_service(baseline, current,
                                      args.service_tolerance)
    for n in notes:
        print(f"note: {n}")
    for f in failures:
        print(f"FAIL: {f}")
    shared = len([k for k in current if k in baseline])
    if failures:
        print(f"\ncheck_trajectory: {len(failures)} service regression(s) "
              f"across {shared} shared config(s)", file=sys.stderr)
        return 1
    print(f"check_trajectory: OK ({shared} service config(s) within "
          f"trajectory, warm > cold holds)")
    return 0


def run_gate(args):
    baseline = load_cells(args.baseline)
    current = load_cells(args.current)
    failures, notes = compare(baseline, current, args.wall_mode,
                              args.wall_tolerance, args.wall_min_ms)
    for n in notes:
        print(f"note: {n}")
    for f in failures:
        print(f"FAIL: {f}")
    shared = len([c for c in current if c in baseline])
    if failures:
        print(f"\ncheck_trajectory: {len(failures)} regression(s) across "
              f"{shared} shared cell(s)", file=sys.stderr)
        return 1
    print(f"check_trajectory: OK ({shared} cell(s) within trajectory)")
    return 0


def selftest():
    """The gate must fire on synthetic regressions and stay quiet on noise."""
    def cell(cid, rounds, wall):
        return {"cell": cid, "rounds": rounds, "messages": rounds * 10,
                "bits": rounds * 100, "wall_ms": wall}

    base = {r["cell"]: r for r in
            [cell("a/x/n=64", 8, 1.0), cell("b/x/n=64", 12, 2.0),
             cell("c/x/n=64", 3, 4.0)]}
    same = {cid: dict(row) for cid, row in base.items()}

    checks = []

    f, _ = compare(base, same, "normalized", 0.15)
    checks.append(("identical runs pass", not f))

    # The acceptance demonstration: hand-lower a baseline round count and
    # the gate must fail (the current run now "regresses" above it).
    lowered = {cid: dict(row) for cid, row in base.items()}
    lowered["b/x/n=64"]["rounds"] = 11
    f, _ = compare(lowered, same, "off", 0.15)
    checks.append(("hand-lowered baseline rounds fail", any(
        "rounds regressed 11 -> 12" in x for x in f)))

    worse = {cid: dict(row) for cid, row in same.items()}
    worse["a/x/n=64"]["rounds"] = 9
    f, _ = compare(base, worse, "off", 0.15)
    checks.append(("round regression fails", any(
        "rounds regressed 8 -> 9" in x for x in f)))

    # Uniformly 3x slower machine: normalized mode passes, absolute fails.
    slow = {cid: dict(row, wall_ms=row["wall_ms"] * 3) for cid, row
            in same.items()}
    f, _ = compare(base, slow, "normalized", 0.15)
    checks.append(("uniform slowdown passes normalized", not f))
    f, _ = compare(base, slow, "absolute", 0.15)
    checks.append(("uniform slowdown fails absolute", len(f) == 3))

    # One cell 2x slower than the fleet: normalized mode catches it.
    skew = {cid: dict(row) for cid, row in same.items()}
    skew["c/x/n=64"]["wall_ms"] *= 2
    f, _ = compare(base, skew, "normalized", 0.15)
    checks.append(("single-cell wall regression fails normalized", any(
        "c/x/n=64: wall-clock regressed" in x for x in f)))

    # Noise floor: a sub-floor cell's wall jitter is ignored, but its
    # rounds still gate exactly.
    jitter = {cid: dict(row) for cid, row in same.items()}
    jitter["a/x/n=64"]["wall_ms"] *= 2  # baseline 1.0 ms < 2 ms floor
    f, notes = compare(base, jitter, "normalized", 0.15, wall_min_ms=2.0)
    checks.append(("sub-floor wall jitter ignored",
                   not f and any("noise floor" in n for n in notes)))
    jitter["a/x/n=64"]["rounds"] = 9
    f, _ = compare(base, jitter, "normalized", 0.15, wall_min_ms=2.0)
    checks.append(("sub-floor cell rounds still gate", any(
        "rounds regressed 8 -> 9" in x for x in f)))

    # Subset run (smoke manifest): missing baseline cells are a note only.
    subset = {"a/x/n=64": dict(base["a/x/n=64"])}
    f, notes = compare(base, subset, "normalized", 0.15)
    checks.append(("subset run passes with a note",
                   not f and any("not in this run" in n for n in notes)))

    # --- service gate fixtures (BENCH_service.json shape) ---
    def svc(mode, clients, jps, p99):
        return {"mode": mode, "clients": clients, "jobs_per_sec": jps,
                "p99_ms": p99, "errors": 0}

    sbase = {f"{r['mode']}/clients={r['clients']}": r for r in [
        svc("cold", 1, 100.0, 12.0), svc("cold", 8, 150.0, 60.0),
        svc("warm", 1, 300.0, 4.0), svc("warm", 8, 450.0, 20.0)]}
    ssame = {k: dict(row) for k, row in sbase.items()}

    f, _ = compare_service(sbase, ssame, 0.40)
    checks.append(("identical service runs pass", not f))

    # Uniformly half-speed machine: normalized gate stays quiet.
    shalf = {k: dict(row, jobs_per_sec=row["jobs_per_sec"] / 2,
                     p99_ms=row["p99_ms"] * 2) for k, row in ssame.items()}
    f, _ = compare_service(sbase, shalf, 0.40)
    checks.append(("uniform service slowdown passes", not f))

    # One config falling behind the fleet: throughput gate fires.
    sdrop = {k: dict(row) for k, row in ssame.items()}
    sdrop["warm/clients=8"]["jobs_per_sec"] = 200.0
    f, _ = compare_service(sbase, sdrop, 0.40)
    checks.append(("single-config jobs/sec drop fails", any(
        "warm/clients=8: jobs/sec regressed" in x for x in f)))

    # One config's tail latency blowing up: p99 gate fires.
    stail = {k: dict(row) for k, row in ssame.items()}
    stail["cold/clients=8"]["p99_ms"] = 300.0
    f, _ = compare_service(sbase, stail, 0.40)
    checks.append(("single-config p99 blowup fails", any(
        "cold/clients=8: p99 latency regressed" in x for x in f)))

    # Warm no faster than cold in the current run: invariant fires even
    # if the baseline had the same (broken) shape.
    sflat = {k: dict(row) for k, row in ssame.items()}
    sflat["warm/clients=8"]["jobs_per_sec"] = sflat["cold/clients=8"][
        "jobs_per_sec"]
    f, _ = compare_service(sflat, sflat, 0.40)
    checks.append(("warm <= cold fails", any(
        "not above cold" in x for x in f)))

    # Errored jobs in a bench run are a hard failure, not noise.
    serr = {k: dict(row) for k, row in ssame.items()}
    serr["warm/clients=1"]["errors"] = 2
    f, _ = compare_service(sbase, serr, 0.40)
    checks.append(("errored service jobs fail", any(
        "unanswered/errored" in x for x in f)))

    ok = True
    for name, passed in checks:
        print(f"  selftest: {'ok' if passed else 'FAILED'} — {name}")
        ok &= passed
    print(f"check_trajectory --selftest: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default=str(REPO / "BENCH_matrix.json"),
                    help="committed baseline (default: repo BENCH_matrix.json)")
    ap.add_argument("--current", default="BENCH_matrix.current.json",
                    help="freshly measured matrix to gate")
    ap.add_argument("--wall-tolerance", type=float, default=0.15,
                    help="allowed wall-clock slack (default 0.15 = 15%%)")
    ap.add_argument("--wall-mode", choices=("normalized", "absolute", "off"),
                    default="normalized",
                    help="wall gate: normalized to the median machine-speed "
                         "ratio (default), absolute, or off")
    ap.add_argument("--wall-min-ms", type=float, default=2.0,
                    help="exclude cells whose baseline wall time is below "
                         "this floor from the wall gate (default 2 ms)")
    ap.add_argument("--service", action="store_true",
                    help="gate BENCH_service.json (ccqd daemon bench) "
                         "instead of the scenario matrix")
    ap.add_argument("--service-tolerance", type=float, default=0.40,
                    help="allowed normalized jobs/sec + p99 slack for "
                         "--service (default 0.40 = 40%%)")
    ap.add_argument("--selftest", action="store_true",
                    help="verify the gate fires on synthetic regressions")
    args = ap.parse_args()
    if args.selftest:
        return selftest()
    if args.service:
        return run_service_gate(args)
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main())
