#!/usr/bin/env python3
"""Command-line client for ccqd, the clique measurement daemon.

Speaks the length-prefixed strict-JSON protocol of src/service/protocol.hpp
(DESIGN.md section 15): every frame is a 4-byte big-endian payload length
followed by that many bytes of JSON. One request, one response.

Usage:
  ccqd_client.py --socket /tmp/ccqd.sock ping
  ccqd_client.py --socket /tmp/ccqd.sock stats
  ccqd_client.py --tcp 9178 submit job.json
  ccqd_client.py --socket /tmp/ccqd.sock submit - <<'EOF'
  {"algorithm": "routing_balanced", "family": "gnp", "p": 0.25,
   "n": 64, "plane": "flat", "backend": "pooled", "chaos": false}
  EOF
  ccqd_client.py --socket /tmp/ccqd.sock shutdown

The submit argument is a path to a JSON file holding exactly one
scenario-matrix cell (the manifest cell schema of DESIGN.md section 14 with
no axis arrays), or '-' for stdin. Exit status: 0 on a non-error response,
1 on an error response (the error is printed), 2 on usage errors.
"""

import argparse
import json
import socket
import struct
import sys

MAX_FRAME_BYTES = 1 << 20


def read_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError(
                "connection closed mid-frame (%d of %d bytes)" % (len(buf), n)
            )
        buf += chunk
    return buf


def request(sock, body):
    payload = json.dumps(body).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError("request exceeds %d bytes" % MAX_FRAME_BYTES)
    sock.sendall(struct.pack(">I", len(payload)) + payload)
    (length,) = struct.unpack(">I", read_exact(sock, 4))
    if length > MAX_FRAME_BYTES:
        raise ConnectionError("response frame oversized (%d bytes)" % length)
    return json.loads(read_exact(sock, length).decode("utf-8"))


def connect(args):
    if args.tcp is not None:
        sock = socket.create_connection(("127.0.0.1", args.tcp))
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(args.socket)
    return sock


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    where = parser.add_mutually_exclusive_group()
    where.add_argument(
        "--socket", default="/tmp/ccqd.sock", help="Unix socket path"
    )
    where.add_argument("--tcp", type=int, help="connect to 127.0.0.1:PORT")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("ping", help="liveness check")
    sub.add_parser("stats", help="daemon counters")
    sub.add_parser("shutdown", help="graceful drain")
    submit = sub.add_parser("submit", help="run one job")
    submit.add_argument("job", help="path to a one-cell job JSON, or '-'")
    args = parser.parse_args()

    if args.command == "submit":
        text = (
            sys.stdin.read()
            if args.job == "-"
            else open(args.job, encoding="utf-8").read()
        )
        try:
            job = json.loads(text)
        except json.JSONDecodeError as e:
            parser.error("job is not valid JSON: %s" % e)
        body = {"type": "submit", "job": job}
    else:
        body = {"type": args.command}

    try:
        with connect(args) as sock:
            response = request(sock, body)
    except (OSError, ConnectionError) as e:
        print("ccqd_client: %s" % e, file=sys.stderr)
        return 1

    print(json.dumps(response, indent=2))
    return 1 if response.get("type") == "error" else 0


if __name__ == "__main__":
    sys.exit(main())
