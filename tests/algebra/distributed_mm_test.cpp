#include "algebra/distributed_mm.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graphalg/common.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

// Local copy of the algorithm selector (the canonical one lives in
// graphalg/apsp.hpp; tests of the algebra layer stay below graphalg).
enum class MmAlgo { kNaiveBroadcast, k3dPartition };

// ---------- entry packing ----------

TEST(EntryPacking, RoundTripPlain) {
  std::vector<BoolSemiring::Value> vals = {1, 0, 1, 1, 0};
  auto bv = pack_entries<BoolSemiring>(
      std::span<const BoolSemiring::Value>(vals), 1);
  EXPECT_EQ(bv.size(), 5u);
  auto back = unpack_entries<BoolSemiring>(bv, 5, 1);
  EXPECT_EQ(back, vals);
}

TEST(EntryPacking, RoundTripMinPlusWithInfinity) {
  using V = MinPlusSemiring::Value;
  std::vector<V> vals = {0, 7, MinPlusSemiring::infinity(), 13};
  auto bv = pack_entries<MinPlusSemiring>(std::span<const V>(vals), 5);
  auto back = unpack_entries<MinPlusSemiring>(bv, 4, 5);
  EXPECT_EQ(back[0], 0u);
  EXPECT_EQ(back[1], 7u);
  EXPECT_EQ(back[2], MinPlusSemiring::infinity());
  EXPECT_EQ(back[3], 13u);
}

TEST(EntryPacking, OverflowRejected) {
  std::vector<I64Ring::Value> vals = {9};
  EXPECT_THROW(
      pack_entries<I64Ring>(std::span<const I64Ring::Value>(vals), 3),
      ModelViolation);
  // MinPlus: finite value colliding with the ∞ code is rejected too.
  std::vector<MinPlusSemiring::Value> mp = {7};
  EXPECT_THROW(
      pack_entries<MinPlusSemiring>(
          std::span<const MinPlusSemiring::Value>(mp), 3),
      ModelViolation);
}

// ---------- distributed products ----------

// Runs both distributed algorithms on random matrices and compares against
// the centralised product.
template <Semiring S>
void check_distributed(NodeId n, unsigned entry_bits, std::uint64_t max_val,
                       std::uint64_t seed) {
  using V = typename S::Value;
  SplitMix64 rng(seed);
  Matrix<V> a(n, n, S::zero()), b(n, n, S::zero());
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = 0; j < n; ++j) {
      a.at(i, j) = static_cast<V>(rng.next_below(max_val));
      b.at(i, j) = static_cast<V>(rng.next_below(max_val));
    }
  const auto expect = mm_naive<S>(a, b);

  for (MmAlgo algo : {MmAlgo::kNaiveBroadcast, MmAlgo::k3dPartition}) {
    PerNode<std::vector<V>> sink(n);
    Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
      std::vector<V> ra(ctx.n()), rb(ctx.n());
      for (NodeId j = 0; j < ctx.n(); ++j) {
        ra[j] = a.at(ctx.id(), j);
        rb[j] = b.at(ctx.id(), j);
      }
      auto rc = algo == MmAlgo::kNaiveBroadcast
                    ? mm_distributed_naive<S>(ctx, ra, rb, entry_bits)
                    : mm_distributed_3d<S>(ctx, ra, rb, entry_bits);
      sink.set(ctx.id(), rc);
      ctx.output(0);
    });
    auto rows = sink.take();
    for (NodeId i = 0; i < n; ++i)
      for (NodeId j = 0; j < n; ++j)
        EXPECT_EQ(rows[i][j], expect.at(i, j))
            << "algo=" << static_cast<int>(algo) << " @" << i << "," << j;
  }
}

TEST(DistributedMM, BooleanMatchesCentralised) {
  check_distributed<BoolSemiring>(12, 1, 2, 100);
  check_distributed<BoolSemiring>(27, 1, 2, 101);  // perfect cube
  check_distributed<BoolSemiring>(16, 1, 2, 102);
}

TEST(DistributedMM, IntegerRingMatchesCentralised) {
  // entry_bits must cover the *partial sums* the 3-D algorithm ships in its
  // reduction step, not just the inputs: ≤ n·v² = 10·9² < 2^10 here.
  check_distributed<I64Ring>(10, 12, 10, 200);
  check_distributed<I64Ring>(8, 12, 10, 201);  // cube
}

TEST(DistributedMM, MinPlusMatchesCentralised) {
  check_distributed<MinPlusSemiring>(14, 6, 30, 300);
}

TEST(DistributedMM, MaxMinMatchesCentralised) {
  check_distributed<MaxMinSemiring>(9, 4, 15, 400);
}

TEST(DistributedMM, TinyCliques) {
  check_distributed<BoolSemiring>(1, 1, 2, 500);
  check_distributed<BoolSemiring>(2, 1, 2, 501);
  check_distributed<BoolSemiring>(3, 1, 2, 502);
}

TEST(DistributedMM, ThreeDCheaperThanNaiveAtScale) {
  // Boolean MM on n = 64: naive broadcasts n bits/node (⌈64/6⌉ = 11
  // rounds); 3-D moves ~3·n^{4/3}/n words ≈ n^{1/3} scaled — measure both.
  const NodeId n = 64;
  SplitMix64 rng(7);
  Matrix<std::uint8_t> a(n, n, 0), b(n, n, 0);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = 0; j < n; ++j) {
      a.at(i, j) = rng.next_bool(0.5);
      b.at(i, j) = rng.next_bool(0.5);
    }
  CostMeter naive_cost, tri_cost;
  for (bool use_3d : {false, true}) {
    auto res = Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
      std::vector<std::uint8_t> ra(n), rb(n);
      for (NodeId j = 0; j < n; ++j) {
        ra[j] = a.at(ctx.id(), j);
        rb[j] = b.at(ctx.id(), j);
      }
      auto rc = use_3d ? mm_distributed_3d<BoolSemiring>(ctx, ra, rb, 1)
                       : mm_distributed_naive<BoolSemiring>(ctx, ra, rb, 1);
      ctx.output(rc[0]);
    });
    (use_3d ? tri_cost : naive_cost) = res.cost;
  }
  // The 3-D algorithm must win on rounds at this size.
  EXPECT_LT(tri_cost.rounds, naive_cost.rounds);
}

}  // namespace
}  // namespace ccq
