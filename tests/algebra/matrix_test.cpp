#include "algebra/matrix.hpp"

#include <gtest/gtest.h>

#include "algebra/mm.hpp"
#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

template <Semiring S>
Matrix<typename S::Value> random_matrix(std::size_t n, std::uint64_t seed,
                                        std::uint64_t max_val) {
  SplitMix64 rng(seed);
  Matrix<typename S::Value> m(n, n, S::zero());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m.at(i, j) = static_cast<typename S::Value>(rng.next_below(max_val));
  return m;
}

TEST(Matrix, IdentityMultiplication) {
  auto a = random_matrix<I64Ring>(7, 1, 100);
  auto id = Matrix<std::int64_t>::identity<I64Ring>(7);
  EXPECT_EQ(mm_naive<I64Ring>(a, id), a);
  EXPECT_EQ(mm_naive<I64Ring>(id, a), a);
}

TEST(Matrix, Transpose) {
  Matrix<int> m(2, 3);
  m.at(0, 2) = 5;
  m.at(1, 0) = 7;
  auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(2, 0), 5);
  EXPECT_EQ(t.at(0, 1), 7);
}

TEST(Matrix, DimensionMismatchThrows) {
  Matrix<std::int64_t> a(2, 3), b(4, 2);
  EXPECT_THROW(mm_naive<I64Ring>(a, b), ModelViolation);
}

TEST(MM, KnownIntegerProduct) {
  Matrix<std::int64_t> a(2, 2), b(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  auto c = mm_naive<I64Ring>(a, b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(MM, BooleanProductIsReachabilityStep) {
  // A = path adjacency; A² has the 2-step pairs.
  Matrix<std::uint8_t> a(4, 4, 0);
  a.at(0, 1) = a.at(1, 2) = a.at(2, 3) = 1;
  auto a2 = mm_naive<BoolSemiring>(a, a);
  EXPECT_EQ(a2.at(0, 2), 1);
  EXPECT_EQ(a2.at(1, 3), 1);
  EXPECT_EQ(a2.at(0, 1), 0);
  EXPECT_EQ(a2.at(0, 3), 0);
}

TEST(MM, MinPlusHandlesInfinity) {
  using V = MinPlusSemiring::Value;
  const V inf = MinPlusSemiring::infinity();
  Matrix<V> a(2, 2, inf);
  a.at(0, 0) = 0;
  a.at(0, 1) = 3;
  a.at(1, 1) = 0;
  auto sq = mm_naive<MinPlusSemiring>(a, a);
  EXPECT_EQ(sq.at(0, 1), 3u);
  EXPECT_EQ(sq.at(1, 0), inf);
}

TEST(MM, BlockedMatchesNaive) {
  SplitMix64 rng(9);
  for (std::size_t n : {1u, 5u, 17u, 33u, 50u}) {
    auto a = random_matrix<I64Ring>(n, rng.next(), 1000);
    auto b = random_matrix<I64Ring>(n, rng.next(), 1000);
    EXPECT_EQ(mm_blocked<I64Ring>(a, b, 8), mm_naive<I64Ring>(a, b)) << n;
  }
}

TEST(MM, BlockedMatchesNaiveOnSemirings) {
  auto a = random_matrix<MinPlusSemiring>(20, 3, 50);
  auto b = random_matrix<MinPlusSemiring>(20, 4, 50);
  EXPECT_EQ(mm_blocked<MinPlusSemiring>(a, b, 7),
            mm_naive<MinPlusSemiring>(a, b));
  auto ba = random_matrix<BoolSemiring>(20, 5, 2);
  auto bb = random_matrix<BoolSemiring>(20, 6, 2);
  EXPECT_EQ(mm_blocked<BoolSemiring>(ba, bb, 7),
            mm_naive<BoolSemiring>(ba, bb));
}

TEST(MM, StrassenMatchesNaive) {
  SplitMix64 rng(11);
  for (std::size_t n : {1u, 2u, 7u, 16u, 31u, 64u, 70u}) {
    auto a = random_matrix<I64Ring>(n, rng.next(), 1000);
    auto b = random_matrix<I64Ring>(n, rng.next(), 1000);
    EXPECT_EQ(mm_strassen<I64Ring>(a, b, 8), mm_naive<I64Ring>(a, b)) << n;
  }
}

TEST(MM, StrassenRectangular) {
  SplitMix64 rng(13);
  Matrix<std::int64_t> a(5, 9), b(9, 3);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 9; ++j)
      a.at(i, j) = static_cast<std::int64_t>(rng.next_below(100));
  for (std::size_t i = 0; i < 9; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      b.at(i, j) = static_cast<std::int64_t>(rng.next_below(100));
  EXPECT_EQ(mm_strassen<I64Ring>(a, b, 2), mm_naive<I64Ring>(a, b));
}

TEST(MM, PowerBySquaring) {
  auto a = random_matrix<I64Ring>(5, 17, 5);
  auto a3 = mm_naive<I64Ring>(mm_naive<I64Ring>(a, a), a);
  EXPECT_EQ(mm_power<I64Ring>(a, 3), a3);
  EXPECT_EQ(mm_power<I64Ring>(a, 1), a);
}

TEST(MM, BooleanClosureIsTransitiveClosure) {
  Graph g = gen::gnp_directed(12, 0.15, 23);
  Matrix<std::uint8_t> adj(12, 12, 0);
  for (NodeId u = 0; u < 12; ++u)
    for (NodeId v = 0; v < 12; ++v)
      if (u != v && g.has_edge(u, v)) adj.at(u, v) = 1;
  auto closure = semiring_closure<BoolSemiring>(adj);
  auto dist = oracle::apsp(g);
  for (NodeId u = 0; u < 12; ++u)
    for (NodeId v = 0; v < 12; ++v)
      EXPECT_EQ(closure.at(u, v) != 0,
                dist[u * 12 + v] != oracle::kInfDist)
          << u << "," << v;
}

TEST(MM, MinPlusClosureIsApsp) {
  Graph g = gen::gnp_weighted(10, 0.3, 9, 29);
  using V = MinPlusSemiring::Value;
  Matrix<V> w(10, 10, MinPlusSemiring::infinity());
  for (const Edge& e : g.edges()) {
    w.at(e.u, e.v) = e.w;
    w.at(e.v, e.u) = e.w;
  }
  auto closure = semiring_closure<MinPlusSemiring>(w);
  auto dist = oracle::apsp(g);
  for (NodeId u = 0; u < 10; ++u)
    for (NodeId v = 0; v < 10; ++v) {
      const auto expect = dist[u * 10 + v];
      if (expect == oracle::kInfDist) {
        EXPECT_GE(closure.at(u, v), MinPlusSemiring::infinity());
      } else {
        EXPECT_EQ(closure.at(u, v), expect);
      }
    }
}

TEST(MM, MaxMinSemiringWidestPath) {
  // Widest path 0→2 via 1: min(5, 4) = 4 beats direct 2.
  using V = MaxMinSemiring::Value;
  Matrix<V> w(3, 3, MaxMinSemiring::zero());
  w.at(0, 1) = 5;
  w.at(1, 2) = 4;
  w.at(0, 2) = 2;
  auto sq = mm_naive<MaxMinSemiring>(w, w);
  EXPECT_EQ(sq.at(0, 2), 4u);
}

TEST(MMProperty, AssociativityOnRandomInputs) {
  SplitMix64 rng(31);
  for (int t = 0; t < 5; ++t) {
    auto a = random_matrix<I64Ring>(8, rng.next(), 50);
    auto b = random_matrix<I64Ring>(8, rng.next(), 50);
    auto c = random_matrix<I64Ring>(8, rng.next(), 50);
    EXPECT_EQ(mm_naive<I64Ring>(mm_naive<I64Ring>(a, b), c),
              mm_naive<I64Ring>(a, mm_naive<I64Ring>(b, c)));
  }
}

}  // namespace
}  // namespace ccq
