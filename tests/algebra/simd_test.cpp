// ccq::simd — the runtime-dispatch layer and every vector micro-kernel,
// each pinned bit-for-bit against its scalar fallback by forcing the two
// dispatch levels on the same inputs in one process. On a host without AVX2
// the force clamps to scalar and the equality checks compare the scalar
// path against itself — still valid, just not informative; the packing
// tests additionally assert against hand-computed layouts so they stay
// meaningful at every level.

#include "algebra/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algebra/distributed_mm.hpp"
#include "algebra/kernels.hpp"
#include "algebra/semiring.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ccq::simd {
namespace {

/// Run `fn()` under both dispatch levels and require identical results.
/// Always restores the unforced dispatch before returning.
template <typename Fn>
void expect_levels_agree(Fn&& fn) {
  force(Level::kScalar);
  const auto scalar = fn();
  force(Level::kAvx2);  // clamps to detected() on scalar-only hosts
  const auto vec = fn();
  clear_force();
  EXPECT_EQ(scalar, vec);
}

std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::uint64_t> w(n);
  for (auto& x : w) x = rng.next();
  return w;
}

TEST(SimdDispatch, DetectedIsStableAndNamed) {
  EXPECT_EQ(detected(), detected());
  EXPECT_STREQ(level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(level_name(Level::kAvx2), "avx2");
}

TEST(SimdDispatch, ParseLevelStrict) {
  EXPECT_EQ(parse_level(nullptr), std::nullopt);
  EXPECT_EQ(parse_level(""), std::nullopt);
  EXPECT_EQ(parse_level("on"), std::nullopt);
  EXPECT_EQ(parse_level("1"), std::nullopt);
  EXPECT_EQ(parse_level("auto"), std::nullopt);
  EXPECT_EQ(parse_level("off"), Level::kScalar);
  EXPECT_EQ(parse_level("0"), Level::kScalar);
  EXPECT_EQ(parse_level("scalar"), Level::kScalar);
  EXPECT_THROW(parse_level("avx512"), ModelViolation);
  EXPECT_THROW(parse_level("OFF"), ModelViolation);
  EXPECT_THROW(parse_level(" off"), ModelViolation);
}

TEST(SimdDispatch, ForceClampsToDetected) {
  force(Level::kAvx2);
  EXPECT_LE(static_cast<int>(active()), static_cast<int>(detected()));
  force(Level::kScalar);
  EXPECT_EQ(active(), Level::kScalar);
  clear_force();
  EXPECT_LE(static_cast<int>(active()), static_cast<int>(detected()));
}

TEST(SimdMicroKernels, MinPlusRowMatchesScalarAtEveryLength) {
  // Lengths straddle the 4-lane vector width; values include ∞ (the
  // saturation domain's maximum) so the signed-compare argument is hit.
  for (const std::size_t n : {0UL, 1UL, 3UL, 4UL, 5UL, 31UL, 64UL, 70UL}) {
    SplitMix64 rng(1000 + n);
    std::vector<std::uint64_t> b(n), c0(n);
    for (auto& x : b)
      x = rng.next_bool(0.2) ? MinPlusSemiring::infinity() : rng.next_below(1u << 20);
    for (auto& x : c0)
      x = rng.next_bool(0.2) ? MinPlusSemiring::infinity() : rng.next_below(1u << 20);
    for (const std::uint64_t aik :
         {std::uint64_t{0}, std::uint64_t{17}, MinPlusSemiring::infinity()}) {
      expect_levels_agree([&] {
        auto c = c0;
        minplus_row(c.data(), aik, b.data(), n);
        return c;
      });
      // And against the reference fold the kernel replaces.
      auto got = c0;
      minplus_row(got.data(), aik, b.data(), n);
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint64_t t = aik + b[j];
        EXPECT_EQ(got[j], c0[j] < t ? c0[j] : t) << "j=" << j;
      }
    }
  }
}

TEST(SimdMicroKernels, OrSelectRowsMatchesScalar) {
  // 9 rows × 11 words exercises the 8-word, 4-word, and tail chunks.
  const std::size_t stride = 11, nrows = 9;
  const auto base = random_words(stride * nrows, 7);
  const std::vector<std::uint32_t> ks = {0, 3, 3, 8, 5};
  expect_levels_agree([&] {
    std::vector<std::uint64_t> out(stride, ~std::uint64_t{0});
    or_select_rows(base.data(), stride, ks.data(), ks.size(), out.data(),
                   stride);
    return out;
  });
  std::vector<std::uint64_t> out(stride, 0);
  or_select_rows(base.data(), stride, ks.data(), ks.size(), out.data(),
                 stride);
  for (std::size_t t = 0; t < stride; ++t) {
    std::uint64_t want = 0;
    for (const auto k : ks) want |= base[k * stride + t];
    EXPECT_EQ(out[t], want) << "t=" << t;
  }
}

TEST(SimdMicroKernels, OrRowAndIntersectAndFirstCommonWord) {
  for (const std::size_t nwords : {0UL, 1UL, 3UL, 4UL, 7UL, 16UL, 21UL}) {
    auto a = random_words(nwords, 31 * nwords + 1);
    auto b = random_words(nwords, 31 * nwords + 2);
    // Sparse intersections: zero out most words so first_common_word has a
    // real scan to do, including the no-hit case.
    for (std::size_t w = 0; w < nwords; ++w)
      if (w % 5 != 4) b[w] = 0;
    expect_levels_agree([&] {
      auto dst = a;
      or_row(dst.data(), b.data(), nwords);
      return dst;
    });
    expect_levels_agree(
        [&] { return rows_intersect(a.data(), b.data(), nwords); });
    for (std::size_t from = 0; from <= nwords; ++from) {
      expect_levels_agree([&] {
        return first_common_word(a.data(), b.data(), from, nwords);
      });
    }
    // Reference semantics for the scan.
    std::size_t want = nwords;
    for (std::size_t w = 0; w < nwords; ++w)
      if (a[w] & b[w]) {
        want = w;
        break;
      }
    EXPECT_EQ(first_common_word(a.data(), b.data(), 0, nwords), want);
    EXPECT_EQ(rows_intersect(a.data(), b.data(), nwords), want < nwords);
  }
}

TEST(SimdPacking, PackBitsU8LayoutAndRangeRejection) {
  for (const std::size_t count : {0UL, 1UL, 63UL, 64UL, 65UL, 200UL}) {
    SplitMix64 rng(count + 5);
    std::vector<std::uint8_t> v(count);
    for (auto& x : v) x = rng.next_bool(0.5) ? 1 : 0;
    std::vector<std::uint64_t> words((count + 63) / 64, 0);
    if (!pack_bits_u8(v.data(), count, words.data())) {
      // Scalar dispatch level: the caller's generic path covers this case.
      EXPECT_EQ(active(), Level::kScalar);
      continue;
    }
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ((words[i >> 6] >> (i & 63)) & 1u, v[i]) << "i=" << i;
    // Round-trip through the vector unpack.
    std::vector<std::uint8_t> back(count, 0xee);
    ASSERT_TRUE(unpack_bits_u8(words.data(), count, back.data()));
    EXPECT_EQ(back, v);
    // An out-of-range byte anywhere must fail the whole pack.
    if (count > 0) {
      auto bad = v;
      bad[count / 2] = 2;
      std::vector<std::uint64_t> scratch(words.size(), 0);
      EXPECT_FALSE(pack_bits_u8(bad.data(), count, scratch.data()));
    }
  }
}

TEST(SimdPacking, PackWordsU64LayoutAndRangeRejection) {
  for (const unsigned eb : {1U, 2U, 4U, 8U, 16U, 32U}) {
    const std::size_t count = 101;
    SplitMix64 rng(eb);
    std::vector<std::uint64_t> v(count);
    for (auto& x : v) x = rng.next() & ((std::uint64_t{1} << eb) - 1);
    const std::size_t nwords = (count * eb + 63) / 64;
    std::vector<std::uint64_t> words(nwords, 0);
    if (!pack_words_u64(v.data(), count, eb, words.data())) {
      EXPECT_EQ(active(), Level::kScalar);
      continue;
    }
    // Reference LSB-first layout.
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t pos = i * eb;
      const std::uint64_t mask = (std::uint64_t{1} << eb) - 1;
      EXPECT_EQ((words[pos >> 6] >> (pos & 63)) & mask, v[i])
          << "eb=" << eb << " i=" << i;
    }
    auto bad = v;
    bad[count - 1] = std::uint64_t{1} << eb;
    std::vector<std::uint64_t> scratch(nwords, 0);
    EXPECT_FALSE(pack_words_u64(bad.data(), count, eb, scratch.data()));
  }
  // Unsupported widths must always decline.
  std::uint64_t w = 0;
  const std::uint64_t v = 1;
  EXPECT_FALSE(pack_words_u64(&v, 1, 13, &w));
  EXPECT_FALSE(pack_words_u64(&v, 1, 64, &w));
}

TEST(SimdPacking, UnpackWordsU64MatchesGenericExtraction) {
  for (const unsigned eb : {8U, 16U, 32U}) {
    const std::size_t count = 77;
    const std::size_t nwords = (count * eb + 63) / 64;
    const auto words = random_words(nwords, eb * 13);
    std::vector<std::uint64_t> out(count, 0);
    if (!unpack_words_u64(words.data(), count, eb, out.data())) {
      EXPECT_EQ(active(), Level::kScalar);
      continue;
    }
    const std::uint64_t mask = (std::uint64_t{1} << eb) - 1;
    const unsigned per = 64 / eb;
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(out[i], (words[i / per] >> ((i % per) * eb)) & mask)
          << "eb=" << eb << " i=" << i;
  }
}

// End-to-end: the distributed packing layer must produce identical
// BitVectors and identical round-trips at both dispatch levels, for every
// semiring (identity encodings take the vector path; MinPlus must keep its
// ∞ remap through the scalar path).
template <Semiring S>
void check_pack_roundtrip_levels(unsigned entry_bits, std::uint64_t seed) {
  using V = typename S::Value;
  SplitMix64 rng(seed);
  std::vector<V> vals(157);
  for (auto& v : vals) {
    if constexpr (std::is_same_v<S, MinPlusSemiring>) {
      v = rng.next_bool(0.25)
              ? MinPlusSemiring::infinity()
              : static_cast<V>(rng.next_below(
                    (std::uint64_t{1} << (entry_bits - 1)) + 1));
    } else if constexpr (std::is_same_v<S, BoolSemiring>) {
      v = rng.next_bool(0.5) ? 1 : 0;
    } else {
      v = static_cast<V>(rng.next() &
                         ((std::uint64_t{1} << (entry_bits - 1)) - 1));
    }
  }
  force(Level::kScalar);
  const BitVector packed_scalar =
      pack_entries<S>(std::span<const V>(vals), entry_bits);
  const auto back_scalar =
      unpack_entries<S>(packed_scalar, vals.size(), entry_bits);
  force(Level::kAvx2);
  const BitVector packed_vec =
      pack_entries<S>(std::span<const V>(vals), entry_bits);
  const auto back_vec = unpack_entries<S>(packed_vec, vals.size(), entry_bits);
  clear_force();
  EXPECT_EQ(packed_scalar, packed_vec);
  EXPECT_EQ(back_scalar, back_vec);
  EXPECT_EQ(back_vec, vals);
}

TEST(SimdPacking, PackEntriesBitIdenticalAcrossLevels) {
  check_pack_roundtrip_levels<BoolSemiring>(1, 21);
  check_pack_roundtrip_levels<BoolSemiring>(3, 22);
  check_pack_roundtrip_levels<MinPlusSemiring>(8, 23);
  check_pack_roundtrip_levels<MinPlusSemiring>(13, 24);
  check_pack_roundtrip_levels<I64Ring>(8, 25);
  check_pack_roundtrip_levels<I64Ring>(16, 26);
  check_pack_roundtrip_levels<I64Ring>(32, 27);
  check_pack_roundtrip_levels<I64Ring>(13, 28);
  check_pack_roundtrip_levels<MaxMinSemiring>(16, 29);
}

TEST(SimdPacking, PackEntriesRangeErrorSurvivesVectorPath) {
  // The vector pack must decline out-of-range input and leave the generic
  // writer to throw the canonical error — at every dispatch level.
  std::vector<std::int64_t> vals(130, 1);
  vals[97] = 256;  // does not fit 8 bits
  for (const Level lvl : {Level::kScalar, Level::kAvx2}) {
    force(lvl);
    EXPECT_THROW(
        pack_entries<I64Ring>(std::span<const std::int64_t>(vals), 8),
        ModelViolation);
  }
  clear_force();
}

}  // namespace
}  // namespace ccq::simd
