// Property tests for the ccq::kernels layer (DESIGN.md §11): BitMatrix
// round-trips, bit-for-bit kernel equivalence against mm_naive at
// degenerate and non-power-of-two sizes over every semiring, determinism of
// the parallel kernel across worker counts and grains, and word-level
// pack/unpack equivalence against the per-entry reference path.

#include "algebra/kernels.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algebra/distributed_mm.hpp"
#include "algebra/mm.hpp"
#include "algebra/simd.hpp"
#include "clique/engine.hpp"
#include "graph/generators.hpp"
#include "graphalg/common.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ccq {
namespace {

using kernels::BitMatrix;

const std::vector<std::size_t> kSizes = {1, 2, 63, 64, 65, 127, 200};

Matrix<std::uint8_t> random_bool(std::size_t r, std::size_t c,
                                 std::uint64_t seed, double density = 0.4) {
  SplitMix64 rng(seed);
  Matrix<std::uint8_t> m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j)
      m.at(i, j) = rng.next_bool(density) ? 1 : 0;
  return m;
}

template <Semiring S>
Matrix<typename S::Value> random_matrix(std::size_t r, std::size_t c,
                                        std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<typename S::Value> m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      if constexpr (std::is_same_v<S, BoolSemiring>) {
        m.at(i, j) = rng.next_bool(0.4) ? 1 : 0;
      } else if constexpr (std::is_same_v<S, MinPlusSemiring>) {
        // Mix of finite distances and ∞ (the additive identity).
        m.at(i, j) = rng.next_bool(0.25) ? MinPlusSemiring::infinity()
                                         : rng.next_below(1000);
      } else {
        m.at(i, j) =
            static_cast<typename S::Value>(rng.next_below(1000));
      }
    }
  }
  return m;
}

// ---- BitMatrix ------------------------------------------------------------

TEST(BitMatrix, RoundTripAllSizes) {
  for (std::size_t n : kSizes) {
    const auto m = random_bool(n, n, 17 * n + 1);
    const BitMatrix bm = BitMatrix::from_matrix(m);
    EXPECT_EQ(bm.rows(), n);
    EXPECT_EQ(bm.cols(), n);
    EXPECT_EQ(bm.to_matrix(), m) << "n=" << n;
  }
}

TEST(BitMatrix, RoundTripRectangular) {
  const auto m = random_bool(3, 130, 99);
  EXPECT_EQ(BitMatrix::from_matrix(m).to_matrix(), m);
  const auto tall = random_bool(130, 3, 100);
  EXPECT_EQ(BitMatrix::from_matrix(tall).to_matrix(), tall);
}

TEST(BitMatrix, GetSetAgreeWithMatrix) {
  const auto m = random_bool(65, 70, 7);
  const BitMatrix bm = BitMatrix::from_matrix(m);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      EXPECT_EQ(bm.get(i, j), m.at(i, j) != 0);
}

TEST(BitMatrix, SetClearKeepsEquality) {
  BitMatrix a(5, 70), b(5, 70);
  a.set(3, 68);
  EXPECT_NE(a, b);
  b.set(3, 68);
  EXPECT_EQ(a, b);
  a.set(3, 68, false);
  b.set(3, 68, false);
  EXPECT_EQ(a, b);  // clears must not leave stray padding bits
}

TEST(BitMatrix, TransposeInvolution) {
  for (std::size_t n : {1ul, 63ul, 64ul, 65ul, 127ul}) {
    const auto m = random_bool(n, n + 3, 23 * n);
    const BitMatrix bm = BitMatrix::from_matrix(m);
    const BitMatrix t = bm.transpose();
    EXPECT_EQ(t.rows(), bm.cols());
    EXPECT_EQ(t.cols(), bm.rows());
    for (std::size_t i = 0; i < bm.rows(); ++i)
      for (std::size_t j = 0; j < bm.cols(); ++j)
        ASSERT_EQ(t.get(j, i), bm.get(i, j));
    EXPECT_EQ(t.transpose(), bm);
  }
}

TEST(BitMatrix, BitMmMatchesNaive) {
  for (std::size_t n : kSizes) {
    const auto a = random_bool(n, n, 2 * n + 1);
    const auto b = random_bool(n, n, 2 * n + 2);
    const auto expect = mm_naive<BoolSemiring>(a, b);
    const auto ba = BitMatrix::from_matrix(a);
    const auto bb = BitMatrix::from_matrix(b);
    EXPECT_EQ(kernels::bit_mm(ba, bb).to_matrix(), expect) << "n=" << n;
    EXPECT_EQ(kernels::bit_mm_popcount(ba, bb).to_matrix(), expect)
        << "n=" << n;
    EXPECT_EQ(kernels::bool_mm_bitpacked(a, b), expect) << "n=" << n;
  }
}

TEST(BitMatrix, BitMmRectangular) {
  const auto a = random_bool(3, 130, 5);
  const auto b = random_bool(130, 67, 6);
  const auto expect = mm_naive<BoolSemiring>(a, b);
  EXPECT_EQ(kernels::bool_mm_bitpacked(a, b), expect);
  EXPECT_EQ(kernels::bit_mm_popcount(BitMatrix::from_matrix(a),
                                     BitMatrix::from_matrix(b))
                .to_matrix(),
            expect);
}

TEST(BitMatrix, ClosureMatchesSemiringClosure) {
  for (std::size_t n : {1ul, 2ul, 17ul, 64ul, 65ul}) {
    auto adj = random_bool(n, n, 31 * n, 0.08);
    for (std::size_t i = 0; i < n; ++i) adj.at(i, i) = 0;
    const auto expect = semiring_closure<BoolSemiring>(adj);
    EXPECT_EQ(kernels::bit_closure(BitMatrix::from_matrix(adj)).to_matrix(),
              expect)
        << "n=" << n;
  }
}

TEST(BitFirstCommon, MatchesScalarScan) {
  SplitMix64 rng(404);
  for (std::size_t n : {1ul, 63ul, 64ul, 65ul, 200ul}) {
    BitVector a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.next_bool(0.3)) a.set(i);
      if (rng.next_bool(0.3)) b.set(i);
    }
    for (std::size_t from = 0; from <= n; ++from) {
      std::size_t expect = n;
      for (std::size_t i = from; i < n; ++i) {
        if (a.get(i) && b.get(i)) {
          expect = i;
          break;
        }
      }
      ASSERT_EQ(kernels::bit_first_common(a, b, from), expect)
          << "n=" << n << " from=" << from;
    }
  }
}

// ---- scalar kernel equivalence -------------------------------------------

template <Semiring S>
void expect_all_kernels_match(std::size_t n, std::uint64_t seed) {
  const auto a = random_matrix<S>(n, n, seed);
  const auto b = random_matrix<S>(n, n, seed + 1);
  const auto expect = mm_naive<S>(a, b);
  EXPECT_EQ(kernels::mm_tiled<S>(a, b), expect) << "tiled n=" << n;
  EXPECT_EQ(kernels::mm_local<S>(a, b), expect) << "local n=" << n;
  EXPECT_EQ(kernels::mm_auto<S>(a, b), expect) << "auto n=" << n;
  EXPECT_EQ(kernels::mm_parallel<S>(a, b), expect) << "parallel n=" << n;
}

TEST(KernelEquivalence, BoolSemiring) {
  for (std::size_t n : kSizes) expect_all_kernels_match<BoolSemiring>(n, n);
}

TEST(KernelEquivalence, MinPlusSemiring) {
  for (std::size_t n : kSizes)
    expect_all_kernels_match<MinPlusSemiring>(n, 1000 + n);
}

TEST(KernelEquivalence, I64Ring) {
  for (std::size_t n : kSizes) expect_all_kernels_match<I64Ring>(n, 2000 + n);
}

TEST(KernelEquivalence, MaxMinSemiring) {
  for (std::size_t n : kSizes)
    expect_all_kernels_match<MaxMinSemiring>(n, 3000 + n);
}

TEST(KernelEquivalence, Rectangular) {
  const auto a = random_matrix<I64Ring>(7, 129, 11);
  const auto b = random_matrix<I64Ring>(129, 65, 12);
  const auto expect = mm_naive<I64Ring>(a, b);
  EXPECT_EQ(kernels::mm_tiled<I64Ring>(a, b), expect);
  EXPECT_EQ(kernels::mm_auto<I64Ring>(a, b), expect);
  EXPECT_EQ(kernels::mm_parallel<I64Ring>(a, b), expect);
}

TEST(KernelEquivalence, MinPlusOutOfDomainFallsBack) {
  // Entries above infinity() defeat the saturation shortcut; the kernel
  // must detect that and still match mm_naive exactly.
  auto a = random_matrix<MinPlusSemiring>(40, 40, 77);
  auto b = random_matrix<MinPlusSemiring>(40, 40, 78);
  a.at(3, 5) = MinPlusSemiring::infinity() + 12345;
  b.at(0, 0) = ~std::uint64_t{0} - 7;
  const auto expect = mm_naive<MinPlusSemiring>(a, b);
  EXPECT_EQ(kernels::mm_tiled<MinPlusSemiring>(a, b), expect);
  EXPECT_EQ(kernels::mm_parallel<MinPlusSemiring>(a, b), expect);
}

TEST(KernelEquivalence, BoolNonBinaryEntriesFallBack) {
  // BoolSemiring::mul is bitwise AND over bytes, so entries outside {0,1}
  // behave differently from their bit-packed projection; the dispatchers
  // must detect that and take the scalar path.
  auto a = random_bool(70, 70, 55);
  auto b = random_bool(70, 70, 56);
  a.at(1, 2) = 2;  // 2 & 1 == 0: differs from "nonzero means true"
  const auto expect = mm_naive<BoolSemiring>(a, b);
  EXPECT_EQ(kernels::mm_auto<BoolSemiring>(a, b), expect);
  EXPECT_EQ(kernels::mm_local<BoolSemiring>(a, b), expect);
}

TEST(KernelEquivalence, EmptyAndDegenerate) {
  const Matrix<std::int64_t> a(0, 0), b(0, 0);
  EXPECT_EQ(kernels::mm_tiled<I64Ring>(a, b).rows(), 0u);
  EXPECT_EQ(kernels::mm_parallel<I64Ring>(a, b).rows(), 0u);
  const auto one = random_matrix<I64Ring>(1, 1, 5);
  EXPECT_EQ(kernels::mm_auto<I64Ring>(one, one),
            mm_naive<I64Ring>(one, one));
}

TEST(KernelEquivalence, MismatchedShapesThrow) {
  const Matrix<std::int64_t> a(3, 4), b(5, 3);
  EXPECT_THROW(kernels::mm_tiled<I64Ring>(a, b), ModelViolation);
  EXPECT_THROW(kernels::mm_auto<I64Ring>(a, b), ModelViolation);
}

// ---- parallel determinism -------------------------------------------------

TEST(ParallelDeterminism, IdenticalAcrossWorkerCountsAndGrains) {
  // The determinism contract (DESIGN.md §11): the result is a pure
  // function of the inputs — worker count and grain must not leak in.
  // Pools are constructed explicitly so this holds even on 1-core hosts.
  ThreadPool pool1(1), pool3(3), pool7(7);
  for (std::size_t n : {65ul, 127ul, 200ul}) {
    const auto a = random_matrix<MinPlusSemiring>(n, n, 7 * n);
    const auto b = random_matrix<MinPlusSemiring>(n, n, 7 * n + 1);
    const auto expect = mm_naive<MinPlusSemiring>(a, b);
    for (std::size_t grain : {1ul, 16ul, 64ul, 1000ul}) {
      EXPECT_EQ(kernels::mm_parallel<MinPlusSemiring>(a, b, grain, &pool1),
                expect)
          << "n=" << n << " grain=" << grain;
      EXPECT_EQ(kernels::mm_parallel<MinPlusSemiring>(a, b, grain, &pool3),
                expect)
          << "n=" << n << " grain=" << grain;
      EXPECT_EQ(kernels::mm_parallel<MinPlusSemiring>(a, b, grain, &pool7),
                expect)
          << "n=" << n << " grain=" << grain;
    }
  }
}

TEST(ParallelDeterminism, AllSemiringsOnOversubscribedPool) {
  ThreadPool pool4(4);
  const std::size_t n = 130;
  {
    const auto a = random_matrix<BoolSemiring>(n, n, 1);
    const auto b = random_matrix<BoolSemiring>(n, n, 2);
    EXPECT_EQ(kernels::mm_parallel<BoolSemiring>(a, b, 8, &pool4),
              mm_naive<BoolSemiring>(a, b));
  }
  {
    const auto a = random_matrix<I64Ring>(n, n, 3);
    const auto b = random_matrix<I64Ring>(n, n, 4);
    EXPECT_EQ(kernels::mm_parallel<I64Ring>(a, b, 8, &pool4),
              mm_naive<I64Ring>(a, b));
  }
  {
    const auto a = random_matrix<MaxMinSemiring>(n, n, 5);
    const auto b = random_matrix<MaxMinSemiring>(n, n, 6);
    EXPECT_EQ(kernels::mm_parallel<MaxMinSemiring>(a, b, 8, &pool4),
              mm_naive<MaxMinSemiring>(a, b));
  }
}

// ---- dispatched call sites ------------------------------------------------

TEST(Dispatch, MmPowerMatchesRepeatedNaive) {
  const auto a = random_matrix<I64Ring>(17, 17, 42);
  auto expect = a;
  for (int i = 1; i < 5; ++i) expect = mm_naive<I64Ring>(expect, a);
  EXPECT_EQ(mm_power<I64Ring>(a, 5), expect);

  const auto ba = random_matrix<BoolSemiring>(70, 70, 43);
  auto bexpect = ba;
  for (int i = 1; i < 3; ++i) bexpect = mm_naive<BoolSemiring>(bexpect, ba);
  EXPECT_EQ(mm_power<BoolSemiring>(ba, 3), bexpect);
}

TEST(Dispatch, ClosureRoundCapMatchesFixpoint) {
  // The capped doubling must land on the same matrix the old
  // square-until-stable loop produced (it computes (I ⊕ A)^m for some
  // m ≥ n−1, which equals the fixpoint for idempotent semirings).
  for (std::size_t n : {1ul, 2ul, 5ul, 33ul, 64ul}) {
    auto adj = random_bool(n, n, 9 * n + 4, 0.07);
    for (std::size_t i = 0; i < n; ++i) adj.at(i, i) = 0;
    auto m = adj;
    for (std::size_t i = 0; i < n; ++i)
      m.at(i, i) = BoolSemiring::add(m.at(i, i), BoolSemiring::one());
    while (true) {  // reference: the seed's fixpoint loop
      auto sq = mm_naive<BoolSemiring>(m, m);
      if (sq == m) break;
      m = std::move(sq);
    }
    EXPECT_EQ(semiring_closure<BoolSemiring>(adj), m) << "n=" << n;
  }
}

TEST(Dispatch, StrassenStillMatchesNaive) {
  for (std::size_t n : {50ul, 90ul, 129ul}) {
    const auto a = random_matrix<I64Ring>(n, n, n);
    const auto b = random_matrix<I64Ring>(n, n, n + 1);
    EXPECT_EQ(mm_strassen<I64Ring>(a, b, 16), mm_naive<I64Ring>(a, b))
        << "n=" << n;
  }
}

// ---- word-level packing ---------------------------------------------------

// Per-entry reference: the seed's implementation of pack/unpack.
template <Semiring S>
BitVector pack_reference(const std::vector<typename S::Value>& values,
                         unsigned entry_bits) {
  BitVector bv;
  for (const auto& v : values)
    bv.append_bits(encode_value<S>(v, entry_bits), entry_bits);
  return bv;
}

template <Semiring S>
std::vector<typename S::Value> unpack_reference(const BitVector& bv,
                                                std::size_t count,
                                                unsigned entry_bits) {
  std::vector<typename S::Value> out;
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(decode_value<S>(bv.read_bits(i * entry_bits, entry_bits),
                                  entry_bits));
  return out;
}

TEST(EntryPackingBulk, MatchesPerEntryReference) {
  SplitMix64 rng(2024);
  for (unsigned entry_bits : {1u, 7u, 8u, 13u, 32u, 64u}) {
    for (std::size_t count : {0ul, 1ul, 5ul, 64ul, 65ul, 1000ul}) {
      std::vector<std::uint64_t> values(count);
      const std::uint64_t cap = entry_bits == 64
                                    ? ~std::uint64_t{0}
                                    : (std::uint64_t{1} << entry_bits) - 1;
      for (auto& v : values)
        v = cap == ~std::uint64_t{0} ? rng.next()
                                     : rng.next_below(cap + 1);
      // I64Ring's encode is the identity modulo width, so raw patterns
      // exercise every bit lane.
      using S = I64Ring;
      std::vector<S::Value> typed(values.begin(), values.end());
      // encode_value checks the width for entry_bits < 64.
      if (entry_bits < 64)
        for (auto& v : typed)
          v = static_cast<S::Value>(static_cast<std::uint64_t>(v) & cap);
      const BitVector bulk =
          pack_entries<S>(std::span<const S::Value>(typed), entry_bits);
      const BitVector ref = pack_reference<S>(typed, entry_bits);
      ASSERT_EQ(bulk, ref) << "entry_bits=" << entry_bits
                           << " count=" << count;
      ASSERT_EQ(unpack_entries<S>(bulk, count, entry_bits),
                unpack_reference<S>(bulk, count, entry_bits))
          << "entry_bits=" << entry_bits << " count=" << count;
      ASSERT_EQ(unpack_entries<S>(bulk, count, entry_bits), typed);
    }
  }
}

TEST(EntryPackingBulk, MinPlusInfinityRoundTrips) {
  using S = MinPlusSemiring;
  for (unsigned entry_bits : {7u, 8u, 13u, 32u, 64u}) {
    std::vector<S::Value> values = {0, 1, 5, S::infinity(), 42,
                                    S::infinity(), 0};
    const BitVector bulk =
        pack_entries<S>(std::span<const S::Value>(values), entry_bits);
    EXPECT_EQ(bulk, pack_reference<S>(values, entry_bits))
        << "entry_bits=" << entry_bits;
    EXPECT_EQ(unpack_entries<S>(bulk, values.size(), entry_bits), values)
        << "entry_bits=" << entry_bits;
  }
}

TEST(EntryPackingBulk, OverflowStillThrows) {
  using S = I64Ring;
  std::vector<S::Value> values = {1 << 9};
  EXPECT_THROW(pack_entries<S>(std::span<const S::Value>(values), 9),
               ModelViolation);
}

// ---- SIMD dispatch levels (DESIGN.md §16) ---------------------------------

// CCQ_SIMD=off vs on must be bit-identical: pin every dense kernel against
// mm_naive under both forced dispatch levels, for all four semirings. On a
// host without AVX2 the forced vector level clamps to scalar and this
// degenerates to the plain equivalence check.
template <Semiring S>
void check_simd_levels(std::uint64_t seed) {
  const auto a = random_matrix<S>(150, 150, seed);
  const auto b = random_matrix<S>(150, 150, seed + 1);
  const auto expect = mm_naive<S>(a, b);
  for (const simd::Level lvl : {simd::Level::kScalar, simd::Level::kAvx2}) {
    simd::force(lvl);
    EXPECT_EQ(kernels::mm_tiled<S>(a, b), expect)
        << "tiled @" << simd::level_name(lvl);
    EXPECT_EQ(kernels::mm_local<S>(a, b), expect)
        << "local @" << simd::level_name(lvl);
    EXPECT_EQ(kernels::mm_auto<S>(a, b), expect)
        << "auto @" << simd::level_name(lvl);
  }
  simd::clear_force();
}

TEST(SimdLevels, DenseKernelsBitEqualAcrossSemirings) {
  check_simd_levels<BoolSemiring>(61);
  check_simd_levels<MinPlusSemiring>(63);
  check_simd_levels<I64Ring>(65);
  check_simd_levels<MaxMinSemiring>(67);
}

TEST(SimdLevels, BitKernelsBitEqual) {
  const auto am = random_bool(130, 130, 91);
  const auto bm = random_bool(130, 130, 92);
  const BitMatrix a = BitMatrix::from_matrix(am);
  const BitMatrix b = BitMatrix::from_matrix(bm);
  simd::force(simd::Level::kScalar);
  const BitMatrix or_s = kernels::bit_mm(a, b);
  const BitMatrix pc_s = kernels::bit_mm_popcount(a, b);
  const BitMatrix cl_s = kernels::bit_closure(a);
  simd::force(simd::Level::kAvx2);
  EXPECT_TRUE(kernels::bit_mm(a, b) == or_s);
  EXPECT_TRUE(kernels::bit_mm_popcount(a, b) == pc_s);
  EXPECT_TRUE(kernels::bit_closure(a) == cl_s);
  simd::clear_force();
  EXPECT_TRUE(or_s == pc_s);
}

// ---- mm_auto dispatch boundaries ------------------------------------------

/// n×n matrix with exactly `nnz` entries ≠ S::zero(), scattered on a stride
/// coprime to n² so no row or column is privileged.
template <Semiring S>
Matrix<typename S::Value> matrix_with_nnz(std::size_t n, std::size_t nnz) {
  using V = typename S::Value;
  Matrix<V> m(n, n, S::zero());
  const std::size_t cells = n * n;
  std::size_t idx = 0;
  for (std::size_t k = 0; k < nnz; ++k) {
    idx = (idx + 37) % cells;
    if constexpr (std::is_same_v<S, BoolSemiring>) {
      m.at(idx / n, idx % n) = 1;
    } else {
      m.at(idx / n, idx % n) = static_cast<V>(1 + k % 90);
    }
  }
  return m;
}

TEST(Dispatch, SparseDensityBoundaryExact) {
  // n = 160 makes 5% of n² a whole number, so a matrix can sit *exactly* on
  // kSparseDispatchMaxDensity (routed sparse: the comparison is ≤) while
  // one extra nonzero tips it onto the dense path. Both must match
  // mm_naive; the density arithmetic itself is pinned explicitly.
  const std::size_t n = 160;
  const std::size_t at = static_cast<std::size_t>(
      kernels::kSparseDispatchMaxDensity * static_cast<double>(n * n));
  ASSERT_EQ(at, 1280u);
  const auto check = [&](auto tag, std::uint64_t) {
    using S = decltype(tag);
    const auto a_at = matrix_with_nnz<S>(n, at);
    const auto b_at = matrix_with_nnz<S>(n, at);
    EXPECT_EQ(kernels::density_of<S>(a_at),
              kernels::kSparseDispatchMaxDensity);
    EXPECT_EQ(kernels::mm_auto<S>(a_at, b_at), mm_naive<S>(a_at, b_at));
    const auto a_over = matrix_with_nnz<S>(n, at + 1);
    EXPECT_GT(kernels::density_of<S>(a_over),
              kernels::kSparseDispatchMaxDensity);
    EXPECT_EQ(kernels::mm_auto<S>(a_over, b_at), mm_naive<S>(a_over, b_at));
  };
  check(BoolSemiring{}, 1);
  check(MinPlusSemiring{}, 2);
}

TEST(Dispatch, SparseMinDimBoundary) {
  // The sparse route needs every dimension ≥ kSparseDispatchMinDim = 64: at
  // n = 64 a low-density input routes sparse, at n = 63 it must not. Both
  // sides of the boundary stay bit-equal to mm_naive.
  ASSERT_EQ(kernels::kSparseDispatchMinDim, 64u);
  for (const std::size_t n : {63UL, 64UL}) {
    const std::size_t nnz = n * n / 50;  // 2% — well under the ceiling
    const auto a = matrix_with_nnz<MinPlusSemiring>(n, nnz);
    const auto b = matrix_with_nnz<MinPlusSemiring>(n, nnz);
    EXPECT_EQ(kernels::mm_auto<MinPlusSemiring>(a, b),
              mm_naive<MinPlusSemiring>(a, b))
        << "n=" << n;
  }
}

TEST(Dispatch, PoolStaysUnavailableOnEngineFibers) {
  // Node programs run on scheduler fibers, where mm_auto and spgemm_auto
  // must never shard onto the kernel pool (a fiber blocking on the pool
  // could deadlock the superstep). pool_available() is the single gate.
  const NodeId nn = 4;
  const auto a = random_matrix<MinPlusSemiring>(40, 40, 301);
  const auto b = random_matrix<MinPlusSemiring>(40, 40, 302);
  const auto expect = mm_naive<MinPlusSemiring>(a, b);
  PerNode<int> ok(nn);
  Engine::run(gen::empty(nn), [&](NodeCtx& ctx) {
    const bool unavailable = !kernels::pool_available();
    const bool match = kernels::mm_auto<MinPlusSemiring>(a, b) == expect;
    ok.set(ctx.id(), unavailable && match ? 1 : 0);
    ctx.output(0);
  });
  for (const int v : ok.take()) EXPECT_EQ(v, 1);
}

}  // namespace
}  // namespace ccq
