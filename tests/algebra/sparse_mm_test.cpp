#include "algebra/sparse.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "algebra/distributed_mm.hpp"
#include "algebra/mm.hpp"
#include "clique/chaos.hpp"
#include "clique/trace.hpp"
#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "graphalg/apsp.hpp"
#include "graphalg/common.hpp"
#include "graphalg/subgraph.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ccq {
namespace {

template <Semiring S>
Matrix<typename S::Value> random_matrix(std::size_t rows, std::size_t cols,
                                        double density, std::uint64_t max_val,
                                        SplitMix64& rng) {
  using V = typename S::Value;
  Matrix<V> m(rows, cols, S::zero());
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      if (rng.next_bool(density))
        m.at(i, j) = static_cast<V>(rng.next_below(max_val));
  return m;
}

// ---------- CSR layer ----------

TEST(SparseMatrix, FromDenseToDenseRoundTrip) {
  SplitMix64 rng(1);
  for (double d : {0.0, 0.05, 0.5, 1.0}) {
    const auto m = random_matrix<I64Ring>(9, 13, d, 50, rng);
    const auto s = SparseMatrix<I64Ring::Value>::from_dense<I64Ring>(m);
    EXPECT_EQ(s.rows(), 9u);
    EXPECT_EQ(s.cols(), 13u);
    EXPECT_EQ(s.to_dense<I64Ring>(), m);
    std::size_t nz = 0;
    for (const auto& v : m.data()) nz += v != 0 ? 1 : 0;
    EXPECT_EQ(s.nnz(), nz);
  }
}

TEST(SparseMatrix, PushRowValidatesColumns) {
  SparseMatrix<std::uint8_t> s(4);
  const std::vector<std::uint32_t> ok = {0, 3};
  const std::vector<std::uint8_t> vals = {1, 1};
  s.push_row(ok, vals);
  const std::vector<std::uint32_t> decreasing = {2, 1};
  EXPECT_THROW(s.push_row(decreasing, vals), ModelViolation);
  const std::vector<std::uint32_t> out_of_range = {1, 4};
  EXPECT_THROW(s.push_row(out_of_range, vals), ModelViolation);
}

// ---------- local SpGEMM kernels ----------

template <Semiring S>
void check_spgemm(std::uint64_t max_val, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (std::size_t n : {1u, 5u, 64u, 65u}) {
    for (double d : {0.0, 0.02, 0.2, 1.0}) {
      const auto a = random_matrix<S>(n, n, d, max_val, rng);
      const auto b = random_matrix<S>(n, n, d, max_val, rng);
      const auto sa = SparseMatrix<typename S::Value>::template from_dense<S>(a);
      const auto sb = SparseMatrix<typename S::Value>::template from_dense<S>(b);
      const auto expect = mm_naive<S>(a, b);
      const auto c = kernels::spgemm<S>(sa, sb);
      EXPECT_EQ(c.template to_dense<S>(), expect) << "n=" << n << " d=" << d;
      // Row-merge variant: identical CSR, structure included.
      EXPECT_TRUE(kernels::spgemm_rowmerge<S>(sa, sb) == c)
          << "n=" << n << " d=" << d;
    }
  }
}

TEST(SpGemm, BooleanMatchesNaive) { check_spgemm<BoolSemiring>(2, 11); }
TEST(SpGemm, MinPlusMatchesNaive) { check_spgemm<MinPlusSemiring>(30, 12); }
TEST(SpGemm, I64RingMatchesNaive) { check_spgemm<I64Ring>(9, 13); }
TEST(SpGemm, MaxMinMatchesNaive) { check_spgemm<MaxMinSemiring>(15, 14); }

TEST(SpGemm, BitPackedBooleanMatchesNaive) {
  SplitMix64 rng(21);
  for (std::size_t n : {3u, 64u, 100u}) {
    const auto a = random_matrix<BoolSemiring>(n, n, 0.03, 2, rng);
    const auto b = random_matrix<BoolSemiring>(n, n, 0.3, 2, rng);
    const auto c = kernels::bit_spgemm(
        SparseMatrix<std::uint8_t>::from_dense<BoolSemiring>(a),
        kernels::BitMatrix::from_matrix(b));
    EXPECT_EQ(c.to_matrix(), mm_naive<BoolSemiring>(a, b)) << "n=" << n;
  }
}

TEST(SpGemm, MmAutoDispatchesSparseInputs) {
  // Above the size floor and below the density ceiling mm_auto must take the
  // sparse route; correctness is all we can observe, so check both semiring
  // flavours against mm_naive on inputs that trigger the dispatch.
  SplitMix64 rng(31);
  const std::size_t n = 160;
  const auto ab = random_matrix<BoolSemiring>(n, n, 0.01, 2, rng);
  const auto bb = random_matrix<BoolSemiring>(n, n, 0.01, 2, rng);
  EXPECT_EQ(kernels::mm_auto<BoolSemiring>(ab, bb),
            mm_naive<BoolSemiring>(ab, bb));
  const auto am = random_matrix<MinPlusSemiring>(n, n, 0.01, 30, rng);
  const auto bm = random_matrix<MinPlusSemiring>(n, n, 0.01, 30, rng);
  EXPECT_EQ(kernels::mm_auto<MinPlusSemiring>(am, bm),
            mm_naive<MinPlusSemiring>(am, bm));
}

// ---------- distributed schedules ----------

// Drives one of the rectangular schedules on nn nodes and compares every
// output row against the centralised product.
template <Semiring S>
void check_rect(NodeId nn, MmShape shape, double density, unsigned entry_bits,
                std::uint64_t max_val, bool sparse_schedule,
                std::uint64_t seed, CostMeter* cost_out = nullptr,
                Engine::Config ecfg = {}) {
  using V = typename S::Value;
  SplitMix64 rng(seed);
  const auto a = random_matrix<S>(shape.n1, shape.n2, density, max_val, rng);
  const auto b = random_matrix<S>(shape.n2, shape.n3, density, max_val, rng);
  const auto expect = mm_naive<S>(a, b);

  PerNode<std::vector<V>> sink(nn);
  auto run = Engine::run(
      gen::empty(nn),
      [&](NodeCtx& ctx) {
        std::vector<V> ra, rb;
        if (ctx.id() < shape.n1) {
          ra.resize(shape.n2);
          for (NodeId j = 0; j < shape.n2; ++j) ra[j] = a.at(ctx.id(), j);
        }
        if (ctx.id() < shape.n2) {
          rb.resize(shape.n3);
          for (NodeId j = 0; j < shape.n3; ++j) rb[j] = b.at(ctx.id(), j);
        }
        auto rc = sparse_schedule
                      ? mm_distributed_sparse<S>(ctx, shape, ra, rb,
                                                 entry_bits)
                      : mm_distributed_rect<S>(ctx, shape, ra, rb,
                                               entry_bits);
        sink.set(ctx.id(), rc);
        ctx.output(0);
      },
      ecfg);
  if (cost_out) *cost_out = run.cost;

  auto rows = sink.take();
  for (NodeId i = 0; i < nn; ++i) {
    if (i >= shape.n1) {
      EXPECT_TRUE(rows[i].empty()) << "non-holder " << i << " returned a row";
      continue;
    }
    ASSERT_EQ(rows[i].size(), shape.n3) << "row " << i;
    for (NodeId j = 0; j < shape.n3; ++j)
      EXPECT_EQ(rows[i][j], expect.at(i, j))
          << "sparse=" << sparse_schedule << " @" << i << "," << j;
  }
}

TEST(RectMM, RectangularShapesMatchCentralised) {
  // n1 ≠ n2 ≠ n3, degenerate 1×k and k×1, a cube, and spare nodes beyond
  // every dimension. Both schedules, Boolean and (min,+).
  struct Case {
    NodeId nn, n1, n2, n3;
  };
  const Case cases[] = {{9, 7, 5, 9},  {8, 1, 8, 3},    {8, 8, 1, 5},
                        {9, 5, 9, 1},  {12, 12, 12, 12}, {16, 10, 16, 4},
                        {14, 6, 3, 11}};
  std::uint64_t seed = 900;
  for (const Case& c : cases) {
    for (bool sparse : {false, true}) {
      check_rect<BoolSemiring>(c.nn, {c.n1, c.n2, c.n3}, 0.35, 1, 2, sparse,
                               seed++);
      check_rect<MinPlusSemiring>(c.nn, {c.n1, c.n2, c.n3}, 0.35, 8, 30,
                                  sparse, seed++);
    }
  }
}

TEST(SparseMM, DensitySweepMatchesCentralised) {
  std::uint64_t seed = 1000;
  for (double d : {0.0, 0.05, 0.3, 1.0}) {
    check_rect<BoolSemiring>(20, {20, 20, 20}, d, 1, 2, /*sparse=*/true,
                             seed++);
    check_rect<MinPlusSemiring>(20, {20, 20, 20}, d, 8, 30, /*sparse=*/true,
                                seed++);
  }
}

TEST(SparseMM, AllZeroInputShipsNothing) {
  const NodeId nn = 16;
  PerNode<std::vector<std::uint64_t>> sink(nn);
  auto run = Engine::run(gen::empty(nn), [&](NodeCtx& ctx) {
    std::vector<MinPlusSemiring::Value> row(nn, MinPlusSemiring::infinity());
    auto rc = mm_distributed_sparse<MinPlusSemiring>(
        ctx, MmShape{nn, nn, nn}, row, row, 8);
    sink.set(ctx.id(), rc);
    ctx.output(0);
  });
  EXPECT_EQ(run.cost.messages, 0u);
  EXPECT_EQ(run.cost.bits, 0u);
  auto rows = sink.take();
  for (NodeId i = 0; i < nn; ++i)
    for (const auto v : rows[i]) EXPECT_EQ(v, MinPlusSemiring::infinity());
}

TEST(SparseMM, FullyDenseInputFallsBackToDenseFraming) {
  // On an all-nonzero input every slice takes the dense branch of the mode
  // rule, so the sparse schedule's bits are the rectangular schedule's plus
  // only descriptor/count overhead — bounded well under 1.5×.
  const NodeId nn = 16;
  CostMeter rect_cost, sparse_cost;
  check_rect<MinPlusSemiring>(nn, {nn, nn, nn}, 1.0, 8, 30, /*sparse=*/false,
                              2000, &rect_cost);
  check_rect<MinPlusSemiring>(nn, {nn, nn, nn}, 1.0, 8, 30, /*sparse=*/true,
                              2000, &sparse_cost);
  EXPECT_GT(sparse_cost.bits, rect_cost.bits);  // descriptors aren't free
  EXPECT_LE(sparse_cost.bits, rect_cost.bits + rect_cost.bits / 2);
}

TEST(SparseMM, BitsScaleWithDensity) {
  const NodeId nn = 32;
  std::uint64_t prev = 0;
  for (double d : {0.01, 0.1, 0.5}) {
    CostMeter cost;
    check_rect<MinPlusSemiring>(nn, {nn, nn, nn}, d, 8, 30, /*sparse=*/true,
                                2100, &cost);
    EXPECT_GT(cost.bits, prev) << "density " << d;
    prev = cost.bits;
  }
}

// ---------- determinism across substrates ----------

TEST(SparseMM, DeterministicAcrossPlanesBackendsWorkers) {
  const NodeId nn = 18;
  struct Obs {
    std::vector<std::vector<std::uint64_t>> rows;
    CostMeter cost;
    RoundTrace trace;
  };
  std::deque<Obs> obs;
  for (MessagePlaneKind plane :
       {MessagePlaneKind::kFlat, MessagePlaneKind::kLegacy}) {
    for (ExecutionBackend backend :
         {ExecutionBackend::kPooled, ExecutionBackend::kSharded,
          ExecutionBackend::kThreadPerNode}) {
      for (std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
        Obs& o = obs.emplace_back();
        Engine::Config ecfg;
        ecfg.plane = plane;
        ecfg.backend = backend;
        ecfg.workers = workers;
        ecfg.trace = &o.trace;
        PerNode<std::vector<std::uint64_t>> sink(nn);
        auto run = Engine::run(
            gen::empty(nn),
            [&](NodeCtx& ctx) {
              SplitMix64 rng(77 ^ (ctx.id() * 0x9e3779b9ULL));
              std::vector<MinPlusSemiring::Value> ra(
                  nn, MinPlusSemiring::infinity());
              std::vector<MinPlusSemiring::Value> rb(
                  nn, MinPlusSemiring::infinity());
              for (int t = 0; t < 3; ++t) {
                ra[rng.next_below(nn)] = rng.next_below(30);
                rb[rng.next_below(nn)] = rng.next_below(30);
              }
              auto rc = mm_distributed_sparse<MinPlusSemiring>(
                  ctx, MmShape{nn, nn, nn}, ra, rb, 8);
              sink.set(ctx.id(), rc);
              ctx.output(rc[0]);
            },
            ecfg);
        o.rows = sink.take();
        o.cost = run.cost;
        EXPECT_TRUE(o.trace.totals_match());
      }
    }
  }
  for (std::size_t i = 1; i < obs.size(); ++i) {
    EXPECT_EQ(obs[i].rows, obs[0].rows) << "config " << i;
    EXPECT_EQ(obs[i].cost.rounds, obs[0].cost.rounds) << "config " << i;
    EXPECT_EQ(obs[i].cost.messages, obs[0].cost.messages) << "config " << i;
    EXPECT_EQ(obs[i].cost.bits, obs[0].cost.bits) << "config " << i;
    EXPECT_EQ(obs[i].cost.collectives, obs[0].cost.collectives)
        << "config " << i;
    EXPECT_TRUE(obs[i].trace.deterministic_eq(obs[0].trace)) << "config " << i;
  }
}

// ---------- chaos soundness on the descriptor round ----------

// Runs the sparse schedule with a byzantine node whose descriptor words
// (collective 0) are rewritten by `mutate`; payload collectives pass
// through untouched. Every structural lie about a nonzero count must
// surface as a ModelViolation at a receiver.
void run_with_corrupt_descriptor(std::uint64_t (*mutate)(std::uint64_t)) {
  const NodeId nn = 12;
  ChaosPlan::Config cfg;
  cfg.seed = 5;
  cfg.byzantine = {0};
  cfg.adversary = [mutate](const AdversaryView& view) {
    if (view.collective != 0) return view.original.value;
    return mutate(view.original.value);
  };
  ChaosPlan plan(cfg);
  Engine::Config ecfg;
  ecfg.chaos = &plan;
  Engine::run(
      gen::empty(nn),
      [&](NodeCtx& ctx) {
        SplitMix64 rng(88 ^ (ctx.id() * 0x9e3779b9ULL));
        std::vector<MinPlusSemiring::Value> row(nn,
                                                MinPlusSemiring::infinity());
        for (int t = 0; t < 4; ++t) row[rng.next_below(nn)] = rng.next_below(30);
        auto rc = mm_distributed_sparse<MinPlusSemiring>(
            ctx, MmShape{nn, nn, nn}, row, row, 8);
        ctx.output(rc.empty() ? 0 : rc[0]);
      },
      ecfg);
}

TEST(SparseMMChaos, FlippedDescriptorCountRejected) {
  EXPECT_THROW(run_with_corrupt_descriptor(
                   [](std::uint64_t v) { return v ^ 1; }),
               ModelViolation);
}

TEST(SparseMMChaos, ZeroedDescriptorRejected) {
  // The byzantine plane cannot remove a word, so "drop" means the content
  // is wiped: the count field reads 0 while the payload still arrives.
  EXPECT_THROW(run_with_corrupt_descriptor(
                   [](std::uint64_t) { return std::uint64_t{0}; }),
               ModelViolation);
}

TEST(SparseMMChaos, RandomDropsRejected) {
  // Genuine word drops at 50%: some descriptor or payload word vanishes
  // while its counterpart survives, so a declared/received width check
  // fires. Deterministic for the fixed seed.
  const NodeId nn = 12;
  ChaosPlan::Config cfg;
  cfg.seed = 7;
  cfg.p_drop = 0.5;
  ChaosPlan plan(cfg);
  Engine::Config ecfg;
  ecfg.chaos = &plan;
  EXPECT_THROW(
      Engine::run(
          gen::empty(nn),
          [&](NodeCtx& ctx) {
            SplitMix64 rng(99 ^ (ctx.id() * 0x9e3779b9ULL));
            std::vector<MinPlusSemiring::Value> row(
                nn, MinPlusSemiring::infinity());
            for (int t = 0; t < 4; ++t)
              row[rng.next_below(nn)] = rng.next_below(30);
            auto rc = mm_distributed_sparse<MinPlusSemiring>(
                ctx, MmShape{nn, nn, nn}, row, row, 8);
            ctx.output(rc.empty() ? 0 : rc[0]);
          },
          ecfg),
      ModelViolation);
}

// ---------- graphalg routing ----------

TEST(SparseRouting, ApspSparse3dMatchesNaive) {
  const Graph g = gen::gnp_weighted(20, 0.2, 12, 42);
  const auto naive = apsp_clique(g, MmAlgo::kNaiveBroadcast);
  const auto sparse = apsp_clique(g, MmAlgo::kSparse3d);
  EXPECT_EQ(sparse.dist, naive.dist);
  const auto aut = apsp_clique(g, MmAlgo::kAuto);
  EXPECT_EQ(aut.dist, naive.dist);
}

TEST(SparseRouting, ClosureSparse3dMatchesNaive) {
  const Graph g = gen::gnp_directed(18, 0.08, 43);
  const auto naive = transitive_closure_clique(g, MmAlgo::kNaiveBroadcast);
  const auto sparse = transitive_closure_clique(g, MmAlgo::kSparse3d);
  EXPECT_EQ(sparse.reach, naive.reach);
}

TEST(SparseRouting, TriangleMmMatchesOracle) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    for (double p : {0.05, 0.15, 0.5}) {
      const Graph g = gen::gnp(16, p, seed);
      const auto res = triangle_mm_clique(g);
      const auto oracle_wit = oracle::k_clique(g, 3);
      EXPECT_EQ(res.found, oracle_wit.has_value())
          << "seed=" << seed << " p=" << p;
      if (res.found) {
        ASSERT_EQ(res.witness.size(), 3u);
        const auto& w = res.witness;
        EXPECT_TRUE(g.row(w[0]).get(w[1]) && g.row(w[0]).get(w[2]) &&
                    g.row(w[1]).get(w[2]))
            << "witness is not a triangle";
      }
    }
  }
  // Triangle-free: a star.
  Graph star = Graph::undirected(9);
  for (NodeId v = 1; v < 9; ++v) star.add_edge(0, v);
  EXPECT_FALSE(triangle_mm_clique(star).found);
}

TEST(SparseRouting, TriangleCliqueRoutesByDensity) {
  // Dense and sparse inputs must agree with the oracle regardless of which
  // internal path density routing picks.
  for (double p : {0.04, 0.6}) {
    const Graph g = gen::gnp(20, p, 77);
    EXPECT_EQ(triangle_clique(g).found, oracle::k_clique(g, 3).has_value())
        << "p=" << p;
  }
}

TEST(SparseRouting, GraphDensityBoundaryExact) {
  // n = 21 makes the 10% routing threshold exact: a 21-cycle has density
  // 2·21/(21·20) = 0.10, which routes sparse (the comparison is ≤); one
  // chord tips it over. Results must agree with the naive schedule on both
  // sides of the boundary.
  Graph ring = Graph::undirected(21);
  for (NodeId v = 0; v < 21; ++v)
    ring.add_edge(v, (v + 1) % 21, 1 + v % 5);
  ASSERT_EQ(graph_density(ring), kSparseMmMaxDensity);
  EXPECT_EQ(apsp_clique(ring, MmAlgo::kAuto).dist,
            apsp_clique(ring, MmAlgo::kNaiveBroadcast).dist);
  Graph chord = ring;
  chord.add_edge(0, 10, 3);
  ASSERT_GT(graph_density(chord), kSparseMmMaxDensity);
  EXPECT_EQ(apsp_clique(chord, MmAlgo::kAuto).dist,
            apsp_clique(chord, MmAlgo::kNaiveBroadcast).dist);
}

// ---------- pool-parallel SpGEMM ----------

// Fixed-grain row blocks + serial in-order assembly must make the parallel
// SpGEMM bit-identical to the serial kernel — same CSR structure including
// stored zeros — for every worker count and grain, in every semiring.
template <Semiring S>
void check_spgemm_parallel(std::uint64_t max_val, std::uint64_t seed) {
  using V = typename S::Value;
  SplitMix64 rng(seed);
  for (const std::size_t n : {1u, 33u, 120u}) {
    for (const double d : {0.0, 0.03, 0.3}) {
      const auto a = random_matrix<S>(n, n, d, max_val, rng);
      const auto b = random_matrix<S>(n, n, d, max_val, rng);
      const auto sa = SparseMatrix<V>::template from_dense<S>(a);
      const auto sb = SparseMatrix<V>::template from_dense<S>(b);
      const auto serial = kernels::spgemm<S>(sa, sb);
      // Pools sized explicitly so this holds even on 1-core hosts.
      for (const std::size_t workers : {1u, 3u, 8u}) {
        ThreadPool tp(workers);
        for (const std::size_t grain : {1u, 16u, 1000u}) {
          EXPECT_TRUE(kernels::spgemm_parallel<S>(sa, sb, grain, &tp) ==
                      serial)
              << "n=" << n << " d=" << d << " workers=" << workers
              << " grain=" << grain;
          EXPECT_TRUE(kernels::spgemm_rowmerge_parallel<S>(sa, sb, grain,
                                                           &tp) == serial)
              << "n=" << n << " d=" << d << " workers=" << workers
              << " grain=" << grain;
        }
      }
    }
  }
}

TEST(SpGemmParallel, BooleanDeterministicAcrossPools) {
  check_spgemm_parallel<BoolSemiring>(2, 51);
}
TEST(SpGemmParallel, MinPlusDeterministicAcrossPools) {
  check_spgemm_parallel<MinPlusSemiring>(30, 52);
}
TEST(SpGemmParallel, I64RingDeterministicAcrossPools) {
  check_spgemm_parallel<I64Ring>(9, 53);
}
TEST(SpGemmParallel, MaxMinDeterministicAcrossPools) {
  check_spgemm_parallel<MaxMinSemiring>(15, 54);
}

TEST(SpGemmParallel, AutoDispatchMatchesSerialAroundRowFloor) {
  // spgemm_auto may or may not shard (host- and caller-dependent); its
  // result must be the serial kernel's either way, on both sides of the
  // kParallelMinRows floor.
  SplitMix64 rng(55);
  for (const std::size_t n :
       {kernels::kParallelMinRows - 1, kernels::kParallelMinRows,
        kernels::kParallelMinRows + 70}) {
    const auto a = random_matrix<MinPlusSemiring>(n, n, 0.04, 50, rng);
    const auto b = random_matrix<MinPlusSemiring>(n, n, 0.04, 50, rng);
    const auto sa = SparseMatrix<std::uint64_t>::from_dense<MinPlusSemiring>(a);
    const auto sb = SparseMatrix<std::uint64_t>::from_dense<MinPlusSemiring>(b);
    EXPECT_TRUE(kernels::spgemm_auto<MinPlusSemiring>(sa, sb) ==
                kernels::spgemm<MinPlusSemiring>(sa, sb))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace ccq
