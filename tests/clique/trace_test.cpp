// Round-trace suite (clique/trace.hpp).
//
// Pins the three contracts the trace header promises:
//   * determinism — every cost-side record field (and every span) is a pure
//     function of the program and instance, identical across
//     {kLegacy,kFlat} planes × {kPooled,kThreadPerNode} backends × worker
//     counts, asserted on randomised traffic with nested spans;
//   * ledger exactness — per-record rounds/messages/bits sum to the
//     CostMeter totals, per-phase totals partition them, and the plane's
//     receiver-side max always agrees with the per-node delta scan (the
//     engine CCQ_CHECKs that on every traced collective);
//   * lifecycle — spans unwind and close on ModelViolation aborts, the
//     acquire is released on every exit path, nested/concurrent runs fall
//     back to untraced instead of interleaving, and the JSONL schema
//     round-trips through load_jsonl.

#include "clique/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "clique/engine.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

struct TraceSetup {
  MessagePlaneKind plane;
  ExecutionBackend backend;
  std::size_t workers;  // pooled: worker cap; sharded: shard count; 0 = hw
  const char* name;
};

const TraceSetup kSetups[] = {
    {MessagePlaneKind::kLegacy, ExecutionBackend::kThreadPerNode, 0,
     "legacy/thread-per-node"},
    {MessagePlaneKind::kLegacy, ExecutionBackend::kPooled, 2,
     "legacy/pooled-2"},
    {MessagePlaneKind::kLegacy, ExecutionBackend::kPooled, 0,
     "legacy/pooled-hw"},
    {MessagePlaneKind::kFlat, ExecutionBackend::kThreadPerNode, 0,
     "flat/thread-per-node"},
    {MessagePlaneKind::kFlat, ExecutionBackend::kPooled, 2, "flat/pooled-2"},
    {MessagePlaneKind::kFlat, ExecutionBackend::kPooled, 0, "flat/pooled-hw"},
    {MessagePlaneKind::kLegacy, ExecutionBackend::kSharded, 0,
     "legacy/sharded-hw"},
    {MessagePlaneKind::kFlat, ExecutionBackend::kSharded, 3,
     "flat/sharded-3"},  // non-dividing shard count for n in {5, 26}
};

Engine::Config config_for(const TraceSetup& s, RoundTrace* trace) {
  Engine::Config cfg;
  cfg.plane = s.plane;
  cfg.backend = s.backend;
  cfg.workers = s.workers;
  cfg.trace = trace;
  return cfg;
}

// Randomised traffic with nested spans: a labelled exchange phase (word
// widths and fan-out vary per node and seed), an unlabelled round, and a
// labelled broadcast, so every opcode and the span plumbing show up in one
// trace.
void traced_program(NodeCtx& ctx, std::uint64_t seed) {
  const NodeId n = ctx.n();
  const unsigned B = ctx.bandwidth();
  SplitMix64 rng(seed * 1000003 + ctx.id() * 7919);
  CCQ_TRACE_SPAN(ctx, "outer");

  {
    CCQ_TRACE_SPAN(ctx, "exchange-phase");
    std::vector<std::pair<NodeId, Word>> sends;
    const std::uint64_t count = rng.next_below(2 * n + 1);
    for (std::uint64_t i = 0; i < count; ++i) {
      const unsigned bits = 1 + static_cast<unsigned>(rng.next_below(B));
      sends.emplace_back(
          static_cast<NodeId>(rng.next_below(n)),
          Word(rng.next() & ((bits == 64 ? ~0ull : (1ull << bits) - 1)),
               bits));
    }
    const FlatInbox in = ctx.exchange_flat(sends);
    std::uint64_t fp = 0;
    for (NodeId src = 0; src < n; ++src) {
      for (const Word& w : in.from(src)) fp += src * 131 + w.value + w.bits;
    }
    // Fold the fingerprint into later traffic so content divergence would
    // cascade into metered differences.
    seed ^= fp;
  }

  std::vector<std::pair<NodeId, Word>> ring;
  if (n > 1 && (seed + ctx.id()) % 3 != 0) {
    ring.emplace_back((ctx.id() + 1) % n, Word((seed ^ ctx.id()) & 1, 1));
  }
  (void)ctx.round_flat(ring);

  {
    CCQ_TRACE_SPAN(ctx, "broadcast-phase");
    BitVector mine;
    for (unsigned i = 0; i < 2 * B + 1; ++i) mine.push_back((seed >> i) & 1);
    (void)ctx.broadcast(mine);
  }

  ctx.output(seed & 0xffff);
}

RunResult run_traced(const TraceSetup& s, RoundTrace* trace, NodeId n,
                     std::uint64_t seed) {
  return Engine::run(
      gen::empty(n), [seed](NodeCtx& ctx) { traced_program(ctx, seed); },
      config_for(s, trace));
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// Determinism across planes × backends × worker counts
// ---------------------------------------------------------------------------

TEST(TraceDeterminism, RecordsAndSpansIdenticalAcrossSetups) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const NodeId n = 5 + static_cast<NodeId>(seed % 4) * 7;  // 5..26
    RoundTrace ref;
    const RunResult ref_result = run_traced(kSetups[0], &ref, n, seed);
    ASSERT_FALSE(ref.records().empty());
    ASSERT_TRUE(ref.totals_match());
    for (std::size_t i = 1; i < std::size(kSetups); ++i) {
      RoundTrace got;
      const RunResult result = run_traced(kSetups[i], &got, n, seed);
      EXPECT_EQ(ref_result.outputs, result.outputs) << kSetups[i].name;
      EXPECT_TRUE(ref.deterministic_eq(got))
          << kSetups[i].name << " seed=" << seed;
      EXPECT_TRUE(got.totals_match()) << kSetups[i].name;
    }
  }
}

TEST(TraceDeterminism, TracingDoesNotChangeMeteredCost) {
  const NodeId n = 16;
  for (const TraceSetup& s : kSetups) {
    RoundTrace trace;
    const RunResult traced = run_traced(s, &trace, n, 3);
    const RunResult bare = run_traced(s, nullptr, n, 3);
    EXPECT_EQ(bare.outputs, traced.outputs) << s.name;
    EXPECT_EQ(bare.cost.rounds, traced.cost.rounds) << s.name;
    EXPECT_EQ(bare.cost.messages, traced.cost.messages) << s.name;
    EXPECT_EQ(bare.cost.bits, traced.cost.bits) << s.name;
    EXPECT_EQ(bare.cost.collectives, traced.cost.collectives) << s.name;
    EXPECT_EQ(bare.cost.max_node_sent, traced.cost.max_node_sent) << s.name;
    EXPECT_EQ(bare.cost.max_node_received, traced.cost.max_node_received)
        << s.name;
  }
}

// ---------------------------------------------------------------------------
// Ledger contents
// ---------------------------------------------------------------------------

TEST(TraceLedger, RecordsSumToMeterAndPhasesPartition) {
  RoundTrace trace;
  const RunResult result = run_traced(kSetups[4], &trace, 12, 1);

  EXPECT_TRUE(trace.totals_match());
  EXPECT_EQ(trace.metered_totals().rounds, result.cost.rounds);
  EXPECT_EQ(trace.metered_totals().bits, result.cost.bits);
  EXPECT_EQ(trace.runs(), 1u);

  // One record per collective, op labels from the engine's opcode set,
  // contiguous round intervals, utilisation within the model's capacity.
  std::uint64_t expect_begin = 0;
  for (const TraceRecord& r : trace.records()) {
    EXPECT_TRUE(r.op == "round" || r.op == "exchange" || r.op == "broadcast")
        << r.op;
    EXPECT_EQ(r.round_begin, expect_begin);
    expect_begin += r.rounds;
    EXPECT_GE(r.cap_utilisation, 0.0);
    EXPECT_LE(r.cap_utilisation, 1.0);
    // Histograms cover every node exactly once.
    EXPECT_EQ(r.sent_hist.nodes(), 12u);
    EXPECT_EQ(r.received_hist.nodes(), 12u);
    EXPECT_GE(r.bits, r.messages);  // every word is >= 1 bit
  }
  EXPECT_EQ(expect_begin, result.cost.rounds);

  // Phase totals partition the meter; the labels are the program's spans.
  const auto phases = trace.phase_totals();
  EXPECT_TRUE(phases.count("exchange-phase"));
  EXPECT_TRUE(phases.count("broadcast-phase"));
  EXPECT_TRUE(phases.count("outer"));  // the bare round_flat between spans
  std::uint64_t rounds = 0, bits = 0, collectives = 0;
  for (const auto& [label, t] : phases) {
    rounds += t.rounds;
    bits += t.bits;
    collectives += t.collectives;
  }
  EXPECT_EQ(rounds, result.cost.rounds);
  EXPECT_EQ(bits, result.cost.bits);
  EXPECT_EQ(collectives, result.cost.collectives);
}

TEST(TraceLedger, ReceiverSideMaxMatchesKnownPattern) {
  // Every node sends 3 words to node 0: receiver max = 3 * (n - 1) at node
  // 0 (self excluded), sender max = 3. Both planes must report it.
  const NodeId n = 9;
  for (MessagePlaneKind plane :
       {MessagePlaneKind::kLegacy, MessagePlaneKind::kFlat}) {
    RoundTrace trace;
    Engine::Config cfg;
    cfg.plane = plane;
    cfg.trace = &trace;
    Engine::run(
        gen::empty(n),
        [](NodeCtx& ctx) {
          std::vector<std::pair<NodeId, Word>> sends;
          if (ctx.id() != 0) {
            for (int i = 0; i < 3; ++i) sends.emplace_back(0, Word(1, 1));
          }
          (void)ctx.exchange_flat(sends);
          ctx.output(0);
        },
        cfg);
    ASSERT_EQ(trace.records().size(), 1u);
    const TraceRecord& r = trace.records()[0];
    EXPECT_EQ(r.max_sent, 3u);
    EXPECT_EQ(r.max_received, 3u * (n - 1));
    EXPECT_EQ(r.rounds, 3u);  // one hot pair drains 3 per round
    // Histogram shape: node 0 sent nothing, everyone else 3 words; node 0
    // received 24 words, everyone else 0.
    EXPECT_EQ(r.sent_hist.bucket[0], 1u);
    EXPECT_EQ(r.received_hist.bucket[0], static_cast<std::uint32_t>(n - 1));
  }
}

TEST(TraceLedger, SpanCoordinatesAndNesting) {
  RoundTrace trace;
  const NodeId n = 6;
  Engine::Config cfg;
  cfg.trace = &trace;
  Engine::run(
      gen::empty(n),
      [](NodeCtx& ctx) {
        EXPECT_TRUE(ctx.tracing());
        CCQ_TRACE_SPAN(ctx, "a");
        (void)ctx.round_flat({});
        {
          CCQ_TRACE_SPAN(ctx, "b");
          (void)ctx.round_flat({});
          (void)ctx.round_flat({});
        }
        ctx.output(0);
      },
      cfg);

  // Per node: span "a" over collectives [0, 3), depth 0; "b" over [1, 3),
  // depth 1. Spans flush in node-id order.
  ASSERT_EQ(trace.spans().size(), 2u * n);
  for (NodeId v = 0; v < n; ++v) {
    const TraceSpanEvent& a = trace.spans()[2 * v];
    const TraceSpanEvent& b = trace.spans()[2 * v + 1];
    EXPECT_EQ(a.node, v);
    EXPECT_EQ(a.label, "a");
    EXPECT_EQ(a.depth, 0u);
    EXPECT_EQ(a.begin_collective, 0u);
    EXPECT_EQ(a.end_collective, 3u);
    EXPECT_EQ(a.begin_round, 0u);
    EXPECT_EQ(a.end_round, 3u);
    EXPECT_EQ(b.label, "b");
    EXPECT_EQ(b.depth, 1u);
    EXPECT_EQ(b.begin_collective, 1u);
    EXPECT_EQ(b.end_collective, 3u);
  }
  // Phase attribution: collective 0 under "a", 1 and 2 under "b".
  ASSERT_EQ(trace.records().size(), 3u);
  EXPECT_EQ(trace.records()[0].phase, "a");
  EXPECT_EQ(trace.records()[1].phase, "b");
  EXPECT_EQ(trace.records()[2].phase, "b");
}

TEST(TraceLedger, HistogramBuckets) {
  TraceHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(7);
  h.add(8);
  h.add(~0ull);
  EXPECT_EQ(h.bucket[0], 1u);  // zero
  EXPECT_EQ(h.bucket[1], 1u);  // [1, 2)
  EXPECT_EQ(h.bucket[2], 2u);  // [2, 4)
  EXPECT_EQ(h.bucket[3], 2u);  // [4, 8)
  EXPECT_EQ(h.bucket[4], 1u);  // [8, 16)
  EXPECT_EQ(h.bucket[TraceHistogram::kBuckets - 1], 1u);  // overflow bucket
  EXPECT_EQ(h.nodes(), 8u);
}

// ---------------------------------------------------------------------------
// Lifecycle: aborts, acquire/release, nested runs
// ---------------------------------------------------------------------------

TEST(TraceLifecycle, SpansUnwindAndCloseOnModelViolation) {
  for (const TraceSetup& s : kSetups) {
    RoundTrace trace;
    const NodeId n = 6;
    EXPECT_THROW(
        Engine::run(
            gen::empty(n),
            [](NodeCtx& ctx) {
              CCQ_TRACE_SPAN(ctx, "outer");
              (void)ctx.round_flat({});
              CCQ_TRACE_SPAN(ctx, "doomed");
              std::vector<std::pair<NodeId, Word>> sends;
              if (ctx.id() == 0) {
                // One bit over B: rejected in the deposit scan, aborting
                // the run mid-collective.
                sends.emplace_back(1, Word(0, ctx.bandwidth() + 1));
              }
              (void)ctx.exchange_flat(sends);
              ctx.output(0);
            },
            config_for(s, &trace)),
        ModelViolation)
        << s.name;

    // Every node deposited in collective 0, so every node opened "outer";
    // whether a node also reached the "doomed" push before the abort killed
    // it is backend-dependent (a parked pooled fiber is aborted inside the
    // first rendezvous and never returns to the program body). What IS
    // guaranteed: no span dangles, everything closes at the abort
    // coordinates (1 committed collective / 1 committed round), and the
    // violating node recorded both spans.
    std::size_t outer = 0, doomed = 0;
    for (const TraceSpanEvent& ev : trace.spans()) {
      EXPECT_EQ(ev.end_collective, 1u) << s.name;
      EXPECT_EQ(ev.end_round, 1u) << s.name;
      if (ev.label == "outer") {
        ++outer;
        EXPECT_EQ(ev.begin_collective, 0u) << s.name;
      } else {
        ASSERT_EQ(ev.label, "doomed") << s.name;
        ++doomed;
        EXPECT_EQ(ev.begin_collective, 1u) << s.name;
      }
    }
    EXPECT_EQ(outer, static_cast<std::size_t>(n)) << s.name;
    EXPECT_GE(doomed, 1u) << s.name;
    EXPECT_LE(doomed, static_cast<std::size_t>(n)) << s.name;
    // The aborted collective was never metered; the clean round was.
    EXPECT_EQ(trace.records().size(), 1u) << s.name;
    EXPECT_TRUE(trace.totals_match()) << s.name;
    // The acquire was released: the same trace records a fresh run.
    const RunResult ok = run_traced(s, &trace, 4, 0);
    EXPECT_EQ(trace.runs(), 2u) << s.name;
    EXPECT_TRUE(trace.totals_match()) << s.name;
    EXPECT_EQ(trace.metered_totals().rounds, 1 + ok.cost.rounds) << s.name;
  }
}

TEST(TraceLifecycle, MultiRunAccumulationAndChromeOffsets) {
  RoundTrace trace;
  Engine::Config cfg;
  cfg.trace = &trace;
  const auto one_round = [](NodeCtx& ctx) {
    (void)ctx.round_flat({});
    (void)ctx.round_flat({});
    ctx.output(0);
  };
  Engine::run(gen::empty(4), one_round, cfg);
  Engine::run(gen::empty(8), one_round, cfg);

  ASSERT_EQ(trace.runs(), 2u);
  EXPECT_EQ(trace.run_info()[0].rounds, 2u);
  EXPECT_EQ(trace.run_info()[1].round_offset, 2u);  // laid back to back
  ASSERT_EQ(trace.records().size(), 4u);
  EXPECT_EQ(trace.records()[2].run, 1u);
  EXPECT_EQ(trace.records()[2].collective, 0u);  // per-run numbering
  EXPECT_TRUE(trace.totals_match());

  trace.clear();
  EXPECT_EQ(trace.runs(), 0u);
  EXPECT_TRUE(trace.records().empty());
}

TEST(TraceLifecycle, NestedRunsFallBackToUntraced) {
  RoundTrace trace;
  trace::set_global(&trace);
  // Thread-per-node outer backend: each node runs on a full OS thread, so
  // the nested Engine::run below executes on a regular stack (a pooled
  // fiber stack is not sized for a whole nested engine).
  Engine::Config cfg;
  cfg.backend = ExecutionBackend::kThreadPerNode;
  const RunResult outer = Engine::run(
      gen::empty(2),
      [](NodeCtx& ctx) {
        (void)ctx.round_flat({});
        // Nested simulation while the outer run holds the global trace: the
        // inner run must execute untraced, not interleave records.
        const RunResult inner = Engine::run(gen::empty(2), [](NodeCtx& ic) {
          (void)ic.round_flat({});
          ic.output(1);
        });
        ctx.output(inner.cost.rounds);
      },
      cfg);
  trace::set_global(nullptr);

  EXPECT_EQ(outer.outputs, std::vector<std::uint64_t>(2, 1));  // inner rounds
  EXPECT_EQ(trace.runs(), 1u);
  ASSERT_EQ(trace.records().size(), 1u);  // the outer round only
  EXPECT_TRUE(trace.totals_match());
}

TEST(TraceLifecycle, ConfigTraceOverridesGlobal) {
  RoundTrace global_trace, local_trace;
  trace::set_global(&global_trace);
  Engine::Config cfg;
  cfg.trace = &local_trace;
  Engine::run(
      gen::empty(4),
      [](NodeCtx& ctx) {
        (void)ctx.round_flat({});
        ctx.output(0);
      },
      cfg);
  trace::set_global(nullptr);
  EXPECT_EQ(global_trace.runs(), 0u);
  EXPECT_EQ(local_trace.runs(), 1u);
}

TEST(TraceLifecycle, UntracedRunsCostNoRecordsAndSpansNoop) {
  const RunResult r = Engine::run(gen::empty(4), [](NodeCtx& ctx) {
    EXPECT_FALSE(ctx.tracing());
    CCQ_TRACE_SPAN(ctx, "ignored");
    (void)ctx.round_flat({});
    ctx.output(0);
  });
  EXPECT_EQ(r.cost.rounds, 1u);
}

// ---------------------------------------------------------------------------
// Export round-trips
// ---------------------------------------------------------------------------

TEST(TraceExport, JsonlRoundTrip) {
  RoundTrace trace;
  run_traced(kSetups[4], &trace, 11, 5);
  run_traced(kSetups[4], &trace, 7, 6);

  const std::string path = temp_path("trace_roundtrip.jsonl");
  ASSERT_TRUE(trace.write_jsonl(path));

  RoundTrace loaded;
  ASSERT_TRUE(RoundTrace::load_jsonl(path, &loaded));
  EXPECT_TRUE(trace.deterministic_eq(loaded));
  EXPECT_EQ(loaded.runs(), trace.runs());
  EXPECT_EQ(loaded.metered_totals().rounds, trace.metered_totals().rounds);
  EXPECT_EQ(loaded.metered_totals().messages,
            trace.metered_totals().messages);
  EXPECT_EQ(loaded.metered_totals().bits, trace.metered_totals().bits);
  EXPECT_TRUE(loaded.totals_match());
  // Observability-only fields survive the round-trip too.
  for (std::size_t i = 0; i < trace.records().size(); ++i) {
    EXPECT_EQ(trace.records()[i].delivery_ms, loaded.records()[i].delivery_ms);
    EXPECT_EQ(trace.records()[i].fiber_switches,
              loaded.records()[i].fiber_switches);
  }
  std::remove(path.c_str());
}

TEST(TraceExport, LoadRejectsGarbage) {
  const std::string path = temp_path("trace_garbage.jsonl");
  {
    std::ofstream f(path);
    f << "{\"type\":\"nonsense\"}\n";
  }
  RoundTrace loaded;
  EXPECT_FALSE(RoundTrace::load_jsonl(path, &loaded));
  EXPECT_FALSE(RoundTrace::load_jsonl(temp_path("does_not_exist.jsonl"),
                                      &loaded));
  std::remove(path.c_str());
}

TEST(TraceExport, ChromeFileIsWellFormed) {
  RoundTrace trace;
  run_traced(kSetups[4], &trace, 9, 2);
  const std::string path = temp_path("trace_chrome.json");
  ASSERT_TRUE(trace.write_chrome(path));

  // Structural smoke check without a JSON parser: the writer emits one
  // event object per line between the traceEvents brackets; brace balance
  // and the required keys must hold.
  std::ifstream f(path);
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(all.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(all.find("\"cat\":\"collective\""), std::string::npos);
  EXPECT_NE(all.find("\"cat\":\"span\""), std::string::npos);
  std::int64_t depth = 0;
  for (char c : all) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ccq
