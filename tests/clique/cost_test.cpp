#include "clique/cost.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "clique/engine.hpp"
#include "graph/generators.hpp"

namespace ccq {
namespace {

TEST(CostMeter, AddAccumulatesTotals) {
  CostMeter a;
  a.rounds = 3;
  a.messages = 10;
  a.bits = 40;
  a.collectives = 2;
  CostMeter b;
  b.rounds = 4;
  b.messages = 5;
  b.bits = 15;
  b.collectives = 1;
  a.add(b);
  EXPECT_EQ(a.rounds, 7u);
  EXPECT_EQ(a.messages, 15u);
  EXPECT_EQ(a.bits, 55u);
  EXPECT_EQ(a.collectives, 3u);
}

TEST(CostMeter, AddTakesMaxOfPerNodeMaxima) {
  // max_node_sent / max_node_received are run-wide maxima, not totals:
  // composing two phases must take the heavier phase, not the sum (summing
  // would inflate the Lenzen-routing statistic the bounds are stated in).
  CostMeter a;
  a.max_node_sent = 7;
  a.max_node_received = 5;
  CostMeter b;
  b.max_node_sent = 4;
  b.max_node_received = 9;
  a.add(b);
  EXPECT_EQ(a.max_node_sent, 7u);
  EXPECT_EQ(a.max_node_received, 9u);
}

TEST(CostMeter, ComposingTwoEngineRunsKeepsMaxSemantics) {
  const Graph g = gen::empty(5);
  // Phase 1: node 0 sends 6 words to node 1. Phase 2: node 1 sends 2 words
  // each to nodes 0 and 2.
  auto phase1 = Engine::run(g, [](NodeCtx& ctx) {
    WordQueues out(ctx.n());
    if (ctx.id() == 0) {
      for (int i = 0; i < 6; ++i) out[1].emplace_back(i % 2, 1);
    }
    ctx.exchange(out);
    ctx.output(0);
  });
  auto phase2 = Engine::run(g, [](NodeCtx& ctx) {
    WordQueues out(ctx.n());
    if (ctx.id() == 1) {
      for (int i = 0; i < 2; ++i) {
        out[0].emplace_back(i % 2, 1);
        out[2].emplace_back(i % 2, 1);
      }
    }
    ctx.exchange(out);
    ctx.output(0);
  });
  ASSERT_EQ(phase1.cost.max_node_sent, 6u);
  ASSERT_EQ(phase2.cost.max_node_sent, 4u);

  CostMeter composed = phase1.cost;
  composed.add(phase2.cost);
  EXPECT_EQ(composed.rounds, phase1.cost.rounds + phase2.cost.rounds);
  EXPECT_EQ(composed.messages, 6u + 4u);
  EXPECT_EQ(composed.max_node_sent,
            std::max(phase1.cost.max_node_sent, phase2.cost.max_node_sent));
  EXPECT_EQ(composed.max_node_received,
            std::max(phase1.cost.max_node_received,
                     phase2.cost.max_node_received));
}

TEST(CostMeter, AddRefusesToWrapSixtyFourBits) {
  // Regression: add() used to wrap silently. A meter accumulated across a
  // long campaign sits near the top of the range; folding in one more
  // collective's delta (here an n·B product: a full n = 8192 round at
  // B = 13) must throw, not wrap to a tiny total.
  CostMeter total;
  total.bits = ~std::uint64_t{0} - 100;
  CostMeter delta;
  delta.bits = 8192ull * 13ull;
  EXPECT_THROW(total.add(delta), ModelViolation);

  CostMeter rounds_hi;
  rounds_hi.rounds = ~std::uint64_t{0};
  CostMeter one_round;
  one_round.rounds = 1;
  EXPECT_THROW(rounds_hi.add(one_round), ModelViolation);

  // Maxima are max-composed, never summed: saturated maxima stay legal.
  CostMeter maxed;
  maxed.max_node_sent = ~std::uint64_t{0};
  CostMeter more;
  more.max_node_sent = 5;
  maxed.add(more);
  EXPECT_EQ(maxed.max_node_sent, ~std::uint64_t{0});
}

}  // namespace
}  // namespace ccq
