// Tests for the CONGEST-model restriction and the bottleneck phenomenon
// that motivates the congested clique (§2).

#include "clique/congest.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

TEST(Congest, NeighbourSendsDelivered) {
  Graph g = gen::path(4);
  auto r = run_congest(g, [](CongestCtx& ctx) {
    std::vector<std::pair<NodeId, Word>> sends;
    if (ctx.id() + 1 < ctx.n())
      sends.emplace_back(ctx.id() + 1, Word(1, 1));
    auto in = ctx.round(sends);
    if (ctx.id() > 0) {
      EXPECT_TRUE(in[ctx.id() - 1].has_value());
    }
    ctx.output(0);
  });
  EXPECT_EQ(r.cost.rounds, 1u);
}

TEST(Congest, NonEdgeSendRejected) {
  Graph g = gen::path(4);  // 0 and 3 not adjacent
  EXPECT_THROW(run_congest(g,
                           [](CongestCtx& ctx) {
                             std::vector<std::pair<NodeId, Word>> sends;
                             if (ctx.id() == 0)
                               sends.emplace_back(3, Word(1, 1));
                             ctx.round(sends);
                             ctx.output(0);
                           }),
               ModelViolation);
}

// Flooding a token takes eccentricity rounds — distance is real in
// CONGEST, unlike in the clique.
TEST(Congest, FloodingTakesDiameterRounds) {
  const NodeId n = 12;
  Graph g = gen::path(n);
  auto r = run_congest(g, [](CongestCtx& ctx) {
    bool have = ctx.id() == 0;
    std::uint64_t heard_at = have ? 0 : ~0ull;
    for (NodeId step = 0; step + 1 < ctx.n(); ++step) {
      std::vector<std::pair<NodeId, Word>> sends;
      if (have) {
        const BitVector& row = ctx.adj_row();
        for (std::size_t u = row.find_first(); u < row.size();
             u = row.find_first(u + 1)) {
          sends.emplace_back(static_cast<NodeId>(u), Word(1, 1));
        }
      }
      auto in = ctx.round(sends);
      if (!have) {
        for (NodeId v = 0; v < ctx.n(); ++v) {
          if (in[v]) {
            have = true;
            heard_at = step + 1;
            break;
          }
        }
      }
    }
    ctx.output(heard_at);
  });
  for (NodeId v = 0; v < n; ++v) EXPECT_EQ(r.outputs[v], v);  // dist to 0
}

// The §2 bottleneck: two cliques joined by a single bridge. Moving L bits
// across costs ⌈L/B⌉ rounds in CONGEST (all flow crosses one edge), vs
// ⌈L/(B·(n/2))⌉-ish in the clique where the cut has Θ(n²) capacity.
TEST(Congest, BridgeBottleneckVsClique) {
  const NodeId n = 16;
  const NodeId half = n / 2;
  Graph g = Graph::undirected(n);
  for (NodeId u = 0; u < half; ++u)
    for (NodeId v = u + 1; v < half; ++v) g.add_edge(u, v);
  for (NodeId u = half; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  g.add_edge(half - 1, half);  // the bridge

  // Task: node n-1 must learn an L-bit string held by node 0.
  const unsigned L = 64;
  const unsigned B = node_id_bits(n);

  // CONGEST: relay 0 → ... → bridge → ... → n-1 along a path; every bit
  // crosses the single bridge edge: ≥ ⌈L/B⌉ rounds just for the cut.
  auto congest_run = run_congest(g, [L, half](CongestCtx& ctx) {
    const unsigned B = ctx.bandwidth();
    const unsigned chunks = static_cast<unsigned>(ceil_div(L, B));
    // Pipeline along the path 0, 1, ..., n-1 (all consecutive ids are
    // adjacent in this construction).
    std::vector<std::uint64_t> buffer;
    SplitMix64 src_bits(7);
    if (ctx.id() == 0) {
      for (unsigned c = 0; c < chunks; ++c)
        buffer.push_back(src_bits.next() & ((1ull << B) - 1));
    }
    std::uint64_t received_chunks = 0;
    const unsigned total_steps = chunks + ctx.n();
    for (unsigned step = 0; step < total_steps; ++step) {
      std::vector<std::pair<NodeId, Word>> sends;
      if (!buffer.empty() && ctx.id() + 1 < ctx.n()) {
        sends.emplace_back(ctx.id() + 1, Word(buffer.front(), B));
        buffer.erase(buffer.begin());
      }
      auto in = ctx.round(sends);
      if (ctx.id() > 0 && in[ctx.id() - 1]) {
        buffer.push_back(in[ctx.id() - 1]->value);
        if (ctx.id() + 1 == ctx.n()) ++received_chunks;
      }
    }
    (void)half;
    ctx.output(ctx.id() + 1 == ctx.n() ? received_chunks : 0);
  });
  const auto congest_rounds = congest_run.cost.rounds;
  EXPECT_EQ(congest_run.outputs[n - 1], ceil_div(L, B));

  // Clique: node 0 stripes the chunks across n-1 helpers (1 round), which
  // forward to n-1 (1 round): 2 + ⌈L/(B(n-1))⌉-ish rounds.
  auto clique_run = Engine::run(g, [L](NodeCtx& ctx) {
    const unsigned B = ctx.bandwidth();
    const unsigned chunks = static_cast<unsigned>(ceil_div(L, B));
    SplitMix64 src_bits(7);
    WordQueues out(ctx.n());
    if (ctx.id() == 0) {
      for (unsigned c = 0; c < chunks; ++c) {
        out[1 + (c % (ctx.n() - 1))].emplace_back(
            src_bits.next() & ((1ull << B) - 1), B);
      }
    }
    auto in = ctx.exchange(out);
    WordQueues fwd(ctx.n());
    if (ctx.id() != 0) {
      for (const Word& w : in[0]) fwd[ctx.n() - 1].push_back(w);
    }
    auto fin = ctx.exchange(fwd);
    std::uint64_t got = 0;
    if (ctx.id() + 1 == ctx.n()) {
      for (NodeId v = 0; v < ctx.n(); ++v) got += fin[v].size();
      got += fwd[ctx.n() - 1].size() ? 0 : 0;
    }
    ctx.output(got);
  });
  EXPECT_GE(congest_rounds, ceil_div(L, B));
  EXPECT_LT(clique_run.cost.rounds, congest_rounds / 2);
}

}  // namespace
}  // namespace ccq
