// Equivalence suite for the message planes (clique/msgplane.hpp).
//
// The plane contract promises bit-for-bit identical RunResults — outputs
// and every CostMeter field — between the legacy per-pair-queue plane and
// the flat arena plane, on either execution backend and any worker count.
// The property test below drives ~100 randomised traffic patterns
// (skewed all-to-all, single hot pair, empty, random sparse with
// self-sends) through every (plane, backend) combination and requires the
// results to match the legacy/thread-per-node reference exactly. Targeted
// tests pin the flat-specific behaviours: span views matching queue
// views, FIFO order, free self-delivery, validation at deposit time.

#include "clique/msgplane.hpp"

#include <gtest/gtest.h>

#include "clique/engine.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

struct PlaneSetup {
  MessagePlaneKind plane;
  ExecutionBackend backend;
  std::size_t workers;  // pooled: worker cap; sharded: shard count; 0 = hw
  const char* name;
};

const PlaneSetup kSetups[] = {
    {MessagePlaneKind::kLegacy, ExecutionBackend::kThreadPerNode, 0,
     "legacy/thread-per-node"},
    {MessagePlaneKind::kLegacy, ExecutionBackend::kPooled, 2,
     "legacy/pooled-2"},
    {MessagePlaneKind::kLegacy, ExecutionBackend::kPooled, 0,
     "legacy/pooled-hw"},
    {MessagePlaneKind::kFlat, ExecutionBackend::kThreadPerNode, 0,
     "flat/thread-per-node"},
    {MessagePlaneKind::kFlat, ExecutionBackend::kPooled, 2, "flat/pooled-2"},
    {MessagePlaneKind::kFlat, ExecutionBackend::kPooled, 0, "flat/pooled-hw"},
    {MessagePlaneKind::kLegacy, ExecutionBackend::kSharded, 3,
     "legacy/sharded-3"},
    {MessagePlaneKind::kFlat, ExecutionBackend::kSharded, 5,
     "flat/sharded-5"},  // non-dividing shard count
    {MessagePlaneKind::kFlat, ExecutionBackend::kSharded, 0,
     "flat/sharded-hw"},
};

Engine::Config config_for(const PlaneSetup& s) {
  Engine::Config cfg;
  cfg.plane = s.plane;
  cfg.backend = s.backend;
  cfg.workers = s.workers;
  return cfg;
}

void expect_same_result(const RunResult& ref, const RunResult& got,
                        const std::string& name) {
  EXPECT_EQ(ref.outputs, got.outputs) << name;
  EXPECT_EQ(ref.cost.rounds, got.cost.rounds) << name;
  EXPECT_EQ(ref.cost.messages, got.cost.messages) << name;
  EXPECT_EQ(ref.cost.bits, got.cost.bits) << name;
  EXPECT_EQ(ref.cost.collectives, got.cost.collectives) << name;
  EXPECT_EQ(ref.cost.max_node_sent, got.cost.max_node_sent) << name;
  EXPECT_EQ(ref.cost.max_node_received, got.cost.max_node_received) << name;
}

// One traffic pattern = (seed, kind). Sends are (dst, word) lists, possibly
// with repeats per destination and self-sends (legal in exchange).
enum PatternKind : int {
  kSkewedAllToAll = 0,
  kSingleHotPair = 1,
  kEmpty = 2,
  kRandomSparse = 3,
  kPatternKinds = 4,
};

std::vector<std::pair<NodeId, Word>> make_sends(NodeCtx& ctx,
                                                std::uint64_t seed,
                                                int kind) {
  const NodeId n = ctx.n();
  const unsigned B = ctx.bandwidth();
  SplitMix64 rng(seed * 1000003 + ctx.id() * 7919 + kind);
  std::vector<std::pair<NodeId, Word>> sends;
  auto word = [&] {
    const unsigned bits = 1 + static_cast<unsigned>(rng.next_below(B));
    return Word(rng.next() & ((bits == 64 ? ~0ull : (1ull << bits) - 1)),
                bits);
  };
  switch (kind) {
    case kSkewedAllToAll:
      for (NodeId dst = 0; dst < n; ++dst) {
        const NodeId reps = (ctx.id() + dst) % 4;
        for (NodeId i = 0; i < reps; ++i) sends.emplace_back(dst, word());
      }
      break;
    case kSingleHotPair:
      if (ctx.id() == static_cast<NodeId>(seed % n)) {
        const NodeId dst = static_cast<NodeId>((seed + 1) % n);
        for (NodeId i = 0; i < 3 * n; ++i) sends.emplace_back(dst, word());
      }
      break;
    case kEmpty:
      break;
    case kRandomSparse: {
      const std::uint64_t count = rng.next_below(2 * n + 1);
      for (std::uint64_t i = 0; i < count; ++i) {
        sends.emplace_back(static_cast<NodeId>(rng.next_below(n)), word());
      }
      break;
    }
  }
  return sends;
}

// Fingerprints every word received — source, position, value, width — so
// any divergence in content, FIFO order, or metering shows up in outputs.
void traffic_program(NodeCtx& ctx, std::uint64_t seed, int kind) {
  const NodeId n = ctx.n();
  std::uint64_t fp = 0xcbf29ce484222325ull;
  auto mix = [&fp](std::uint64_t v) { fp = (fp ^ v) * 0x100000001b3ull; };

  const auto sends = make_sends(ctx, seed, kind);

  // The same pattern through all three deposit shapes.
  // 1) exchange() with per-destination queues (lvalue).
  WordQueues out(n);
  for (const auto& [dst, w] : sends) out[dst].push_back(w);
  const WordQueues in = ctx.exchange(out);
  for (NodeId src = 0; src < n; ++src) {
    for (const Word& w : in[src]) mix(src * 131 + w.value * 31 + w.bits);
  }

  // 2) exchange() by rvalue (self queue may be moved, not copied).
  WordQueues out2(n);
  for (const auto& [dst, w] : sends) out2[dst].push_back(w);
  const WordQueues in2 = ctx.exchange(std::move(out2));
  for (NodeId src = 0; src < n; ++src) {
    for (const Word& w : in2[src]) mix(src * 137 + w.value * 29 + w.bits);
  }

  // 3) exchange_flat() with the raw pair list.
  const FlatInbox fin = ctx.exchange_flat(sends);
  for (NodeId src = 0; src < n; ++src) {
    for (const Word& w : fin.from(src)) mix(src * 139 + w.value * 37 + w.bits);
  }

  // round_flat(): a seed-dependent ring send.
  std::vector<std::pair<NodeId, Word>> ring;
  if (n > 1 && (seed + ctx.id()) % 3 != 0) {
    ring.emplace_back((ctx.id() + 1) % n, Word((seed ^ ctx.id()) & 1, 1));
  }
  const FlatInbox rin = ctx.round_flat(ring);
  for (NodeId src = 0; src < n; ++src) {
    const auto got = rin.from(src);
    if (!got.empty()) mix(src * 149 + got.front().value);
  }

  // broadcast(): same length on every node (engine-checked), varied by seed.
  BitVector mine(seed % 9);
  for (std::size_t i = 0; i < mine.size(); ++i) {
    if ((seed >> i) & 1) mine.set(i);
  }
  for (const BitVector& r : ctx.broadcast(mine)) mix(r.popcount() + 7);

  mix(ctx.rounds_so_far());
  ctx.output(fp);
}

TEST(MsgPlaneProperty, RandomTrafficIdenticalAcrossPlanesAndBackends) {
  const Graph g = gen::gnp(16, 0.4, 7);
  const PlaneSetup& ref_setup = kSetups[0];  // legacy / thread-per-node
  int patterns = 0;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    for (int kind = 0; kind < kPatternKinds; ++kind) {
      ++patterns;
      const auto program = [seed, kind](NodeCtx& ctx) {
        traffic_program(ctx, seed, kind);
      };
      const auto ref = Engine::run(g, program, config_for(ref_setup));
      for (std::size_t i = 1; i < std::size(kSetups); ++i) {
        const std::string name = std::string(kSetups[i].name) + " seed=" +
                                 std::to_string(seed) + " kind=" +
                                 std::to_string(kind);
        expect_same_result(
            ref, Engine::run(g, program, config_for(kSetups[i])), name);
      }
    }
  }
  EXPECT_EQ(patterns, 100);
}

// Per-run sanity on a larger clique: flat vs legacy on the pooled backend.
TEST(MsgPlaneProperty, LargerCliqueFlatMatchesLegacy) {
  const Graph g = gen::gnp(96, 0.3, 11);
  const auto program = [](NodeCtx& ctx) { traffic_program(ctx, 42, 0); };
  Engine::Config legacy, flat;
  legacy.plane = MessagePlaneKind::kLegacy;
  flat.plane = MessagePlaneKind::kFlat;
  expect_same_result(Engine::run(g, program, legacy),
                     Engine::run(g, program, flat), "n=96 flat vs legacy");
}

// ---- targeted flat-plane behaviours --------------------------------------

Engine::Config flat_config() {
  Engine::Config cfg;
  cfg.plane = MessagePlaneKind::kFlat;
  return cfg;
}

TEST(MsgPlaneFlat, SpanViewMatchesQueueViewPerSourceFifo) {
  const Graph g = gen::empty(8);
  Engine::Config cfg = flat_config();
  cfg.bandwidth_multiplier = 2;  // B = 6: room for the id*2+1 tags below
  auto run = Engine::run(
      g,
      [](NodeCtx& ctx) {
        const NodeId n = ctx.n();
        // Two words to every node (self included), tagged with sender and
        // position so order is observable.
        std::vector<std::pair<NodeId, Word>> sends;
        for (NodeId dst = 0; dst < n; ++dst) {
          sends.emplace_back(dst, Word(ctx.id() * 2 + 0, 6));
          sends.emplace_back(dst, Word(ctx.id() * 2 + 1, 6));
        }
        const FlatInbox flat = ctx.exchange_flat(sends);
        WordQueues out(n);
        for (const auto& [dst, w] : sends) out[dst].push_back(w);
        const WordQueues queued = ctx.exchange(out);
        bool equal = true;
        for (NodeId src = 0; src < n; ++src) {
          const auto s = flat.from(src);
          equal = equal && s.size() == queued[src].size();
          for (std::size_t i = 0; equal && i < s.size(); ++i) {
            equal = equal && s[i] == queued[src][i];
          }
          // FIFO: sender's first word first.
          equal = equal && s.size() == 2 &&
                  s[0].value == std::uint64_t{src} * 2 &&
                  s[1].value == std::uint64_t{src} * 2 + 1;
        }
        ctx.output(equal ? 1 : 0);
      },
      cfg);
  EXPECT_TRUE(run.accepted());
}

TEST(MsgPlaneFlat, SelfDeliveryIsFreeThroughTheArena) {
  const Graph g = gen::empty(4);
  auto run = Engine::run(
      g,
      [](NodeCtx& ctx) {
        std::vector<std::pair<NodeId, Word>> sends;
        for (int i = 0; i < 5; ++i) sends.emplace_back(ctx.id(), Word(i, 3));
        const FlatInbox in = ctx.exchange_flat(sends);
        const auto own = in.from(ctx.id());
        bool ok = own.size() == 5;
        for (std::size_t i = 0; ok && i < own.size(); ++i) {
          ok = own[i].value == i;
        }
        ctx.output(ok ? 1 : 0);
      },
      flat_config());
  EXPECT_TRUE(run.accepted());
  EXPECT_EQ(run.cost.rounds, 0u);    // self-only traffic drains for free
  EXPECT_EQ(run.cost.messages, 0u);  // and is not metered as communication
}

TEST(MsgPlaneFlat, BandwidthValidatedAtDepositOnBothPlanes) {
  const Graph g = gen::empty(3);
  for (MessagePlaneKind plane :
       {MessagePlaneKind::kLegacy, MessagePlaneKind::kFlat}) {
    Engine::Config cfg;
    cfg.plane = plane;
    // Pair deposits (exchange_flat).
    EXPECT_THROW(Engine::run(
                     g,
                     [](NodeCtx& ctx) {
                       std::vector<std::pair<NodeId, Word>> sends;
                       sends.emplace_back((ctx.id() + 1) % ctx.n(),
                                          Word(0, 64));
                       ctx.exchange_flat(sends);
                       ctx.output(0);
                     },
                     cfg),
                 ModelViolation);
    // Queue deposits (exchange).
    EXPECT_THROW(Engine::run(
                     g,
                     [](NodeCtx& ctx) {
                       WordQueues out(ctx.n());
                       out[(ctx.id() + 1) % ctx.n()].emplace_back(0, 64);
                       ctx.exchange(out);
                       ctx.output(0);
                     },
                     cfg),
                 ModelViolation);
  }
}

TEST(MsgPlaneFlat, RoundFlatEnforcesRoundRules) {
  const Graph g = gen::empty(4);
  for (MessagePlaneKind plane :
       {MessagePlaneKind::kLegacy, MessagePlaneKind::kFlat}) {
    Engine::Config cfg;
    cfg.plane = plane;
    // Two words to one destination.
    EXPECT_THROW(Engine::run(
                     g,
                     [](NodeCtx& ctx) {
                       std::vector<std::pair<NodeId, Word>> sends;
                       sends.emplace_back((ctx.id() + 1) % ctx.n(),
                                          Word(0, 1));
                       sends.emplace_back((ctx.id() + 1) % ctx.n(),
                                          Word(1, 1));
                       ctx.round_flat(sends);
                       ctx.output(0);
                     },
                     cfg),
                 ModelViolation);
    // Self-send.
    EXPECT_THROW(Engine::run(
                     g,
                     [](NodeCtx& ctx) {
                       std::vector<std::pair<NodeId, Word>> sends;
                       sends.emplace_back(ctx.id(), Word(0, 1));
                       ctx.round_flat(sends);
                       ctx.output(0);
                     },
                     cfg),
                 ModelViolation);
  }
}

TEST(MsgPlaneFlat, RoundFlatCostsOneRoundEvenWhenSilent) {
  const Graph g = gen::empty(5);
  auto run = Engine::run(
      g,
      [](NodeCtx& ctx) {
        for (int i = 0; i < 3; ++i) ctx.round_flat({});
        ctx.output(0);
      },
      flat_config());
  EXPECT_EQ(run.cost.rounds, 3u);
}

TEST(MsgPlaneFlat, ArenaViewSurvivesUntilNextCollectiveOnly) {
  // A node may lag behind the others by one collective while still reading
  // its spans: nodes deposit for collective k+1 while a straggler reads
  // collective k. The double-buffered histogram makes this safe; this test
  // stresses it with per-node skewed local work on the pooled backend.
  const Graph g = gen::empty(32);
  auto run = Engine::run(
      g,
      [](NodeCtx& ctx) {
        const NodeId n = ctx.n();
        std::uint64_t acc = 0;
        for (int r = 0; r < 20; ++r) {
          std::vector<std::pair<NodeId, Word>> sends;
          for (NodeId dst = 0; dst < n; ++dst) {
            sends.emplace_back(dst, Word((ctx.id() + r) % 2, 1));
          }
          const FlatInbox in = ctx.exchange_flat(sends);
          // Skewed local work: high-id nodes linger on their spans longer.
          volatile std::uint64_t sink = 0;
          for (NodeId i = 0; i < ctx.id() * 50; ++i) sink += i;
          for (NodeId src = 0; src < n; ++src) {
            for (const Word& w : in.from(src)) acc += w.value;
          }
        }
        ctx.output(acc);
      },
      flat_config());
  // Every node receives sum over r of n/2 ones from each parity class.
  for (NodeId v = 0; v < 32; ++v) {
    EXPECT_EQ(run.outputs[v], run.outputs[0]);
  }
}

}  // namespace
}  // namespace ccq
