// Determinism regression suite for the execution backends.
//
// The scheduler contract (clique/scheduler.hpp) promises bit-for-bit
// identical RunResults across backends and worker counts. These tests pin
// that down over a fixed mix of collectives (round / exchange / broadcast /
// share_bit / any / all / route_balanced / route_blocks), and lock in the
// abort/unwind behaviour when a node throws mid-collective.

#include "clique/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "clique/chaos.hpp"
#include "clique/engine.hpp"
#include "clique/routing.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

struct BackendSetup {
  ExecutionBackend backend;
  std::size_t workers;  // pooled: worker cap; sharded: shard count; 0 = hw
  const char* name;
};

const BackendSetup kSetups[] = {
    {ExecutionBackend::kThreadPerNode, 0, "thread-per-node"},
    {ExecutionBackend::kPooled, 1, "pooled/1"},
    {ExecutionBackend::kPooled, 2, "pooled/2"},
    {ExecutionBackend::kPooled, 0, "pooled/hw"},
    {ExecutionBackend::kSharded, 1, "sharded/1"},
    {ExecutionBackend::kSharded, 2, "sharded/2"},
    {ExecutionBackend::kSharded, 5, "sharded/5"},  // non-dividing shard count
    {ExecutionBackend::kSharded, 0, "sharded/hw"},
};

Engine::Config config_for(const BackendSetup& s) {
  Engine::Config cfg;
  cfg.backend = s.backend;
  cfg.workers = s.workers;
  return cfg;
}

void expect_same_result(const RunResult& ref, const RunResult& got,
                        const char* name) {
  EXPECT_EQ(ref.outputs, got.outputs) << name;
  EXPECT_EQ(ref.cost.rounds, got.cost.rounds) << name;
  EXPECT_EQ(ref.cost.messages, got.cost.messages) << name;
  EXPECT_EQ(ref.cost.bits, got.cost.bits) << name;
  EXPECT_EQ(ref.cost.collectives, got.cost.collectives) << name;
  EXPECT_EQ(ref.cost.max_node_sent, got.cost.max_node_sent) << name;
  EXPECT_EQ(ref.cost.max_node_received, got.cost.max_node_received) << name;
}

// A fixed mix of every collective the engine offers, with per-node skew so
// scheduling order would show up in the result if it could leak.
void mixed_program(NodeCtx& ctx) {
  const NodeId n = ctx.n();
  std::uint64_t fp = 0xcbf29ce484222325ull;
  auto mix = [&fp](std::uint64_t v) { fp = (fp ^ v) * 0x100000001b3ull; };

  // round(): a ring send.
  std::vector<std::pair<NodeId, Word>> sends;
  if (n > 1) sends.emplace_back((ctx.id() + 1) % n, Word(ctx.id() % 2, 1));
  auto in = ctx.round(sends);
  for (NodeId v = 0; v < n; ++v) {
    if (in[v]) mix(in[v]->value + v);
  }

  // exchange(): skewed queue lengths.
  WordQueues out(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v == ctx.id()) continue;
    for (NodeId i = 0; i <= (ctx.id() + v) % 3; ++i) {
      out[v].emplace_back((i + v) % 2, 1);
    }
  }
  auto ex = ctx.exchange(out);
  for (NodeId v = 0; v < n; ++v) mix(ex[v].size());

  // broadcast(): everyone shares its adjacency row.
  auto rows = ctx.broadcast(ctx.adj_row());
  for (const auto& r : rows) mix(r.popcount());

  // share_bit / any / all.
  auto bits = ctx.share_bit(ctx.id() % 2 == 0);
  for (bool b : bits) mix(b ? 1 : 2);
  mix(ctx.any(ctx.id() == 0) ? 3 : 4);
  mix(ctx.all(true) ? 5 : 6);

  // route_balanced(): n messages to pseudorandom destinations.
  SplitMix64 rng(ctx.id() * 7919 + 13);
  std::vector<RoutedMessage> msgs;
  for (NodeId i = 0; i < n; ++i) {
    NodeId dst;
    do {
      dst = static_cast<NodeId>(rng.next_below(n));
    } while (n > 1 && dst == ctx.id());
    msgs.push_back({dst, Word(i % 2, 1)});
  }
  for (const auto& [src, w] : route_balanced(ctx, msgs)) mix(src + w.value);

  // route_blocks(): one small block to the next node.
  BitVector payload(5);
  payload.set(ctx.id() % 5);
  std::vector<RoutedBlock> blocks;
  if (n > 1) blocks.push_back({(ctx.id() + 1) % n, payload});
  for (const auto& [src, bv] : route_blocks(ctx, blocks)) {
    mix(src + bv.popcount());
  }

  mix(ctx.rounds_so_far());
  ctx.output(fp);
}

TEST(SchedulerDeterminism, IdenticalResultsAcrossBackendsAndWorkerCounts) {
  const Graph g = gen::gnp(24, 0.5, 99);
  const auto ref =
      Engine::run(g, mixed_program, config_for(kSetups[0]));
  EXPECT_GT(ref.cost.rounds, 0u);
  EXPECT_GT(ref.cost.messages, 0u);
  for (const BackendSetup& s : kSetups) {
    expect_same_result(ref, Engine::run(g, mixed_program, config_for(s)),
                       s.name);
  }
}

TEST(SchedulerDeterminism, RepeatedPooledRunsAreIdentical) {
  const Graph g = gen::gnp(17, 0.4, 5);
  Engine::Config cfg;
  cfg.backend = ExecutionBackend::kPooled;
  const auto r1 = Engine::run(g, mixed_program, cfg);
  const auto r2 = Engine::run(g, mixed_program, cfg);
  expect_same_result(r1, r2, "pooled repeat");
}

TEST(SchedulerDeterminism, WorkerCapBeyondPoolSizeIsClamped) {
  // workers may legally exceed the machine's pool size (just not n — that
  // is rejected at run() entry); the scheduler must clamp, not deadlock.
  const Graph g = gen::gnp(64, 0.5, 3);
  for (ExecutionBackend backend :
       {ExecutionBackend::kPooled, ExecutionBackend::kSharded}) {
    Engine::Config cfg;
    cfg.backend = backend;
    cfg.workers = 64;  // == n, far beyond any pool on CI hardware
    const auto ref = Engine::run(g, mixed_program);
    expect_same_result(ref, Engine::run(g, mixed_program, cfg), "clamped");
  }
}

TEST(SchedulerDeterminism, ManyNodesOnPooledBackend) {
  // Exercise fiber multiplexing well past the worker count.
  const Graph g = gen::empty(300);
  Engine::Config cfg;
  cfg.backend = ExecutionBackend::kPooled;
  auto r = Engine::run(
      g,
      [](NodeCtx& ctx) {
        auto bits = ctx.share_bit(ctx.id() % 3 == 0);
        std::uint64_t count = 0;
        for (bool b : bits) count += b ? 1 : 0;
        ctx.output(count);
      },
      cfg);
  EXPECT_EQ(r.outputs[0], 100u);
  EXPECT_EQ(r.cost.rounds, 1u);
}

// ---- abort / unwind ------------------------------------------------------

std::atomic<int> live_guards{0};

struct UnwindGuard {
  UnwindGuard() { live_guards.fetch_add(1); }
  ~UnwindGuard() { live_guards.fetch_sub(1); }
};

// Node 3 throws between two collectives while every other node is parked
// inside the second one; all stacks must unwind (guards destroyed) and the
// program exception must surface from Engine::run.
void mid_collective_crash(NodeCtx& ctx) {
  UnwindGuard guard;
  ctx.round({});
  if (ctx.id() == 3) throw std::runtime_error("node crash");
  ctx.round({});
  ctx.output(0);
}

TEST(SchedulerAbort, MidCollectiveExceptionUnwindsAllNodes) {
  const Graph g = gen::empty(8);
  for (const BackendSetup& s : kSetups) {
    live_guards.store(0);
    EXPECT_THROW(Engine::run(g, mid_collective_crash, config_for(s)),
                 std::runtime_error)
        << s.name;
    EXPECT_EQ(live_guards.load(), 0) << s.name;
  }
}

TEST(SchedulerAbort, DivergentOperationsDetectedOnEveryBackend) {
  const Graph g = gen::empty(6);
  for (const BackendSetup& s : kSetups) {
    EXPECT_THROW(Engine::run(
                     g,
                     [](NodeCtx& ctx) {
                       if (ctx.id() == 0) {
                         ctx.round({});
                       } else {
                         ctx.broadcast(BitVector(3));
                       }
                       ctx.output(0);
                     },
                     config_for(s)),
                 ModelViolation)
        << s.name;
  }
}

TEST(SchedulerAbort, EarlyFinishDetectedOnEveryBackend) {
  const Graph g = gen::empty(6);
  for (const BackendSetup& s : kSetups) {
    live_guards.store(0);
    EXPECT_THROW(Engine::run(
                     g,
                     [](NodeCtx& ctx) {
                       UnwindGuard guard;
                       ctx.output(0);
                       if (ctx.id() == 0) return;  // skips the collective
                       ctx.round({});
                     },
                     config_for(s)),
                 ModelViolation)
        << s.name;
    EXPECT_EQ(live_guards.load(), 0) << s.name;
  }
}

// A chaos-duplicated broadcast word makes the receiver reassemble more
// bits than the collective's framing declares — a ModelViolation raised
// inside the node program (clique/chaos.hpp). Every backend must unwind
// all node stacks, release the chaos plan on the throw path, and leave the
// engine serviceable for the next run.
TEST(SchedulerAbort, ChaosCorruptedCollectiveUnwindsCleanly) {
  const Graph g = gen::empty(6);
  for (const BackendSetup& s : kSetups) {
    ChaosPlan::Config ccfg;
    ccfg.seed = 21;
    ccfg.p_dup = 1.0;
    ChaosPlan plan(ccfg);
    Engine::Config cfg = config_for(s);
    cfg.chaos = &plan;
    live_guards.store(0);
    EXPECT_THROW(Engine::run(
                     g,
                     [](NodeCtx& ctx) {
                       UnwindGuard guard;
                       ctx.broadcast(BitVector(5, true));
                       ctx.output(0);
                     },
                     cfg),
                 ModelViolation)
        << s.name;
    EXPECT_EQ(live_guards.load(), 0) << s.name;
    EXPECT_GT(plan.fault_count(FaultKind::kDuplicate), 0u) << s.name;
    // The abort path must have released the plan...
    EXPECT_TRUE(plan.try_acquire()) << s.name;
    plan.release();
    // ...and left the backend reusable.
    const auto r = Engine::run(
        g, [](NodeCtx& ctx) { ctx.decide(ctx.all(true)); }, config_for(s));
    EXPECT_TRUE(r.accepted()) << s.name;
  }
}

TEST(SchedulerAbort, RoundLimitEnforcedOnPooledBackend) {
  const Graph g = gen::empty(2);
  Engine::Config cfg;
  cfg.backend = ExecutionBackend::kPooled;
  cfg.max_rounds = 10;
  EXPECT_THROW(Engine::run(
                   g,
                   [](NodeCtx& ctx) {
                     for (int i = 0; i < 100; ++i) ctx.round({});
                     ctx.output(0);
                   },
                   cfg),
               ModelViolation);
}

}  // namespace
}  // namespace ccq
