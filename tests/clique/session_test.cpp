// EngineSession (clique/engine.hpp): a warm scheduler+plane reused across
// runs must be bit-for-bit indistinguishable from a fresh Engine::run —
// outputs, cost meter, trace ledger, and chaos fault schedule. This is the
// contract ccqd's engine cache (src/service/engine_cache.hpp) stands on:
// if warm reuse changed one bit, the daemon would silently measure a
// different experiment than the bench binaries.

#include "clique/engine.hpp"

#include <gtest/gtest.h>

#include "clique/chaos.hpp"
#include "clique/trace.hpp"
#include "graph/generators.hpp"
#include "harness/sweep.hpp"

namespace ccq {
namespace {

// Communication-heavy enough to exercise the plane: every node sends its
// degree to every neighbour, sums what it hears, then everyone broadcasts
// the sum's parity.
void traffic_program(NodeCtx& ctx) {
  const BitVector& row = ctx.adj_row();
  std::uint64_t deg = 0;
  for (NodeId v = 0; v < ctx.n(); ++v)
    if (row.get(v)) ++deg;
  std::vector<std::pair<NodeId, Word>> sends;
  for (NodeId v = 0; v < ctx.n(); ++v)
    if (row.get(v)) sends.emplace_back(v, Word(deg, ctx.bandwidth()));
  auto in = ctx.round(sends);
  std::uint64_t sum = 0;
  for (const auto& w : in)
    if (w) sum += w->value;
  const std::vector<bool> bits = ctx.share_bit((sum & 1) != 0);
  std::uint64_t ones = 0;
  for (const bool b : bits) ones += b ? 1 : 0;
  ctx.output(sum ^ ones);
}

struct RunArtifacts {
  RunResult result;
  std::uint64_t ledger_fp = 0;
  std::uint64_t faults = 0;
};

RunArtifacts run_fresh(const Graph& g, Engine::Config cfg, bool chaos) {
  RoundTrace trace;
  cfg.trace = &trace;
  ChaosPlan plan(ChaosPlan::Config{.seed = 77, .p_flip = 0.02, .p_dup = 0.01});
  cfg.chaos = chaos ? &plan : nullptr;
  RunArtifacts a;
  a.result = Engine::run(g, traffic_program, cfg);
  a.ledger_fp = harness::ledger_fingerprint(trace);
  a.faults = plan.total_faults();
  return a;
}

RunArtifacts run_warm(EngineSession& session, const Graph& g,
                      Engine::Config cfg, bool chaos) {
  RoundTrace trace;
  cfg.trace = &trace;
  ChaosPlan plan(ChaosPlan::Config{.seed = 77, .p_flip = 0.02, .p_dup = 0.01});
  cfg.chaos = chaos ? &plan : nullptr;
  RunArtifacts a;
  a.result = session.run(Instance::of(g), traffic_program, cfg);
  a.ledger_fp = harness::ledger_fingerprint(trace);
  a.faults = plan.total_faults();
  return a;
}

void expect_identical(const RunArtifacts& fresh, const RunArtifacts& warm,
                      const char* what) {
  EXPECT_EQ(fresh.result.outputs, warm.result.outputs) << what;
  EXPECT_TRUE(harness::meters_equal(fresh.result.cost, warm.result.cost))
      << what;
  EXPECT_EQ(fresh.ledger_fp, warm.ledger_fp) << what;
  EXPECT_EQ(fresh.faults, warm.faults) << what;
}

EngineSession::Shape shape_for(NodeId n, const Engine::Config& cfg) {
  EngineSession::Shape s;
  s.n = n;
  s.bandwidth_multiplier = cfg.bandwidth_multiplier;
  s.plane = cfg.plane;
  s.backend = cfg.backend;
  s.workers = cfg.workers;
  s.fiber_stack_bytes = cfg.fiber_stack_bytes;
  return s;
}

TEST(EngineSession, BitIdenticalToEngineRunAcrossPlanesAndBackends) {
  const Graph g = gen::gnp(24, 0.3, 42);
  for (const auto plane : {MessagePlaneKind::kFlat, MessagePlaneKind::kLegacy})
    for (const auto backend :
         {ExecutionBackend::kPooled, ExecutionBackend::kSharded,
          ExecutionBackend::kThreadPerNode})
      for (const bool chaos : {false, true}) {
        Engine::Config cfg;
        cfg.plane = plane;
        cfg.backend = backend;
        const char* what =
            plane == MessagePlaneKind::kFlat ? "flat" : "legacy";
        const RunArtifacts fresh = run_fresh(g, cfg, chaos);
        EngineSession session(shape_for(24, cfg));
        const RunArtifacts warm = run_warm(session, g, cfg, chaos);
        expect_identical(fresh, warm, what);
        if (chaos) EXPECT_GT(fresh.faults, 0u) << what;
      }
}

TEST(EngineSession, RepeatedWarmRunsAreDeterministic) {
  const Graph g = gen::gnp(20, 0.4, 7);
  Engine::Config cfg;
  EngineSession session(shape_for(20, cfg));
  const RunArtifacts first = run_warm(session, g, cfg, /*chaos=*/false);
  for (int i = 0; i < 4; ++i) {
    const RunArtifacts again = run_warm(session, g, cfg, /*chaos=*/false);
    expect_identical(first, again, "repeat");
  }
  EXPECT_EQ(session.runs_completed(), 5u);
}

TEST(EngineSession, PerRunParametersVaryFreelyWithinOneShape) {
  // seed / max_rounds / trace / chaos are per-run; only shape fields pin.
  const Graph g = gen::gnp(16, 0.5, 3);
  Engine::Config cfg;
  EngineSession session(shape_for(16, cfg));
  cfg.seed = 1;
  const auto a = session.run(Instance::of(g), traffic_program, cfg);
  cfg.seed = 2;
  cfg.max_rounds = 1000;
  const auto b = session.run(Instance::of(g), traffic_program, cfg);
  // This program ignores shared randomness, so results agree; the point is
  // that neither call throws a shape mismatch.
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST(EngineSession, ShapeMismatchedConfigThrows) {
  const Graph g = gen::gnp(16, 0.5, 3);
  Engine::Config cfg;
  EngineSession session(shape_for(16, cfg));
  Engine::Config wrong = cfg;
  wrong.bandwidth_multiplier = 2;
  EXPECT_THROW(session.run(Instance::of(g), traffic_program, wrong),
               ModelViolation);
  wrong = cfg;
  wrong.backend = ExecutionBackend::kSharded;
  EXPECT_THROW(session.run(Instance::of(g), traffic_program, wrong),
               ModelViolation);
}

TEST(EngineSession, WrongInstanceSizeThrows) {
  Engine::Config cfg;
  EngineSession session(shape_for(16, cfg));
  const Graph smaller = gen::gnp(8, 0.5, 3);
  EXPECT_THROW(session.run(Instance::of(smaller), traffic_program, cfg),
               ModelViolation);
}

TEST(EngineSession, SessionFailuresDoNotPoisonTheSession) {
  // A run that throws (round-limit overrun) must leave the warm scheduler
  // and plane reusable for the next run — the service returns leases to
  // the cache after failed jobs too.
  const Graph g = gen::gnp(12, 0.5, 9);
  Engine::Config cfg;
  EngineSession session(shape_for(12, cfg));
  Engine::Config tight = cfg;
  tight.max_rounds = 1;
  EXPECT_THROW(
      session.run(Instance::of(g), traffic_program, tight),
      ModelViolation);
  const RunArtifacts after = run_warm(session, g, cfg, /*chaos=*/false);
  const RunArtifacts fresh = run_fresh(g, cfg, /*chaos=*/false);
  expect_identical(fresh, after, "after failure");
}

}  // namespace
}  // namespace ccq
