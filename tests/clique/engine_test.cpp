#include "clique/engine.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/math.hpp"

namespace ccq {
namespace {

TEST(Engine, TrivialOutputNoCommunication) {
  Graph g = gen::empty(4);
  auto r = Engine::run(g, [](NodeCtx& ctx) { ctx.output(ctx.id() + 10); });
  EXPECT_EQ(r.cost.rounds, 0u);
  EXPECT_EQ(r.outputs, (std::vector<std::uint64_t>{10, 11, 12, 13}));
}

TEST(Engine, AcceptedRejectedSemantics) {
  Graph g = gen::empty(3);
  EXPECT_TRUE(
      Engine::run(g, [](NodeCtx& c) { c.decide(true); }).accepted());
  EXPECT_TRUE(
      Engine::run(g, [](NodeCtx& c) { c.decide(false); }).rejected());
  auto mixed = Engine::run(g, [](NodeCtx& c) { c.decide(c.id() == 0); });
  EXPECT_FALSE(mixed.accepted());
  EXPECT_FALSE(mixed.rejected());
}

TEST(Engine, BandwidthIsCeilLog2N) {
  for (NodeId n : {2u, 3u, 16u, 17u, 64u}) {
    Graph g = gen::empty(n);
    auto r = Engine::run(g, [n](NodeCtx& ctx) {
      EXPECT_EQ(ctx.bandwidth(), ceil_log2(n));
      ctx.output(0);
    });
    (void)r;
  }
}

TEST(Engine, BandwidthMultiplier) {
  Graph g = gen::empty(16);
  Engine::Config cfg;
  cfg.bandwidth_multiplier = 3;
  Engine::run(
      g,
      [](NodeCtx& ctx) {
        EXPECT_EQ(ctx.bandwidth(), 12u);
        ctx.output(0);
      },
      cfg);
}

TEST(Engine, BandwidthBeyondWordLimitThrows) {
  // ⌈log₂16⌉·17 = 68 bits cannot fit a 64-bit Word; the engine must refuse
  // the configuration rather than silently clamp the cost semantics.
  Graph g = gen::empty(16);
  Engine::Config cfg;
  cfg.bandwidth_multiplier = 17;
  EXPECT_THROW(Engine::run(g, [](NodeCtx& ctx) { ctx.output(0); }, cfg),
               ModelViolation);
}

TEST(Engine, BandwidthOfExactly64BitsIsAccepted) {
  Graph g = gen::empty(16);  // base 4 bits
  Engine::Config cfg;
  cfg.bandwidth_multiplier = 16;  // B = 64, the widest legal channel
  auto r = Engine::run(
      g,
      [](NodeCtx& ctx) {
        EXPECT_EQ(ctx.bandwidth(), 64u);
        std::vector<std::pair<NodeId, Word>> sends;
        if (ctx.id() == 0) sends.emplace_back(1, Word(~0ull, 64));
        auto in = ctx.round(sends);
        ctx.output(ctx.id() == 1 && in[0] ? in[0]->value : 0);
      },
      cfg);
  EXPECT_EQ(r.outputs[1], ~0ull);
}

TEST(Engine, RoundDeliversPointToPoint) {
  Graph g = gen::empty(5);
  auto r = Engine::run(g, [](NodeCtx& ctx) {
    // Everyone sends its id+1 to node 0.
    std::vector<std::pair<NodeId, Word>> sends;
    if (ctx.id() != 0) sends.emplace_back(0, Word(ctx.id() + 1, 3));
    auto in = ctx.round(sends);
    if (ctx.id() == 0) {
      std::uint64_t sum = 0;
      for (NodeId v = 0; v < ctx.n(); ++v)
        if (in[v]) sum += in[v]->value;
      ctx.output(sum);  // 2+3+4+5 = 14
    } else {
      for (NodeId v = 0; v < ctx.n(); ++v) EXPECT_FALSE(in[v].has_value());
      ctx.output(0);
    }
  });
  EXPECT_EQ(r.outputs[0], 14u);
  EXPECT_EQ(r.cost.rounds, 1u);
  EXPECT_EQ(r.cost.messages, 4u);
}

TEST(Engine, EmptyRoundStillCostsOne) {
  Graph g = gen::empty(3);
  auto r = Engine::run(g, [](NodeCtx& ctx) {
    ctx.round({});
    ctx.round({});
    ctx.output(0);
  });
  EXPECT_EQ(r.cost.rounds, 2u);
  EXPECT_EQ(r.cost.messages, 0u);
}

TEST(Engine, ExchangeCostIsMaxQueue) {
  Graph g = gen::empty(4);
  auto r = Engine::run(g, [](NodeCtx& ctx) {
    WordQueues out(ctx.n());
    if (ctx.id() == 0) {
      // 5 words to node 1; 2 words to node 2.
      for (int i = 0; i < 5; ++i) out[1].emplace_back(i % 4, 2);
      for (int i = 0; i < 2; ++i) out[2].emplace_back(i % 4, 2);
    }
    auto in = ctx.exchange(out);
    if (ctx.id() == 1) {
      EXPECT_EQ(in[0].size(), 5u);
    }
    if (ctx.id() == 2) {
      EXPECT_EQ(in[0].size(), 2u);
    }
    ctx.output(0);
  });
  EXPECT_EQ(r.cost.rounds, 5u);
  EXPECT_EQ(r.cost.messages, 7u);
}

TEST(Engine, ParallelQueuesShareRounds) {
  // All ordered pairs carry 3 words: still only 3 rounds.
  Graph g = gen::empty(6);
  auto r = Engine::run(g, [](NodeCtx& ctx) {
    WordQueues out(ctx.n());
    for (NodeId v = 0; v < ctx.n(); ++v) {
      if (v == ctx.id()) continue;
      for (int i = 0; i < 3; ++i) out[v].emplace_back(i, 2);
    }
    auto in = ctx.exchange(out);
    for (NodeId v = 0; v < ctx.n(); ++v) {
      if (v != ctx.id()) {
        EXPECT_EQ(in[v].size(), 3u);
      }
    }
    ctx.output(0);
  });
  EXPECT_EQ(r.cost.rounds, 3u);
  EXPECT_EQ(r.cost.messages, 6u * 5 * 3);
}

TEST(Engine, ExchangePreservesFifoOrder) {
  Graph g = gen::empty(4);  // B = 2
  Engine::run(g, [](NodeCtx& ctx) {
    WordQueues out(4);
    const NodeId other = (ctx.id() + 1) % 4;
    for (std::uint64_t i = 0; i < 8; ++i) out[other].emplace_back(i % 4, 2);
    auto in = ctx.exchange(out);
    const NodeId prev = (ctx.id() + 3) % 4;
    ASSERT_EQ(in[prev].size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i)
      EXPECT_EQ(in[prev][i].value, i % 4);
    ctx.output(0);
  });
}

TEST(Engine, SelfDeliveryIsFree) {
  Graph g = gen::empty(3);
  auto r = Engine::run(g, [](NodeCtx& ctx) {
    WordQueues out(3);
    for (int i = 0; i < 100; ++i) out[ctx.id()].emplace_back(1, 1);
    auto in = ctx.exchange(out);
    EXPECT_EQ(in[ctx.id()].size(), 100u);
    ctx.output(0);
  });
  EXPECT_EQ(r.cost.rounds, 0u);
  EXPECT_EQ(r.cost.messages, 0u);
}

TEST(Engine, BandwidthViolationThrows) {
  Graph g = gen::empty(4);  // B = 2
  EXPECT_THROW(Engine::run(g,
                           [](NodeCtx& ctx) {
                             WordQueues out(4);
                             if (ctx.id() == 0)
                               out[1].emplace_back(0xff, 8);  // 8 > 2 bits
                             ctx.exchange(out);
                             ctx.output(0);
                           }),
               ModelViolation);
}

TEST(Engine, BroadcastDeliversAndCosts) {
  Graph g = gen::empty(8);  // B = 3
  auto r = Engine::run(g, [](NodeCtx& ctx) {
    BitVector mine(10);
    mine.set(ctx.id());
    auto all = ctx.broadcast(mine);
    for (NodeId v = 0; v < ctx.n(); ++v) {
      EXPECT_EQ(all[v].size(), 10u);
      EXPECT_TRUE(all[v].get(v));
      EXPECT_EQ(all[v].popcount(), 1u);
    }
    ctx.output(0);
  });
  EXPECT_EQ(r.cost.rounds, ceil_div(10, 3));
}

TEST(Engine, BroadcastLengthMismatchIsDivergence) {
  Graph g = gen::empty(3);
  EXPECT_THROW(Engine::run(g,
                           [](NodeCtx& ctx) {
                             BitVector mine(ctx.id() == 0 ? 5 : 6);
                             ctx.broadcast(mine);
                             ctx.output(0);
                           }),
               ModelViolation);
}

TEST(Engine, ShareBitAndReductions) {
  Graph g = gen::empty(5);
  auto r = Engine::run(g, [](NodeCtx& ctx) {
    auto bits = ctx.share_bit(ctx.id() % 2 == 0);
    EXPECT_EQ(bits.size(), 5u);
    EXPECT_TRUE(bits[0]);
    EXPECT_FALSE(bits[1]);
    EXPECT_TRUE(ctx.any(ctx.id() == 3));
    EXPECT_FALSE(ctx.any(false));
    EXPECT_TRUE(ctx.all(true));
    EXPECT_FALSE(ctx.all(ctx.id() != 2));
    ctx.output(0);
  });
  EXPECT_EQ(r.cost.rounds, 5u);  // share_bit + 4 reductions, 1 round each
}

TEST(Engine, DivergentOpsDetected) {
  Graph g = gen::empty(4);
  EXPECT_THROW(Engine::run(g,
                           [](NodeCtx& ctx) {
                             if (ctx.id() == 0) {
                               ctx.round({});
                             } else {
                               ctx.share_bit(false);
                             }
                             ctx.output(0);
                           }),
               ModelViolation);
}

TEST(Engine, EarlyFinishDetected) {
  Graph g = gen::empty(4);
  EXPECT_THROW(Engine::run(g,
                           [](NodeCtx& ctx) {
                             ctx.output(0);
                             if (ctx.id() == 0) return;  // skips collective
                             ctx.round({});
                           }),
               ModelViolation);
}

TEST(Engine, MissingOutputDetected) {
  Graph g = gen::empty(3);
  EXPECT_THROW(Engine::run(g,
                           [](NodeCtx& ctx) {
                             if (ctx.id() != 1) ctx.output(0);
                           }),
               ModelViolation);
}

TEST(Engine, DoubleOutputDetected) {
  Graph g = gen::empty(2);
  EXPECT_THROW(Engine::run(g,
                           [](NodeCtx& ctx) {
                             ctx.output(1);
                             ctx.output(2);
                           }),
               ModelViolation);
}

TEST(Engine, ProgramExceptionPropagates) {
  Graph g = gen::empty(4);
  EXPECT_THROW(Engine::run(g,
                           [](NodeCtx& ctx) {
                             if (ctx.id() == 2)
                               throw std::runtime_error("node crash");
                             ctx.round({});
                             ctx.output(0);
                           }),
               std::runtime_error);
}

TEST(Engine, RoundLimitEnforced) {
  Graph g = gen::empty(2);
  Engine::Config cfg;
  cfg.max_rounds = 10;
  EXPECT_THROW(Engine::run(
                   g,
                   [](NodeCtx& ctx) {
                     for (int i = 0; i < 100; ++i) ctx.round({});
                     ctx.output(0);
                   },
                   cfg),
               ModelViolation);
}

TEST(Engine, AdjacencyRowsMatchInput) {
  Graph g = gen::gnp(10, 0.5, 77);
  Engine::run(g, [&g](NodeCtx& ctx) {
    EXPECT_TRUE(ctx.adj_row() == g.row(ctx.id()));
    EXPECT_FALSE(ctx.directed());
    ctx.output(0);
  });
}

TEST(Engine, DirectedInRowIsTranspose) {
  Graph g = Graph::directed(4);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.add_edge(1, 3);
  Engine::run(g, [](NodeCtx& ctx) {
    if (ctx.id() == 1) {
      EXPECT_TRUE(ctx.in_row().get(0));
      EXPECT_TRUE(ctx.in_row().get(2));
      EXPECT_FALSE(ctx.in_row().get(3));
      EXPECT_TRUE(ctx.adj_row().get(3));
    }
    ctx.output(0);
  });
}

TEST(Engine, EdgeWeightsVisibleLocally) {
  Graph g = Graph::undirected(3);
  g.add_edge(0, 1, 7);
  g.add_edge(1, 2, 9);
  Engine::run(g, [](NodeCtx& ctx) {
    if (ctx.id() == 1) {
      EXPECT_TRUE(ctx.weighted());
      EXPECT_EQ(ctx.edge_weight(0), 7u);
      EXPECT_EQ(ctx.edge_weight(2), 9u);
    }
    ctx.output(0);
  });
}

TEST(Engine, PrivateBitEncodingMatchesSpec) {
  Graph g = Graph::undirected(4);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  // Node u owns bits for {u,v}, v>u, in increasing v order.
  auto enc = private_bit_encoding(g);
  EXPECT_EQ(enc[0].to_string(), "010");  // edges 0-1,0-2,0-3
  EXPECT_EQ(enc[1].to_string(), "01");   // edges 1-2,1-3
  EXPECT_EQ(enc[2].to_string(), "1");    // edge 2-3
  EXPECT_EQ(enc[3].size(), 0u);
  Engine::run(g, [&enc](NodeCtx& ctx) {
    EXPECT_TRUE(ctx.private_bits() == enc[ctx.id()]);
    ctx.output(0);
  });
}

TEST(Engine, ExplicitPrivateBitsOverride) {
  Instance inst = Instance::of(gen::empty(3));
  inst.private_bits = {BitVector::from_string("101"),
                       BitVector::from_string("11"),
                       BitVector::from_string("0")};
  Engine::run(inst, [](NodeCtx& ctx) {
    if (ctx.id() == 0) {
      EXPECT_EQ(ctx.private_bits().to_string(), "101");
    }
    if (ctx.id() == 2) {
      EXPECT_EQ(ctx.private_bits().to_string(), "0");
    }
    ctx.output(0);
  });
}

TEST(Engine, LabelsAccessible) {
  Instance inst = Instance::of(gen::empty(3));
  Labelling z1 = {BitVector::from_string("0"), BitVector::from_string("1"),
                  BitVector::from_string("0")};
  Labelling z2 = {BitVector::from_string("11"), BitVector::from_string("00"),
                  BitVector::from_string("10")};
  inst.labels = {z1, z2};
  Engine::run(inst, [](NodeCtx& ctx) {
    EXPECT_EQ(ctx.label_count(), 2u);
    if (ctx.id() == 1) {
      EXPECT_EQ(ctx.label(0).to_string(), "1");
      EXPECT_EQ(ctx.label(1).to_string(), "00");
    }
    EXPECT_THROW(ctx.label(2), ModelViolation);
    ctx.output(0);
  });
}

TEST(Engine, DeterministicAcrossRuns) {
  Graph g = gen::gnp(12, 0.4, 5);
  auto program = [](NodeCtx& ctx) {
    auto rows = ctx.broadcast(ctx.adj_row());
    std::uint64_t fingerprint = 0;
    for (const auto& r : rows) fingerprint = fingerprint * 31 + r.popcount();
    ctx.output(fingerprint);
  };
  auto r1 = Engine::run(g, program);
  auto r2 = Engine::run(g, program);
  EXPECT_EQ(r1.outputs, r2.outputs);
  EXPECT_EQ(r1.cost.rounds, r2.cost.rounds);
  EXPECT_EQ(r1.cost.messages, r2.cost.messages);
}

TEST(Engine, SingleNodeClique) {
  Graph g = gen::empty(1);
  auto r = Engine::run(g, [](NodeCtx& ctx) {
    auto all = ctx.broadcast(BitVector(4));
    EXPECT_EQ(all.size(), 1u);
    EXPECT_TRUE(ctx.all(true));
    ctx.output(7);
  });
  EXPECT_EQ(r.outputs[0], 7u);
}

TEST(Engine, ConfigValidationAtRunEntry) {
  // Bad configs must be rejected before any node program runs — each of
  // these used to slip through and fail later in confusing ways (a zero
  // bandwidth multiplier made every word a violation; an 8 KiB fiber stack
  // overflowed under the first deep collective; workers > n spun up owners
  // that could never own a node).
  const Graph g = gen::empty(8);
  auto trivial = [](NodeCtx& ctx) { ctx.output(0); };
  struct Case {
    const char* name;
    std::function<void(Engine::Config&)> tweak;
    bool ok;
  };
  const Case kCases[] = {
      {"defaults", [](Engine::Config&) {}, true},
      {"bandwidth_multiplier=0",
       [](Engine::Config& c) { c.bandwidth_multiplier = 0; }, false},
      {"workers=n", [](Engine::Config& c) { c.workers = 8; }, true},
      {"workers=n+1", [](Engine::Config& c) { c.workers = 9; }, false},
      {"sharded workers=n+1",
       [](Engine::Config& c) {
         c.backend = ExecutionBackend::kSharded;
         c.workers = 9;
       },
       false},
      {"stack=8KiB",
       [](Engine::Config& c) { c.fiber_stack_bytes = 8 * 1024; }, false},
      {"stack=16KiB floor",
       [](Engine::Config& c) { c.fiber_stack_bytes = 16 * 1024; }, true},
      {"stack=0 default",
       [](Engine::Config& c) { c.fiber_stack_bytes = 0; }, true},
  };
  for (const Case& tc : kCases) {
    Engine::Config cfg;
    tc.tweak(cfg);
    if (tc.ok) {
      EXPECT_EQ(Engine::run(g, trivial, cfg).outputs.size(), 8u) << tc.name;
    } else {
      EXPECT_THROW(Engine::run(g, trivial, cfg), ModelViolation) << tc.name;
    }
  }
}

TEST(Engine, LabellingSizeValidation) {
  Instance inst = Instance::of(gen::empty(3));
  inst.labels.push_back(Labelling{BitVector(1), BitVector(1)});  // short
  EXPECT_THROW(Engine::run(inst, [](NodeCtx& c) { c.output(0); }),
               ModelViolation);
}

TEST(Engine, BitsAccounting) {
  Graph g = gen::empty(4);  // B = 2
  auto r = Engine::run(g, [](NodeCtx& ctx) {
    // Node 0 sends one 2-bit word to each other node.
    std::vector<std::pair<NodeId, Word>> sends;
    if (ctx.id() == 0)
      for (NodeId v = 1; v < 4; ++v) sends.emplace_back(v, Word(3, 2));
    ctx.round(sends);
    ctx.output(0);
  });
  EXPECT_EQ(r.cost.bits, 6u);
  EXPECT_EQ(r.cost.messages, 3u);
}

}  // namespace
}  // namespace ccq
