// Tests for the broadcast congested clique (§2) and the one-round
// unicast-vs-broadcast achievability analysis.

#include "clique/broadcast.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hierarchy/bcast_protocol.hpp"
#include "hierarchy/protocol.hpp"
#include "util/math.hpp"

namespace ccq {
namespace {

TEST(BroadcastClique, RoundDeliversSameWordToAll) {
  Graph g = gen::empty(5);
  auto r = run_broadcast_clique(g, [](BcastCtx& ctx) {
    auto in = ctx.round(Word(ctx.id() % 4, 2));
    for (NodeId v = 0; v < ctx.n(); ++v) {
      ASSERT_TRUE(in[v].has_value());
      EXPECT_EQ(in[v]->value, v % 4u);
    }
    ctx.output(0);
  });
  EXPECT_EQ(r.cost.rounds, 1u);
  EXPECT_EQ(r.cost.messages, 5u * 4);
}

TEST(BroadcastClique, SilentNodesSupported) {
  Graph g = gen::empty(4);
  run_broadcast_clique(g, [](BcastCtx& ctx) {
    auto in = ctx.round(ctx.id() == 0
                            ? std::optional<Word>(Word(1, 1))
                            : std::nullopt);
    EXPECT_TRUE(in[0].has_value());
    if (ctx.id() != 1) {
      EXPECT_FALSE(in[1].has_value());
    }
    ctx.output(0);
  });
}

TEST(BroadcastClique, DegreeSumAlgorithm) {
  // Classic BCC-friendly task: every node learns Σ deg(v) (= 2m).
  Graph g = gen::gnp(16, 0.3, 9);
  auto r = run_broadcast_clique(g, [](BcastCtx& ctx) {
    const unsigned idb = node_id_bits(ctx.n());
    auto in = ctx.round(Word(ctx.adj_row().popcount(), idb));
    std::uint64_t sum = 0;
    for (NodeId v = 0; v < ctx.n(); ++v) sum += in[v]->value;
    ctx.output(sum);
  });
  EXPECT_EQ(r.outputs[0], 2 * g.m());
  EXPECT_EQ(r.cost.rounds, 1u);
}

TEST(BroadcastClique, GraphLearnableInNOverLogNRounds) {
  // Broadcasting the whole row still works in the BCC (it is a broadcast).
  Graph g = gen::gnp(16, 0.4, 3);
  auto r = run_broadcast_clique(g, [&](BcastCtx& ctx) {
    auto rows = ctx.broadcast(ctx.adj_row());
    std::size_t m = 0;
    for (auto& row : rows) m += row.popcount();
    ctx.output(m / 2);
  });
  EXPECT_EQ(r.outputs[0], g.m());
  EXPECT_EQ(r.cost.rounds, ceil_div(16, node_id_bits(16)));
}

// ---------- one-round achievability: unicast vs broadcast ----------

TEST(ModelGap, TwoNodesModelsCoincide) {
  // With n = 2 there is one recipient, so "same message to all" is no
  // restriction at all.
  auto gap = one_round_model_gap(2, 1, 1);
  EXPECT_EQ(gap.unicast_count, gap.broadcast_count);
  EXPECT_TRUE(gap.separating_functions.empty());
}

TEST(ModelGap, TwoNodesMatchesGenomeEnumeration) {
  // Cross-validate the measurability analysis against the exhaustive
  // genome enumeration of ProtocolSpace (same model at n = 2).
  auto via_views = achievable_one_round_unicast(2, 1, 1);
  auto via_genomes = ProtocolSpace(2, 1, 1, 1).achievable_functions();
  ASSERT_EQ(via_views.size(), via_genomes.size());
  for (std::size_t i = 0; i < via_views.size(); ++i) {
    EXPECT_EQ(via_views[i], via_genomes[i]) << i;
  }
}

TEST(ModelGap, BroadcastIsSubsetOfUnicast) {
  auto uni = achievable_one_round_unicast(3, 1, 1);
  auto bc = achievable_one_round_broadcast(3, 1, 1);
  for (std::size_t i = 0; i < uni.size(); ++i) {
    EXPECT_LE(bc[i], uni[i]) << i;
  }
}

TEST(ModelGap, SaturationWhenInputsFitOneWord) {
  // When L ≤ b, every node can broadcast its whole input, so one round of
  // EITHER model already computes every function — function-computation
  // achievability cannot separate the models here (the genuine separation
  // is bandwidth-per-task, demonstrated by the personalised-messages test
  // below and bench_bcc).
  auto gap = one_round_model_gap(3, 1, 1);
  EXPECT_EQ(gap.unicast_count, std::size_t{256});
  EXPECT_EQ(gap.broadcast_count, std::size_t{256});
  EXPECT_TRUE(gap.separating_functions.empty());
}

TEST(ModelGap, ConstantsAlwaysAchievable) {
  auto bc = achievable_one_round_broadcast(3, 1, 1);
  EXPECT_TRUE(bc[0]);              // constant 0
  EXPECT_TRUE(bc[bc.size() - 1]);  // constant 1
}

// ---------- the measurable model separation: personalised messages -------

// Task: every node must deliver a DISTINCT word to every other node.
// Unicast: one round. Broadcast: the words must be serialised through the
// shared channel — Θ(n) rounds. This is §2's "bottleneck-free" motivation
// made concrete: per-task bandwidth, not function computability, is what
// the broadcast restriction destroys.
TEST(ModelSeparation, PersonalisedMessagesUnicastVsBroadcast) {
  for (NodeId n : {8u, 16u, 32u}) {
    const unsigned idb = node_id_bits(n);
    // Unicast: node v sends (v+u) mod n to node u; verify and count.
    auto uni = Engine::run(gen::empty(n), [idb](NodeCtx& ctx) {
      std::vector<std::pair<NodeId, Word>> sends;
      for (NodeId u = 0; u < ctx.n(); ++u) {
        if (u != ctx.id())
          sends.emplace_back(u, Word((ctx.id() + u) % ctx.n(), idb));
      }
      auto in = ctx.round(sends);
      bool ok = true;
      for (NodeId v = 0; v < ctx.n(); ++v) {
        if (v == ctx.id()) continue;
        ok = ok && in[v].has_value() &&
             in[v]->value == (v + ctx.id()) % ctx.n();
      }
      ctx.decide(ok);
    });
    EXPECT_TRUE(uni.accepted());
    EXPECT_EQ(uni.cost.rounds, 1u);

    // Broadcast: serialise — in round r, announce the word intended for
    // node (id + 1 + r) mod n; receivers pick out their slot.
    auto bc = run_broadcast_clique(gen::empty(n), [idb](BcastCtx& ctx) {
      bool ok = true;
      for (NodeId r = 0; r + 1 < ctx.n(); ++r) {
        const NodeId target = (ctx.id() + 1 + r) % ctx.n();
        auto in = ctx.round(Word((ctx.id() + target) % ctx.n(), idb));
        // Which sender addressed ME this round? sender s targets
        // (s + 1 + r) mod n = me  ⇒  s = (me - 1 - r) mod n.
        const NodeId s = static_cast<NodeId>(
            (ctx.id() + ctx.n() - 1 - r) % ctx.n());
        ok = ok && in[s].has_value() &&
             in[s]->value == (s + ctx.id()) % ctx.n();
      }
      ctx.decide(ok);
    });
    EXPECT_TRUE(bc.accepted());
    EXPECT_EQ(bc.cost.rounds, static_cast<std::uint64_t>(n) - 1);
  }
}

}  // namespace
}  // namespace ccq
