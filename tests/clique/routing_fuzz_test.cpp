// Randomised property tests for the routing collectives: arbitrary demand
// shapes must be delivered exactly (content, attribution, ordering where
// promised), under both routers and the block framing.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>

#include "clique/chaos.hpp"
#include "clique/routing.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

struct BlockDemand {
  std::vector<std::vector<RoutedBlock>> per_node;
};

BlockDemand random_block_demand(NodeId n, std::uint64_t seed,
                                std::size_t max_blocks,
                                std::size_t max_bits) {
  SplitMix64 rng(seed);
  BlockDemand d;
  d.per_node.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t count = rng.next_below(max_blocks + 1);
    for (std::size_t i = 0; i < count; ++i) {
      RoutedBlock b;
      b.dst = static_cast<NodeId>(rng.next_below(n));
      const std::size_t bits = rng.next_below(max_bits + 1);
      BitVector payload(bits);
      for (std::size_t j = 0; j < bits; ++j)
        payload.set(j, rng.next_bool(0.5));
      b.payload = std::move(payload);
      d.per_node[v].push_back(std::move(b));
    }
  }
  return d;
}

TEST(RouteBlocksFuzz, ArbitraryShapesDeliveredInOrder) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const NodeId n = 6 + static_cast<NodeId>(seed % 5);
    auto demand = random_block_demand(n, seed * 31, 6, 40);

    std::mutex mu;
    std::map<NodeId, std::vector<std::pair<NodeId, BitVector>>> got;
    Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
      auto received = route_blocks(ctx, demand.per_node[ctx.id()]);
      std::lock_guard<std::mutex> lk(mu);
      got[ctx.id()] = std::move(received);
        ctx.output(0);
    });

    // Expected: for each dst, blocks grouped by src in submission order.
    for (NodeId dst = 0; dst < n; ++dst) {
      std::vector<std::pair<NodeId, BitVector>> want;
      for (NodeId src = 0; src < n; ++src) {
        for (const auto& b : demand.per_node[src]) {
          if (b.dst == dst) want.emplace_back(src, b.payload);
        }
      }
      ASSERT_EQ(got[dst].size(), want.size())
          << "seed=" << seed << " dst=" << dst;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[dst][i].first, want[i].first)
            << "seed=" << seed << " dst=" << dst << " i=" << i;
        EXPECT_TRUE(got[dst][i].second == want[i].second)
            << "seed=" << seed << " dst=" << dst << " i=" << i;
      }
    }
  }
}

TEST(RouteBlocksFuzz, EmptyPayloadBlocks) {
  const NodeId n = 5;
  Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
    std::vector<RoutedBlock> blocks;
    if (ctx.id() == 1) {
      blocks.push_back({3, BitVector(0)});
      blocks.push_back({3, BitVector(2, true)});
    }
    auto received = route_blocks(ctx, blocks);
    if (ctx.id() == 3) {
      ASSERT_EQ(received.size(), 2u);
      EXPECT_EQ(received[0].second.size(), 0u);
      EXPECT_EQ(received[1].second.size(), 2u);
    }
    ctx.output(0);
  });
}

TEST(RouteBalancedFuzz, RandomPayloadMultisets) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const NodeId n = 7 + static_cast<NodeId>(seed % 4);
    const unsigned B = node_id_bits(n);
    // Per node: random multiset of (dst, payload).
    std::vector<std::vector<RoutedMessage>> demand(n);
    SplitMix64 rng(seed * 977);
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t count = rng.next_below(2 * n);
      for (std::size_t i = 0; i < count; ++i) {
        RoutedMessage m;
        m.dst = static_cast<NodeId>(rng.next_below(n));
        m.payload = Word(rng.next_below(std::uint64_t{1} << B), B);
        demand[v].push_back(m);
      }
    }
    std::mutex mu;
    std::map<std::pair<NodeId, NodeId>, std::multiset<std::uint64_t>> got;
    Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
      auto received = route_balanced(ctx, demand[ctx.id()]);
      std::lock_guard<std::mutex> lk(mu);
      for (auto& [src, w] : received) {
        got[{src, ctx.id()}].insert(w.value);
      }
      ctx.output(0);
    });
    std::map<std::pair<NodeId, NodeId>, std::multiset<std::uint64_t>> want;
    for (NodeId src = 0; src < n; ++src) {
      for (const auto& m : demand[src]) {
        want[{src, m.dst}].insert(m.payload.value);
      }
    }
    EXPECT_EQ(got, want) << "seed=" << seed;
  }
}

// Exact delivery helper shared by the route_balanced property tests.
void expect_balanced_delivers(
    NodeId n, const std::vector<std::vector<RoutedMessage>>& demand,
    const char* what) {
  std::mutex mu;
  std::map<std::pair<NodeId, NodeId>, std::multiset<std::uint64_t>> got;
  Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
    auto received = route_balanced(ctx, demand[ctx.id()]);
    std::lock_guard<std::mutex> lk(mu);
    for (auto& [src, w] : received) {
      got[{src, ctx.id()}].insert(w.value);
    }
    ctx.output(0);
  });
  std::map<std::pair<NodeId, NodeId>, std::multiset<std::uint64_t>> want;
  for (NodeId src = 0; src < n; ++src) {
    for (const auto& m : demand[src]) {
      want[{src, m.dst}].insert(m.payload.value);
    }
  }
  EXPECT_EQ(got, want) << what;
}

// Prime clique sizes exercise the stripe-offset arithmetic where n divides
// nothing: the per-node offsets are mix64_below draws (no modulo bias, no
// power-of-two alignment), and delivery must still be exact.
TEST(RouteBalancedFuzz, PrimeSizesDeliverExactly) {
  for (const NodeId n : {7u, 11u, 13u}) {
    const unsigned B = node_id_bits(n);
    std::vector<std::vector<RoutedMessage>> demand(n);
    SplitMix64 rng(n * 1337);
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t count = rng.next_below(3 * n);
      for (std::size_t i = 0; i < count; ++i) {
        RoutedMessage m;
        m.dst = static_cast<NodeId>(rng.next_below(n));
        m.payload = Word(rng.next_below(std::uint64_t{1} << B), B);
        demand[v].push_back(m);
      }
    }
    expect_balanced_delivers(n, demand, "prime n");
  }
}

// Adversarial skew: a permutation demand (every node fires its whole
// budget at a single distinct target) and an all-to-one hotspot. Both
// defeat naive per-pair balancing; the router must still deliver exactly.
TEST(RouteBalancedFuzz, AdversarialPermutationAndHotspotDemands) {
  const NodeId n = 11;
  const unsigned B = node_id_bits(n);
  // Random permutation via seeded Fisher-Yates.
  std::vector<NodeId> perm(n);
  for (NodeId v = 0; v < n; ++v) perm[v] = v;
  SplitMix64 rng(4242);
  for (NodeId v = n; v-- > 1;) {
    std::swap(perm[v], perm[rng.next_below(v + 1)]);
  }
  std::vector<std::vector<RoutedMessage>> perm_demand(n);
  std::vector<std::vector<RoutedMessage>> hotspot_demand(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < 2 * n; ++i) {
      perm_demand[v].push_back(
          {perm[v], Word((v + i) % (std::uint64_t{1} << B), B)});
      hotspot_demand[v].push_back(
          {0, Word((v * 3 + i) % (std::uint64_t{1} << B), B)});
    }
  }
  expect_balanced_delivers(n, perm_demand, "permutation");
  expect_balanced_delivers(n, hotspot_demand, "all-to-one");
}

// Under chaos duplication/drop faults the router's internal framing
// (sequence numbers, torn-pair parity) may be violated mid-flight. The
// contract is fail-stop: the run either completes or raises
// ModelViolation — it must never hang, crash, or silently misattribute.
TEST(RouteBalancedFuzz, ChaosFaultsFailStopNotSilent) {
  const NodeId n = 7;
  const unsigned B = node_id_bits(n);
  std::vector<std::vector<RoutedMessage>> demand(n);
  SplitMix64 rng(777);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < n; ++i) {
      demand[v].push_back(
          {static_cast<NodeId>(rng.next_below(n)),
           Word(rng.next_below(std::uint64_t{1} << B), B)});
    }
  }
  unsigned violations = 0, completions = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ChaosPlan::Config ccfg;
    ccfg.seed = seed;
    ccfg.p_dup = 0.5;
    ccfg.p_drop = seed % 2 == 0 ? 0.25 : 0.0;
    ChaosPlan plan(ccfg);
    Engine::Config cfg;
    cfg.chaos = &plan;
    try {
      Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
        route_balanced(ctx, demand[ctx.id()]);
        ctx.output(0);
      }, cfg);
      ++completions;
    } catch (const ModelViolation&) {
      ++violations;
    }
    EXPECT_GT(plan.total_faults(), 0u) << seed;
  }
  // Heavy duplication must trip the framing checks at least once; the
  // split keeps the test honest about both exits existing.
  EXPECT_GT(violations, 0u);
  EXPECT_EQ(violations + completions, 12u);
}

TEST(RouteBlocksFuzz, TooManyBlocksForOneDestinationRejected) {
  const NodeId n = 4;
  EXPECT_THROW(
      Engine::run(gen::empty(n),
                  [&](NodeCtx& ctx) {
                    std::vector<RoutedBlock> blocks;
                    if (ctx.id() == 0) {
                      for (int i = 0; i < 6; ++i)  // > 2^idb = 4 seqs
                        blocks.push_back({1, BitVector(1)});
                    }
                    route_blocks(ctx, blocks);
                    ctx.output(0);
                  }),
      ModelViolation);
}

}  // namespace
}  // namespace ccq
