// The sharded owner-computes backend (ExecutionBackend::kSharded).
//
// kSharded exists for n ≫ cores: the node id space is cut into contiguous
// shards, each pool worker owns a fixed set of shards, and the per-node
// resume loop is a plain id-ordered walk with no shared work-stealing
// counter (DESIGN.md §12). None of that may be observable: this suite pins
// bit-for-bit result equality against both fiber-pool and thread-per-node
// references across shard counts (dividing and not), degenerate clique
// sizes around the worker count, abort/unwind mid-round, and composition
// with the trace and chaos layers. It also holds the engine-config
// boundary: the n cap that the sharded backend raised, and workers > n
// rejection.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "clique/chaos.hpp"
#include "clique/engine.hpp"
#include "clique/routing.hpp"
#include "clique/trace.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

void expect_same_result(const RunResult& ref, const RunResult& got,
                        const std::string& name) {
  EXPECT_EQ(ref.outputs, got.outputs) << name;
  EXPECT_EQ(ref.cost.rounds, got.cost.rounds) << name;
  EXPECT_EQ(ref.cost.messages, got.cost.messages) << name;
  EXPECT_EQ(ref.cost.bits, got.cost.bits) << name;
  EXPECT_EQ(ref.cost.collectives, got.cost.collectives) << name;
  EXPECT_EQ(ref.cost.max_node_sent, got.cost.max_node_sent) << name;
  EXPECT_EQ(ref.cost.max_node_received, got.cost.max_node_received) << name;
}

// Every collective, with per-node skew, so any ownership or scheduling
// leak shows up in the output fingerprints.
void mixed_program(NodeCtx& ctx) {
  const NodeId n = ctx.n();
  std::uint64_t fp = 0xcbf29ce484222325ull;
  auto mix = [&fp](std::uint64_t v) { fp = (fp ^ v) * 0x100000001b3ull; };

  std::vector<std::pair<NodeId, Word>> sends;
  if (n > 1) sends.emplace_back((ctx.id() + 1) % n, Word(ctx.id() % 2, 1));
  auto in = ctx.round(sends);
  for (NodeId v = 0; v < n; ++v) {
    if (in[v]) mix(in[v]->value + v);
  }

  WordQueues out(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v == ctx.id()) continue;
    for (NodeId i = 0; i <= (ctx.id() + v) % 3; ++i) {
      out[v].emplace_back((i + v) % 2, 1);
    }
  }
  auto ex = ctx.exchange(out);
  for (NodeId v = 0; v < n; ++v) mix(ex[v].size());

  SplitMix64 rng(ctx.id() * 6151 + 3);
  std::vector<std::pair<NodeId, Word>> flat_sends;
  for (NodeId i = 0; i < 2 * n; ++i) {
    flat_sends.emplace_back(static_cast<NodeId>(rng.next_below(n)),
                            Word(i % 2, 1));
  }
  FlatInbox fin = ctx.exchange_flat(flat_sends);
  for (NodeId v = 0; v < n; ++v) {
    auto run = fin.from(v);
    mix(run.size() * 31 + (run.empty() ? 0 : run.front().value));
  }

  for (const BitVector& r : ctx.broadcast(ctx.adj_row())) mix(r.popcount());
  for (bool b : ctx.share_bit(ctx.id() % 2 == 0)) mix(b ? 1 : 2);
  mix(ctx.any(ctx.id() == 0) ? 3 : 4);
  mix(ctx.all(true) ? 5 : 6);

  std::vector<RoutedMessage> msgs;
  for (NodeId i = 0; i < n; ++i) {
    NodeId dst;
    do {
      dst = static_cast<NodeId>(rng.next_below(n));
    } while (n > 1 && dst == ctx.id());
    msgs.push_back({dst, Word(i % 2, 1)});
  }
  for (const auto& [src, w] : route_balanced(ctx, msgs)) mix(src + w.value);

  mix(ctx.rounds_so_far());
  ctx.output(fp);
}

Engine::Config sharded(std::size_t shards) {
  Engine::Config cfg;
  cfg.backend = ExecutionBackend::kSharded;
  cfg.workers = shards;
  return cfg;
}

// ---- determinism across shard counts -------------------------------------

TEST(ShardedDeterminism, BitForBitAcrossShardCounts) {
  const Graph g = gen::gnp(26, 0.5, 17);
  Engine::Config tpn;
  tpn.backend = ExecutionBackend::kThreadPerNode;
  const auto ref = Engine::run(g, mixed_program, tpn);
  EXPECT_GT(ref.cost.rounds, 0u);

  Engine::Config pooled;
  pooled.backend = ExecutionBackend::kPooled;
  expect_same_result(ref, Engine::run(g, mixed_program, pooled), "pooled");

  // Dividing (1, 2, 13), non-dividing (3, 5), over-subscribed (26 = n,
  // one node per shard) and hardware-default (0) shard counts.
  for (std::size_t shards : {1u, 2u, 3u, 5u, 13u, 26u, 0u}) {
    expect_same_result(
        ref, Engine::run(g, mixed_program, sharded(shards)),
        "sharded/" + std::to_string(shards));
  }
}

TEST(ShardedDeterminism, RepeatedRunsIdentical) {
  const Graph g = gen::gnp(19, 0.4, 7);
  const auto r1 = Engine::run(g, mixed_program, sharded(3));
  const auto r2 = Engine::run(g, mixed_program, sharded(3));
  expect_same_result(r1, r2, "sharded repeat");
}

TEST(ShardedDeterminism, BothPlanesAgree) {
  const Graph g = gen::gnp(21, 0.5, 29);
  Engine::Config legacy = sharded(4);
  legacy.plane = MessagePlaneKind::kLegacy;
  Engine::Config flat = sharded(4);
  flat.plane = MessagePlaneKind::kFlat;
  expect_same_result(Engine::run(g, mixed_program, legacy),
                     Engine::run(g, mixed_program, flat),
                     "sharded legacy vs flat");
}

// ---- degenerate clique sizes ---------------------------------------------

// n around the worker/shard count: {1, 2, workers-1, workers, workers+1}
// with workers = 4 where n allows (clamped to n below that — workers > n is
// rejected by config validation, which is its own test).
TEST(ShardedDeterminism, DegenerateCliqueSizes) {
  for (NodeId n : {1u, 2u, 3u, 4u, 5u}) {
    const Graph g = gen::gnp(n, 0.6, 11 + n);
    Engine::Config tpn;
    tpn.backend = ExecutionBackend::kThreadPerNode;
    const auto ref = Engine::run(g, mixed_program, tpn);
    const std::size_t workers = std::min<std::size_t>(4, n);
    for (ExecutionBackend backend :
         {ExecutionBackend::kPooled, ExecutionBackend::kSharded}) {
      Engine::Config cfg;
      cfg.backend = backend;
      cfg.workers = workers;
      const std::string name =
          (backend == ExecutionBackend::kPooled ? "pooled" : "sharded") +
          std::string("/n=") + std::to_string(n);
      expect_same_result(ref, Engine::run(g, mixed_program, cfg), name);
    }
    // Non-dividing shard count whenever one exists below n.
    if (n >= 3) {
      expect_same_result(
          ref, Engine::run(g, mixed_program, sharded(n - 1)),
          "sharded/n=" + std::to_string(n) + "/shards=" + std::to_string(n - 1));
    }
  }
}

// ---- abort / unwind -------------------------------------------------------

std::atomic<int> live_guards{0};
struct UnwindGuard {
  UnwindGuard() { live_guards.fetch_add(1); }
  ~UnwindGuard() { live_guards.fetch_sub(1); }
};

TEST(ShardedAbort, MidRoundExceptionUnwindsAllShards) {
  const Graph g = gen::empty(10);
  for (std::size_t shards : {1u, 3u, 10u}) {  // 3 does not divide 10
    live_guards.store(0);
    EXPECT_THROW(Engine::run(
                     g,
                     [](NodeCtx& ctx) {
                       UnwindGuard guard;
                       ctx.round({});
                       // A node mid-shard: its owner has resumed neighbours
                       // before it and still holds unresumed ones after.
                       if (ctx.id() == 6) throw std::runtime_error("boom");
                       ctx.round({});
                       ctx.output(0);
                     },
                     sharded(shards)),
                 std::runtime_error)
        << "shards=" << shards;
    EXPECT_EQ(live_guards.load(), 0) << "shards=" << shards;
    // The pool and planes must be serviceable immediately afterwards.
    const auto r = Engine::run(
        g, [](NodeCtx& ctx) { ctx.decide(ctx.all(true)); }, sharded(shards));
    EXPECT_TRUE(r.accepted()) << "shards=" << shards;
  }
}

TEST(ShardedAbort, DivergentCollectivesDetected) {
  const Graph g = gen::empty(7);
  EXPECT_THROW(Engine::run(
                   g,
                   [](NodeCtx& ctx) {
                     if (ctx.id() == 2) {
                       ctx.round({});
                     } else {
                       ctx.share_bit(true);
                     }
                     ctx.output(0);
                   },
                   sharded(3)),
               ModelViolation);
}

// ---- composition with trace and chaos ------------------------------------

TEST(ShardedTrace, LedgerIdenticalToPooledBackend) {
  const Graph g = gen::gnp(15, 0.5, 23);
  RoundTrace ref_trace;
  Engine::Config pooled;
  pooled.backend = ExecutionBackend::kPooled;
  pooled.trace = &ref_trace;
  const auto ref = Engine::run(g, mixed_program, pooled);
  ASSERT_FALSE(ref_trace.records().empty());
  ASSERT_TRUE(ref_trace.totals_match());

  for (std::size_t shards : {2u, 4u}) {
    RoundTrace trace;
    Engine::Config cfg = sharded(shards);
    cfg.trace = &trace;
    const auto got = Engine::run(g, mixed_program, cfg);
    expect_same_result(ref, got, "traced sharded");
    EXPECT_TRUE(ref_trace.deterministic_eq(trace)) << "shards=" << shards;
    EXPECT_TRUE(trace.totals_match()) << "shards=" << shards;
  }
}

TEST(ShardedChaos, FaultScheduleIndependentOfSharding) {
  const Graph g = gen::empty(9);
  auto run_with = [&](Engine::Config cfg, ChaosPlan& plan) {
    cfg.chaos = &plan;
    return Engine::run(
        g,
        [](NodeCtx& ctx) {
          WordQueues out(ctx.n());
          for (NodeId v = 0; v < ctx.n(); ++v) {
            if (v != ctx.id()) out[v].emplace_back(ctx.id() % 2, 1);
          }
          auto in = ctx.exchange(out);
          std::uint64_t fp = 0;
          for (NodeId v = 0; v < ctx.n(); ++v) {
            for (const Word& w : in[v]) fp = fp * 131 + w.value + v;
          }
          ctx.output(fp);
        },
        cfg);
  };
  ChaosPlan::Config ccfg;
  ccfg.seed = 77;
  ccfg.p_flip = 0.3;
  ccfg.p_dup = 0.2;

  ChaosPlan ref_plan(ccfg);
  Engine::Config pooled;
  pooled.backend = ExecutionBackend::kPooled;
  const auto ref = run_with(pooled, ref_plan);
  ASSERT_GT(ref_plan.total_faults(), 0u);

  ChaosPlan plan(ccfg);
  const auto got = run_with(sharded(4), plan);
  expect_same_result(ref, got, "chaos sharded");
  ASSERT_EQ(ref_plan.ledger().size(), plan.ledger().size());
  for (std::size_t i = 0; i < plan.ledger().size(); ++i) {
    EXPECT_TRUE(ref_plan.ledger()[i] == plan.ledger()[i]) << "event " << i;
  }
}

// A chaos duplicate on the *legacy* plane must keep the plane's
// max_node_in report consistent with the trace's independent per-node
// delta scan (the engine cross-checks them and throws on mismatch). CI
// exercised only kFlat here before; this pins the legacy path.
TEST(ShardedChaos, LegacyPlaneDuplicateAgreesWithTraceCrossCheck) {
  const Graph g = gen::empty(6);
  ChaosPlan::Config ccfg;
  ccfg.seed = 5;
  ccfg.p_dup = 1.0;  // every word doubled
  ChaosPlan plan(ccfg);
  RoundTrace trace;
  Engine::Config cfg;
  cfg.plane = MessagePlaneKind::kLegacy;
  cfg.chaos = &plan;
  cfg.trace = &trace;
  // exchange (not broadcast): raw queues carry no framing, so duplicated
  // words arrive as extra words instead of tripping reassembly checks —
  // the run must complete with the inflated traffic fully accounted.
  const auto r = Engine::run(
      g,
      [](NodeCtx& ctx) {
        WordQueues out(ctx.n());
        for (NodeId v = 0; v < ctx.n(); ++v) {
          if (v != ctx.id()) out[v].emplace_back(1, 1);
        }
        auto in = ctx.exchange(out);
        std::uint64_t words = 0;
        for (const auto& q : in) words += q.size();
        ctx.output(words);
      },
      cfg);
  EXPECT_GT(plan.fault_count(FaultKind::kDuplicate), 0u);
  ASSERT_TRUE(trace.totals_match());
  // Every word was duplicated: each node received 2 words from each of the
  // other 5 nodes, and the trace's per-collective receiver max must agree.
  for (auto w : r.outputs) EXPECT_EQ(w, 10u);
  ASSERT_EQ(trace.records().size(), 1u);
  EXPECT_EQ(trace.records()[0].max_received, 10u);

  // Same schedule on the flat plane: identical ledger and metered cost —
  // the planes must agree on corrupted traffic exactly as on honest.
  ChaosPlan plan2(ccfg);
  Engine::Config flat = cfg;
  flat.plane = MessagePlaneKind::kFlat;
  flat.chaos = &plan2;
  flat.trace = nullptr;
  const auto r2 = Engine::run(
      g,
      [](NodeCtx& ctx) {
        WordQueues out(ctx.n());
        for (NodeId v = 0; v < ctx.n(); ++v) {
          if (v != ctx.id()) out[v].emplace_back(1, 1);
        }
        auto in = ctx.exchange(out);
        std::uint64_t words = 0;
        for (const auto& q : in) words += q.size();
        ctx.output(words);
      },
      flat);
  expect_same_result(r, r2, "legacy vs flat under duplication");
  ASSERT_EQ(plan.ledger().size(), plan2.ledger().size());
  for (std::size_t i = 0; i < plan.ledger().size(); ++i) {
    EXPECT_TRUE(plan.ledger()[i] == plan2.ledger()[i]) << "event " << i;
  }
}

// ---- the raised n cap -----------------------------------------------------

TEST(ShardedScale, CliqueAbovePreviousCapRuns) {
  // 4097 was rejected before the sharded backend raised the cap to 8192.
  const NodeId n = 4097;
  const auto r = Engine::run(
      gen::empty(n),
      [](NodeCtx& ctx) {
        auto bits = ctx.share_bit(ctx.id() % 7 == 0);
        std::uint64_t count = 0;
        for (bool b : bits) count += b ? 1 : 0;
        ctx.output(count);
      },
      sharded(0));
  EXPECT_EQ(r.outputs[0], (n + 6) / 7);
  EXPECT_EQ(r.cost.rounds, 1u);
}

TEST(ShardedScale, CliqueBeyondCapRejected) {
  EXPECT_THROW(Engine::run(gen::empty(8193),
                           [](NodeCtx& ctx) { ctx.output(0); }, sharded(0)),
               ModelViolation);
}

}  // namespace
}  // namespace ccq
