// Tests for the message word codec — the unit the bandwidth discipline is
// enforced in.

#include "clique/word.hpp"

#include "clique/simulation.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ccq {
namespace {

TEST(Word, ValueMustFitWidth) {
  EXPECT_NO_THROW(Word(7, 3));
  EXPECT_THROW(Word(8, 3), ModelViolation);
  EXPECT_THROW(Word(1, 0), ModelViolation);
  EXPECT_NO_THROW(Word(0, 0));
  EXPECT_THROW(Word(0, 65), ModelViolation);
}

TEST(Word, SixtyFourBitValues) {
  EXPECT_NO_THROW(Word(~std::uint64_t{0}, 64));
}

TEST(Word, Equality) {
  EXPECT_EQ(Word(5, 3), Word(5, 3));
  EXPECT_FALSE(Word(5, 3) == Word(5, 4));  // width is part of identity
  EXPECT_FALSE(Word(5, 3) == Word(4, 3));
}

TEST(NodeIdBits, MatchesCeilLog) {
  EXPECT_EQ(node_id_bits(1), 1u);
  EXPECT_EQ(node_id_bits(2), 1u);
  EXPECT_EQ(node_id_bits(3), 2u);
  EXPECT_EQ(node_id_bits(16), 4u);
  EXPECT_EQ(node_id_bits(17), 5u);
  EXPECT_EQ(node_id_bits(1024), 10u);
}

TEST(EncodeBits, ExactMultiples) {
  BitVector bv = BitVector::from_string("110100101101");
  auto words = encode_bits(bv, 4);
  ASSERT_EQ(words.size(), 3u);
  for (const Word& w : words) EXPECT_EQ(w.bits, 4u);
  EXPECT_TRUE(decode_words(words, 12) == bv);
}

TEST(EncodeBits, RaggedTail) {
  BitVector bv = BitVector::from_string("1101001");
  auto words = encode_bits(bv, 3);
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[2].bits, 1u);  // 7 = 3+3+1
  EXPECT_TRUE(decode_words(words, 7) == bv);
}

TEST(EncodeBits, EmptyVector) {
  BitVector bv;
  auto words = encode_bits(bv, 5);
  EXPECT_TRUE(words.empty());
  EXPECT_EQ(decode_words(words, 0).size(), 0u);
}

TEST(DecodeWords, LengthMismatchRejected) {
  BitVector bv(10, true);
  auto words = encode_bits(bv, 4);
  EXPECT_THROW(decode_words(words, 11), ModelViolation);
  EXPECT_THROW(decode_words(words, 9), ModelViolation);
}

TEST(EncodeBitsProperty, RoundTripRandomWidths) {
  SplitMix64 rng(0xc0dec);
  for (int t = 0; t < 60; ++t) {
    const std::size_t bits = rng.next_below(300);
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(63));
    BitVector bv(bits);
    for (std::size_t i = 0; i < bits; ++i) bv.set(i, rng.next_bool(0.5));
    auto words = encode_bits(bv, width);
    EXPECT_EQ(words.size(), ceil_div(bits, width));
    for (std::size_t i = 0; i + 1 < words.size(); ++i)
      EXPECT_EQ(words[i].bits, width);
    EXPECT_TRUE(decode_words(words, bits) == bv) << t;
  }
}


// ---------- clique-on-clique simulation accounting ----------

TEST(Simulation, OverheadIsCeilSquared) {
  EXPECT_EQ(simulation_round_overhead(10, 10), 1u);
  EXPECT_EQ(simulation_round_overhead(11, 10), 4u);   // ⌈11/10⌉² = 4
  EXPECT_EQ(simulation_round_overhead(52, 16), 16u);  // ⌈52/16⌉² = 16
  EXPECT_EQ(simulation_round_overhead(5, 10), 1u);    // fewer than hosts
}

TEST(Simulation, HostRoundsScaleLinearly) {
  EXPECT_EQ(simulated_host_rounds(33, 28, 8), 33u * 16);
  EXPECT_EQ(simulated_host_rounds(0, 100, 10), 0u);
}

}  // namespace
}  // namespace ccq
