#include "clique/routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

using Delivery = std::map<std::pair<NodeId, NodeId>, std::vector<std::uint64_t>>;

// Runs a router on a demand pattern and returns (per (src,dst): payload
// multiset) plus the cost. demand(src) yields that node's messages.
template <typename Router, typename DemandFn>
std::pair<Delivery, CostMeter> run_router(NodeId n, Router router,
                                          DemandFn demand) {
  Graph g = gen::empty(n);
  std::mutex mu;
  Delivery got;
  auto res = Engine::run(g, [&](NodeCtx& ctx) {
    std::vector<RoutedMessage> msgs = demand(ctx.id(), ctx.n());
    auto received = router(ctx, msgs);
    {
      std::lock_guard<std::mutex> lk(mu);
      for (auto& [src, w] : received) {
        got[{src, ctx.id()}].push_back(w.value);
      }
    }
    ctx.output(0);
  });
  for (auto& [k, v] : got) std::sort(v.begin(), v.end());
  return {std::move(got), res.cost};
}

template <typename DemandFn>
Delivery expected_delivery(NodeId n, DemandFn demand) {
  Delivery want;
  for (NodeId src = 0; src < n; ++src) {
    for (const RoutedMessage& m : demand(src, n)) {
      want[{src, m.dst}].push_back(m.payload.value);
    }
  }
  for (auto& [k, v] : want) std::sort(v.begin(), v.end());
  return want;
}

auto direct = [](NodeCtx& c, const std::vector<RoutedMessage>& m) {
  return route_direct(c, m);
};
auto balanced = [](NodeCtx& c, const std::vector<RoutedMessage>& m) {
  return route_balanced(c, m);
};

// Random demand: each node sends `per_node` messages to random destinations.
auto random_demand(std::uint64_t seed, std::size_t per_node) {
  return [seed, per_node](NodeId id, NodeId n) {
    SplitMix64 rng(seed ^ (id * 0x9e37ULL));
    std::vector<RoutedMessage> out;
    for (std::size_t i = 0; i < per_node; ++i) {
      NodeId dst;
      do {
        dst = static_cast<NodeId>(rng.next_below(n));
      } while (dst == id);
      out.push_back({dst, Word(rng.next_below(4), 2)});
    }
    return out;
  };
}

TEST(RouteDirect, DeliversEverything) {
  const NodeId n = 8;
  auto demand = random_demand(1, 12);
  auto [got, cost] = run_router(n, direct, demand);
  EXPECT_EQ(got, expected_delivery(n, demand));
}

TEST(RouteDirect, CostEqualsMaxPairLoad) {
  // Node 0 sends 9 messages all to node 1 → 9 rounds.
  auto demand = [](NodeId id, NodeId) {
    std::vector<RoutedMessage> out;
    if (id == 0)
      for (int i = 0; i < 9; ++i) out.push_back({1, Word(1, 1)});
    return out;
  };
  auto [got, cost] = run_router(4, direct, demand);
  EXPECT_EQ(cost.rounds, 9u);
}

TEST(RouteDirect, EmptyDemandCostsNothing) {
  auto demand = [](NodeId, NodeId) { return std::vector<RoutedMessage>{}; };
  auto [got, cost] = run_router(5, direct, demand);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(cost.rounds, 0u);
}

TEST(RouteBalanced, DeliversEverything) {
  const NodeId n = 9;
  auto demand = random_demand(2, 15);
  auto [got, cost] = run_router(n, balanced, demand);
  EXPECT_EQ(got, expected_delivery(n, demand));
}

TEST(RouteBalanced, DeliversSkewedHotspot) {
  // Every node sends n messages, all to node 0: S = n sent, R = n^2... no —
  // receiver load must be ≤ about n for Lenzen's regime, so send n messages
  // spread as "all nodes → node 0, one message each, times n batches" is
  // out of regime; instead: each node sends 1 message to node 0 (R = n-1).
  auto demand = [](NodeId id, NodeId) {
    std::vector<RoutedMessage> out;
    if (id != 0) out.push_back({0, Word(id % 2, 1)});
    return out;
  };
  const NodeId n = 16;
  auto [got, cost] = run_router(n, balanced, demand);
  EXPECT_EQ(got, expected_delivery(n, demand));
}

TEST(RouteBalanced, SingleHeavyPairBeatsDirect) {
  // Node 0 sends m = n/2·n messages to node 1. Direct: m rounds on one
  // link. Balanced: stripes across n intermediaries.
  const NodeId n = 16;
  const std::size_t m = 64;
  auto demand = [m](NodeId id, NodeId) {
    std::vector<RoutedMessage> out;
    if (id == 0)
      for (std::size_t i = 0; i < m; ++i)
        out.push_back({1, Word(i % 2, 1)});
    return out;
  };
  auto [got_d, cost_d] = run_router(n, direct, demand);
  auto [got_b, cost_b] = run_router(n, balanced, demand);
  EXPECT_EQ(got_d, got_b);
  EXPECT_EQ(cost_d.rounds, m);  // 64 rounds over the single pair
  // Balanced: phase 1 ⌈m/n⌉·2 = 8, phase 2: node 1 receives m messages
  // from n intermediaries ≈ ⌈m/n⌉·2 = 8; far below direct.
  EXPECT_LT(cost_b.rounds, cost_d.rounds / 2);
}

TEST(RouteBalanced, LenzenRegimeIsConstantRounds) {
  // Lenzen's regime: every node sends ≤ n and receives ≤ n messages.
  // Random balanced demand: each node sends exactly n messages to random
  // destinations. Rounds must be O(1)·(S/n + 1) — assert a fixed budget.
  for (NodeId n : {8u, 16u, 32u}) {
    auto demand = [](NodeId id, NodeId nn) {
      SplitMix64 rng(id * 7919 + 13);
      std::vector<RoutedMessage> out;
      for (NodeId i = 0; i < nn; ++i) {
        NodeId dst;
        do {
          dst = static_cast<NodeId>(rng.next_below(nn));
        } while (dst == id);
        out.push_back({dst, Word(1, 1)});
      }
      return out;
    };
    auto [got, cost] = run_router(n, balanced, demand);
    EXPECT_EQ(got, expected_delivery(n, demand));
    // Phase 1: ⌈n/n⌉·2 = 2 word-rounds; phase 2 load concentration on a
    // random pattern stays within a small constant factor.
    EXPECT_LE(cost.rounds, 24u) << "n=" << n;
  }
}

TEST(RouteBalanced, ReportsOriginalSources) {
  // Message payloads encode the source so we can cross-check attribution.
  const NodeId n = 8;
  auto demand = [](NodeId id, NodeId nn) {
    std::vector<RoutedMessage> out;
    out.push_back({static_cast<NodeId>((id + 1) % nn), Word(id, 3)});
    return out;
  };
  Graph g = gen::empty(n);
  Engine::run(g, [&](NodeCtx& ctx) {
    auto received = route_balanced(ctx, demand(ctx.id(), ctx.n()));
    ASSERT_EQ(received.size(), 1u);
    const NodeId expect_src = (ctx.id() + n - 1) % n;
    EXPECT_EQ(received[0].first, expect_src);
    EXPECT_EQ(received[0].second.value, expect_src);
    ctx.output(0);
  });
}

TEST(RouteDirect, PreservesPerSourceOrder) {
  const NodeId n = 4;
  Graph g = gen::empty(n);
  Engine::run(g, [&](NodeCtx& ctx) {
    std::vector<RoutedMessage> msgs;
    if (ctx.id() == 2) {
      for (std::uint64_t i = 0; i < 5; ++i)
        msgs.push_back({0, Word(i % 4, 2)});
    }
    auto received = route_direct(ctx, msgs);
    if (ctx.id() == 0) {
      ASSERT_EQ(received.size(), 5u);
      for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(received[i].second.value, i % 4);
    }
    ctx.output(0);
  });
}


TEST(RouteBalanced, PerNodeLoadsStayLinearInLenzenRegime) {
  // The quantitative content of the substitution (DESIGN.md §1): in the
  // ≤n-sent regime the relay keeps every node's total traffic O(n) words
  // (2 words per message and per relay hop), so the drain is O(1) rounds.
  const NodeId n = 32;
  auto demand = [](NodeId id, NodeId nn) {
    SplitMix64 rng(id * 31 + 5);
    std::vector<RoutedMessage> out;
    for (NodeId i = 0; i < nn; ++i) {
      NodeId dst;
      do {
        dst = static_cast<NodeId>(rng.next_below(nn));
      } while (dst == id);
      out.push_back({dst, Word(1, 1)});
    }
    return out;
  };
  auto res = Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
    auto got = route_balanced(ctx, demand(ctx.id(), ctx.n()));
    ctx.output(got.size());
  });
  // Each node sends n messages → 2n words in phase 1, relays ≈ n messages
  // → 2n words in phase 2: ≤ ~4n sent; receiving is symmetric plus
  // balls-in-bins slack.
  EXPECT_LE(res.cost.max_node_sent, 5u * n);
  EXPECT_LE(res.cost.max_node_received, 7u * n);
}

TEST(Engine, PerNodeLoadMetersExact) {
  // Node 0 sends 3 words to node 1 and 2 to node 2; meters must report
  // exactly max_sent = 5 (node 0) and max_received = 3 (node 1).
  auto res = Engine::run(gen::empty(4), [](NodeCtx& ctx) {
    WordQueues out(4);
    if (ctx.id() == 0) {
      for (int i = 0; i < 3; ++i) out[1].emplace_back(1, 1);
      for (int i = 0; i < 2; ++i) out[2].emplace_back(1, 1);
    }
    ctx.exchange(out);
    ctx.output(0);
  });
  EXPECT_EQ(res.cost.max_node_sent, 5u);
  EXPECT_EQ(res.cost.max_node_received, 3u);
}

}  // namespace
}  // namespace ccq
