// Tests for the §7 fine-grained framework: the problem registry, the
// exponent estimator, and the Figure 1 reduction DAG consistency.

#include <gtest/gtest.h>

#include <set>

#include "finegrained/registry.hpp"

namespace ccq {
namespace {

TEST(Registry, CoversTheFigureOneBoxes) {
  auto ps = figure1_problems();
  std::set<std::string> names;
  for (const auto& p : ps) names.insert(p.name);
  // Representative boxes from every region of Figure 1.
  for (const char* expect :
       {"BFS tree", "SSSP uw/ud", "APSP uw/ud", "Transitive closure",
        "Boolean MM", "(min,+) MM", "Semiring MM", "Ring MM",
        "Triangle/3-IS", "size 3 subgraph", "2-DS", "3-VC", "MaxIS",
        "MinVC", "3-COL"}) {
    EXPECT_TRUE(names.count(expect)) << expect;
  }
  EXPECT_GE(ps.size(), 15u);
}

TEST(Registry, GalacticEntriesHaveNoRunner) {
  auto ps = figure1_problems();
  EXPECT_FALSE(find_problem(ps, "Ring MM").run);
  EXPECT_FALSE(find_problem(ps, "APSP uw/d").run);
  EXPECT_NEAR(find_problem(ps, "Ring MM").analytic_upper, 1.0 - 2.0 / kOmega,
              1e-9);
}

TEST(Registry, MeasuredEntriesRun) {
  auto ps = figure1_problems();
  for (const char* name : {"BFS tree", "Triangle/3-IS", "3-VC", "2-DS"}) {
    const auto& p = find_problem(ps, name);
    ASSERT_TRUE(p.run) << name;
    auto cost = p.run(16, 7);
    EXPECT_GE(cost.rounds, 0u) << name;
  }
}

TEST(Registry, UnknownProblemThrows) {
  auto ps = figure1_problems();
  EXPECT_THROW(find_problem(ps, "no-such-problem"), ModelViolation);
}

TEST(Registry, EdgesReferenceRegisteredProblems) {
  auto ps = figure1_problems();
  std::set<std::string> names;
  for (const auto& p : ps) names.insert(p.name);
  for (const auto& e : figure1_edges()) {
    EXPECT_TRUE(names.count(e.to)) << e.to;
    EXPECT_TRUE(names.count(e.from)) << e.from;
    // analytic_only must be set whenever an endpoint has no runner.
    const bool has_runner = find_problem(ps, e.to).run != nullptr &&
                            find_problem(ps, e.from).run != nullptr;
    if (!has_runner) {
      EXPECT_TRUE(e.analytic_only) << e.to << "<-" << e.from;
    }
  }
}

TEST(Estimator, KvcExponentNearZero) {
  auto ps = figure1_problems();
  auto est = estimate_exponent(find_problem(ps, "3-VC"), {16, 32, 64});
  EXPECT_NEAR(est.fit.slope, 0.0, 0.2);
}

TEST(Estimator, MaxIsExponentNearOne) {
  auto ps = figure1_problems();
  auto est = estimate_exponent(find_problem(ps, "MaxIS"), {16, 32, 64});
  // One ⌈n/B⌉-bit broadcast: slope 1 minus a log-factor drag at small n.
  EXPECT_GT(est.fit.slope, 0.55);
  EXPECT_LT(est.fit.slope, 1.1);
}

TEST(Estimator, TriangleCheaperThanMaxIs) {
  auto ps = figure1_problems();
  auto tri = estimate_exponent(find_problem(ps, "Triangle/3-IS"),
                               {16, 32, 64});
  auto mis = estimate_exponent(find_problem(ps, "MaxIS"), {16, 32, 64});
  EXPECT_LT(tri.fit.slope, mis.fit.slope + 0.05);
}

TEST(Estimator, SeriesRecordedPerSize) {
  auto ps = figure1_problems();
  auto est = estimate_exponent(find_problem(ps, "BFS tree"), {16, 24, 32});
  ASSERT_EQ(est.ns.size(), 3u);
  ASSERT_EQ(est.rounds.size(), 3u);
  EXPECT_EQ(est.ns[1], 24.0);
}

TEST(EdgeChecker, DetectsViolations) {
  std::vector<Figure1Edge> edges = {{"A", "B", "test", false}};
  std::vector<ExponentEstimate> ests(2);
  ests[0].name = "A";
  ests[0].fit.slope = 0.9;
  ests[1].name = "B";
  ests[1].fit.slope = 0.2;
  auto violated = check_measured_edges(edges, ests, 0.1);
  ASSERT_EQ(violated.size(), 1u);  // δ(A) ≤ δ(B) badly violated
  EXPECT_EQ(violated[0].to, "A");
  // Generous tolerance silences it.
  EXPECT_TRUE(check_measured_edges(edges, ests, 1.0).empty());
  // Analytic edges are skipped.
  edges[0].analytic_only = true;
  EXPECT_TRUE(check_measured_edges(edges, ests, 0.1).empty());
}

TEST(EdgeChecker, MeasuredOrderingsHoldOnSmallSweep) {
  // End-to-end sanity at test scale: measure a subset of problems and
  // check the DAG edges among them (generous tolerance — small n).
  auto ps = figure1_problems();
  std::vector<ExponentEstimate> ests;
  for (const char* name :
       {"BFS tree", "SSSP uw/ud", "Triangle/3-IS", "size 3 subgraph",
        "MaxIS", "MinVC", "3-VC"}) {
    ests.push_back(estimate_exponent(find_problem(ps, name), {16, 32, 64}));
  }
  auto violated = check_measured_edges(figure1_edges(), ests, 0.35);
  for (const auto& e : violated) {
    ADD_FAILURE() << "violated: δ(" << e.to << ") ≤ δ(" << e.from << ")";
  }
}

}  // namespace
}  // namespace ccq
