// Tests for the constructive Theorem 2 instantiation and the §6.2
// alternation machinery (Theorem 7).

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "hierarchy/alternation.hpp"
#include "hierarchy/diagonal.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

// ---------- balanced private encoding ----------

TEST(BalancedPrefixes, EveryEdgeOwnedExactlyOnce) {
  Graph g = gen::gnp(6, 0.5, 3);
  // Reconstruct the graph from the owners' bits.
  auto prefixes = balanced_private_prefixes(g, 5);
  // Count bits owned per node under the assignment rule.
  std::vector<unsigned> owned(6, 0);
  Graph rebuilt = Graph::undirected(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      const NodeId owner = ((u + v) % 2 == 0) ? u : v;
      if (owned[owner] < 5 && prefixes[owner].get(owned[owner])) {
        rebuilt.add_edge(u, v);
      }
      ++owned[owner];
    }
  }
  // All nodes own ≤ 5 bits at n=6, so the reconstruction is complete.
  EXPECT_TRUE(rebuilt == g);
}

TEST(BalancedPrefixes, PaddedToRequestedLength) {
  Graph g = gen::path(4);
  auto prefixes = balanced_private_prefixes(g, 7);
  for (const auto& p : prefixes) EXPECT_EQ(p.size(), 7u);
}

// ---------- Theorem 2 at toy scale ----------

TEST(ToyDiagonalisation, ExistsAtZeroRoundBudget) {
  auto diag = ToyDiagonalisation::make(2, 1, 0);
  ASSERT_TRUE(diag.has_value());
  // The hard function is the lex-first non-constant: AND (see
  // protocol_test); the diagonal language on 2 nodes has 1 input bit
  // (the single potential edge), duplicated... — just check hardness.
  EXPECT_EQ(diag->hard_function().to_string(), "0001");
}

TEST(ToyDiagonalisation, NoneAtGenerousBudget) {
  // With t=1 every function is achievable — no diagonal language exists at
  // this scale (the asymptotic theorem needs t strictly below L/b-ish).
  EXPECT_FALSE(ToyDiagonalisation::make(2, 1, 1).has_value());
}

TEST(ToyDiagonalisation, CliqueAlgorithmDecidesTheLanguage) {
  auto diag = ToyDiagonalisation::make(2, 1, 0);
  ASSERT_TRUE(diag.has_value());
  // Both 2-node graphs: with and without the edge.
  for (bool edge : {false, true}) {
    Graph g = Graph::undirected(2);
    if (edge) g.add_edge(0, 1);
    auto run = diag->decide_clique(g);
    EXPECT_EQ(run.accepted(), diag->in_language(g)) << edge;
    EXPECT_TRUE(run.accepted() || run.rejected());
    // Upper bound side: ⌈L/B⌉ = 1 round of broadcast.
    EXPECT_EQ(run.cost.rounds, 1u);
  }
}

TEST(ToyDiagonalisation, HardFunctionTrulyUnachievable) {
  auto diag = ToyDiagonalisation::make(2, 1, 0);
  ASSERT_TRUE(diag.has_value());
  auto achievable = diag->space().achievable_functions();
  EXPECT_FALSE(achievable[index_from_table(diag->hard_function())]);
}

TEST(ToyDiagonalisation, LanguageSeparatesInputs) {
  // f = AND of the two nodes' bits; node 0 owns the single edge bit
  // (0+1 odd → owner is node 1, padded elsewhere)... regardless of the
  // ownership details the two instances must get different answers, since
  // the input codes differ and AND(0)=0 < AND(full)=… — check via codes.
  auto diag = ToyDiagonalisation::make(2, 1, 0);
  ASSERT_TRUE(diag.has_value());
  Graph no_edge = Graph::undirected(2);
  Graph with_edge = Graph::undirected(2);
  with_edge.add_edge(0, 1);
  EXPECT_NE(diag->input_code(no_edge), diag->input_code(with_edge));
}

TEST(ToyDiagonalisation, ThreeNodeInstance) {
  auto diag = ToyDiagonalisation::make(3, 1, 0);
  ASSERT_TRUE(diag.has_value());
  SplitMix64 rng(5);
  for (int t = 0; t < 8; ++t) {
    Graph g = gen::gnp(3, 0.5, rng.next());
    auto run = diag->decide_clique(g);
    EXPECT_EQ(run.accepted(), diag->in_language(g)) << t;
  }
}

// ---------- Σ_k / Π_k basics on a toy algorithm ----------

// A 1-labelling algorithm: "∃ a selected node that is isolated" (each node
// guesses 1 bit = "I am selected & isolated"), giving a Σ₁ language; its
// complement "∀..." shape gives the Π₁ dual.
KLabelAlgorithm isolated_selected() {
  KLabelAlgorithm a;
  a.name = "exists-isolated";
  a.k = 1;
  a.label_bits = [](NodeId) { return std::size_t{1}; };
  a.program = [](NodeCtx& ctx) {
    const bool claim = ctx.label(0).get(0);
    const bool valid = !claim || ctx.adj_row().popcount() == 0;
    const bool someone = ctx.any(claim && valid);
    // Reject invalid claims globally; accept iff a valid claim exists.
    const bool liar = ctx.any(claim && !valid);
    ctx.decide(someone && !liar);
  };
  return a;
}

TEST(Alternation, SigmaOneSemantics) {
  // Graph with an isolated node: accepted; without: rejected.
  Graph has_iso = Graph::undirected(3);
  has_iso.add_edge(0, 1);  // node 2 isolated
  EXPECT_TRUE(alternating_accepts(has_iso, isolated_selected(), true));
  Graph no_iso = gen::cycle(3);
  EXPECT_FALSE(alternating_accepts(no_iso, isolated_selected(), true));
}

TEST(Alternation, PiOneIsTheDual) {
  // Π₁ with the same algorithm: ∀z A(G,z)=1. The all-zero labelling makes
  // `someone` false, so Π₁ acceptance fails everywhere for this A.
  Graph has_iso = Graph::undirected(3);
  has_iso.add_edge(0, 1);
  EXPECT_FALSE(alternating_accepts(has_iso, isolated_selected(), false));
}

// ---------- Theorem 7 ----------

TEST(Sigma2Universal, HonestGuessAcceptedForAllProbes) {
  // G ∈ L with the honest z₁ ⇒ accepted for every universal z₂.
  auto algo = sigma2_universal("has-triangle", [](const Graph& g) {
    return oracle::k_clique(g, 3).has_value();
  });
  auto p = gen::planted_clique(4, 3, 0.2, 7);
  EXPECT_TRUE(
      accepts_for_all_suffix(p.graph, algo, sigma2_honest_guess(p.graph)));
}

TEST(Sigma2Universal, HonestGuessRejectedWhenNotInLanguage) {
  auto algo = sigma2_universal("has-triangle", [](const Graph& g) {
    return oracle::k_clique(g, 3).has_value();
  });
  Graph g = gen::path(4);  // triangle-free
  EXPECT_FALSE(accepts_for_all_suffix(g, algo, sigma2_honest_guess(g)));
}

TEST(Sigma2Universal, DishonestGuessCaughtByUniversalProbe) {
  // Some node guesses a different graph (one with a triangle); a universal
  // probe must expose the inconsistency, so ∀z₂-acceptance fails.
  auto algo = sigma2_universal("has-triangle", [](const Graph& g) {
    return oracle::k_clique(g, 3).has_value();
  });
  Graph g = gen::path(4);           // the real input: triangle-free
  Graph fake = gen::complete(4);    // the forged guess
  Labelling z1 = sigma2_honest_guess(g);
  z1[2] = sigma2_encode_guess(fake);
  EXPECT_FALSE(accepts_for_all_suffix(g, algo, z1));
}

TEST(Sigma2Universal, WorksForSeveralLanguages) {
  // Theorem 7 is universal: plug in arbitrary decidable languages.
  SplitMix64 rng(9);
  auto connected = sigma2_universal(
      "connected", [](const Graph& g) { return oracle::is_connected(g); });
  auto even_edges = sigma2_universal(
      "even-m", [](const Graph& g) { return g.m() % 2 == 0; });
  for (int t = 0; t < 4; ++t) {
    Graph g = gen::gnp(4, 0.4, rng.next());
    EXPECT_EQ(accepts_for_all_suffix(g, connected, sigma2_honest_guess(g)),
              oracle::is_connected(g))
        << t;
    EXPECT_EQ(accepts_for_all_suffix(g, even_edges, sigma2_honest_guess(g)),
              g.m() % 2 == 0)
        << t;
  }
}

TEST(Sigma2Universal, GuessLabelsExceedLogarithmicBudget) {
  // The Theorem 7 labels are Θ(n²) bits per node; the logarithmic
  // hierarchy allows O(n log n). Crossover: n(n-1)/2 > n·⌈log₂n⌉ for
  // n ≥ 8 — the quantitative reason Theorem 8 can still separate.
  for (NodeId n : {8u, 32u, 128u}) {
    const std::size_t guess_bits = static_cast<std::size_t>(n) * (n - 1) / 2;
    const std::size_t log_budget =
        static_cast<std::size_t>(n) * ceil_log2(n);
    EXPECT_GT(guess_bits, log_budget) << n;
  }
}

}  // namespace
}  // namespace ccq
