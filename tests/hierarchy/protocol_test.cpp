// Tests for the (n,b,L,t)-protocol space and the Lemma 1 counting layer.

#include "hierarchy/protocol.hpp"

#include <gtest/gtest.h>

#include "hierarchy/counting.hpp"
#include "util/math.hpp"

namespace ccq {
namespace {

// Canonical toy space: 2 nodes, 1-bit bandwidth, 1 private bit each.
ProtocolSpace canonical(unsigned t) { return ProtocolSpace(2, 1, 1, t); }

TEST(ProtocolSpace, GenomeBitsFormula) {
  // t=0: two output tables over 2^1 inputs = 4 bits.
  EXPECT_EQ(canonical(0).genome_bits(), 4u);
  // t=1: two 1-bit message tables over 2^1 = 4 bits, plus two output
  // tables over 2^{1+1} = 8 bits → 12.
  EXPECT_EQ(canonical(1).genome_bits(), 12u);
  // n=3, b=2, L=1, t=1: messages 3·2·2·2^1 = 24; outputs 3·2^{1+4} = 96.
  EXPECT_EQ(ProtocolSpace(3, 2, 1, 1).genome_bits(), 120u);
}

TEST(ProtocolSpace, GenomeCountWithinLemma1Bound) {
  for (unsigned t : {0u, 1u}) {
    auto s = canonical(t);
    const double lemma1 = lemma1_log2_protocols(2, 1, 1, t);
    EXPECT_LE(static_cast<double>(s.genome_bits()), lemma1) << t;
  }
  EXPECT_LE(static_cast<double>(ProtocolSpace(3, 2, 1, 1).genome_bits()),
            lemma1_log2_protocols(3, 2, 1, 1));
}

// Hand-build the XOR protocol in the canonical t=1 space: each node sends
// its input bit, outputs own ⊕ received.
BitVector xor_genome() {
  ProtocolSpace s = canonical(1);
  BitVector g(s.genome_bits());
  // Message tables (round 0): node v's table indexed by x_v ∈ {0,1};
  // identity: message = x_v. Layout: (r=0, v=0, k=0) at offset 0 (2 bits),
  // (r=0, v=1, k=0) at offset 2 (2 bits).
  g.set(1);  // node 0, x=1 → send 1
  g.set(3);  // node 1, x=1 → send 1
  // Output tables: 4 + v·4 + key, key = x | received<<1.
  for (unsigned v = 0; v < 2; ++v) {
    for (unsigned key = 0; key < 4; ++key) {
      const bool x = key & 1, m = key >> 1;
      if (x != m) g.set(4 + v * 4 + key);
    }
  }
  return g;
}

TEST(ProtocolSpace, EvaluateXorProtocol) {
  ProtocolSpace s = canonical(1);
  const BitVector g = xor_genome();
  for (std::uint64_t x = 0; x < 4; ++x) {
    const bool expect = ((x & 1) ^ ((x >> 1) & 1)) != 0;
    auto outs = s.evaluate(g, x);
    EXPECT_EQ(outs[0], expect) << x;
    EXPECT_EQ(outs[1], expect) << x;
  }
  auto table = s.computed_function(g);
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->to_string(), "0110");
}

TEST(ProtocolSpace, DisagreeingProtocolComputesNothing) {
  ProtocolSpace s = canonical(0);
  // Node 0 outputs 1 always; node 1 outputs 0 always.
  BitVector g(4);
  g.set(0);
  g.set(1);
  EXPECT_FALSE(s.computed_function(g).has_value());
}

TEST(ProtocolSpace, ZeroRoundsComputesOnlyConstants) {
  auto achievable = canonical(0).achievable_functions();
  std::size_t count = 0;
  for (bool a : achievable) count += a;
  EXPECT_EQ(count, 2u);  // the two constant functions
  EXPECT_TRUE(achievable[index_from_table(BitVector::from_string("0000"))]);
  EXPECT_TRUE(achievable[index_from_table(BitVector::from_string("1111"))]);
  EXPECT_FALSE(achievable[index_from_table(BitVector::from_string("0110"))]);
}

TEST(ProtocolSpace, OneRoundComputesEverythingAtL1) {
  // With b = L = 1 and full exchange, both nodes know the whole input.
  auto achievable = canonical(1).achievable_functions();
  for (bool a : achievable) EXPECT_TRUE(a);
}

TEST(ProtocolSpace, TimeHierarchyAtToyScale) {
  // Strict growth of the achievable set with the round budget — the toy
  // shape of CLIQUE(S) ⊊ CLIQUE(T).
  auto a0 = canonical(0).achievable_functions();
  auto a1 = canonical(1).achievable_functions();
  std::size_t c0 = 0, c1 = 0;
  for (std::size_t i = 0; i < a0.size(); ++i) {
    c0 += a0[i];
    c1 += a1[i];
    EXPECT_LE(a0[i], a1[i]) << "monotone in t at table " << i;
  }
  EXPECT_LT(c0, c1);
}

TEST(ProtocolSpace, FirstHardFunctionIsLexicographicallyMinimal) {
  // At t=0 the lex-first unachievable table is 0001 (AND) — everything
  // lex-smaller is constant-0 = achievable.
  auto hard = canonical(0).first_hard_function();
  ASSERT_TRUE(hard.has_value());
  EXPECT_EQ(hard->to_string(), "0001");
  // At t=1 everything is achievable: no hard function.
  EXPECT_FALSE(canonical(1).first_hard_function().has_value());
}

TEST(ProtocolSpace, LargerInputSpace) {
  // L=2, t=0: two nodes, 2 private bits each, no communication: again only
  // functions of the form g₀(x₀) ≡ g₁(x₁), i.e. constants.
  ProtocolSpace s(2, 1, 2, 0);
  auto achievable = s.achievable_functions();
  std::size_t count = 0;
  for (bool a : achievable) count += a;
  EXPECT_EQ(count, 2u);
}

TEST(TableIndexing, RoundTrip) {
  for (std::uint64_t j = 0; j < 16; ++j) {
    EXPECT_EQ(index_from_table(table_from_index(j, 4)), j);
  }
}

TEST(ProtocolSpace, GuardsAgainstExplosion) {
  EXPECT_THROW(ProtocolSpace(2, 8, 16, 3), ModelViolation);
  EXPECT_THROW(canonical(1).achievable_functions(4), ModelViolation);
}

// ---------- Lemma 1 counting ----------

TEST(Lemma1, Log2Formulas) {
  // 2bn·2^{L+bt(n-1)}: n=2,b=1,L=1,t=1 → 4·2² = 16.
  EXPECT_DOUBLE_EQ(lemma1_log2_protocols(2, 1, 1, 1), 16.0);
  EXPECT_DOUBLE_EQ(log2_functions(2, 1), 4.0);
}

TEST(Lemma1, ExactCountsMatchLog) {
  auto p = lemma1_protocols_exact(2, 1, 1, 1);
  EXPECT_EQ(p, BigUInt::pow2(16));
  EXPECT_EQ(functions_exact(2, 2), BigUInt::pow2(16));
  EXPECT_EQ(functions_exact(2, 1), BigUInt(16));
}

TEST(Lemma1, MostFunctionsHaveNoProtocolWhenTSmall) {
  // The paper's regime t < L/b - 1: protocols ≪ functions.
  // n=8, b=3, L=30, t=2: exponents 2·3·8·2^{30+42} vs 2^{240}.
  const double lp = lemma1_log2_protocols(8, 3, 30, 2);
  const double lf = log2_functions(8, 30);
  EXPECT_LT(lp, lf);
}

TEST(Thm2Rows, HardFunctionsExistAcrossTheRange) {
  for (std::uint64_t n : {16u, 64u, 256u}) {
    for (std::uint64_t T : {1u, 2u, 4u}) {
      auto row = thm2_row(n, T);
      EXPECT_TRUE(row.hard_function_exists) << n << "," << T;
      EXPECT_EQ(row.L, T * ceil_log2(n));
    }
  }
}

TEST(Thm2Rows, UpToTheoremRangeLimit) {
  // T(n) = n/(4 log n): the construction still leaves most functions
  // unprotocolled.
  const std::uint64_t n = 64;
  const std::uint64_t T = n / (4 * ceil_log2(n));  // = 2 at n = 64... keep >1
  auto row = thm2_row(n, std::max<std::uint64_t>(T, 2));
  EXPECT_TRUE(row.hard_function_exists);
}

TEST(Thm4Rows, ProofInequalityHolds) {
  for (std::uint64_t n : {64u, 256u, 1024u}) {
    auto row = thm4_row(n, 4);
    EXPECT_TRUE(row.inequality_holds) << n;
    EXPECT_TRUE(row.hard_function_exists) << n;
    EXPECT_EQ(row.M, n * 4 * ceil_log2(n) / 4);
  }
}

TEST(Thm8Rows, AllLevelsUpToTAreCovered) {
  const std::uint64_t n = 256, T = 4;
  for (std::uint64_t k = 1; k <= T; ++k) {
    auto row = thm8_row(n, T, k);
    EXPECT_TRUE(row.inequality_holds) << k;
    EXPECT_TRUE(row.hard_function_exists) << k;
  }
}

// ---------- quantified achievability (toy Theorems 4 & 8 shapes) ---------

TEST(NondetCounting, NondeterminismHelpsAtToyScale) {
  // Deterministic t=0 computes only constants; one ∃-quantified advice bit
  // per node strictly enlarges the class.
  auto det = ProtocolSpace(2, 1, 1, 0).achievable_functions();
  auto nondet = achievable_nondet_functions(2, 1, 1, 1, 0);
  std::size_t cd = 0, cn = 0;
  for (std::size_t i = 0; i < det.size(); ++i) {
    cd += det[i];
    cn += nondet[i];
    EXPECT_LE(det[i], nondet[i]) << i;  // CLIQUE ⊆ NCLIQUE pointwise
  }
  EXPECT_LT(cd, cn);
}

TEST(NondetCounting, NondetStillMissesFunctionsAtT0) {
  // Even with advice, zero communication cannot compute everything: since
  // the per-node guesses are independent, ∃z [g0(z0,x0) ∧ g1(z1,x1)]
  // factors into h0(x0) ∧ h1(x1) — "rectangle" functions only. XOR is not
  // a rectangle.
  auto nondet = achievable_nondet_functions(2, 1, 1, 1, 0);
  EXPECT_FALSE(nondet[index_from_table(BitVector::from_string("0110"))]);
  std::size_t count = 0;
  for (bool a : nondet) count += a;
  EXPECT_LT(count, nondet.size());
}

TEST(SigmaCounting, SecondLevelAtLeastFirst) {
  auto s1 = achievable_sigma_functions(2, 1, 1, 1, 0, 1);
  auto s2 = achievable_sigma_functions(2, 1, 1, 1, 0, 2);
  std::size_t c1 = 0, c2 = 0;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    c1 += s1[i];
    c2 += s2[i];
  }
  // Σ₂ is not smaller at toy scale (inclusion of counts; pointwise
  // inclusion does not hold in general because the leading quantifier
  // changes which advice is committed first).
  EXPECT_GE(c2, c1);
}


TEST(SigmaCounting, SigmaPiCoincideAtZeroRounds) {
  // With all-nodes-accept semantics and NO communication, both Σ₁ and Π₁
  // collapse to the same "rectangle" functions h₀(x₀)∧h₁(x₁): the per-node
  // quantifiers distribute either way. The naive bitmap duality
  // σ[f] == π[¬f] FAILS at exact t=0 (complementation needs a round to
  // aggregate the outputs) — the true §6.2 duality is constructive with
  // one extra round, tested below.
  auto sigma = achievable_sigma_functions(2, 1, 1, 1, 0, 1);
  auto pi = achievable_pi_functions(2, 1, 1, 1, 0, 1);
  ASSERT_EQ(sigma.size(), pi.size());
  for (std::size_t f = 0; f < sigma.size(); ++f) {
    EXPECT_EQ(sigma[f], pi[f]) << f;
  }
  // NAND = complement of AND is a non-rectangle: in neither class at t=0,
  // even though AND is in Σ₁ — the complement needs the extra round.
  EXPECT_TRUE(sigma[index_from_table(BitVector::from_string("0001"))]);
  EXPECT_FALSE(pi[index_from_table(BitVector::from_string("1110"))]);
}

TEST(SigmaCounting, ConstructiveComplementGivesPiDual) {
  // §6.2: L ∈ Σ_k ⇒ L̄ ∈ Π_k. Constructively: from any t=0 protocol P
  // build the t=1 protocol P′ that exchanges P's would-be outputs and
  // negates the conjunction; then accept(P′,(z,x)) = ¬accept(P,(z,x))
  // pointwise, so ∀z P′ accepts ⇔ ¬∃z P accepts.
  // Per-node protocol input: [z bit | x bit << 1] (advice low).
  ProtocolSpace space0(2, 1, 2, 0);   // outputs only: 2 tables × 4 = 8 bits
  ProtocolSpace space1(2, 1, 2, 1);   // messages 2×4=8 bits + outputs 2×8
  ASSERT_EQ(space0.genome_bits(), 8u);
  ASSERT_EQ(space1.genome_bits(), 24u);

  for (std::uint64_t code = 0; code < 256; ++code) {
    const BitVector p0 = space0.genome_from_code(code);
    // Build P′: message of node v = P's output bit on v's input; output of
    // v = ¬(own P output ∧ received P output).
    BitVector p1(24);
    for (unsigned v = 0; v < 2; ++v) {
      for (unsigned key = 0; key < 4; ++key) {
        const bool out0 = p0.get(v * 4 + key);
        if (out0) p1.set(v * 4 + key);  // message table at offset v·4
        for (unsigned recv = 0; recv < 2; ++recv) {
          const bool negated = !(out0 && recv);
          if (negated) p1.set(8 + v * 8 + (recv << 2 | key));
        }
      }
    }
    // Pointwise check over all 16 joint inputs (z,x packed as 4 bits).
    for (std::uint64_t in = 0; in < 16; ++in) {
      auto o0 = space0.evaluate(p0, in);
      auto o1 = space1.evaluate(p1, in);
      const bool accept0 = o0[0] && o0[1];
      const bool accept1 = o1[0] && o1[1];
      EXPECT_EQ(accept1, !accept0) << "code=" << code << " in=" << in;
    }
  }
}

}  // namespace
}  // namespace ccq
