// Tests for the §8 Monte Carlo → nondeterminism conversion.

#include "nondet/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

TEST(MonteCarlo, TrialIsOneSided) {
  // Soundness is unconditional: on a graph with no 3-path, no seed
  // accepts.
  auto mc = k_path_monte_carlo(3);
  Graph g = Graph::undirected(8);
  g.add_edge(0, 1);
  g.add_edge(2, 3);  // matching: max path length 2 nodes
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    EXPECT_FALSE(mc.trial(g, seed).accepted()) << seed;
  }
}

TEST(MonteCarlo, SomeSeedSucceedsOnYesInstances) {
  auto mc = k_path_monte_carlo(3);
  Graph g = gen::path(8);
  bool any = false;
  for (std::uint64_t seed = 0; seed < 40 && !any; ++seed) {
    any = mc.trial(g, seed).accepted();
  }
  EXPECT_TRUE(any);
}

TEST(MonteCarloVerifier, ProverFindsCertificates) {
  MonteCarloVerifier v(k_path_monte_carlo(3));
  auto planted = gen::planted_hamiltonian_path(10, 0.05, 3);
  auto z = v.prove(planted.graph);
  ASSERT_TRUE(z.has_value());
  EXPECT_TRUE(v.verify(planted.graph, *z).accepted());
}

TEST(MonteCarloVerifier, ProverRefusesNoInstances) {
  MonteCarloVerifier v(k_path_monte_carlo(4));
  EXPECT_FALSE(v.prove(gen::empty(8), 32).has_value());
}

TEST(MonteCarloVerifier, VerificationIsDeterministic) {
  MonteCarloVerifier v(k_path_monte_carlo(3));
  Graph g = gen::path(8);
  auto z = v.prove(g);
  ASSERT_TRUE(z.has_value());
  auto a = v.verify(g, *z);
  auto b = v.verify(g, *z);
  EXPECT_EQ(a.accepted(), b.accepted());
  EXPECT_EQ(a.cost.rounds, b.cost.rounds);
}

TEST(MonteCarloVerifier, WrongSeedRejected) {
  // A seed whose trial fails must not verify, even on a yes-instance.
  MonteCarloVerifier v(k_path_monte_carlo(3));
  Graph g = gen::path(8);
  std::uint64_t bad_seed = 0;
  bool found_bad = false;
  auto mc = k_path_monte_carlo(3);
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    if (!mc.trial(g, seed).accepted()) {
      bad_seed = seed;
      found_bad = true;
      break;
    }
  }
  if (found_bad) {
    EXPECT_FALSE(v.verify(g, v.certificate(8, bad_seed)).accepted());
  }
}

TEST(MonteCarloVerifier, DisagreeingSeedsRejected) {
  // Certificates are labellings: a prover handing different seeds to
  // different nodes is caught by the agreement round.
  MonteCarloVerifier v(k_path_monte_carlo(3));
  Graph g = gen::path(8);
  auto z = v.prove(g);
  ASSERT_TRUE(z.has_value());
  Labelling forged = *z;
  BitVector other;
  other.append_bits(0xbeef, 16);
  forged[5] = other;
  EXPECT_FALSE(v.verify(g, forged).accepted());
}

TEST(MonteCarloVerifier, CertificateSizeIsSeedBits) {
  MonteCarloVerifier v(k_path_monte_carlo(5));
  EXPECT_EQ(v.certificate_bits(), 16u);
  auto z = v.certificate(6, 1234);
  EXPECT_EQ(z.size(), 6u);
  EXPECT_EQ(z[0].read_bits(0, 16), 1234u);
}

TEST(MonteCarloVerifier, SuccessProbabilityRoughlyEMinusK) {
  // k! / k^k per trial; for k = 3 that is 6/27 ≈ 0.22 for a fixed 3-path.
  // Sample 200 seeds on a bare 3-path and check the empirical rate is in a
  // generous band (one-sided: every acceptance is genuine).
  auto mc = k_path_monte_carlo(3);
  Graph g = gen::path(3);
  int hits = 0;
  const int trials = 200;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    hits += mc.trial(g, seed).accepted();
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_GT(rate, 0.10);
  EXPECT_LT(rate, 0.40);
}

}  // namespace
}  // namespace ccq
