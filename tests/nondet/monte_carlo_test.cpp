// Tests for the §8 Monte Carlo → nondeterminism conversion.

#include "nondet/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

TEST(MonteCarlo, TrialIsOneSided) {
  // Soundness is unconditional: on a graph with no 3-path, no seed
  // accepts.
  auto mc = k_path_monte_carlo(3);
  Graph g = Graph::undirected(8);
  g.add_edge(0, 1);
  g.add_edge(2, 3);  // matching: max path length 2 nodes
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    EXPECT_FALSE(mc.run_trial(g, seed).accepted()) << seed;
  }
}

TEST(MonteCarlo, SomeSeedSucceedsOnYesInstances) {
  auto mc = k_path_monte_carlo(3);
  Graph g = gen::path(8);
  bool any = false;
  for (std::uint64_t seed = 0; seed < 40 && !any; ++seed) {
    any = mc.run_trial(g, seed).accepted();
  }
  EXPECT_TRUE(any);
}

TEST(MonteCarloVerifier, ProverFindsCertificates) {
  MonteCarloVerifier v(k_path_monte_carlo(3));
  auto planted = gen::planted_hamiltonian_path(10, 0.05, 3);
  auto z = v.prove(planted.graph);
  ASSERT_TRUE(z.has_value());
  EXPECT_TRUE(v.verify(planted.graph, *z).accepted());
}

TEST(MonteCarloVerifier, ProverRefusesNoInstances) {
  MonteCarloVerifier v(k_path_monte_carlo(4));
  EXPECT_FALSE(v.prove(gen::empty(8), 32).has_value());
}

TEST(MonteCarloVerifier, VerificationIsDeterministic) {
  MonteCarloVerifier v(k_path_monte_carlo(3));
  Graph g = gen::path(8);
  auto z = v.prove(g);
  ASSERT_TRUE(z.has_value());
  auto a = v.verify(g, *z);
  auto b = v.verify(g, *z);
  EXPECT_EQ(a.accepted(), b.accepted());
  EXPECT_EQ(a.cost.rounds, b.cost.rounds);
}

TEST(MonteCarloVerifier, WrongSeedRejected) {
  // A seed whose trial fails must not verify, even on a yes-instance.
  MonteCarloVerifier v(k_path_monte_carlo(3));
  Graph g = gen::path(8);
  std::uint64_t bad_seed = 0;
  bool found_bad = false;
  auto mc = k_path_monte_carlo(3);
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    if (!mc.run_trial(g, seed).accepted()) {
      bad_seed = seed;
      found_bad = true;
      break;
    }
  }
  if (found_bad) {
    EXPECT_FALSE(v.verify(g, v.certificate(8, bad_seed)).accepted());
  }
}

TEST(MonteCarloVerifier, DisagreeingSeedsRejected) {
  // Certificates are labellings: a prover handing different seeds to
  // different nodes is caught by the agreement round.
  MonteCarloVerifier v(k_path_monte_carlo(3));
  Graph g = gen::path(8);
  auto z = v.prove(g);
  ASSERT_TRUE(z.has_value());
  Labelling forged = *z;
  BitVector other;
  other.append_bits(0xbeef, 16);
  forged[5] = other;
  EXPECT_FALSE(v.verify(g, forged).accepted());
}

TEST(MonteCarloVerifier, CertificateSizeIsSeedBits) {
  MonteCarloVerifier v(k_path_monte_carlo(5));
  EXPECT_EQ(v.certificate_bits(), 16u);
  auto z = v.certificate(6, 1234);
  EXPECT_EQ(z.size(), 6u);
  EXPECT_EQ(z[0].read_bits(0, 16), 1234u);
}

TEST(MonteCarloVerifier, CertificateSizingAcrossOddSizes) {
  // The certificate is the shared seed: exactly seed_bits per node for
  // every n, including non-powers-of-two where ⌈log n⌉-derived widths
  // elsewhere in the stack change between neighbouring sizes. The sizing
  // must be n-independent and the seed must read back intact.
  MonteCarloVerifier v(k_path_monte_carlo(3));
  for (const NodeId n :
       {2u, 3u, 5u, 7u, 9u, 17u, 31u, 33u, 127u, 129u, 255u, 257u, 500u,
        512u}) {
    const std::uint64_t seed = 0x51ceull ^ n;
    auto z = v.certificate(n, seed);
    ASSERT_EQ(z.size(), n) << n;
    for (NodeId u = 0; u < n; ++u) {
      ASSERT_EQ(z[u].size(), 16u) << "n=" << n << " node=" << u;
      EXPECT_EQ(z[u].read_bits(0, 16), seed & 0xffffull) << n;
    }
  }
}

TEST(MonteCarloVerifier, WrongWidthCertificateThrows) {
  // A 15-bit label is malformed, not merely unconvincing: the verifier
  // must refuse to run rather than misparse the seed.
  MonteCarloVerifier v(k_path_monte_carlo(3));
  Graph g = gen::path(8);
  Labelling z = v.certificate(8, 7);
  BitVector narrow;
  narrow.append_bits(7, 15);
  z[2] = narrow;
  EXPECT_THROW(v.verify(g, z), ModelViolation);
}

TEST(MonteCarloVerifier, OddSizeEndToEnd) {
  // Full prove→verify round trip at an odd n (9): node_id_bits(9) = 4 while
  // node_id_bits(8) = 3, so this crosses the width boundary the power-of-two
  // sizes never see.
  MonteCarloVerifier v(k_path_monte_carlo(4));
  auto planted = gen::planted_hamiltonian_path(9, 0.05, 11);
  auto z = v.prove(planted.graph, 256);
  ASSERT_TRUE(z.has_value());
  EXPECT_TRUE(v.verify(planted.graph, *z).accepted());
}

TEST(MonteCarloVerifier, SuccessProbabilityRoughlyEMinusK) {
  // k! / k^k per trial; for k = 3 that is 6/27 ≈ 0.22 for a fixed 3-path.
  // Sample 200 seeds on a bare 3-path and check the empirical rate is in a
  // generous band (one-sided: every acceptance is genuine).
  auto mc = k_path_monte_carlo(3);
  Graph g = gen::path(3);
  int hits = 0;
  const int trials = 200;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    hits += mc.run_trial(g, seed).accepted();
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_GT(rate, 0.10);
  EXPECT_LT(rate, 0.40);
}

}  // namespace
}  // namespace ccq
