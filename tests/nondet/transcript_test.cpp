// Tests for Theorem 3 (NCLIQUE normal form) and Theorem 6 (edge labelling
// canonical family).

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "nondet/edge_labelling.hpp"
#include "nondet/transcript.hpp"
#include "nondet/verifiers.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

// ---------- TranscriptCodec ----------

TEST(TranscriptCodec, SizeIsOfTnLogN) {
  // node_bits = T·(n-1)·2·(1 + w + B) with B = ⌈log₂n⌉.
  TranscriptCodec c(16, 3);
  const std::size_t slot = 1 + 3 + 4;  // w = ⌈log₂(B+1)⌉ = 3 at B = 4
  EXPECT_EQ(c.node_bits(), 3u * 15 * 2 * slot);
}

TEST(TranscriptCodec, EncodeDecodeRoundTrip) {
  auto v = verifiers::hamiltonian_path();
  auto p = gen::planted_hamiltonian_path(6, 0.3, 5);
  auto z = v.prover(p.graph);
  ASSERT_TRUE(z.has_value());
  auto transcripts = record_transcripts(p.graph, v, *z);
  TranscriptCodec codec(6, v.rounds(6));
  for (NodeId u = 0; u < 6; ++u) {
    auto t = codec.decode(u, transcripts[u]);
    ASSERT_TRUE(t.has_value()) << u;
    // Every node sent its position to everyone in round 0.
    for (NodeId w = 0; w < 6; ++w) {
      if (w == u) continue;
      EXPECT_TRUE(t->sent[0][w].has_value());
      EXPECT_TRUE(t->received[0][w].has_value());
    }
  }
}

TEST(TranscriptCodec, MalformedBitsRejected) {
  TranscriptCodec codec(4, 1);
  BitVector junk(codec.node_bits(), true);  // all-ones: width too large
  EXPECT_FALSE(codec.decode(0, junk).has_value());
  BitVector short_bits(3);
  EXPECT_FALSE(codec.decode(0, short_bits).has_value());
}

TEST(TranscriptCodec, TranscriptsAreMutuallyConsistent) {
  auto v = verifiers::k_colouring(3);
  auto g = gen::gnp(7, 0.4, 9);
  auto z = v.prover(g);
  ASSERT_TRUE(z.has_value());
  auto transcripts = record_transcripts(g, v, *z);
  TranscriptCodec codec(7, 1);
  for (NodeId u = 0; u < 7; ++u) {
    auto tu = codec.decode(u, transcripts[u]);
    for (NodeId w = 0; w < 7; ++w) {
      if (w == u) continue;
      auto tw = codec.decode(w, transcripts[w]);
      EXPECT_EQ(tu->sent[0][w], tw->received[0][u]);
    }
  }
}

// ---------- Theorem 3: normal form ----------

class NormalFormSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(NormalFormSweep, PreservesTheLanguage) {
  const auto [seed, p] = GetParam();
  Graph g = gen::gnp(7, p, static_cast<std::uint64_t>(seed));
  auto a = verifiers::k_colouring(3);
  auto b = normal_form(a);
  const bool in_l = oracle::k_colouring(g, 3).has_value();
  // Completeness: B's prover (A's transcripts) is accepted iff G ∈ L.
  auto run = run_with_prover(g, b);
  EXPECT_EQ(run.has_value(), in_l);
  if (run) {
    EXPECT_TRUE(run->accepted());
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, NormalFormSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0.3, 0.5,
                                                              0.7)));

TEST(NormalForm, LabelSizeMatchesTheoremBound) {
  // O(T·n·log n): check the exact codec size formula and the Big-O shape.
  auto a = verifiers::connectivity();
  auto b = normal_form(a);
  for (NodeId n : {8u, 16u, 32u, 64u}) {
    const std::size_t bits = b.label_bits(n);
    const double bound =
        2.0 * a.rounds(n) * n * (2.0 * node_id_bits(n) + 2);
    EXPECT_LE(static_cast<double>(bits), bound) << n;
  }
}

TEST(NormalForm, RunsInSameRoundCount) {
  Graph g = gen::gnp(8, 0.5, 2);
  auto a = verifiers::k_clique(3);
  auto b = normal_form(a);
  EXPECT_EQ(b.rounds(8), a.rounds(8));
  if (auto run = run_with_prover(g, b)) {
    EXPECT_EQ(run->cost.rounds, a.rounds(8));
  }
}

TEST(NormalForm, TamperedReceivedPartRejected) {
  auto a = verifiers::k_colouring(3);
  auto b = normal_form(a);
  auto p = gen::planted_k_colourable(6, 3, 0.5, 3);
  auto z = a.prover(p.graph);
  ASSERT_TRUE(z.has_value());
  auto transcripts = record_transcripts(p.graph, a, *z);
  ASSERT_TRUE(run_verifier(p.graph, b, transcripts).accepted());
  // Flip one *value* bit inside node 2's received-part: replay mismatch.
  TranscriptCodec codec(6, 1);
  // Slot layout: per peer, sent slot then received slot. Peer 0 of node 2:
  // received slot starts after the sent slot.
  const std::size_t slot = codec.node_bits() / (5 * 2);
  const std::size_t value_bit_in_received = slot + 1 + 3;  // skip flag+width
  transcripts[2].set(value_bit_in_received,
                     !transcripts[2].get(value_bit_in_received));
  EXPECT_FALSE(run_verifier(p.graph, b, transcripts).accepted());
}

TEST(NormalForm, ForgedAcceptingTranscriptForNoInstanceRejected) {
  // C5 with k=2: transcripts from a 2-colouring of P5 (a different graph)
  // are internally consistent but must fail step 3 or the replay.
  Graph c5 = gen::cycle(5);
  Graph p5 = gen::path(5);
  auto a = verifiers::k_colouring(2);
  auto b = normal_form(a);
  auto zp = a.prover(p5);
  ASSERT_TRUE(zp.has_value());
  auto forged = record_transcripts(p5, a, *zp);
  EXPECT_FALSE(run_verifier(c5, b, forged).accepted());
}

TEST(NormalForm, WorksForMultiRoundVerifiers) {
  SplitMix64 rng(41);
  auto a = verifiers::connectivity();  // 2 rounds
  auto b = normal_form(a);
  for (int t = 0; t < 4; ++t) {
    Graph g = gen::gnp(6, 0.3 + 0.1 * t, rng.next());
    auto run = run_with_prover(g, b);
    EXPECT_EQ(run.has_value(), oracle::is_connected(g)) << t;
    if (run) {
      EXPECT_TRUE(run->accepted());
    }
  }
}

// ---------- Theorem 6: edge labelling ----------

// A hand-rolled edge labelling problem: label every clique edge 0/1 such
// that at each node the incident 1-labels point exactly to input-graph
// neighbours. Solvable always (copy the graph), so it tests the plumbing.
EdgeLabellingProblem copy_graph_problem() {
  EdgeLabellingProblem p;
  p.name = "copy-graph";
  p.label_bits = [](NodeId) { return 1u; };
  p.satisfied = [](NodeId n, NodeId u, const BitVector& row,
                   const std::vector<std::uint64_t>& incident) {
    for (NodeId w = 0; w < n; ++w) {
      if (w == u) continue;
      if ((incident[w] != 0) != row.get(w)) return false;
    }
    return true;
  };
  return p;
}

// 2-edge-colouring of the *input* edges such that no node has two incident
// input edges of the same colour — solvable iff max degree ≤ 2 and input
// components are paths/even cycles (proper edge colouring with 2 colours).
EdgeLabellingProblem two_edge_colouring_problem() {
  EdgeLabellingProblem p;
  p.name = "2-edge-colouring";
  p.label_bits = [](NodeId) { return 1u; };
  p.satisfied = [](NodeId n, NodeId u, const BitVector& row,
                   const std::vector<std::uint64_t>& incident) {
    int seen[2] = {0, 0};
    for (NodeId w = 0; w < n; ++w) {
      if (w == u || !row.get(w)) continue;
      ++seen[incident[w] & 1];
    }
    return seen[0] <= 1 && seen[1] <= 1;
  };
  return p;
}

TEST(EdgeLabelling, ExhaustiveSolverOnCopyGraph) {
  Graph g = gen::path(4);  // 6 clique edges, 1 bit each
  auto sol = solve_edge_labelling(g, copy_graph_problem(), 20);
  ASSERT_TRUE(sol.has_value());
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = u + 1; v < 4; ++v)
      EXPECT_EQ(sol->label(u, v) != 0, g.has_edge(u, v));
}

TEST(EdgeLabelling, TwoEdgeColouringFeasibility) {
  // P4 (max degree 2): solvable. Star K_{1,3} (degree 3): not solvable.
  EXPECT_TRUE(
      solve_edge_labelling(gen::path(4), two_edge_colouring_problem(), 20)
          .has_value());
  EXPECT_FALSE(
      solve_edge_labelling(gen::star(4), two_edge_colouring_problem(), 20)
          .has_value());
}

TEST(EdgeLabelling, VerifierDecidesSolvability) {
  // The NCLIQUE(1) wrapper accepts exactly the solvable instances.
  auto p = two_edge_colouring_problem();
  auto v = edge_labelling_verifier(p);
  auto yes = run_with_prover(gen::path(4), v);
  ASSERT_TRUE(yes.has_value());
  EXPECT_TRUE(yes->accepted());
  EXPECT_FALSE(run_with_prover(gen::star(4), v).has_value());
}

TEST(EdgeLabelling, VerifierRejectsInconsistentGuesses) {
  // Endpoints disagreeing on the shared edge label must be caught.
  Graph g = gen::path(3);
  auto p = copy_graph_problem();
  auto v = edge_labelling_verifier(p);
  Labelling z(3, BitVector(2));  // per node: labels for 2 incident edges
  // Node 0 claims ℓ(0,1) = 1, node 1 claims ℓ(0,1) = 0.
  z[0].set(0);
  EXPECT_FALSE(run_verifier(g, v, z).accepted());
}

TEST(EdgeLabelling, TranscriptProblemAcceptsHonestLabels) {
  // Theorem 6 forward direction: transcripts of an accepting run satisfy
  // the induced edge labelling problem.
  auto a = verifiers::k_colouring(3);
  auto p = edge_labelling_from_verifier(a);
  auto inst = gen::planted_k_colourable(6, 3, 0.5, 7);
  auto z = a.prover(inst.graph);
  ASSERT_TRUE(z.has_value());
  auto ell = edge_labels_from_run(inst.graph, a, *z);
  EXPECT_TRUE(edge_labelling_satisfied(inst.graph, p, ell));
}

TEST(EdgeLabelling, TranscriptProblemRejectsCorruptedLabels) {
  auto a = verifiers::k_colouring(3);
  auto p = edge_labelling_from_verifier(a);
  auto inst = gen::planted_k_colourable(6, 3, 0.5, 7);
  auto z = a.prover(inst.graph);
  ASSERT_TRUE(z.has_value());
  auto ell = edge_labels_from_run(inst.graph, a, *z);
  // Corrupt one edge label's value bits.
  ell.labels[0] ^= 0b10;
  EXPECT_FALSE(edge_labelling_satisfied(inst.graph, p, ell));
}

TEST(EdgeLabelling, TranscriptProblemUnsatisfiableOnNoInstance) {
  // For a no-instance, labels from a *different* graph's accepting run
  // cannot satisfy the constraints.
  Graph c5 = gen::cycle(5);
  Graph p5 = gen::path(5);
  auto a = verifiers::k_colouring(2);
  auto prob = edge_labelling_from_verifier(a);
  auto z = a.prover(p5);
  ASSERT_TRUE(z.has_value());
  auto forged = edge_labels_from_run(p5, a, *z);
  forged.n = 5;
  EXPECT_FALSE(edge_labelling_satisfied(c5, prob, forged));
}

TEST(EdgeLabelling, LabelBitsAreLogarithmic) {
  auto a = verifiers::k_clique(3);
  auto p = edge_labelling_from_verifier(a);
  for (NodeId n : {8u, 16u, 32u}) {
    // 2T slots of (1 + ⌈log₂(B+1)⌉ + B) bits: O(log n) per edge.
    EXPECT_LE(p.label_bits(n), 2 * (2 + node_id_bits(n) + 4) *
                                   a.rounds(n));
  }
}

}  // namespace
}  // namespace ccq
