// Tests for §5/§6.1: the nondeterministic clique model and the concrete
// NCLIQUE(1) verifiers — completeness (honest prover accepted), soundness
// (∃z agrees with the oracle via exhaustive search), and model properties
// (O(1) rounds, O(log n)-bit labels).

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "nondet/round_verifier.hpp"
#include "nondet/verifiers.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

// Completeness + soundness against an oracle over random graphs, using the
// honest prover (completeness) and prover refusal (oracle-exactness).
template <typename OracleFn>
void check_prover_matches_oracle(const RoundVerifier& v, OracleFn oracle_fn,
                                 NodeId n, double p_lo, double p_hi,
                                 int cases, std::uint64_t seed) {
  SplitMix64 rng(seed);
  for (int t = 0; t < cases; ++t) {
    const double p = p_lo + (p_hi - p_lo) * t / std::max(1, cases - 1);
    Graph g = gen::gnp(n, p, rng.next());
    const bool expect = oracle_fn(g);
    auto run = run_with_prover(g, v);
    EXPECT_EQ(run.has_value(), expect) << v.name << " t=" << t;
    if (run) {
      EXPECT_TRUE(run->accepted()) << v.name << " t=" << t;
    }
  }
}

TEST(KColouringVerifier, ProverMatchesOracle) {
  check_prover_matches_oracle(
      verifiers::k_colouring(3),
      [](const Graph& g) { return oracle::k_colouring(g, 3).has_value(); },
      10, 0.2, 0.7, 5, 1);
}

TEST(KColouringVerifier, RejectsWrongCertificates) {
  // An improper colouring must be rejected by some node.
  Graph g = gen::cycle(6);
  auto v = verifiers::k_colouring(2);
  Labelling bad = zero_labelling(g, v);  // everyone colour 0
  EXPECT_FALSE(run_verifier(g, v, bad).accepted());
}

TEST(KColouringVerifier, ExhaustiveAgreesWithOracle) {
  // C5 is not 2-colourable: no certificate works (soundness, ∀z).
  Graph c5 = gen::cycle(5);
  auto v = verifiers::k_colouring(2);
  EXPECT_FALSE(exhaustive_nondet_decide(c5, v).accepted);
  // P4 is 2-colourable: some certificate works.
  Graph p4 = gen::path(4);
  auto d = exhaustive_nondet_decide(p4, v);
  EXPECT_TRUE(d.accepted);
  EXPECT_TRUE(run_verifier(p4, v, d.witness).accepted());
}

TEST(KColouringVerifier, OutOfRangeColourRejected) {
  // k=3 needs 2 bits; the value 3 is expressible but not a legal colour.
  Graph g = gen::path(4);
  auto v = verifiers::k_colouring(3);
  Labelling z(4, BitVector(2));
  z[1].set(0);             // node 1: colour 1
  z[2].set(1);             // node 2: colour 2
  z[3].set(0);
  z[3].set(1);             // node 3: colour 3 ≥ k → reject
  EXPECT_FALSE(run_verifier(g, v, z).accepted());
}

TEST(HamPathVerifier, ProverMatchesOracle) {
  SplitMix64 rng(7);
  for (int t = 0; t < 5; ++t) {
    Graph g = gen::gnp(8, 0.25 + 0.1 * t, rng.next());
    const bool expect = oracle::hamiltonian_path(g).has_value();
    auto run = run_with_prover(g, verifiers::hamiltonian_path());
    EXPECT_EQ(run.has_value(), expect) << t;
    if (run) {
      EXPECT_TRUE(run->accepted());
    }
  }
}

TEST(HamPathVerifier, RejectsNonPermutationPositions) {
  Graph g = gen::complete(4);
  auto v = verifiers::hamiltonian_path();
  Labelling z(4, BitVector(2));  // everyone claims position 0
  EXPECT_FALSE(run_verifier(g, v, z).accepted());
}

TEST(HamPathVerifier, RejectsNonAdjacentConsecutive) {
  // Positions form a permutation but consecutive nodes miss an edge.
  Graph g = gen::path(4);  // 0-1-2-3
  auto v = verifiers::hamiltonian_path();
  // Claim order 0,2,1,3: consecutive (0,2) not adjacent.
  const unsigned idb = node_id_bits(4);
  std::vector<std::uint64_t> pos = {0, 2, 1, 3};
  Labelling z(4);
  for (NodeId u = 0; u < 4; ++u) {
    BitVector b;
    b.append_bits(pos[u], idb);
    z[u] = std::move(b);
  }
  EXPECT_FALSE(run_verifier(g, v, z).accepted());
}

TEST(HamPathVerifier, ExhaustiveOnTinyGraphs) {
  // Triangle has a Hamiltonian path; a star on 4 nodes does not.
  EXPECT_TRUE(
      exhaustive_nondet_decide(gen::cycle(3), verifiers::hamiltonian_path())
          .accepted);
  EXPECT_FALSE(
      exhaustive_nondet_decide(gen::star(4), verifiers::hamiltonian_path())
          .accepted);
}

TEST(KCliqueVerifier, ProverMatchesOracle) {
  check_prover_matches_oracle(
      verifiers::k_clique(3),
      [](const Graph& g) { return oracle::k_clique(g, 3).has_value(); }, 9,
      0.2, 0.6, 5, 11);
}

TEST(KCliqueVerifier, ExhaustiveAgreesWithOracle) {
  SplitMix64 rng(13);
  for (int t = 0; t < 4; ++t) {
    Graph g = gen::gnp(5, 0.5, rng.next());
    EXPECT_EQ(exhaustive_nondet_decide(g, verifiers::k_clique(3)).accepted,
              oracle::k_clique(g, 3).has_value())
        << t;
  }
}

TEST(KCliqueVerifier, WrongCardinalityRejected) {
  Graph g = gen::complete(5);
  auto v = verifiers::k_clique(3);
  Labelling z(5, BitVector(1));
  for (NodeId u = 0; u < 4; ++u) z[u].set(0);  // 4 members, not 3
  EXPECT_FALSE(run_verifier(g, v, z).accepted());
}

TEST(KIsVerifier, ProverMatchesOracle) {
  check_prover_matches_oracle(
      verifiers::k_independent_set(3),
      [](const Graph& g) {
        return oracle::independent_set(g, 3).has_value();
      },
      9, 0.3, 0.8, 5, 17);
}

TEST(KDsVerifier, ProverMatchesOracle) {
  check_prover_matches_oracle(
      verifiers::k_dominating_set(2),
      [](const Graph& g) { return oracle::dominating_set(g, 2).has_value(); },
      9, 0.15, 0.5, 5, 19);
}

TEST(KDsVerifier, NonDominatingRejected) {
  Graph g = gen::path(5);
  auto v = verifiers::k_dominating_set(2);
  Labelling z(5, BitVector(1));
  z[0].set(0);
  z[1].set(0);  // {0,1} leaves 3,4 undominated
  EXPECT_FALSE(run_verifier(g, v, z).accepted());
}

TEST(ConnectivityVerifier, ProverMatchesOracle) {
  SplitMix64 rng(23);
  for (int t = 0; t < 6; ++t) {
    Graph g = gen::gnp(10, 0.12 + 0.06 * t, rng.next());
    auto run = run_with_prover(g, verifiers::connectivity());
    EXPECT_EQ(run.has_value(), oracle::is_connected(g)) << t;
    if (run) {
      EXPECT_TRUE(run->accepted());
    }
  }
}

TEST(ConnectivityVerifier, ForgedDistancesRejectedOnDisconnected) {
  // Two components; exhaustively no certificate can prove connectivity.
  Graph g = Graph::undirected(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  auto v = verifiers::connectivity();
  EXPECT_FALSE(exhaustive_nondet_decide(g, v, 16).accepted);
}

// ---------- model properties ----------

TEST(Verifiers, ConstantRoundsAndLogLabels) {
  for (NodeId n : {8u, 16u, 32u}) {
    EXPECT_EQ(verifiers::k_colouring(3).rounds(n), 1u);
    EXPECT_EQ(verifiers::hamiltonian_path().rounds(n), 1u);
    EXPECT_EQ(verifiers::connectivity().rounds(n), 2u);
    // Labels are O(log n) bits.
    EXPECT_LE(verifiers::hamiltonian_path().label_bits(n),
              std::size_t{node_id_bits(n)});
    EXPECT_LE(verifiers::connectivity().label_bits(n),
              2 * std::size_t{node_id_bits(n)});
    EXPECT_EQ(verifiers::k_clique(4).label_bits(n), 1u);
  }
}

TEST(Verifiers, EngineAndCentralSimulationAgree) {
  SplitMix64 rng(31);
  auto v = verifiers::k_colouring(3);
  for (int t = 0; t < 5; ++t) {
    Graph g = gen::gnp(7, 0.4, rng.next());
    // Random (not necessarily valid) certificates.
    Labelling z(7);
    for (NodeId u = 0; u < 7; ++u) {
      BitVector b;
      b.append_bits(rng.next_below(4), 2);
      z[u] = std::move(b);
    }
    EXPECT_EQ(run_verifier(g, v, z).accepted(),
              simulate_verifier(g, v, z).accepted)
        << t;
  }
}

TEST(Verifiers, MeasuredRoundsMatchDeclared) {
  Graph g = gen::gnp(12, 0.5, 3);
  auto v = verifiers::k_colouring(4);
  auto z = v.prover(g);
  ASSERT_TRUE(z.has_value());
  auto run = run_verifier(g, v, *z);
  EXPECT_EQ(run.cost.rounds, v.rounds(12));
}

TEST(Verifiers, WrongLabelSizeRejected) {
  Graph g = gen::path(3);
  auto v = verifiers::k_colouring(2);
  Labelling z(3, BitVector(5));  // verifier wants 1 bit
  EXPECT_THROW(run_verifier(g, v, z), ModelViolation);
}

}  // namespace
}  // namespace ccq
