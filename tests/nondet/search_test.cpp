// Tests for §8's NCLIQUE(1)-labelling search problems — the paper's three
// named LCL-analogues: 2-colouring, sinkless orientation, maximal
// independent set.

#include "nondet/search.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

// ---------- 2-colouring ----------

TEST(TwoColouringSearch, SolvesBipartiteRejectsOdd) {
  auto p = two_colouring_search();
  auto even = solve_search_clique(gen::cycle(8), p);
  EXPECT_TRUE(even.solved);
  EXPECT_TRUE(check_labelling(gen::cycle(8), p, even.labels).accepted());
  EXPECT_FALSE(solve_search_clique(gen::cycle(7), p).solved);
}

TEST(TwoColouringSearch, RandomBipartiteInstances) {
  SplitMix64 rng(0x2c);
  for (int t = 0; t < 5; ++t) {
    auto inst = gen::planted_k_colourable(14, 2, 0.4, rng.next());
    auto p = two_colouring_search();
    auto r = solve_search_clique(inst.graph, p);
    ASSERT_TRUE(r.solved) << t;
    EXPECT_TRUE(check_labelling(inst.graph, p, r.labels).accepted()) << t;
  }
}

TEST(TwoColouringSearch, RelationRejectsBadLabelling) {
  auto p = two_colouring_search();
  Graph g = gen::path(4);
  Labelling all_zero(4, BitVector(1));  // everyone colour 0: edges clash
  EXPECT_FALSE(check_labelling(g, p, all_zero).accepted());
}

// ---------- maximal independent set ----------

TEST(MisSearch, SolvesEveryGraph) {
  SplitMix64 rng(0x315);
  auto p = mis_search();
  for (int t = 0; t < 6; ++t) {
    Graph g = gen::gnp(16, 0.1 + 0.12 * t, rng.next());
    auto r = solve_search_clique(g, p);
    ASSERT_TRUE(r.solved) << t;  // an MIS always exists
    EXPECT_TRUE(check_labelling(g, p, r.labels).accepted()) << t;
    // Cross-check semantics with the oracle predicates.
    std::vector<NodeId> set;
    for (NodeId v = 0; v < 16; ++v)
      if (r.labels[v].get(0)) set.push_back(v);
    EXPECT_TRUE(oracle::is_independent_set(g, set));
  }
}

TEST(MisSearch, RelationChecksBothSides) {
  auto p = mis_search();
  Graph g = gen::path(4);
  // Not independent: {0,1}.
  Labelling z1(4, BitVector(1));
  z1[0].set(0);
  z1[1].set(0);
  EXPECT_FALSE(check_labelling(g, p, z1).accepted());
  // Independent but not maximal: {} on a nonempty graph.
  Labelling z2(4, BitVector(1));
  EXPECT_FALSE(check_labelling(g, p, z2).accepted());
  // A genuine MIS: {0, 2}... path 0-1-2-3: {0,2} leaves 3 dominated? 3's
  // neighbour is 2 ∈ set → maximal ✓.
  Labelling z3(4, BitVector(1));
  z3[0].set(0);
  z3[2].set(0);
  EXPECT_TRUE(check_labelling(g, p, z3).accepted());
}

TEST(MisSearch, IsolatedNodesMustJoin) {
  auto p = mis_search();
  Graph g = Graph::undirected(3);
  g.add_edge(0, 1);
  // Node 2 isolated: out-of-set isolated node violates maximality.
  Labelling z(3, BitVector(1));
  z[0].set(0);
  EXPECT_FALSE(check_labelling(g, p, z).accepted());
  z[2].set(0);
  EXPECT_TRUE(check_labelling(g, p, z).accepted());
}

// ---------- sinkless orientation ----------

TEST(SinklessSearch, CycleSolvableTreeNot) {
  auto p = sinkless_orientation_search();
  EXPECT_TRUE(solve_search_clique(gen::cycle(6), p).solved);
  EXPECT_FALSE(solve_search_clique(gen::path(6), p).solved);
  EXPECT_FALSE(solve_search_clique(gen::star(5), p).solved);
}

TEST(SinklessSearch, SolutionVerifies) {
  SplitMix64 rng(0x510);
  auto p = sinkless_orientation_search();
  int solvable = 0;
  for (int t = 0; t < 8; ++t) {
    Graph g = gen::gnp(14, 0.15 + 0.05 * t, rng.next());
    auto r = solve_search_clique(g, p);
    // Solvable iff no component is a tree with ≥1 edge.
    bool expect = true;
    // (check via oracle: count per-component nodes/edges)
    std::vector<int> comp(14, -1);
    int nc = 0;
    for (NodeId s = 0; s < 14; ++s) {
      if (comp[s] != -1) continue;
      auto dist = oracle::sssp(g, s);
      for (NodeId v = 0; v < 14; ++v)
        if (dist[v] != oracle::kInfDist && comp[v] == -1) comp[v] = nc;
      ++nc;
    }
    std::vector<std::size_t> cn(nc, 0), cm(nc, 0);
    for (NodeId v = 0; v < 14; ++v) ++cn[comp[v]];
    for (const Edge& e : g.edges()) ++cm[comp[e.u]];
    for (int c = 0; c < nc; ++c)
      if (cm[c] >= 1 && cm[c] < cn[c]) expect = false;
    EXPECT_EQ(r.solved, expect) << t;
    if (r.solved) {
      EXPECT_TRUE(check_labelling(g, p, r.labels).accepted()) << t;
      ++solvable;
    }
  }
  EXPECT_GT(solvable, 0);  // the sweep must exercise the yes side
}

TEST(SinklessSearch, RelationRejectsSink) {
  auto p = sinkless_orientation_search();
  Graph g = gen::cycle(4);
  // Orient everything toward node 0: 0 has in-edges only... construct:
  // edges {0,1},{1,2},{2,3},{0,3}. Labels: bit u of node v for v<u edges.
  Labelling z(4, BitVector(4));
  // 1→2 (node1 bit2=1), 3→... make node 0 a sink: 1→0? bit owned by 0
  // (0<1): 0's bit1 = 0 means 1→... careful: bit=1 means lower→higher.
  // We want 1→0 and 3→0: 0's bit1 = 0 (higher→lower: 1→0) and 0's bit3 =
  // 0 (3→0). Keep others sinkless: 1→2: node1 bit2 = 1; 2→3: node2
  // bit3 = 1.
  z[1].set(2);
  z[2].set(3);
  auto run = check_labelling(g, p, z);
  EXPECT_FALSE(run.accepted());  // node 0 is a sink
}

TEST(SinklessSearch, RelationRejectsNonCanonicalBits) {
  auto p = sinkless_orientation_search();
  Graph g = gen::cycle(4);
  auto r = solve_search_clique(g, p);
  ASSERT_TRUE(r.solved);
  Labelling bad = r.labels;
  bad[0].set(2);  // {0,2} is not an edge of C4 (edges 01,12,23,30)
  EXPECT_FALSE(check_labelling(g, p, bad).accepted());
}

TEST(SinklessSearch, MixedComponents) {
  // A cycle component plus isolated vertices: solvable (isolated exempt).
  Graph g = Graph::undirected(7);
  for (NodeId v = 0; v < 4; ++v) g.add_edge(v, (v + 1) % 4);
  auto p = sinkless_orientation_search();
  auto r = solve_search_clique(g, p);
  EXPECT_TRUE(r.solved);
  EXPECT_TRUE(check_labelling(g, p, r.labels).accepted());
  // Add a pendant tree edge to the cycle: still solvable (component has a
  // cycle; the pendant points inward).
  g.add_edge(0, 5);
  auto r2 = solve_search_clique(g, p);
  EXPECT_TRUE(r2.solved);
  EXPECT_TRUE(check_labelling(g, p, r2.labels).accepted());
}

// ---------- generic properties ----------

TEST(SearchProblems, VerificationIsConstantRound) {
  Graph g = gen::cycle(12);
  for (auto p : {two_colouring_search(), mis_search(),
                 sinkless_orientation_search()}) {
    auto r = solve_search_clique(g, p);
    if (!r.solved) continue;
    auto check = check_labelling(g, p, r.labels);
    EXPECT_TRUE(check.accepted()) << p.name;
    EXPECT_LE(check.cost.rounds, 2u) << p.name;  // O(1), concretely ≤ 2
  }
}

TEST(SearchProblems, CliqueSolverCostIsLearnTheGraph) {
  Graph g = gen::cycle(32);
  auto r = solve_search_clique(g, mis_search());
  EXPECT_EQ(r.cost.rounds, ceil_div(32, node_id_bits(32)));
}

}  // namespace
}  // namespace ccq
