// Chaos plane + soundness campaign suite (clique/chaos.hpp,
// nondet/soundness.hpp).
//
// Pins the contracts the chaos header promises:
//   * fault semantics — flip toggles exactly one bit, drop zeroes the value
//     but keeps the width, duplicate appends a copy, byzantine rewrites via
//     the adversary callback clamped to the original width, and words a
//     node queues to itself are never touched;
//   * determinism — the ledger and the run outputs are a pure function of
//     (plan seed, collective, src, dst), identical across both message
//     planes × both backends × worker counts;
//   * lifecycle — p = 0 plans are exact no-ops, the acquire is released on
//     every exit path (config and global attach), the ledger cap converts
//     records to overflow without losing counts, and chaos composes with
//     the round trace;
// and runs the soundness campaign itself in miniature: every case accepts
// all clean certificates and rejects all single-bit-corrupted ones, with a
// named regression for the connectivity root-parent escape the campaign
// found.

#include "clique/chaos.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "clique/engine.hpp"
#include "clique/trace.hpp"
#include "graph/generators.hpp"
#include "nondet/soundness.hpp"
#include "nondet/verifiers.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ccq {
namespace {

struct ChaosSetup {
  MessagePlaneKind plane;
  ExecutionBackend backend;
  std::size_t workers;
  const char* name;
};

const ChaosSetup kSetups[] = {
    {MessagePlaneKind::kLegacy, ExecutionBackend::kThreadPerNode, 0,
     "legacy/thread-per-node"},
    {MessagePlaneKind::kLegacy, ExecutionBackend::kPooled, 2,
     "legacy/pooled-2"},
    {MessagePlaneKind::kFlat, ExecutionBackend::kThreadPerNode, 0,
     "flat/thread-per-node"},
    {MessagePlaneKind::kFlat, ExecutionBackend::kPooled, 2, "flat/pooled-2"},
    {MessagePlaneKind::kFlat, ExecutionBackend::kPooled, 0, "flat/pooled-hw"},
};

Engine::Config config_for(const ChaosSetup& s, ChaosPlan* plan) {
  Engine::Config cfg;
  cfg.plane = s.plane;
  cfg.backend = s.backend;
  cfg.workers = s.workers;
  cfg.chaos = plan;
  return cfg;
}

// Each node sends its id (full B bits) to every other node and outputs the
// sum of received values — a digest that notices any value corruption.
void all_to_all_sum(NodeCtx& ctx) {
  std::vector<std::pair<NodeId, Word>> sends;
  for (NodeId u = 0; u < ctx.n(); ++u) {
    if (u != ctx.id()) {
      sends.emplace_back(u, Word(ctx.id(), ctx.bandwidth()));
    }
  }
  auto got = ctx.round(sends);
  std::uint64_t sum = 0;
  for (NodeId u = 0; u < ctx.n(); ++u) {
    if (got[u].has_value()) sum += got[u]->value + 1;
  }
  ctx.output(sum);
}

TEST(ChaosFaults, FlipTogglesExactlyOneBit) {
  ChaosPlan::Config cfg;
  cfg.seed = 7;
  cfg.p_flip = 1.0;
  ChaosPlan plan(cfg);
  const Graph g = gen::empty(8);
  Engine::Config ecfg;
  ecfg.chaos = &plan;
  Engine::run(g, all_to_all_sum, ecfg);
  ASSERT_GT(plan.fault_count(FaultKind::kFlip), 0u);
  EXPECT_EQ(plan.fault_count(FaultKind::kFlip), plan.total_faults());
  // 8 nodes, 7 peers each, every cross word flipped exactly once.
  EXPECT_EQ(plan.total_faults(), 8u * 7u);
  for (const FaultEvent& e : plan.ledger()) {
    EXPECT_EQ(e.kind, FaultKind::kFlip);
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.bit, e.before.bits);
    EXPECT_EQ(e.after.bits, e.before.bits);
    EXPECT_EQ(e.after.value,
              e.before.value ^ (std::uint64_t{1} << e.bit));
  }
}

TEST(ChaosFaults, DropZeroesValueButKeepsWidth) {
  ChaosPlan::Config cfg;
  cfg.seed = 8;
  cfg.p_drop = 1.0;
  ChaosPlan plan(cfg);
  const Graph g = gen::empty(6);
  Engine::Config ecfg;
  ecfg.chaos = &plan;
  auto r = Engine::run(
      g,
      [](NodeCtx& ctx) {
        std::vector<std::pair<NodeId, Word>> sends;
        for (NodeId u = 0; u < ctx.n(); ++u) {
          if (u != ctx.id()) {
            sends.emplace_back(u, Word(ctx.id() + 1, ctx.bandwidth()));
          }
        }
        auto got = ctx.round(sends);
        bool all_zero_full_width = true;
        for (NodeId u = 0; u < ctx.n(); ++u) {
          if (u == ctx.id()) continue;
          all_zero_full_width = all_zero_full_width &&
                                got[u].has_value() && got[u]->value == 0 &&
                                got[u]->bits == ctx.bandwidth();
        }
        ctx.decide(all_zero_full_width);
      },
      ecfg);
  EXPECT_TRUE(r.accepted());
  EXPECT_EQ(plan.fault_count(FaultKind::kDrop), 6u * 5u);
  for (const FaultEvent& e : plan.ledger()) {
    EXPECT_EQ(e.after.value, 0u);
    EXPECT_EQ(e.after.bits, e.before.bits);
  }
}

TEST(ChaosFaults, DuplicateAppendsSecondCopyOnExchange) {
  ChaosPlan::Config cfg;
  cfg.seed = 9;
  cfg.p_dup = 1.0;
  ChaosPlan plan(cfg);
  const Graph g = gen::empty(5);
  Engine::Config ecfg;
  ecfg.chaos = &plan;
  auto r = Engine::run(
      g,
      [](NodeCtx& ctx) {
        // One word per peer through the queue-shaped exchange (which
        // tolerates any queue length, unlike round()).
        WordQueues out(ctx.n());
        for (NodeId u = 0; u < ctx.n(); ++u) {
          if (u != ctx.id()) {
            out[u].push_back(Word(ctx.id() + 1, ctx.bandwidth()));
          }
        }
        auto in = ctx.exchange(out);
        bool ok = true;
        for (NodeId u = 0; u < ctx.n(); ++u) {
          if (u == ctx.id()) continue;
          // Every cross word duplicated: two identical copies arrive.
          ok = ok && in[u].size() == 2 && in[u][0] == in[u][1] &&
               in[u][0].value == u + 1;
        }
        ctx.decide(ok);
      },
      ecfg);
  EXPECT_TRUE(r.accepted());
  EXPECT_EQ(plan.fault_count(FaultKind::kDuplicate), 5u * 4u);
}

TEST(ChaosFaults, ByzantineAdversaryRewritesClampedToWidth) {
  ChaosPlan::Config cfg;
  cfg.seed = 10;
  cfg.byzantine = {2};
  cfg.adversary = [](const AdversaryView& view) {
    EXPECT_EQ(view.src, 2u);
    // Deliberately over-wide: the plane must clamp to the declared width.
    return ~std::uint64_t{0};
  };
  ChaosPlan plan(cfg);
  const Graph g = gen::empty(6);
  Engine::Config ecfg;
  ecfg.chaos = &plan;
  auto r = Engine::run(
      g,
      [](NodeCtx& ctx) {
        std::vector<std::pair<NodeId, Word>> sends;
        for (NodeId u = 0; u < ctx.n(); ++u) {
          if (u != ctx.id()) sends.emplace_back(u, Word(0, ctx.bandwidth()));
        }
        auto got = ctx.round(sends);
        bool ok = true;
        for (NodeId u = 0; u < ctx.n(); ++u) {
          if (u == ctx.id()) continue;
          const std::uint64_t want =
              u == 2 ? (std::uint64_t{1} << ctx.bandwidth()) - 1 : 0;
          ok = ok && got[u].has_value() && got[u]->value == want &&
               got[u]->bits == ctx.bandwidth();
        }
        ctx.decide(ok);
      },
      ecfg);
  EXPECT_TRUE(r.accepted());
  // Node 2 rewrites all 5 outgoing words; nobody else is touched.
  EXPECT_EQ(plan.fault_count(FaultKind::kByzantine), 5u);
  for (const FaultEvent& e : plan.ledger()) EXPECT_EQ(e.src, 2u);
}

TEST(ChaosFaults, SelfQueueIsNeverFaulted) {
  ChaosPlan::Config cfg;
  cfg.seed = 11;
  cfg.p_flip = 1.0;
  cfg.byzantine = {0, 1, 2, 3};
  ChaosPlan plan(cfg);
  const Graph g = gen::empty(4);
  Engine::Config ecfg;
  ecfg.chaos = &plan;
  auto r = Engine::run(
      g,
      [](NodeCtx& ctx) {
        WordQueues out(ctx.n());
        out[ctx.id()].push_back(Word(ctx.id(), ctx.bandwidth()));
        auto in = ctx.exchange(out);
        ctx.decide(in[ctx.id()].size() == 1 &&
                   in[ctx.id()][0].value == ctx.id());
      },
      ecfg);
  EXPECT_TRUE(r.accepted());
  EXPECT_EQ(plan.total_faults(), 0u);
}

TEST(ChaosDeterminism, LedgerAndOutputsIdenticalAcrossSubstrates) {
  const Graph g = gen::gnp(12, 0.5, 42);
  std::vector<FaultEvent> ref_ledger;
  std::vector<std::uint64_t> ref_outputs;
  for (const ChaosSetup& s : kSetups) {
    ChaosPlan::Config cfg;
    cfg.seed = 1234;
    cfg.p_flip = 0.3;
    cfg.p_drop = 0.1;
    cfg.p_dup = 0.1;
    cfg.byzantine = {3};
    ChaosPlan plan(cfg);
    auto r = Engine::run(g, all_to_all_sum, config_for(s, &plan));
    ASSERT_GT(plan.total_faults(), 0u) << s.name;
    if (ref_ledger.empty()) {
      ref_ledger = plan.ledger();
      ref_outputs = r.outputs;
      continue;
    }
    EXPECT_EQ(plan.ledger(), ref_ledger) << s.name;
    EXPECT_EQ(r.outputs, ref_outputs) << s.name;
  }
}

TEST(ChaosDeterminism, ZeroProbabilityPlanIsAnExactNoop) {
  const Graph g = gen::gnp(10, 0.4, 7);
  const auto clean = Engine::run(g, all_to_all_sum, Engine::Config{});
  ChaosPlan plan;  // all probabilities zero, no byzantine nodes
  Engine::Config cfg;
  cfg.chaos = &plan;
  const auto chaotic = Engine::run(g, all_to_all_sum, cfg);
  EXPECT_EQ(chaotic.outputs, clean.outputs);
  EXPECT_EQ(chaotic.cost.rounds, clean.cost.rounds);
  EXPECT_EQ(plan.total_faults(), 0u);
  EXPECT_TRUE(plan.ledger().empty());
}

TEST(ChaosLifecycle, GlobalPlanAttachesAndReleases) {
  ChaosPlan::Config cfg;
  cfg.seed = 3;
  cfg.p_flip = 1.0;
  ChaosPlan plan(cfg);
  chaos::set_global(&plan);
  const Graph g = gen::empty(4);
  Engine::run(g, all_to_all_sum, Engine::Config{});
  chaos::set_global(nullptr);
  EXPECT_GT(plan.total_faults(), 0u);
  // Released on exit: a fresh acquire must succeed.
  EXPECT_TRUE(plan.try_acquire());
  plan.release();
}

TEST(ChaosLifecycle, BusyPlanRunsFaultFree) {
  ChaosPlan::Config cfg;
  cfg.p_flip = 1.0;
  ChaosPlan plan(cfg);
  ASSERT_TRUE(plan.try_acquire());  // simulate another run holding it
  const Graph g = gen::empty(4);
  Engine::Config ecfg;
  ecfg.chaos = &plan;
  const auto r = Engine::run(g, all_to_all_sum, ecfg);
  plan.release();
  EXPECT_EQ(plan.total_faults(), 0u);
  const auto clean = Engine::run(g, all_to_all_sum, Engine::Config{});
  EXPECT_EQ(r.outputs, clean.outputs);
}

TEST(ChaosLifecycle, LedgerCapConvertsRecordsToOverflow) {
  ChaosPlan::Config cfg;
  cfg.seed = 5;
  cfg.p_flip = 1.0;
  cfg.max_ledger = 4;
  ChaosPlan plan(cfg);
  const Graph g = gen::empty(8);
  Engine::Config ecfg;
  ecfg.chaos = &plan;
  Engine::run(g, all_to_all_sum, ecfg);
  EXPECT_EQ(plan.ledger().size(), 4u);
  EXPECT_EQ(plan.total_faults(), 8u * 7u);
  EXPECT_EQ(plan.ledger_overflow(), 8u * 7u - 4u);
  plan.clear();
  EXPECT_TRUE(plan.ledger().empty());
  EXPECT_EQ(plan.total_faults(), 0u);
  EXPECT_EQ(plan.ledger_overflow(), 0u);
}

TEST(ChaosLifecycle, ComposesWithRoundTrace) {
  ChaosPlan::Config cfg;
  cfg.seed = 6;
  cfg.p_flip = 1.0;
  ChaosPlan plan(cfg);
  RoundTrace trace;
  const Graph g = gen::empty(6);
  Engine::Config ecfg;
  ecfg.chaos = &plan;
  ecfg.trace = &trace;
  Engine::run(g, all_to_all_sum, ecfg);
  EXPECT_GT(plan.total_faults(), 0u);
  EXPECT_FALSE(trace.records().empty());
  EXPECT_TRUE(plan.try_acquire());
  plan.release();
}

// --- the campaign itself ------------------------------------------------

TEST(SoundnessCampaign, CleanAcceptsAndCorruptRejectsEveryCase) {
  // 12 trials cover all four plane × backend combinations three times;
  // the bench sweeps the statistically meaningful byzantine rates.
  for (const auto& c : soundness::cases()) {
    const auto r = soundness::run_case(c, 16, 12);
    EXPECT_EQ(r.clean_accepts, r.trials) << c.name;
    EXPECT_EQ(r.corrupt_rejects, r.trials) << c.name;
  }
}

TEST(SoundnessCampaign, ReportAggregatesAndFloors) {
  soundness::Report r;
  r.trials = 10;
  r.clean_accepts = 10;
  r.corrupt_rejects = 10;
  r.byz_rejects = 7;
  r.byz_floor = 0.6;
  EXPECT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.byz_rate(), 0.7);
  r.byz_floor = 0.8;
  EXPECT_FALSE(r.byz_ok());
  r.byz_floor = 0.6;
  r.corrupt_rejects = 9;
  EXPECT_FALSE(r.ok());
}

// Regression for the soundness escape the campaign flushed out: the
// connectivity verifier never validated the root's parent field, so a
// corrupted certificate differing from an accepted one only in those bits
// sailed through. The fix pins the canonical self-parent encoding.
TEST(SoundnessRegression, ConnectivityRootParentFlipRejected) {
  const Graph g = gen::path(8);  // a tree; node 0 is the BFS root
  const RoundVerifier v = verifiers::connectivity();
  auto z = v.prover(g);
  ASSERT_TRUE(z.has_value());
  ASSERT_TRUE(run_verifier(g, v, *z).accepted());
  const unsigned idb = node_id_bits(g.n());
  for (unsigned bit = 0; bit < idb; ++bit) {
    Labelling bad = *z;
    bad[0].set(idb + bit, !bad[0].get(idb + bit));  // root's parent field
    EXPECT_FALSE(run_verifier(g, v, bad).accepted())
        << "root parent bit " << bit << " escaped";
  }
}

// The k-colouring campaign escape was an instance-rigidity bug, not a
// verifier bug: with an EMPTY colour class, flipping a node into it is a
// genuinely proper recolouring and MUST be accepted. Pin that the verifier
// keeps the correct behaviour (∃z semantics, not certificate pinning).
TEST(SoundnessRegression, ColouringFlipIntoEmptyClassIsProperlyAccepted) {
  const unsigned k = 4;
  // Complete 3-partite on classes {0,1}, {2,3}, {4,5}: colour 3 is unused.
  const NodeId n = 6;
  std::vector<std::uint64_t> colour = {0, 0, 1, 1, 2, 2};
  Graph g = Graph::undirected(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId w = u + 1; w < n; ++w) {
      if (colour[u] != colour[w]) g.add_edge(u, w);
    }
  }
  const RoundVerifier v = verifiers::k_colouring(k);
  Labelling z(n);
  for (NodeId u = 0; u < n; ++u) {
    BitVector b;
    b.append_bits(colour[u], 2);
    z[u] = std::move(b);
  }
  ASSERT_TRUE(run_verifier(g, v, z).accepted());
  // Flip node 5 from colour 2 to the empty colour 3 (bit 0): proper.
  Labelling moved = z;
  moved[5].set(0, true);
  EXPECT_TRUE(run_verifier(g, v, moved).accepted());
  // Flip node 5 from colour 2 to inhabited colour 0 (bit 1): conflict.
  Labelling clash = z;
  clash[5].set(1, false);
  EXPECT_FALSE(run_verifier(g, v, clash).accepted());
}

}  // namespace
}  // namespace ccq
