#include "graphalg/apsp.hpp"

#include "algebra/approx_minplus.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "graphalg/sssp.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

void expect_apsp_match(NodeId n, const std::vector<std::uint64_t>& got,
                       const std::vector<std::uint64_t>& want) {
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = 0; v < n; ++v) {
      const auto g = got[static_cast<std::size_t>(u) * n + v];
      const auto w = want[static_cast<std::size_t>(u) * n + v];
      if (w == oracle::kInfDist) {
        EXPECT_GE(g, kUnreachable) << u << "->" << v;
      } else {
        EXPECT_EQ(g, w) << u << "->" << v;
      }
    }
}

class ApspBothAlgos : public ::testing::TestWithParam<MmAlgo> {};

INSTANTIATE_TEST_SUITE_P(Algos, ApspBothAlgos,
                         ::testing::Values(MmAlgo::kNaiveBroadcast,
                                           MmAlgo::k3dPartition),
                         [](const auto& info) {
                           return info.param == MmAlgo::kNaiveBroadcast
                                      ? "naive"
                                      : "partition3d";
                         });

TEST_P(ApspBothAlgos, UnweightedRandom) {
  Graph g = gen::gnp(14, 0.25, 11);
  auto r = apsp_clique(g, GetParam());
  expect_apsp_match(14, r.dist, oracle::apsp(g));
}

TEST_P(ApspBothAlgos, WeightedRandom) {
  Graph g = gen::gnp_weighted(12, 0.3, 15, 13);
  auto r = apsp_clique(g, GetParam());
  expect_apsp_match(12, r.dist, oracle::apsp(g));
}

TEST_P(ApspBothAlgos, DirectedWeighted) {
  SplitMix64 rng(17);
  Graph g = Graph::directed(10);
  for (NodeId u = 0; u < 10; ++u)
    for (NodeId v = 0; v < 10; ++v)
      if (u != v && rng.next_bool(0.25))
        g.add_edge(u, v, 1 + static_cast<std::uint32_t>(rng.next_below(9)));
  auto r = apsp_clique(g, GetParam());
  expect_apsp_match(10, r.dist, oracle::apsp(g));
}

TEST_P(ApspBothAlgos, DisconnectedComponents) {
  Graph g = Graph::undirected(8);
  g.add_edge(0, 1);
  g.add_edge(2, 3, 5);
  auto r = apsp_clique(g, GetParam());
  expect_apsp_match(8, r.dist, oracle::apsp(g));
}

TEST_P(ApspBothAlgos, PathGraphExactDistances) {
  Graph g = gen::path(9);
  auto r = apsp_clique(g, GetParam());
  for (NodeId u = 0; u < 9; ++u)
    for (NodeId v = 0; v < 9; ++v)
      EXPECT_EQ(r.dist[u * 9 + v], static_cast<std::uint64_t>(
                                       u > v ? u - v : v - u));
}

class ClosureBothAlgos : public ::testing::TestWithParam<MmAlgo> {};

INSTANTIATE_TEST_SUITE_P(Algos, ClosureBothAlgos,
                         ::testing::Values(MmAlgo::kNaiveBroadcast,
                                           MmAlgo::k3dPartition),
                         [](const auto& info) {
                           return info.param == MmAlgo::kNaiveBroadcast
                                      ? "naive"
                                      : "partition3d";
                         });

TEST_P(ClosureBothAlgos, DirectedReachability) {
  Graph g = gen::gnp_directed(13, 0.12, 19);
  auto r = transitive_closure_clique(g, GetParam());
  auto dist = oracle::apsp(g);
  for (NodeId u = 0; u < 13; ++u)
    for (NodeId v = 0; v < 13; ++v)
      EXPECT_EQ(r.reach[u * 13 + v] != 0,
                dist[u * 13 + v] != oracle::kInfDist)
          << u << "->" << v;
}

TEST_P(ClosureBothAlgos, UndirectedComponents) {
  Graph g = Graph::undirected(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(4, 5);
  auto r = transitive_closure_clique(g, GetParam());
  EXPECT_TRUE(r.reach[0 * 7 + 2]);
  EXPECT_TRUE(r.reach[5 * 7 + 4]);
  EXPECT_FALSE(r.reach[0 * 7 + 4]);
  EXPECT_TRUE(r.reach[3 * 7 + 3]);  // reflexive
}


// ---------- (1+ε)-approximate APSP ----------

TEST(ApproxMinPlusCodes, EncodeDecodeWithinBound) {
  using S = ApproxMinPlus<6>;
  SplitMix64 rng(0xab);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t v = rng.next() >> (20 + rng.next_below(40));
    const std::uint64_t back = S::decode(S::encode(v));
    EXPECT_GE(back, v);
    EXPECT_LE(static_cast<double>(back),
              (1.0 + 1.0 / 32.0) * static_cast<double>(v) + 1.0);
  }
  EXPECT_EQ(S::decode(S::encode(0)), 0u);
  EXPECT_EQ(S::decode(S::encode(63)), 63u);  // exact below 2^M
}

TEST(ApproxMinPlusCodes, OrderPreserved) {
  using S = ApproxMinPlus<5>;
  std::uint64_t prev_code = 0;
  for (std::uint64_t v = 1; v < 200000; v = v * 9 / 8 + 1) {
    const auto c = S::encode(v);
    EXPECT_GE(c, prev_code) << v;
    prev_code = c;
    EXPECT_LT(c, S::kInf);
  }
}

TEST(ApproxMinPlusCodes, RequiredMantissaMonotone) {
  EXPECT_GE(required_mantissa_bits(0.01, 6),
            required_mantissa_bits(0.1, 6));
  EXPECT_GE(required_mantissa_bits(0.1, 12),
            required_mantissa_bits(0.1, 3));
}

class ApproxApspSweep : public ::testing::TestWithParam<double> {};

TEST_P(ApproxApspSweep, WithinFactorOfExact) {
  const double eps = GetParam();
  Graph g = gen::gnp_weighted(14, 0.3, 1000, 99);
  auto approx = apsp_approx_clique(g, eps);
  auto exact = oracle::apsp(g);
  for (NodeId u = 0; u < 14; ++u)
    for (NodeId v = 0; v < 14; ++v) {
      const auto d = exact[u * 14 + v];
      const auto a = approx.dist[u * 14 + v];
      if (d == oracle::kInfDist) {
        EXPECT_GE(a, kUnreachable);
      } else {
        EXPECT_GE(a, d) << u << "," << v;  // one-sided rounding
        EXPECT_LE(static_cast<double>(a), (1.0 + eps) * d + 1e-9)
            << u << "," << v;
      }
    }
}

INSTANTIATE_TEST_SUITE_P(Eps, ApproxApspSweep,
                         ::testing::Values(0.5, 0.25, 0.1, 0.02));

TEST(ApproxApsp, CheaperThanExactOnWideWeights) {
  // Big weights make exact entries wide; the approximate codes stay small.
  Graph g = gen::gnp_weighted(27, 0.3, 1 << 20, 7);
  auto exact = apsp_clique(g);
  auto approx = apsp_approx_clique(g, 0.25);
  EXPECT_LT(approx.cost.rounds, exact.cost.rounds);
}

TEST(ApproxApsp, UnweightedGraphsNearExact) {
  Graph g = gen::gnp(12, 0.25, 5);
  auto approx = apsp_approx_clique(g, 0.1);
  auto exact = oracle::apsp(g);
  // Hop distances ≤ 11 < 2^M are represented exactly at this ε.
  for (NodeId u = 0; u < 12; ++u)
    for (NodeId v = 0; v < 12; ++v) {
      if (exact[u * 12 + v] != oracle::kInfDist) {
        EXPECT_EQ(approx.dist[u * 12 + v], exact[u * 12 + v]);
      }
    }
}

TEST(ApspCost, PartitionAlgoCheaperAtScale) {
  Graph g = gen::gnp(64, 0.1, 23);
  auto naive = apsp_clique(g, MmAlgo::kNaiveBroadcast);
  auto tri = apsp_clique(g, MmAlgo::k3dPartition);
  expect_apsp_match(64, naive.dist, tri.dist);
  EXPECT_LT(tri.cost.rounds, naive.cost.rounds);
}

}  // namespace
}  // namespace ccq
