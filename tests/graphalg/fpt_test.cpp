// Tests for the paper's three fixed-parameter results (§7.1–§7.3):
// Theorem 9 (k-DS in O(n^{1-1/k})), Theorem 11 (k-VC in O(k)), and the
// colour-coding k-path in exp(k) rounds.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "graphalg/kds.hpp"
#include "graphalg/kpath.hpp"
#include "graphalg/kvc.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

// ---------- Theorem 9: k-dominating set ----------

TEST(Kds, FindsPlantedDominatingSets) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto p = gen::planted_dominating_set(25, 2, 0.05, seed);
    auto r = k_dominating_set_clique(p.graph, 2);
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(oracle::is_dominating_set(p.graph, r.witness));
    EXPECT_EQ(r.witness.size(), 2u);
  }
}

class KdsSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(KdsSweep, AgreesWithOracle) {
  const unsigned k = GetParam();
  SplitMix64 rng(k * 31 + 5);
  for (int t = 0; t < 4; ++t) {
    Graph g = gen::gnp(18, 0.10 + 0.08 * t, rng.next());
    auto r = k_dominating_set_clique(g, k);
    EXPECT_EQ(r.found, oracle::dominating_set(g, k).has_value())
        << "k=" << k << " t=" << t;
    if (r.found) {
      EXPECT_TRUE(oracle::is_dominating_set(g, r.witness));
      EXPECT_LE(r.witness.size(), k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(K, KdsSweep, ::testing::Values(1u, 2u, 3u));

TEST(Kds, StarNeedsOnlyCentre) {
  auto r = k_dominating_set_clique(gen::star(20), 1);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.witness, (std::vector<NodeId>{0}));
}

TEST(Kds, EmptyGraphRejects) {
  EXPECT_FALSE(k_dominating_set_clique(gen::empty(12), 3).found);
}

TEST(Kds, RoundsSublinearInN) {
  // O(n^{1-1/k}) for k=2 → ~√n growth. Check rounds(64)/rounds(16) is well
  // below the linear ratio 4 on sparse instances.
  auto r16 = k_dominating_set_clique(
      gen::planted_dominating_set(16, 2, 0.05, 1).graph, 2);
  auto r64 = k_dominating_set_clique(
      gen::planted_dominating_set(64, 2, 0.05, 1).graph, 2);
  const double ratio = static_cast<double>(r64.cost.rounds) /
                       std::max<std::uint64_t>(r16.cost.rounds, 1);
  EXPECT_LT(ratio, 4.0);
}

// ---------- Theorem 11: k-vertex cover ----------

TEST(Kvc, FindsPlantedCovers) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto p = gen::planted_vertex_cover(30, 3, 20, seed);
    auto r = k_vertex_cover_clique(p.graph, 3);
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(oracle::is_vertex_cover(p.graph, r.witness));
    EXPECT_LE(r.witness.size(), 3u);
  }
}

class KvcSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(KvcSweep, AgreesWithOracle) {
  const unsigned k = GetParam();
  SplitMix64 rng(k * 97 + 3);
  for (int t = 0; t < 4; ++t) {
    Graph g = gen::gnp(16, 0.06 + 0.05 * t, rng.next());
    auto r = k_vertex_cover_clique(g, k);
    EXPECT_EQ(r.found, oracle::vertex_cover(g, k).has_value())
        << "k=" << k << " t=" << t;
    if (r.found) {
      EXPECT_TRUE(oracle::is_vertex_cover(g, r.witness));
      EXPECT_LE(r.witness.size(), k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(K, KvcSweep, ::testing::Values(0u, 1u, 2u, 4u));

TEST(Kvc, HighDegreeRuleRejectsFast) {
  // Star with k=0: centre has degree 19 ≥ 1 → joins C, |C| = 1 > 0.
  auto r = k_vertex_cover_clique(gen::star(20), 0);
  EXPECT_FALSE(r.found);
  // A single round of preprocessing suffices to reject.
  EXPECT_LE(r.cost.rounds, 1u);
}

TEST(Kvc, CoverContainsAllHighDegreeNodes) {
  // Two stars joined: both centres must be in any 2-cover.
  Graph g = Graph::undirected(12);
  for (NodeId v = 2; v < 7; ++v) g.add_edge(0, v);
  for (NodeId v = 7; v < 12; ++v) g.add_edge(1, v);
  auto r = k_vertex_cover_clique(g, 2);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.witness, (std::vector<NodeId>{0, 1}));
}

TEST(Kvc, RoundsIndependentOfN) {
  // The headline claim of Theorem 11: rounds depend on k, not n.
  const unsigned k = 3;
  std::uint64_t rounds_small = 0, rounds_large = 0;
  {
    auto p = gen::planted_vertex_cover(16, k, 12, 7);
    rounds_small = k_vertex_cover_clique(p.graph, k).cost.rounds;
  }
  {
    auto p = gen::planted_vertex_cover(96, k, 12, 7);
    rounds_large = k_vertex_cover_clique(p.graph, k).cost.rounds;
  }
  // Allow a ±1 round wobble from ⌈·/B⌉ effects; no growth with n.
  EXPECT_LE(rounds_large, rounds_small + 1);
}

TEST(Kvc, EmptyGraphNeedsNoCover) {
  auto r = k_vertex_cover_clique(gen::empty(8), 0);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.witness.empty());
}

// ---------- k-path via colour coding ----------

TEST(KPath, FindsPlantedPaths) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto p = gen::planted_hamiltonian_path(12, 0.0, seed);
    // A Hamiltonian path contains a k-path for every k ≤ n.
    auto r = k_path_clique(p.graph, 4);
    EXPECT_TRUE(r.found) << seed;
  }
}

TEST(KPath, SoundOnEdgelessGraphs) {
  auto r = k_path_clique(gen::empty(10), 2, 50);
  EXPECT_FALSE(r.found);
}

TEST(KPath, ExactThreshold) {
  // A path graph on 6 nodes has k-paths up to k=6 and none longer.
  Graph p6 = gen::path(6);
  EXPECT_TRUE(k_path_clique(p6, 3).found);
  EXPECT_TRUE(k_path_clique(p6, 6).found);
  EXPECT_FALSE(k_path_clique(gen::path(3), 4, 100).found);
}

TEST(KPath, AgreesWithOracleOnSparseGraphs) {
  SplitMix64 rng(51);
  for (int t = 0; t < 4; ++t) {
    Graph g = gen::gnp(14, 0.08, rng.next());
    const bool expect = oracle::k_path(g, 4).has_value();
    auto r = k_path_clique(g, 4);
    if (expect) {
      EXPECT_TRUE(r.found) << t;  // whp with the default trial budget
    } else {
      EXPECT_FALSE(r.found) << t;  // soundness is unconditional
    }
  }
}

TEST(KPath, RoundsIndependentOfN) {
  const unsigned k = 3, trials = 5;
  auto small = k_path_clique(gen::path(12), k, trials);
  auto large = k_path_clique(gen::path(60), k, trials);
  // Both find a 3-path in trial 1; the per-trial round cost is ⌈2^k/B⌉-ish
  // and B grows with n, so large-n rounds can only shrink.
  EXPECT_TRUE(small.found);
  EXPECT_TRUE(large.found);
  EXPECT_LE(large.cost.rounds, small.cost.rounds + 1);
}

}  // namespace
}  // namespace ccq
