#include "graphalg/subgraph.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

TEST(TriangleClique, DetectsPlantedTriangle) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto p = gen::planted_clique(18, 3, 0.05, seed);
    auto r = triangle_clique(p.graph);
    EXPECT_TRUE(r.found);
    ASSERT_EQ(r.witness.size(), 3u);
    EXPECT_TRUE(p.graph.has_edge(r.witness[0], r.witness[1]));
    EXPECT_TRUE(p.graph.has_edge(r.witness[1], r.witness[2]));
    EXPECT_TRUE(p.graph.has_edge(r.witness[0], r.witness[2]));
  }
}

TEST(TriangleClique, RejectsBipartite) {
  EXPECT_FALSE(triangle_clique(gen::complete_bipartite(8, 8)).found);
}

// Parameterised soundness/completeness sweep against the oracle.
struct DetectCase {
  double p;
  std::uint64_t seed;
};

class TriangleSweep : public ::testing::TestWithParam<DetectCase> {};

TEST_P(TriangleSweep, AgreesWithOracle) {
  Graph g = gen::gnp(16, GetParam().p, GetParam().seed);
  auto r = triangle_clique(g);
  EXPECT_EQ(r.found, oracle::k_clique(g, 3).has_value());
  if (r.found) {
    EXPECT_TRUE(g.has_edge(r.witness[0], r.witness[1]));
    EXPECT_TRUE(g.has_edge(r.witness[1], r.witness[2]));
    EXPECT_TRUE(g.has_edge(r.witness[0], r.witness[2]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Densities, TriangleSweep,
    ::testing::Values(DetectCase{0.05, 1}, DetectCase{0.1, 2},
                      DetectCase{0.15, 3}, DetectCase{0.2, 4},
                      DetectCase{0.3, 5}, DetectCase{0.5, 6}));

class KisSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(KisSweep, AgreesWithOracleAcrossDensities) {
  const unsigned k = GetParam();
  SplitMix64 rng(k * 1000 + 7);
  for (int t = 0; t < 4; ++t) {
    Graph g = gen::gnp(16, 0.35 + 0.15 * t, rng.next());
    auto r = independent_set_clique(g, k);
    EXPECT_EQ(r.found, oracle::independent_set(g, k).has_value())
        << "k=" << k << " t=" << t;
    if (r.found) {
      EXPECT_TRUE(oracle::is_independent_set(g, r.witness));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(K, KisSweep, ::testing::Values(2u, 3u, 4u));

TEST(CliqueDetect, FourCliqueSweep) {
  SplitMix64 rng(99);
  for (int t = 0; t < 5; ++t) {
    Graph g = gen::gnp(16, 0.4, rng.next());
    auto r = clique_detect_clique(g, 4);
    EXPECT_EQ(r.found, oracle::k_clique(g, 4).has_value());
  }
}

TEST(KCycleClique, ExactCycleLengths) {
  Graph c7 = gen::cycle(7);
  EXPECT_TRUE(k_cycle_clique(c7, 7).found);
  EXPECT_FALSE(k_cycle_clique(c7, 4).found);
  EXPECT_FALSE(k_cycle_clique(c7, 3).found);
}

TEST(KCycleClique, PlantedFourCycles) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto p = gen::planted_k_cycle(16, 4, 0.05, seed);
    auto r = k_cycle_clique(p.graph, 4);
    EXPECT_TRUE(r.found);
    ASSERT_EQ(r.witness.size(), 4u);
    for (int i = 0; i < 4; ++i)
      EXPECT_TRUE(p.graph.has_edge(r.witness[i], r.witness[(i + 1) % 4]));
  }
}

TEST(SubgraphClique, PathPatternSweep) {
  Graph p4 = gen::path(4);
  SplitMix64 rng(123);
  for (int t = 0; t < 5; ++t) {
    Graph g = gen::gnp(16, 0.08 + 0.04 * t, rng.next());
    auto r = subgraph_clique(g, p4);
    EXPECT_EQ(r.found, oracle::subgraph(g, p4).has_value()) << t;
  }
}

TEST(SubgraphClique, StarPattern) {
  Graph star4 = gen::star(4);  // K_{1,3}
  Graph host = gen::star(10);
  EXPECT_TRUE(subgraph_clique(host, star4).found);
  EXPECT_FALSE(subgraph_clique(gen::cycle(8), star4).found);
}

TEST(Detector, EmptyAndTinyGraphs) {
  EXPECT_FALSE(triangle_clique(gen::empty(5)).found);
  EXPECT_FALSE(triangle_clique(gen::empty(2)).found);
  EXPECT_TRUE(independent_set_clique(gen::empty(4), 4).found);
}

TEST(Detector, RoundsGrowSublinearly) {
  // Triangle detection is O(n^{1/3}·poly): rounds(64)/rounds(8) must stay
  // far below the linear ratio 8.
  auto r8 = triangle_clique(gen::gnp(8, 0.1, 1));
  auto r64 = triangle_clique(gen::gnp(64, 0.1, 1));
  EXPECT_LT(r64.cost.rounds, 8 * std::max<std::uint64_t>(r8.cost.rounds, 1));
}

TEST(Detector, DirectedRejected) {
  EXPECT_THROW(triangle_clique(gen::gnp_directed(8, 0.2, 1)),
               ModelViolation);
}

}  // namespace
}  // namespace ccq
