#include "graphalg/sssp.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

void expect_dist_match(const std::vector<std::uint64_t>& got,
                       const std::vector<std::uint64_t>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    if (want[v] == oracle::kInfDist) {
      EXPECT_GE(got[v], kUnreachable) << "node " << v;
    } else {
      EXPECT_EQ(got[v], want[v]) << "node " << v;
    }
  }
}

// Parents must form a valid shortest-path tree.
void expect_valid_tree(const Graph& g, NodeId source, const SsspResult& r) {
  for (NodeId v = 0; v < g.n(); ++v) {
    if (v == source || r.dist[v] >= kUnreachable) {
      EXPECT_EQ(r.parent[v], v);
      continue;
    }
    const NodeId p = r.parent[v];
    EXPECT_TRUE(g.is_directed() ? g.has_edge(p, v) : g.has_edge(p, v));
    const std::uint64_t w = g.is_weighted() ? g.weight(p, v) : 1;
    EXPECT_EQ(r.dist[v], r.dist[p] + w);
  }
}

TEST(BfsClique, PathGraph) {
  Graph g = gen::path(9);
  auto r = bfs_clique(g, 0);
  for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(r.dist[v], v);
  expect_valid_tree(g, 0, r);
}

TEST(BfsClique, MatchesOracleOnRandomGraphs) {
  SplitMix64 rng(42);
  for (int t = 0; t < 6; ++t) {
    Graph g = gen::gnp(20, 0.15, rng.next());
    const NodeId s = static_cast<NodeId>(rng.next_below(20));
    auto r = bfs_clique(g, s);
    expect_dist_match(r.dist, oracle::sssp(g, s));
    expect_valid_tree(g, s, r);
  }
}

TEST(BfsClique, DisconnectedMarksUnreachable) {
  Graph g = Graph::undirected(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  auto r = bfs_clique(g, 0);
  EXPECT_EQ(r.dist[2], 2u);
  EXPECT_GE(r.dist[4], kUnreachable);
}

TEST(BfsClique, DirectedFollowsOrientation) {
  Graph g = Graph::directed(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 0);
  auto r = bfs_clique(g, 0);
  EXPECT_EQ(r.dist[2], 2u);
  EXPECT_GE(r.dist[3], kUnreachable);  // edge points 3→0 only
}

TEST(BfsClique, RoundsScaleWithDiameter) {
  // Path graph: diameter n-1 ⇒ Θ(n) rounds. Clique: diameter 1 ⇒ O(1).
  auto path_r = bfs_clique(gen::path(24), 0);
  auto clique_r = bfs_clique(gen::complete(24), 0);
  EXPECT_GT(path_r.cost.rounds, 24u);
  EXPECT_LE(clique_r.cost.rounds, 8u);
}

TEST(BellmanFord, MatchesDijkstraOnWeightedGraphs) {
  SplitMix64 rng(77);
  for (int t = 0; t < 6; ++t) {
    Graph g = gen::gnp_weighted(16, 0.3, 20, rng.next());
    const NodeId s = static_cast<NodeId>(rng.next_below(16));
    auto r = bellman_ford_clique(g, s);
    expect_dist_match(r.dist, oracle::sssp(g, s));
    expect_valid_tree(g, s, r);
  }
}

TEST(BellmanFord, UnweightedAgreesWithBfs) {
  Graph g = gen::gnp(18, 0.2, 5);
  auto bf = bellman_ford_clique(g, 3);
  auto bfs = bfs_clique(g, 3);
  for (NodeId v = 0; v < 18; ++v) {
    EXPECT_EQ(bf.dist[v] >= kUnreachable, bfs.dist[v] >= kUnreachable);
    if (bf.dist[v] < kUnreachable) {
      EXPECT_EQ(bf.dist[v], bfs.dist[v]);
    }
  }
}

TEST(BellmanFord, PrefersLightMultiHopRoute) {
  Graph g = Graph::undirected(4);
  g.add_edge(0, 3, 100);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  auto r = bellman_ford_clique(g, 0);
  EXPECT_EQ(r.dist[3], 3u);
  EXPECT_EQ(r.parent[3], 2u);
}

TEST(BellmanFord, SingleNode) {
  auto r = bellman_ford_clique(gen::empty(1), 0);
  EXPECT_EQ(r.dist[0], 0u);
}

TEST(BellmanFord, EarlyExitKeepsRoundsNearDiameter) {
  // A clique converges in one iteration; rounds must be far below n-1
  // iterations' worth.
  Graph g = gen::complete(20);
  auto r = bellman_ford_clique(g, 0);
  const std::uint64_t per_iter_upper = 8;  // broadcast + vote at n=20
  EXPECT_LE(r.cost.rounds, 3 * per_iter_upper);
}

}  // namespace
}  // namespace ccq
