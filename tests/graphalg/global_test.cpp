#include "graphalg/global.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

TEST(GlobalMaxIS, MatchesOracleSize) {
  SplitMix64 rng(61);
  for (int t = 0; t < 5; ++t) {
    Graph g = gen::gnp(14, 0.3, rng.next());
    auto r = max_independent_set_clique(g);
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(oracle::is_independent_set(g, r.witness));
    EXPECT_EQ(r.witness.size(), oracle::max_independent_set(g).size());
  }
}

TEST(GlobalMinVC, GallaiWithMaxIS) {
  Graph g = gen::gnp(13, 0.4, 3);
  auto is = max_independent_set_clique(g);
  auto vc = min_vertex_cover_clique(g);
  EXPECT_TRUE(oracle::is_vertex_cover(g, vc.witness));
  EXPECT_EQ(is.witness.size() + vc.witness.size(), g.n());
}

TEST(GlobalColouring, DecidesChromaticThreshold) {
  Graph c5 = gen::cycle(5);
  EXPECT_FALSE(k_colouring_clique(c5, 2).found);
  auto r3 = k_colouring_clique(c5, 3);
  EXPECT_TRUE(r3.found);
  EXPECT_TRUE(oracle::is_proper_colouring(c5, r3.witness, 3));
}

TEST(GlobalColouring, PlantedInstances) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto p = gen::planted_k_colourable(15, 3, 0.5, seed);
    auto r = k_colouring_clique(p.graph, 3);
    EXPECT_TRUE(r.found);
    EXPECT_TRUE(oracle::is_proper_colouring(p.graph, r.witness, 3));
  }
}

TEST(GlobalHamPath, MatchesOracle) {
  auto planted = gen::planted_hamiltonian_path(10, 0.1, 3);
  auto r = hamiltonian_path_clique(planted.graph);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(oracle::is_hamiltonian_path(planted.graph, r.witness));
  EXPECT_FALSE(hamiltonian_path_clique(gen::star(8)).found);
}

TEST(GlobalSolve, CostIsLearnTheGraph) {
  // One broadcast of n bits each: ⌈n/B⌉ rounds exactly.
  const NodeId n = 32;
  Graph g = gen::gnp(n, 0.3, 9);
  auto r = max_independent_set_clique(g);
  EXPECT_EQ(r.cost.rounds, ceil_div(n, ceil_log2(n)));
}

TEST(GlobalSolve, GenericSolverPlumbing) {
  // A custom local solver: report nodes of even degree.
  Graph g = gen::star(5);
  auto r = solve_globally(g, [](const Graph& full) {
    std::vector<NodeId> out;
    for (NodeId v = 0; v < full.n(); ++v)
      if (full.degree(v) % 2 == 0) out.push_back(v);
    return std::optional<std::vector<NodeId>>(out);
  });
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.witness, (std::vector<NodeId>{0}));  // centre has degree 4
}

}  // namespace
}  // namespace ccq
