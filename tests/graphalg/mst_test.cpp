#include "graphalg/mst.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

TEST(OracleMsf, PathAndCycle) {
  // MSF of a path is the path; of a weighted cycle, drop the heaviest edge.
  Graph p = gen::path(5);
  EXPECT_EQ(oracle::min_spanning_forest(p).size(), 4u);
  Graph c = Graph::undirected(4);
  c.add_edge(0, 1, 1);
  c.add_edge(1, 2, 2);
  c.add_edge(2, 3, 3);
  c.add_edge(3, 0, 9);
  auto f = oracle::min_spanning_forest(c);
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(oracle::msf_weight(c), 6u);
}

TEST(OracleMsf, ForestOfComponents) {
  Graph g = Graph::undirected(6);
  g.add_edge(0, 1, 2);
  g.add_edge(2, 3, 5);
  g.add_edge(3, 4, 1);
  auto f = oracle::min_spanning_forest(g);
  EXPECT_EQ(f.size(), 3u);  // node 5 isolated
  EXPECT_EQ(oracle::msf_weight(g), 8u);
}

TEST(MstClique, MatchesOracleWeightOnRandomGraphs) {
  SplitMix64 rng(0x357);
  for (int t = 0; t < 6; ++t) {
    Graph g = gen::gnp_weighted(20, 0.2 + 0.1 * t, 50, rng.next());
    auto r = mst_boruvka_clique(g);
    EXPECT_EQ(r.weight, oracle::msf_weight(g)) << t;
    EXPECT_EQ(r.forest.size(), oracle::min_spanning_forest(g).size()) << t;
  }
}

TEST(MstClique, ExactForestUnderDistinctWeights) {
  // With distinct weights the MSF is unique — edge sets must match.
  SplitMix64 rng(0x358);
  for (int t = 0; t < 4; ++t) {
    Graph g = Graph::undirected(14);
    std::uint32_t w = 1;
    for (NodeId u = 0; u < 14; ++u)
      for (NodeId v = u + 1; v < 14; ++v)
        if (rng.next_bool(0.3)) g.add_edge(u, v, w++);
    auto got = mst_boruvka_clique(g).forest;
    auto want = oracle::min_spanning_forest(g);
    ASSERT_EQ(got.size(), want.size()) << t;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].u, want[i].u);
      EXPECT_EQ(got[i].v, want[i].v);
    }
  }
}

TEST(MstClique, TieBreakingIsCanonical) {
  // All weights equal: the (w,u,v) order still gives a unique forest.
  Graph g = gen::complete(8);
  auto r = mst_boruvka_clique(g);
  EXPECT_EQ(r.forest.size(), 7u);
  EXPECT_EQ(r.weight, 7u);
  auto want = oracle::min_spanning_forest(g);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(r.forest[i].u, want[i].u);
    EXPECT_EQ(r.forest[i].v, want[i].v);
  }
}

TEST(MstClique, DisconnectedInput) {
  Graph g = Graph::undirected(8);
  g.add_edge(0, 1, 3);
  g.add_edge(2, 3, 4);
  g.add_edge(3, 4, 5);
  auto r = mst_boruvka_clique(g);
  EXPECT_EQ(r.forest.size(), 3u);
  EXPECT_EQ(r.weight, 12u);
}

TEST(MstClique, EdgelessAndSingleton) {
  EXPECT_EQ(mst_boruvka_clique(gen::empty(5)).forest.size(), 0u);
  EXPECT_EQ(mst_boruvka_clique(gen::empty(1)).weight, 0u);
}

TEST(MstClique, PhasesAreLogarithmic) {
  // Borůvka: components at least halve per phase ⇒ ≤ ⌈log₂ n⌉ phases.
  for (NodeId n : {16u, 64u, 128u}) {
    Graph g = gen::gnp_weighted(n, 0.2, 30, n);
    auto r = mst_boruvka_clique(g);
    EXPECT_LE(r.phases, ceil_log2(n)) << n;
  }
}

TEST(MstClique, AdversarialBoruvkaCounterexampleShape) {
  // The regression shape for the node-min vs component-min bug: two
  // two-node components whose members' own minima point at a heavy edge
  // while a lighter inter-component edge exists elsewhere.
  Graph g = Graph::undirected(6);
  g.add_edge(0, 1, 1);   // component {0,1} former phase
  g.add_edge(2, 3, 1);   // component {2,3}
  g.add_edge(0, 2, 5);   // heavy bridge (node 0's only outgoing)
  g.add_edge(1, 4, 1);   // light edges pulling members elsewhere
  g.add_edge(3, 5, 1);
  g.add_edge(1, 3, 2);   // the light bridge the MSF must use
  auto r = mst_boruvka_clique(g);
  EXPECT_EQ(r.weight, oracle::msf_weight(g));
  for (const Edge& e : r.forest) {
    EXPECT_FALSE(e.u == 0 && e.v == 2) << "non-MSF heavy bridge selected";
  }
}


// ---------- proof-labelling MSF verification ----------

TEST(MsfVerify, HonestCertificateAccepted) {
  SplitMix64 rng(0xabc);
  for (int t = 0; t < 5; ++t) {
    Graph g = gen::gnp_weighted(18, 0.2 + 0.1 * t, 40, rng.next());
    auto mst = mst_boruvka_clique(g);
    auto cert = msf_certificate(g, mst.forest);
    auto run = verify_msf_clique(g, cert);
    EXPECT_TRUE(run.accepted()) << t;
    EXPECT_LE(run.cost.rounds, 2u * ceil_div(32, node_id_bits(18)) + 8)
        << "verification must stay O(1)-ish";
  }
}

TEST(MsfVerify, NonMinimalSpanningTreeRejected) {
  // A spanning tree that uses a heavy edge where a light one closes the
  // cycle violates the cycle property.
  Graph g = Graph::undirected(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(0, 3, 9);
  // Claim the tree {01, 12, 03}: drops the light 23 for the heavy 03.
  std::vector<Edge> claimed = {{0, 1, 1}, {1, 2, 1}, {0, 3, 9}};
  auto cert = msf_certificate(g, claimed);
  EXPECT_FALSE(verify_msf_clique(g, cert).accepted());
}

TEST(MsfVerify, NonSpanningForestRejected) {
  // Connected graph, but the certificate omits a component-joining edge.
  Graph g = Graph::undirected(4);
  g.add_edge(0, 1, 2);
  g.add_edge(2, 3, 2);
  g.add_edge(1, 2, 5);
  std::vector<Edge> claimed = {{0, 1, 2}, {2, 3, 2}};  // misses {1,2}
  auto cert = msf_certificate(g, claimed);
  EXPECT_FALSE(verify_msf_clique(g, cert).accepted());
}

TEST(MsfVerify, ForgedParentEdgeRejected) {
  Graph g = gen::gnp_weighted(10, 0.4, 20, 9);
  auto mst = mst_boruvka_clique(g);
  auto cert = msf_certificate(g, mst.forest);
  // Point some node at a non-neighbour (or itself).
  for (NodeId v = 0; v < 10; ++v) {
    if (cert.parent[v].has_value()) {
      cert.parent[v] = v;  // self-parent: invalid edge
      break;
    }
  }
  EXPECT_FALSE(verify_msf_clique(g, cert).accepted());
}

TEST(MsfVerify, CyclicParentPointersRejected) {
  Graph g = gen::cycle(4);  // unweighted: all weights 1
  MsfCertificate cert;
  cert.parent = {std::optional<NodeId>(1), std::optional<NodeId>(2),
                 std::optional<NodeId>(3), std::optional<NodeId>(0)};
  EXPECT_FALSE(verify_msf_clique(g, cert).accepted());
}

TEST(MsfVerify, CertificateBuilderRejectsCycles) {
  Graph g = gen::cycle(3);
  std::vector<Edge> cyclic = {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}};
  EXPECT_THROW(msf_certificate(g, cyclic), ModelViolation);
}

TEST(MsfVerify, ForestOnDisconnectedGraphAccepted) {
  Graph g = Graph::undirected(6);
  g.add_edge(0, 1, 3);
  g.add_edge(2, 3, 1);
  g.add_edge(3, 4, 2);
  auto mst = mst_boruvka_clique(g);
  auto cert = msf_certificate(g, mst.forest);
  EXPECT_TRUE(verify_msf_clique(g, cert).accepted());
}

TEST(MstClique, WeightedDirectedRejected) {
  EXPECT_THROW(mst_boruvka_clique(gen::gnp_directed(6, 0.3, 1)),
               ModelViolation);
}

}  // namespace
}  // namespace ccq
