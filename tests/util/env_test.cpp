// Strict env parsing (util/env.hpp): CCQ_POOL_THREADS / CCQ_KERNEL_THREADS
// size worker pools; a malformed override must fail loudly, never silently
// become hardware concurrency or a truncated prefix.

#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ccq {
namespace {

TEST(ParseUintStrict, AcceptsWholeDecimals) {
  EXPECT_EQ(parse_uint_strict("0", 0, 10, "x"), 0u);
  EXPECT_EQ(parse_uint_strict("8", 1, 64, "x"), 8u);
  EXPECT_EQ(parse_uint_strict("18446744073709551615", 0, ~0ull, "x"), ~0ull);
}

TEST(ParseUintStrict, RejectsEverythingElse) {
  EXPECT_THROW(parse_uint_strict("", 0, 10, "x"), ModelViolation);
  EXPECT_THROW(parse_uint_strict("8x", 1, 64, "x"), ModelViolation);
  EXPECT_THROW(parse_uint_strict("x8", 1, 64, "x"), ModelViolation);
  EXPECT_THROW(parse_uint_strict("-1", 0, 64, "x"), ModelViolation);
  EXPECT_THROW(parse_uint_strict("3.5", 0, 64, "x"), ModelViolation);
  EXPECT_THROW(parse_uint_strict(" 8", 0, 64, "x"), ModelViolation);
  EXPECT_THROW(parse_uint_strict("18446744073709551616", 0, ~0ull, "x"),
               ModelViolation);  // 2^64: one past the widest representable
}

TEST(ParseUintStrict, EnforcesRange) {
  EXPECT_THROW(parse_uint_strict("0", 1, 64, "x"), ModelViolation);
  EXPECT_THROW(parse_uint_strict("65", 1, 64, "x"), ModelViolation);
  EXPECT_EQ(parse_uint_strict("64", 1, 64, "x"), 64u);
}

TEST(ParseEnvUint, UnsetAndEmptyMeanDefault) {
  ::unsetenv("CCQ_TEST_ENV_UINT");
  EXPECT_EQ(parse_env_uint("CCQ_TEST_ENV_UINT", 1, 64), std::nullopt);
  ::setenv("CCQ_TEST_ENV_UINT", "", 1);
  EXPECT_EQ(parse_env_uint("CCQ_TEST_ENV_UINT", 1, 64), std::nullopt);
}

TEST(ParseEnvUint, SetValuesAreStrict) {
  ::setenv("CCQ_TEST_ENV_UINT", "12", 1);
  EXPECT_EQ(parse_env_uint("CCQ_TEST_ENV_UINT", 1, 64), 12u);
  // The historical failure mode: "8x" used to silently run 8 workers.
  ::setenv("CCQ_TEST_ENV_UINT", "8x", 1);
  EXPECT_THROW(parse_env_uint("CCQ_TEST_ENV_UINT", 1, 64), ModelViolation);
  // ...and garbage silently fell back to hardware concurrency.
  ::setenv("CCQ_TEST_ENV_UINT", "lots", 1);
  EXPECT_THROW(parse_env_uint("CCQ_TEST_ENV_UINT", 1, 64), ModelViolation);
  ::setenv("CCQ_TEST_ENV_UINT", "999", 1);
  EXPECT_THROW(parse_env_uint("CCQ_TEST_ENV_UINT", 1, 64), ModelViolation);
  ::unsetenv("CCQ_TEST_ENV_UINT");
}

}  // namespace
}  // namespace ccq
