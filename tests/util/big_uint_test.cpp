#include "util/big_uint.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

TEST(BigUInt, BasicArithmetic) {
  BigUInt a(123456789), b(987654321);
  EXPECT_EQ((a + b).to_decimal(), "1111111110");
  EXPECT_EQ((b - a).to_decimal(), "864197532");
  EXPECT_EQ((a * b).to_decimal(), "121932631112635269");
}

TEST(BigUInt, CarryPropagation) {
  BigUInt max64(~std::uint64_t{0});
  BigUInt r = max64 + BigUInt(1);
  EXPECT_EQ(r.to_decimal(), "18446744073709551616");  // 2^64
  EXPECT_EQ((r - BigUInt(1)).to_decimal(), "18446744073709551615");
}

TEST(BigUInt, MultiplicationGrowsLimbs) {
  BigUInt a = BigUInt::pow2(100);
  BigUInt b = BigUInt::pow2(60);
  EXPECT_EQ((a * b).bit_length(), 161u);  // 2^160 has 161 bits
}

TEST(BigUInt, Pow2AndBitLength) {
  EXPECT_EQ(BigUInt::pow2(0).to_decimal(), "1");
  EXPECT_EQ(BigUInt::pow2(10).to_decimal(), "1024");
  EXPECT_EQ(BigUInt::pow2(64).to_decimal(), "18446744073709551616");
  EXPECT_EQ(BigUInt::pow2(200).bit_length(), 201u);
  EXPECT_EQ(BigUInt(0).bit_length(), 0u);
  EXPECT_EQ(BigUInt(1).bit_length(), 1u);
}

TEST(BigUInt, Pow) {
  EXPECT_EQ(BigUInt::pow(BigUInt(3), 5).to_decimal(), "243");
  EXPECT_EQ(BigUInt::pow(BigUInt(2), 100), BigUInt::pow2(100));
  EXPECT_EQ(BigUInt::pow(BigUInt(10), 0).to_decimal(), "1");
  EXPECT_EQ(BigUInt::pow(BigUInt(0), 5).to_decimal(), "0");
}

TEST(BigUInt, Comparisons) {
  EXPECT_LT(BigUInt(5), BigUInt(7));
  EXPECT_GT(BigUInt::pow2(65), BigUInt::pow2(64));
  EXPECT_EQ(BigUInt::pow2(64), BigUInt::pow2(64));
  EXPECT_LE(BigUInt(0), BigUInt(0));
  EXPECT_NE(BigUInt(1), BigUInt(2));
}

TEST(BigUInt, UnderflowThrows) {
  BigUInt a(5), b(6);
  EXPECT_THROW(a -= b, ModelViolation);
}

TEST(BigUInt, DecimalRoundTrip) {
  const std::string big =
      "123456789012345678901234567890123456789012345678901234567890";
  EXPECT_EQ(BigUInt::from_decimal(big).to_decimal(), big);
}

TEST(BigUInt, Log2) {
  EXPECT_DOUBLE_EQ(BigUInt::pow2(1000).log2(), 1000.0);
  EXPECT_NEAR(BigUInt(1000).log2(), std::log2(1000.0), 1e-9);
  EXPECT_TRUE(std::isinf(BigUInt(0).log2()));
}

TEST(BigUInt, ShiftLeft) {
  BigUInt a(0b1011);
  EXPECT_EQ((a << 3).to_decimal(), "88");
  EXPECT_EQ((a << 64).to_decimal(), "202914184810805067776");
  EXPECT_EQ((BigUInt(0) << 100).to_decimal(), "0");
}

TEST(BigUInt, ToU64) {
  EXPECT_EQ(BigUInt(42).to_u64(), 42u);
  EXPECT_THROW(BigUInt::pow2(64).to_u64(), ModelViolation);
}

// Property: operations agree with native __int128 arithmetic on random
// inputs small enough to compare.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
TEST(BigUIntProperty, MatchesInt128) {
  SplitMix64 rng(0xb16);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t x = rng.next() >> 2, y = rng.next() >> 2;
    const unsigned __int128 xi = x, yi = y;
    {
      const unsigned __int128 s = xi + yi;
      BigUInt expect =
          (BigUInt(static_cast<std::uint64_t>(s >> 64)) << 64) +
          BigUInt(static_cast<std::uint64_t>(s));
      EXPECT_EQ(BigUInt(x) + BigUInt(y), expect);
    }
    // Multiplication agrees, reconstructed from 64-bit halves.
    const unsigned __int128 prod = xi * yi;
    BigUInt expect = (BigUInt(static_cast<std::uint64_t>(prod >> 64)) << 64) +
                     BigUInt(static_cast<std::uint64_t>(prod));
    EXPECT_EQ(BigUInt(x) * BigUInt(y), expect);
    // Ordering agrees.
    EXPECT_EQ(BigUInt(x) < BigUInt(y), x < y);
    // Subtraction agrees.
    if (x >= y) {
      EXPECT_EQ((BigUInt(x) - BigUInt(y)).to_u64(), x - y);
    }
  }
}
#pragma GCC diagnostic pop

// The Lemma 1 sanity identity: 2^a · 2^b = 2^{a+b} exactly.
TEST(BigUIntProperty, Pow2Additivity) {
  SplitMix64 rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t a = rng.next_below(500), b = rng.next_below(500);
    EXPECT_EQ(BigUInt::pow2(a) * BigUInt::pow2(b), BigUInt::pow2(a + b));
  }
}

}  // namespace
}  // namespace ccq
