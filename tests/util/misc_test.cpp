#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <vector>

#include "util/log2_real.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ccq {
namespace {

// ---------- math ----------

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(10, 1), 10u);
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
}

TEST(Math, FloorRoot) {
  EXPECT_EQ(floor_root(27, 3), 3u);
  EXPECT_EQ(floor_root(26, 3), 2u);
  EXPECT_EQ(floor_root(1, 5), 1u);
  EXPECT_EQ(floor_root(0, 2), 0u);
  EXPECT_EQ(floor_root(1'000'000, 2), 1000u);
  EXPECT_EQ(floor_root(999'999, 2), 999u);
  EXPECT_EQ(floor_root(64, 6), 2u);
}

TEST(MathProperty, FloorRootBrackets) {
  SplitMix64 rng(123);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t x = rng.next() >> 20;
    for (unsigned k = 1; k <= 5; ++k) {
      const std::uint64_t r = floor_root(x, k);
      // r^k <= x < (r+1)^k using long double bound (safe at this scale).
      long double rp = 1, rp1 = 1;
      for (unsigned i = 0; i < k; ++i) {
        rp *= r;
        rp1 *= (r + 1);
      }
      EXPECT_LE(rp, static_cast<long double>(x));
      EXPECT_GT(rp1, static_cast<long double>(x));
    }
  }
}

TEST(Math, Ipow) {
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(7, 0), 1u);
  EXPECT_EQ(ipow(0, 3), 0u);
  EXPECT_THROW(ipow(1u << 31, 3), ModelViolation);
}

// ---------- Log2Real ----------

TEST(Log2Real, BasicOps) {
  auto a = Log2Real::from_value(8);
  auto b = Log2Real::from_value(4);
  EXPECT_DOUBLE_EQ((a * b).log2(), 5.0);
  EXPECT_DOUBLE_EQ((a / b).log2(), 1.0);
  EXPECT_DOUBLE_EQ(a.pow(3).log2(), 9.0);
}

TEST(Log2Real, HugeValuesCompare) {
  // 2^(2^40) vs 2^(2^40 + 1): far beyond double range as values.
  auto a = Log2Real::pow2(std::pow(2.0, 40));
  auto b = Log2Real::pow2(std::pow(2.0, 40) + 1);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
}

TEST(Log2Real, Zero) {
  Log2Real z;
  EXPECT_TRUE(z.is_zero());
  auto one = Log2Real::from_value(1);
  EXPECT_TRUE((z * one).is_zero());
  EXPECT_EQ(z.to_string(), "0");
}

TEST(Log2Real, ToString) {
  EXPECT_EQ(Log2Real::pow2(16).to_string(), "2^16");
}

// ---------- stats ----------

TEST(Stats, ExactLineRecovered) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.5 * x - 2.0);
  auto f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 3.5, 1e-9);
  EXPECT_NEAR(f.intercept, -2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Stats, LogLogRecoversExponent) {
  // rounds = 4 * n^{2/3}
  std::vector<double> ns = {8, 16, 32, 64, 128, 256};
  std::vector<double> rounds;
  for (double n : ns) rounds.push_back(4.0 * std::pow(n, 2.0 / 3.0));
  auto f = fit_loglog(ns, rounds);
  EXPECT_NEAR(f.slope, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(std::pow(2.0, f.intercept), 4.0, 1e-6);
}

TEST(Stats, ConstantSeriesHasZeroSlope) {
  std::vector<double> ns = {8, 16, 32, 64};
  std::vector<double> rounds = {5, 5, 5, 5};
  auto f = fit_loglog(ns, rounds);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
}

TEST(Stats, ZeroRoundsClampedInLogLog) {
  std::vector<double> ns = {8, 16};
  std::vector<double> rounds = {0, 0};
  auto f = fit_loglog(ns, rounds);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
}

TEST(Stats, TooFewPointsThrows) {
  std::vector<double> one = {1.0};
  EXPECT_THROW(fit_line(one, one), ModelViolation);
}

// ---------- thread pool ----------

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   10,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(100, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, ZeroAndOneCounts) {
  ThreadPool pool(2);
  std::atomic<int> c{0};
  pool.parallel_for(0, [&](std::size_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { c.fetch_add(1); });
  EXPECT_EQ(c.load(), 1);
}

// ---------- RNG ----------

TEST(Rng, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformAliasMatchesNextBelow) {
  // uniform() is the documented entry point for fault schedules; it must be
  // the same stream as next_below, not a separately-evolving state.
  SplitMix64 a(2026), b(2026);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(a.uniform(17), b.next_below(17));
}

// Pearson chi-squared statistic over `bound` equiprobable buckets.
double chi_squared(const std::vector<std::uint64_t>& counts,
                   std::uint64_t samples) {
  const double expected =
      static_cast<double>(samples) / static_cast<double>(counts.size());
  double chi2 = 0.0;
  for (std::uint64_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

// Loose acceptance bound: mean df plus four standard deviations (chi2 has
// variance 2·df) plus slack for small df. A modulo-biased `next() % bound`
// at bound = 6 or 10 blows far past this; a uniform sampler sits near df.
double chi_squared_limit(std::uint64_t bound) {
  const double df = static_cast<double>(bound - 1);
  return df + 4.0 * std::sqrt(2.0 * df) + 10.0;
}

TEST(Rng, NextBelowPassesChiSquared) {
  for (const std::uint64_t bound : {6ull, 10ull, 1000ull}) {
    SplitMix64 rng(bound * 31 + 5);
    const std::uint64_t samples = bound * 1000;
    std::vector<std::uint64_t> counts(bound, 0);
    for (std::uint64_t i = 0; i < samples; ++i) ++counts[rng.next_below(bound)];
    EXPECT_LT(chi_squared(counts, samples), chi_squared_limit(bound))
        << "bound=" << bound;
  }
}

TEST(Rng, Mix64BelowPassesChiSquaredOnSequentialKeys) {
  // mix64_below is fed *counters*, not PRNG output — stripe offsets and
  // seed-derived colourings hash (round, node) pairs. Sequential keys are
  // therefore the representative workload.
  for (const std::uint64_t bound : {6ull, 10ull, 1000ull}) {
    const std::uint64_t samples = bound * 1000;
    std::vector<std::uint64_t> counts(bound, 0);
    for (std::uint64_t i = 0; i < samples; ++i) {
      ++counts[mix64_below(i, bound)];
    }
    EXPECT_LT(chi_squared(counts, samples), chi_squared_limit(bound))
        << "bound=" << bound;
  }
}

TEST(Rng, RoughUniformity) {
  SplitMix64 rng(1234);
  std::vector<int> buckets(10, 0);
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++buckets[rng.next_below(10)];
  for (int b : buckets) {
    EXPECT_GT(b, samples / 10 - samples / 50);
    EXPECT_LT(b, samples / 10 + samples / 50);
  }
}

// ---------- table ----------

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23456"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer-name | 23456 |"), std::string::npos);
}

}  // namespace
}  // namespace ccq
