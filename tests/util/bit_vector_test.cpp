#include "util/bit_vector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace ccq {
namespace {

TEST(BitVector, StartsZeroed) {
  BitVector b(130);
  EXPECT_EQ(b.size(), 130u);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_FALSE(b.get(i));
  EXPECT_EQ(b.popcount(), 0u);
}

TEST(BitVector, FillConstructor) {
  BitVector b(67, true);
  EXPECT_EQ(b.popcount(), 67u);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(66));
}

TEST(BitVector, SetAndClearAcrossWordBoundary) {
  BitVector b(128);
  b.set(63);
  b.set(64);
  EXPECT_TRUE(b.get(63));
  EXPECT_TRUE(b.get(64));
  EXPECT_EQ(b.popcount(), 2u);
  b.set(63, false);
  EXPECT_FALSE(b.get(63));
  EXPECT_EQ(b.popcount(), 1u);
}

TEST(BitVector, PushBackGrows) {
  BitVector b;
  for (int i = 0; i < 100; ++i) b.push_back(i % 3 == 0);
  EXPECT_EQ(b.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b.get(i), i % 3 == 0) << i;
}

TEST(BitVector, AppendAndReadBitsRoundTrip) {
  BitVector b;
  b.append_bits(0b1011, 4);
  b.append_bits(0xdeadbeefULL, 32);
  b.append_bits(1, 1);
  EXPECT_EQ(b.size(), 37u);
  EXPECT_EQ(b.read_bits(0, 4), 0b1011u);
  EXPECT_EQ(b.read_bits(4, 32), 0xdeadbeefULL);
  EXPECT_EQ(b.read_bits(36, 1), 1u);
}

TEST(BitVector, ReadBitsAcrossWordBoundary) {
  BitVector b(128);
  for (int i = 60; i < 70; ++i) b.set(i);
  EXPECT_EQ(b.read_bits(60, 10), 0b1111111111u);
  EXPECT_EQ(b.read_bits(59, 12), 0b011111111110u);
}

TEST(BitVector, AppendBitsRejectsOverflowValue) {
  BitVector b;
  EXPECT_THROW(b.append_bits(16, 4), ModelViolation);
}

TEST(BitVector, ReadBitsRejectsPastEnd) {
  BitVector b(10);
  EXPECT_THROW(b.read_bits(5, 6), ModelViolation);
}

TEST(BitVector, FindFirst) {
  BitVector b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(5);
  b.set(130);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_first(6), 130u);
  EXPECT_EQ(b.find_first(131), 200u);
}

TEST(BitVector, FindFirstIteratesAllSetBits) {
  BitVector b(300);
  std::vector<std::size_t> expect = {0, 1, 63, 64, 65, 128, 299};
  for (auto i : expect) b.set(i);
  std::vector<std::size_t> got;
  for (std::size_t i = b.find_first(); i < b.size(); i = b.find_first(i + 1))
    got.push_back(i);
  EXPECT_EQ(got, expect);
}

TEST(BitVector, BitwiseOps) {
  BitVector a = BitVector::from_string("110010");
  BitVector b = BitVector::from_string("011011");
  BitVector o = a;
  o |= b;
  EXPECT_EQ(o.to_string(), "111011");
  BitVector n = a;
  n &= b;
  EXPECT_EQ(n.to_string(), "010010");
  BitVector x = a;
  x ^= b;
  EXPECT_EQ(x.to_string(), "101001");
}

TEST(BitVector, MismatchedSizesThrow) {
  BitVector a(5), b(6);
  EXPECT_THROW(a |= b, ModelViolation);
}

TEST(BitVector, LexOrder) {
  // Index 0 is the most significant position for lex comparison.
  BitVector a = BitVector::from_string("0111");
  BitVector b = BitVector::from_string("1000");
  EXPECT_TRUE(a.lex_less(b));
  EXPECT_FALSE(b.lex_less(a));
  EXPECT_FALSE(a.lex_less(a));
  // Prefix is smaller.
  BitVector p = BitVector::from_string("10");
  BitVector q = BitVector::from_string("100");
  EXPECT_TRUE(p.lex_less(q));
}

TEST(BitVector, StringRoundTrip) {
  const std::string s = "1010011101010101111000001";
  EXPECT_EQ(BitVector::from_string(s).to_string(), s);
}

TEST(BitVector, EqualityIncludesLength) {
  BitVector a(5), b(6);
  EXPECT_FALSE(a == b);
  BitVector c(5);
  EXPECT_TRUE(a == c);
  c.set(3);
  EXPECT_FALSE(a == c);
}

// Property test: BitVector agrees with a reference std::vector<bool> under a
// random op sequence.
TEST(BitVectorProperty, MatchesReferenceImplementation) {
  SplitMix64 rng(0xb17b17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t len = 1 + rng.next_below(300);
    BitVector b(len);
    std::vector<bool> ref(len, false);
    for (int op = 0; op < 200; ++op) {
      const std::size_t i = rng.next_below(len);
      const bool v = rng.next_bool(0.5);
      b.set(i, v);
      ref[i] = v;
    }
    std::size_t pc = 0;
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(b.get(i), ref[i]);
      pc += ref[i];
    }
    EXPECT_EQ(b.popcount(), pc);
  }
}

TEST(BitVectorProperty, AppendReadRandomChunks) {
  SplitMix64 rng(0xfeed);
  for (int trial = 0; trial < 30; ++trial) {
    BitVector b;
    std::vector<std::pair<std::uint64_t, unsigned>> chunks;
    for (int i = 0; i < 40; ++i) {
      const unsigned bits = 1 + static_cast<unsigned>(rng.next_below(64));
      const std::uint64_t v =
          bits == 64 ? rng.next() : rng.next() & ((1ULL << bits) - 1);
      chunks.emplace_back(v, bits);
      b.append_bits(v, bits);
    }
    std::size_t pos = 0;
    for (auto [v, bits] : chunks) {
      EXPECT_EQ(b.read_bits(pos, bits), v);
      pos += bits;
    }
    EXPECT_EQ(pos, b.size());
  }
}

}  // namespace
}  // namespace ccq
