#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/oracles.hpp"

namespace ccq {
namespace {

TEST(Generators, GnpDeterministicPerSeed) {
  Graph a = gen::gnp(20, 0.3, 7);
  Graph b = gen::gnp(20, 0.3, 7);
  Graph c = gen::gnp(20, 0.3, 8);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Generators, GnpExtremes) {
  EXPECT_EQ(gen::gnp(15, 0.0, 1).m(), 0u);
  EXPECT_EQ(gen::gnp(15, 1.0, 1).m(), 15u * 14 / 2);
}

TEST(Generators, GnpDensityRoughlyRight) {
  Graph g = gen::gnp(60, 0.25, 42);
  const double expected = 0.25 * (60.0 * 59 / 2);
  EXPECT_GT(static_cast<double>(g.m()), expected * 0.7);
  EXPECT_LT(static_cast<double>(g.m()), expected * 1.3);
}

TEST(Generators, WeightedGnpWeightsInRange) {
  Graph g = gen::gnp_weighted(25, 0.5, 100, 3);
  EXPECT_TRUE(g.is_weighted());
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.w, 1u);
    EXPECT_LE(e.w, 100u);
  }
}

TEST(Generators, DirectedGnpIsDirected) {
  Graph g = gen::gnp_directed(20, 0.3, 11);
  EXPECT_TRUE(g.is_directed());
  bool found_asym = false;
  for (NodeId u = 0; u < g.n() && !found_asym; ++u)
    for (NodeId v = 0; v < g.n(); ++v)
      if (u != v && g.has_edge(u, v) != g.has_edge(v, u)) {
        found_asym = true;
        break;
      }
  EXPECT_TRUE(found_asym);
}

TEST(Generators, StructuredGraphs) {
  EXPECT_EQ(gen::cycle(7).m(), 7u);
  EXPECT_EQ(gen::path(7).m(), 6u);
  EXPECT_EQ(gen::complete(7).m(), 21u);
  EXPECT_EQ(gen::complete_bipartite(3, 4).m(), 12u);
  EXPECT_EQ(gen::star(9).m(), 8u);
  EXPECT_EQ(gen::empty(5).m(), 0u);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(gen::cycle(7).degree(v), 2u);
}

TEST(Generators, PlantedIndependentSetIsIndependent) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto p = gen::planted_independent_set(20, 5, 0.5, seed);
    EXPECT_EQ(p.witness.size(), 5u);
    EXPECT_TRUE(oracle::is_independent_set(p.graph, p.witness));
  }
}

TEST(Generators, PlantedDominatingSetDominates) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto p = gen::planted_dominating_set(24, 3, 0.1, seed);
    EXPECT_EQ(p.witness.size(), 3u);
    EXPECT_TRUE(oracle::is_dominating_set(p.graph, p.witness));
  }
}

TEST(Generators, PlantedHamiltonianPathIsPath) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto p = gen::planted_hamiltonian_path(15, 0.2, seed);
    EXPECT_TRUE(oracle::is_hamiltonian_path(p.graph, p.witness));
  }
}

TEST(Generators, PlantedColouringIsProper) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto p = gen::planted_k_colourable(22, 4, 0.6, seed);
    EXPECT_TRUE(oracle::is_proper_colouring(p.graph, p.witness, 4));
  }
}

TEST(Generators, PlantedCliqueIsClique) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto p = gen::planted_clique(20, 4, 0.2, seed);
    for (std::size_t a = 0; a < p.witness.size(); ++a)
      for (std::size_t b = a + 1; b < p.witness.size(); ++b)
        EXPECT_TRUE(p.graph.has_edge(p.witness[a], p.witness[b]));
  }
}

TEST(Generators, PlantedCycleIsCycle) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto p = gen::planted_k_cycle(18, 5, 0.15, seed);
    ASSERT_EQ(p.witness.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_TRUE(
          p.graph.has_edge(p.witness[i], p.witness[(i + 1) % 5]));
    }
  }
}

TEST(Generators, PlantedVertexCoverCovers) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto p = gen::planted_vertex_cover(30, 4, 25, seed);
    EXPECT_TRUE(oracle::is_vertex_cover(p.graph, p.witness));
    EXPECT_LE(p.graph.m(), 25u);
  }
}

TEST(Generators, WitnessNodesInRange) {
  auto p = gen::planted_independent_set(16, 6, 0.4, 3);
  for (NodeId v : p.witness) EXPECT_LT(v, 16u);
}

}  // namespace
}  // namespace ccq
