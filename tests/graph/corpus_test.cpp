#include "graph/corpus.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "graph/generators.hpp"
#include "harness/manifest.hpp"
#include "harness/sweep.hpp"
#include "util/check.hpp"

namespace ccq {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// ---- edge-list loader ----------------------------------------------------

TEST(Corpus, EdgeListRoundTrip) {
  Graph g = gen::gnp(32, 0.3, 5);
  const std::string path = tmp_path("rt_plain.edges");
  corpus::save_edge_list(g, path);
  EXPECT_TRUE(corpus::load_edge_list(path) == g);
}

TEST(Corpus, EdgeListRoundTripWeighted) {
  Graph g = gen::gnp_weighted(24, 0.4, 100, 9);
  const std::string path = tmp_path("rt_weighted.edges");
  corpus::save_edge_list(g, path);
  Graph back = corpus::load_edge_list(path);
  EXPECT_TRUE(back.is_weighted());
  EXPECT_TRUE(back == g);
}

TEST(Corpus, EdgeListRoundTripDirected) {
  Graph g = gen::gnp_directed(20, 0.3, 11);
  const std::string path = tmp_path("rt_directed.edges");
  corpus::save_edge_list(g, path);
  Graph back = corpus::load_edge_list(path);
  EXPECT_TRUE(back.is_directed());
  EXPECT_TRUE(back == g);
}

TEST(Corpus, EdgeListCommentsAndBlanksIgnored) {
  Graph g = corpus::parse_edge_list(
      "# corpus sample\n"
      "\n"
      "ccq-edges 4\n"
      "0 1\n"
      "  # indented comment\n"
      "2 3\n",
      "inline");
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 2));
}

TEST(Corpus, EdgeListRejectionTable) {
  // Every malformed input is a ModelViolation, never a silently-wrong graph.
  const char* kBad[] = {
      "0 1\n",                             // missing header
      "ccq-graph 4\n0 1\n",                // wrong magic word
      "ccq-edges\n",                       // n missing
      "ccq-edges four\n",                  // n not a number
      "ccq-edges 4 sparse\n0 1\n",         // unknown header flag
      "ccq-edges 2097152\n",               // n > kMaxNodes
      "ccq-edges 4\n0 4\n",                // endpoint out of range
      "ccq-edges 4\n4 0\n",                // endpoint out of range
      "ccq-edges 4\n2 2\n",                // self loop
      "ccq-edges 4\n0 1\n0 1\n",           // duplicate edge
      "ccq-edges 4\n0 1\n1 0\n",           // duplicate, reversed orientation
      "ccq-edges 4 weighted\n0 1\n",       // weight missing
      "ccq-edges 4\n0 1 7\n",              // weight on unweighted graph
      "ccq-edges 4 weighted\n0 1 0\n",     // zero weight
      "ccq-edges 4 weighted\n0 1 4294967296\n",  // weight overflows u32
      "ccq-edges 4\n0 1 2 3\n",            // trailing tokens
      "ccq-edges 4\n0 -1\n",               // not an unsigned integer
  };
  for (const char* text : kBad) {
    EXPECT_THROW(corpus::parse_edge_list(text, "table"), ModelViolation)
        << "accepted malformed input:\n" << text;
  }
}

// ---- CSR loader ----------------------------------------------------------

struct CsrBytes {
  std::string s;
  CsrBytes& raw(std::string_view t) { s.append(t); return *this; }
  CsrBytes& u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
    return *this;
  }
  CsrBytes& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
    return *this;
  }
};

// The path 0-1-2 as stored CSR arcs (undirected: both endpoint rows).
std::string path3_csr(std::uint32_t flags,
                      const std::vector<std::uint64_t>& row_ptr,
                      const std::vector<std::uint32_t>& col,
                      const std::vector<std::uint32_t>& w = {}) {
  CsrBytes b;
  b.raw("CCQCSR01").u32(3).u32(flags).u64(col.size());
  for (std::uint64_t r : row_ptr) b.u64(r);
  for (std::uint32_t c : col) b.u32(c);
  for (std::uint32_t x : w) b.u32(x);
  return b.s;
}

TEST(Corpus, CsrRoundTrip) {
  Graph g = gen::gnp(40, 0.25, 13);
  const std::string path = tmp_path("rt_plain.csr");
  corpus::save_csr(g, path);
  EXPECT_TRUE(corpus::load_csr(path) == g);
}

TEST(Corpus, CsrRoundTripWeightedAndDirected) {
  for (Graph g : {gen::gnp_weighted(24, 0.4, 50, 3), gen::gnp_directed(20, 0.3, 4)}) {
    const std::string path = tmp_path("rt_flags.csr");
    corpus::save_csr(g, path);
    EXPECT_TRUE(corpus::load_csr(path) == g);
  }
}

TEST(Corpus, EdgeListCsrCrossRoundTrip) {
  // graph -> edge list -> graph -> CSR -> graph preserves identity exactly.
  Graph g = gen::gnp_weighted(32, 0.3, 16, 21);
  const std::string edges = tmp_path("cross.edges");
  const std::string csr = tmp_path("cross.csr");
  corpus::save_edge_list(g, edges);
  Graph via_edges = corpus::load_edge_list(edges);
  corpus::save_csr(via_edges, csr);
  EXPECT_TRUE(corpus::load_csr(csr) == g);
}

TEST(Corpus, CsrAcceptsWellFormed) {
  const std::string path = tmp_path("ok.csr");
  write_file(path, path3_csr(0, {0, 1, 3, 4}, {1, 0, 2, 1}));
  Graph g = corpus::load_csr(path);
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Corpus, CsrRejectionTable) {
  const std::string valid = path3_csr(0, {0, 1, 3, 4}, {1, 0, 2, 1});
  std::vector<std::pair<const char*, std::string>> bad;
  bad.emplace_back("bad magic", "XXQCSR01" + valid.substr(8));
  bad.emplace_back("truncated", valid.substr(0, valid.size() - 1));
  bad.emplace_back("trailing bytes", valid + '\0');
  bad.emplace_back("header only", valid.substr(0, 24));
  bad.emplace_back("unknown flag bit", path3_csr(4, {0, 1, 3, 4}, {1, 0, 2, 1}));
  bad.emplace_back("row_ptr[0] != 0", path3_csr(0, {1, 1, 3, 4}, {1, 0, 2, 1}));
  bad.emplace_back("row_ptr not monotone", path3_csr(0, {0, 3, 1, 4}, {1, 0, 2, 1}));
  bad.emplace_back("row_ptr[n] != nnz", path3_csr(0, {0, 1, 3, 3}, {1, 0, 2, 1}));
  bad.emplace_back("col out of range", path3_csr(0, {0, 1, 3, 4}, {1, 0, 5, 1}));
  bad.emplace_back("self loop", path3_csr(0, {0, 1, 3, 4}, {0, 0, 2, 1}));
  bad.emplace_back("columns unsorted", path3_csr(0, {0, 1, 3, 4}, {1, 2, 0, 1}));
  bad.emplace_back("asymmetric undirected", path3_csr(0, {0, 1, 1, 1}, {1}));
  bad.emplace_back("asymmetric weights",
                   path3_csr(2, {0, 1, 3, 4}, {1, 0, 2, 1}, {5, 9, 1, 1}));
  bad.emplace_back("zero weight",
                   path3_csr(2, {0, 1, 3, 4}, {1, 0, 2, 1}, {0, 0, 1, 1}));
  for (const auto& [what, bytes] : bad) {
    const std::string path = tmp_path("bad.csr");
    write_file(path, bytes);
    EXPECT_THROW(corpus::load_csr(path), ModelViolation)
        << "accepted malformed CSR: " << what;
  }
}

// ---- generators & family registry ----------------------------------------

TEST(Corpus, NewGeneratorsDeterministicPerSeed) {
  Graph a = gen::powerlaw_chung_lu(64, 2.5, 8.0, 7);
  EXPECT_TRUE(a == gen::powerlaw_chung_lu(64, 2.5, 8.0, 7));
  EXPECT_FALSE(a == gen::powerlaw_chung_lu(64, 2.5, 8.0, 8));
  gen::Planted c = gen::planted_communities(64, 4, 0.5, 0.05, 7);
  EXPECT_TRUE(c.graph == gen::planted_communities(64, 4, 0.5, 0.05, 7).graph);
  EXPECT_FALSE(c.graph == gen::planted_communities(64, 4, 0.5, 0.05, 9).graph);
}

TEST(Corpus, PowerlawDensityRoughlyRight) {
  Graph g = gen::powerlaw_chung_lu(256, 2.5, 8.0, 3);
  const double expected = 8.0 * 256 / 2;  // avg_degree * n / 2 edges
  EXPECT_GT(static_cast<double>(g.m()), expected * 0.5);
  EXPECT_LT(static_cast<double>(g.m()), expected * 1.5);
}

TEST(Corpus, FamilyRegistryDeterministic) {
  // Every non-file family is a pure function of (spec, n).
  for (const std::string& name : corpus::family_names()) {
    if (name == "edgelist" || name == "csr") continue;
    corpus::FamilySpec spec;
    spec.name = name;
    spec.seed = 5;
    Graph a = corpus::make_family(spec, 48);
    Graph b = corpus::make_family(spec, 48);
    EXPECT_TRUE(a == b) << "family '" << name << "' not deterministic";
    EXPECT_EQ(a.n(), 48u);
  }
  corpus::FamilySpec unknown;
  unknown.name = "mystery";
  EXPECT_THROW(corpus::make_family(unknown, 16), ModelViolation);
}

TEST(Corpus, FileFamiliesRequireMatchingN) {
  Graph g = gen::gnp(16, 0.4, 2);
  const std::string path = tmp_path("family_n.edges");
  corpus::save_edge_list(g, path);
  corpus::FamilySpec spec;
  spec.name = "edgelist";
  spec.path = path;
  EXPECT_TRUE(corpus::make_family(spec, 16) == g);
  EXPECT_THROW(corpus::make_family(spec, 8), ModelViolation);
}

// ---- manifest parsing & expansion ----------------------------------------

TEST(Corpus, ManifestAxisExpansion) {
  harness::Manifest m = harness::parse_manifest(R"json({
    "name": "grid",
    "trials": 3,
    "cells": [{
      "algorithm": ["routing_direct", "routing_balanced"],
      "family": "gnp", "p": 0.2,
      "n": [16, 32],
      "plane": ["flat", "legacy"],
      "backend": "pooled",
      "chaos": [false, true]
    }]
  })json", "inline");
  EXPECT_EQ(m.trials, 3);
  EXPECT_EQ(m.cells.size(), 16u);  // 2 algos x 2 n x 2 planes x 2 chaos
  std::vector<std::string> ids;
  for (const auto& c : m.cells) ids.push_back(c.id());
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(Corpus, ManifestRejectionTable) {
  const char* kBad[] = {
      R"({"name": "x"})",                                   // no cells
      R"({"name": "x", "cells": [], "bogus": 1})",          // unknown key
      R"({"name": "x", "cells": [{"algorithm": "routing_direct",
          "family": "gnp", "n": 16, "frobnicate": 2}]})",   // unknown cell key
      R"({"name": "x", "cells": [{"algorithm": "nope",
          "family": "gnp", "n": 16}]})",                    // unknown algorithm
      R"({"name": "x", "cells": [{"algorithm": "routing_direct",
          "family": "nope", "n": 16}]})",                   // unknown family
      R"({"name": "x", "cells": [{"algorithm": "routing_direct",
          "family": "gnp", "n": 16, "plane": "warped"}]})", // unknown plane
      R"({"name": "x", "cells": [{"algorithm": "routing_direct",
          "family": "gnp", "n": 0}]})",                     // n out of range
      R"({"name": "x", "trials": 0, "cells": [{"algorithm":
          "routing_direct", "family": "gnp", "n": 16}]})",  // trials range
      R"({"name": "x", "cells": [{"algorithm": "routing_direct",
          "family": "gnp", "n": 16, "p": 1.5}]})",          // probability range
      R"({"name": "x", "cells": [
          {"algorithm": "routing_direct", "family": "gnp", "n": 16},
          {"algorithm": "routing_direct", "family": "gnp", "n": 16}]})",
      // ^ duplicate expanded cell id
      R"({"name": "x", "cells": [{"algorithm": "routing_direct",
          "family": "gnp", "n": 16,)",                      // truncated JSON
  };
  for (const char* text : kBad) {
    EXPECT_THROW(harness::parse_manifest(text, "table"), ModelViolation)
        << "accepted malformed manifest:\n" << text;
  }
}

// ---- end-to-end: cells through the engine with ledger cross-check --------

TEST(Corpus, TwoCellManifestEndToEnd) {
  // run_cell() itself asserts meter == trace-ledger totals and inter-trial
  // agreement; ok == true certifies the cross-check passed for the cell.
  harness::Manifest m = harness::parse_manifest(R"json({
    "name": "e2e",
    "trials": 2,
    "cells": [
      {"algorithm": "routing_balanced", "family": "gnp", "p": 0.3, "n": 32,
       "plane": "flat", "backend": "pooled", "chaos": false},
      {"algorithm": "routing_direct", "family": "powerlaw", "n": 32,
       "plane": "flat", "backend": "pooled", "chaos": true,
       "chaos_dup": 0.01}
    ]
  })json", "inline");
  ASSERT_EQ(m.cells.size(), 2u);
  for (const harness::CellSpec& spec : m.cells) {
    harness::CellResult r = harness::run_cell(spec, m.trials);
    EXPECT_TRUE(r.ok) << spec.id() << ": " << r.fail_reason;
    EXPECT_GT(r.cost.rounds, 0u) << spec.id();
    EXPECT_GT(r.cost.bits, 0u) << spec.id();
    if (spec.chaos) {
      EXPECT_GT(r.faults, 0u) << spec.id();
    } else {
      EXPECT_EQ(r.faults, 0u) << spec.id();
    }
  }
}

TEST(Corpus, CellDeterministicAcrossWorkerCounts) {
  harness::CellSpec spec;
  spec.algorithm = "mm_bool_3d";
  spec.family.name = "gnp";
  spec.family.p = 0.2;
  spec.n = 27;  // perfect cube: exercises the 3D grid path
  for (ExecutionBackend backend :
       {ExecutionBackend::kPooled, ExecutionBackend::kSharded}) {
    spec.backend = backend;
    spec.family.seed = spec.seed = 3;
    EXPECT_EQ(harness::check_worker_determinism(spec), "")
        << harness::backend_name(backend);
  }
}

}  // namespace
}  // namespace ccq
