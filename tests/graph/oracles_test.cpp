#include "graph/oracles.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

// ---------- independent set ----------

TEST(OracleIS, CycleOfFive) {
  Graph c5 = gen::cycle(5);
  EXPECT_TRUE(oracle::independent_set(c5, 2).has_value());
  EXPECT_FALSE(oracle::independent_set(c5, 3).has_value());
  EXPECT_EQ(oracle::max_independent_set(c5).size(), 2u);
}

TEST(OracleIS, CompleteGraphHasOnlySingletons) {
  Graph k6 = gen::complete(6);
  EXPECT_TRUE(oracle::independent_set(k6, 1).has_value());
  EXPECT_FALSE(oracle::independent_set(k6, 2).has_value());
}

TEST(OracleIS, EmptyGraphAllIndependent) {
  Graph e = gen::empty(7);
  auto w = oracle::independent_set(e, 7);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(oracle::is_independent_set(e, *w));
}

TEST(OracleIS, WitnessIsValid) {
  Graph g = gen::gnp(18, 0.4, 21);
  for (unsigned k = 1; k <= 5; ++k) {
    if (auto w = oracle::independent_set(g, k)) {
      EXPECT_EQ(w->size(), k);
      EXPECT_TRUE(oracle::is_independent_set(g, *w));
    }
  }
}

TEST(OracleIS, FindsPlanted) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto p = gen::planted_independent_set(18, 5, 0.6, seed);
    EXPECT_TRUE(oracle::independent_set(p.graph, 5).has_value());
  }
}

// ---------- dominating set ----------

TEST(OracleDS, StarDominatedByCenter) {
  Graph s = gen::star(10);
  auto w = oracle::dominating_set(s, 1);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ((*w)[0], 0u);
}

TEST(OracleDS, EmptyGraphNeedsAllNodes) {
  Graph e = gen::empty(5);
  EXPECT_FALSE(oracle::dominating_set(e, 4).has_value());
  EXPECT_TRUE(oracle::dominating_set(e, 5).has_value());
}

TEST(OracleDS, CycleDominationNumber) {
  // γ(C_9) = 3.
  Graph c9 = gen::cycle(9);
  EXPECT_FALSE(oracle::dominating_set(c9, 2).has_value());
  EXPECT_TRUE(oracle::dominating_set(c9, 3).has_value());
  EXPECT_EQ(oracle::min_dominating_set(c9).size(), 3u);
}

TEST(OracleDS, WitnessDominates) {
  Graph g = gen::gnp(16, 0.25, 5);
  auto w = oracle::min_dominating_set(g);
  EXPECT_TRUE(oracle::is_dominating_set(g, w));
}

// ---------- vertex cover ----------

TEST(OracleVC, PathCover) {
  // Minimum VC of P5 (5 nodes, 4 edges) is 2.
  Graph p = gen::path(5);
  EXPECT_FALSE(oracle::vertex_cover(p, 1).has_value());
  EXPECT_TRUE(oracle::vertex_cover(p, 2).has_value());
  EXPECT_EQ(oracle::min_vertex_cover(p).size(), 2u);
}

TEST(OracleVC, CompleteGraphNeedsAllButOne) {
  Graph k5 = gen::complete(5);
  EXPECT_FALSE(oracle::vertex_cover(k5, 3).has_value());
  EXPECT_TRUE(oracle::vertex_cover(k5, 4).has_value());
}

TEST(OracleVC, WitnessCovers) {
  Graph g = gen::gnp(14, 0.3, 12);
  auto w = oracle::min_vertex_cover(g);
  EXPECT_TRUE(oracle::is_vertex_cover(g, w));
}

// Gallai identity: α(G) + τ(G) = n.
TEST(OracleProperty, GallaiIdentity) {
  SplitMix64 rng(0xa11a1);
  for (int t = 0; t < 8; ++t) {
    Graph g = gen::gnp(13, 0.2 + 0.1 * t, rng.next());
    const auto alpha = oracle::max_independent_set(g).size();
    const auto tau = oracle::min_vertex_cover(g).size();
    EXPECT_EQ(alpha + tau, g.n());
  }
}

// A maximal independent set is dominating, so γ ≤ α always; and any VC's
// complement is an IS.
TEST(OracleProperty, DominationAtMostIndependence) {
  SplitMix64 rng(0xd0d0);
  for (int t = 0; t < 8; ++t) {
    Graph g = gen::gnp(12, 0.3, rng.next());
    if (!oracle::is_connected(g)) continue;
    EXPECT_LE(oracle::min_dominating_set(g).size(),
              oracle::max_independent_set(g).size());
  }
}

// ---------- colouring ----------

TEST(OracleCol, BipartiteIsTwoColourable) {
  Graph b = gen::complete_bipartite(4, 5);
  EXPECT_FALSE(oracle::k_colouring(b, 1).has_value());
  auto c = oracle::k_colouring(b, 2);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(oracle::is_proper_colouring(b, *c, 2));
}

TEST(OracleCol, OddCycleNeedsThree) {
  Graph c7 = gen::cycle(7);
  EXPECT_FALSE(oracle::k_colouring(c7, 2).has_value());
  EXPECT_TRUE(oracle::k_colouring(c7, 3).has_value());
}

TEST(OracleCol, CompleteNeedsN) {
  Graph k5 = gen::complete(5);
  EXPECT_FALSE(oracle::k_colouring(k5, 4).has_value());
  EXPECT_TRUE(oracle::k_colouring(k5, 5).has_value());
}

TEST(OracleCol, PlantedIsColourable) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto p = gen::planted_k_colourable(16, 3, 0.5, seed);
    auto c = oracle::k_colouring(p.graph, 3);
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(oracle::is_proper_colouring(p.graph, *c, 3));
  }
}

// ---------- Hamiltonian path ----------

TEST(OracleHam, PathGraphHasOne) {
  auto w = oracle::hamiltonian_path(gen::path(8));
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(oracle::is_hamiltonian_path(gen::path(8), *w));
}

TEST(OracleHam, StarHasNone) {
  EXPECT_FALSE(oracle::hamiltonian_path(gen::star(5)).has_value());
}

TEST(OracleHam, DisconnectedHasNone) {
  Graph g = Graph::undirected(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  EXPECT_FALSE(oracle::hamiltonian_path(g).has_value());
}

TEST(OracleHam, FindsPlanted) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto p = gen::planted_hamiltonian_path(12, 0.1, seed);
    auto w = oracle::hamiltonian_path(p.graph);
    ASSERT_TRUE(w.has_value());
    EXPECT_TRUE(oracle::is_hamiltonian_path(p.graph, *w));
  }
}

// ---------- cliques, cycles, paths, subgraphs ----------

TEST(OracleClique, TrianglesInK4) {
  Graph k4 = gen::complete(4);
  EXPECT_TRUE(oracle::k_clique(k4, 3).has_value());
  EXPECT_TRUE(oracle::k_clique(k4, 4).has_value());
  EXPECT_FALSE(oracle::k_clique(k4, 5).has_value());
}

TEST(OracleClique, TriangleFreeBipartite) {
  EXPECT_FALSE(oracle::k_clique(gen::complete_bipartite(5, 5), 3).has_value());
}

TEST(OracleCycle, ExactLengthRequired) {
  Graph c6 = gen::cycle(6);
  EXPECT_TRUE(oracle::k_cycle(c6, 6).has_value());
  EXPECT_FALSE(oracle::k_cycle(c6, 3).has_value());
  EXPECT_FALSE(oracle::k_cycle(c6, 4).has_value());
  EXPECT_FALSE(oracle::k_cycle(c6, 5).has_value());
}

TEST(OracleCycle, WitnessIsClosedWalk) {
  auto p = gen::planted_k_cycle(14, 5, 0.2, 4);
  auto w = oracle::k_cycle(p.graph, 5);
  ASSERT_TRUE(w.has_value());
  for (std::size_t i = 0; i < w->size(); ++i)
    EXPECT_TRUE(p.graph.has_edge((*w)[i], (*w)[(i + 1) % w->size()]));
}

TEST(OraclePath, PathLengths) {
  Graph p6 = gen::path(6);
  for (unsigned k = 1; k <= 6; ++k)
    EXPECT_TRUE(oracle::k_path(p6, k).has_value()) << k;
  EXPECT_FALSE(oracle::k_path(p6, 7).has_value());
}

TEST(OracleSubgraph, TriangleInPlantedClique) {
  auto p = gen::planted_clique(15, 4, 0.1, 8);
  auto img = oracle::subgraph(p.graph, gen::complete(3));
  ASSERT_TRUE(img.has_value());
  EXPECT_TRUE(p.graph.has_edge((*img)[0], (*img)[1]));
  EXPECT_TRUE(p.graph.has_edge((*img)[1], (*img)[2]));
  EXPECT_TRUE(p.graph.has_edge((*img)[0], (*img)[2]));
}

TEST(OracleSubgraph, PatternLargerThanHost) {
  EXPECT_FALSE(oracle::subgraph(gen::complete(3), gen::complete(4)));
}

TEST(OracleSubgraph, AgreesWithKCliqueOracle) {
  SplitMix64 rng(0x5b);
  for (int t = 0; t < 10; ++t) {
    Graph g = gen::gnp(12, 0.4, rng.next());
    EXPECT_EQ(oracle::subgraph(g, gen::complete(4)).has_value(),
              oracle::k_clique(g, 4).has_value());
  }
}

// ---------- shortest paths ----------

TEST(OracleSssp, UnweightedPathDistances) {
  auto d = oracle::sssp(gen::path(6), 0);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(d[v], v);
}

TEST(OracleSssp, WeightedPicksLightRoute) {
  Graph g = Graph::undirected(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(0, 2, 5);
  auto d = oracle::sssp(g, 0);
  EXPECT_EQ(d[2], 2u);
}

TEST(OracleSssp, UnreachableIsInf) {
  Graph g = Graph::undirected(4);
  g.add_edge(0, 1);
  auto d = oracle::sssp(g, 0);
  EXPECT_EQ(d[2], oracle::kInfDist);
  EXPECT_EQ(d[3], oracle::kInfDist);
}

TEST(OracleApsp, MatchesSsspRows) {
  Graph g = gen::gnp_weighted(14, 0.3, 10, 31);
  auto all = oracle::apsp(g);
  for (NodeId s = 0; s < g.n(); ++s) {
    auto row = oracle::sssp(g, s);
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_EQ(all[static_cast<std::size_t>(s) * g.n() + v], row[v]);
    }
  }
}

TEST(OracleApsp, DirectedRespectsOrientation) {
  Graph g = Graph::directed(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  auto d = oracle::apsp(g);
  EXPECT_EQ(d[0 * 3 + 2], 2u);
  EXPECT_EQ(d[2 * 3 + 0], oracle::kInfDist);
}

TEST(OracleConnectivity, DetectsComponents) {
  EXPECT_TRUE(oracle::is_connected(gen::cycle(5)));
  Graph g = Graph::undirected(4);
  g.add_edge(0, 1);
  EXPECT_FALSE(oracle::is_connected(g));
}

}  // namespace
}  // namespace ccq
