#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

TEST(Graph, UndirectedEdgesAreSymmetric) {
  Graph g = Graph::undirected(5);
  g.add_edge(1, 3);
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(3, 1));
  EXPECT_EQ(g.m(), 1u);
}

TEST(Graph, DirectedEdgesAreAsymmetric) {
  Graph g = Graph::directed(5);
  g.add_edge(1, 3);
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_FALSE(g.has_edge(3, 1));
  EXPECT_EQ(g.m(), 1u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g = Graph::undirected(3);
  EXPECT_THROW(g.add_edge(2, 2), ModelViolation);
}

TEST(Graph, OutOfRangeRejected) {
  Graph g = Graph::undirected(3);
  EXPECT_THROW(g.add_edge(0, 3), ModelViolation);
}

TEST(Graph, RemoveEdge) {
  Graph g = Graph::undirected(4);
  g.add_edge(0, 1);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.m(), 0u);
}

TEST(Graph, WeightsDefaultToOne) {
  Graph g = Graph::undirected(4);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.is_weighted());
  EXPECT_EQ(g.weight(0, 1), 1u);
}

TEST(Graph, ExplicitWeightsSymmetric) {
  Graph g = Graph::undirected(4);
  g.add_edge(0, 1, 7);
  EXPECT_TRUE(g.is_weighted());
  EXPECT_EQ(g.weight(0, 1), 7u);
  EXPECT_EQ(g.weight(1, 0), 7u);
}

TEST(Graph, WeightOfNonEdgeThrows) {
  Graph g = Graph::undirected(4);
  EXPECT_THROW(g.weight(0, 1), ModelViolation);
}

TEST(Graph, MixedWeightedUnweightedEdges) {
  Graph g = Graph::undirected(4);
  g.add_edge(0, 1, 9);
  g.add_edge(2, 3);  // unweighted add after weights exist
  EXPECT_EQ(g.weight(2, 3), 1u);
  EXPECT_EQ(g.weight(0, 1), 9u);
}

TEST(Graph, NeighboursSortedAndComplete) {
  Graph g = Graph::undirected(6);
  g.add_edge(2, 5);
  g.add_edge(2, 0);
  g.add_edge(2, 4);
  EXPECT_EQ(g.neighbours(2), (std::vector<NodeId>{0, 4, 5}));
  EXPECT_EQ(g.degree(2), 3u);
}

TEST(Graph, EdgesListsEachEdgeOnce) {
  Graph g = Graph::undirected(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  auto es = g.edges();
  ASSERT_EQ(es.size(), 3u);
  for (const auto& e : es) EXPECT_LT(e.u, e.v);
}

TEST(Graph, ComplementInvolution) {
  SplitMix64 rng(5);
  Graph g = gen::gnp(12, 0.4, rng.next());
  Graph cc = g.complement().complement();
  EXPECT_TRUE(g == cc);
}

TEST(Graph, ComplementEdgeCount) {
  Graph g = gen::gnp(10, 0.3, 99);
  const std::size_t total = 10 * 9 / 2;
  EXPECT_EQ(g.m() + g.complement().m(), total);
}

TEST(Graph, InducedSubgraph) {
  Graph g = Graph::undirected(6);
  g.add_edge(0, 2);
  g.add_edge(2, 4);
  g.add_edge(4, 5);
  Graph h = g.induced({0, 2, 4});
  EXPECT_EQ(h.n(), 3u);
  EXPECT_TRUE(h.has_edge(0, 1));   // 0-2
  EXPECT_TRUE(h.has_edge(1, 2));   // 2-4
  EXPECT_FALSE(h.has_edge(0, 2));  // 0-4 absent
}

TEST(Graph, InducedPreservesWeights) {
  Graph g = Graph::undirected(4);
  g.add_edge(1, 3, 42);
  Graph h = g.induced({1, 3});
  EXPECT_EQ(h.weight(0, 1), 42u);
}

TEST(Graph, RowIsAdjacencyBitset) {
  Graph g = Graph::undirected(8);
  g.add_edge(3, 1);
  g.add_edge(3, 6);
  const BitVector& r = g.row(3);
  EXPECT_EQ(r.size(), 8u);
  EXPECT_TRUE(r.get(1));
  EXPECT_TRUE(r.get(6));
  EXPECT_EQ(r.popcount(), 2u);
}

}  // namespace
}  // namespace ccq
