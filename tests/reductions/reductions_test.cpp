#include <gtest/gtest.h>

#include "algebra/mm.hpp"
#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "reductions/bmm_to_apsp.hpp"
#include "reductions/complement.hpp"
#include "reductions/is_to_ds.hpp"
#include "reductions/kcol_to_maxis.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

// ---------- Theorem 10 / Figure 2 gadget ----------

TEST(IsToDsGadget, NodeCountMatchesPaperBound) {
  for (unsigned k : {1u, 2u, 3u, 4u}) {
    IsToDsGadget gadget(10, k);
    EXPECT_LE(gadget.total_nodes(), (k * k + k + 2) * 10u) << k;
    EXPECT_EQ(gadget.total_nodes(),
              (k + k * (k - 1) / 2) * 10u + 2 * k);
  }
}

TEST(IsToDsGadget, SpecialNodesOnlyTouchTheirClique) {
  Graph g = gen::gnp(6, 0.4, 5);
  IsToDsGadget gadget(6, 3);
  Graph gp = gadget.build(g);
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ(gp.degree(gadget.special_x(i)), 6u);
    EXPECT_EQ(gp.degree(gadget.special_y(i)), 6u);
    for (NodeId v = 0; v < 6; ++v) {
      EXPECT_TRUE(gp.has_edge(gadget.special_x(i), gadget.clique_node(i, v)));
    }
  }
}

TEST(IsToDsGadget, GadgetAdjacencyMatchesFigure2) {
  Graph g = Graph::undirected(4);
  g.add_edge(0, 1);
  IsToDsGadget gadget(4, 2);
  Graph gp = gadget.build(g);
  // v_0 = node 0 in K_0: adjacent to u_{0,1} for all u != 0.
  for (NodeId u = 1; u < 4; ++u)
    EXPECT_TRUE(gp.has_edge(gadget.clique_node(0, 0),
                            gadget.gadget_node(0, 1, u)));
  EXPECT_FALSE(gp.has_edge(gadget.clique_node(0, 0),
                           gadget.gadget_node(0, 1, 0)));
  // v_1 = node 0 in K_1: adjacent to u_{0,1} for non-neighbours u of 0:
  // u ∈ {2,3} (1 is a neighbour).
  EXPECT_FALSE(gp.has_edge(gadget.clique_node(1, 0),
                           gadget.gadget_node(0, 1, 1)));
  EXPECT_TRUE(gp.has_edge(gadget.clique_node(1, 0),
                          gadget.gadget_node(0, 1, 2)));
  EXPECT_TRUE(gp.has_edge(gadget.clique_node(1, 0),
                          gadget.gadget_node(0, 1, 3)));
}

// The structural iff of Theorem 10, checked with exact oracles.
TEST(IsToDsGadget, IffPropertyOnRandomGraphs) {
  SplitMix64 rng(0xf16);
  for (int t = 0; t < 6; ++t) {
    const unsigned k = 2;
    Graph g = gen::gnp(7, 0.3 + 0.1 * t, rng.next());
    IsToDsGadget gadget(7, k);
    Graph gp = gadget.build(g);
    const bool has_is = oracle::independent_set(g, k).has_value();
    const bool has_ds = oracle::dominating_set(gp, k).has_value();
    EXPECT_EQ(has_is, has_ds) << t;
  }
}

TEST(IsToDsGadget, ForwardWitnessDominates) {
  auto p = gen::planted_independent_set(8, 3, 0.5, 11);
  IsToDsGadget gadget(8, 3);
  Graph gp = gadget.build(p.graph);
  auto ds = gadget.witness_forward(p.witness);
  EXPECT_TRUE(oracle::is_dominating_set(gp, ds));
}

TEST(IsToDsGadget, BackWitnessIsIndependent) {
  SplitMix64 rng(0xbac);
  for (int t = 0; t < 4; ++t) {
    Graph g = gen::gnp(7, 0.35, rng.next());
    IsToDsGadget gadget(7, 2);
    Graph gp = gadget.build(g);
    auto ds = oracle::dominating_set(gp, 2);
    if (!ds) continue;
    auto is = gadget.witness_back(*ds);
    EXPECT_EQ(is.size(), 2u);
    EXPECT_TRUE(oracle::is_independent_set(g, is));
  }
}

TEST(IsToDsReduction, EndToEndAgainstOracle) {
  SplitMix64 rng(0xe2e);
  for (int t = 0; t < 4; ++t) {
    Graph g = gen::gnp(8, 0.4 + 0.1 * t, rng.next());
    auto r = k_independent_set_via_ds_clique(g, 2);
    EXPECT_EQ(r.found, oracle::independent_set(g, 2).has_value()) << t;
    if (r.found) {
      EXPECT_TRUE(oracle::is_independent_set(g, r.witness));
    }
  }
}

TEST(IsToDsReduction, PlantedIndependentSets) {
  auto p = gen::planted_independent_set(10, 3, 0.55, 21);
  auto r = k_independent_set_via_ds_clique(p.graph, 3);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(oracle::is_independent_set(p.graph, r.witness));
}

// ---------- k-COL → MaxIS ----------

TEST(KColGadget, BlowUpStructure) {
  Graph g = gen::path(3);
  KColGadget gadget(3, 2);
  Graph gp = gadget.build(g);
  EXPECT_EQ(gp.n(), 6u);
  // Copy cliques.
  EXPECT_TRUE(gp.has_edge(gadget.copy_node(0, 0), gadget.copy_node(0, 1)));
  // Same-colour copies of adjacent vertices connected.
  EXPECT_TRUE(gp.has_edge(gadget.copy_node(0, 0), gadget.copy_node(1, 0)));
  EXPECT_FALSE(gp.has_edge(gadget.copy_node(0, 0), gadget.copy_node(1, 1)));
  // Non-adjacent originals stay unconnected.
  EXPECT_FALSE(gp.has_edge(gadget.copy_node(0, 0), gadget.copy_node(2, 0)));
}

TEST(KColGadget, AlphaEqualsNIffColourable) {
  SplitMix64 rng(0xc01);
  for (int t = 0; t < 5; ++t) {
    Graph g = gen::gnp(6, 0.45, rng.next());
    for (unsigned k : {2u, 3u}) {
      KColGadget gadget(6, k);
      Graph gp = gadget.build(g);
      const bool colourable = oracle::k_colouring(g, k).has_value();
      const bool alpha_n = oracle::independent_set(gp, 6).has_value();
      EXPECT_EQ(colourable, alpha_n) << "k=" << k << " t=" << t;
    }
  }
}

TEST(KColReduction, EndToEnd) {
  // Odd cycle: 2-colouring fails, 3 works; recovered colouring is proper.
  Graph c5 = gen::cycle(5);
  EXPECT_FALSE(k_colouring_via_maxis_clique(c5, 2).colourable);
  auto r = k_colouring_via_maxis_clique(c5, 3);
  EXPECT_TRUE(r.colourable);
  EXPECT_TRUE(oracle::is_proper_colouring(c5, r.colouring, 3));
}

TEST(KColReduction, PlantedColourable) {
  auto p = gen::planted_k_colourable(7, 3, 0.6, 9);
  auto r = k_colouring_via_maxis_clique(p.graph, 3);
  EXPECT_TRUE(r.colourable);
  EXPECT_TRUE(oracle::is_proper_colouring(p.graph, r.colouring, 3));
}

// ---------- BMM → (2−ε)-APSP ----------

TEST(BmmToApsp, GadgetDistancesAreTwoOrAtLeastFour) {
  SplitMix64 rng(0xb2a);
  Matrix<std::uint8_t> a(5, 6, 0), b(6, 4, 0);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 6; ++j) a.at(i, j) = rng.next_bool(0.3);
  for (std::size_t j = 0; j < 6; ++j)
    for (std::size_t k = 0; k < 4; ++k) b.at(j, k) = rng.next_bool(0.3);
  BmmToApspGadget gadget(5, 6, 4);
  Graph g = gadget.build(a, b);
  auto dist = oracle::apsp(g);
  auto prod = mm_naive<BoolSemiring>(a, b);
  const std::size_t n = gadget.total_nodes();
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t k = 0; k < 4; ++k) {
      const auto d = dist[gadget.layer_i(i) * n + gadget.layer_k(k)];
      if (prod.at(i, k)) {
        EXPECT_EQ(d, 2u);
      } else {
        EXPECT_GE(d, 4u);
      }
    }
}

TEST(BmmToApsp, EndToEndMatchesDirectProduct) {
  SplitMix64 rng(0xe2d);
  for (int t = 0; t < 3; ++t) {
    Matrix<std::uint8_t> a(6, 6, 0), b(6, 6, 0);
    for (std::size_t i = 0; i < 6; ++i)
      for (std::size_t j = 0; j < 6; ++j) {
        a.at(i, j) = rng.next_bool(0.35);
        b.at(i, j) = rng.next_bool(0.35);
      }
    auto r = bmm_via_apsp_clique(a, b);
    EXPECT_EQ(r.product, mm_naive<BoolSemiring>(a, b)) << t;
  }
}

// ---------- complementation ----------

TEST(Complement, ThreeIsViaTriangle) {
  SplitMix64 rng(0x315);
  for (int t = 0; t < 5; ++t) {
    Graph g = gen::gnp(14, 0.55, rng.next());
    auto r = three_is_via_triangle_clique(g);
    EXPECT_EQ(r.found, oracle::independent_set(g, 3).has_value()) << t;
    if (r.found) {
      EXPECT_TRUE(oracle::is_independent_set(g, r.witness));
    }
  }
}

TEST(Complement, MinVcViaMaxIs) {
  Graph g = gen::gnp(12, 0.3, 77);
  auto r = min_vertex_cover_via_maxis_clique(g);
  EXPECT_TRUE(oracle::is_vertex_cover(g, r.witness));
  EXPECT_EQ(r.witness.size(), oracle::min_vertex_cover(g).size());
}

}  // namespace
}  // namespace ccq
