// ccqd protocol + server tests (src/service/). The contract under test:
// every frame the server reads gets exactly one *named* error or result
// response — malformed frames, oversized length prefixes, garbage JSON,
// bad jobs, full queues and drains are all answered by code, and none of
// them crash, hang, or poison a worker. Plus the warm-cache paths: many
// clients hammering one cache key get bit-identical results, and a job
// replayed through the daemon equals the library path.

#include "service/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "graph/corpus.hpp"
#include "harness/sweep.hpp"
#include "service/engine_cache.hpp"
#include "service/jobs.hpp"
#include "service/protocol.hpp"
#include "util/json.hpp"

namespace ccq::service {
namespace {

constexpr const char* kGoodJob =
    "{\"algorithm\": \"routing_balanced\", \"family\": \"gnp\", "
    "\"p\": 0.25, \"n\": 16, \"plane\": \"flat\", \"backend\": \"pooled\", "
    "\"chaos\": false}";

std::string submit_body(const std::string& job) {
  return "{\"type\": \"submit\", \"job\": " + job + "}";
}

// Unique-per-test socket path (tests may run in parallel processes).
std::string test_socket(const char* tag) {
  return "/tmp/ccqd_test_" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

Server::Options base_options(const char* tag) {
  Server::Options opts;
  opts.unix_path = test_socket(tag);
  opts.executors = 2;
  opts.queue_capacity = 8;
  opts.cache_sessions = 4;
  return opts;
}

// Parse a response and return its "type"; for errors also outputs the code.
std::string response_type(const std::string& payload,
                          std::string* code = nullptr) {
  const json::Value v = json::parse(payload, "response");
  const json::Value* type = v.find("type");
  EXPECT_NE(type, nullptr) << payload;
  if (type == nullptr) return "";
  if (code != nullptr) {
    const json::Value* c = v.find("code");
    *code = c != nullptr ? c->str : "";
  }
  return type->str;
}

TEST(Protocol, PingPongAndStats) {
  Server server(base_options("ping"));
  server.start();
  Client client(server.options().unix_path);
  EXPECT_EQ(response_type(client.request("{\"type\": \"ping\"}")), "pong");
  const std::string stats = client.request("{\"type\": \"stats\"}");
  EXPECT_EQ(response_type(stats), "stats");
  const json::Value v = json::parse(stats, "stats");
  EXPECT_EQ(v.find("queue_depth")->num, 0.0);
  server.drain();
}

TEST(Protocol, MalformedJsonIsNamedNotFatal) {
  Server server(base_options("json"));
  server.start();
  Client client(server.options().unix_path);
  std::string code;
  EXPECT_EQ(response_type(client.request("{not json"), &code), "error");
  EXPECT_EQ(code, kErrBadJson);
  // The connection survives a parse error — framing was intact.
  EXPECT_EQ(response_type(client.request("{\"type\": \"ping\"}")), "pong");
  server.drain();
}

TEST(Protocol, BadRequestsAndUnknownTypes) {
  Server server(base_options("badreq"));
  server.start();
  Client client(server.options().unix_path);
  std::string code;
  EXPECT_EQ(response_type(client.request("[1, 2]"), &code), "error");
  EXPECT_EQ(code, kErrBadRequest);
  EXPECT_EQ(response_type(client.request("{\"x\": 1}"), &code), "error");
  EXPECT_EQ(code, kErrBadRequest);
  EXPECT_EQ(response_type(client.request("{\"type\": \"frobnicate\"}"), &code),
            "error");
  EXPECT_EQ(code, kErrUnknownType);
  EXPECT_EQ(response_type(client.request("{\"type\": \"submit\"}"), &code),
            "error");
  EXPECT_EQ(code, kErrBadRequest);  // submit without an object-valued job
  server.drain();
}

TEST(Protocol, BadJobsAreNamed) {
  Server server(base_options("badjob"));
  server.start();
  Client client(server.options().unix_path);
  std::string code;
  // Missing required keys.
  EXPECT_EQ(response_type(
                client.request(submit_body("{\"algorithm\": \"nope\"}")),
                &code),
            "error");
  EXPECT_EQ(code, kErrBadJob);
  // Axis arrays are manifest syntax, not job syntax: a job is one cell.
  EXPECT_EQ(
      response_type(client.request(submit_body(
                        "{\"algorithm\": \"routing_balanced\", \"family\": "
                        "\"gnp\", \"p\": 0.25, \"n\": [16, 32], \"plane\": "
                        "\"flat\", \"backend\": \"pooled\", "
                        "\"chaos\": false}")),
                    &code),
      "error");
  EXPECT_EQ(code, kErrBadJob);
  // Unknown algorithm names are caught at cell-parse time, like manifests.
  EXPECT_EQ(
      response_type(client.request(submit_body(
                        "{\"algorithm\": \"no_such_algorithm\", \"family\": "
                        "\"gnp\", \"p\": 0.25, \"n\": 16, \"plane\": "
                        "\"flat\", \"backend\": \"pooled\", "
                        "\"chaos\": false}")),
                    &code),
      "error");
  EXPECT_EQ(code, kErrBadJob);
  // A job that parses but fails in the executor (edge list file that does
  // not exist) must be a named job_failed response, not a dead worker.
  EXPECT_EQ(
      response_type(client.request(submit_body(
                        "{\"algorithm\": \"routing_balanced\", \"family\": "
                        "\"edgelist\", \"path\": \"/nonexistent.edges\", "
                        "\"n\": 16, \"plane\": \"flat\", \"backend\": "
                        "\"pooled\", \"chaos\": false}")),
                    &code),
      "error");
  EXPECT_EQ(code, kErrJobFailed);
  // The server still works after all of the above.
  EXPECT_EQ(response_type(client.request(submit_body(kGoodJob))), "result");
  server.drain();
}

TEST(Protocol, OversizedLengthPrefixIsRefused) {
  Server server(base_options("oversize"));
  server.start();
  Client client(server.options().unix_path);
  const int fd = client.fd();
  // Declare a 256 MiB frame; the server must refuse before buffering it.
  const unsigned char prefix[4] = {0x10, 0x00, 0x00, 0x00};
  ASSERT_EQ(::send(fd, prefix, sizeof prefix, MSG_NOSIGNAL), 4);
  std::string response;
  ASSERT_EQ(read_frame(fd, &response), FrameStatus::kOk);
  std::string code;
  EXPECT_EQ(response_type(response, &code), "error");
  EXPECT_EQ(code, kErrFrameTooLarge);
  // Framing is untrusted after that: the server closes the connection.
  std::string next;
  EXPECT_EQ(read_frame(fd, &next), FrameStatus::kClosed);
  // A new connection is unaffected.
  Client fresh(server.options().unix_path);
  EXPECT_EQ(response_type(fresh.request("{\"type\": \"ping\"}")), "pong");
  server.drain();
}

TEST(Protocol, TruncatedFramesDoNotWedgeTheServer) {
  Server server(base_options("trunc"));
  server.start();
  {
    // Half a length prefix, then hang up.
    Client client(server.options().unix_path);
    const unsigned char half[2] = {0x00, 0x00};
    ASSERT_EQ(::send(client.fd(), half, sizeof half, MSG_NOSIGNAL), 2);
  }
  {
    // A full prefix declaring 100 bytes, then only 3 bytes, then hang up.
    Client client(server.options().unix_path);
    const unsigned char prefix[4] = {0x00, 0x00, 0x00, 0x64};
    ASSERT_EQ(::send(client.fd(), prefix, sizeof prefix, MSG_NOSIGNAL), 4);
    ASSERT_EQ(::send(client.fd(), "abc", 3, MSG_NOSIGNAL), 3);
  }
  // The server is still fully alive.
  Client client(server.options().unix_path);
  EXPECT_EQ(response_type(client.request(submit_body(kGoodJob))), "result");
  const Server::Stats stats = server.stats();
  EXPECT_GE(stats.protocol_errors, 1u);
  server.drain();
}

TEST(Protocol, MidJobClientDisconnectDoesNotKillTheWorker) {
  Server::Options opts = base_options("midjob");
  opts.job_delay_ms = 100;  // hold the job so the disconnect lands mid-run
  Server server(opts);
  server.start();
  {
    Client client(server.options().unix_path);
    ASSERT_TRUE(write_frame(client.fd(), submit_body(kGoodJob)));
    // Destructor closes the socket with the job still queued/running.
  }
  // Give the executor time to finish the orphaned job and hit the dead
  // socket, then prove the worker survived by running another job.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Client client(server.options().unix_path);
  EXPECT_EQ(response_type(client.request(submit_body(kGoodJob))), "result");
  EXPECT_GE(server.stats().jobs_ok, 1u);
  server.drain();
}

TEST(Protocol, QueueFullIsRejectedNotParked) {
  Server::Options opts = base_options("quefull");
  opts.executors = 1;
  opts.queue_capacity = 1;
  opts.job_delay_ms = 150;  // the single executor sits on the first job
  Server server(opts);
  server.start();

  // Enough concurrent submits that admission control must trip: 1 can run,
  // 1 can queue, the rest must be answered queue_full immediately.
  constexpr int kClients = 6;
  std::atomic<int> results{0}, queue_full{0}, other{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      Client client(server.options().unix_path);
      std::string code;
      const std::string type =
          response_type(client.request(submit_body(kGoodJob)), &code);
      if (type == "result") {
        ++results;
      } else if (code == kErrQueueFull) {
        ++queue_full;
      } else {
        ++other;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every client got exactly one answer (the loop above would hang
  // otherwise); with a 1-deep queue and one delayed executor at least one
  // submit must have been rejected, and rejected ones were answered fast.
  EXPECT_EQ(results + queue_full + other, kClients);
  EXPECT_GE(results.load(), 1);
  EXPECT_GE(queue_full.load(), 1);
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(server.stats().jobs_rejected,
            static_cast<std::uint64_t>(queue_full.load()));
  server.drain();
}

TEST(Protocol, ConcurrentClientsOnOneWarmKeyAgreeBitForBit) {
  Server server(base_options("warmkey"));
  server.start();
  constexpr int kClients = 8;
  constexpr int kJobsEach = 4;
  std::mutex mu;
  std::set<std::string> fingerprints;
  std::atomic<int> results{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      Client client(server.options().unix_path);
      for (int j = 0; j < kJobsEach; ++j) {
        const std::string response =
            client.request(submit_body(kGoodJob));
        ASSERT_EQ(response_type(response), "result") << response;
        const json::Value v = json::parse(response, "result");
        std::lock_guard<std::mutex> lk(mu);
        fingerprints.insert(v.find("output_fp")->str + "/" +
                            v.find("ledger_fp")->str);
        ++results;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(results.load(), kClients * kJobsEach);
  // One cache key, one result — every job measured the identical bits.
  EXPECT_EQ(fingerprints.size(), 1u);
  const Server::Stats stats = server.stats();
  EXPECT_GT(stats.cache.hits, 0u);
  EXPECT_EQ(stats.jobs_ok, static_cast<std::uint64_t>(kClients * kJobsEach));
  server.drain();
}

TEST(Protocol, DrainRejectsNewSubmitsAndFinishesQueuedOnes) {
  Server::Options opts = base_options("drain");
  opts.executors = 1;
  opts.job_delay_ms = 200;
  Server server(opts);
  server.start();

  // A slow job in flight...
  std::thread slow([&] {
    Client client(server.options().unix_path);
    EXPECT_EQ(response_type(client.request(submit_body(kGoodJob))), "result");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ...a second client already connected (the ping forces the accept to
  // complete — a connection still sitting in the listen backlog when the
  // drain begins is legitimately dropped, which is not what this test is
  // about)...
  Client bystander(server.options().unix_path);
  ASSERT_EQ(response_type(bystander.request("{\"type\": \"ping\"}")), "pong");
  // ...then a drain starts while the slow job runs.
  std::thread drainer([&] { server.drain(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(server.draining());
  // The connected bystander's submit is rejected by name, not hung.
  std::string code;
  EXPECT_EQ(response_type(bystander.request(submit_body(kGoodJob)), &code),
            "error");
  EXPECT_EQ(code, kErrDraining);
  slow.join();     // the in-flight job still completed with a result
  drainer.join();
  EXPECT_FALSE(server.running());
}

TEST(Protocol, ShutdownRequestDrainsTheServer) {
  Server server(base_options("shutdown"));
  server.start();
  {
    Client client(server.options().unix_path);
    EXPECT_EQ(response_type(client.request("{\"type\": \"shutdown\"}")), "ok");
  }
  for (int i = 0; i < 200 && server.running(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(server.running());
}

TEST(Jobs, DaemonResultEqualsLibraryPath) {
  // The acceptance gate in miniature: a deterministic job through run_job
  // (the daemon's execution path, warm cache) yields bit-identical outputs
  // and trace ledger to the plain library path.
  const json::Value job = json::parse(kGoodJob, "job");
  const harness::CellSpec spec = harness::parse_job_cell(job, "job");

  EngineCache cache(/*session_capacity=*/2);
  const JobResult cold = run_job(spec, /*trials=*/2, &cache);
  ASSERT_TRUE(cold.ok) << cold.fail_reason;
  EXPECT_FALSE(cold.warm);
  const JobResult warm = run_job(spec, /*trials=*/2, &cache);
  ASSERT_TRUE(warm.ok) << warm.fail_reason;
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(cold.output_fp, warm.output_fp);
  EXPECT_EQ(cold.ledger_fp, warm.ledger_fp);

  // Library path: fresh Engine::run with the identical cell config.
  const Graph g = corpus::make_family(spec.family, spec.n);
  Engine::Config cfg = harness::cell_engine_config(spec);
  RoundTrace trace;
  cfg.trace = &trace;
  const RunResult res =
      Engine::run(g, harness::find_algorithm(spec.algorithm), cfg);
  EXPECT_EQ(harness::outputs_fp(res.outputs), cold.output_fp);
  EXPECT_EQ(harness::ledger_fingerprint(trace), cold.ledger_fp);
  EXPECT_TRUE(harness::meters_equal(res.cost, cold.cost));
}

}  // namespace
}  // namespace ccq::service
