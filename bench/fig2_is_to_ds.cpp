// FIG2 / THM10 — the reduction from k-independent-set to k-dominating-set.
// Regenerates Figure 2's construction and Theorem 10's claim: (a) gadget
// sizes vs the (k²+k+2)n bound, (b) end-to-end correctness of solving k-IS
// through k-DS on the gadget, (c) the measured round overhead of the
// reduction against solving k-IS directly with the Dolev-style detector.

#include <cstdio>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "graphalg/subgraph.hpp"
#include "clique/simulation.hpp"
#include "reductions/is_to_ds.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("FIG2/THM10: k-IS -> k-DS gadget reduction\n\n");

  std::printf("(a) Gadget sizes |V(G')| vs the paper's (k^2+k+2)n bound:\n");
  Table ta({"n", "k", "|V(G')|", "(k^2+k+2)n", "within bound"});
  for (unsigned k : {2u, 3u, 4u}) {
    for (NodeId n : {8u, 16u, 32u}) {
      IsToDsGadget gadget(n, k);
      const std::size_t bound = (k * k + k + 2) * static_cast<std::size_t>(n);
      ta.add_row({std::to_string(n), std::to_string(k),
                  std::to_string(gadget.total_nodes()),
                  std::to_string(bound),
                  gadget.total_nodes() <= bound ? "yes" : "NO"});
    }
  }
  ta.print();

  std::printf(
      "\n(b) End-to-end: decide 2-IS through the gadget + Theorem 9 k-DS,\n"
      "    vs the oracle (12 random instances across densities):\n");
  SplitMix64 rng(33);
  int agree = 0, total = 0;
  for (int t = 0; t < 12; ++t) {
    Graph g = gen::gnp(9, 0.25 + 0.05 * t, rng.next());
    auto via = k_independent_set_via_ds_clique(g, 2);
    const bool expect = oracle::independent_set(g, 2).has_value();
    agree += via.found == expect &&
             (!via.found || oracle::is_independent_set(g, via.witness));
    ++total;
  }
  std::printf("    %d/%d instances decided correctly with valid witnesses\n",
              agree, total);

  std::printf(
      "\n(c) Measured rounds: direct 2-IS on G vs 2-DS on the gadget G'\n"
      "    (the paper's overhead bound is the constant factor "
      "O(k^{2δ+4})):\n");
  Table tc({"n", "|V(G')|", "direct 2-IS rounds", "via-DS rounds",
            "host rounds (paper sim)", "overhead x"});
  for (NodeId n : {8u, 12u, 16u, 24u}) {
    auto inst = gen::planted_independent_set(n, 2, 0.4, n);
    auto direct = independent_set_clique(inst.graph, 2);
    auto via = k_independent_set_via_ds_clique(inst.graph, 2);
    IsToDsGadget gadget(n, 2);
    // The paper simulates G' on the original n-clique, paying
    // ⌈|V(G')|/n⌉² host rounds per G' round (Theorem 10's O(k⁴) factor).
    const auto host_rounds =
        simulated_host_rounds(via.cost.rounds, gadget.total_nodes(), n);
    const double overhead =
        static_cast<double>(host_rounds) /
        std::max<std::uint64_t>(direct.cost.rounds, 1);
    tc.add_row({std::to_string(n), std::to_string(gadget.total_nodes()),
                std::to_string(direct.cost.rounds),
                std::to_string(via.cost.rounds),
                std::to_string(host_rounds), Table::fmt(overhead, 1)});
  }
  tc.print();
  std::printf(
      "\nShape check: the gadget respects the size bound, the reduction "
      "decides k-IS\nexactly, and the paper-faithful host cost (via-DS "
      "rounds x ceil(|G'|/n)^2 per the\nTheorem 10 simulation) stays a "
      "bounded multiple of the direct algorithm — the\nO(k^{2delta+4}) "
      "constant-factor overhead the theorem promises.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
