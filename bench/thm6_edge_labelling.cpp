// THM6 — edge labelling problems are the canonical family for NCLIQUE(1):
// every O(1)-round verifier's language becomes "does an admissible edge
// labelling exist", with O(log n)-bit labels per clique edge. This bench
// reports, for each NCLIQUE(1) verifier, the induced per-edge label width
// (transcript slots) and validates the equivalence on planted yes/no
// instances.

#include <cstdio>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "nondet/edge_labelling.hpp"
#include "nondet/verifiers.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("THM6: the edge-labelling canonical family for NCLIQUE(1)\n\n");

  struct Case {
    RoundVerifier v;
    Graph yes, no;
  };
  std::vector<Case> cases;
  // Yes/no instances share n so forged-label checks are well-typed.
  Graph odd_cycle_plus = Graph::undirected(8);  // C7 + isolated node
  for (NodeId v = 0; v < 7; ++v)
    odd_cycle_plus.add_edge(v, (v + 1) % 7);
  cases.push_back({verifiers::k_colouring(2),
                   gen::path(8),  // 2-colourable
                   odd_cycle_plus});
  cases.push_back({verifiers::k_clique(3),
                   gen::planted_clique(8, 3, 0.1, 3).graph,
                   gen::complete_bipartite(4, 4)});
  cases.push_back({verifiers::hamiltonian_path(),
                   gen::planted_hamiltonian_path(8, 0.1, 5).graph,
                   gen::star(8)});

  Table t({"verifier", "edge label bits", "O(log n)?", "yes-instance",
           "no-instance"});
  for (auto& c : cases) {
    const NodeId n = c.yes.n();
    auto p = edge_labelling_from_verifier(c.v);
    const unsigned bits = p.label_bits(n);
    // Yes-instance: honest transcripts satisfy all node constraints.
    auto z = c.v.prover(c.yes);
    const bool yes_ok =
        z && edge_labelling_satisfied(c.yes, p,
                                      edge_labels_from_run(c.yes, c.v, *z));
    // No-instance: the honest prover refuses; forged labels from the
    // yes-instance fail the constraints on the no-instance.
    bool no_ok = !c.v.prover(c.no).has_value();
    if (no_ok && z) {
      auto forged = edge_labels_from_run(c.yes, c.v, *z);
      no_ok = !edge_labelling_satisfied(c.no, p, forged);
    }
    t.add_row({c.v.name, std::to_string(bits),
               bits <= 4 * (node_id_bits(n) + 3) * c.v.rounds(n) ? "yes"
                                                                 : "NO",
               yes_ok ? "labels exist+verify" : "FAIL",
               no_ok ? "rejected" : "FAIL"});
  }
  t.print();

  std::printf("\nPer-edge label width vs n (k-colouring verifier):\n");
  Table ts({"n", "edge label bits", "4·logn reference"});
  auto p = edge_labelling_from_verifier(verifiers::k_colouring(3));
  for (NodeId n : {8u, 32u, 128u, 512u}) {
    ts.add_row({std::to_string(n), std::to_string(p.label_bits(n)),
                std::to_string(4 * ceil_log2(n))});
  }
  ts.print();
  std::printf(
      "\nShape check: induced labels are Θ(log n) bits per edge, and the "
      "labelling is\nsolvable exactly on the verifier's yes-instances — "
      "Theorem 6's canonical-family\nclaim, run concretely.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
