// ABLATION — the bandwidth constant. §3: "the congested clique allows
// O(log n) bandwidth per round, where the constant hidden by O-notation
// can depend on the algorithm; we can always move the constant factors to
// the running time and assume that all algorithms use exactly ⌈log₂n⌉
// bits". This ablation verifies that design decision empirically: scaling
// B = c·⌈log₂n⌉ rescales measured rounds by ≈ 1/c and leaves every fitted
// exponent unchanged — i.e. the complexity theory is insensitive to the
// constant, exactly as the paper assumes.

#include <cstdio>

#include "algebra/distributed_mm.hpp"
#include "graph/generators.hpp"
#include "graphalg/sssp.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

namespace {

std::uint64_t mm_rounds(NodeId n, unsigned mult) {
  Engine::Config cfg;
  cfg.bandwidth_multiplier = mult;
  auto res = Engine::run(
      gen::empty(n),
      [](NodeCtx& ctx) {
        SplitMix64 rng(ctx.id() + 3);
        std::vector<MinPlusSemiring::Value> ra(ctx.n()), rb(ctx.n());
        for (NodeId j = 0; j < ctx.n(); ++j) {
          ra[j] = rng.next_below(30);
          rb[j] = rng.next_below(30);
        }
        auto rc = mm_distributed_3d<MinPlusSemiring>(ctx, ra, rb, 8);
        ctx.output(rc[0] & 0x3f);
      },
      cfg);
  return res.cost.rounds;
}

}  // namespace

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("ABLATION: bandwidth constant c in B = c·⌈log₂n⌉\n\n");
  std::printf("(min,+) distributed MM rounds under different c:\n");
  Table t({"n", "c=1", "c=2", "c=4", "c=1/c=4 ratio"});
  std::vector<double> ns;
  std::vector<double> r1, r4;
  for (NodeId n : {27u, 64u, 125u}) {
    const auto a = mm_rounds(n, 1);
    const auto b = mm_rounds(n, 2);
    const auto c = mm_rounds(n, 4);
    t.add_row({std::to_string(n), std::to_string(a), std::to_string(b),
               std::to_string(c),
               Table::fmt(static_cast<double>(a) / c, 2)});
    ns.push_back(n);
    r1.push_back(static_cast<double>(a));
    r4.push_back(static_cast<double>(c));
  }
  t.print();
  auto f1 = fit_loglog(ns, r1);
  auto f4 = fit_loglog(ns, r4);
  std::printf("\nfitted exponent at c=1: %.3f;  at c=4: %.3f  (Δ=%.3f)\n",
              f1.slope, f4.slope, f4.slope - f1.slope);
  std::printf(
      "\nShape check: rounds scale ≈ 1/c while the exponent moves only "
      "within noise —\nconstants fold into running time, never into the "
      "complexity class, as §3 assumes.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
