// THM11 — "Vertex cover of size k can be found in O(k) rounds" (§7.3).
// Regenerates the claim's two halves: rounds grow (at most) linearly in k,
// and are independent of n.

#include <cstdio>

#include "graph/generators.hpp"
#include "graphalg/kvc.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("THM11: k-vertex cover in O(k) rounds\n\n");

  std::printf("Sweep over k at fixed n = 64 (planted covers, m = 4k):\n");
  Table tk({"k", "rounds", "found"});
  for (unsigned k : {0u, 1u, 2u, 4u, 6u, 8u, 12u}) {
    auto inst = gen::planted_vertex_cover(64, std::max(k, 1u), 4 * k + 2,
                                          99 + k);
    auto r = k_vertex_cover_clique(inst.graph, k);
    tk.add_row({std::to_string(k), std::to_string(r.cost.rounds),
                r.found ? "yes" : "no"});
  }
  tk.print();

  std::printf("\nSweep over n at fixed k = 4 (the paper's headline —\n");
  std::printf("rounds must NOT grow with n):\n");
  Table tn({"n", "rounds", "found"});
  for (NodeId n : {16u, 32u, 64u, 128u, 256u}) {
    auto inst = gen::planted_vertex_cover(n, 4, 14, 7);
    auto r = k_vertex_cover_clique(inst.graph, 4);
    tn.add_row({std::to_string(n), std::to_string(r.cost.rounds),
                r.found ? "yes" : "no"});
  }
  tn.print();
  std::printf(
      "\nShape check: the n-sweep row count is flat; the k-sweep grows "
      "≈ linearly in k\n(each kernel node broadcasts ≤ k edge endpoints).\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
