// Sparse distributed MM — nnz-proportional communication (DESIGN.md §13).
//
// Sweeps density ∈ {0.1%, 1%, 10%, dense} at n ∈ {256, 512, 1024} and
// measures the nonzero-block schedule (mm_distributed_sparse) against the
// dense 3-D baseline (mm_distributed_3d) and the naive broadcast. Every
// result row of every algorithm is verified bit-for-bit against
// mm_distributed_naive — the schedules fold contributions identically, so
// any difference is a protocol bug and the bench exits non-zero, in or out
// of --check mode.
//
// The headline acceptance number: at 1% density the sparse schedule must
// move ≥5× fewer bits than the dense 3-D baseline for n ≥ 512 (≥2× at
// n = 256, where descriptor overhead is proportionally larger), and sparse
// bits must grow monotonically with density. Violations are fatal.
//
// A second, purely local table compares the SpGEMM kernels themselves
// (serial Gustavson, rowmerge, and their pool-parallel shardings) at one
// density — this is the compute that Step B of the sparse schedule runs on
// the centralized callers. Every parallel result is verified CSR-for-CSR
// against the serial kernel (and the serial kernel against mm_naive at
// n ≤ 512) before any time is reported.
//
// Usage: bench_mm_sparse [--n=N] [--density=D] [--check] [--trace=PATH]
//   --n=N       run a single clique size instead of the default sweep
//   --density=D density for the local SpGEMM kernel table (default 0.1;
//               the distributed sweep always runs its fixed density grid)
//   --check     CI smoke mode (same gates, smaller default is advised:
//               bench_mm_sparse --n=256 --check); additionally requires
//               pool-parallel SpGEMM ≥ 1.7x over serial at n ≥ 512 and
//               density ≥ 0.1 when the kernel pool has > 1 workers (the
//               issue's 2x target with a 15% noise margin; printed as
//               skipped on single-core hosts)
//   --trace=PATH  record a round trace of every run (chrome://tracing)
//
// Writes BENCH_mm_sparse.json ({n, density, semiring, nnz, algo, rounds,
// messages, bits, wall_ms} per distributed row; {n, density, semiring,
// kernel, wall_ms, speedup} per local-kernel row) into the current
// directory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algebra/distributed_mm.hpp"
#include "algebra/kernels.hpp"
#include "algebra/simd.hpp"
#include "algebra/sparse.hpp"
#include "bench_args.hpp"
#include "bench_json.hpp"
#include "graph/generators.hpp"
#include "graphalg/common.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ccq;

namespace {

benchjson::Writer g_json;

enum class Algo { kNaive, kDense3d, kSparse };

const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kNaive:
      return "naive";
    case Algo::kDense3d:
      return "dense-3d";
    case Algo::kSparse:
      return "sparse";
  }
  return "?";
}

// Node `v`'s input rows for the (n, density, seed) instance — regenerated
// identically inside every algorithm run and by the nnz accountant below.
template <Semiring S>
void instance_rows(NodeId v, NodeId n, double density, std::uint64_t seed,
                   std::uint64_t max_val,
                   std::vector<typename S::Value>& ra,
                   std::vector<typename S::Value>& rb) {
  SplitMix64 rng(seed ^ (v * 0x9e3779b97f4a7c15ULL));
  ra.assign(n, S::zero());
  rb.assign(n, S::zero());
  for (NodeId j = 0; j < n; ++j)
    if (rng.next_bool(density))
      ra[j] = static_cast<typename S::Value>(rng.next_below(max_val));
  for (NodeId j = 0; j < n; ++j)
    if (rng.next_bool(density))
      rb[j] = static_cast<typename S::Value>(rng.next_below(max_val));
}

template <Semiring S>
struct Cell {
  CostMeter cost;
  double ms = 0;
  std::vector<std::vector<typename S::Value>> rows;
};

template <Semiring S>
Cell<S> run_algo(NodeId n, double density, std::uint64_t seed,
                 std::uint64_t max_val, unsigned entry_bits, Algo algo) {
  using V = typename S::Value;
  PerNode<std::vector<V>> sink(n);
  const auto t0 = std::chrono::steady_clock::now();
  auto res = Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
    std::vector<V> ra, rb;
    instance_rows<S>(ctx.id(), ctx.n(), density, seed, max_val, ra, rb);
    std::vector<V> rc;
    switch (algo) {
      case Algo::kNaive:
        rc = mm_distributed_naive<S>(ctx, ra, rb, entry_bits);
        break;
      case Algo::kDense3d:
        rc = mm_distributed_3d<S>(ctx, ra, rb, entry_bits);
        break;
      case Algo::kSparse:
        rc = mm_distributed_sparse<S>(ctx, MmShape{ctx.n(), ctx.n(), ctx.n()},
                                      ra, rb, entry_bits);
        break;
    }
    sink.set(ctx.id(), rc);
    ctx.output(static_cast<std::uint64_t>(rc[0]) & 0x3f);
  });
  const auto t1 = std::chrono::steady_clock::now();
  Cell<S> cell;
  cell.cost = res.cost;
  cell.ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  cell.rows = sink.take();
  return cell;
}

// nnz of the A input (the quantity the sparse schedule's bits track).
template <Semiring S>
std::uint64_t instance_nnz(NodeId n, double density, std::uint64_t seed,
                           std::uint64_t max_val) {
  using V = typename S::Value;
  std::uint64_t nnz = 0;
  std::vector<V> ra, rb;
  for (NodeId v = 0; v < n; ++v) {
    instance_rows<S>(v, n, density, seed, max_val, ra, rb);
    for (const V& x : ra) nnz += x != S::zero() ? 1 : 0;
  }
  return nnz;
}

bool g_gates_ok = true;

template <Semiring S>
void sweep(const char* semiring, NodeId n, unsigned entry_bits,
           std::uint64_t max_val, std::uint64_t seed) {
  const double densities[] = {0.001, 0.01, 0.1, 1.0};
  std::printf("\n%s MM, n = %u (every row verified against naive):\n",
              semiring, n);
  Table t({"density", "nnz(A)", "naive bits", "3-D bits", "sparse bits",
           "3-D/sparse", "rounds sp"});
  std::uint64_t prev_sparse_bits = 0;
  for (double d : densities) {
    const auto naive = run_algo<S>(n, d, seed, max_val, entry_bits,
                                   Algo::kNaive);
    const auto dense3d = run_algo<S>(n, d, seed, max_val, entry_bits,
                                     Algo::kDense3d);
    const auto sparse = run_algo<S>(n, d, seed, max_val, entry_bits,
                                    Algo::kSparse);
    if (dense3d.rows != naive.rows || sparse.rows != naive.rows) {
      std::printf("FATAL: result rows diverge from naive at n=%u d=%g\n", n,
                  d);
      std::exit(1);
    }
    const std::uint64_t nnz = instance_nnz<S>(n, d, seed, max_val);
    const double ratio = sparse.cost.bits == 0
                             ? 0.0
                             : static_cast<double>(dense3d.cost.bits) /
                                   static_cast<double>(sparse.cost.bits);
    for (const auto* cell : {&naive, &dense3d, &sparse}) {
      const Algo a = cell == &naive
                         ? Algo::kNaive
                         : (cell == &dense3d ? Algo::kDense3d : Algo::kSparse);
      g_json.add({{"n", n},
                  {"density", d},
                  {"semiring", semiring},
                  {"nnz", nnz},
                  {"algo", algo_name(a)},
                  {"rounds", cell->cost.rounds},
                  {"messages", cell->cost.messages},
                  {"bits", cell->cost.bits},
                  {"wall_ms", cell->ms}});
    }
    t.add_row({Table::fmt(d, 3), std::to_string(nnz),
               std::to_string(naive.cost.bits),
               std::to_string(dense3d.cost.bits),
               std::to_string(sparse.cost.bits), Table::fmt(ratio, 1),
               std::to_string(sparse.cost.rounds)});

    // Gates: bits ∝ nnz means monotone in density, and the 1% column must
    // beat the dense 3-D baseline by the acceptance margin.
    if (sparse.cost.bits < prev_sparse_bits) {
      std::printf("GATE FAILED: sparse bits not monotone in density at "
                  "n=%u d=%g\n",
                  n, d);
      g_gates_ok = false;
    }
    prev_sparse_bits = sparse.cost.bits;
    if (d == 0.01) {
      const double need = n >= 512 ? 5.0 : 2.0;
      if (ratio < need) {
        std::printf("GATE FAILED: 3-D/sparse bits ratio %.2f < %.1f at "
                    "n=%u, 1%% density\n",
                    ratio, need, n);
        g_gates_ok = false;
      }
    }
  }
  t.print();
}

// ---- local SpGEMM kernel comparison ---------------------------------------

template <typename Fn>
double time_best_ms(int trials, Fn&& fn) {
  double best = 0;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (t == 0 || ms < best) best = ms;
  }
  return best;
}

Matrix<std::uint64_t> random_minplus_dense(std::size_t n, double density,
                                           std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<std::uint64_t> m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m.at(i, j) = rng.next_bool(density) ? rng.next_below(100000)
                                          : MinPlusSemiring::infinity();
  return m;
}

// One timed SpGEMM kernel row: best-of-`trials`, CSR-for-CSR equal to the
// serial kernel's output or the bench dies.
template <typename Fn>
double spgemm_row(NodeId n, double density, const char* kernel, int trials,
                  const SparseMatrix<std::uint64_t>& expect, double serial_ms,
                  Fn&& fn) {
  SparseMatrix<std::uint64_t> got;
  const double ms = time_best_ms(trials, [&] { got = fn(); });
  if (!(got == expect)) {
    std::printf("FATAL: SpGEMM kernel %s disagrees with serial spgemm at "
                "n=%u d=%g\n",
                kernel, n, density);
    std::exit(1);
  }
  g_json.add({{"n", n},
              {"density", density},
              {"semiring", "minplus"},
              {"kernel", kernel},
              {"wall_ms", ms},
              {"speedup", ms > 0 ? serial_ms / ms : 1.0}});
  return ms;
}

// The local kernels behind Step B of the sparse schedule (and spgemm_auto
// on any centralized caller). Node programs run on scheduler fibers where
// the pool is unavailable, so this table is about the *centralized* users
// of the sparse kernels — the determinism contract (bit-identical output
// for every worker count) is what makes routing them to the pool safe.
void spgemm_kernel_table(const std::vector<NodeId>& sizes, double density,
                         bool check) {
  const std::size_t workers = kernels::pool().size();
  std::printf("\nLocal (min,+) SpGEMM kernels at density %g (pool: %zu "
              "worker(s), SIMD %s;\nparallel kernels shard rows over the "
              "pool, output bit-identical to serial):\n\n",
              density, workers, simd::level_name(simd::active()));
  Table t({"n", "serial ms", "rowmerge ms", "parallel ms", "par-rm ms",
           "serial/parallel"});
  for (NodeId n : sizes) {
    const auto da = random_minplus_dense(n, density, 0x5b9 + n);
    const auto db = random_minplus_dense(n, density, 0x5ca + n);
    const auto a = SparseMatrix<std::uint64_t>::from_dense<MinPlusSemiring>(da);
    const auto b = SparseMatrix<std::uint64_t>::from_dense<MinPlusSemiring>(db);
    const int trials = 3;

    SparseMatrix<std::uint64_t> expect;
    const double serial_ms = time_best_ms(
        trials, [&] { expect = kernels::spgemm<MinPlusSemiring>(a, b); });
    if (n <= 512 &&
        !(expect.to_dense<MinPlusSemiring>() ==
          mm_naive<MinPlusSemiring>(da, db))) {
      std::printf("FATAL: serial spgemm disagrees with mm_naive at n=%u\n",
                  n);
      std::exit(1);
    }
    g_json.add({{"n", n},
                {"density", density},
                {"semiring", "minplus"},
                {"kernel", "spgemm_serial"},
                {"wall_ms", serial_ms},
                {"speedup", 1.0}});
    const double rowmerge_ms =
        spgemm_row(n, density, "spgemm_rowmerge", trials, expect, serial_ms,
                   [&] { return kernels::spgemm_rowmerge<MinPlusSemiring>(a, b); });
    const double parallel_ms =
        spgemm_row(n, density, "spgemm_parallel", trials, expect, serial_ms,
                   [&] { return kernels::spgemm_parallel<MinPlusSemiring>(a, b); });
    const double par_rm_ms = spgemm_row(
        n, density, "spgemm_rowmerge_parallel", trials, expect, serial_ms,
        [&] { return kernels::spgemm_rowmerge_parallel<MinPlusSemiring>(a, b); });
    t.add_row({std::to_string(n), Table::fmt(serial_ms, 2),
               Table::fmt(rowmerge_ms, 2), Table::fmt(parallel_ms, 2),
               Table::fmt(par_rm_ms, 2),
               Table::fmt(parallel_ms > 0 ? serial_ms / parallel_ms : 1.0,
                          1) +
                   "x"});

    // Parallel-speedup gate: the issue's 2x target at n ≥ 512, 10%
    // density, with the 15% noise tolerance → 1.7. A 1-worker pool cannot
    // speed anything up, so the gate only applies on multi-core hosts (CI
    // runners have ≥ 2; the determinism checks above still ran).
    if (check && n >= 512 && density >= 0.1) {
      if (workers <= 1) {
        std::printf("  gate: parallel speedup check skipped (single-core "
                    "host, pool=%zu)\n",
                    workers);
      } else if (serial_ms < 1.7 * parallel_ms) {
        std::printf("GATE FAILED: parallel SpGEMM speedup %.2f < 1.7x over "
                    "serial at n=%u d=%g (pool=%zu)\n",
                    parallel_ms > 0 ? serial_ms / parallel_ms : 0.0, n,
                    density, workers);
        g_gates_ok = false;
      }
    }
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::TraceSession trace_session(&argc, argv);
  std::vector<NodeId> sizes = {256, 512, 1024};
  bool check = false;
  double kernel_density = 0.1;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = benchargs::flag_value(argv[i], "--n")) {
      sizes = {static_cast<NodeId>(
          benchargs::parse_uint(argv[0], "--n", v, 1, 8192))};
    } else if (const char* d = benchargs::flag_value(argv[i], "--density")) {
      kernel_density =
          benchargs::parse_double(argv[0], "--density", d, 0.0, 1.0);
    } else if (benchargs::flag_is(argv[i], "--check")) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n=N] [--density=D] [--check] "
                   "[--trace=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  std::printf("Sparse vs dense distributed MM (DESIGN.md §13)\n");

  for (NodeId n : sizes) sweep<BoolSemiring>("Boolean", n, 1, 2, 0xb001 + n);
  // One (min,+) table at the smallest size: wider entries, same protocol.
  sweep<MinPlusSemiring>("(min,+)", sizes.front(), 8, 30,
                         0x317 + sizes.front());
  spgemm_kernel_table(sizes, kernel_density, check);

  if (!trace_session.finish(&g_json)) return 1;
  if (g_json.write("BENCH_mm_sparse.json"))
    std::printf("\nwrote BENCH_mm_sparse.json\n");

  if (!g_gates_ok) return 1;
  std::printf("%s: results exact, sparse bits ∝ nnz, 1%%-density ratio "
              "gates met\n",
              check ? "CHECK OK" : "gates OK");
  return 0;
}
