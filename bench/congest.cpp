// SEC2 — CONGEST vs congested clique: the bottleneck motivation. "CONGEST
// lower bounds generally ... boil down to constructing graphs with
// bottlenecks, that is, graphs where large amounts of information have to
// be transmitted over a small cut. A key motivation for the study of the
// congested clique model is to understand computation in networks that do
// not have such bottlenecks."
//
// Workload: two n/2-cliques joined by ONE bridge edge; node n-1 must learn
// an L-bit string held by node 0. In CONGEST every bit crosses the bridge
// (⌈L/B⌉ rounds, an information-theoretic floor); in the clique node 0
// stripes the string across n-1 helpers (cut capacity Θ(n²·B)).

#include <cstdio>

#include "clique/congest.hpp"
#include "graph/generators.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

namespace {

Graph two_cliques_with_bridge(NodeId n) {
  const NodeId half = n / 2;
  Graph g = Graph::undirected(n);
  for (NodeId u = 0; u < half; ++u)
    for (NodeId v = u + 1; v < half; ++v) g.add_edge(u, v);
  for (NodeId u = half; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  g.add_edge(half - 1, half);
  return g;
}

std::uint64_t congest_transfer_rounds(const Graph& g, unsigned L) {
  auto run = run_congest(g, [L](CongestCtx& ctx) {
    const unsigned B = ctx.bandwidth();
    const unsigned chunks = static_cast<unsigned>(ceil_div(L, B));
    std::vector<std::uint64_t> buffer;
    SplitMix64 src(7);
    if (ctx.id() == 0) {
      for (unsigned c = 0; c < chunks; ++c)
        buffer.push_back(src.next() & ((1ull << B) - 1));
    }
    std::uint64_t got = 0;
    const unsigned steps = chunks + ctx.n();
    for (unsigned s = 0; s < steps; ++s) {
      std::vector<std::pair<NodeId, Word>> sends;
      if (!buffer.empty() && ctx.id() + 1 < ctx.n()) {
        sends.emplace_back(ctx.id() + 1, Word(buffer.front(), B));
        buffer.erase(buffer.begin());
      }
      auto in = ctx.round(sends);
      if (ctx.id() > 0 && in[ctx.id() - 1]) {
        buffer.push_back(in[ctx.id() - 1]->value);
        if (ctx.id() + 1 == ctx.n()) ++got;
      }
    }
    ctx.output(ctx.id() + 1 == ctx.n() ? got : 0);
  });
  return run.cost.rounds;
}

std::uint64_t clique_transfer_rounds(const Graph& g, unsigned L) {
  auto run = Engine::run(g, [L](NodeCtx& ctx) {
    const unsigned B = ctx.bandwidth();
    const unsigned chunks = static_cast<unsigned>(ceil_div(L, B));
    SplitMix64 src(7);
    std::vector<std::pair<NodeId, Word>> sends;
    if (ctx.id() == 0) {
      for (unsigned c = 0; c < chunks; ++c)
        sends.emplace_back(1 + (c % (ctx.n() - 1)),
                           Word(src.next() & ((1ull << B) - 1), B));
    }
    const FlatInbox in = ctx.exchange_flat(sends);
    std::vector<std::pair<NodeId, Word>> fwd;
    if (ctx.id() != 0)
      for (const Word& w : in.from(0)) fwd.emplace_back(ctx.n() - 1, w);
    const FlatInbox fin = ctx.exchange_flat(fwd);
    std::uint64_t got = 0;
    if (ctx.id() + 1 == ctx.n())
      for (NodeId v = 0; v < ctx.n(); ++v) got += fin.from(v).size();
    ctx.output(got);
  });
  return run.cost.rounds;
}

}  // namespace

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("SEC2: the bottleneck motivation — CONGEST vs clique\n\n");
  std::printf("Two n/2-cliques + one bridge; node n-1 must learn node 0's\n"
              "L-bit string (L = 16·n bits, scaling with the instance):\n");
  Table t({"n", "L bits", "cut floor ⌈L/B⌉", "CONGEST rounds",
           "clique rounds", "speedup"});
  for (NodeId n : {8u, 16u, 32u, 64u}) {
    const unsigned L = 16 * n;
    Graph g = two_cliques_with_bridge(n);
    const auto cr = congest_transfer_rounds(g, L);
    const auto qr = clique_transfer_rounds(g, L);
    t.add_row({std::to_string(n), std::to_string(L),
               std::to_string(ceil_div(L, node_id_bits(n))),
               std::to_string(cr), std::to_string(qr),
               Table::fmt(static_cast<double>(cr) / qr, 1)});
  }
  t.print();
  std::printf(
      "\nShape check: CONGEST rounds track the single-edge cut floor "
      "⌈L/B⌉ and grow\nlinearly in L, while the clique moves the same data "
      "in a near-constant number of\nrounds — the \"no bottlenecks\" point "
      "§2 uses to motivate the model.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
