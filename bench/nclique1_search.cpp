// SEC8 ("NCLIQUE(1) as an LCL analogue") — the labelling SEARCH problems
// the paper names: 2-colouring, sinkless orientation, maximal independent
// set. For each: the constant-round relation check, the trivial δ ≤ 1
// clique solver, and solvability statistics across a density sweep. The
// paper's point — "this class captures many natural graph problems of
// interest, but we do not have lower bounds for any problem in this
// class" — is why the solver column shows only the trivial upper bound.

#include <cstdio>

#include "graph/generators.hpp"
#include "nondet/search.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("SEC8: NCLIQUE(1)-labelling search problems\n\n");

  const NodeId n = 32;
  Table t({"problem", "label bits/node", "verify rounds",
           "solve rounds (δ≤1)", "solved (of 12 G(n,p) sweeps)"});
  SplitMix64 rng(0x5ea);
  for (auto p : {two_colouring_search(), mis_search(),
                 sinkless_orientation_search()}) {
    int solved = 0;
    std::uint64_t verify_rounds = 0, solve_rounds = 0;
    for (int trial = 0; trial < 12; ++trial) {
      Graph g = gen::gnp(n, 0.02 + 0.015 * trial, rng.next());
      auto r = solve_search_clique(g, p);
      solve_rounds = r.cost.rounds;
      if (r.solved) {
        ++solved;
        auto check = check_labelling(g, p, r.labels);
        verify_rounds = check.cost.rounds;
        if (!check.accepted()) {
          std::printf("!! %s produced an invalid labelling\n",
                      p.name.c_str());
          return 1;
        }
      }
    }
    t.add_row({p.name, std::to_string(p.relation.label_bits(n)),
               std::to_string(verify_rounds), std::to_string(solve_rounds),
               std::to_string(solved)});
  }
  t.print();
  std::printf(
      "\nShape check: each relation verifies in O(1) rounds with O(log n)-"
      "or-smaller labels\n(sinkless carries one bit per incident edge), the "
      "only known solver is the trivial\nlearn-the-graph ⌈n/B⌉-round one, "
      "and no lower bound separates them — exactly the\nopen landscape §8 "
      "describes. 2-colouring/sinkless solve only where bipartite-/\n"
      "cycle-structure permits; MIS always.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
