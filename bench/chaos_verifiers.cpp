// CHAOS — the verifier-soundness campaign (nondet/soundness.hpp) as a
// reproducible table. Every verifier family in src/nondet runs on a rigid
// planted instance family under three regimes per seeded trial:
//
//   clean      — honest certificate: must be accepted every time;
//   corrupted  — one certificate bit flipped: must be rejected every time;
//   byzantine  — one node's outgoing words replaced with seeded garbage by
//                the chaos plane: rejection rate must meet the per-case
//                floor (probabilistic — garbage can collide with truth).
//
// Trials alternate message plane and execution backend, so the table is
// also a cross-substrate soundness check. --check turns the table into a
// gate: any clean rejection, any corrupted acceptance, or a byzantine rate
// below its floor exits non-zero (CI runs --n=64 --trials=50 --check).
//
// Usage: bench_chaos_verifiers [--n=N] [--trials=T] [--check]
//                              [--trace=PATH]
//   --n=N       single clique size instead of the 16/64/128 sweep
//   --trials=T  seeded trials per case per size (default 200)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "nondet/soundness.hpp"
#include "util/table.hpp"

using namespace ccq;

namespace {

std::string rate_str(double r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", r);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::TraceSession trace(&argc, argv);

  std::vector<NodeId> sizes = {16, 64, 128};
  unsigned trials = 200;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      sizes = {static_cast<NodeId>(
          benchjson::parse_uint(argv[0], "--n", argv[i] + 4, 1, 8192))};
    } else if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      trials = static_cast<unsigned>(benchjson::parse_uint(
          argv[0], "--trials", argv[i] + 9, 1, 1000000));
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n=N] [--trials=T] [--check] "
                   "[--trace=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("CHAOS: verifier soundness under fault injection "
              "(%u trials/case, plane+backend sweep)\n\n",
              trials);

  benchjson::Writer json;
  bool ok = true;
  for (NodeId n : sizes) {
    std::printf("n = %u\n", n);
    Table t({"case", "theorem", "clean acc", "corrupt rej", "byz rej",
             "byz rate", "floor", "byz words", "ms", "verdict"});
    for (const auto& c : soundness::cases()) {
      const auto t0 = std::chrono::steady_clock::now();
      const soundness::Report r = soundness::run_case(c, n, trials);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count();
      ok = ok && r.ok();
      t.add_row({r.name, r.theorem,
                 std::to_string(r.clean_accepts) + "/" +
                     std::to_string(r.trials),
                 std::to_string(r.corrupt_rejects) + "/" +
                     std::to_string(r.trials),
                 std::to_string(r.byz_rejects) + "/" +
                     std::to_string(r.trials),
                 rate_str(r.byz_rate()), rate_str(r.byz_floor),
                 std::to_string(r.byz_faults), rate_str(ms),
                 r.ok() ? "ok" : "FAIL"});
      json.add({{"case", r.name},
                {"theorem", r.theorem},
                {"n", std::uint64_t{r.n}},
                {"trials", r.trials},
                {"clean_accepts", r.clean_accepts},
                {"corrupt_rejects", r.corrupt_rejects},
                {"byz_rejects", r.byz_rejects},
                {"byz_rate", r.byz_rate()},
                {"byz_floor", r.byz_floor},
                {"byz_faults", r.byz_faults},
                {"wall_ms", ms}});
    }
    t.print();
    std::printf("\n");
  }

  if (!trace.finish(&json)) return 1;
  json.write("BENCH_chaos.json");
  std::printf("wrote BENCH_chaos.json\n");

  if (check) {
    std::printf("--check: %s\n", ok ? "all cases sound" : "FAILURES above");
    return ok ? 0 : 1;
  }
  return 0;
}
