// THM2 — the deterministic time hierarchy. Two parts:
//
//  (a) the counting table behind the proof: for the theorem's parameters
//      (L = T·log n, lower budget t = T/2) the Lemma 1 protocol count is
//      doubly-exponentially smaller than the function count, so the
//      lexicographically-first hard f_n exists at every (n, T);
//  (b) the construction run constructively at toy scale: exhaustive
//      protocol enumeration finds f_n, the Theorem 2 algorithm decides the
//      diagonal language on the metered engine in ⌈L/B⌉ rounds, and f_n is
//      certified unachievable within the lower budget.

#include <cstdio>

#include "graph/generators.hpp"
#include "hierarchy/counting.hpp"
#include "hierarchy/diagonal.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("THM2: time hierarchy for the congested clique\n\n");

  std::printf(
      "(a) Counting table (log2 log2 of the counts; 'protocols' uses the\n"
      "    Lemma 1 bound at t = T/2):\n");
  Table ta({"n", "T", "L=T·logn", "ll(protocols)", "ll(functions)",
            "hard fn exists"});
  for (std::uint64_t n : {16u, 64u, 256u, 1024u}) {
    for (std::uint64_t T : {1u, 2u, 4u, 8u}) {
      auto row = thm2_row(n, T);
      ta.add_row({std::to_string(n), std::to_string(T),
                  std::to_string(row.L), Table::fmt(row.loglog_protocols, 1),
                  Table::fmt(row.loglog_funcs, 1),
                  row.hard_function_exists ? "yes" : "NO"});
    }
  }
  ta.print();

  std::printf(
      "\n(b) Constructive toy diagonalisation (exact protocol "
      "enumeration):\n");
  Table tb({"n", "L", "t_lower", "protocols", "hard fn (lex-first)",
            "engine rounds", "all inputs correct"});
  for (auto [n, L, t] : {std::tuple<NodeId, unsigned, unsigned>{2, 1, 0},
                         {3, 1, 0},
                         {4, 1, 0}}) {
    auto diag = ToyDiagonalisation::make(n, L, t);
    if (!diag) {
      tb.add_row({std::to_string(n), std::to_string(L), std::to_string(t),
                  "-", "none (all achievable)", "-", "-"});
      continue;
    }
    // Exhaustively check the clique algorithm on every graph (n ≤ 3) or a
    // sample (n = 4).
    bool all_ok = true;
    std::uint64_t rounds = 0;
    SplitMix64 rng(11);
    const int cases = n <= 3 ? (1 << (n * (n - 1) / 2)) : 24;
    for (int c = 0; c < cases; ++c) {
      Graph g = Graph::undirected(n);
      std::uint64_t code = n <= 3 ? static_cast<std::uint64_t>(c)
                                  : rng.next();
      std::size_t bit = 0;
      for (NodeId u = 0; u < n; ++u)
        for (NodeId v = u + 1; v < n; ++v)
          if ((code >> bit++) & 1) g.add_edge(u, v);
      auto run = diag->decide_clique(g);
      rounds = run.cost.rounds;
      if (run.accepted() != diag->in_language(g)) all_ok = false;
    }
    const std::size_t protocols = std::size_t{1}
                                  << diag->space().genome_bits();
    tb.add_row({std::to_string(n), std::to_string(L), std::to_string(t),
                std::to_string(protocols),
                diag->hard_function().to_string(), std::to_string(rounds),
                all_ok ? "yes" : "NO"});
  }
  tb.print();
  std::printf(
      "\nShape check: (a) every row has protocols ≪ functions, so CLIQUE(S) "
      "⊊ CLIQUE(T)\nfor S = o(T); (b) the diagonal language is decided "
      "correctly in ⌈L/B⌉ rounds while\nno protocol in the lower budget "
      "computes f_n (certified by enumeration).\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
