// SEC7.1 dependency — the routing layer standing in for Lenzen [43]
// (DESIGN.md §1). Measures both routers on the load regimes the paper's
// algorithms generate: balanced all-to-all (Lenzen's regime: ≤ n sent and
// received per node ⇒ O(1) rounds) and a skewed single-hot-pair load where
// indirection is mandatory.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_json.hpp"
#include "clique/routing.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ccq;

namespace {

// Machine-readable mirror of the comparison tables; written to
// BENCH_routing.json at exit so CI can diff runs.
benchjson::Writer g_json;

void record(NodeId n, const char* backend, const char* plane, double ms,
            const RunResult& r) {
  g_json.add({{"n", n},
              {"backend", backend},
              {"plane", plane},
              {"wall_ms", ms},
              {"rounds", r.cost.rounds},
              {"messages", r.cost.messages},
              {"bits", r.cost.bits}});
}

template <typename Router>
std::uint64_t measure(NodeId n, Router router,
                      const std::function<std::vector<RoutedMessage>(
                          NodeId, NodeId)>& demand) {
  auto res = Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
    auto msgs = demand(ctx.id(), ctx.n());
    auto got = router(ctx, msgs);
    ctx.output(got.size());
  });
  return res.cost.rounds;
}

// Wall-clock of the rendezvous-bound regime — many light supersteps, the
// load the pooled scheduler targets — under a given execution backend. The
// cost meters must be byte-identical across backends, which we assert here.
// (Delivery-compute-bound loads like route_balanced at large n spend their
// time in the shared serial delivery step, identical across backends, so
// they cannot tell the schedulers apart.)
struct BackendSample {
  double millis = 0;
  RunResult result;
};

BackendSample run_backend(NodeId n, ExecutionBackend backend, int trials) {
  Engine::Config cfg;
  cfg.backend = backend;
  const auto program = [](NodeCtx& ctx) {
    std::uint64_t got = 0;
    for (int r = 0; r < 8; ++r) {
      std::vector<std::pair<NodeId, Word>> sends;
      if (ctx.n() > 1)
        sends.emplace_back((ctx.id() + 1) % ctx.n(), Word(r % 2, 1));
      auto in = ctx.round(sends);
      for (NodeId v = 0; v < ctx.n(); ++v) {
        if (in[v]) got += in[v]->value + 1;
      }
    }
    ctx.output(got);
  };
  // Best-of-k to shed scheduler noise on a shared machine; the RunResult is
  // required to be identical on every trial, so any of them can be kept.
  BackendSample s;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    auto res = Engine::run(gen::empty(n), program, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (t == 0 || ms < s.millis) s.millis = ms;
    s.result = std::move(res);
  }
  return s;
}

void backend_comparison() {
  std::printf(
      "\nExecution backends (rendezvous-bound load: 8 light ring supersteps,\n"
      "best of 3 trials): pooled superstep scheduler vs thread-per-node\n"
      "reference. Cost meters must be byte-identical; only wall-clock may\n"
      "differ:\n");
  Table t({"n", "thread/node ms", "pooled ms", "speedup", "counts equal"});
  for (NodeId n : {128u, 256u, 512u}) {
    const auto tpn = run_backend(n, ExecutionBackend::kThreadPerNode, 3);
    const auto pool = run_backend(n, ExecutionBackend::kPooled, 3);
    const bool same =
        tpn.result.outputs == pool.result.outputs &&
        tpn.result.cost.rounds == pool.result.cost.rounds &&
        tpn.result.cost.messages == pool.result.cost.messages &&
        tpn.result.cost.bits == pool.result.cost.bits &&
        tpn.result.cost.collectives == pool.result.cost.collectives &&
        tpn.result.cost.max_node_sent == pool.result.cost.max_node_sent &&
        tpn.result.cost.max_node_received ==
            pool.result.cost.max_node_received;
    if (!same) {
      std::printf("FATAL: backends disagree on metered cost at n=%u\n", n);
      std::exit(1);
    }
    record(n, "thread-per-node", "flat", tpn.millis, tpn.result);
    record(n, "pooled", "flat", pool.millis, pool.result);
    t.add_row({std::to_string(n), Table::fmt(tpn.millis, 1),
               Table::fmt(pool.millis, 1),
               Table::fmt(tpn.millis / pool.millis, 1), "yes"});
  }
  t.print();
}

// Wall-clock of the delivery-bound regime — the balanced router moving n
// messages per node through two full exchanges — under each message plane.
// Meters must be byte-identical across planes (the plane contract); only
// wall-clock may differ.
BackendSample run_plane(NodeId n, MessagePlaneKind plane, int trials) {
  Engine::Config cfg;
  cfg.plane = plane;
  const auto program = [](NodeCtx& ctx) {
    SplitMix64 rng(ctx.id() * 7919 + 13);
    std::vector<RoutedMessage> msgs;
    for (NodeId i = 0; i < ctx.n(); ++i) {
      NodeId dst;
      do {
        dst = static_cast<NodeId>(rng.next_below(ctx.n()));
      } while (ctx.n() > 1 && dst == ctx.id());
      msgs.push_back({dst, Word(i % 2, 1)});
    }
    std::uint64_t got = 0;
    for (int r = 0; r < 4; ++r) got += route_balanced(ctx, msgs).size();
    ctx.output(got);
  };
  BackendSample s;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    auto res = Engine::run(gen::empty(n), program, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (t == 0 || ms < s.millis) s.millis = ms;
    s.result = std::move(res);
  }
  return s;
}

void plane_comparison() {
  std::printf(
      "\nMessage planes (delivery-bound load: 4 balanced-router batches of\n"
      "n messages per node, best of 3 trials, pooled backend): flat arena\n"
      "plane vs legacy per-pair queues. Meters must be byte-identical:\n");
  Table t({"n", "legacy ms", "flat ms", "speedup", "counts equal"});
  for (NodeId n : {128u, 256u, 512u}) {
    const auto legacy = run_plane(n, MessagePlaneKind::kLegacy, 3);
    const auto flat = run_plane(n, MessagePlaneKind::kFlat, 3);
    const bool same =
        legacy.result.outputs == flat.result.outputs &&
        legacy.result.cost.rounds == flat.result.cost.rounds &&
        legacy.result.cost.messages == flat.result.cost.messages &&
        legacy.result.cost.bits == flat.result.cost.bits &&
        legacy.result.cost.collectives == flat.result.cost.collectives &&
        legacy.result.cost.max_node_sent ==
            flat.result.cost.max_node_sent &&
        legacy.result.cost.max_node_received ==
            flat.result.cost.max_node_received;
    if (!same) {
      std::printf("FATAL: planes disagree on metered cost at n=%u\n", n);
      std::exit(1);
    }
    record(n, "pooled", "legacy", legacy.millis, legacy.result);
    record(n, "pooled", "flat", flat.millis, flat.result);
    t.add_row({std::to_string(n), Table::fmt(legacy.millis, 1),
               Table::fmt(flat.millis, 1),
               Table::fmt(legacy.millis / flat.millis, 1), "yes"});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  // --trace=<path>: record every run below into one chrome://tracing
  // timeline + JSONL ledger (see EXPERIMENTS.md "Reading a trace").
  benchjson::TraceSession trace_session(&argc, argv);
  std::printf("Routing substrate (Lenzen-regime loads)\n\n");

  std::printf(
      "Balanced load: every node sends exactly n messages to random\n"
      "destinations (paper regime: O(1) rounds expected, n-independent):\n");
  Table tb({"n", "direct rounds", "balanced rounds"});
  for (NodeId n : {16u, 32u, 64u, 128u}) {
    auto demand = [](NodeId id, NodeId nn) {
      SplitMix64 rng(id * 7919 + 13);
      std::vector<RoutedMessage> out;
      for (NodeId i = 0; i < nn; ++i) {
        NodeId dst;
        do {
          dst = static_cast<NodeId>(rng.next_below(nn));
        } while (dst == id);
        out.push_back({dst, Word(1, 1)});
      }
      return out;
    };
    const auto dr = measure(n, [](NodeCtx& c, const auto& m) {
      return route_direct(c, m);
    }, demand);
    const auto br = measure(n, [](NodeCtx& c, const auto& m) {
      return route_balanced(c, m);
    }, demand);
    tb.add_row({std::to_string(n), std::to_string(dr), std::to_string(br)});
  }
  tb.print();

  std::printf(
      "\nSkewed load: node 0 sends m = 4n messages to node 1 (direct pays\n"
      "m rounds on one link; indirection spreads it):\n");
  Table ts({"n", "m", "direct rounds", "balanced rounds"});
  for (NodeId n : {16u, 32u, 64u}) {
    const std::size_t m = 4u * n;
    auto demand = [m](NodeId id, NodeId) {
      std::vector<RoutedMessage> out;
      if (id == 0)
        for (std::size_t i = 0; i < m; ++i)
          out.push_back({1, Word(i % 2, 1)});
      return out;
    };
    const auto dr = measure(n, [](NodeCtx& c, const auto& m_) {
      return route_direct(c, m_);
    }, demand);
    const auto br = measure(n, [](NodeCtx& c, const auto& m_) {
      return route_balanced(c, m_);
    }, demand);
    ts.add_row({std::to_string(n), std::to_string(m), std::to_string(dr),
                std::to_string(br)});
  }
  ts.print();

  backend_comparison();
  plane_comparison();

  // Flush the trace (if any) before BENCH_routing.json so the per-phase
  // breakdown rows land in the artifact; a failed self-check (per-record
  // sums != metered totals) fails the bench.
  if (!trace_session.finish(&g_json)) return 1;

  if (g_json.write("BENCH_routing.json")) {
    std::printf("\nwrote BENCH_routing.json\n");
  }

  std::printf(
      "\nShape check: balanced-load rounds stay O(1) as n grows; skewed "
      "direct grows\nlinearly in m while the two-phase router stays near "
      "2·⌈m/n⌉·2; the pooled\nscheduler wins wall-clock on rendezvous-bound "
      "loads — and the flat arena plane\nwins delivery-bound loads — "
      "without moving a single metered count.\n");
  return 0;
}
