// SEC7.1 dependency — the routing layer standing in for Lenzen [43]
// (DESIGN.md §1). Measures both routers on the load regimes the paper's
// algorithms generate: balanced all-to-all (Lenzen's regime: ≤ n sent and
// received per node ⇒ O(1) rounds) and a skewed single-hot-pair load where
// indirection is mandatory.

#include <cstdio>

#include "clique/routing.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ccq;

namespace {

template <typename Router>
std::uint64_t measure(NodeId n, Router router,
                      const std::function<std::vector<RoutedMessage>(
                          NodeId, NodeId)>& demand) {
  auto res = Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
    auto msgs = demand(ctx.id(), ctx.n());
    auto got = router(ctx, msgs);
    ctx.output(got.size());
  });
  return res.cost.rounds;
}

}  // namespace

int main() {
  std::printf("Routing substrate (Lenzen-regime loads)\n\n");

  std::printf(
      "Balanced load: every node sends exactly n messages to random\n"
      "destinations (paper regime: O(1) rounds expected, n-independent):\n");
  Table tb({"n", "direct rounds", "balanced rounds"});
  for (NodeId n : {16u, 32u, 64u, 128u}) {
    auto demand = [](NodeId id, NodeId nn) {
      SplitMix64 rng(id * 7919 + 13);
      std::vector<RoutedMessage> out;
      for (NodeId i = 0; i < nn; ++i) {
        NodeId dst;
        do {
          dst = static_cast<NodeId>(rng.next_below(nn));
        } while (dst == id);
        out.push_back({dst, Word(1, 1)});
      }
      return out;
    };
    const auto dr = measure(n, [](NodeCtx& c, const auto& m) {
      return route_direct(c, m);
    }, demand);
    const auto br = measure(n, [](NodeCtx& c, const auto& m) {
      return route_balanced(c, m);
    }, demand);
    tb.add_row({std::to_string(n), std::to_string(dr), std::to_string(br)});
  }
  tb.print();

  std::printf(
      "\nSkewed load: node 0 sends m = 4n messages to node 1 (direct pays\n"
      "m rounds on one link; indirection spreads it):\n");
  Table ts({"n", "m", "direct rounds", "balanced rounds"});
  for (NodeId n : {16u, 32u, 64u}) {
    const std::size_t m = 4u * n;
    auto demand = [m](NodeId id, NodeId) {
      std::vector<RoutedMessage> out;
      if (id == 0)
        for (std::size_t i = 0; i < m; ++i)
          out.push_back({1, Word(i % 2, 1)});
      return out;
    };
    const auto dr = measure(n, [](NodeCtx& c, const auto& m_) {
      return route_direct(c, m_);
    }, demand);
    const auto br = measure(n, [](NodeCtx& c, const auto& m_) {
      return route_balanced(c, m_);
    }, demand);
    ts.add_row({std::to_string(n), std::to_string(m), std::to_string(dr),
                std::to_string(br)});
  }
  ts.print();
  std::printf(
      "\nShape check: balanced-load rounds stay O(1) as n grows; skewed "
      "direct grows\nlinearly in m while the two-phase router stays near "
      "2·⌈m/n⌉·2.\n");
  return 0;
}
