// SEC7.3 — the fixed-parameter tractability comparison table:
//   k-VC     : poly(k) rounds, no n dependence        (Theorem 11)
//   k-path   : exp(k) rounds, no n dependence          ([20, 35])
//   k-IS     : O(n^{1-2/k}) rounds                     ([16])
//   k-DS     : O(n^{1-1/k}) rounds                     (Theorem 9)
// One row per (problem, n) at fixed k, demonstrating which columns move
// with n and which do not.

#include <cstdio>

#include "graph/generators.hpp"
#include "graphalg/kds.hpp"
#include "graphalg/kpath.hpp"
#include "graphalg/kvc.hpp"
#include "graphalg/subgraph.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("SEC7.3: parameterised problems in the congested clique\n");
  std::printf("(k = 3 throughout; entries are measured engine rounds)\n\n");
  const unsigned k = 3;

  Table t({"n", "3-VC (Thm11)", "3-path (exp k)", "3-IS ([16])",
           "3-DS (Thm9)"});
  for (NodeId n : {27u, 64u, 125u}) {
    const auto vc =
        k_vertex_cover_clique(gen::planted_vertex_cover(n, k, 10, 3).graph,
                              k)
            .cost.rounds;
    const auto path =
        k_path_clique(gen::planted_hamiltonian_path(n, 0.02, 3).graph, k, 8)
            .cost.rounds;
    const auto is =
        independent_set_clique(
            gen::planted_independent_set(n, k, 0.35, 3).graph, k)
            .cost.rounds;
    const auto ds =
        k_dominating_set_clique(
            gen::planted_dominating_set(n, k, 0.05, 3).graph, k)
            .cost.rounds;
    t.add_row({std::to_string(n), std::to_string(vc), std::to_string(path),
               std::to_string(is), std::to_string(ds)});
  }
  t.print();
  std::printf(
      "\nShape check (paper's §7.3 contrast): the k-VC and k-path columns "
      "are flat in n\n(FPT-style), while k-IS and k-DS grow polynomially — "
      "and k-DS grows faster than k-IS\n(exponent 1-1/k vs 1-2/k), matching "
      "the W[1]/W[2] analogy the paper draws.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
