// ccqd service throughput bench (DESIGN.md §15, EXPERIMENTS.md).
//
// Spins up an in-process ccqd Server on a Unix socket and drives it with a
// closed-loop load generator: C client threads, each holding one
// connection and submitting the same scenario-matrix cell back-to-back,
// measuring per-job latency. Two daemon modes are compared:
//
//   cold  engine cache disabled — every job constructs and destroys its
//         scheduler, message plane, fiber stacks, and private-bit encoding
//         (exactly what a fresh bench process pays per run);
//   warm  engine cache on — jobs lease a kept-alive EngineSession and an
//         LRU-cached instance, paying only the run itself.
//
// For each (mode × clients ∈ {1, 8, 64}) the bench reports jobs/sec and
// p50/p99 latency, and writes BENCH_service.json for the CI trajectory
// gate. Correctness gates (--check):
//   * every submitted job received exactly one response, and every
//     response was a result — nothing rejected, nothing hung;
//   * all results across every config are bit-identical (output_fp,
//     ledger_fp, rounds, messages, bits) — the warm path may not change
//     a single bit of what is measured;
//   * a daemon result equals the library path (Engine::run with the same
//     cell config) — fingerprints, cost meter, trace ledger;
//   * warm jobs/sec strictly above cold at 8 clients.
//
// Usage: bench_service [--jobs=N] [--executors=N] [--queue=N] [--out=PATH]
//                      [--check]
//   --jobs=N       jobs per client per config (default 8)
//   --executors=N  daemon executor threads (default 4)
//   --queue=N      daemon queue depth (default 128 — sized above the
//                  client count so admission control never rejects here;
//                  rejection behaviour is bench'd by tests, not here)
//   --out=PATH     output JSON (default BENCH_service.json)
//   --check        enforce the correctness gates above

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_json.hpp"
#include "clique/chaos.hpp"
#include "clique/engine.hpp"
#include "clique/trace.hpp"
#include "graph/corpus.hpp"
#include "harness/manifest.hpp"
#include "harness/sweep.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace ccq;

namespace {

// The benched cell: small enough that per-job engine setup is a visible
// fraction of the job, which is exactly what the warm cache removes.
constexpr const char* kJobCell =
    "{\"algorithm\": \"routing_balanced\", \"family\": \"gnp\", "
    "\"p\": 0.25, \"n\": 128, \"plane\": \"flat\", \"backend\": \"pooled\", "
    "\"chaos\": false}";

struct Fingerprints {
  std::string output_fp, ledger_fp;
  std::uint64_t rounds = 0, messages = 0, bits = 0;
  bool operator==(const Fingerprints&) const = default;
};

struct ClientTally {
  std::vector<double> latencies_ms;
  std::uint64_t results = 0;
  std::uint64_t errors = 0;
  std::string first_error;
  Fingerprints fp;
  bool fp_consistent = true;
};

// One client's closed loop: submit `jobs` identical cells, timing each.
void client_loop(const std::string& socket_path, int jobs, ClientTally* t) {
  const std::string request =
      std::string("{\"type\": \"submit\", \"job\": ") + kJobCell + "}";
  try {
    service::Client client(socket_path);
    for (int j = 0; j < jobs; ++j) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::string response = client.request(request);
      const auto t1 = std::chrono::steady_clock::now();
      t->latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      const json::Value v = json::parse(response, "response");
      const json::Value* type = v.find("type");
      if (type == nullptr || type->str != "result") {
        ++t->errors;
        if (t->first_error.empty()) t->first_error = response;
        continue;
      }
      Fingerprints fp;
      fp.output_fp = json::as_string(*v.find("output_fp"), "output_fp",
                                     "response");
      fp.ledger_fp = json::as_string(*v.find("ledger_fp"), "ledger_fp",
                                     "response");
      fp.rounds = json::as_uint(*v.find("rounds"), 0, ~0ull, "rounds",
                                "response");
      fp.messages = json::as_uint(*v.find("messages"), 0, ~0ull, "messages",
                                  "response");
      fp.bits = json::as_uint(*v.find("bits"), 0, ~0ull, "bits", "response");
      if (t->results == 0) {
        t->fp = fp;
      } else if (!(fp == t->fp)) {
        t->fp_consistent = false;
      }
      ++t->results;
    }
  } catch (const std::exception& e) {
    ++t->errors;
    if (t->first_error.empty()) t->first_error = e.what();
  }
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

struct ConfigResult {
  std::string mode;
  int clients = 0;
  std::uint64_t jobs = 0;
  double wall_ms = 0, jobs_per_sec = 0, p50_ms = 0, p99_ms = 0;
  std::uint64_t errors = 0, rejected = 0, cache_hits = 0;
  Fingerprints fp;
  bool fp_consistent = true;
  std::string first_error;
};

ConfigResult run_config(const std::string& mode, int clients, int jobs,
                        std::size_t executors, std::size_t queue) {
  service::Server::Options opts;
  opts.unix_path = "/tmp/ccqd_bench_" + std::to_string(::getpid()) + ".sock";
  opts.executors = executors;
  opts.queue_capacity = queue;
  opts.cache_sessions = mode == "warm" ? 8 : 0;
  service::Server server(opts);
  server.start();

  if (mode == "warm") {
    // Prime the cache untimed so "warm" measures steady state, not the
    // first-touch misses (those are the cold column's whole point).
    ClientTally prime;
    client_loop(opts.unix_path, static_cast<int>(2 * executors), &prime);
  }

  std::vector<ClientTally> tallies(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c)
    threads.emplace_back(client_loop, opts.unix_path, jobs, &tallies[c]);
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  ConfigResult r;
  r.mode = mode;
  r.clients = clients;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::vector<double> lat;
  for (const ClientTally& t : tallies) {
    r.jobs += t.results;
    r.errors += t.errors;
    lat.insert(lat.end(), t.latencies_ms.begin(), t.latencies_ms.end());
    if (!t.fp_consistent) r.fp_consistent = false;
    if (t.results > 0) {
      if (r.fp.output_fp.empty()) {
        r.fp = t.fp;
      } else if (!(t.fp == r.fp)) {
        r.fp_consistent = false;
      }
    }
    if (r.first_error.empty()) r.first_error = t.first_error;
  }
  r.jobs_per_sec = r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.jobs) /
                                       r.wall_ms
                                 : 0;
  r.p50_ms = percentile(lat, 0.50);
  r.p99_ms = percentile(lat, 0.99);
  const service::Server::Stats stats = server.stats();
  r.rejected = stats.jobs_rejected;
  r.cache_hits = stats.cache.hits;
  server.drain();
  return r;
}

// Fold `reps` samples of one config into a single reported row:
// correctness accumulates (every job of every rep must be answered,
// all fingerprints must agree), throughput is best-of-reps —
// scheduling noise on a shared box only ever slows a rep down, so the
// best rep is the least-noisy measurement. Same convention as
// bench_matrix's best-of-trials wall clock.
ConfigResult reduce_reps(const std::vector<ConfigResult>& samples) {
  ConfigResult best = samples.front();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const ConfigResult& r = samples[i];
    best.errors += r.errors;
    best.rejected += r.rejected;
    if (!r.fp_consistent) best.fp_consistent = false;
    if (r.jobs > 0 && best.jobs > 0 && !(r.fp == best.fp))
      best.fp_consistent = false;
    if (best.first_error.empty()) best.first_error = r.first_error;
    if (r.jobs != best.jobs) best.fp_consistent = false;  // lost jobs differ
    if (r.jobs_per_sec > best.jobs_per_sec) {
      best.wall_ms = r.wall_ms;
      best.jobs_per_sec = r.jobs_per_sec;
      best.p50_ms = r.p50_ms;
      best.p99_ms = r.p99_ms;
      best.cache_hits = r.cache_hits;
    }
  }
  return best;
}

// Library-path replay of the bench cell: the same config the daemon
// builds, run through plain Engine::run. The daemon must match this bit
// for bit — fingerprints, meter, and trace ledger.
Fingerprints library_replay() {
  const json::Value job = json::parse(kJobCell, "bench cell");
  const harness::CellSpec spec = harness::parse_job_cell(job, "bench cell");
  const Graph g = corpus::make_family(spec.family, spec.n);
  const NodeProgram program = harness::find_algorithm(spec.algorithm);
  Engine::Config cfg = harness::cell_engine_config(spec);
  RoundTrace trace;
  cfg.trace = &trace;
  ChaosPlan plan(harness::cell_chaos_config(spec));
  cfg.chaos = spec.chaos ? &plan : nullptr;
  const RunResult res = Engine::run(g, program, cfg);
  Fingerprints fp;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(
                    harness::outputs_fp(res.outputs)));
  fp.output_fp = buf;
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(
                    harness::ledger_fingerprint(trace)));
  fp.ledger_fp = buf;
  fp.rounds = res.cost.rounds;
  fp.messages = res.cost.messages;
  fp.bits = res.cost.bits;
  return fp;
}

int run(int jobs, std::size_t executors, std::size_t queue, int reps,
        const std::string& out_path, bool check) {
  std::printf(
      "ccqd service bench: cell %s\n"
      "closed loop, %d job(s)/client, %zu executor(s), queue %zu, "
      "best of %d rep(s)\n\n",
      kJobCell, jobs, executors, queue, reps);

  const int kClientCounts[] = {1, 8, 64};
  // Rep-major, cold/warm innermost: the two modes of one client count
  // run back to back, so a paired warm/cold ratio from the same rep
  // cancels machine-state drift (CPU frequency, noisy neighbours) that
  // separate best-of sets would not.
  std::map<std::string, std::vector<ConfigResult>> samples;
  for (int rep = 0; rep < reps; ++rep)
    for (const int clients : kClientCounts)
      for (const char* mode : {"cold", "warm"})
        samples[std::string(mode) + "/" + std::to_string(clients)].push_back(
            run_config(mode, clients, jobs, executors, queue));

  std::vector<ConfigResult> results;
  for (const char* mode : {"cold", "warm"})
    for (const int clients : kClientCounts)
      results.push_back(reduce_reps(
          samples.at(std::string(mode) + "/" + std::to_string(clients))));

  Table table({"mode", "clients", "jobs", "jobs/sec", "p50 ms", "p99 ms",
               "rejected", "cache hits"});
  benchjson::Writer json;
  bool ok = true;
  for (const ConfigResult& r : results) {
    table.add_row({r.mode, std::to_string(r.clients), std::to_string(r.jobs),
                   Table::fmt(r.jobs_per_sec, 1), Table::fmt(r.p50_ms, 3),
                   Table::fmt(r.p99_ms, 3), std::to_string(r.rejected),
                   std::to_string(r.cache_hits)});
    json.add({{"mode", r.mode},
              {"clients", r.clients},
              {"jobs", r.jobs},
              {"executors", executors},
              {"queue", queue},
              {"wall_ms", r.wall_ms},
              {"jobs_per_sec", r.jobs_per_sec},
              {"p50_ms", r.p50_ms},
              {"p99_ms", r.p99_ms},
              {"errors", r.errors},
              {"rejected", r.rejected},
              {"cache_hits", r.cache_hits},
              {"output_fp", r.fp.output_fp},
              {"ledger_fp", r.fp.ledger_fp}});
    const std::uint64_t expected =
        static_cast<std::uint64_t>(r.clients) * static_cast<std::uint64_t>(jobs);
    if (r.errors > 0 || r.jobs != expected) {
      std::fprintf(stderr,
                   "FAIL %s/%d clients: %llu of %llu jobs answered with a "
                   "result, %llu errors%s%s\n",
                   r.mode.c_str(), r.clients,
                   static_cast<unsigned long long>(r.jobs),
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(r.errors),
                   r.first_error.empty() ? "" : "; first: ",
                   r.first_error.c_str());
      ok = false;
    }
    if (!r.fp_consistent) {
      std::fprintf(stderr, "FAIL %s/%d clients: results not bit-identical\n",
                   r.mode.c_str(), r.clients);
      ok = false;
    }
  }
  table.print();

  // Cross-config identity: warm results must equal cold results exactly.
  for (const ConfigResult& r : results) {
    if (!(r.fp == results[0].fp)) {
      std::fprintf(stderr,
                   "FAIL: %s/%d clients fingerprints diverge from %s/%d\n",
                   r.mode.c_str(), r.clients, results[0].mode.c_str(),
                   results[0].clients);
      ok = false;
    }
  }

  if (check) {
    const Fingerprints lib = library_replay();
    if (!(lib == results[0].fp)) {
      std::fprintf(
          stderr,
          "FAIL: daemon result diverges from the library path\n"
          "  library: output_fp=%s ledger_fp=%s rounds=%llu bits=%llu\n"
          "  daemon:  output_fp=%s ledger_fp=%s rounds=%llu bits=%llu\n",
          lib.output_fp.c_str(), lib.ledger_fp.c_str(),
          static_cast<unsigned long long>(lib.rounds),
          static_cast<unsigned long long>(lib.bits),
          results[0].fp.output_fp.c_str(), results[0].fp.ledger_fp.c_str(),
          static_cast<unsigned long long>(results[0].fp.rounds),
          static_cast<unsigned long long>(results[0].fp.bits));
      ok = false;
    } else {
      std::printf("\nreplay: daemon == library path (output_fp %s, "
                  "ledger_fp %s)\n",
                  lib.output_fp.c_str(), lib.ledger_fp.c_str());
    }
    // Warm-over-cold gate at 8 clients: median of the per-rep paired
    // ratios (each rep's cold and warm ran adjacent in time), not a
    // ratio of independently-reduced numbers — robust against drift
    // between the start and end of the bench.
    const std::vector<ConfigResult>& cold8 = samples.at("cold/8");
    const std::vector<ConfigResult>& warm8 = samples.at("warm/8");
    std::vector<double> ratios;
    for (int rep = 0; rep < reps; ++rep)
      if (cold8[static_cast<std::size_t>(rep)].jobs_per_sec > 0)
        ratios.push_back(warm8[static_cast<std::size_t>(rep)].jobs_per_sec /
                         cold8[static_cast<std::size_t>(rep)].jobs_per_sec);
    const double speedup = percentile(ratios, 0.50);
    if (!(speedup > 1.0)) {
      std::fprintf(stderr,
                   "FAIL: warm not above cold at 8 clients (median paired "
                   "speedup %.2fx over %d rep(s))\n",
                   speedup, reps);
      ok = false;
    } else {
      std::printf("warm speedup at 8 clients: %.2fx (median of %d paired "
                  "rep(s))\n",
                  speedup, reps);
    }
  }

  if (!ok) {
    std::fprintf(stderr, "\nbench_service: FAILED; not writing %s\n",
                 out_path.c_str());
    return 1;
  }
  if (!json.write(out_path)) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu configs)\n", out_path.c_str(), results.size());
  if (check) std::printf("CHECK OK: all service gates passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 8;
  std::size_t executors = 4;
  std::size_t queue = 128;
  int reps = 3;
  std::string out_path = "BENCH_service.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<int>(
          benchjson::parse_uint(argv[0], "--jobs", argv[i] + 7, 1, 1000));
    } else if (std::strncmp(argv[i], "--executors=", 12) == 0) {
      executors = static_cast<std::size_t>(benchjson::parse_uint(
          argv[0], "--executors", argv[i] + 12, 1, 64));
    } else if (std::strncmp(argv[i], "--queue=", 8) == 0) {
      queue = static_cast<std::size_t>(
          benchjson::parse_uint(argv[0], "--queue", argv[i] + 8, 1, 4096));
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<int>(
          benchjson::parse_uint(argv[0], "--reps", argv[i] + 7, 1, 32));
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs=N] [--executors=N] [--queue=N] "
                   "[--reps=N] [--out=PATH] [--check]\n",
                   argv[0]);
      return 2;
    }
  }
  return run(jobs, executors, queue, reps, out_path, check);
}
