// MM — the δ(semiring MM) ≤ 1/3-style upper bound feeding Figure 1 ([10]).
// Measures the naive broadcast algorithm (Θ(n·w/B) rounds) against the 3-D
// partitioned algorithm (O(n^{1/3}·w/B)) for Boolean and (min,+) matrices.

#include <cstdio>

#include "algebra/distributed_mm.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

namespace {

template <Semiring S, typename RowGen>
std::uint64_t measure(NodeId n, bool use_3d, unsigned entry_bits,
                      RowGen row_gen) {
  auto res = Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
    SplitMix64 rng(ctx.id() * 0x9e37ULL + 5);
    auto ra = row_gen(ctx.n(), rng);
    auto rb = row_gen(ctx.n(), rng);
    auto rc = use_3d ? mm_distributed_3d<S>(ctx, ra, rb, entry_bits)
                     : mm_distributed_naive<S>(ctx, ra, rb, entry_bits);
    ctx.output(static_cast<std::uint64_t>(rc[0]) & 0x3f);
  });
  return res.cost.rounds;
}

auto bool_rows = [](NodeId nn, SplitMix64& rng) {
  std::vector<BoolSemiring::Value> row(nn);
  for (NodeId j = 0; j < nn; ++j) row[j] = rng.next_bool(0.4);
  return row;
};

auto minplus_rows = [](NodeId nn, SplitMix64& rng) {
  std::vector<MinPlusSemiring::Value> row(nn);
  for (NodeId j = 0; j < nn; ++j) row[j] = rng.next_below(30);
  return row;
};

}  // namespace

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("Distributed matrix multiplication (Figure 1 MM boxes)\n\n");
  const std::vector<NodeId> ns = {27, 64, 125, 216};

  for (int which = 0; which < 2; ++which) {
    const bool boolean = which == 0;
    std::printf("%s MM:\n", boolean ? "Boolean" : "(min,+)");
    Table t({"n", "naive rounds", "3-D rounds", "speedup"});
    std::vector<double> xs, y3;
    for (NodeId n : ns) {
      std::uint64_t naive, tri;
      if (boolean) {
        naive = measure<BoolSemiring>(n, false, 1, bool_rows);
        tri = measure<BoolSemiring>(n, true, 1, bool_rows);
      } else {
        naive = measure<MinPlusSemiring>(n, false, 8, minplus_rows);
        tri = measure<MinPlusSemiring>(n, true, 8, minplus_rows);
      }
      t.add_row({std::to_string(n), std::to_string(naive),
                 std::to_string(tri),
                 Table::fmt(static_cast<double>(naive) / tri, 2)});
      xs.push_back(n);
      y3.push_back(static_cast<double>(tri));
    }
    auto fit = fit_loglog(xs, y3);
    t.print();
    std::printf(
        "3-D fitted exponent: %.3f vs the paper's 1/3 target (small-n "
        "block-size\ngranularity and the w/B ratio inflate it; the naive "
        "baseline sits near 1)\n\n",
        fit.slope);
  }
  std::printf(
      "Shape check: the 3-D algorithm wins at every size and its advantage "
      "grows with n.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
