// MM — the δ(semiring MM) ≤ 1/3-style upper bound feeding Figure 1 ([10]).
// Measures the naive broadcast algorithm (Θ(n·w/B) rounds) against the 3-D
// partitioned algorithm (O(n^{1/3}·w/B)) for Boolean and (min,+) matrices.
//
// Usage: bench_mm [--n=N] [--check] [--trace=PATH]
//   --n=N     run a single clique size instead of the default sweep
//   --check   CI smoke mode: every 3-D result row must equal the naive
//             broadcast result bit-for-bit, and 3-D rounds must not exceed
//             naive rounds × 1.15 (the same noise tolerance the other
//             bench gates use; at any measured size 3-D actually wins
//             outright, the slack only guards tiny-n granularity).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "algebra/distributed_mm.hpp"
#include "graph/generators.hpp"
#include "graphalg/common.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

namespace {

constexpr double kCheckTolerance = 1.15;

template <Semiring S>
struct Measured {
  std::uint64_t rounds = 0;
  std::vector<std::vector<typename S::Value>> rows;
};

template <Semiring S, typename RowGen>
Measured<S> measure(NodeId n, bool use_3d, unsigned entry_bits,
                    RowGen row_gen) {
  using V = typename S::Value;
  PerNode<std::vector<V>> sink(n);
  auto res = Engine::run(gen::empty(n), [&](NodeCtx& ctx) {
    SplitMix64 rng(ctx.id() * 0x9e37ULL + 5);
    auto ra = row_gen(ctx.n(), rng);
    auto rb = row_gen(ctx.n(), rng);
    auto rc = use_3d ? mm_distributed_3d<S>(ctx, ra, rb, entry_bits)
                     : mm_distributed_naive<S>(ctx, ra, rb, entry_bits);
    sink.set(ctx.id(), rc);
    ctx.output(static_cast<std::uint64_t>(rc[0]) & 0x3f);
  });
  return {res.cost.rounds, sink.take()};
}

auto bool_rows = [](NodeId nn, SplitMix64& rng) {
  std::vector<BoolSemiring::Value> row(nn);
  for (NodeId j = 0; j < nn; ++j) row[j] = rng.next_bool(0.4);
  return row;
};

auto minplus_rows = [](NodeId nn, SplitMix64& rng) {
  std::vector<MinPlusSemiring::Value> row(nn);
  for (NodeId j = 0; j < nn; ++j) row[j] = rng.next_below(30);
  return row;
};

bool g_check_ok = true;

// Runs both algorithms, verifies 3-D against the naive broadcast result
// row-for-row (fatal on mismatch — the two schedules fold identically, so
// any difference is a delivery bug, not noise), returns {naive, 3d} rounds.
template <Semiring S, typename RowGen>
std::pair<std::uint64_t, std::uint64_t> run_pair(NodeId n, unsigned entry_bits,
                                                 RowGen row_gen, bool check) {
  const auto naive = measure<S>(n, false, entry_bits, row_gen);
  const auto tri = measure<S>(n, true, entry_bits, row_gen);
  if (naive.rows != tri.rows) {
    std::printf("FATAL: 3-D result diverges from naive broadcast at n=%u\n",
                n);
    std::exit(1);
  }
  if (check &&
      static_cast<double>(tri.rounds) >
          static_cast<double>(naive.rounds) * kCheckTolerance) {
    std::printf("CHECK FAILED: 3-D rounds %llu vs naive %llu at n=%u "
                "(> %.0f%% tolerance)\n",
                static_cast<unsigned long long>(tri.rounds),
                static_cast<unsigned long long>(naive.rounds), n,
                (kCheckTolerance - 1) * 100);
    g_check_ok = false;
  }
  return {naive.rounds, tri.rounds};
}

}  // namespace

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::vector<NodeId> ns = {27, 64, 125, 216};
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      ns = {static_cast<NodeId>(
          benchjson::parse_uint(argv[0], "--n", argv[i] + 4, 1, 8192))};
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--n=N] [--check] [--trace=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  std::printf("Distributed matrix multiplication (Figure 1 MM boxes)\n\n");

  for (int which = 0; which < 2; ++which) {
    const bool boolean = which == 0;
    std::printf("%s MM (every 3-D row verified against naive):\n",
                boolean ? "Boolean" : "(min,+)");
    Table t({"n", "naive rounds", "3-D rounds", "speedup"});
    std::vector<double> xs, y3;
    for (NodeId n : ns) {
      const auto [naive, tri] =
          boolean ? run_pair<BoolSemiring>(n, 1, bool_rows, check)
                  : run_pair<MinPlusSemiring>(n, 8, minplus_rows, check);
      t.add_row({std::to_string(n), std::to_string(naive),
                 std::to_string(tri),
                 Table::fmt(static_cast<double>(naive) / tri, 2)});
      xs.push_back(n);
      y3.push_back(static_cast<double>(tri));
    }
    t.print();
    if (xs.size() > 1) {
      auto fit = fit_loglog(xs, y3);
      std::printf(
          "3-D fitted exponent: %.3f vs the paper's 1/3 target (small-n "
          "block-size\ngranularity and the w/B ratio inflate it; the naive "
          "baseline sits near 1)\n",
          fit.slope);
    }
    std::printf("\n");
  }
  std::printf(
      "Shape check: the 3-D algorithm wins at every size and its advantage "
      "grows with n.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  if (check) {
    if (!g_check_ok) return 1;
    std::printf("CHECK OK: results exact, 3-D within %.0f%% of naive "
                "rounds everywhere\n",
                (kCheckTolerance - 1) * 100);
  }
  return 0;
}
