// THM4 / COR5 — the nondeterministic hierarchy. (a) The counting table
// with the proof's parameters (M = ¼·T·n·log n advice bits, t = T/4):
// nondeterministic protocols still number far fewer than functions, so a
// language outside NCLIQUE(S) but inside CLIQUE(T) exists. (b) Toy-scale
// achievability: exact enumeration of nondeterministic protocols shows
// advice strictly helps (CLIQUE(0) ⊊ NCLIQUE(0)-style) yet still misses
// most functions.

#include <cstdio>

#include "hierarchy/counting.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("THM4: nondeterministic time hierarchy\n\n");

  std::printf("(a) Counting with the proof's parameters (t = T/4):\n");
  Table ta({"n", "T", "L", "M", "ll(nondet protocols)", "ll(functions)",
            "proof ineq", "hard fn"});
  for (std::uint64_t n : {64u, 256u, 1024u}) {
    for (std::uint64_t T : {2u, 4u, 8u}) {
      auto row = thm4_row(n, T);
      ta.add_row({std::to_string(n), std::to_string(T),
                  std::to_string(row.L), std::to_string(row.M),
                  Table::fmt(row.loglog_nondet_protocols, 1),
                  Table::fmt(row.loglog_funcs, 1),
                  row.inequality_holds ? "holds" : "FAILS",
                  row.hard_function_exists ? "yes" : "NO"});
    }
  }
  ta.print();

  std::printf(
      "\n(b) Toy achievability (n = 2, b = 1, L = 1, exhaustive):\n");
  Table tb({"t", "advice M", "achievable (det)", "achievable (nondet)",
            "of 16"});
  for (unsigned t : {0u, 1u}) {
    ProtocolSpace det(2, 1, 1, t);
    auto d = det.achievable_functions();
    std::size_t cd = 0;
    for (bool x : d) cd += x;
    std::size_t cn = 0;
    if (t == 0) {
      auto nd = achievable_nondet_functions(2, 1, 1, 1, t);
      for (bool x : nd) cn += x;
    } else {
      cn = 16;  // one round of full exchange already computes everything
    }
    tb.add_row({std::to_string(t), "1", std::to_string(cd),
                std::to_string(cn), "16"});
  }
  tb.print();
  std::printf(
      "\nShape check: (a) the proof inequality holds and hard functions "
      "exist at every\nparameter point, giving NCLIQUE(S) ⊉ CLIQUE(T) and "
      "thus COR5's strict hierarchy;\n(b) at toy scale nondeterminism "
      "strictly enlarges the zero-round class (2 → 10 of\n16 functions) "
      "but still misses XOR-like functions.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
