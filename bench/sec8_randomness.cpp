// SEC8 — "Randomness": the paper closes by noting (a) problems like MST
// where randomised algorithms beat deterministic ones, and (b) that
// one-sided Monte Carlo algorithms convert to nondeterministic ones, so
// Theorem 4's separations extend to randomised computation. This bench
// regenerates both halves with running code:
//   (a) the deterministic Borůvka MST baseline and its O(log n) phase /
//       O(log n · logn/B) round growth — the curve the randomised
//       O(log log n) literature [45, 27] improves on;
//   (b) the Monte Carlo → nondeterministic conversion, run concretely on
//       colour-coding k-path: certificate = successful seed.

#include <cstdio>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "graphalg/mst.hpp"
#include "nondet/monte_carlo.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("SEC8: randomness — MST baseline and MC->nondet\n\n");

  std::printf("(a) Deterministic Boruvka MST (the baseline the randomised\n"
              "    O(log log n) algorithms [45] improve on):\n");
  Table ta({"n", "phases", "ceil(log2 n)", "rounds", "MST weight ok"});
  for (NodeId n : {16u, 32u, 64u, 128u, 256u}) {
    Graph g = gen::gnp_weighted(n, 0.15, 40, 1000 + n);
    auto r = mst_boruvka_clique(g);
    const bool ok = r.weight == oracle::msf_weight(g);
    ta.add_row({std::to_string(n), std::to_string(r.phases),
                std::to_string(ceil_log2(n)), std::to_string(r.cost.rounds),
                ok ? "yes" : "NO"});
  }
  ta.print();

  std::printf(
      "\n(b) Monte Carlo -> nondeterministic conversion (one-sided\n"
      "    colour-coding 3-path trials; certificate = successful seed):\n");
  Table tb({"instance", "has 3-path", "prover finds seed",
            "verify rounds", "seeds tried"});
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases = {
      {"path(12)", gen::path(12)},
      {"planted Ham(12)", gen::planted_hamiltonian_path(12, 0.05, 5).graph},
      {"matching(12)",
       [] {
         Graph g = Graph::undirected(12);
         for (NodeId v = 0; v + 1 < 12; v += 2) g.add_edge(v, v + 1);
         return g;
       }()},
      {"empty(12)", gen::empty(12)},
  };
  MonteCarloVerifier verifier(k_path_monte_carlo(3));
  for (auto& c : cases) {
    const bool expect = oracle::k_path(c.g, 3).has_value();
    unsigned tried = 0;
    std::optional<Labelling> z;
    auto mc = k_path_monte_carlo(3);
    for (std::uint64_t seed = 0; seed < 64 && !z; ++seed) {
      ++tried;
      if (mc.run_trial(c.g, seed).accepted())
        z = verifier.certificate(c.g.n(), seed);
    }
    std::uint64_t vrounds = 0;
    bool ok = false;
    if (z) {
      auto run = verifier.verify(c.g, *z);
      ok = run.accepted();
      vrounds = run.cost.rounds;
    }
    tb.add_row({c.name, expect ? "yes" : "no",
                z ? (ok ? "yes (verified)" : "FAIL") : "no seed works",
                z ? std::to_string(vrounds) : "-", std::to_string(tried)});
  }
  tb.print();
  std::printf(
      "\nShape check: (a) Boruvka phases stay ≤ ⌈log₂n⌉ (random graphs "
      "merge faster)\nand rounds stay O(log n · w/B); (b) yes-instances "
      "admit a certificate seed "
      "found quickly\n(success prob ≥ k!/k^k per trial) and verification is "
      "deterministic, while\nno-instances admit none — the §8 conversion, "
      "end to end.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
