// FIG1 — the fine-grained map (§7, Figure 1). Regenerates the figure as
// (a) a measured-exponent table: every box with an implemented solver is
//     swept over n, its empirical exponent fitted from engine rounds, and
//     printed next to the paper's analytic bound;
// (b) the arrow list: each edge δ(L1) ≤ δ(L2) checked against the measured
//     exponents (analytic edges printed with their citation instead).

#include <cstdio>

#include "finegrained/registry.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("FIG1: the fine-grained complexity map, measured\n\n");

  auto problems = figure1_problems();
  // Sweep sizes: cube-friendly for the MM-based entries; per-problem
  // overrides keep exponential local solvers within budget.
  const std::vector<NodeId> default_ns = {27, 64, 125};
  const std::vector<NodeId> small_ns = {16, 32, 48};

  std::vector<ExponentEstimate> estimates;
  Table ta({"problem", "rounds@n", "fitted δ", "r2", "paper δ ≤",
            "source"});
  for (const auto& p : problems) {
    if (!p.run) {
      ta.add_row({p.name, "(analytic only)", "-", "-",
                  Table::fmt(p.analytic_upper, 3), p.upper_source});
      continue;
    }
    const bool heavy = p.name == "MaxIS" || p.name == "MinVC" ||
                       p.name == "3-COL" || p.name == "4-IS";
    const auto& ns = heavy ? small_ns : default_ns;
    auto est = estimate_exponent(p, ns, /*repetitions=*/1, /*seed=*/5);
    std::string series;
    for (std::size_t i = 0; i < est.rounds.size(); ++i) {
      series += std::to_string(static_cast<std::uint64_t>(est.rounds[i]));
      series += i + 1 < est.rounds.size() ? "/" : "";
    }
    ta.add_row({p.name, series, Table::fmt(est.fit.slope, 3),
                Table::fmt(est.fit.r2, 2), Table::fmt(p.analytic_upper, 3),
                p.upper_source});
    estimates.push_back(std::move(est));
  }
  ta.print();

  std::printf("\nFigure 1 arrows (δ(to) ≤ δ(from)):\n");
  auto edges = figure1_edges();
  auto violated = check_measured_edges(edges, estimates, 0.35);
  Table tb({"to", "from", "source", "status"});
  auto is_violated = [&](const Figure1Edge& e) {
    for (const auto& v : violated)
      if (v.to == e.to && v.from == e.from) return true;
    return false;
  };
  auto measured = [&](const std::string& name) {
    for (const auto& e : estimates)
      if (e.name == name) return true;
    return false;
  };
  for (const auto& e : edges) {
    std::string status;
    if (e.analytic_only) {
      status = "analytic (see source)";
    } else if (!measured(e.to) || !measured(e.from)) {
      status = "endpoint not in sweep";
    } else {
      status = is_violated(e) ? "VIOLATED" : "holds (measured)";
    }
    tb.add_row({e.to, e.from, e.source, status});
  }
  tb.print();
  std::printf(
      "\nShape check: all measured arrows hold within tolerance; the "
      "ordering of the map —\nexponent-0 parameterised problems < "
      "detection/MM problems < learn-everything\nproblems — matches Figure "
      "1. Absolute exponents carry a log-factor drag at these n\n(B = "
      "⌈log₂n⌉ grows too), which inflates slopes toward the upper bounds.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
