// Scenario-matrix sweep driver (DESIGN.md §14, EXPERIMENTS.md).
//
// Reads a declarative manifest describing a {algorithm} × {graph family} ×
// {n} × {plane/backend} × {chaos on/off} grid, runs every expanded cell
// through the engine with a fresh RoundTrace attached, cross-checks each
// cell's CostMeter against its trace ledger, and writes one machine-
// readable BENCH_matrix.json. tools/check_trajectory.py compares that file
// against the committed baseline: any round-count regression, or a
// wall-clock regression beyond tolerance, fails CI.
//
// Every correctness gate is always on: a cell whose ledger does not
// reproduce its meter, whose trials disagree, or whose run throws, names
// itself and exits non-zero — a broken cell can never be committed as a
// baseline.
//
// Usage: bench_matrix [--manifest=PATH] [--out=PATH] [--trials=N] [--check]
//   --manifest=PATH  manifest to run (default bench/manifests/default.json;
//                    run from the repo root)
//   --out=PATH       output JSON (default BENCH_matrix.json). CI writes to
//                    BENCH_matrix.current.json so the committed baseline
//                    stays intact for the trajectory comparison.
//   --trials=N       override the manifest's trials count
//   --check          CI smoke mode: additionally rerun every cell at a
//                    different worker count and fail unless outputs and
//                    meters are bit-identical (the engine's cross-team
//                    determinism contract, per cell)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "harness/manifest.hpp"
#include "harness/sweep.hpp"
#include "util/table.hpp"

using namespace ccq;

namespace {

int run(const std::string& manifest_path, const std::string& out_path,
        int trials_override, bool check) {
  harness::Manifest manifest;
  try {
    manifest = harness::load_manifest(manifest_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_matrix: %s\n", e.what());
    return 1;
  }
  const int trials =
      trials_override > 0 ? trials_override : manifest.trials;
  std::printf(
      "Scenario matrix '%s': %zu cell(s), best of %d trial(s)%s\n"
      "(meter == trace ledger asserted per cell)\n\n",
      manifest.name.c_str(), manifest.cells.size(), trials,
      check ? ", worker-determinism check on" : "");

  benchjson::Writer json;
  Table table({"cell", "rounds", "messages", "bits", "wall ms", "faults",
               "meter==trace"});
  bool all_ok = true;
  for (const harness::CellSpec& spec : manifest.cells) {
    harness::CellResult r;
    try {
      r = harness::run_cell(spec, trials);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FATAL: cell %s: %s\n", spec.id().c_str(),
                   e.what());
      return 1;
    }
    if (!r.ok) {
      std::fprintf(stderr, "FATAL: cell %s: %s\n", spec.id().c_str(),
                   r.fail_reason.c_str());
      all_ok = false;
      continue;
    }
    if (check) {
      const std::string diag = harness::check_worker_determinism(spec);
      if (!diag.empty()) {
        std::fprintf(stderr, "FATAL: cell %s: %s\n", spec.id().c_str(),
                     diag.c_str());
        all_ok = false;
        continue;
      }
    }
    table.add_row({spec.id(), std::to_string(r.cost.rounds),
                   std::to_string(r.cost.messages),
                   std::to_string(r.cost.bits), Table::fmt(r.wall_ms, 2),
                   std::to_string(r.faults), "yes"});
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(r.output_fp));
    json.add({{"cell", spec.id()},
              {"manifest", manifest.name},
              {"algorithm", spec.algorithm},
              {"family", spec.family.name},
              {"n", spec.n},
              {"plane", harness::plane_name(spec.plane)},
              {"backend", harness::backend_name(spec.backend)},
              {"chaos", spec.chaos ? "on" : "off"},
              {"rounds", r.cost.rounds},
              {"messages", r.cost.messages},
              {"bits", r.cost.bits},
              {"collectives", r.cost.collectives},
              {"max_sent", r.cost.max_node_sent},
              {"max_received", r.cost.max_node_received},
              {"wall_ms", r.wall_ms},
              {"faults", r.faults},
              {"output_fp", fp}});
  }
  table.print();
  if (!all_ok) {
    std::fprintf(stderr,
                 "\nbench_matrix: one or more cells FAILED; not writing %s\n",
                 out_path.c_str());
    return 1;
  }
  if (!json.write(out_path)) {
    std::fprintf(stderr, "bench_matrix: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu cells)\n", out_path.c_str(),
              manifest.cells.size());
  if (check)
    std::printf("CHECK OK: every cell ledger-consistent and "
                "worker-deterministic\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string manifest_path = "bench/manifests/default.json";
  std::string out_path = "BENCH_matrix.json";
  int trials = 0;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--manifest=", 11) == 0) {
      manifest_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--trials=", 9) == 0) {
      trials = static_cast<int>(benchjson::parse_uint(
          argv[0], "--trials", argv[i] + 9, 1, 100));
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--manifest=PATH] [--out=PATH] [--trials=N] "
                   "[--check]\n",
                   argv[0]);
      return 2;
    }
  }
  return run(manifest_path, out_path, trials, check);
}
