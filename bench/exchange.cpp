// Message-plane micro-benchmark: allocation-bound exchange loads.
//
// The workload is the plane's worst case for the legacy substrate: many
// supersteps of skewed all-to-all exchange(), where the legacy delivery
// rebuilds Θ(n²) vector queues per collective while the flat plane runs a
// counting sort over persisted arenas (DESIGN.md "Message plane"). Cost
// meters must be byte-identical between planes; only wall-clock may differ.
//
// Usage: bench_exchange [--n=N] [--check] [--trace=PATH]
//   --n=N     run a single clique size instead of the 128/256/512 sweep
//   --check   CI smoke mode: exit non-zero if the flat plane is slower
//             than legacy beyond a noise tolerance (see kCheckTolerance;
//             shared CI runners jitter best-of-5 timings by ~10%, so an
//             exact comparison would flake on timer noise alone), or if
//             enabled tracing costs more than 50% on top of delivery
//   --trace=PATH  record a round trace (see clique/trace.hpp) of every
//             run into PATH (chrome://tracing) + PATH's .jsonl sibling
//
// Writes BENCH_exchange.json ({n, backend, plane, wall_ms, rounds,
// messages, bits} per row) into the current directory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_json.hpp"
#include "clique/engine.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

using namespace ccq;

namespace {

constexpr int kSupersteps = 16;

// --check fails only when flat exceeds legacy by this factor: the gate is
// meant to catch real regressions (the steady-state win is >=2x), not the
// ~10% wall-clock jitter of a shared CI runner.
constexpr double kCheckTolerance = 1.15;

struct Sample {
  double millis = 0;
  RunResult result;
};

// Skewed all-to-all through the queue-shaped exchange() API: per superstep
// each node sends (id + dst + r) % 4 one-bit words to every destination.
void exchange_program(NodeCtx& ctx) {
  const NodeId n = ctx.n();
  std::uint64_t acc = 0;
  WordQueues out(n);
  for (int r = 0; r < kSupersteps; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      out[v].clear();
      const NodeId reps = (ctx.id() + v + r) % 4;
      for (NodeId i = 0; i < reps; ++i) out[v].emplace_back((i + r) % 2, 1);
    }
    const WordQueues in = ctx.exchange(out);
    for (NodeId v = 0; v < n; ++v) acc += in[v].size();
  }
  ctx.output(acc);
}

// The same traffic through the span-shaped fast path (exchange_flat):
// measures what a fully ported caller gains on top of the plane swap.
void exchange_flat_program(NodeCtx& ctx) {
  const NodeId n = ctx.n();
  std::uint64_t acc = 0;
  std::vector<std::pair<NodeId, Word>> sends;
  for (int r = 0; r < kSupersteps; ++r) {
    sends.clear();
    for (NodeId v = 0; v < n; ++v) {
      const NodeId reps = (ctx.id() + v + r) % 4;
      for (NodeId i = 0; i < reps; ++i) sends.emplace_back(v, Word((i + r) % 2, 1));
    }
    const FlatInbox in = ctx.exchange_flat(sends);
    for (NodeId v = 0; v < n; ++v) acc += in.from(v).size();
  }
  ctx.output(acc);
}

Sample run_config(NodeId n, MessagePlaneKind plane, bool flat_api,
                  int trials) {
  Engine::Config cfg;
  cfg.plane = plane;
  const NodeProgram program =
      flat_api ? NodeProgram(exchange_flat_program)
               : NodeProgram(exchange_program);
  Sample s;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    auto res = Engine::run(gen::empty(n), program, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (t == 0 || ms < s.millis) s.millis = ms;
    s.result = std::move(res);
  }
  return s;
}

// The tracing overhead gate. The "flat" rows above are the
// compiled-in-but-disabled numbers the acceptance baseline diffs against —
// a disabled trace costs one pointer test per collective, so those rows
// must not move between PRs. Here we additionally measure the *enabled*
// cost (per-collective O(n) delta scans + record append) so a future
// change cannot silently make --trace unusable on big sweeps. Each trial
// records into a throwaway local trace (Config::trace overrides the
// session's global one, keeping the gate out of the user's timeline).
Sample run_traced(NodeId n, int trials) {
  Sample s;
  for (int t = 0; t < trials; ++t) {
    RoundTrace tr;
    Engine::Config cfg;
    cfg.plane = MessagePlaneKind::kFlat;
    cfg.trace = &tr;
    const auto t0 = std::chrono::steady_clock::now();
    auto res = Engine::run(gen::empty(n), NodeProgram(exchange_program), cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (t == 0 || ms < s.millis) s.millis = ms;
    s.result = std::move(res);
    if (!tr.totals_match()) {
      std::printf("FATAL: trace records do not sum to metered totals\n");
      std::exit(1);
    }
  }
  return s;
}

bool same_meters(const RunResult& a, const RunResult& b) {
  return a.outputs == b.outputs && a.cost.rounds == b.cost.rounds &&
         a.cost.messages == b.cost.messages && a.cost.bits == b.cost.bits &&
         a.cost.collectives == b.cost.collectives &&
         a.cost.max_node_sent == b.cost.max_node_sent &&
         a.cost.max_node_received == b.cost.max_node_received;
}

void add_record(benchjson::Writer& json, NodeId n, const char* plane,
                const Sample& s) {
  json.add({{"n", n},
            {"backend", "pooled"},
            {"plane", plane},
            {"wall_ms", s.millis},
            {"rounds", s.result.cost.rounds},
            {"messages", s.result.cost.messages},
            {"bits", s.result.cost.bits}});
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::TraceSession trace_session(&argc, argv);
  NodeId only_n = 0;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      only_n = static_cast<NodeId>(
          benchjson::parse_uint(argv[0], "--n", argv[i] + 4, 1, 8192));
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--n=N] [--check] [--trace=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  const int trials = check ? 5 : 3;

  std::printf("Message planes (allocation-bound load: %d skewed all-to-all\n"
              "exchange supersteps, best of %d trials, pooled backend):\n\n",
              kSupersteps, trials);

  std::vector<NodeId> sizes = {128, 256, 512};
  if (only_n != 0) sizes = {only_n};

  benchjson::Writer json;
  Table t({"n", "legacy ms", "flat ms", "speedup", "flat-API ms",
           "total speedup", "counts equal"});
  bool check_failed = false;
  for (NodeId n : sizes) {
    const auto legacy =
        run_config(n, MessagePlaneKind::kLegacy, false, trials);
    const auto flat = run_config(n, MessagePlaneKind::kFlat, false, trials);
    const auto flat_api =
        run_config(n, MessagePlaneKind::kFlat, true, trials);
    if (!same_meters(legacy.result, flat.result) ||
        !same_meters(legacy.result, flat_api.result)) {
      std::printf("FATAL: planes disagree on metered cost at n=%u\n", n);
      return 1;
    }
    add_record(json, n, "legacy", legacy);
    add_record(json, n, "flat", flat);
    add_record(json, n, "flat_span", flat_api);
    t.add_row({std::to_string(n), Table::fmt(legacy.millis, 1),
               Table::fmt(flat.millis, 1),
               Table::fmt(legacy.millis / flat.millis, 1),
               Table::fmt(flat_api.millis, 1),
               Table::fmt(legacy.millis / flat_api.millis, 1), "yes"});
    if (check && flat.millis > kCheckTolerance * legacy.millis) {
      check_failed = true;
    }
  }
  t.print();

  std::printf(
      "\nTracing overhead (flat plane; \"off\" is the disabled-trace path —\n"
      "one pointer test per collective — \"on\" attaches a RoundTrace and\n"
      "pays the per-collective O(n) record scan):\n");
  Table to({"n", "trace off ms", "trace on ms", "overhead", "counts equal"});
  bool trace_gate_failed = false;
  for (NodeId n : sizes) {
    const auto off = run_config(n, MessagePlaneKind::kFlat, false, trials);
    const auto on = run_traced(n, trials);
    if (!same_meters(off.result, on.result)) {
      std::printf("FATAL: tracing changed the metered cost at n=%u\n", n);
      return 1;
    }
    json.add({{"n", n},
              {"backend", "pooled"},
              {"plane", "flat"},
              {"trace", "on"},
              {"wall_ms", on.millis},
              {"rounds", on.result.cost.rounds},
              {"messages", on.result.cost.messages},
              {"bits", on.result.cost.bits}});
    to.add_row({std::to_string(n), Table::fmt(off.millis, 1),
                Table::fmt(on.millis, 1),
                Table::fmt(on.millis / off.millis, 2), "yes"});
    // Enabled tracing must stay cheap relative to delivery itself; 1.5x is
    // far above the measured ~1.0-1.1x but catches an accidental O(n²)
    // scan or per-word work sneaking into the record path.
    if (check && on.millis > 1.5 * off.millis) trace_gate_failed = true;
  }
  to.print();

  if (!trace_session.finish(&json)) return 1;

  if (json.write("BENCH_exchange.json")) {
    std::printf("\nwrote BENCH_exchange.json\n");
  }

  if (check) {
    if (check_failed) {
      std::printf("CHECK FAILED: flat plane >%.0f%% slower than legacy\n",
                  (kCheckTolerance - 1.0) * 100.0);
      return 1;
    }
    if (trace_gate_failed) {
      std::printf("CHECK FAILED: enabled tracing costs >50%% on top of "
                  "delivery\n");
      return 1;
    }
    std::printf("CHECK OK: flat plane within %.0f%% of legacy or faster; "
                "tracing overhead in bounds\n",
                (kCheckTolerance - 1.0) * 100.0);
  }
  return 0;
}
