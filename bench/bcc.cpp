// SEC2 — the broadcast congested clique. The related-work section singles
// the BCC out as the variant where lower bounds ARE provable [19]; the
// unicast clique's power comes from having no bandwidth bottleneck. This
// bench makes the model comparison concrete:
//   (a) the all-to-all personalised-messages task: 1 unicast round vs
//       Θ(n) broadcast rounds — a measured, per-task separation;
//   (b) exact one-round achievability: at enumerable scales both models
//       compute the same function class once inputs fit a word (the
//       saturation caveat of hierarchy/bcast_protocol.hpp);
//   (c) tasks the BCC handles at no loss (degree sums, learn-the-graph).

#include <cstdio>

#include "clique/broadcast.hpp"
#include "graph/generators.hpp"
#include "hierarchy/bcast_protocol.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("SEC2: broadcast vs unicast congested clique\n\n");

  std::printf("(a) All-to-all personalised messages (each ordered pair a\n"
              "    distinct word):\n");
  Table ta({"n", "unicast rounds", "broadcast rounds", "ratio"});
  for (NodeId n : {8u, 16u, 32u, 64u}) {
    const unsigned idb = node_id_bits(n);
    auto uni = Engine::run(gen::empty(n), [idb](NodeCtx& ctx) {
      std::vector<std::pair<NodeId, Word>> sends;
      for (NodeId u = 0; u < ctx.n(); ++u)
        if (u != ctx.id())
          sends.emplace_back(u, Word((ctx.id() + u) % ctx.n(), idb));
      ctx.round(sends);
      ctx.output(0);
    });
    auto bc = run_broadcast_clique(gen::empty(n), [idb](BcastCtx& ctx) {
      for (NodeId r = 0; r + 1 < ctx.n(); ++r) {
        const NodeId target = (ctx.id() + 1 + r) % ctx.n();
        ctx.round(Word((ctx.id() + target) % ctx.n(), idb));
      }
      ctx.output(0);
    });
    ta.add_row({std::to_string(n), std::to_string(uni.cost.rounds),
                std::to_string(bc.cost.rounds),
                Table::fmt(static_cast<double>(bc.cost.rounds) /
                               uni.cost.rounds,
                           0)});
  }
  ta.print();

  std::printf("\n(b) One-round achievable function counts (exact, via the\n"
              "    view-measurability analysis):\n");
  Table tb({"(n,b,L)", "unicast", "broadcast", "of"});
  for (auto [n, b, L] : {std::tuple<unsigned, unsigned, unsigned>{2, 1, 1},
                         {2, 1, 2},
                         {3, 1, 1}}) {
    auto gap = one_round_model_gap(n, b, L);
    const std::size_t total = std::size_t{1} << (std::size_t{1} << (n * L));
    tb.add_row({"(" + std::to_string(n) + "," + std::to_string(b) + "," +
                    std::to_string(L) + ")",
                std::to_string(gap.unicast_count),
                std::to_string(gap.broadcast_count), std::to_string(total)});
  }
  tb.print();

  std::printf("\n(c) BCC-friendly tasks (no loss vs unicast):\n");
  Graph g = gen::gnp(32, 0.25, 11);
  auto deg = run_broadcast_clique(g, [](BcastCtx& ctx) {
    auto in = ctx.round(Word(ctx.adj_row().popcount(),
                             node_id_bits(ctx.n())));
    std::uint64_t sum = 0;
    for (NodeId v = 0; v < ctx.n(); ++v) sum += in[v]->value;
    ctx.output(sum);
  });
  auto learn = run_broadcast_clique(g, [](BcastCtx& ctx) {
    auto rows = ctx.broadcast(ctx.adj_row());
    std::size_t m = 0;
    for (auto& r : rows) m += r.popcount();
    ctx.output(m / 2);
  });
  std::printf("    degree sum (=2m): %llu in %llu round; learn-the-graph "
              "(m=%llu) in %llu rounds\n",
              static_cast<unsigned long long>(deg.outputs[0]),
              static_cast<unsigned long long>(deg.cost.rounds),
              static_cast<unsigned long long>(learn.outputs[0]),
              static_cast<unsigned long long>(learn.cost.rounds));

  std::printf(
      "\nShape check: the broadcast restriction costs a factor n-1 exactly "
      "on\npersonalised communication — the bandwidth bottleneck that "
      "makes BCC lower\nbounds provable [19] while the unicast clique "
      "resists them (Drucker et al.).\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
