// Sharded owner-computes backend (ExecutionBackend::kSharded) scaling.
//
// The sharded backend exists for n ≫ cores (DESIGN.md §12): static
// contiguous node shards, one plain id-ordered resume loop per owning
// worker, no shared work-stealing counter. This bench measures what that
// buys (and costs) on the two loads the backend targets:
//
//  * routing — a balanced-router batch (n messages per node, Lenzen's
//    regime) plus light ring supersteps, swept up to n = 8192 across
//    shard counts and against the pooled fiber scheduler;
//  * distributed MM — the 3-D semiring algorithm's subcube collectives
//    (algebra/distributed_mm.hpp), the paper's §7 workload, at n ≤ 1024.
//
// Cost meters and outputs must be byte-identical across every backend and
// shard count — the bench exits non-zero on any divergence, in or out of
// --check mode; wall-clock is the only column allowed to move.
//
// Usage: bench_sharding [--n=N] [--check] [--trace=PATH]
//   --n=N     run a single clique size instead of the default sweep
//   --check   CI smoke mode: exit non-zero if the sharded backend is
//             slower than pooled beyond kCheckTolerance (shared runners
//             jitter best-of-k timings by ~10%, so an exact comparison
//             would flake on timer noise alone)
//   --trace=PATH  record a round trace of every run (chrome://tracing)
//
// Writes BENCH_sharding.json ({n, load, backend, shards, wall_ms, rounds,
// messages, bits} per row) into the current directory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "algebra/distributed_mm.hpp"
#include "bench_json.hpp"
#include "clique/engine.hpp"
#include "clique/routing.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace ccq;

namespace {

// --check fails only when sharded exceeds pooled by this factor: the gate
// catches real regressions (the backends should be within a few percent of
// each other on these loads), not CI wall-clock jitter.
constexpr double kCheckTolerance = 1.15;

benchjson::Writer g_json;

struct Sample {
  double millis = 0;
  RunResult result;
};

struct Setup {
  ExecutionBackend backend;
  std::size_t workers;  // pooled: worker cap; sharded: shard count
  const char* name;
};

const Setup kSetups[] = {
    {ExecutionBackend::kPooled, 0, "pooled"},
    {ExecutionBackend::kSharded, 1, "sharded/1"},
    {ExecutionBackend::kSharded, 2, "sharded/2"},
    {ExecutionBackend::kSharded, 4, "sharded/4"},
    {ExecutionBackend::kSharded, 0, "sharded/hw"},
};

// Balanced-router batch + light ring supersteps: the mixed load the
// backend's resume loop sees in real protocols — one heavy delivery and a
// string of rendezvous-bound collectives.
void routing_program(NodeCtx& ctx) {
  const NodeId n = ctx.n();
  std::uint64_t acc = 0;

  SplitMix64 rng(ctx.id() * 7919 + 13);
  std::vector<RoutedMessage> msgs;
  msgs.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    NodeId dst;
    do {
      dst = static_cast<NodeId>(rng.next_below(n));
    } while (n > 1 && dst == ctx.id());
    msgs.push_back({dst, Word(i % 2, 1)});
  }
  for (const auto& [src, w] : route_balanced(ctx, msgs)) acc += src + w.value;

  for (int r = 0; r < 4; ++r) {
    std::vector<std::pair<NodeId, Word>> sends;
    if (n > 1) sends.emplace_back((ctx.id() + 1) % n, Word(r % 2, 1));
    const FlatInbox in = ctx.round_flat(sends);
    for (NodeId v = 0; v < n; ++v) acc += in.from(v).size();
  }
  ctx.output(acc);
}

// The 3-D MM's subcube collectives over a seeded Boolean instance; output
// is a fingerprint of row v of C, so any delivery divergence is visible.
void mm_program(NodeCtx& ctx) {
  const NodeId n = ctx.n();
  SplitMix64 rng(ctx.id() * 6151 + 29);
  std::vector<std::uint8_t> row_a(n), row_b(n);
  for (NodeId j = 0; j < n; ++j) {
    row_a[j] = rng.next_below(4) == 0 ? 1 : 0;
    row_b[j] = rng.next_below(4) == 0 ? 1 : 0;
  }
  const auto row_c = mm_distributed_3d<BoolSemiring>(ctx, row_a, row_b, 1);
  std::uint64_t fp = 0xcbf29ce484222325ull;
  for (NodeId j = 0; j < n; ++j) fp = (fp ^ row_c[j]) * 0x100000001b3ull;
  ctx.output(fp);
}

Sample run_setup(NodeId n, const NodeProgram& program, const Setup& s,
                 int trials) {
  Engine::Config cfg;
  cfg.backend = s.backend;
  cfg.workers = std::min<std::size_t>(s.workers, n);
  Sample out;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    auto res = Engine::run(gen::empty(n), program, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (t == 0 || ms < out.millis) out.millis = ms;
    out.result = std::move(res);
  }
  return out;
}

bool same_metered(const RunResult& a, const RunResult& b) {
  return a.outputs == b.outputs && a.cost.rounds == b.cost.rounds &&
         a.cost.messages == b.cost.messages && a.cost.bits == b.cost.bits &&
         a.cost.collectives == b.cost.collectives &&
         a.cost.max_node_sent == b.cost.max_node_sent &&
         a.cost.max_node_received == b.cost.max_node_received;
}

void record(NodeId n, const char* load, const Setup& s, const Sample& smp) {
  g_json.add({{"n", n},
              {"load", load},
              {"backend",
               s.backend == ExecutionBackend::kPooled ? "pooled" : "sharded"},
              {"shards", std::uint64_t{s.workers}},
              {"wall_ms", smp.millis},
              {"rounds", smp.result.cost.rounds},
              {"messages", smp.result.cost.messages},
              {"bits", smp.result.cost.bits}});
}

// Runs `program` at each n under every setup, prints the scaling table,
// returns {pooled ms, sharded/hw ms} of the largest n for the check gate.
std::pair<double, double> sweep(const char* load, const NodeProgram& program,
                                const std::vector<NodeId>& sizes,
                                int trials) {
  std::printf(
      "\n%s load (best of %d): pooled fiber scheduler vs sharded\n"
      "owner-computes across shard counts. Meters must be byte-identical;\n"
      "only wall-clock may differ:\n",
      load, trials);
  std::vector<std::string> header = {"n"};
  for (const Setup& s : kSetups) header.emplace_back(std::string(s.name) + " ms");
  header.emplace_back("counts equal");
  Table t(header);
  std::pair<double, double> gate{0, 0};
  for (NodeId n : sizes) {
    std::vector<std::string> cells = {std::to_string(n)};
    Sample ref;
    for (const Setup& s : kSetups) {
      const Sample smp = run_setup(n, program, s, trials);
      if (s.backend == ExecutionBackend::kPooled) {
        ref = smp;
        gate.first = smp.millis;
      } else if (!same_metered(ref.result, smp.result)) {
        std::printf("FATAL: %s meters diverge from pooled at n=%u\n", s.name,
                    n);
        std::exit(1);
      }
      if (s.workers == 0 && s.backend == ExecutionBackend::kSharded)
        gate.second = smp.millis;
      record(n, load, s, smp);
      cells.push_back(Table::fmt(smp.millis, 1));
    }
    cells.emplace_back("yes");
    t.add_row(cells);
  }
  t.print();
  return gate;
}

int run_bench(std::vector<NodeId> sizes, bool check,
              benchjson::TraceSession& trace_session) {
  // More trials in check mode: the gate compares two near-equal code paths,
  // so best-of-k needs a few extra draws to shed shared-runner jitter.
  const int trials = check ? 5 : 2;

  // The MM load is capped at n = 1024 (the 3-D algorithm's subcube
  // collectives are delivery-dense; larger sizes belong to bench_mm).
  std::vector<NodeId> mm_sizes;
  for (NodeId n : sizes) {
    const NodeId m = std::min<NodeId>(n, 1024);
    if (mm_sizes.empty() || mm_sizes.back() != m) mm_sizes.push_back(m);
  }

  const auto routing_gate =
      sweep("routing", NodeProgram(routing_program), sizes, trials);
  const auto mm_gate = sweep("3-D MM", NodeProgram(mm_program), mm_sizes,
                             trials);

  if (!trace_session.finish(&g_json)) return 1;
  if (g_json.write("BENCH_sharding.json")) {
    std::printf("\nwrote BENCH_sharding.json\n");
  }

  if (check) {
    bool ok = true;
    if (routing_gate.second > routing_gate.first * kCheckTolerance) {
      std::printf("CHECK FAILED: sharded routing %.1f ms vs pooled %.1f ms "
                  "(> %.0f%% tolerance)\n",
                  routing_gate.second, routing_gate.first,
                  (kCheckTolerance - 1) * 100);
      ok = false;
    }
    if (mm_gate.second > mm_gate.first * kCheckTolerance) {
      std::printf("CHECK FAILED: sharded MM %.1f ms vs pooled %.1f ms "
                  "(> %.0f%% tolerance)\n",
                  mm_gate.second, mm_gate.first, (kCheckTolerance - 1) * 100);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("CHECK OK: sharded within %.0f%% of pooled on both loads\n",
                (kCheckTolerance - 1) * 100);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchjson::TraceSession trace_session(&argc, argv);
  std::vector<NodeId> sizes = {1024, 4096, 8192};
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      sizes = {static_cast<NodeId>(
          benchjson::parse_uint(argv[0], "--n", argv[i] + 4, 1, 8192))};
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--n=N] [--check] [--trace=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  std::printf("Sharded backend scaling (owner-computes, DESIGN.md §12)\n");
  return run_bench(std::move(sizes), check, trace_session);
}
