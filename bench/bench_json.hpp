#pragma once

// Machine-readable benchmark output: a minimal JSON array writer so CI (and
// EXPERIMENTS.md tooling) can diff benchmark runs without scraping the
// printed tables. Keys and string values in this repo are plain
// identifiers, so no escaping is needed; numbers are emitted verbatim.
//
// Usage:
//   benchjson::Writer out;
//   out.add({{"n", 512}, {"plane", "flat"}, {"wall_ms", 12.3}});
//   out.write("BENCH_routing.json");
//
// TraceSession (below) is the shared --trace=<path> plumbing: construct it
// first thing in main() and call finish() before writing BENCH_*.json.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <variant>
#include <vector>

#include "bench_args.hpp"
#include "clique/trace.hpp"

namespace ccq::benchjson {

/// Strict numeric-flag parsing now lives in bench_args.hpp (next to
/// parse_double and the flag matchers); re-exported here for the bench
/// mains that predate the split.
using benchargs::parse_uint;

struct Field {
  Field(const char* k, const char* v) : key(k), value(v) {}
  Field(const char* k, const std::string& v) : key(k), value(v) {}
  Field(const char* k, double v) : key(k), value(v) {}
  Field(const char* k, std::uint64_t v) : key(k), value(v) {}
  Field(const char* k, unsigned v) : key(k), value(std::uint64_t{v}) {}
  Field(const char* k, int v)
      : key(k), value(static_cast<std::uint64_t>(v)) {}

  std::string key;
  std::variant<std::string, double, std::uint64_t> value;
};

class Writer {
 public:
  void add(std::initializer_list<Field> fields) {
    std::string rec = "{";
    bool first = true;
    for (const Field& f : fields) {
      if (!first) rec += ", ";
      first = false;
      rec += "\"" + f.key + "\": ";
      if (const auto* s = std::get_if<std::string>(&f.value)) {
        rec += "\"" + *s + "\"";
      } else if (const auto* d = std::get_if<double>(&f.value)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", *d);
        rec += buf;
      } else {
        rec += std::to_string(std::get<std::uint64_t>(f.value));
      }
    }
    records_.push_back(rec + "}");
  }

  bool write(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", records_[i].c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::string> records_;
};

// Per-bench round-trace session (clique/trace.hpp). Construction scans argv
// for --trace=<path> (falling back to the CCQ_TRACE environment variable)
// and strips it so bench-specific flag parsing never sees it; when enabled,
// it installs the process-wide trace, so every Engine::run the bench
// performs lands in one timeline. finish() writes <path> in Chrome Trace
// Event Format (load in chrome://tracing or https://ui.perfetto.dev) plus
// the raw per-collective ledger next to it as <path>l / <path>.jsonl,
// prints a per-phase rounds/bits breakdown, appends the same breakdown to
// the bench's BENCH_*.json rows, and self-checks that the per-record sums
// reproduce the CostMeter totals exactly — a false return is a tracing bug,
// and benches exit non-zero on it.
//
// Usage:
//   int main(int argc, char** argv) {
//     benchjson::TraceSession trace(&argc, argv);
//     ...run benchmarks...
//     if (!trace.finish(&json)) return 1;   // before json.write(...)
//     json.write("BENCH_foo.json");
//   }
class TraceSession {
 public:
  TraceSession(int* argc, char** argv) {
    int keep = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strncmp(argv[i], "--trace=", 8) == 0) {
        path_ = argv[i] + 8;
      } else {
        argv[keep++] = argv[i];
      }
    }
    *argc = keep;
    argv[keep] = nullptr;
    if (path_.empty()) {
      const char* env = std::getenv("CCQ_TRACE");
      if (env != nullptr && env[0] != '\0') path_ = env;
    }
    if (enabled()) trace::set_global(&trace_);
  }

  ~TraceSession() {
    if (enabled()) {
      if (!finished_) finish(nullptr);
      trace::set_global(nullptr);
    }
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  const RoundTrace& trace() const { return trace_; }

  bool finish(Writer* json) {
    if (!enabled() || finished_) return true;
    finished_ = true;
    trace::set_global(nullptr);

    const CostMeter& total = trace_.metered_totals();
    std::printf("\ntrace: %llu run(s), %zu collective(s), %llu round(s)\n",
                static_cast<unsigned long long>(trace_.runs()),
                trace_.records().size(),
                static_cast<unsigned long long>(total.rounds));
    std::printf("  %-22s %12s %12s %14s %16s\n", "phase", "collectives",
                "rounds", "messages", "bits");
    for (const auto& [phase, t] : trace_.phase_totals()) {
      std::printf("  %-22s %12llu %12llu %14llu %16llu\n", phase.c_str(),
                  static_cast<unsigned long long>(t.collectives),
                  static_cast<unsigned long long>(t.rounds),
                  static_cast<unsigned long long>(t.messages),
                  static_cast<unsigned long long>(t.bits));
      if (json != nullptr) {
        json->add({{"phase", phase},
                   {"collectives", t.collectives},
                   {"rounds", t.rounds},
                   {"messages", t.messages},
                   {"bits", t.bits}});
      }
    }

    bool ok = true;
    if (trace_.totals_match()) {
      std::printf("trace self-check: OK (per-record sums == metered totals)\n");
    } else {
      std::printf("trace self-check: FAILED — per-record sums do not "
                  "reproduce the CostMeter totals\n");
      ok = false;
    }

    const std::string jsonl_path =
        path_.size() >= 5 && path_.compare(path_.size() - 5, 5, ".json") == 0
            ? path_ + "l"
            : path_ + ".jsonl";
    if (trace_.write_chrome(path_) && trace_.write_jsonl(jsonl_path)) {
      std::printf("wrote %s (chrome://tracing) and %s (JSONL ledger)\n",
                  path_.c_str(), jsonl_path.c_str());
    } else {
      std::printf("trace: failed to write %s / %s\n", path_.c_str(),
                  jsonl_path.c_str());
      ok = false;
    }
    return ok;
  }

 private:
  RoundTrace trace_;
  std::string path_;
  bool finished_ = false;
};

}  // namespace ccq::benchjson
