#pragma once

// Machine-readable benchmark output: a minimal JSON array writer so CI (and
// EXPERIMENTS.md tooling) can diff benchmark runs without scraping the
// printed tables. Keys and string values in this repo are plain
// identifiers, so no escaping is needed; numbers are emitted verbatim.
//
// Usage:
//   benchjson::Writer out;
//   out.add({{"n", 512}, {"plane", "flat"}, {"wall_ms", 12.3}});
//   out.write("BENCH_routing.json");

#include <cstdint>
#include <cstdio>
#include <string>
#include <variant>
#include <vector>

namespace ccq::benchjson {

struct Field {
  Field(const char* k, const char* v) : key(k), value(v) {}
  Field(const char* k, const std::string& v) : key(k), value(v) {}
  Field(const char* k, double v) : key(k), value(v) {}
  Field(const char* k, std::uint64_t v) : key(k), value(v) {}
  Field(const char* k, unsigned v) : key(k), value(std::uint64_t{v}) {}
  Field(const char* k, int v)
      : key(k), value(static_cast<std::uint64_t>(v)) {}

  std::string key;
  std::variant<std::string, double, std::uint64_t> value;
};

class Writer {
 public:
  void add(std::initializer_list<Field> fields) {
    std::string rec = "{";
    bool first = true;
    for (const Field& f : fields) {
      if (!first) rec += ", ";
      first = false;
      rec += "\"" + f.key + "\": ";
      if (const auto* s = std::get_if<std::string>(&f.value)) {
        rec += "\"" + *s + "\"";
      } else if (const auto* d = std::get_if<double>(&f.value)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", *d);
        rec += buf;
      } else {
        rec += std::to_string(std::get<std::uint64_t>(f.value));
      }
    }
    records_.push_back(rec + "}");
  }

  bool write(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", records_[i].c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::string> records_;
};

}  // namespace ccq::benchjson
