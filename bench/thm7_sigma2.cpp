// THM7 — the unlimited constant-round hierarchy collapses: EVERY decision
// problem is in Σ₂ via guess-the-graph + universal spot-check. This bench
// (a) runs the universal Σ₂ algorithm for several unrelated languages on
// tiny instances, exhaustively quantifying the universal probe, and
// (b) tabulates the existential label size n(n-1)/2 against the
// logarithmic hierarchy's O(n·log n) budget — the quantitative gap that
// lets Theorem 8 still separate the logarithmic version.

#include <cstdio>

#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "hierarchy/alternation.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("THM7: all problems are in Sigma_2 (unlimited labels)\n\n");

  struct Lang {
    const char* name;
    std::function<bool(const Graph&)> f;
  };
  std::vector<Lang> langs = {
      {"has-triangle",
       [](const Graph& g) { return oracle::k_clique(g, 3).has_value(); }},
      {"connected",
       [](const Graph& g) { return oracle::is_connected(g); }},
      {"even-edge-count", [](const Graph& g) { return g.m() % 2 == 0; }},
      {"has-isolated-node",
       [](const Graph& g) {
         for (NodeId v = 0; v < g.n(); ++v)
           if (g.degree(v) == 0) return true;
         return false;
       }},
  };

  std::printf(
      "(a) Universal Sigma_2 on all 64 graphs with n = 4 (honest guess,\n"
      "    all universal probes enumerated):\n");
  Table t({"language", "instances", "correct", "dishonest guess caught"});
  for (auto& lang : langs) {
    auto algo = sigma2_universal(lang.name, lang.f);
    int correct = 0, total = 0;
    for (std::uint64_t code = 0; code < 64; ++code) {
      Graph g = Graph::undirected(4);
      std::size_t bit = 0;
      for (NodeId u = 0; u < 4; ++u)
        for (NodeId v = u + 1; v < 4; ++v)
          if ((code >> bit++) & 1) g.add_edge(u, v);
      const bool expect = lang.f(g);
      const bool got =
          accepts_for_all_suffix(g, algo, sigma2_honest_guess(g));
      ++total;
      correct += got == expect;
    }
    // Dishonest prover: one node guesses K4 instead of the true P4.
    Graph truth = gen::path(4);
    Labelling z1 = sigma2_honest_guess(truth);
    z1[1] = sigma2_encode_guess(gen::complete(4));
    auto algo2 = sigma2_universal(lang.name, lang.f);
    const bool caught = !accepts_for_all_suffix(truth, algo2, z1);
    t.add_row({lang.name, std::to_string(total), std::to_string(correct),
               caught ? "yes" : "NO"});
  }
  t.print();

  std::printf(
      "\n(b) Label sizes: Theorem 7's existential guess vs the logarithmic "
      "budget:\n");
  Table ts({"n", "guess bits n(n-1)/2", "log budget n·logn",
            "fits log hierarchy?"});
  for (NodeId n : {4u, 8u, 16u, 64u, 256u}) {
    const std::size_t guess = static_cast<std::size_t>(n) * (n - 1) / 2;
    const std::size_t budget = static_cast<std::size_t>(n) * ceil_log2(n);
    ts.add_row({std::to_string(n), std::to_string(guess),
                std::to_string(budget), guess <= budget ? "yes" : "no"});
  }
  ts.print();
  std::printf(
      "\nShape check: the universal algorithm decides every plugged-in "
      "language exactly\n(collapse to Sigma_2), and its labels outgrow the "
      "O(n log n) budget from n = 8 on —\nwhich is why the logarithmic "
      "hierarchy does NOT collapse (Theorem 8).\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
