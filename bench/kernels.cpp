// Local-compute kernel comparison bench (DESIGN.md §11) + the original
// google-benchmark micro-benchmarks behind --micro.
//
// Default mode sweeps the serial/blocked/bit-packed/parallel MM kernels
// against the seed's mm_naive per semiring, and the bulk word-level
// pack/unpack paths against the per-entry reference, printing speedup
// tables. Every timed result is compared bit-for-bit against mm_naive (or
// the per-entry codec) before it is reported — a kernel that is fast but
// wrong fails the run, not just --check.
//
// Usage: bench_kernels [--n=N] [--check] [--trace=PATH]
//                      [--micro [gbench flags]]
//   --n=N     run a single size instead of the 128/256/512 sweep
//   --check   CI smoke mode: exit non-zero if any kernel disagrees with
//             mm_naive, if mm_parallel is not identical across worker
//             counts, or if the headline speedups regress (bit-packed
//             Boolean < 4x, best min-plus < 1.2x at n ≥ 256, and — when
//             AVX2 is active — SIMD min-plus tiled ≥ 1.3x over the forced
//             scalar tiled kernel at n ≥ 512; the issue's target is 1.5x
//             and the gate keeps a 15% noise margin so a shared runner
//             cannot flake it)
//
// Respects CCQ_SIMD=off (forces the scalar paths); the SIMD columns are
// measured by forcing each dispatch level around the same kernel, so the
// scalar/SIMD comparison works regardless of the ambient policy.
//   --micro   run the google-benchmark micro-benchmarks (engine
//             collectives, routing, oracles) instead; remaining flags go
//             to google-benchmark
//   --trace=PATH  record a round trace of engine runs (micro mode only —
//             the comparison mode is pure local compute)
//
// Writes BENCH_kernels.json ({n, semiring, kernel, wall_ms, speedup} per
// MM row; {entry_bits, path, wall_ms, mentries_per_s} per packing row).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "algebra/distributed_mm.hpp"
#include "algebra/kernels.hpp"
#include "algebra/mm.hpp"
#include "algebra/simd.hpp"
#include "bench_args.hpp"
#include "bench_json.hpp"
#include "clique/routing.hpp"
#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ccq {
namespace {

// ---- shared helpers -------------------------------------------------------

template <typename S>
Matrix<typename S::Value> random_square(std::size_t n, std::uint64_t seed,
                                        std::uint64_t cap) {
  SplitMix64 rng(seed);
  Matrix<typename S::Value> m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m.at(i, j) = static_cast<typename S::Value>(rng.next_below(cap));
  return m;
}

Matrix<std::uint64_t> random_minplus(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Matrix<std::uint64_t> m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m.at(i, j) = rng.next_bool(0.2) ? MinPlusSemiring::infinity()
                                      : rng.next_below(100000);
  return m;
}

template <typename Fn>
double time_best_ms(int trials, Fn&& fn) {
  double best = 0;
  for (int t = 0; t < trials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (t == 0 || ms < best) best = ms;
  }
  return best;
}

// ---- comparison mode ------------------------------------------------------

struct CheckState {
  bool check = false;
  bool failed = false;
  std::vector<std::string> failures;

  void fail(const std::string& why) {
    failed = true;
    failures.push_back(why);
  }
};

// One timed kernel row: runs `fn` best-of-`trials`, verifies the result
// against `expect`, records JSON, and returns the wall time.
template <typename M, typename Fn>
double mm_row(benchjson::Writer& json, std::size_t n, const char* semiring,
              const char* kernel, int trials, const M& expect,
              double naive_ms, Fn&& fn) {
  M got;
  const double ms = time_best_ms(trials, [&] { got = fn(); });
  if (!(got == expect)) {
    std::printf("FATAL: kernel %s/%s disagrees with mm_naive at n=%zu\n",
                semiring, kernel, n);
    std::exit(1);
  }
  const double speedup = naive_ms > 0 && ms > 0 ? naive_ms / ms : 1.0;
  json.add({{"n", n},
            {"semiring", semiring},
            {"kernel", kernel},
            {"wall_ms", ms},
            {"speedup", speedup}});
  return ms;
}

std::string fmt_speedup(double naive_ms, double ms) {
  return Table::fmt(ms > 0 ? naive_ms / ms : 1.0, 1) + "x";
}

// Pins the SIMD dispatch level around one kernel invocation so the scalar
// and vector paths of the *same* kernel can sit side by side in a table.
// force/clear_force are single atomic stores — noise, not overhead, next to
// an n^3 kernel.
template <typename Fn>
auto at_level(simd::Level level, Fn&& fn) {
  simd::force(level);
  auto result = fn();
  simd::clear_force();
  return result;
}

void bool_mm_table(benchjson::Writer& json, CheckState& cs,
                   const std::vector<std::size_t>& sizes, int trials) {
  std::printf("Boolean MM (byte-wide mm_naive vs bit-packed kernels; the\n"
              "bitpacked column includes the Matrix<->BitMatrix "
              "conversions):\n\n");
  Table t({"n", "naive ms", "blocked ms", "tiled ms", "bitpk scalar ms",
           "bitpacked ms", "auto ms", "bitpacked speedup"});
  for (std::size_t n : sizes) {
    const auto a = random_square<BoolSemiring>(n, 11, 2);
    const auto b = random_square<BoolSemiring>(n, 12, 2);
    Matrix<std::uint8_t> expect;
    const double naive_ms = time_best_ms(
        trials, [&] { expect = mm_naive<BoolSemiring>(a, b); });
    json.add({{"n", n},
              {"semiring", "bool"},
              {"kernel", "naive"},
              {"wall_ms", naive_ms},
              {"speedup", 1.0}});
    const double blocked_ms =
        mm_row(json, n, "bool", "blocked", trials, expect, naive_ms,
               [&] { return mm_blocked<BoolSemiring>(a, b, 32); });
    const double tiled_ms =
        mm_row(json, n, "bool", "tiled", trials, expect, naive_ms,
               [&] { return kernels::mm_tiled<BoolSemiring>(a, b); });
    const double bit_scalar_ms =
        mm_row(json, n, "bool", "bitpacked_scalar", trials, expect, naive_ms,
               [&] {
                 return at_level(simd::Level::kScalar,
                                 [&] { return kernels::bool_mm_bitpacked(a, b); });
               });
    const double bit_ms =
        mm_row(json, n, "bool", "bitpacked", trials, expect, naive_ms,
               [&] { return kernels::bool_mm_bitpacked(a, b); });
    const double auto_ms =
        mm_row(json, n, "bool", "auto", trials, expect, naive_ms,
               [&] { return kernels::mm_auto<BoolSemiring>(a, b); });
    t.add_row({std::to_string(n), Table::fmt(naive_ms, 2),
               Table::fmt(blocked_ms, 2), Table::fmt(tiled_ms, 2),
               Table::fmt(bit_scalar_ms, 2), Table::fmt(bit_ms, 2),
               Table::fmt(auto_ms, 2), fmt_speedup(naive_ms, bit_ms)});
    if (cs.check && n >= 256 && naive_ms < 4.0 * bit_ms)
      cs.fail("boolean bitpacked speedup < 4x at n=" + std::to_string(n));
  }
  t.print();
}

void minplus_mm_table(benchjson::Writer& json, CheckState& cs,
                      const std::vector<std::size_t>& sizes, int trials) {
  std::printf("\n(min,+) MM (the APSP inner loop; tiled uses the "
              "saturation-shortcut\nmicro-kernel, parallel shards rows over "
              "the kernel pool, %zu worker(s)):\n\n",
              kernels::pool().size());
  Table t({"n", "naive ms", "blocked ms", "tiled scalar ms", "tiled ms",
           "parallel ms", "auto ms", "simd speedup"});
  for (std::size_t n : sizes) {
    const auto a = random_minplus(n, 21);
    const auto b = random_minplus(n, 22);
    Matrix<std::uint64_t> expect;
    const double naive_ms = time_best_ms(
        trials, [&] { expect = mm_naive<MinPlusSemiring>(a, b); });
    json.add({{"n", n},
              {"semiring", "minplus"},
              {"kernel", "naive"},
              {"wall_ms", naive_ms},
              {"speedup", 1.0}});
    const double blocked_ms =
        mm_row(json, n, "minplus", "blocked", trials, expect, naive_ms,
               [&] { return mm_blocked<MinPlusSemiring>(a, b, 32); });
    const double tiled_scalar_ms =
        mm_row(json, n, "minplus", "tiled_scalar", trials, expect, naive_ms,
               [&] {
                 return at_level(simd::Level::kScalar, [&] {
                   return kernels::mm_tiled<MinPlusSemiring>(a, b);
                 });
               });
    const double tiled_ms =
        mm_row(json, n, "minplus", "tiled", trials, expect, naive_ms,
               [&] { return kernels::mm_tiled<MinPlusSemiring>(a, b); });
    const double parallel_ms =
        mm_row(json, n, "minplus", "parallel", trials, expect, naive_ms,
               [&] { return kernels::mm_parallel<MinPlusSemiring>(a, b); });
    const double auto_ms =
        mm_row(json, n, "minplus", "auto", trials, expect, naive_ms,
               [&] { return kernels::mm_auto<MinPlusSemiring>(a, b); });
    const double best =
        std::min({tiled_ms, parallel_ms, auto_ms});
    t.add_row({std::to_string(n), Table::fmt(naive_ms, 2),
               Table::fmt(blocked_ms, 2), Table::fmt(tiled_scalar_ms, 2),
               Table::fmt(tiled_ms, 2), Table::fmt(parallel_ms, 2),
               Table::fmt(auto_ms, 2),
               fmt_speedup(tiled_scalar_ms, tiled_ms)});
    if (cs.check && n >= 256 && naive_ms < 1.2 * best)
      cs.fail("min-plus best kernel speedup < 1.2x at n=" +
              std::to_string(n));
    // The SIMD gate: issue target is 1.5x over the scalar tiled kernel at
    // n=512; 1.3 = 1.5 with the 15% noise tolerance. Only meaningful when
    // the vector path can actually run (AVX2 detected, not CCQ_SIMD=off).
    if (cs.check && n >= 512 && simd::active() == simd::Level::kAvx2 &&
        tiled_scalar_ms < 1.3 * tiled_ms)
      cs.fail("min-plus SIMD tiled speedup < 1.3x over scalar tiled at n=" +
              std::to_string(n));
  }
  t.print();
}

void ring_mm_table(benchjson::Writer& json,
                   const std::vector<std::size_t>& sizes, int trials) {
  std::printf("\nRing MM (I64Ring; auto routes large squares to Strassen "
              "when the pool\nis unavailable, else to the parallel tiled "
              "kernel):\n\n");
  Table t({"n", "naive ms", "tiled ms", "strassen ms", "auto ms",
           "auto speedup"});
  for (std::size_t n : sizes) {
    const auto a = random_square<I64Ring>(n, 31, 100);
    const auto b = random_square<I64Ring>(n, 32, 100);
    Matrix<std::int64_t> expect;
    const double naive_ms =
        time_best_ms(trials, [&] { expect = mm_naive<I64Ring>(a, b); });
    json.add({{"n", n},
              {"semiring", "i64"},
              {"kernel", "naive"},
              {"wall_ms", naive_ms},
              {"speedup", 1.0}});
    const double tiled_ms =
        mm_row(json, n, "i64", "tiled", trials, expect, naive_ms,
               [&] { return kernels::mm_tiled<I64Ring>(a, b); });
    const double strassen_ms =
        mm_row(json, n, "i64", "strassen", trials, expect, naive_ms,
               [&] { return mm_strassen<I64Ring>(a, b); });
    const double auto_ms =
        mm_row(json, n, "i64", "auto", trials, expect, naive_ms,
               [&] { return kernels::mm_auto<I64Ring>(a, b); });
    t.add_row({std::to_string(n), Table::fmt(naive_ms, 2),
               Table::fmt(tiled_ms, 2), Table::fmt(strassen_ms, 2),
               Table::fmt(auto_ms, 2), fmt_speedup(naive_ms, auto_ms)});
  }
  t.print();
}

// Per-entry reference pack/unpack (the seed's implementation), for the
// codec throughput comparison.
BitVector pack_per_entry(const std::vector<std::int64_t>& values,
                         unsigned entry_bits) {
  BitVector bv;
  for (const auto& v : values)
    bv.append_bits(encode_value<I64Ring>(v, entry_bits), entry_bits);
  return bv;
}

void packing_table(benchjson::Writer& json, int trials) {
  constexpr std::size_t kCount = 1 << 20;
  std::printf("\nEntry packing (%zu entries; bulk = word-at-a-time paths in "
              "pack_entries/\nunpack_entries, ref = per-entry "
              "append_bits/read_bits):\n\n",
              kCount);
  Table t({"entry_bits", "pack ref ms", "pack scalar ms", "pack bulk ms",
           "unpack ref ms", "unpack scalar ms", "unpack bulk ms",
           "pack speedup"});
  for (unsigned entry_bits : {1u, 8u, 13u, 32u}) {
    SplitMix64 rng(1000 + entry_bits);
    const std::uint64_t cap = (std::uint64_t{1} << entry_bits) - 1;
    std::vector<std::int64_t> values(kCount);
    for (auto& v : values)
      v = static_cast<std::int64_t>(rng.next_below(cap + 1));
    const std::span<const std::int64_t> span(values);

    BitVector bulk, ref, bulk_scalar;
    const double ref_pack_ms = time_best_ms(
        trials, [&] { ref = pack_per_entry(values, entry_bits); });
    const double scalar_pack_ms = time_best_ms(trials, [&] {
      bulk_scalar = at_level(simd::Level::kScalar, [&] {
        return pack_entries<I64Ring>(span, entry_bits);
      });
    });
    const double bulk_pack_ms = time_best_ms(
        trials, [&] { bulk = pack_entries<I64Ring>(span, entry_bits); });
    if (!(bulk == ref) || !(bulk_scalar == ref)) {
      std::printf("FATAL: bulk pack disagrees with per-entry reference at "
                  "entry_bits=%u\n",
                  entry_bits);
      std::exit(1);
    }
    std::vector<std::int64_t> ref_out, bulk_out, scalar_out;
    const double ref_unpack_ms = time_best_ms(trials, [&] {
      ref_out.clear();
      for (std::size_t i = 0; i < kCount; ++i)
        ref_out.push_back(decode_value<I64Ring>(
            bulk.read_bits(i * entry_bits, entry_bits), entry_bits));
    });
    const double scalar_unpack_ms = time_best_ms(trials, [&] {
      scalar_out = at_level(simd::Level::kScalar, [&] {
        return unpack_entries<I64Ring>(bulk, kCount, entry_bits);
      });
    });
    const double bulk_unpack_ms = time_best_ms(trials, [&] {
      bulk_out = unpack_entries<I64Ring>(bulk, kCount, entry_bits);
    });
    if (!(bulk_out == ref_out) || !(bulk_out == values) ||
        !(scalar_out == values)) {
      std::printf("FATAL: bulk unpack disagrees at entry_bits=%u\n",
                  entry_bits);
      std::exit(1);
    }
    const double mentries =
        bulk_pack_ms > 0 ? kCount / (bulk_pack_ms * 1000.0) : 0.0;
    json.add({{"entry_bits", entry_bits},
              {"path", "bulk"},
              {"wall_ms", bulk_pack_ms},
              {"mentries_per_s", mentries}});
    json.add({{"entry_bits", entry_bits},
              {"path", "bulk_scalar"},
              {"wall_ms", scalar_pack_ms},
              {"mentries_per_s",
               scalar_pack_ms > 0 ? kCount / (scalar_pack_ms * 1000.0)
                                  : 0.0}});
    json.add({{"entry_bits", entry_bits},
              {"path", "per_entry"},
              {"wall_ms", ref_pack_ms},
              {"mentries_per_s",
               ref_pack_ms > 0 ? kCount / (ref_pack_ms * 1000.0) : 0.0}});
    t.add_row({std::to_string(entry_bits), Table::fmt(ref_pack_ms, 2),
               Table::fmt(scalar_pack_ms, 2), Table::fmt(bulk_pack_ms, 2),
               Table::fmt(ref_unpack_ms, 2), Table::fmt(scalar_unpack_ms, 2),
               Table::fmt(bulk_unpack_ms, 2),
               fmt_speedup(ref_pack_ms, bulk_pack_ms)});
  }
  t.print();
}

// mm_parallel must be a pure function of its inputs: identical output for
// every worker count and grain. Explicit pools make this meaningful even on
// a single-core host (oversubscription still interleaves block order).
void determinism_check(CheckState& cs) {
  std::printf("\nParallel determinism (mm_parallel across pools of 1/4/8 "
              "workers,\ngrains 8/16/100):\n");
  ThreadPool p1(1), p4(4), p8(8);
  const std::size_t n = 200;
  const auto a = random_minplus(n, 41);
  const auto b = random_minplus(n, 42);
  const auto expect = mm_naive<MinPlusSemiring>(a, b);
  bool ok = true;
  for (std::size_t grain : {8ul, 16ul, 100ul}) {
    for (ThreadPool* tp : {&p1, &p4, &p8}) {
      if (!(kernels::mm_parallel<MinPlusSemiring>(a, b, grain, tp) ==
            expect))
        ok = false;
    }
  }
  const auto ia = random_square<I64Ring>(150, 43, 50);
  const auto ib = random_square<I64Ring>(150, 44, 50);
  const auto iexpect = mm_naive<I64Ring>(ia, ib);
  for (ThreadPool* tp : {&p4, &p8})
    if (!(kernels::mm_parallel<I64Ring>(ia, ib, 8, tp) == iexpect))
      ok = false;
  std::printf("  %s\n", ok ? "identical across all worker counts"
                           : "MISMATCH ACROSS WORKER COUNTS");
  if (!ok) cs.fail("mm_parallel result depends on the worker count");
}

int run_comparison(std::vector<std::size_t> sizes, bool check) {
  const int trials = check ? 5 : 3;
  CheckState cs;
  cs.check = check;
  std::printf("Local-compute kernels (best of %d trials):\n", trials);
  std::printf("SIMD dispatch: detected=%s active=%s (CCQ_SIMD=%s)\n\n",
              simd::level_name(simd::detected()),
              simd::level_name(simd::active()),
              std::getenv("CCQ_SIMD") != nullptr ? std::getenv("CCQ_SIMD")
                                                 : "<unset>");

  benchjson::Writer json;
  bool_mm_table(json, cs, sizes, trials);
  minplus_mm_table(json, cs, sizes, trials);
  ring_mm_table(json, sizes, trials);
  packing_table(json, trials);
  determinism_check(cs);

  if (json.write("BENCH_kernels.json"))
    std::printf("\nwrote BENCH_kernels.json\n");

  if (check) {
    if (cs.failed) {
      for (const auto& f : cs.failures)
        std::printf("CHECK FAILED: %s\n", f.c_str());
      return 1;
    }
    std::printf("CHECK OK: all kernels bit-for-bit equal to mm_naive, "
                "parallel kernel\ndeterministic, headline speedups within "
                "bounds\n");
  }
  return 0;
}

// ---- micro mode (google-benchmark) ---------------------------------------

void BM_EngineBroadcast(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::gnp(n, 0.3, 7);
  for (auto _ : state) {
    auto r = Engine::run(g, [](NodeCtx& ctx) {
      auto rows = ctx.broadcast(ctx.adj_row());
      ctx.output(rows[0].popcount());
    });
    benchmark::DoNotOptimize(r.outputs.data());
  }
  state.SetLabel("thread-per-node engine, one full row broadcast");
}
BENCHMARK(BM_EngineBroadcast)->Arg(16)->Arg(64)->Arg(128);

void BM_EngineShareBit(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::empty(n);
  for (auto _ : state) {
    auto r = Engine::run(g, [](NodeCtx& ctx) {
      bool b = ctx.id() % 2 == 0;
      for (int i = 0; i < 8; ++i) b = ctx.any(b);
      ctx.decide(b);
    });
    benchmark::DoNotOptimize(r.outputs.data());
  }
}
BENCHMARK(BM_EngineShareBit)->Arg(16)->Arg(64);

void BM_RouteBalanced(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::empty(n);
  for (auto _ : state) {
    auto r = Engine::run(g, [](NodeCtx& ctx) {
      SplitMix64 rng(ctx.id() + 1);
      std::vector<RoutedMessage> msgs;
      for (NodeId i = 0; i < ctx.n(); ++i) {
        NodeId dst;
        do {
          dst = static_cast<NodeId>(rng.next_below(ctx.n()));
        } while (dst == ctx.id());
        msgs.push_back({dst, Word(1, 1)});
      }
      auto got = route_balanced(ctx, msgs);
      ctx.output(got.size());
    });
    benchmark::DoNotOptimize(r.outputs.data());
  }
}
BENCHMARK(BM_RouteBalanced)->Arg(16)->Arg(64);

void BM_MmNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto a = random_square<I64Ring>(n, 1, 100);
  auto b = random_square<I64Ring>(n, 2, 100);
  for (auto _ : state) {
    auto c = mm_naive<I64Ring>(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_MmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_MmTiled(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto a = random_square<I64Ring>(n, 1, 100);
  auto b = random_square<I64Ring>(n, 2, 100);
  for (auto _ : state) {
    auto c = kernels::mm_tiled<I64Ring>(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_MmTiled)->Arg(64)->Arg(128)->Arg(256);

void BM_MmStrassen(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto a = random_square<I64Ring>(n, 1, 100);
  auto b = random_square<I64Ring>(n, 2, 100);
  for (auto _ : state) {
    auto c = mm_strassen<I64Ring>(a, b, 64);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_MmStrassen)->Arg(128)->Arg(256);

void BM_BitMm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto a = kernels::BitMatrix::from_matrix(random_square<BoolSemiring>(n, 1, 2));
  auto b = kernels::BitMatrix::from_matrix(random_square<BoolSemiring>(n, 2, 2));
  for (auto _ : state) {
    auto c = kernels::bit_mm(a, b);
    benchmark::DoNotOptimize(&c);
  }
}
BENCHMARK(BM_BitMm)->Arg(64)->Arg(256)->Arg(512);

void BM_OracleMaxIS(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::gnp(n, 0.6, 11);
  for (auto _ : state) {
    auto w = oracle::max_independent_set(g);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_OracleMaxIS)->Arg(24)->Arg(40);

void BM_OracleDominatingSet(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::gnp(n, 0.25, 13);
  for (auto _ : state) {
    auto w = oracle::dominating_set(g, 3);
    benchmark::DoNotOptimize(&w);
  }
}
BENCHMARK(BM_OracleDominatingSet)->Arg(20)->Arg(28);

}  // namespace
}  // namespace ccq

// Hand-rolled main: the shared --trace=<path> flag is stripped by
// TraceSession before google-benchmark's flag parser (which rejects unknown
// flags) sees argv; --micro selects the gbench micro-benchmarks, everything
// else runs the comparison tables.
int main(int argc, char** argv) {
  ccq::benchjson::TraceSession trace_session(&argc, argv);

  bool micro = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) {
      micro = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }

  if (micro) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!trace_session.finish(nullptr)) return 1;
    return 0;
  }

  std::size_t only_n = 0;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = ccq::benchargs::flag_value(argv[i], "--n")) {
      only_n = static_cast<std::size_t>(
          ccq::benchargs::parse_uint(argv[0], "--n", v, 1, 8192));
    } else if (ccq::benchargs::flag_is(argv[i], "--check")) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n=N] [--check] [--trace=PATH] [--micro]\n",
                   argv[0]);
      return 2;
    }
  }
  std::vector<std::size_t> sizes = {128, 256, 512};
  if (only_n != 0) sizes = {only_n};

  const int rc = ccq::run_comparison(sizes, check);
  if (!trace_session.finish(nullptr)) return 1;
  return rc;
}
