// Micro-benchmarks (google-benchmark) of the hot kernels under everything
// else: engine collectives, routing, local matrix multiplication, and the
// exact oracles used as local computation.

#include <benchmark/benchmark.h>

#include "algebra/mm.hpp"
#include "bench_json.hpp"
#include "clique/routing.hpp"
#include "graph/generators.hpp"
#include "graph/oracles.hpp"
#include "util/rng.hpp"

namespace ccq {
namespace {

void BM_EngineBroadcast(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::gnp(n, 0.3, 7);
  for (auto _ : state) {
    auto r = Engine::run(g, [](NodeCtx& ctx) {
      auto rows = ctx.broadcast(ctx.adj_row());
      ctx.output(rows[0].popcount());
    });
    benchmark::DoNotOptimize(r.outputs.data());
  }
  state.SetLabel("thread-per-node engine, one full row broadcast");
}
BENCHMARK(BM_EngineBroadcast)->Arg(16)->Arg(64)->Arg(128);

void BM_EngineShareBit(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::empty(n);
  for (auto _ : state) {
    auto r = Engine::run(g, [](NodeCtx& ctx) {
      bool b = ctx.id() % 2 == 0;
      for (int i = 0; i < 8; ++i) b = ctx.any(b);
      ctx.decide(b);
    });
    benchmark::DoNotOptimize(r.outputs.data());
  }
}
BENCHMARK(BM_EngineShareBit)->Arg(16)->Arg(64);

void BM_RouteBalanced(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::empty(n);
  for (auto _ : state) {
    auto r = Engine::run(g, [](NodeCtx& ctx) {
      SplitMix64 rng(ctx.id() + 1);
      std::vector<RoutedMessage> msgs;
      for (NodeId i = 0; i < ctx.n(); ++i) {
        NodeId dst;
        do {
          dst = static_cast<NodeId>(rng.next_below(ctx.n()));
        } while (dst == ctx.id());
        msgs.push_back({dst, Word(1, 1)});
      }
      auto got = route_balanced(ctx, msgs);
      ctx.output(got.size());
    });
    benchmark::DoNotOptimize(r.outputs.data());
  }
}
BENCHMARK(BM_RouteBalanced)->Arg(16)->Arg(64);

template <typename S>
Matrix<typename S::Value> random_square(std::size_t n, std::uint64_t seed,
                                        std::uint64_t cap) {
  SplitMix64 rng(seed);
  Matrix<typename S::Value> m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m.at(i, j) = static_cast<typename S::Value>(rng.next_below(cap));
  return m;
}

void BM_MmNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto a = random_square<I64Ring>(n, 1, 100);
  auto b = random_square<I64Ring>(n, 2, 100);
  for (auto _ : state) {
    auto c = mm_naive<I64Ring>(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_MmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_MmBlocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto a = random_square<I64Ring>(n, 1, 100);
  auto b = random_square<I64Ring>(n, 2, 100);
  for (auto _ : state) {
    auto c = mm_blocked<I64Ring>(a, b, 32);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_MmBlocked)->Arg(64)->Arg(128)->Arg(256);

void BM_MmStrassen(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto a = random_square<I64Ring>(n, 1, 100);
  auto b = random_square<I64Ring>(n, 2, 100);
  for (auto _ : state) {
    auto c = mm_strassen<I64Ring>(a, b, 64);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_MmStrassen)->Arg(128)->Arg(256);

void BM_OracleMaxIS(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::gnp(n, 0.6, 11);
  for (auto _ : state) {
    auto w = oracle::max_independent_set(g);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_OracleMaxIS)->Arg(24)->Arg(40);

void BM_OracleDominatingSet(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  Graph g = gen::gnp(n, 0.25, 13);
  for (auto _ : state) {
    auto w = oracle::dominating_set(g, 3);
    benchmark::DoNotOptimize(&w);
  }
}
BENCHMARK(BM_OracleDominatingSet)->Arg(20)->Arg(28);

}  // namespace
}  // namespace ccq

// Hand-rolled BENCHMARK_MAIN so the shared --trace=<path> flag is stripped
// before google-benchmark's flag parser (which rejects unknown flags) sees
// argv. With --trace, every Engine::run inside the timed loops records into
// one timeline — noisy (iterations repeat) but useful for eyeballing what a
// kernel's collectives actually do.
int main(int argc, char** argv) {
  ccq::benchjson::TraceSession trace_session(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_session.finish(nullptr)) return 1;
  return 0;
}
