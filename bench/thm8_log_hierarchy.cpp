// THM8 — the logarithmic constant-round hierarchy does not contain all
// problems: with O(n log n)-bit labels, even k alternations (for every
// k ≤ T) leave the protocol count at 2^{o(2^{nL})}. The counting table
// uses the proof's parameters (L = T²·log n, M = ¼·T·n·log n); the toy
// table shows Σ-achievability saturating under independent per-node advice.

#include <cstdio>

#include "hierarchy/counting.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf(
      "THM8: a problem outside every level of the logarithmic "
      "hierarchy\n\n");

  std::printf("(a) Counting with the proof's parameters:\n");
  Table ta({"n", "T", "k", "L=T^2·logn", "kM+L", "ll(protocols)",
            "ll(functions)", "proof ineq", "hard fn"});
  for (std::uint64_t n : {256u, 1024u}) {
    const std::uint64_t T = 4;
    for (std::uint64_t k = 1; k <= T; ++k) {
      auto row = thm8_row(n, T, k);
      ta.add_row({std::to_string(n), std::to_string(T), std::to_string(k),
                  std::to_string(row.L),
                  std::to_string(k * row.M + row.L),
                  Table::fmt(row.loglog_protocols, 1),
                  Table::fmt(row.loglog_funcs, 1),
                  row.inequality_holds ? "holds" : "FAILS",
                  row.hard_function_exists ? "yes" : "NO"});
    }
  }
  ta.print();

  std::printf(
      "\n(b) Toy Σ_k achievability (n = 2, b = 1, L = 1, M = 1, t = 0,\n"
      "    exhaustive — counts out of 16 functions):\n");
  Table tb({"k (alternations)", "achievable"});
  for (unsigned k : {1u, 2u}) {
    auto a = achievable_sigma_functions(2, 1, 1, 1, 0, k);
    std::size_t c = 0;
    for (bool x : a) c += x;
    tb.add_row({std::to_string(k), std::to_string(c)});
  }
  tb.print();
  std::printf(
      "\nShape check: (a) for every level k ≤ T the protocol count stays "
      "doubly-exponentially\nbelow the function count — some problem avoids "
      "all of Σ^log_1..Σ^log_T; (b) with\nindependent per-node advice and "
      "no communication, extra alternations do not grow\nthe achievable set "
      "(both levels sit at 10/16), matching the proof's intuition that\n"
      "label *size*, not alternation depth, is the binding resource here.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
