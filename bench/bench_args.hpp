#pragma once

// Shared strict flag parsing for the bench mains. Every bench hand-rolls
// the same tiny argv loop; the helpers here keep the *parsing* uniform and
// strict so a typo'd flag refuses to run instead of silently benchmarking
// the wrong sweep. Numeric values must parse completely — empty text,
// trailing garbage ("--n=5x"), signs, and out-of-range values all print a
// diagnostic naming the flag and exit 2 (the usage-error status).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ccq::benchargs {

/// Whole decimal number in [lo, hi], nothing else.
inline std::uint64_t parse_uint(const char* prog, const char* flag,
                                const char* text, std::uint64_t lo,
                                std::uint64_t hi) {
  std::uint64_t value = 0;
  bool ok = text[0] != '\0';
  for (const char* p = text; ok && *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      ok = false;
      break;
    }
    const auto digit = static_cast<std::uint64_t>(*p - '0');
    if (value > (~std::uint64_t{0} - digit) / 10) {
      ok = false;
      break;
    }
    value = value * 10 + digit;
  }
  if (!ok || value < lo || value > hi) {
    std::fprintf(stderr,
                 "%s: %s expects a whole number in [%llu, %llu], got '%s'\n",
                 prog, flag, static_cast<unsigned long long>(lo),
                 static_cast<unsigned long long>(hi), text);
    std::exit(2);
  }
  return value;
}

/// Plain decimal number in [lo, hi] for --density-style flags: digits with
/// an optional fraction ("0.1", "10", ".5"). No sign, no exponent, no
/// trailing garbage — std::strtod would happily accept "0.1abc", "1e9",
/// "nan" and "0x3", so the shape is validated before the conversion.
inline double parse_double(const char* prog, const char* flag,
                           const char* text, double lo, double hi) {
  const char* p = text;
  bool digits = false;
  for (; *p >= '0' && *p <= '9'; ++p) digits = true;
  if (*p == '.') {
    for (++p; *p >= '0' && *p <= '9'; ++p) digits = true;
  }
  bool ok = digits && *p == '\0';
  double value = 0.0;
  if (ok) {
    char* end = nullptr;
    value = std::strtod(text, &end);
    ok = end != nullptr && *end == '\0';
  }
  if (!ok || value < lo || value > hi) {
    std::fprintf(stderr,
                 "%s: %s expects a decimal number in [%g, %g], got '%s'\n",
                 prog, flag, lo, hi, text);
    std::exit(2);
  }
  return value;
}

/// "--n=123" against name "--n" → "123"; nullptr when arg is not name=… .
inline const char* flag_value(const char* arg, const char* name) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=')
    return arg + len + 1;
  return nullptr;
}

/// Exact boolean flag match ("--check").
inline bool flag_is(const char* arg, const char* name) {
  return std::strcmp(arg, name) == 0;
}

}  // namespace ccq::benchargs
