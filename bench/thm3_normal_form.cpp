// THM3 — the NCLIQUE normal form: any T(n)-round nondeterministic verifier
// converts to one whose certificates are communication transcripts of
// O(T·n·log n) bits. This bench measures, for each concrete verifier:
// original certificate bits vs transcript bits vs the theorem's bound, and
// confirms the transformed verifier still accepts (honest prover) in the
// same number of rounds.

#include <cstdio>

#include "graph/generators.hpp"
#include "nondet/transcript.hpp"
#include "nondet/verifiers.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf("THM3: NCLIQUE normal form — certificate sizes\n\n");

  struct Case {
    RoundVerifier v;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back(
      {verifiers::k_colouring(3),
       gen::planted_k_colourable(12, 3, 0.5, 3).graph});
  cases.push_back({verifiers::hamiltonian_path(),
                   gen::planted_hamiltonian_path(12, 0.2, 5).graph});
  cases.push_back({verifiers::k_clique(4),
                   gen::planted_clique(12, 4, 0.2, 7).graph});
  cases.push_back({verifiers::connectivity(),
                   gen::planted_hamiltonian_path(12, 0.1, 9).graph});

  Table t({"verifier", "T", "orig label bits", "transcript bits",
           "bound 2T·n·(logn+⌈log(logn+1)⌉+1)", "B accepts", "B rounds"});
  for (auto& c : cases) {
    const NodeId n = c.g.n();
    auto b = normal_form(c.v);
    const unsigned T = c.v.rounds(n);
    const unsigned idb = node_id_bits(n);
    const unsigned wbits = std::max(1u, ceil_log2(idb + 1));
    const std::size_t bound =
        2ull * T * n * (1 + wbits + idb);  // exact codec size with n-1→n
    auto run = run_with_prover(c.g, b);
    t.add_row({c.v.name, std::to_string(T),
               std::to_string(c.v.label_bits(n)),
               std::to_string(b.label_bits(n)), std::to_string(bound),
               run && run->accepted() ? "yes" : "NO",
               run ? std::to_string(run->cost.rounds) : "-"});
  }
  t.print();

  std::printf(
      "\nScaling of the transcript certificate (connectivity verifier, "
      "T = 2):\n");
  Table ts({"n", "transcript bits", "bits / (T·n·logn)"});
  auto b = normal_form(verifiers::connectivity());
  for (NodeId n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const std::size_t bits = b.label_bits(n);
    const double norm =
        static_cast<double>(bits) / (2.0 * n * ceil_log2(n));
    ts.add_row({std::to_string(n), std::to_string(bits),
                Table::fmt(norm, 2)});
  }
  ts.print();
  std::printf(
      "\nShape check: transcript bits / (T·n·log n) stays a constant (~3: "
      "two directions\nplus a presence flag and width field per B-bit "
      "slot), i.e. the label size is\nΘ(T·n·log n) exactly as Theorem 3 "
      "states; the converted verifier keeps the\noriginal round count.\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
