// THM9 — "Dominating set of size k can be found in O(n^{1-1/k}) rounds"
// (§7.1). Regenerates the theorem's growth claim: measured engine rounds of
// the paper's algorithm across n for k ∈ {1,2,3}, against the c·n^{1-1/k}
// reference curve (c fitted at the smallest n).

#include <cmath>
#include <cstdio>

#include "graph/generators.hpp"
#include "graphalg/kds.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include "bench_json.hpp"

using namespace ccq;

int main(int argc, char** argv) {
  ccq::benchjson::TraceSession ccq_trace_session(&argc, argv);
  std::printf(
      "THM9: k-dominating set in O(n^{1-1/k}) rounds (measured vs "
      "reference)\n\n");

  for (unsigned k : {1u, 2u, 3u}) {
    const std::vector<NodeId> ns =
        k == 3 ? std::vector<NodeId>{27, 42, 64, 90}
               : std::vector<NodeId>{16, 32, 64, 100, 144};
    Table t({"n", "rounds", "c*n^(1-1/k)", "rounds/ref"});
    std::vector<double> xs, ys;
    double c = 0;
    for (NodeId n : ns) {
      auto inst = gen::planted_dominating_set(n, k, 0.08, 17 + n);
      auto r = k_dominating_set_clique(inst.graph, k);
      const double expo = 1.0 - 1.0 / k;
      const double nref = std::pow(static_cast<double>(n), expo);
      if (c == 0)
        c = static_cast<double>(std::max<std::uint64_t>(r.cost.rounds, 1)) /
            nref;
      const double ref = c * nref;
      t.add_row({std::to_string(n), std::to_string(r.cost.rounds),
                 Table::fmt(ref, 1),
                 Table::fmt(static_cast<double>(r.cost.rounds) / ref, 2)});
      xs.push_back(n);
      ys.push_back(static_cast<double>(r.cost.rounds));
    }
    auto fit = fit_loglog(xs, ys);
    std::printf("k = %u   (paper exponent 1-1/k = %.3f, fitted %.3f, r2 %.2f)\n",
                k, 1.0 - 1.0 / k, fit.slope, fit.r2);
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Shape check: fitted exponents track 1-1/k and stay well below 1 "
      "(the trivial algorithm).\n");
  if (!ccq_trace_session.finish(nullptr)) return 1;
  return 0;
}
