#pragma once

// "Learn the whole graph" algorithms: every node broadcasts its adjacency
// row (⌈n/B⌉ ≈ n/log n rounds) and solves the problem with unlimited local
// computation. These realise the trivial δ(L) ≤ 1 upper bounds at the top
// of Figure 1 (MaxIS, MinVC, k-COL) and serve as the measured "exponent-1"
// reference series in the Figure 1 bench.

#include <functional>
#include <optional>
#include <vector>

#include "clique/cost.hpp"
#include "graph/graph.hpp"

namespace ccq {

struct GlobalSolveResult {
  bool found = false;             ///< decision problems
  std::vector<NodeId> witness;    ///< solution set / colouring when present
  CostMeter cost;
};

/// Maximum independent set (exact; witness = the set).
GlobalSolveResult max_independent_set_clique(const Graph& g);

/// Minimum vertex cover (exact; witness = the cover).
GlobalSolveResult min_vertex_cover_clique(const Graph& g);

/// k-colourability (witness = colour per node when colourable).
GlobalSolveResult k_colouring_clique(const Graph& g, unsigned k);

/// Hamiltonian path decision (local DP; requires n ≤ 22).
GlobalSolveResult hamiltonian_path_clique(const Graph& g);

/// Gather the full graph at every node and run an arbitrary local solver —
/// the generic primitive behind the wrappers above.
GlobalSolveResult solve_globally(
    const Graph& g,
    const std::function<std::optional<std::vector<NodeId>>(const Graph&)>&
        local_solver);

}  // namespace ccq
