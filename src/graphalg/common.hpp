#pragma once

// Shared plumbing for clique graph algorithms.
//
// Clique programs emit one 64-bit output per node; richer per-node results
// (distance vectors, witness sets) are collected through a PerNode sink that
// each node thread writes exactly once. The sink is test/driver plumbing,
// not communication — nodes only ever write their own slot.

#include <mutex>
#include <vector>

#include "clique/engine.hpp"
#include "graph/graph.hpp"

namespace ccq {

/// Density threshold below which the MM-based graph algorithms route
/// through the sparse nonzero-block schedule (DESIGN.md §13).
inline constexpr double kSparseMmMaxDensity = 0.10;

/// Fraction of possible (ordered) adjacencies present: m/(n(n-1)) for
/// directed graphs, 2m/(n(n-1)) for undirected. 0 for n < 2.
inline double graph_density(const Graph& g) {
  const double n = static_cast<double>(g.n());
  if (g.n() < 2) return 0.0;
  const double pairs = n * (n - 1.0);
  const double adj =
      static_cast<double>(g.m()) * (g.is_directed() ? 1.0 : 2.0);
  return adj / pairs;
}

template <typename T>
class PerNode {
 public:
  explicit PerNode(NodeId n) : data_(n) {}

  void set(NodeId v, T value) {
    std::lock_guard<std::mutex> lk(mu_);
    data_[v] = std::move(value);
  }

  std::vector<T> take() { return std::move(data_); }

 private:
  std::mutex mu_;
  std::vector<T> data_;
};

}  // namespace ccq
