#pragma once

// Shared plumbing for clique graph algorithms.
//
// Clique programs emit one 64-bit output per node; richer per-node results
// (distance vectors, witness sets) are collected through a PerNode sink that
// each node thread writes exactly once. The sink is test/driver plumbing,
// not communication — nodes only ever write their own slot.

#include <mutex>
#include <vector>

#include "clique/engine.hpp"

namespace ccq {

template <typename T>
class PerNode {
 public:
  explicit PerNode(NodeId n) : data_(n) {}

  void set(NodeId v, T value) {
    std::lock_guard<std::mutex> lk(mu_);
    data_[v] = std::move(value);
  }

  std::vector<T> take() { return std::move(data_); }

 private:
  std::mutex mu_;
  std::vector<T> data_;
};

}  // namespace ccq
