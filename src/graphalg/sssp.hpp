#pragma once

// Single-source shortest paths in the congested clique (§7, Figure 1:
// SSSP variants and BFS tree).

#include <cstdint>
#include <vector>

#include "clique/cost.hpp"
#include "graph/graph.hpp"

namespace ccq {

struct SsspResult {
  std::vector<std::uint64_t> dist;  ///< kInfDist-style sentinel: unreachable
  std::vector<NodeId> parent;       ///< parent in the SSSP/BFS tree; self at
                                    ///< the source and for unreachable nodes
  CostMeter cost;
};

/// Distance sentinel for unreachable nodes (matches oracle::kInfDist).
inline constexpr std::uint64_t kUnreachable = ~std::uint64_t{0} / 4;

/// Unweighted SSSP + BFS tree by synchronous frontier expansion:
/// O(diameter) rounds (2 per level: frontier bit + termination vote).
/// Works on directed graphs (follows out-edges from the source).
SsspResult bfs_clique(const Graph& g, NodeId source);

/// Weighted SSSP by distributed Bellman–Ford: each iteration every node
/// broadcasts its tentative distance; ≤ n-1 iterations with early exit.
SsspResult bellman_ford_clique(const Graph& g, NodeId source);

}  // namespace ccq
