#include "graphalg/apsp.hpp"

#include "algebra/approx_minplus.hpp"
#include "algebra/distributed_mm.hpp"
#include "graphalg/common.hpp"
#include "graphalg/sssp.hpp"
#include "util/math.hpp"

namespace ccq {

namespace {

template <Semiring S>
std::vector<typename S::Value> square_step(NodeCtx& ctx, MmAlgo algo,
                                           std::vector<typename S::Value> row,
                                           unsigned entry_bits) {
  switch (algo) {
    case MmAlgo::kNaiveBroadcast:
      return mm_distributed_naive<S>(ctx, row, row, entry_bits);
    case MmAlgo::k3dPartition:
      return mm_distributed_3d<S>(ctx, row, row, entry_bits);
    case MmAlgo::kSparse3d: {
      const NodeId n = ctx.n();
      return mm_distributed_sparse<S>(ctx, MmShape{n, n, n}, row, row,
                                      entry_bits);
    }
    case MmAlgo::kAuto:
      break;  // resolved before Engine::run — never reaches a node program
  }
  CCQ_CHECK_MSG(false, "unknown MmAlgo");
  return row;
}

/// Resolve kAuto from the input graph's density, deterministically and
/// outside the node programs so every node runs the identical schedule.
MmAlgo resolve_algo(MmAlgo algo, const Graph& g) {
  if (algo != MmAlgo::kAuto) return algo;
  return graph_density(g) <= kSparseMmMaxDensity ? MmAlgo::kSparse3d
                                                 : MmAlgo::k3dPartition;
}

}  // namespace

ApspResult apsp_clique(const Graph& g, MmAlgo algo) {
  algo = resolve_algo(algo, g);
  const NodeId n = g.n();
  std::uint32_t max_w = 1;
  for (const Edge& e : g.edges()) max_w = std::max(max_w, e.w);
  // Distances ≤ (n-1)·w_max; reserve the all-ones code for ∞.
  const unsigned entry_bits =
      std::max(2u, ceil_log2(static_cast<std::uint64_t>(n) * max_w + 2) + 1);

  PerNode<std::vector<std::uint64_t>> sink(n);

  auto run = Engine::run(g, [&, algo, entry_bits](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    using V = MinPlusSemiring::Value;
    // Row of the weight matrix: 0 on diagonal, w on out-edges, ∞ else.
    std::vector<V> row(ctx.n(), MinPlusSemiring::infinity());
    row[me] = 0;
    const BitVector& r = ctx.adj_row();
    for (std::size_t u = r.find_first(); u < r.size();
         u = r.find_first(u + 1)) {
      row[u] = ctx.weighted() ? ctx.edge_weight(static_cast<NodeId>(u)) : 1;
    }
    // Shortest paths have < n hops; ⌈log₂n⌉ squarings of (I ⊕ W) converge.
    const unsigned steps = std::max(1u, ceil_log2(ctx.n()));
    for (unsigned s = 0; s < steps; ++s) {
      row = square_step<MinPlusSemiring>(ctx, algo, std::move(row),
                                         entry_bits);
    }
    std::uint64_t checksum = 0;
    for (V d : row) {
      if (d < MinPlusSemiring::infinity()) checksum += d;
    }
    sink.set(me, std::vector<std::uint64_t>(row.begin(), row.end()));
    ctx.output(checksum);
  });

  ApspResult result;
  result.cost = run.cost;
  result.dist.assign(static_cast<std::size_t>(n) * n, kUnreachable);
  auto rows = sink.take();
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId u = 0; u < n; ++u) {
      const std::uint64_t d = rows[v][u];
      result.dist[static_cast<std::size_t>(v) * n + u] =
          d >= MinPlusSemiring::infinity() ? kUnreachable : d;
    }
  }
  return result;
}

namespace {

template <unsigned M>
ApspResult apsp_approx_impl(const Graph& g, MmAlgo algo) {
  using S = ApproxMinPlus<M>;
  using V = typename S::Value;
  const NodeId n = g.n();
  const unsigned entry_bits = S::entry_bits();
  PerNode<std::vector<std::uint64_t>> sink(n);

  auto run = Engine::run(g, [&, algo, entry_bits](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    std::vector<V> row(ctx.n(), S::zero());
    row[me] = S::one();
    const BitVector& r = ctx.adj_row();
    for (std::size_t u = r.find_first(); u < r.size();
         u = r.find_first(u + 1)) {
      row[u] = S::encode(
          ctx.weighted() ? ctx.edge_weight(static_cast<NodeId>(u)) : 1);
    }
    const unsigned steps = std::max(1u, ceil_log2(ctx.n()));
    for (unsigned s = 0; s < steps; ++s) {
      row = square_step<S>(ctx, algo, std::move(row), entry_bits);
    }
    std::vector<std::uint64_t> dist(ctx.n());
    std::uint64_t checksum = 0;
    for (NodeId u = 0; u < ctx.n(); ++u) {
      dist[u] = row[u] >= S::kInf ? kUnreachable : S::decode(row[u]);
      if (dist[u] < kUnreachable) checksum += dist[u];
    }
    sink.set(me, std::move(dist));
    ctx.output(checksum);
  });

  ApspResult result;
  result.cost = run.cost;
  result.dist.assign(static_cast<std::size_t>(n) * n, kUnreachable);
  auto rows = sink.take();
  for (NodeId v = 0; v < n; ++v)
    for (NodeId u = 0; u < n; ++u)
      result.dist[static_cast<std::size_t>(v) * n + u] = rows[v][u];
  return result;
}

}  // namespace

ApspResult apsp_approx_clique(const Graph& g, double epsilon, MmAlgo algo) {
  algo = resolve_algo(algo, g);
  const unsigned steps = std::max(1u, ceil_log2(g.n()));
  const unsigned m = required_mantissa_bits(epsilon, steps);
  if (m <= 4) return apsp_approx_impl<4>(g, algo);
  if (m <= 6) return apsp_approx_impl<6>(g, algo);
  if (m <= 8) return apsp_approx_impl<8>(g, algo);
  if (m <= 10) return apsp_approx_impl<10>(g, algo);
  if (m <= 13) return apsp_approx_impl<13>(g, algo);
  return apsp_approx_impl<16>(g, algo);
}

ClosureResult transitive_closure_clique(const Graph& g, MmAlgo algo) {
  algo = resolve_algo(algo, g);
  const NodeId n = g.n();
  PerNode<std::vector<std::uint8_t>> sink(n);

  auto run = Engine::run(g, [&, algo](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    using V = BoolSemiring::Value;
    std::vector<V> row(ctx.n(), 0);
    row[me] = 1;
    const BitVector& r = ctx.adj_row();
    for (std::size_t u = r.find_first(); u < r.size();
         u = r.find_first(u + 1)) {
      row[u] = 1;
    }
    const unsigned steps = std::max(1u, ceil_log2(ctx.n()));
    for (unsigned s = 0; s < steps; ++s) {
      row = square_step<BoolSemiring>(ctx, algo, std::move(row), 1);
    }
    std::uint64_t reachable = 0;
    for (V b : row) reachable += b;
    sink.set(me, row);
    ctx.output(reachable);
  });

  ClosureResult result;
  result.cost = run.cost;
  result.reach.assign(static_cast<std::size_t>(n) * n, 0);
  auto rows = sink.take();
  for (NodeId v = 0; v < n; ++v)
    for (NodeId u = 0; u < n; ++u)
      result.reach[static_cast<std::size_t>(v) * n + u] = rows[v][u];
  return result;
}

}  // namespace ccq
