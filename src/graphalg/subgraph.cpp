#include "graphalg/subgraph.hpp"

#include <algorithm>

#include "algebra/distributed_mm.hpp"
#include "algebra/kernels.hpp"
#include "clique/engine.hpp"
#include "graph/oracles.hpp"
#include "graphalg/common.hpp"
#include "util/math.hpp"

namespace ccq {

namespace {

struct PartitionLayout {
  NodeId n, s, q;  // s parts of width q

  PartitionLayout(NodeId n_, unsigned k)
      : n(n_),
        s(static_cast<NodeId>(
            std::max<std::uint64_t>(1, floor_root(n_, k)))),
        q(static_cast<NodeId>(ceil_div(n_, s))) {}

  NodeId part_of(NodeId v) const { return v / q; }

  /// Union of the parts in tuple-node t's digit expansion (sorted, unique).
  std::vector<NodeId> union_of(std::uint64_t t, unsigned k) const {
    std::vector<NodeId> parts;
    for (unsigned i = 0; i < k; ++i) {
      parts.push_back(static_cast<NodeId>(t % s));
      t /= s;
    }
    std::sort(parts.begin(), parts.end());
    parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
    std::vector<NodeId> nodes;
    for (NodeId p : parts) {
      const NodeId lo = std::min<NodeId>(p * q, n);
      const NodeId hi = std::min<NodeId>((p + 1) * q, n);
      for (NodeId v = lo; v < hi; ++v) nodes.push_back(v);
    }
    return nodes;
  }

  bool tuple_contains_part(std::uint64_t t, unsigned k, NodeId part) const {
    for (unsigned i = 0; i < k; ++i) {
      if (static_cast<NodeId>(t % s) == part) return true;
      t /= s;
    }
    return false;
  }

  std::uint64_t tuple_count(unsigned k) const {
    std::uint64_t c = 1;
    for (unsigned i = 0; i < k; ++i) c *= s;
    return c;
  }
};

}  // namespace

DetectionResult detect_structure_clique(const Graph& g, unsigned k,
                                        const LocalPattern& pattern) {
  CCQ_CHECK_MSG(!g.is_directed(),
                "detector is defined for undirected graphs");
  CCQ_CHECK(k >= 1);
  const NodeId n = g.n();
  const PartitionLayout L(n, k);
  const std::uint64_t tuples = L.tuple_count(k);
  CCQ_CHECK_MSG(tuples <= n, "partition layout must fit the clique");

  PerNode<std::vector<NodeId>> sink(n);

  auto run = Engine::run(g, [&, k](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    const unsigned B = ctx.bandwidth();

    // ---- send my incident edges (to higher-id partners) to every tuple
    // node whose union contains my part.
    std::vector<std::pair<NodeId, Word>> sends;
    const NodeId my_part = L.part_of(me);
    for (std::uint64_t t = 0; t < tuples; ++t) {
      if (!L.tuple_contains_part(t, k, my_part)) continue;
      const auto u_nodes = L.union_of(t, k);
      BitVector payload;
      for (NodeId u : u_nodes) {
        if (u > me) payload.push_back(ctx.adj_row().get(u));
      }
      for (const Word& w : encode_bits(payload, B))
        sends.emplace_back(static_cast<NodeId>(t), w);
    }
    const FlatInbox in = ctx.exchange_flat(sends);

    // ---- tuple nodes reconstruct the induced subgraph on U and check.
    std::optional<std::vector<NodeId>> witness;
    if (me < tuples) {
      const auto u_nodes = L.union_of(me, k);
      std::vector<NodeId> pos(ctx.n(), ctx.n());  // original id -> U index
      for (std::size_t i = 0; i < u_nodes.size(); ++i)
        pos[u_nodes[i]] = static_cast<NodeId>(i);
      Graph induced = Graph::undirected(static_cast<NodeId>(u_nodes.size()));
      for (NodeId v : u_nodes) {
        // Count of expected bits from v: partners in U with id > v.
        std::size_t expect = 0;
        for (NodeId u : u_nodes)
          if (u > v) ++expect;
        BitVector payload;
        if (v == me) {
          for (NodeId u : u_nodes)
            if (u > me) payload.push_back(ctx.adj_row().get(u));
        } else {
          payload = decode_words(in.from(v), expect);
        }
        std::size_t idx = 0;
        for (NodeId u : u_nodes) {
          if (u <= v) continue;
          if (payload.get(idx)) induced.add_edge(pos[v], pos[u]);
          ++idx;
        }
      }
      witness = pattern(induced, u_nodes);
    }

    // ---- elect the lowest-id finder and publish its witness.
    auto found_bits = ctx.share_bit(witness.has_value());
    NodeId winner = ctx.n();
    for (NodeId v = 0; v < ctx.n(); ++v) {
      if (found_bits[v]) {
        winner = v;
        break;
      }
    }
    const unsigned idb = node_id_bits(ctx.n());
    BitVector wit_bits(static_cast<std::size_t>(k) * idb);
    if (witness.has_value() && me == winner) {
      CCQ_CHECK_MSG(witness->size() == k, "pattern returned wrong arity");
      wit_bits = BitVector{};
      for (NodeId v : *witness) wit_bits.append_bits(v, idb);
    }
    auto all_wits = ctx.broadcast(wit_bits);

    std::vector<NodeId> final_witness;
    if (winner < ctx.n()) {
      for (unsigned i = 0; i < k; ++i) {
        final_witness.push_back(static_cast<NodeId>(
            all_wits[winner].read_bits(static_cast<std::size_t>(i) * idb,
                                       idb)));
      }
    }
    sink.set(me, final_witness);
    ctx.decide(winner < ctx.n());
  });

  DetectionResult result;
  result.cost = run.cost;
  result.found = run.accepted();
  auto wits = sink.take();
  if (result.found) result.witness = wits[0];
  return result;
}

DetectionResult triangle_mm_clique(const Graph& g) {
  CCQ_CHECK_MSG(!g.is_directed(),
                "triangle detection is defined for undirected graphs");
  const NodeId n = g.n();
  PerNode<std::vector<NodeId>> sink(n);

  auto run = Engine::run(g, [&](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    const NodeId nn = ctx.n();
    using V = BoolSemiring::Value;
    std::vector<V> row(nn, 0);
    const BitVector& r = ctx.adj_row();
    for (std::size_t u = r.find_first(); u < r.size();
         u = r.find_first(u + 1)) {
      row[u] = 1;
    }
    // sq[j] = ∃k: adj(me,k) ∧ adj(k,j); no self loops, so a set entry with
    // adj(me,j) certifies a triangle {me, j, k} with k ∉ {me, j}.
    const auto sq = mm_distributed_sparse<BoolSemiring>(
        ctx, MmShape{nn, nn, nn}, row, row, /*entry_bits=*/1);
    NodeId myj = nn;
    for (NodeId j = 0; j < nn; ++j) {
      if (row[j] && sq[j]) {
        myj = j;
        break;
      }
    }

    // Elect the lowest-id node on a triangle, publish its partner j, then
    // elect the lowest common neighbour as the third corner. Every branch
    // below is gated on shared data, so the collective sequence is uniform.
    const auto found_bits = ctx.share_bit(myj < nn);
    NodeId winner = nn;
    for (NodeId v = 0; v < nn; ++v) {
      if (found_bits[v]) {
        winner = v;
        break;
      }
    }
    std::vector<NodeId> witness;
    if (winner < nn) {
      const unsigned idb = node_id_bits(nn);
      BitVector jb(idb);
      if (me == winner) {
        jb = BitVector{};
        jb.append_bits(myj, idb);
      }
      const auto all = ctx.broadcast(jb);
      const NodeId jw =
          static_cast<NodeId>(all[winner].read_bits(0, idb));
      const auto common = ctx.share_bit(me != winner && me != jw &&
                                        r.get(winner) && r.get(jw));
      NodeId kw = nn;
      for (NodeId v = 0; v < nn; ++v) {
        if (common[v]) {
          kw = v;
          break;
        }
      }
      CCQ_CHECK_MSG(kw < nn, "triangle_mm: missing third corner");
      witness = {winner, jw, kw};
    }
    sink.set(me, witness);
    ctx.decide(winner < nn);
  });

  DetectionResult result;
  result.cost = run.cost;
  result.found = run.accepted();
  auto wits = sink.take();
  if (result.found) result.witness = wits[0];
  return result;
}

namespace {

DetectionResult triangle_detect_clique(const Graph& g) {
  // Word-parallel local pattern: scan pairs (u, v) with v ∈ N(u), v > u,
  // and find the first common neighbour w > v by AND-ing adjacency rows
  // 64 bits at a time (kernels::bit_first_common). The scan order (u
  // ascending, then v, then w) matches the backtracking order of
  // oracle::k_clique(·, 3), so the witness — the lexicographically first
  // triangle of the induced subgraph — is unchanged; only the local
  // compute is faster. Communication is detect_structure_clique's either
  // way, so meters are identical.
  return detect_structure_clique(
      g, 3,
      [](const Graph& induced, const std::vector<NodeId>& ids)
          -> std::optional<std::vector<NodeId>> {
        const NodeId m = induced.n();
        for (NodeId u = 0; u + 2 < m; ++u) {
          const BitVector& ru = induced.row(u);
          for (std::size_t v = ru.find_first(u + 1); v < m;
               v = ru.find_first(v + 1)) {
            const std::size_t w = kernels::bit_first_common(
                ru, induced.row(static_cast<NodeId>(v)), v + 1);
            if (w < m)
              return std::vector<NodeId>{
                  ids[u], ids[static_cast<NodeId>(v)],
                  ids[static_cast<NodeId>(w)]};
          }
        }
        return std::nullopt;
      });
}

}  // namespace

DetectionResult triangle_clique(const Graph& g) {
  CCQ_CHECK_MSG(!g.is_directed(),
                "triangle detection is defined for undirected graphs");
  if (graph_density(g) <= kSparseMmMaxDensity) return triangle_mm_clique(g);
  return triangle_detect_clique(g);
}

DetectionResult independent_set_clique(const Graph& g, unsigned k) {
  return detect_structure_clique(
      g, k,
      [k](const Graph& induced, const std::vector<NodeId>& ids)
          -> std::optional<std::vector<NodeId>> {
        auto w = oracle::independent_set(induced, k);
        if (!w) return std::nullopt;
        std::vector<NodeId> mapped;
        for (NodeId v : *w) mapped.push_back(ids[v]);
        return mapped;
      });
}

DetectionResult clique_detect_clique(const Graph& g, unsigned k) {
  return detect_structure_clique(
      g, k,
      [k](const Graph& induced, const std::vector<NodeId>& ids)
          -> std::optional<std::vector<NodeId>> {
        auto w = oracle::k_clique(induced, k);
        if (!w) return std::nullopt;
        std::vector<NodeId> mapped;
        for (NodeId v : *w) mapped.push_back(ids[v]);
        return mapped;
      });
}

DetectionResult k_cycle_clique(const Graph& g, unsigned k) {
  return detect_structure_clique(
      g, k,
      [k](const Graph& induced, const std::vector<NodeId>& ids)
          -> std::optional<std::vector<NodeId>> {
        auto w = oracle::k_cycle(induced, k);
        if (!w) return std::nullopt;
        std::vector<NodeId> mapped;
        for (NodeId v : *w) mapped.push_back(ids[v]);
        return mapped;
      });
}

DetectionResult subgraph_clique(const Graph& g, const Graph& pattern) {
  const unsigned k = pattern.n();
  return detect_structure_clique(
      g, k,
      [&pattern](const Graph& induced, const std::vector<NodeId>& ids)
          -> std::optional<std::vector<NodeId>> {
        auto w = oracle::subgraph(induced, pattern);
        if (!w) return std::nullopt;
        std::vector<NodeId> mapped;
        for (NodeId v : *w) mapped.push_back(ids[v]);
        return mapped;
      });
}

}  // namespace ccq
