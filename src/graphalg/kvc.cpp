#include "graphalg/kvc.hpp"

#include <algorithm>

#include "graph/oracles.hpp"
#include "graphalg/common.hpp"
#include "util/math.hpp"

namespace ccq {

KvcResult k_vertex_cover_clique(const Graph& g, unsigned k) {
  CCQ_CHECK_MSG(!g.is_directed(), "k-VC is defined for undirected graphs");
  const NodeId n = g.n();
  PerNode<std::vector<NodeId>> sink(n);

  auto run = Engine::run(g, [&, k](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    const unsigned idb = node_id_bits(ctx.n());

    // Preprocessing: high-degree nodes must be in any size-k cover.
    const std::size_t deg = ctx.adj_row().popcount();
    auto in_c = ctx.share_bit(deg >= static_cast<std::size_t>(k) + 1);
    std::vector<NodeId> c_set;
    for (NodeId v = 0; v < ctx.n(); ++v)
      if (in_c[v]) c_set.push_back(v);

    if (c_set.size() > k) {
      sink.set(me, {});
      ctx.decide(false);
      return;
    }

    // Main phase: nodes outside C broadcast their uncovered incident edges
    // (at most k of them — degree ≤ k after kernelisation). Fixed-format
    // message: k partner ids plus a count field, so all broadcasts have
    // identical length (≈ k words).
    const unsigned cnt_bits = ceil_log2(static_cast<std::uint64_t>(k) + 2);
    std::vector<NodeId> partners;
    if (!in_c[me]) {
      const BitVector& row = ctx.adj_row();
      for (std::size_t u = row.find_first(); u < row.size();
           u = row.find_first(u + 1)) {
        if (!in_c[u] && u > me) partners.push_back(static_cast<NodeId>(u));
      }
      CCQ_CHECK_MSG(partners.size() <= k,
                    "kernelised degree exceeds k — impossible by Lemma 12");
    }
    BitVector msg;
    msg.append_bits(partners.size(), cnt_bits);
    for (unsigned i = 0; i < k; ++i) {
      msg.append_bits(i < partners.size() ? partners[i] : 0, idb);
    }
    auto all = ctx.broadcast(msg);

    // Everyone reconstructs the kernel G[V\C] and solves it locally.
    Graph kernel = Graph::undirected(ctx.n());
    for (NodeId v = 0; v < ctx.n(); ++v) {
      if (in_c[v]) continue;
      const std::uint64_t cnt = all[v].read_bits(0, cnt_bits);
      for (std::uint64_t i = 0; i < cnt; ++i) {
        const NodeId u = static_cast<NodeId>(
            all[v].read_bits(cnt_bits + i * idb, idb));
        kernel.add_edge(v, u);
      }
    }
    const unsigned budget = k - static_cast<unsigned>(c_set.size());
    auto local = oracle::vertex_cover(kernel, budget);

    std::vector<NodeId> witness;
    if (local) {
      witness = c_set;
      witness.insert(witness.end(), local->begin(), local->end());
      std::sort(witness.begin(), witness.end());
    }
    sink.set(me, witness);
    ctx.decide(local.has_value());
  });

  KvcResult result;
  result.cost = run.cost;
  result.found = run.accepted();
  auto wits = sink.take();
  if (result.found) result.witness = wits[0];
  return result;
}

}  // namespace ccq
