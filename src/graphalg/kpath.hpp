#pragma once

// k-path detection in exp(k) rounds, independent of n (§7.3: "a k-path can
// be found in exp(k) rounds [20, 35]").
//
// We implement colour coding: each trial draws a public colouring
// c : V → [k] from the shared seed (public randomness — every node computes
// every colour locally), then a distributed subset DP finds a colourful
// path. Per trial the nodes broadcast, for each colour subset S, one bit
// "some colourful path with colour set S ends at me" — 2^k bits per node in
// total, so ⌈2^k/B⌉ + O(k) rounds per trial regardless of n. A colourful
// path succeeds with probability ≥ k!/k^k ≥ e^{-k} per trial; callers pick
// the trial budget (tests/benches use ⌈3·e^k⌉, giving ≥ 95% per-instance
// completeness; soundness is unconditional). The paper's citations are to
// deterministic variants; DESIGN.md records this standard substitution.

#include "clique/cost.hpp"
#include "graph/graph.hpp"

namespace ccq {

struct KPathResult {
  bool found = false;
  unsigned trials_used = 0;  ///< trials actually executed (early exit)
  CostMeter cost;
};

/// Detect a simple path on exactly k nodes. `trials` bounds the number of
/// colour-coding repetitions; 0 picks the ⌈3·e^k⌉ default.
KPathResult k_path_clique(const Graph& g, unsigned k, unsigned trials = 0);

}  // namespace ccq
