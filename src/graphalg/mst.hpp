#pragma once

// Minimum spanning forest in the congested clique — the paper's §8 example
// of a problem whose randomised upper bounds beat the deterministic ones
// (O(log log n) [45] and better [27] vs deterministic Borůvka-style
// merging). We implement the deterministic Borůvka baseline: O(log n)
// phases, each phase one fixed-format broadcast of every node's lightest
// outgoing edge; all nodes replicate the component structure, so merging is
// free local computation. bench_sec8_randomness reports the measured
// O(log n · w/B) round growth that the randomised literature improves on.

#include <optional>
#include <vector>

#include "clique/engine.hpp"
#include "graph/graph.hpp"

namespace ccq {

struct MstResult {
  std::vector<Edge> forest;  ///< canonical MSF edges, sorted by (u,v)
  std::uint64_t weight = 0;
  unsigned phases = 0;  ///< Borůvka merge phases executed
  CostMeter cost;
};

MstResult mst_boruvka_clique(const Graph& g);

// ---- proof-labelling verification ([37] in the paper's related work) ----
//
// A minimum spanning forest is certified by one O(log n)-bit label per
// node: its parent edge in a rooted orientation of the forest. One
// broadcast reconstructs the claimed forest at every node; all remaining
// checks are local: (a) my parent edge exists with the claimed weight,
// (b) the parent pointers are acyclic, (c) none of my incident non-forest
// edges crosses two forest components (spanningness) or beats the maximum
// weight on its forest cycle (the cycle property ⟺ minimality).

struct MsfCertificate {
  /// parent[v] = v's parent in the rooted forest; nullopt at roots.
  std::vector<std::optional<NodeId>> parent;
};

/// Root each forest component at its minimum-id node. The edges must form
/// a forest over g's nodes (checked).
MsfCertificate msf_certificate(const Graph& g,
                               const std::vector<Edge>& forest);

/// Run the O(1)-round clique verification of the certificate.
RunResult verify_msf_clique(const Graph& g, const MsfCertificate& cert);

}  // namespace ccq
