#include "graphalg/kds.hpp"

#include <algorithm>

#include "clique/routing.hpp"
#include "graphalg/common.hpp"
#include "util/math.hpp"

namespace ccq {

namespace {

// Enumerate k-subsets of `members` and test whether any dominates all of V
// (rows[i] = adjacency row of members[i]). Returns the witness if found.
std::optional<std::vector<NodeId>> find_dominating_subset(
    NodeId n, const std::vector<NodeId>& members,
    const std::vector<BitVector>& rows, unsigned k) {
  std::vector<std::size_t> idx(k, 0);
  std::vector<NodeId> witness(k);

  // Recursive combination enumeration with incremental coverage.
  std::vector<BitVector> cover_stack;
  cover_stack.emplace_back(n);  // empty coverage

  std::function<bool(std::size_t, unsigned)> rec =
      [&](std::size_t from, unsigned depth) -> bool {
    if (depth == k) {
      return cover_stack.back().popcount() == n;
    }
    for (std::size_t i = from; i + (k - depth - 1) < members.size(); ++i) {
      BitVector cover = cover_stack.back();
      cover |= rows[i];
      cover.set(members[i]);
      cover_stack.push_back(std::move(cover));
      witness[depth] = members[i];
      if (rec(i + 1, depth + 1)) return true;
      cover_stack.pop_back();
    }
    return false;
  };
  if (rec(0, 0)) return witness;
  return std::nullopt;
}

}  // namespace

KdsResult k_dominating_set_clique(const Graph& g, unsigned k) {
  CCQ_CHECK_MSG(!g.is_directed(), "k-DS is defined for undirected graphs");
  CCQ_CHECK(k >= 1);
  const NodeId n = g.n();

  // §7.1 layout: s = ⌊n^{1/k}⌋ parts S_1..S_s of ⌈n/s⌉ nodes; every label
  // in [s]^k is assigned to a distinct node (s^k ≤ n).
  const NodeId s = static_cast<NodeId>(
      std::max<std::uint64_t>(1, floor_root(n, k)));
  const NodeId q = static_cast<NodeId>(ceil_div(n, s));
  std::uint64_t tuples = 1;
  for (unsigned i = 0; i < k; ++i) tuples *= s;
  CCQ_CHECK(tuples <= n);

  PerNode<std::vector<NodeId>> sink(n);

  auto run = Engine::run(g, [&, k, s, q, tuples](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    const NodeId my_part = me / q;

    // Step 3 delivery: node v's full adjacency row goes to every label node
    // whose label mentions v's part. One row-sized block per destination —
    // the pattern the paper routes with Lenzen's protocol.
    std::vector<RoutedBlock> outgoing;
    for (std::uint64_t t = 0; t < tuples; ++t) {
      std::uint64_t digits = t;
      bool mentions = false;
      for (unsigned i = 0; i < k; ++i) {
        if (static_cast<NodeId>(digits % s) == my_part) {
          mentions = true;
          break;
        }
        digits /= s;
      }
      if (mentions)
        outgoing.push_back({static_cast<NodeId>(t), ctx.adj_row()});
    }
    auto received = route_blocks(ctx, outgoing);

    // Label nodes assemble S_v's rows and search for a size-k dominating
    // set inside S_v (unlimited local computation).
    std::optional<std::vector<NodeId>> witness;
    if (me < tuples) {
      std::vector<NodeId> members;
      std::vector<BitVector> rows;
      // Union of parts named by my label, in increasing node order.
      std::vector<bool> in_union(ctx.n(), false);
      std::uint64_t digits = me;
      for (unsigned i = 0; i < k; ++i) {
        const NodeId part = static_cast<NodeId>(digits % s);
        digits /= s;
        const NodeId lo = std::min<NodeId>(part * q, ctx.n());
        const NodeId hi = std::min<NodeId>((part + 1) * q, ctx.n());
        for (NodeId v = lo; v < hi; ++v) in_union[v] = true;
      }
      std::vector<BitVector> row_of(ctx.n());
      for (auto& [src, payload] : received) {
        CCQ_CHECK_MSG(in_union[src], "k-DS: row from outside the union");
        row_of[src] = payload;
      }
      // My own row arrives through the self-block if I am in my own union;
      // route_blocks delivers self-addressed blocks too, so row_of[me] is
      // set whenever in_union[me]. Collect members in order.
      for (NodeId v = 0; v < ctx.n(); ++v) {
        if (!in_union[v]) continue;
        CCQ_CHECK_MSG(row_of[v].size() == ctx.n(),
                      "k-DS: missing row for union member");
        members.push_back(v);
        rows.push_back(row_of[v]);
      }
      witness = find_dominating_subset(ctx.n(), members, rows, k);
    }

    // Publish the lowest-id finder's witness.
    auto found_bits = ctx.share_bit(witness.has_value());
    NodeId winner = ctx.n();
    for (NodeId v = 0; v < ctx.n(); ++v) {
      if (found_bits[v]) {
        winner = v;
        break;
      }
    }
    const unsigned idb = node_id_bits(ctx.n());
    BitVector wit_bits(static_cast<std::size_t>(k) * idb);
    if (witness.has_value() && me == winner) {
      wit_bits = BitVector{};
      for (NodeId v : *witness) wit_bits.append_bits(v, idb);
    }
    auto all_wits = ctx.broadcast(wit_bits);
    std::vector<NodeId> final_witness;
    if (winner < ctx.n()) {
      for (unsigned i = 0; i < k; ++i)
        final_witness.push_back(static_cast<NodeId>(all_wits[winner].read_bits(
            static_cast<std::size_t>(i) * idb, idb)));
    }
    sink.set(me, final_witness);
    ctx.decide(winner < ctx.n());
  });

  KdsResult result;
  result.cost = run.cost;
  result.found = run.accepted();
  auto wits = sink.take();
  if (result.found) result.witness = wits[0];
  return result;
}

}  // namespace ccq
