#include "graphalg/sssp.hpp"

#include "graphalg/common.hpp"
#include "util/math.hpp"

namespace ccq {

SsspResult bfs_clique(const Graph& g, NodeId source) {
  CCQ_CHECK(source < g.n());
  const NodeId n = g.n();
  PerNode<std::pair<std::uint64_t, NodeId>> sink(n);

  auto run = Engine::run(g, [&, source](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    std::uint64_t dist = me == source ? 0 : kUnreachable;
    NodeId parent = me;
    bool in_frontier = (me == source);

    for (std::uint64_t level = 0;; ++level) {
      // Everyone announces frontier membership; undiscovered nodes adopt
      // the lowest-id frontier in-neighbour as parent.
      auto frontier = ctx.share_bit(in_frontier);
      bool discovered_now = false;
      if (dist == kUnreachable) {
        for (NodeId u = 0; u < ctx.n(); ++u) {
          if (frontier[u] && ctx.in_row().get(u)) {
            dist = level + 1;
            parent = u;
            discovered_now = true;
            break;
          }
        }
      }
      in_frontier = discovered_now;
      if (!ctx.any(discovered_now)) break;
    }

    sink.set(me, {dist, parent});
    ctx.output(dist == kUnreachable ? 0 : dist);
  });

  SsspResult result;
  result.cost = run.cost;
  result.dist.resize(n);
  result.parent.resize(n);
  auto vals = sink.take();
  for (NodeId v = 0; v < n; ++v) {
    result.dist[v] = vals[v].first;
    result.parent[v] = vals[v].second;
  }
  return result;
}

SsspResult bellman_ford_clique(const Graph& g, NodeId source) {
  CCQ_CHECK(source < g.n());
  const NodeId n = g.n();
  // Distances fit in ⌈log₂((n-1)·w_max + 1)⌉ bits; reserve the all-ones
  // pattern for "unreachable".
  std::uint32_t max_w = 1;
  for (const Edge& e : g.edges()) max_w = std::max(max_w, e.w);
  const unsigned dist_bits =
      std::max(2u, ceil_log2(static_cast<std::uint64_t>(n) * max_w + 2));
  const std::uint64_t inf_code = (dist_bits >= 64)
                                     ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << dist_bits) - 1;

  PerNode<std::pair<std::uint64_t, NodeId>> sink(n);

  auto run = Engine::run(g, [&, source, dist_bits, inf_code](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    std::uint64_t dist = me == source ? 0 : kUnreachable;
    NodeId parent = me;

    for (NodeId iter = 0; iter + 1 < ctx.n() || ctx.n() == 1; ++iter) {
      BitVector mine;
      mine.append_bits(dist == kUnreachable ? inf_code : dist, dist_bits);
      auto all = ctx.broadcast(mine);
      bool changed = false;
      for (NodeId u = 0; u < ctx.n(); ++u) {
        if (u == me || !ctx.in_row().get(u)) continue;
        const std::uint64_t du = all[u].read_bits(0, dist_bits);
        if (du == inf_code) continue;
        const std::uint64_t cand =
            du + (ctx.weighted() ? ctx.edge_weight(u) : 1);
        if (cand < dist) {
          dist = cand;
          parent = u;
          changed = true;
        }
      }
      if (!ctx.any(changed)) break;
    }

    sink.set(me, {dist, parent});
    ctx.output(dist == kUnreachable ? 0 : dist);
  });

  SsspResult result;
  result.cost = run.cost;
  result.dist.resize(n);
  result.parent.resize(n);
  auto vals = sink.take();
  for (NodeId v = 0; v < n; ++v) {
    result.dist[v] = vals[v].first;
    result.parent[v] = vals[v].second;
  }
  return result;
}

}  // namespace ccq
