#pragma once

// Size-k structure detection in O(k²·n^{1-2/k}) rounds — the partitioning
// scheme of Dolev, Lenzen and Peled ("Tri, tri again" [16]) that Figure 1
// and §7 rely on for triangle / k-IS / k-cycle / size-k subgraph detection.
//
// Scheme: partition V into s = ⌊n^{1/k}⌋ parts. Assign each tuple
// (t_1,...,t_k) ∈ [s]^k to a distinct node (s^k ≤ n). That node learns every
// edge *inside* U = P_{t_1} ∪ ... ∪ P_{t_k} and locally checks an arbitrary
// predicate on the induced subgraph. Any k-node structure lives inside some
// union of k parts, so some tuple node sees it.
//
// The local predicate receives the induced graph on U together with the
// original node ids, and reports a witness (original ids) if found.

#include <functional>
#include <optional>
#include <vector>

#include "clique/cost.hpp"
#include "graph/graph.hpp"

namespace ccq {

struct DetectionResult {
  bool found = false;
  std::vector<NodeId> witness;  ///< original node ids; empty if !found
  CostMeter cost;
};

/// Local check run by each tuple node: `induced` is the subgraph on the
/// union U, `ids[i]` the original id of induced-node i. Return the witness
/// in original ids, or nullopt.
using LocalPattern = std::function<std::optional<std::vector<NodeId>>(
    const Graph& induced, const std::vector<NodeId>& ids)>;

/// Generic Dolev-style detector for a size-k structure.
DetectionResult detect_structure_clique(const Graph& g, unsigned k,
                                        const LocalPattern& pattern);

// Convenience wrappers (all measured through the same detector):

/// Triangle detection (k = 3). Routes through the sparse Boolean-MM path
/// (triangle_mm_clique) when graph_density(g) ≤ kSparseMmMaxDensity, the
/// Dolev-style detector otherwise.
DetectionResult triangle_clique(const Graph& g);

/// Triangle detection via one distributed Boolean squaring on the sparse
/// nonzero-block schedule: a triangle through v exists iff (A² ∧ A) has a
/// set entry in row v. Communication scales with nnz (DESIGN.md §13), which
/// beats the detector's Θ(n^{1+1/3}/B) rounds on sparse inputs.
DetectionResult triangle_mm_clique(const Graph& g);

/// Independent set of size k (the k-IS of Figure 1; note 3-IS and triangle
/// are complement problems, which test_reductions exercises).
DetectionResult independent_set_clique(const Graph& g, unsigned k);

/// Clique of size k.
DetectionResult clique_detect_clique(const Graph& g, unsigned k);

/// Simple cycle on exactly k nodes.
DetectionResult k_cycle_clique(const Graph& g, unsigned k);

/// Arbitrary pattern containment (|pattern| = k, not induced).
DetectionResult subgraph_clique(const Graph& g, const Graph& pattern);

}  // namespace ccq
