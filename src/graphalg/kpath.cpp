#include "graphalg/kpath.hpp"

#include <cmath>
#include <vector>

#include "graphalg/common.hpp"
#include "util/rng.hpp"

namespace ccq {

namespace {

unsigned default_trials(unsigned k) {
  return static_cast<unsigned>(std::ceil(3.0 * std::exp(k)));
}

}  // namespace

KPathResult k_path_clique(const Graph& g, unsigned k, unsigned trials) {
  CCQ_CHECK_MSG(!g.is_directed(), "k-path is defined for undirected graphs");
  CCQ_CHECK(k >= 1 && k <= 20);
  if (trials == 0) trials = default_trials(k);
  const NodeId n = g.n();

  PerNode<unsigned> trial_sink(n);

  auto run = Engine::run(g, [&, k, trials](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    const std::uint32_t full = (k >= 32) ? 0 : ((1u << k) - 1);
    bool found = false;
    unsigned used = 0;

    for (unsigned t = 0; t < trials && !found; ++t) {
      ++used;
      // Public colouring: everyone derives everyone's colour from the
      // common seed — no communication required.
      auto colour_of = [&](NodeId v) {
        return static_cast<unsigned>(
            mix64(ctx.common_seed() ^
                  (static_cast<std::uint64_t>(t) * ctx.n() + v + 1)) %
            k);
      };
      const unsigned my_colour = colour_of(me);

      // reach[S] (my bit): a colourful path with colour set S ends at me.
      std::vector<std::uint8_t> reach(std::size_t{1} << k, 0);
      reach[1u << my_colour] = 1;

      // Level-synchronous DP. At each level all nodes broadcast their
      // current reach bits for subsets of that size.
      for (unsigned level = 1; level < k; ++level) {
        BitVector mine;
        std::vector<std::uint32_t> level_sets;
        for (std::uint32_t sset = 0; sset <= full; ++sset) {
          if (static_cast<unsigned>(__builtin_popcount(sset)) == level) {
            level_sets.push_back(sset);
            mine.push_back(reach[sset] != 0);
          }
        }
        auto all = ctx.broadcast(mine);
        for (std::size_t i = 0; i < level_sets.size(); ++i) {
          const std::uint32_t sset = level_sets[i];
          if (sset & (1u << my_colour)) continue;  // can't extend into S
          const std::uint32_t bigger = sset | (1u << my_colour);
          if (reach[bigger]) continue;
          const BitVector& row = ctx.adj_row();
          for (std::size_t u = row.find_first(); u < row.size();
               u = row.find_first(u + 1)) {
            if (all[u].get(i)) {
              reach[bigger] = 1;
              break;
            }
          }
        }
      }
      found = ctx.any(reach[full] != 0);
    }

    trial_sink.set(me, used);
    ctx.decide(found);
  });

  KPathResult result;
  result.cost = run.cost;
  result.found = run.accepted();
  result.trials_used = trial_sink.take()[0];
  return result;
}

}  // namespace ccq
