#include "graphalg/mst.hpp"

#include <algorithm>

#include "graphalg/common.hpp"
#include "util/math.hpp"

namespace ccq {

namespace {

// Canonical total order on edges (w, u, v) — makes the MSF unique and the
// per-component minimum well-defined, so all nodes reach identical merge
// decisions without extra communication.
struct EdgeRec {
  std::uint32_t w = 0;
  NodeId u = 0, v = 0;
  bool valid = false;

  bool operator<(const EdgeRec& o) const {
    if (valid != o.valid) return valid;  // valid records sort first
    if (w != o.w) return w < o.w;
    if (u != o.u) return u < o.u;
    return v < o.v;
  }
};

struct ReplicatedUnionFind {
  std::vector<NodeId> parent;
  explicit ReplicatedUnionFind(NodeId n) : parent(n) {
    for (NodeId v = 0; v < n; ++v) parent[v] = v;
  }
  NodeId find(NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  }
  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent[std::max(a, b)] = std::min(a, b);
    return true;
  }
};

}  // namespace

MstResult mst_boruvka_clique(const Graph& g) {
  CCQ_CHECK_MSG(!g.is_directed(), "MSF is defined for undirected graphs");
  const NodeId n = g.n();
  PerNode<std::vector<Edge>> forest_sink(n);
  PerNode<unsigned> phase_sink(n);

  auto run = Engine::run(g, [&](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    const unsigned idb = node_id_bits(ctx.n());

    // Agree on the weight field width: one broadcast of each node's local
    // max incident weight (32-bit field), then w_bits = ⌈log₂(max+1)⌉.
    std::uint32_t local_max = 1;
    {
      const BitVector& row = ctx.adj_row();
      for (std::size_t u = row.find_first(); u < row.size();
           u = row.find_first(u + 1)) {
        local_max = std::max(local_max,
                             ctx.edge_weight(static_cast<NodeId>(u)));
      }
    }
    BitVector maxmsg;
    maxmsg.append_bits(local_max, 32);
    std::uint32_t global_max = 1;
    for (const auto& b : ctx.broadcast(maxmsg)) {
      global_max = std::max(global_max,
                            static_cast<std::uint32_t>(b.read_bits(0, 32)));
    }
    const unsigned wb = std::max(1u, ceil_log2(
                                         static_cast<std::uint64_t>(
                                             global_max) +
                                         1));

    ReplicatedUnionFind uf(ctx.n());
    std::vector<Edge> forest;
    unsigned phases = 0;

    while (true) {
      // My lightest incident edge leaving my component.
      EdgeRec mine;
      const BitVector& row = ctx.adj_row();
      for (std::size_t u = row.find_first(); u < row.size();
           u = row.find_first(u + 1)) {
        const NodeId nu = static_cast<NodeId>(u);
        if (uf.find(me) == uf.find(nu)) continue;
        EdgeRec cand{ctx.edge_weight(nu), std::min(me, nu),
                     std::max(me, nu), true};
        if (!mine.valid || cand < mine) mine = cand;
      }

      // Fixed-format phase broadcast: [valid | u | v | w].
      BitVector msg;
      msg.push_back(mine.valid);
      msg.append_bits(mine.valid ? mine.u : 0, idb);
      msg.append_bits(mine.valid ? mine.v : 0, idb);
      msg.append_bits(mine.valid ? mine.w : 0, wb);
      auto all = ctx.broadcast(msg);

      std::vector<EdgeRec> candidates;
      for (const auto& b : all) {
        if (!b.get(0)) continue;
        EdgeRec r;
        r.valid = true;
        r.u = static_cast<NodeId>(b.read_bits(1, idb));
        r.v = static_cast<NodeId>(b.read_bits(1 + idb, idb));
        r.w = static_cast<std::uint32_t>(b.read_bits(1 + 2 * idb, wb));
        candidates.push_back(r);
      }
      if (candidates.empty()) break;  // no outgoing edges anywhere: done
      ++phases;

      // Borůvka safety: keep only the per-COMPONENT minimum candidates.
      // (A node's own minimum need not be its component's minimum, and
      // merging a non-minimum candidate can pick a non-MSF edge. The node
      // incident to a component's true minimum always proposes it, so the
      // per-component minima are present in the candidate set.)
      std::vector<EdgeRec> comp_min(ctx.n());
      for (const EdgeRec& r : candidates) {
        for (NodeId end : {r.u, r.v}) {
          const NodeId c = uf.find(end);
          if (!comp_min[c].valid || r < comp_min[c]) comp_min[c] = r;
        }
      }
      std::vector<EdgeRec> chosen;
      for (NodeId c = 0; c < ctx.n(); ++c) {
        if (comp_min[c].valid && uf.find(c) == c)
          chosen.push_back(comp_min[c]);
      }
      // Each chosen edge is the canonical-order minimum cut edge of its
      // component — an MSF edge. Sort + unite (dedup when two components
      // choose the same edge).
      std::sort(chosen.begin(), chosen.end());
      for (const EdgeRec& r : chosen) {
        if (uf.unite(r.u, r.v)) forest.push_back({r.u, r.v, r.w});
      }
    }

    std::sort(forest.begin(), forest.end(),
              [](const Edge& a, const Edge& b) {
                return a.u != b.u ? a.u < b.u : a.v < b.v;
              });
    std::uint64_t weight = 0;
    for (const Edge& e : forest) weight += e.w;
    forest_sink.set(me, forest);
    phase_sink.set(me, phases);
    ctx.output(weight);
  });

  MstResult result;
  result.cost = run.cost;
  result.weight = run.outputs[0];
  result.forest = forest_sink.take()[0];
  result.phases = phase_sink.take()[0];
  return result;
}


MsfCertificate msf_certificate(const Graph& g,
                               const std::vector<Edge>& forest) {
  const NodeId n = g.n();
  // Adjacency of the claimed forest.
  std::vector<std::vector<NodeId>> adj(n);
  for (const Edge& e : forest) {
    CCQ_CHECK_MSG(g.has_edge(e.u, e.v), "certificate edge not in graph");
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  MsfCertificate cert;
  cert.parent.assign(n, std::nullopt);
  std::vector<bool> seen(n, false);
  for (NodeId root = 0; root < n; ++root) {
    if (seen[root]) continue;
    // BFS from the minimum-id node of each component.
    std::vector<NodeId> queue{root};
    seen[root] = true;
    std::size_t head = 0;
    while (head < queue.size()) {
      const NodeId x = queue[head++];
      for (NodeId y : adj[x]) {
        if (seen[y]) continue;  // cycles are caught by the count identity
        seen[y] = true;
        cert.parent[y] = x;
        queue.push_back(y);
      }
    }
  }
  CCQ_CHECK_MSG(forest.size() + [&] {
    std::size_t roots = 0;
    for (NodeId v = 0; v < n; ++v)
      if (!cert.parent[v].has_value()) ++roots;
    return roots;
  }() == n,
                "certificate edges must form a forest (cycle detected)");
  return cert;
}

RunResult verify_msf_clique(const Graph& g, const MsfCertificate& cert) {
  const NodeId n = g.n();
  CCQ_CHECK(cert.parent.size() == n);
  CCQ_CHECK_MSG(!g.is_directed(), "MSF verification: undirected only");

  return Engine::run(g, [&](NodeCtx& ctx) {
    const NodeId me = ctx.id();
    const unsigned idb = node_id_bits(ctx.n());

    // Agree on the weight width (as in the construction algorithm).
    std::uint32_t local_max = 1;
    {
      const BitVector& row = ctx.adj_row();
      for (std::size_t u = row.find_first(); u < row.size();
           u = row.find_first(u + 1)) {
        local_max = std::max(local_max,
                             ctx.edge_weight(static_cast<NodeId>(u)));
      }
    }
    BitVector maxmsg;
    maxmsg.append_bits(local_max, 32);
    std::uint32_t global_max = 1;
    for (const auto& b : ctx.broadcast(maxmsg)) {
      global_max = std::max(global_max,
                            static_cast<std::uint32_t>(b.read_bits(0, 32)));
    }
    const unsigned wb = std::max(1u, ceil_log2(
                                         static_cast<std::uint64_t>(
                                             global_max) +
                                         1));

    // (a) My parent edge must exist; broadcast [has|parent|claimed w].
    const auto& my_parent = cert.parent[me];
    bool ok = true;
    std::uint32_t my_w = 0;
    if (my_parent.has_value()) {
      if (*my_parent >= ctx.n() || !ctx.adj_row().get(*my_parent) ||
          *my_parent == me) {
        ok = false;
      } else {
        my_w = ctx.edge_weight(*my_parent);
      }
    }
    BitVector msg;
    msg.push_back(my_parent.has_value() && ok);
    msg.append_bits(my_parent.value_or(0), idb);
    msg.append_bits(my_w, wb);
    auto all = ctx.broadcast(msg);

    // Reconstruct the claimed rooted forest.
    std::vector<std::optional<NodeId>> parent(ctx.n());
    std::vector<std::uint32_t> pweight(ctx.n(), 0);
    for (NodeId v = 0; v < ctx.n(); ++v) {
      if (all[v].get(0)) {
        parent[v] = static_cast<NodeId>(all[v].read_bits(1, idb));
        pweight[v] = static_cast<std::uint32_t>(
            all[v].read_bits(1 + idb, wb));
      } else if (cert.parent[v].has_value() && v == me) {
        ok = false;  // my own edge was invalid
      }
    }

    // (b) Parent pointers must be acyclic (walk with a step budget).
    std::vector<NodeId> comp(ctx.n());
    std::vector<std::uint32_t> depth(ctx.n(), 0);
    for (NodeId v = 0; v < ctx.n() && ok; ++v) {
      NodeId x = v;
      std::uint32_t steps = 0;
      while (parent[x].has_value()) {
        x = *parent[x];
        if (++steps > ctx.n()) {
          ok = false;  // cycle in the parent pointers
          break;
        }
      }
      comp[v] = x;
      depth[v] = steps;
    }

    // Path maximum between two nodes in the same component.
    auto path_max = [&](NodeId a, NodeId b) {
      std::uint32_t best = 0;
      NodeId x = a, y = b;
      std::uint32_t dx = depth[x], dy = depth[y];
      while (dx > dy) {
        best = std::max(best, pweight[x]);
        x = *parent[x];
        --dx;
      }
      while (dy > dx) {
        best = std::max(best, pweight[y]);
        y = *parent[y];
        --dy;
      }
      while (x != y) {
        best = std::max(best, pweight[x]);
        best = std::max(best, pweight[y]);
        x = *parent[x];
        y = *parent[y];
      }
      return best;
    };

    // (c) My incident non-forest edges: same component (spanning) and no
    // lighter than the forest path (cycle property).
    if (ok) {
      const BitVector& row = ctx.adj_row();
      for (std::size_t ui = row.find_first(); ui < row.size();
           ui = row.find_first(ui + 1)) {
        const NodeId u = static_cast<NodeId>(ui);
        const bool is_tree_edge =
            (parent[me].has_value() && *parent[me] == u) ||
            (parent[u].has_value() && *parent[u] == me);
        if (is_tree_edge) {
          // Weight claim must match reality (checked by both endpoints).
          const std::uint32_t claimed = parent[me].has_value() &&
                                                *parent[me] == u
                                            ? pweight[me]
                                            : pweight[u];
          if (claimed != ctx.edge_weight(u)) {
            ok = false;
            break;
          }
          continue;
        }
        if (comp[me] != comp[u]) {
          ok = false;  // a graph edge crosses two forest components
          break;
        }
        if (ctx.edge_weight(u) < path_max(me, u)) {
          ok = false;  // violates the cycle property: not minimal
          break;
        }
      }
    }
    ctx.decide(ok);
  });
}

}  // namespace ccq
