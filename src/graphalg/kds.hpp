#pragma once

// Theorem 9: a dominating set of size k can be found in O(n^{1-1/k}) rounds.
//
// The paper's algorithm (§7.1), a modification of Dolev et al. [16]:
//  (1) partition V into n^{1/k} sets S_1,...,S_{n^{1/k}} of size
//      O(n^{1-1/k});
//  (2) assign each label in [n^{1/k}]^k to some node, globally consistently;
//  (3) node v with label (j_1,...,j_k) learns ALL edges incident to
//      S_v = S_{j_1} ∪ ... ∪ S_{j_k} and locally checks whether S_v contains
//      a dominating set of size k.
// Message delivery uses the routing layer (the paper cites Lenzen [43]; our
// per-pair-balanced pattern achieves the bound with direct scheduling, see
// DESIGN.md §1) — the bench asserts the measured O(n^{1-1/k}) growth.

#include <optional>
#include <vector>

#include "clique/cost.hpp"
#include "graph/graph.hpp"

namespace ccq {

struct KdsResult {
  bool found = false;
  std::vector<NodeId> witness;
  CostMeter cost;
};

KdsResult k_dominating_set_clique(const Graph& g, unsigned k);

}  // namespace ccq
