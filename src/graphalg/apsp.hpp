#pragma once

// All-pairs shortest paths and transitive closure in the congested clique
// via distributed matrix powers (§7, Figure 1: APSP variants, transitive
// closure, Boolean MM, (min,+) MM).

#include <cstdint>
#include <vector>

#include "clique/cost.hpp"
#include "graph/graph.hpp"

namespace ccq {

struct ApspResult {
  /// Row-major n×n distance matrix (kUnreachable-style sentinel ∞).
  std::vector<std::uint64_t> dist;
  CostMeter cost;
};

struct ClosureResult {
  /// Row-major n×n reachability (1 = reachable, diagonal = 1).
  std::vector<std::uint8_t> reach;
  CostMeter cost;
};

enum class MmAlgo {
  kNaiveBroadcast,  ///< Θ(n·w/B)-round baseline
  k3dPartition,     ///< O(n^{1/3}·w/B) rounds (Censor-Hillel et al. [10])
  kSparse3d,        ///< nonzero-block 3-D schedule, bits ∝ nnz (DESIGN.md §13)
  kAuto,            ///< kSparse3d when graph_density ≤ kSparseMmMaxDensity
};

/// APSP by ⌈log₂n⌉ distributed (min,+) squarings of the weight matrix.
/// Handles directed and weighted graphs.
ApspResult apsp_clique(const Graph& g, MmAlgo algo = MmAlgo::kAuto);

/// Reflexive-transitive closure by Boolean squaring.
ClosureResult transitive_closure_clique(const Graph& g,
                                        MmAlgo algo = MmAlgo::kAuto);

/// (1+ε)-approximate weighted APSP — the approximation boxes of Figure 1.
/// Weights are rounded to powers of (1+ε/(2n)) before the (min,+) squaring,
/// shrinking the entry width from log(n·w_max) to log n + log(1/ε) + O(1)
/// bits and therefore the measured rounds; every reported distance d̃
/// satisfies d ≤ d̃ ≤ (1+ε)·d. (The paper's (1+ε) boxes cite the far more
/// sophisticated [5]; DESIGN.md records this substitution — the *measured
/// tradeoff* approximate-cheaper-than-exact is what Figure 1 needs.)
ApspResult apsp_approx_clique(const Graph& g, double epsilon,
                              MmAlgo algo = MmAlgo::kAuto);

}  // namespace ccq
