#pragma once

// Theorem 11: a vertex cover of size k can be found in O(k) rounds —
// the congested-clique Buss kernelisation of §7.3.
//
//  Preprocessing (1 round): every node of degree ≥ k+1 joins the cover C
//  and announces it; if |C| > k there is no size-k cover (Lemma 12).
//  Main phase (≤ k+1 rounds): every node outside C broadcasts its ≤ k
//  incident edges not covered by C; everyone solves the ≤ k·|V∖C|-edge
//  kernel locally.
//
// The round count depends on k only — the bench sweeps n to show it.

#include <vector>

#include "clique/cost.hpp"
#include "graph/graph.hpp"

namespace ccq {

struct KvcResult {
  bool found = false;
  std::vector<NodeId> witness;  ///< a vertex cover of size ≤ k when found
  CostMeter cost;
};

KvcResult k_vertex_cover_clique(const Graph& g, unsigned k);

}  // namespace ccq
