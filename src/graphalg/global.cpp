#include "graphalg/global.hpp"

#include "graph/oracles.hpp"
#include "graphalg/common.hpp"

namespace ccq {

GlobalSolveResult solve_globally(
    const Graph& g,
    const std::function<std::optional<std::vector<NodeId>>(const Graph&)>&
        local_solver) {
  const NodeId n = g.n();
  PerNode<std::vector<NodeId>> sink(n);

  auto run = Engine::run(g, [&](NodeCtx& ctx) {
    auto rows = ctx.broadcast(ctx.adj_row());
    Graph full = ctx.directed() ? Graph::directed(ctx.n())
                                : Graph::undirected(ctx.n());
    for (NodeId v = 0; v < ctx.n(); ++v) {
      for (std::size_t u = rows[v].find_first(); u < rows[v].size();
           u = rows[v].find_first(u + 1)) {
        if (ctx.directed() || v < u)
          full.add_edge(v, static_cast<NodeId>(u));
      }
    }
    auto solution = local_solver(full);
    sink.set(ctx.id(), solution.value_or(std::vector<NodeId>{}));
    ctx.decide(solution.has_value());
  });

  GlobalSolveResult result;
  result.cost = run.cost;
  result.found = run.accepted();
  result.witness = sink.take()[0];
  return result;
}

GlobalSolveResult max_independent_set_clique(const Graph& g) {
  return solve_globally(g, [](const Graph& full) {
    return std::optional<std::vector<NodeId>>(
        oracle::max_independent_set(full));
  });
}

GlobalSolveResult min_vertex_cover_clique(const Graph& g) {
  return solve_globally(g, [](const Graph& full) {
    return std::optional<std::vector<NodeId>>(
        oracle::min_vertex_cover(full));
  });
}

GlobalSolveResult k_colouring_clique(const Graph& g, unsigned k) {
  return solve_globally(
      g, [k](const Graph& full) { return oracle::k_colouring(full, k); });
}

GlobalSolveResult hamiltonian_path_clique(const Graph& g) {
  return solve_globally(
      g, [](const Graph& full) { return oracle::hamiltonian_path(full); });
}

}  // namespace ccq
