#include "reductions/is_to_ds.hpp"

#include <algorithm>

#include "graphalg/kds.hpp"
#include "util/check.hpp"

namespace ccq {

namespace {

// Pairs (i,j), i<j, enumerated lexicographically.
unsigned pair_index(unsigned i, unsigned j, unsigned k) {
  CCQ_DCHECK(i < j && j < k);
  // Number of pairs with first coordinate < i, plus offset within row i.
  return i * k - i * (i + 1) / 2 + (j - i - 1);
}

}  // namespace

IsToDsGadget::IsToDsGadget(NodeId n, unsigned k)
    : n_(n), k_(k), pairs_(k * (k - 1) / 2) {
  CCQ_CHECK(k >= 1);
  CCQ_CHECK(n >= 1);
  total_ = (static_cast<NodeId>(k_) + pairs_) * n_ + 2 * k_;
}

NodeId IsToDsGadget::clique_node(unsigned i, NodeId v) const {
  CCQ_DCHECK(i < k_ && v < n_);
  return static_cast<NodeId>(i) * n_ + v;
}

NodeId IsToDsGadget::gadget_node(unsigned i, unsigned j, NodeId v) const {
  CCQ_DCHECK(i < j && j < k_ && v < n_);
  return (static_cast<NodeId>(k_) + pair_index(i, j, k_)) * n_ + v;
}

NodeId IsToDsGadget::special_x(unsigned i) const {
  return (static_cast<NodeId>(k_) + pairs_) * n_ + 2 * i;
}

NodeId IsToDsGadget::special_y(unsigned i) const {
  return special_x(i) + 1;
}

std::optional<std::pair<unsigned, NodeId>> IsToDsGadget::as_clique_node(
    NodeId w) const {
  if (w >= static_cast<NodeId>(k_) * n_) return std::nullopt;
  return std::make_pair(static_cast<unsigned>(w / n_), w % n_);
}

Graph IsToDsGadget::build(const Graph& g) const {
  CCQ_CHECK(g.n() == n_);
  CCQ_CHECK(!g.is_directed());
  Graph gp = Graph::undirected(total_);

  // Cliques K_i.
  for (unsigned i = 0; i < k_; ++i) {
    for (NodeId u = 0; u < n_; ++u)
      for (NodeId v = u + 1; v < n_; ++v)
        gp.add_edge(clique_node(i, u), clique_node(i, v));
    // Special nodes attached to all of K_i.
    for (NodeId v = 0; v < n_; ++v) {
      gp.add_edge(special_x(i), clique_node(i, v));
      gp.add_edge(special_y(i), clique_node(i, v));
    }
  }

  // Compatibility gadgets.
  for (unsigned i = 0; i < k_; ++i) {
    for (unsigned j = i + 1; j < k_; ++j) {
      for (NodeId v = 0; v < n_; ++v) {
        for (NodeId u = 0; u < n_; ++u) {
          if (u == v) continue;
          // v_i adjacent to u_{i,j} for all u ≠ v.
          gp.add_edge(clique_node(i, v), gadget_node(i, j, u));
          // v_j adjacent to u_{i,j} for all u ≠ v that are NOT neighbours
          // of v in G.
          if (!g.has_edge(v, u))
            gp.add_edge(clique_node(j, v), gadget_node(i, j, u));
        }
      }
    }
  }
  return gp;
}

std::vector<NodeId> IsToDsGadget::witness_forward(
    const std::vector<NodeId>& is) const {
  CCQ_CHECK(is.size() == k_);
  std::vector<NodeId> ds;
  for (unsigned i = 0; i < k_; ++i) ds.push_back(clique_node(i, is[i]));
  return ds;
}

std::vector<NodeId> IsToDsGadget::witness_back(
    const std::vector<NodeId>& ds) const {
  // By the structure theorem, a size-k dominating set has exactly one node
  // in each K_i, and those correspond to distinct, pairwise non-adjacent
  // original nodes.
  std::vector<NodeId> is;
  for (NodeId w : ds) {
    auto cn = as_clique_node(w);
    CCQ_CHECK_MSG(cn.has_value(),
                  "dominating set contains a non-clique node");
    is.push_back(cn->second);
  }
  std::sort(is.begin(), is.end());
  return is;
}

ReducedKisResult k_independent_set_via_ds_clique(const Graph& g,
                                                 unsigned k) {
  IsToDsGadget gadget(g.n(), k);
  Graph gp = gadget.build(g);
  auto ds = k_dominating_set_clique(gp, k);

  ReducedKisResult result;
  result.cost = ds.cost;
  result.found = ds.found;
  if (ds.found) result.witness = gadget.witness_back(ds.witness);
  return result;
}

}  // namespace ccq
