#pragma once

// §7 / Figure 1: Boolean matrix multiplication reduces to (2−ε)-approximate
// weighted undirected APSP (Dor, Halperin and Zwick [17]).
//
// Layered construction: for Boolean A (p×q) and B (q×r) build the graph
// with node layers I (p), J (q), K (r); edge i—j iff A[i][j], j—k iff
// B[j][k]. Then (A·B)[i][k] = 1  ⇔  d(i,k) = 2, and otherwise d(i,k) ≥ 4
// (the graph is "even": I and K only touch J). Any (2−ε)-approximation
// reports < 4 exactly on product-ones — so a fast (2−ε)-APSP algorithm
// yields fast Boolean MM, which is why the approximation edge of Figure 1
// stops at 2−ε.

#include "algebra/matrix.hpp"
#include "clique/cost.hpp"
#include "graph/graph.hpp"
#include "graphalg/apsp.hpp"

namespace ccq {

class BmmToApspGadget {
 public:
  BmmToApspGadget(std::size_t p, std::size_t q, std::size_t r);

  Graph build(const Matrix<std::uint8_t>& a,
              const Matrix<std::uint8_t>& b) const;

  NodeId total_nodes() const {
    return static_cast<NodeId>(p_ + q_ + r_);
  }
  NodeId layer_i(std::size_t i) const { return static_cast<NodeId>(i); }
  NodeId layer_j(std::size_t j) const {
    return static_cast<NodeId>(p_ + j);
  }
  NodeId layer_k(std::size_t k) const {
    return static_cast<NodeId>(p_ + q_ + k);
  }

  /// Read the Boolean product off a distance matrix of the gadget graph
  /// using the (2−ε) threshold: entry = 1 ⇔ reported d(i,k) < 4.
  Matrix<std::uint8_t> product_from_distances(
      const std::vector<std::uint64_t>& dist) const;

 private:
  std::size_t p_, q_, r_;
};

struct ReducedBmmResult {
  Matrix<std::uint8_t> product;
  CostMeter cost;
};

/// Boolean MM computed through the APSP reduction in the clique model.
ReducedBmmResult bmm_via_apsp_clique(const Matrix<std::uint8_t>& a,
                                     const Matrix<std::uint8_t>& b,
                                     MmAlgo algo = MmAlgo::k3dPartition);

}  // namespace ccq
