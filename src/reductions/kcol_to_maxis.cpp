#include "reductions/kcol_to_maxis.hpp"

#include "graph/oracles.hpp"
#include "graphalg/global.hpp"
#include "util/check.hpp"

namespace ccq {

KColGadget::KColGadget(NodeId n, unsigned k) : n_(n), k_(k) {
  CCQ_CHECK(k >= 1);
}

NodeId KColGadget::copy_node(NodeId v, unsigned colour) const {
  CCQ_DCHECK(v < n_ && colour < k_);
  return v * k_ + colour;
}

Graph KColGadget::build(const Graph& g) const {
  CCQ_CHECK(g.n() == n_ && !g.is_directed());
  Graph gp = Graph::undirected(total_nodes());
  for (NodeId v = 0; v < n_; ++v) {
    for (unsigned a = 0; a < k_; ++a)
      for (unsigned b = a + 1; b < k_; ++b)
        gp.add_edge(copy_node(v, a), copy_node(v, b));
  }
  for (const Edge& e : g.edges()) {
    for (unsigned c = 0; c < k_; ++c)
      gp.add_edge(copy_node(e.u, c), copy_node(e.v, c));
  }
  return gp;
}

std::vector<NodeId> KColGadget::colouring_from_is(
    const std::vector<NodeId>& is) const {
  CCQ_CHECK_MSG(is.size() == n_,
                "independent set of size n required to read a colouring");
  std::vector<NodeId> colour(n_, k_);
  for (NodeId w : is) {
    const NodeId v = w / k_;
    const unsigned c = static_cast<unsigned>(w % k_);
    CCQ_CHECK_MSG(colour[v] == k_, "two copies of one vertex in the IS");
    colour[v] = c;
  }
  return colour;
}

ReducedKColResult k_colouring_via_maxis_clique(const Graph& g, unsigned k) {
  const NodeId n = g.n();
  KColGadget gadget(n, k);
  Graph gp = gadget.build(g);
  // Gather G' at every node exactly as the generic MaxIS algorithm does
  // (the communication cost — one full broadcast on the kn-clique — is what
  // the reduction pays). Locally, instead of a blind branch-and-bound MaxIS
  // on G', exploit that an IS of size n in the gadget *is* a proper
  // colouring: decode the original graph and search colourings with
  // symmetry breaking. Local computation is unlimited in the model (§3);
  // the meter is unaffected.
  auto solved = solve_globally(gp, [n, k](const Graph& full)
                                   -> std::optional<std::vector<NodeId>> {
    KColGadget gadget_local(n, k);
    Graph original = Graph::undirected(n);
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v)
        if (full.has_edge(gadget_local.copy_node(u, 0),
                          gadget_local.copy_node(v, 0)))
          original.add_edge(u, v);
    auto colouring = oracle::k_colouring(original, k);
    if (!colouring) return std::nullopt;
    std::vector<NodeId> is;
    for (NodeId v = 0; v < n; ++v)
      is.push_back(gadget_local.copy_node(v, (*colouring)[v]));
    return is;
  });

  ReducedKColResult result;
  result.cost = solved.cost;
  result.colourable = solved.found && solved.witness.size() == n;
  if (result.colourable)
    result.colouring = gadget.colouring_from_is(solved.witness);
  return result;
}

}  // namespace ccq
