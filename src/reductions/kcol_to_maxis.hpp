#pragma once

// §7 / Figure 1: δ(k-COL) ≤ δ(MaxIS) via the classic blow-up reduction
// ([46] in the paper): replace each vertex v by k copies v_1..v_k joined
// into a clique, and connect v_i — u_i (same copy index) whenever {v,u} ∈ E.
// The new graph has an independent set of size n iff G is k-colourable; a
// witness independent set of size n reads off a proper colouring (the copy
// index chosen for each vertex). The blow-up is the constant factor k.

#include <optional>
#include <vector>

#include "clique/cost.hpp"
#include "graph/graph.hpp"

namespace ccq {

class KColGadget {
 public:
  KColGadget(NodeId n, unsigned k);

  Graph build(const Graph& g) const;

  NodeId total_nodes() const { return n_ * k_; }
  NodeId copy_node(NodeId v, unsigned colour) const;

  /// Recover a colouring from an independent set of size n in G′.
  std::vector<NodeId> colouring_from_is(const std::vector<NodeId>& is) const;

 private:
  NodeId n_;
  unsigned k_;
};

struct ReducedKColResult {
  bool colourable = false;
  std::vector<NodeId> colouring;  ///< one colour (0..k-1) per node
  CostMeter cost;
};

/// Decide k-colourability of G by running exact MaxIS on the blown-up
/// graph in the clique model.
ReducedKColResult k_colouring_via_maxis_clique(const Graph& g, unsigned k);

}  // namespace ccq
