#pragma once

// Complementation reductions (Figure 1 identifies "Triangle/3-IS" as one
// box, and MaxIS/MinVC as neighbours): a triangle in the complement graph
// is a 3-independent-set, and V ∖ MaxIS is a minimum vertex cover.
//
// NOTE on model fidelity: complementing flips every node's adjacency row
// locally — zero communication — so δ is preserved exactly.

#include "clique/cost.hpp"
#include "graph/graph.hpp"
#include "graphalg/global.hpp"
#include "graphalg/subgraph.hpp"

namespace ccq {

/// 3-independent-set via triangle detection on the complement.
DetectionResult three_is_via_triangle_clique(const Graph& g);

/// Minimum vertex cover as the complement of a maximum independent set.
GlobalSolveResult min_vertex_cover_via_maxis_clique(const Graph& g);

}  // namespace ccq
