#include "reductions/bmm_to_apsp.hpp"

namespace ccq {

BmmToApspGadget::BmmToApspGadget(std::size_t p, std::size_t q,
                                 std::size_t r)
    : p_(p), q_(q), r_(r) {
  CCQ_CHECK(p >= 1 && q >= 1 && r >= 1);
}

Graph BmmToApspGadget::build(const Matrix<std::uint8_t>& a,
                             const Matrix<std::uint8_t>& b) const {
  CCQ_CHECK(a.rows() == p_ && a.cols() == q_);
  CCQ_CHECK(b.rows() == q_ && b.cols() == r_);
  Graph g = Graph::undirected(total_nodes());
  for (std::size_t i = 0; i < p_; ++i) {
    const std::uint8_t* row = a.row_data(i);
    for (std::size_t j = 0; j < q_; ++j)
      if (row[j]) g.add_edge(layer_i(i), layer_j(j));
  }
  for (std::size_t j = 0; j < q_; ++j) {
    const std::uint8_t* row = b.row_data(j);
    for (std::size_t k = 0; k < r_; ++k)
      if (row[k]) g.add_edge(layer_j(j), layer_k(k));
  }
  return g;
}

Matrix<std::uint8_t> BmmToApspGadget::product_from_distances(
    const std::vector<std::uint64_t>& dist) const {
  const std::size_t n = total_nodes();
  CCQ_CHECK(dist.size() == n * n);
  Matrix<std::uint8_t> c(p_, r_, 0);
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t k = 0; k < r_; ++k) {
      const std::uint64_t d =
          dist[static_cast<std::size_t>(layer_i(i)) * n + layer_k(k)];
      // True distance is 2 (product one) or ≥ 4; a (2−ε)-approximation of 2
      // is < 4, of ≥4 is ≥ 4 — the threshold is exact either way.
      c.at(i, k) = d < 4 ? 1 : 0;
    }
  }
  return c;
}

ReducedBmmResult bmm_via_apsp_clique(const Matrix<std::uint8_t>& a,
                                     const Matrix<std::uint8_t>& b,
                                     MmAlgo algo) {
  BmmToApspGadget gadget(a.rows(), a.cols(), b.cols());
  Graph g = gadget.build(a, b);
  auto apsp = apsp_clique(g, algo);

  ReducedBmmResult result;
  result.cost = apsp.cost;
  result.product = gadget.product_from_distances(apsp.dist);
  return result;
}

}  // namespace ccq
