#pragma once

// Theorem 10 / Figure 2: the reduction from k-independent-set to
// k-dominating-set.
//
// From G = (V,E) on n nodes the construction builds G′ with
//   * k cliques K_1..K_k, each a copy of V;
//   * for each pair i<j a compatibility gadget: an independent set I_{i,j}
//     (copy of V) where v_i ∈ K_i is adjacent to u_{i,j} for all u ≠ v, and
//     v_j ∈ K_j is adjacent to u_{i,j} for all non-neighbours u ≠ v of v;
//   * two special nodes x_i, y_i attached to every node of K_i.
// |V(G′)| = (k + k(k-1)/2)·n + 2k ≤ (k² + k + 2)n, and G has an independent
// set of size k iff G′ has a dominating set of size k.
//
// The paper runs the k-DS algorithm on G′ *simulated inside the n-clique*
// with O(k^{2δ+4}) overhead; our driver instead instantiates G′ on its own
// clique (the engine supports the larger node count directly), which
// preserves the measured-round comparison the bench reports — DESIGN.md
// records this choice.

#include <optional>
#include <vector>

#include "clique/cost.hpp"
#include "graph/graph.hpp"

namespace ccq {

/// Deterministic node layout of G′.
class IsToDsGadget {
 public:
  IsToDsGadget(NodeId n, unsigned k);

  /// Build G′ from G (must have the n used at construction).
  Graph build(const Graph& g) const;

  NodeId total_nodes() const { return total_; }
  unsigned k() const { return k_; }

  /// Node ids in G′.
  NodeId clique_node(unsigned i, NodeId v) const;   // v_i ∈ K_i
  NodeId gadget_node(unsigned i, unsigned j, NodeId v) const;  // v_{i,j}
  NodeId special_x(unsigned i) const;
  NodeId special_y(unsigned i) const;

  /// Inverse: which original node does a K_i member represent?
  /// Returns nullopt for gadget/special nodes.
  std::optional<std::pair<unsigned, NodeId>> as_clique_node(NodeId w) const;

  /// Map a size-k dominating set of G′ back to a size-k independent set of
  /// G (valid whenever the input is a dominating set of G′).
  std::vector<NodeId> witness_back(const std::vector<NodeId>& ds) const;

  /// Forward direction used in proofs/tests: the dominating set of G′
  /// induced by an independent set {v_1,...,v_k} of G (v_i picked into K_i).
  std::vector<NodeId> witness_forward(const std::vector<NodeId>& is) const;

 private:
  NodeId n_;
  unsigned k_;
  unsigned pairs_;
  NodeId total_;
};

struct ReducedKisResult {
  bool found = false;
  std::vector<NodeId> witness;  ///< independent set in the original graph
  CostMeter cost;               ///< rounds of the k-DS run on G′
};

/// Find a k-independent set of G by running the Theorem 9 k-DS algorithm
/// on the Theorem 10 gadget graph.
ReducedKisResult k_independent_set_via_ds_clique(const Graph& g, unsigned k);

}  // namespace ccq
