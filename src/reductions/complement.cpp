#include "reductions/complement.hpp"

#include <algorithm>

namespace ccq {

DetectionResult three_is_via_triangle_clique(const Graph& g) {
  CCQ_CHECK(!g.is_directed());
  return triangle_clique(g.complement());
}

GlobalSolveResult min_vertex_cover_via_maxis_clique(const Graph& g) {
  auto mis = max_independent_set_clique(g);
  GlobalSolveResult result;
  result.cost = mis.cost;
  result.found = mis.found;
  std::vector<bool> in_is(g.n(), false);
  for (NodeId v : mis.witness) in_is[v] = true;
  for (NodeId v = 0; v < g.n(); ++v)
    if (!in_is[v]) result.witness.push_back(v);
  return result;
}

}  // namespace ccq
