#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstring>
#include <sstream>

namespace ccq::json {

namespace {

class Parser {
 public:
  Parser(const std::string& text, const std::string& origin)
      : text_(text), origin_(origin) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    fail_at(origin_, line_, msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value() {
    const char c = peek();
    Value v;
    v.line = line_;
    switch (c) {
      case '{': {
        v.kind = Value::Kind::kObject;
        ++pos_;
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        while (true) {
          Value key = value();
          if (key.kind != Value::Kind::kString)
            fail("object key must be a string");
          if (key.str.empty()) fail("object key must be non-empty");
          if (v.find(key.str) != nullptr)
            fail("duplicate key '" + key.str + "'");
          expect(':');
          v.obj.emplace_back(key.str, value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.kind = Value::Kind::kArray;
        ++pos_;
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        while (true) {
          v.arr.push_back(value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"': {
        v.kind = Value::Kind::kString;
        ++pos_;
        while (true) {
          if (pos_ >= text_.size()) fail("unterminated string");
          const char s = text_[pos_++];
          if (s == '"') break;
          if (s == '\n') fail("raw newline in string");
          if (s == '\\') {
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': v.str.push_back('"'); break;
              case '\\': v.str.push_back('\\'); break;
              case '/': v.str.push_back('/'); break;
              case 'n': v.str.push_back('\n'); break;
              case 't': v.str.push_back('\t'); break;
              default: fail("unsupported escape sequence");
            }
          } else {
            v.str.push_back(s);
          }
        }
        return v;
      }
      default: {
        if (c == 't' || c == 'f' || c == 'n') {
          const char* lit = c == 't' ? "true" : c == 'f' ? "false" : "null";
          const std::size_t len = std::strlen(lit);
          if (text_.compare(pos_, len, lit) != 0) fail("malformed literal");
          pos_ += len;
          if (c == 'n') {
            v.kind = Value::Kind::kNull;
          } else {
            v.kind = Value::Kind::kBool;
            v.b = (c == 't');
          }
          return v;
        }
        // number
        const std::size_t start = pos_;
        if (text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
          ++pos_;
        if (pos_ == start) fail("unexpected character");
        std::size_t used = 0;
        double d = 0;
        const std::string tok = text_.substr(start, pos_ - start);
        try {
          d = std::stod(tok, &used);
        } catch (const std::exception&) {
          fail("malformed number '" + tok + "'");
        }
        if (used != tok.size()) fail("malformed number '" + tok + "'");
        v.kind = Value::Kind::kNumber;
        v.num = d;
        return v;
      }
    }
  }

  const std::string& text_;
  std::string origin_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

Value parse(const std::string& text, const std::string& origin) {
  return Parser(text, origin).parse();
}

void fail_at(const std::string& origin, std::size_t line,
             const std::string& msg) {
  std::ostringstream os;
  os << origin << ":" << line << ": " << msg;
  throw ModelViolation(os.str());
}

std::uint64_t as_uint(const Value& v, std::uint64_t lo, std::uint64_t hi,
                      const char* what, const std::string& origin) {
  if (v.kind != Value::Kind::kNumber)
    fail_at(origin, v.line, std::string(what) + " must be a number");
  const double d = v.num;
  if (d < 0 || d != std::floor(d))
    fail_at(origin, v.line, std::string(what) + " must be a whole number");
  const auto u = static_cast<std::uint64_t>(d);
  if (u < lo || u > hi) {
    std::ostringstream os;
    os << what << " " << u << " out of range [" << lo << ", " << hi << "]";
    fail_at(origin, v.line, os.str());
  }
  return u;
}

double as_prob(const Value& v, const char* what, const std::string& origin) {
  if (v.kind != Value::Kind::kNumber)
    fail_at(origin, v.line, std::string(what) + " must be a number");
  if (v.num < 0 || v.num > 1)
    fail_at(origin, v.line, std::string(what) + " must be in [0, 1]");
  return v.num;
}

double as_number(const Value& v, const char* what,
                 const std::string& origin) {
  if (v.kind != Value::Kind::kNumber)
    fail_at(origin, v.line, std::string(what) + " must be a number");
  return v.num;
}

std::string as_string(const Value& v, const char* what,
                      const std::string& origin) {
  if (v.kind != Value::Kind::kString)
    fail_at(origin, v.line, std::string(what) + " must be a string");
  return v.str;
}

bool as_bool(const Value& v, const char* what, const std::string& origin) {
  if (v.kind != Value::Kind::kBool)
    fail_at(origin, v.line, std::string(what) + " must be true or false");
  return v.b;
}

}  // namespace ccq::json
