#include "util/log2_real.hpp"

#include <cstdio>

namespace ccq {

std::string Log2Real::to_string() const {
  if (is_zero()) return "0";
  char buf[64];
  if (log2_ == static_cast<double>(static_cast<long long>(log2_))) {
    std::snprintf(buf, sizeof buf, "2^%lld",
                  static_cast<long long>(log2_));
  } else {
    std::snprintf(buf, sizeof buf, "2^%.3f", log2_);
  }
  return buf;
}

}  // namespace ccq
