#pragma once

// Deterministic pseudo-random generation.
//
// The whole laboratory must be reproducible: every randomised workload
// generator and every hash-salted routing decision derives from an explicit
// 64-bit seed through SplitMix64. std::mt19937 is avoided because its state
// serialisation and cross-platform guarantees are weaker than the experiment
// logs require.

#include <cstdint>

namespace ccq {

/// SplitMix64 — tiny, fast, full-period 64-bit PRNG (Steele et al.).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias: accept only draws below the
    // largest multiple of bound, so every residue is equally likely. A bare
    // `next() % bound` would favour small residues whenever bound does not
    // divide 2^64 (tests/util/misc_test.cpp chi-squares this).
    const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
    std::uint64_t v;
    do {
      v = next();
    } while (v >= limit);
    return v % bound;
  }

  /// Alias for next_below — the bounded-draw entry point fault schedules
  /// (clique/chaos.hpp) are documented against.
  std::uint64_t uniform(std::uint64_t bound) { return next_below(bound); }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

/// Stateless mixing hash — used for deterministic "salt" decisions such as
/// the two-phase router's stripe offsets.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Stateless bounded draw: maps counter/key `x` uniformly onto [0, bound)
/// via a multiply-shift on the mixed value (Lemire's method — the high 64
/// bits of mix64(x)·bound). Use this instead of `mix64(x) % bound`, which
/// biases small residues whenever bound does not divide 2^64 — exactly the
/// kind of skew that would quietly unbalance salted stripe offsets and
/// seed-derived colourings. bound must be nonzero.
inline std::uint64_t mix64_below(std::uint64_t x, std::uint64_t bound) {
  __extension__ typedef unsigned __int128 uint128_t;
  return static_cast<std::uint64_t>(
      (static_cast<uint128_t>(mix64(x)) * bound) >> 64);
}

}  // namespace ccq
