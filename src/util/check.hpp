#pragma once

// Runtime checking macros used across the ccq library.
//
// CCQ_CHECK is always on (model-fidelity invariants, e.g. bandwidth
// violations, must never be compiled out: the simulator's cost accounting is
// the experimental instrument). CCQ_DCHECK compiles out in NDEBUG builds and
// guards internal consistency only.

#include <sstream>
#include <stdexcept>
#include <string>

namespace ccq {

/// Error thrown when a congested-clique model rule is violated (bandwidth
/// overflow, divergent collective sequence, malformed certificate, ...).
class ModelViolation : public std::logic_error {
 public:
  explicit ModelViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CCQ_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ModelViolation(os.str());
}
}  // namespace detail

}  // namespace ccq

#define CCQ_CHECK(expr)                                            \
  do {                                                             \
    if (!(expr))                                                   \
      ::ccq::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CCQ_CHECK_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) {                                                \
      std::ostringstream os_;                                     \
      os_ << msg;                                                 \
      ::ccq::detail::check_failed(#expr, __FILE__, __LINE__,      \
                                  os_.str());                     \
    }                                                             \
  } while (0)

#ifdef NDEBUG
#define CCQ_DCHECK(expr) ((void)0)
#else
#define CCQ_DCHECK(expr) CCQ_CHECK(expr)
#endif
