#pragma once

// Fixed-width text table printer — the bench harness renders every
// reproduced figure/table as an aligned plain-text table so that
// EXPERIMENTS.md can quote bench output verbatim.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

namespace ccq {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  Table& add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
    return *this;
  }

  void print(std::ostream& os = std::cout) const;

  static std::string fmt(double v, int precision = 3) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
  }
  static std::string fmt(std::uint64_t v) { return std::to_string(v); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccq
