#pragma once

// Fork-join thread pool with a parallel_for primitive.
//
// The clique engine's pooled scheduler (src/clique/scheduler.cpp,
// ExecutionBackend::kPooled) hosts its superstep workers here: one
// process-wide pool sized by hardware_concurrency, onto which each
// Engine::run dispatches a small worker team that multiplexes all n node
// fibers. On a single-core host the pool degrades gracefully to sequential
// execution. Results are independent of the worker count because the
// scheduler confines shared mutation to its serial leader phase — the
// engine's collectives are the only synchronisation points.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ccq {

class ThreadPool {
 public:
  /// threads == 0 picks CCQ_POOL_THREADS from the environment if set, else
  /// hardware_concurrency (min 1). The override exists so single-core hosts
  /// can still exercise the multi-worker scheduler paths (oversubscription
  /// forces preemption at arbitrary points, which is exactly what the
  /// race-sensitive code wants stressed).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(i) for i in [0, count) across the pool; blocks until all done.
  /// Exceptions from tasks are captured and the first one is rethrown.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace ccq
