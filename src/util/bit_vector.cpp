#include "util/bit_vector.hpp"

#include <bit>
#include <utility>

namespace ccq {

BitVector BitVector::from_string(const std::string& s) {
  BitVector b(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    CCQ_CHECK_MSG(s[i] == '0' || s[i] == '1', "bad bit char: " << s[i]);
    if (s[i] == '1') b.set(i);
  }
  return b;
}

BitVector BitVector::from_words(std::vector<std::uint64_t> words,
                                std::size_t nbits) {
  CCQ_CHECK(words.size() == (nbits + 63) / 64);
  BitVector b;
  b.nbits_ = nbits;
  b.words_ = std::move(words);
  b.trim();
  return b;
}

void BitVector::clear_all() {
  for (auto& w : words_) w = 0;
}

void BitVector::resize(std::size_t nbits) {
  nbits_ = nbits;
  words_.resize((nbits + 63) / 64, 0);
  trim();
}

void BitVector::push_back(bool v) {
  resize(nbits_ + 1);
  set(nbits_ - 1, v);
}

void BitVector::append_bits(std::uint64_t value, unsigned nbits) {
  CCQ_CHECK(nbits <= 64);
  if (nbits < 64) CCQ_CHECK_MSG(value < (std::uint64_t{1} << nbits),
                                "value does not fit in " << nbits << " bits");
  const std::size_t pos = nbits_;
  resize(nbits_ + nbits);
  // Fast path: write across at most two words.
  if (nbits == 0) return;
  const std::size_t w = pos >> 6;
  const unsigned off = pos & 63;
  words_[w] |= value << off;
  if (off != 0 && off + nbits > 64) {
    words_[w + 1] |= value >> (64 - off);
  }
  trim();
}

std::uint64_t BitVector::read_bits(std::size_t pos, unsigned nbits) const {
  CCQ_CHECK(nbits <= 64);
  CCQ_CHECK_MSG(pos + nbits <= nbits_, "read past end of BitVector");
  if (nbits == 0) return 0;
  const std::size_t w = pos >> 6;
  const unsigned off = pos & 63;
  std::uint64_t v = words_[w] >> off;
  if (off != 0 && off + nbits > 64) {
    v |= words_[w + 1] << (64 - off);
  }
  if (nbits < 64) v &= (std::uint64_t{1} << nbits) - 1;
  return v;
}

std::size_t BitVector::popcount() const {
  std::size_t c = 0;
  for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

std::size_t BitVector::find_first(std::size_t from) const {
  if (from >= nbits_) return nbits_;
  std::size_t w = from >> 6;
  std::uint64_t cur = words_[w] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (cur != 0) {
      const std::size_t i = (w << 6) +
                            static_cast<std::size_t>(std::countr_zero(cur));
      return i < nbits_ ? i : nbits_;
    }
    if (++w >= words_.size()) return nbits_;
    cur = words_[w];
  }
}

BitVector& BitVector::operator|=(const BitVector& o) {
  CCQ_CHECK(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

BitVector& BitVector::operator&=(const BitVector& o) {
  CCQ_CHECK(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVector& BitVector::operator^=(const BitVector& o) {
  CCQ_CHECK(nbits_ == o.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

bool BitVector::lex_less(const BitVector& o) const {
  const std::size_t m = nbits_ < o.nbits_ ? nbits_ : o.nbits_;
  for (std::size_t i = 0; i < m; ++i) {
    const bool a = get(i), b = o.get(i);
    if (a != b) return !a;  // 0 < 1 at the first differing position
  }
  return nbits_ < o.nbits_;
}

std::string BitVector::to_string() const {
  std::string s(nbits_, '0');
  for (std::size_t i = 0; i < nbits_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

void BitVector::trim() {
  const unsigned tail = nbits_ & 63;
  if (!words_.empty() && tail != 0) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

}  // namespace ccq
