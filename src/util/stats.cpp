#include "util/stats.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace ccq {

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  CCQ_CHECK(xs.size() == ys.size());
  CCQ_CHECK_MSG(xs.size() >= 2, "need at least two points to fit a line");
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit f;
  if (denom == 0.0) {
    f.slope = 0.0;
    f.intercept = sy / n;
  } else {
    f.slope = (n * sxy - sx * sy) / denom;
    f.intercept = (sy - f.slope * sx) / n;
  }
  // R^2.
  const double ymean = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = f.slope * xs[i] + f.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  f.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

LinearFit fit_loglog(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    lx[i] = std::log2(xs[i]);
    ly[i] = std::log2(ys[i] < 1.0 ? 1.0 : ys[i]);
  }
  return fit_line(lx, ly);
}

}  // namespace ccq
