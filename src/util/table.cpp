#include "util/table.hpp"

#include <algorithm>

namespace ccq {

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(widths[c] - cell.size(), ' ');
      os << (c + 1 < widths.size() ? " | " : " |");
    }
    os << '\n';
  };

  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
  os.flush();
}

}  // namespace ccq
