#pragma once

// Small integer math helpers shared across modules.

#include <cstdint>

#include "util/check.hpp"

namespace ccq {

constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

/// ⌈log2(x)⌉ for x ≥ 1; ⌈log2(1)⌉ = 0.
constexpr unsigned ceil_log2(std::uint64_t x) {
  unsigned r = 0;
  std::uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++r;
  }
  return r;
}

/// ⌊log2(x)⌋ for x ≥ 1.
constexpr unsigned floor_log2(std::uint64_t x) {
  unsigned r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// Exact ⌊x^(1/k)⌋ for k ≥ 1.
inline std::uint64_t floor_root(std::uint64_t x, unsigned k) {
  CCQ_CHECK(k >= 1);
  if (k == 1 || x <= 1) return x;
  // Binary search; overflow-safe via division-based power check.
  std::uint64_t lo = 1, hi = x;
  auto pow_leq = [&](std::uint64_t r) {
    // returns true iff r^k <= x
    std::uint64_t acc = 1;
    for (unsigned i = 0; i < k; ++i) {
      if (acc > x / r) return false;
      acc *= r;
    }
    return acc <= x;
  };
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo + 1) / 2;
    if (pow_leq(mid))
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

/// Overflow-checked integer power (small exponents).
inline std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t r = 1;
  for (unsigned i = 0; i < exp; ++i) {
    CCQ_CHECK_MSG(base == 0 || r <= ~std::uint64_t{0} / (base ? base : 1),
                  "ipow overflow");
    r *= base;
  }
  return r;
}

}  // namespace ccq
