#pragma once

// Strict environment-variable parsing.
//
// CCQ_POOL_THREADS / CCQ_KERNEL_THREADS size the worker pools; before this
// helper they were read with strtoul(env, nullptr, 10), so "8x" silently
// ran 8 workers and pure garbage silently fell back to hardware
// concurrency — a mistyped override was indistinguishable from no override,
// which is exactly the failure mode a perf-tuning knob must not have.
// parse_env_uint accepts only a whole decimal number in [lo, hi] and throws
// ModelViolation (naming the variable and its value) on anything else, so a
// malformed override fails the run loudly at pool construction.

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "util/check.hpp"

namespace ccq {

/// Strictly parse decimal `text` into [lo, hi]. Returns nullopt only for
/// empty text; any non-digit character, out-of-range value, or overflow is
/// a ModelViolation naming `what`.
inline std::uint64_t parse_uint_strict(const std::string& text,
                                       std::uint64_t lo, std::uint64_t hi,
                                       const std::string& what) {
  CCQ_CHECK_MSG(!text.empty(), what << " is empty (expected a number)");
  std::uint64_t value = 0;
  for (const char c : text) {
    CCQ_CHECK_MSG(std::isdigit(static_cast<unsigned char>(c)),
                  what << " = '" << text
                       << "' is not a whole decimal number");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    CCQ_CHECK_MSG(value <= (~std::uint64_t{0} - digit) / 10,
                  what << " = '" << text << "' overflows 64 bits");
    value = value * 10 + digit;
  }
  CCQ_CHECK_MSG(value >= lo && value <= hi,
                what << " = " << value << " out of range [" << lo << ", "
                     << hi << "]");
  return value;
}

/// Read environment variable `name` as a whole decimal number in [lo, hi].
/// Unset or empty returns nullopt (use the default); a set-but-malformed
/// value throws ModelViolation — a typo'd override must never silently
/// become a different configuration.
inline std::optional<std::uint64_t> parse_env_uint(const char* name,
                                                   std::uint64_t lo,
                                                   std::uint64_t hi) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return std::nullopt;
  return parse_uint_strict(env, lo, hi, std::string("environment variable ") +
                                            name);
}

}  // namespace ccq
