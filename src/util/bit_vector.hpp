#pragma once

// Compact dynamic bit vector.
//
// Used for adjacency rows, input encodings (§3 of the paper), certificates
// and transcripts. Provides word-level access so that the clique engine can
// slice a bit vector into B-bit message words without per-bit overhead.

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ccq {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t nbits, bool fill = false)
      : nbits_(nbits),
        words_((nbits + 63) / 64, fill ? ~std::uint64_t{0} : 0) {
    trim();
  }

  /// Parse from a string of '0'/'1' characters, index 0 first.
  static BitVector from_string(const std::string& s);

  /// Adopt a pre-built word buffer holding `nbits` bits (LSB-first within
  /// each word). The bulk encoders in pack_entries write whole words and
  /// hand them over here, skipping the per-append resize of append_bits.
  /// Bits past `nbits` in the last word are cleared.
  static BitVector from_words(std::vector<std::uint64_t> words,
                              std::size_t nbits);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const {
    CCQ_DCHECK(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v = true) {
    CCQ_DCHECK(i < nbits_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  bool operator[](std::size_t i) const { return get(i); }

  void clear_all();
  void resize(std::size_t nbits);
  void push_back(bool v);

  /// Append the low `nbits` bits of `value` (LSB first).
  void append_bits(std::uint64_t value, unsigned nbits);

  /// Read `nbits` (≤64) bits starting at bit offset `pos`, LSB first.
  std::uint64_t read_bits(std::size_t pos, unsigned nbits) const;

  std::size_t popcount() const;

  /// Index of the first set bit at or after `from`, or size() if none.
  std::size_t find_first(std::size_t from = 0) const;

  BitVector& operator|=(const BitVector& o);
  BitVector& operator&=(const BitVector& o);
  BitVector& operator^=(const BitVector& o);

  bool operator==(const BitVector& o) const {
    return nbits_ == o.nbits_ && words_ == o.words_;
  }

  /// Lexicographic comparison with index 0 the most significant position —
  /// the ordering used to pick the "first" hard function in Theorem 2.
  bool lex_less(const BitVector& o) const;

  std::string to_string() const;

  const std::vector<std::uint64_t>& words() const { return words_; }
  std::size_t word_count() const { return words_.size(); }
  std::uint64_t word(std::size_t w) const { return words_[w]; }

 private:
  void trim();

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ccq
