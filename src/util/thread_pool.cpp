#include "util/thread_pool.hpp"

#include <exception>

#include "util/env.hpp"

namespace ccq {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    // Strict parse: "8x" or garbage must fail here, not silently run some
    // other worker count (1024 is far beyond any useful oversubscription).
    if (const auto env = parse_env_uint("CCQ_POOL_THREADS", 1, 1024)) {
      threads = static_cast<std::size_t>(*env);
    }
  }
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done_chunks{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mu;
  };
  auto shared = std::make_shared<Shared>();
  const std::size_t chunks = workers_.size();

  auto chunk_fn = [shared, count, &fn, chunks] {
    std::size_t i;
    while ((i = shared->next.fetch_add(1)) < count) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(shared->error_mu);
        if (!shared->error) shared->error = std::current_exception();
      }
    }
    if (shared->done_chunks.fetch_add(1) + 1 == chunks) {
      std::lock_guard<std::mutex> lk(shared->done_mu);
      shared->done_cv.notify_all();
    }
  };

  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t c = 0; c < chunks; ++c) tasks_.push(chunk_fn);
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lk(shared->done_mu);
  shared->done_cv.wait(lk, [&] {
    return shared->done_chunks.load() == chunks;
  });
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace ccq
