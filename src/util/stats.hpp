#pragma once

// Least-squares fitting used by the exponent estimator (§7 of the paper:
// δ(L) = inf{δ : L solvable in O(n^δ) rounds}); we estimate δ empirically as
// the slope of log(rounds) against log(n).

#include <cstddef>
#include <span>

namespace ccq {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Ordinary least squares y ≈ slope·x + intercept. Requires ≥ 2 points.
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Fit log2(y) ≈ slope·log2(x) + c — the exponent fit. Zero y values are
/// clamped to 1 (a 0-round algorithm has exponent 0).
LinearFit fit_loglog(std::span<const double> xs, std::span<const double> ys);

}  // namespace ccq
