#pragma once

// Minimal strict JSON: objects, arrays, strings (no escapes beyond
// \" \\ \/ \n \t), numbers, true/false/null. Line numbers are tracked so
// every error names origin:line. Duplicate object keys, trailing content,
// and malformed literals are all ModelViolations — this is a reader for the
// repo's own formats (manifests, ccqd job frames), not a general library.
//
// Extracted from src/harness/manifest.cpp so the ccqd service protocol
// (src/service/protocol.cpp) parses job frames with exactly the manifest
// parser's strictness: one grammar, one set of error shapes.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace ccq::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;
  std::size_t line = 0;  ///< 1-based source line where the value starts

  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : obj)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parse a complete JSON document; `origin` names the source in errors
/// (ModelViolation "origin:line: message").
Value parse(const std::string& text, const std::string& origin);

/// Error helper shared by the validators below and their callers.
[[noreturn]] void fail_at(const std::string& origin, std::size_t line,
                          const std::string& msg);

// ---- typed accessors ------------------------------------------------------
// Each rejects the wrong kind (and range) with a ModelViolation naming
// `what` at the value's origin:line.

std::uint64_t as_uint(const Value& v, std::uint64_t lo, std::uint64_t hi,
                      const char* what, const std::string& origin);
double as_prob(const Value& v, const char* what, const std::string& origin);
double as_number(const Value& v, const char* what, const std::string& origin);
std::string as_string(const Value& v, const char* what,
                      const std::string& origin);
bool as_bool(const Value& v, const char* what, const std::string& origin);

}  // namespace ccq::json
