#pragma once

// Log-space non-negative reals.
//
// The quantities in Lemma 1 ("number of (n,b,L,t)-protocols is at most
// 2^{2bn·2^{L+bt(n-1)}}") overflow any fixed-width float for interesting
// parameters, but their *logarithms* fit comfortably in a double. Log2Real
// stores log2(x) and supports exactly the operations the counting benches
// need: multiply, integer powers, powers of two, and comparison.

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "util/check.hpp"

namespace ccq {

class Log2Real {
 public:
  /// Zero (log = -inf).
  Log2Real() : log2_(-std::numeric_limits<double>::infinity()) {}

  static Log2Real from_value(double v) {
    CCQ_CHECK_MSG(v >= 0.0, "Log2Real requires non-negative values");
    Log2Real r;
    r.log2_ = v == 0.0 ? -std::numeric_limits<double>::infinity()
                       : std::log2(v);
    return r;
  }
  static Log2Real from_log2(double l) {
    Log2Real r;
    r.log2_ = l;
    return r;
  }
  /// 2^e for possibly huge e.
  static Log2Real pow2(double e) { return from_log2(e); }

  bool is_zero() const { return std::isinf(log2_) && log2_ < 0; }
  double log2() const { return log2_; }

  friend Log2Real operator*(Log2Real a, Log2Real b) {
    if (a.is_zero() || b.is_zero()) return Log2Real{};
    return from_log2(a.log2_ + b.log2_);
  }
  friend Log2Real operator/(Log2Real a, Log2Real b) {
    CCQ_CHECK(!b.is_zero());
    if (a.is_zero()) return Log2Real{};
    return from_log2(a.log2_ - b.log2_);
  }

  /// x^e.
  Log2Real pow(double e) const {
    if (is_zero()) return e == 0.0 ? from_value(1.0) : Log2Real{};
    return from_log2(log2_ * e);
  }

  friend bool operator<(Log2Real a, Log2Real b) { return a.log2_ < b.log2_; }
  friend bool operator>(Log2Real a, Log2Real b) { return b < a; }
  friend bool operator<=(Log2Real a, Log2Real b) { return !(b < a); }
  friend bool operator>=(Log2Real a, Log2Real b) { return !(a < b); }

  /// Human-readable "2^k" rendering for count tables.
  std::string to_string() const;

 private:
  double log2_;
};

}  // namespace ccq
