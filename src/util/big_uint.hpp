#pragma once

// Arbitrary-precision unsigned integer.
//
// The counting arguments of Lemma 1 produce double-exponential quantities
// (2^{2bn·2^{L+bt(n-1)}} protocols vs 2^{2^{nL}} functions). For the toy
// regimes where the diagonalisation is run constructively we want *exact*
// counts; BigUInt supplies them. Larger regimes use Log2Real instead.

#include <cstdint>
#include <string>
#include <vector>

namespace ccq {

class BigUInt {
 public:
  BigUInt() : limbs_{0} {}
  BigUInt(std::uint64_t v) : limbs_{v} {}  // NOLINT: implicit by design

  static BigUInt from_decimal(const std::string& s);
  /// 2^e as an exact integer.
  static BigUInt pow2(std::uint64_t e);

  bool is_zero() const { return limbs_.size() == 1 && limbs_[0] == 0; }

  BigUInt& operator+=(const BigUInt& o);
  BigUInt& operator-=(const BigUInt& o);  // requires *this >= o
  BigUInt& operator*=(const BigUInt& o);
  BigUInt& operator<<=(std::uint64_t bits);

  friend BigUInt operator+(BigUInt a, const BigUInt& b) { return a += b; }
  friend BigUInt operator-(BigUInt a, const BigUInt& b) { return a -= b; }
  friend BigUInt operator*(BigUInt a, const BigUInt& b) { return a *= b; }
  friend BigUInt operator<<(BigUInt a, std::uint64_t b) { return a <<= b; }

  /// Integer power a^e.
  static BigUInt pow(const BigUInt& a, std::uint64_t e);

  int compare(const BigUInt& o) const;
  friend bool operator==(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) != 0;
  }
  friend bool operator<(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) >= 0;
  }

  /// Number of bits in the binary representation (0 has bit length 0).
  std::size_t bit_length() const;

  /// log2 as a double (exact for powers of two, otherwise a close
  /// approximation); returns -inf for zero.
  double log2() const;

  std::string to_decimal() const;

  /// Value as uint64 (checked).
  std::uint64_t to_u64() const;

 private:
  void normalize();
  // Little-endian 64-bit limbs; invariant: no trailing zero limb except for
  // the single-zero-limb representation of 0.
  std::vector<std::uint64_t> limbs_;
};

}  // namespace ccq
