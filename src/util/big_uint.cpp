#include "util/big_uint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace ccq {

using u64 = std::uint64_t;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
using u128 = unsigned __int128;  // GCC/Clang extension, fine for our targets
#pragma GCC diagnostic pop

void BigUInt::normalize() {
  while (limbs_.size() > 1 && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::from_decimal(const std::string& s) {
  CCQ_CHECK(!s.empty());
  BigUInt r;
  for (char c : s) {
    CCQ_CHECK_MSG(c >= '0' && c <= '9', "bad decimal digit");
    r *= BigUInt(10);
    r += BigUInt(static_cast<u64>(c - '0'));
  }
  return r;
}

BigUInt BigUInt::pow2(u64 e) {
  BigUInt r(1);
  r <<= e;
  return r;
}

BigUInt& BigUInt::operator+=(const BigUInt& o) {
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  limbs_.resize(n, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u128 s = static_cast<u128>(limbs_[i]) + carry +
             (i < o.limbs_.size() ? o.limbs_[i] : 0);
    limbs_[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  if (carry) limbs_.push_back(carry);
  return *this;
}

BigUInt& BigUInt::operator-=(const BigUInt& o) {
  CCQ_CHECK_MSG(*this >= o, "BigUInt underflow");
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 sub = (i < o.limbs_.size() ? o.limbs_[i] : 0);
    const u64 before = limbs_[i];
    limbs_[i] = before - sub - borrow;
    borrow = (static_cast<u128>(sub) + borrow > before) ? 1 : 0;
  }
  CCQ_CHECK(borrow == 0);
  normalize();
  return *this;
}

BigUInt& BigUInt::operator*=(const BigUInt& o) {
  if (is_zero() || o.is_zero()) {
    limbs_.assign(1, 0);
    return *this;
  }
  std::vector<u64> out(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    if (limbs_[i] == 0) continue;
    u64 carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      u128 cur = static_cast<u128>(limbs_[i]) * o.limbs_[j] + out[i + j] +
                 carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    std::size_t k = i + o.limbs_.size();
    while (carry) {
      u128 cur = static_cast<u128>(out[k]) + carry;
      out[k] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
      ++k;
    }
  }
  limbs_ = std::move(out);
  normalize();
  return *this;
}

BigUInt& BigUInt::operator<<=(u64 bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 64;
  const unsigned bit_shift = static_cast<unsigned>(bits % 64);
  std::vector<u64> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0)
      out[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  limbs_ = std::move(out);
  normalize();
  return *this;
}

BigUInt BigUInt::pow(const BigUInt& a, u64 e) {
  BigUInt base = a, result(1);
  while (e > 0) {
    if (e & 1) result *= base;
    e >>= 1;
    if (e) base *= base;
  }
  return result;
}

int BigUInt::compare(const BigUInt& o) const {
  if (limbs_.size() != o.limbs_.size())
    return limbs_.size() < o.limbs_.size() ? -1 : 1;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] < o.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::size_t BigUInt::bit_length() const {
  if (is_zero()) return 0;
  const u64 top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 64;
  return bits + (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

double BigUInt::log2() const {
  if (is_zero()) return -std::numeric_limits<double>::infinity();
  const std::size_t bl = bit_length();
  // Take the top ≤53 significant bits for the mantissa.
  double mant = 0.0;
  const std::size_t take = std::min<std::size_t>(bl, 53);
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t bit = bl - 1 - i;
    const bool b = (limbs_[bit / 64] >> (bit % 64)) & 1;
    mant = mant * 2.0 + (b ? 1.0 : 0.0);
  }
  return std::log2(mant) + static_cast<double>(bl - take);
}

std::string BigUInt::to_decimal() const {
  if (is_zero()) return "0";
  std::vector<u64> tmp = limbs_;
  std::string out;
  while (!(tmp.size() == 1 && tmp[0] == 0)) {
    u64 rem = 0;
    for (std::size_t i = tmp.size(); i-- > 0;) {
      u128 cur = (static_cast<u128>(rem) << 64) | tmp[i];
      tmp[i] = static_cast<u64>(cur / 10);
      rem = static_cast<u64>(cur % 10);
    }
    out.push_back(static_cast<char>('0' + rem));
    while (tmp.size() > 1 && tmp.back() == 0) tmp.pop_back();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::uint64_t BigUInt::to_u64() const {
  CCQ_CHECK_MSG(limbs_.size() == 1, "BigUInt does not fit in uint64");
  return limbs_[0];
}

}  // namespace ccq
