#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace ccq::gen {

namespace {

std::vector<NodeId> random_subset(NodeId n, unsigned k, SplitMix64& rng) {
  CCQ_CHECK(k <= n);
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (NodeId i = 0; i < k; ++i) {
    const auto j = i + static_cast<NodeId>(rng.next_below(n - i));
    std::swap(perm[i], perm[j]);
  }
  perm.resize(k);
  std::sort(perm.begin(), perm.end());
  return perm;
}

std::vector<NodeId> random_permutation(NodeId n, SplitMix64& rng) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  for (NodeId i = 0; i + 1 < n; ++i) {
    const auto j = i + static_cast<NodeId>(rng.next_below(n - i));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

}  // namespace

Graph gnp(NodeId n, double p, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Graph g = Graph::undirected(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.next_bool(p)) g.add_edge(u, v);
  return g;
}

Graph gnp_weighted(NodeId n, double p, std::uint32_t max_w,
                   std::uint64_t seed) {
  CCQ_CHECK(max_w >= 1);
  SplitMix64 rng(seed);
  Graph g = Graph::undirected(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.next_bool(p))
        g.add_edge(u, v, 1 + static_cast<std::uint32_t>(
                                 rng.next_below(max_w)));
  return g;
}

Graph gnp_directed(NodeId n, double p, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Graph g = Graph::directed(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = 0; v < n; ++v)
      if (u != v && rng.next_bool(p)) g.add_edge(u, v);
  return g;
}

Graph cycle(NodeId n) {
  CCQ_CHECK(n >= 3);
  Graph g = Graph::undirected(n);
  for (NodeId v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Graph path(NodeId n) {
  Graph g = Graph::undirected(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph complete(NodeId n) {
  Graph g = Graph::undirected(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph complete_bipartite(NodeId a, NodeId b) {
  Graph g = Graph::undirected(a + b);
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = a; v < a + b; ++v) g.add_edge(u, v);
  return g;
}

Graph star(NodeId n) {
  CCQ_CHECK(n >= 1);
  Graph g = Graph::undirected(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph empty(NodeId n) { return Graph::undirected(n); }

Planted planted_independent_set(NodeId n, unsigned k, double p,
                                std::uint64_t seed) {
  SplitMix64 rng(seed);
  auto witness = random_subset(n, k, rng);
  BitVector in_set(n);
  for (NodeId v : witness) in_set.set(v);
  Graph g = Graph::undirected(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) {
      if (in_set.get(u) && in_set.get(v)) continue;  // keep witness independent
      if (rng.next_bool(p)) g.add_edge(u, v);
    }
  return {std::move(g), std::move(witness)};
}

Planted planted_dominating_set(NodeId n, unsigned k, double p,
                               std::uint64_t seed) {
  SplitMix64 rng(seed);
  auto witness = random_subset(n, k, rng);
  Graph g = gnp(n, p, rng.next());
  // Attach every node to a random witness member so the witness dominates.
  BitVector in_set(n);
  for (NodeId v : witness) in_set.set(v);
  for (NodeId v = 0; v < n; ++v) {
    if (in_set.get(v)) continue;
    const NodeId d = witness[rng.next_below(witness.size())];
    if (!g.has_edge(v, d)) g.add_edge(v, d);
  }
  return {std::move(g), std::move(witness)};
}

Planted planted_hamiltonian_path(NodeId n, double extra_p,
                                 std::uint64_t seed) {
  SplitMix64 rng(seed);
  auto order = random_permutation(n, rng);
  Graph g = gnp(n, extra_p, rng.next());
  for (NodeId i = 0; i + 1 < n; ++i) {
    if (!g.has_edge(order[i], order[i + 1]))
      g.add_edge(order[i], order[i + 1]);
  }
  return {std::move(g), std::move(order)};
}

Planted planted_k_colourable(NodeId n, unsigned k, double p,
                             std::uint64_t seed) {
  CCQ_CHECK(k >= 1);
  SplitMix64 rng(seed);
  std::vector<NodeId> colour(n);
  for (NodeId v = 0; v < n; ++v)
    colour[v] = static_cast<NodeId>(rng.next_below(k));
  Graph g = Graph::undirected(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (colour[u] != colour[v] && rng.next_bool(p)) g.add_edge(u, v);
  return {std::move(g), std::move(colour)};
}

Planted planted_clique(NodeId n, unsigned k, double p, std::uint64_t seed) {
  SplitMix64 rng(seed);
  auto witness = random_subset(n, k, rng);
  Graph g = gnp(n, p, rng.next());
  for (std::size_t a = 0; a < witness.size(); ++a)
    for (std::size_t b = a + 1; b < witness.size(); ++b)
      if (!g.has_edge(witness[a], witness[b]))
        g.add_edge(witness[a], witness[b]);
  return {std::move(g), std::move(witness)};
}

Planted planted_k_cycle(NodeId n, unsigned k, double p, std::uint64_t seed) {
  CCQ_CHECK(k >= 3 && k <= n);
  SplitMix64 rng(seed);
  auto witness = random_subset(n, k, rng);
  Graph g = gnp(n, p, rng.next());
  for (std::size_t i = 0; i < witness.size(); ++i) {
    const NodeId u = witness[i];
    const NodeId v = witness[(i + 1) % witness.size()];
    if (!g.has_edge(u, v)) g.add_edge(u, v);
  }
  return {std::move(g), std::move(witness)};
}

Graph powerlaw_chung_lu(NodeId n, double exponent, double avg_degree,
                        std::uint64_t seed) {
  CCQ_CHECK_MSG(exponent > 1.0, "Chung–Lu requires a tail exponent > 1");
  CCQ_CHECK_MSG(avg_degree > 0 && avg_degree < n,
                "Chung–Lu requires 0 < avg_degree < n");
  SplitMix64 rng(seed);
  // Target weights w_v ∝ (v+1)^(-1/(exponent-1)), rescaled so the mean is
  // avg_degree; then P[{u,v}] = min(1, w_u·w_v / Σw) — expected degree of v
  // approaches w_v wherever the min() does not clip.
  const double gamma = -1.0 / (exponent - 1.0);
  std::vector<double> w(n);
  double sum = 0;
  for (NodeId v = 0; v < n; ++v) {
    w[v] = std::pow(static_cast<double>(v) + 1.0, gamma);
    sum += w[v];
  }
  const double scale = avg_degree * n / sum;
  for (NodeId v = 0; v < n; ++v) w[v] *= scale;
  const double total = avg_degree * n;
  Graph g = Graph::undirected(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = std::min(1.0, w[u] * w[v] / total);
      if (rng.next_bool(p)) g.add_edge(u, v);
    }
  return g;
}

Planted planted_communities(NodeId n, unsigned k, double p_in, double p_out,
                            std::uint64_t seed) {
  CCQ_CHECK_MSG(k >= 1, "community count must be >= 1");
  CCQ_CHECK_MSG(p_in >= 0 && p_in <= 1 && p_out >= 0 && p_out <= 1,
                "community densities must be probabilities");
  SplitMix64 rng(seed);
  std::vector<NodeId> community(n);
  for (NodeId v = 0; v < n; ++v)
    community[v] = static_cast<NodeId>(rng.next_below(k));
  Graph g = Graph::undirected(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) {
      const double p = community[u] == community[v] ? p_in : p_out;
      if (rng.next_bool(p)) g.add_edge(u, v);
    }
  return {std::move(g), std::move(community)};
}

Planted planted_vertex_cover(NodeId n, unsigned k, std::size_t m,
                             std::uint64_t seed) {
  SplitMix64 rng(seed);
  auto witness = random_subset(n, k, rng);
  Graph g = Graph::undirected(n);
  std::size_t added = 0, attempts = 0;
  while (added < m && attempts < 50 * m + 100) {
    ++attempts;
    const NodeId u = witness[rng.next_below(witness.size())];
    const NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
    ++added;
  }
  return {std::move(g), std::move(witness)};
}

}  // namespace ccq::gen
