#pragma once

// Graph corpus: loaders and the named graph-family registry.
//
// Every bench used to run synthetic generators at a handful of sizes; the
// corpus layer makes graph *inputs* first-class so the scenario matrix
// (DESIGN.md §14, bench_matrix) can sweep {algorithm} × {graph family} ×
// {n} × {plane/backend} × {chaos} from a declarative manifest. Two halves:
//
//  * Loaders — a text edge-list format and a binary CSR format, both with
//    strict validation. A malformed file is a ModelViolation naming the
//    offending line/offset, never a silently-wrong graph: corpus inputs
//    feed cost measurements, so "garbage in" must be loud. save_* writers
//    round-trip bit-for-bit (asserted in tests/graph/corpus_test.cpp).
//
//  * Family registry — make_family() maps a FamilySpec (family name +
//    parameters, as written in a manifest cell) onto the generators in
//    graph/generators.hpp (including the Chung–Lu power-law and
//    planted-community families) or onto a loader. Every family is a pure
//    function of (spec, n): same spec, same graph, on any machine.
//
// Format grammars are specified normatively in DESIGN.md §14.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace ccq::corpus {

// ---- edge-list text format ----------------------------------------------
//
//   # comment / blank lines anywhere
//   ccq-edges <n> [directed] [weighted]     header, first payload line
//   <u> <v> [<w>]                           one edge per line, 0-based ids
//
// Rejected (ModelViolation): missing/malformed header, u or v >= n,
// self loops, duplicate edges (either orientation when undirected),
// weight present iff the header says weighted, zero or > 2^32-1 weights,
// trailing tokens, n > kMaxNodes.

/// Largest n any loader accepts (far above the engine's own cap; guards
/// integer overflow in size computations, not model fidelity).
constexpr std::uint64_t kMaxNodes = 1u << 20;

Graph load_edge_list(const std::string& path);
/// Parse from memory; `origin` names the source in error messages.
Graph parse_edge_list(std::string_view text, const std::string& origin);
/// Write `g` in the grammar above (edges in increasing (u,v) order).
void save_edge_list(const Graph& g, const std::string& path);

// ---- CSR binary format ---------------------------------------------------
//
//   offset  size        field
//   0       8           magic "CCQCSR01"
//   8       4           u32 n
//   12      4           u32 flags (bit 0 directed, bit 1 weighted)
//   16      8           u64 nnz (stored arcs; an undirected edge appears
//                       in both endpoint rows)
//   24      8·(n+1)     u64 row_ptr, row_ptr[0] = 0, nondecreasing,
//                       row_ptr[n] = nnz
//   ...     4·nnz       u32 col (strictly increasing within a row)
//   [...    4·nnz       u32 w, iff weighted; all weights >= 1]
//
// Little-endian throughout. Rejected (ModelViolation): short/oversized
// file, bad magic, non-monotone row_ptr, col >= n, self loops, unsorted or
// duplicate columns, zero weights, and asymmetric adjacency or weights
// when the directed flag is clear.

Graph load_csr(const std::string& path);
void save_csr(const Graph& g, const std::string& path);

// ---- family registry -----------------------------------------------------

/// One graph family plus its parameters, as named by a manifest cell
/// (harness/manifest.hpp). Fields irrelevant to a family are ignored;
/// make_family validates the relevant ones.
struct FamilySpec {
  std::string name;        ///< registry key, see family_names()
  std::uint64_t seed = 1;  ///< random families; pure function of (spec, n)
  double p = 0.1;          ///< gnp / gnp_weighted edge probability
  std::uint32_t max_w = 8;       ///< gnp_weighted weight range [1, max_w]
  double exponent = 2.5;         ///< powerlaw tail exponent
  double avg_degree = 8.0;       ///< powerlaw mean degree
  unsigned k = 4;                ///< community count
  double p_in = 0.5;             ///< community in-block density
  double p_out = 0.05;           ///< community cross-block density
  std::string path;              ///< edgelist / csr file to load
};

/// Registered family names: empty, complete, cycle, path, star, gnp,
/// gnp_weighted, powerlaw, community, edgelist, csr.
const std::vector<std::string>& family_names();

/// Instantiate `spec` at size n. File-backed families (edgelist, csr) load
/// spec.path and require the file's n to equal the requested n — the
/// manifest's n axis is part of every cell's identity, so a silent mismatch
/// would mislabel measurements. Unknown names and invalid parameters are
/// ModelViolations.
Graph make_family(const FamilySpec& spec, NodeId n);

}  // namespace ccq::corpus
