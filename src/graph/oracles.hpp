#pragma once

// Exact reference oracles (centralised brute force).
//
// Two roles: (1) ground truth for property-based tests of every clique
// algorithm, and (2) legal *local computation* inside clique algorithms —
// the model allows unlimited local work (§3), and the paper's own algorithms
// lean on it (e.g. Theorem 9 step 3 checks dominating sets locally, the
// Theorem 2 algorithm enumerates all protocols locally).
//
// All solvers are exponential-time and intended for the small n of the
// simulated experiments.

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace ccq::oracle {

inline constexpr std::uint64_t kInfDist = ~std::uint64_t{0} / 4;

/// Witness for a size-k independent set, if one exists.
std::optional<std::vector<NodeId>> independent_set(const Graph& g,
                                                   unsigned k);
/// Maximum independent set (exact).
std::vector<NodeId> max_independent_set(const Graph& g);

/// Witness for a size-≤k dominating set, if one exists.
std::optional<std::vector<NodeId>> dominating_set(const Graph& g,
                                                  unsigned k);
/// Minimum dominating set (exact).
std::vector<NodeId> min_dominating_set(const Graph& g);

/// Witness for a size-≤k vertex cover, if one exists (Buss-style branching,
/// O(2^k·m) — genuinely FPT, mirrors §7.3).
std::optional<std::vector<NodeId>> vertex_cover(const Graph& g, unsigned k);
/// Minimum vertex cover (exact).
std::vector<NodeId> min_vertex_cover(const Graph& g);

/// Proper k-colouring (colours 0..k-1), if one exists.
std::optional<std::vector<NodeId>> k_colouring(const Graph& g, unsigned k);

/// Hamiltonian path (order of all n nodes), if one exists. Held–Karp DP;
/// requires n ≤ 24.
std::optional<std::vector<NodeId>> hamiltonian_path(const Graph& g);

/// Witness for a k-clique.
std::optional<std::vector<NodeId>> k_clique(const Graph& g, unsigned k);

/// Witness for a simple cycle on exactly k nodes (in cycle order).
std::optional<std::vector<NodeId>> k_cycle(const Graph& g, unsigned k);

/// Witness for a simple path on exactly k nodes (in path order).
std::optional<std::vector<NodeId>> k_path(const Graph& g, unsigned k);

/// Does `host` contain `pattern` as a (not necessarily induced) subgraph?
/// Returns the image of pattern nodes if so. Intended for |pattern| ≤ 6.
std::optional<std::vector<NodeId>> subgraph(const Graph& host,
                                            const Graph& pattern);

/// Checks (no search): is `set` a dominating set / vertex cover /
/// independent set / proper colouring?
bool is_dominating_set(const Graph& g, const std::vector<NodeId>& set);
bool is_vertex_cover(const Graph& g, const std::vector<NodeId>& set);
bool is_independent_set(const Graph& g, const std::vector<NodeId>& set);
bool is_proper_colouring(const Graph& g, const std::vector<NodeId>& colour,
                         unsigned k);
bool is_hamiltonian_path(const Graph& g, const std::vector<NodeId>& order);

/// Single-source distances. BFS for unweighted, Dijkstra for weighted;
/// respects edge direction for directed graphs. kInfDist = unreachable.
std::vector<std::uint64_t> sssp(const Graph& g, NodeId s);

/// All-pairs distances (Floyd–Warshall). result[u*n+v].
std::vector<std::uint64_t> apsp(const Graph& g);

bool is_connected(const Graph& g);

/// Minimum spanning forest (Kruskal; ties broken by (w, u, v) order so the
/// result is canonical). Returns the forest's edges sorted by (u, v).
std::vector<Edge> min_spanning_forest(const Graph& g);

/// Total weight of a minimum spanning forest.
std::uint64_t msf_weight(const Graph& g);

}  // namespace ccq::oracle
