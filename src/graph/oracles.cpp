#include "graph/oracles.hpp"

#include <algorithm>
#include <bit>
#include <queue>

namespace ccq::oracle {

namespace {

// Recursive search for an independent set of size k among candidates with
// id ≥ `from`.
bool find_is(const Graph& g, unsigned k, NodeId from,
             std::vector<NodeId>& acc) {
  if (acc.size() == k) return true;
  for (NodeId v = from; v < g.n(); ++v) {
    if (g.n() - v < k - acc.size()) return false;  // not enough left
    bool ok = true;
    for (NodeId u : acc) {
      if (g.has_edge(u, v)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    acc.push_back(v);
    if (find_is(g, k, v + 1, acc)) return true;
    acc.pop_back();
  }
  return false;
}

bool find_clique(const Graph& g, unsigned k, NodeId from,
                 std::vector<NodeId>& acc) {
  if (acc.size() == k) return true;
  for (NodeId v = from; v < g.n(); ++v) {
    if (g.n() - v < k - acc.size()) return false;
    bool ok = true;
    for (NodeId u : acc) {
      if (!g.has_edge(u, v)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    acc.push_back(v);
    if (find_clique(g, k, v + 1, acc)) return true;
    acc.pop_back();
  }
  return false;
}

// Branch on the first vertex not yet dominated; one of its closed
// neighbours must be in any dominating set.
bool find_ds(const Graph& g, unsigned budget, BitVector& dominated,
             std::vector<NodeId>& acc) {
  const std::size_t first = [&] {
    for (std::size_t v = 0; v < g.n(); ++v)
      if (!dominated.get(v)) return v;
    return static_cast<std::size_t>(g.n());
  }();
  if (first == g.n()) return true;  // everything dominated
  if (budget == 0) return false;

  std::vector<NodeId> candidates;
  candidates.push_back(static_cast<NodeId>(first));
  for (NodeId u : g.neighbours(static_cast<NodeId>(first)))
    candidates.push_back(u);

  for (NodeId c : candidates) {
    // Add c to the dominating set.
    std::vector<std::size_t> newly;
    if (!dominated.get(c)) {
      dominated.set(c);
      newly.push_back(c);
    }
    for (NodeId u : g.neighbours(c)) {
      if (!dominated.get(u)) {
        dominated.set(u);
        newly.push_back(u);
      }
    }
    acc.push_back(c);
    if (find_ds(g, budget - 1, dominated, acc)) return true;
    acc.pop_back();
    for (std::size_t u : newly) dominated.set(u, false);
  }
  return false;
}

// Bounded-depth vertex cover branching: pick an uncovered edge, branch on
// covering it with either endpoint.
bool find_vc(Graph g, unsigned budget, std::vector<NodeId>& acc) {
  // Find an uncovered edge.
  for (NodeId u = 0; u < g.n(); ++u) {
    const BitVector& r = g.row(u);
    const std::size_t i = r.find_first();
    if (i >= r.size()) continue;
    const NodeId v = static_cast<NodeId>(i);
    if (budget == 0) return false;
    // Branch u.
    {
      Graph gu = g;
      for (NodeId w : gu.neighbours(u)) gu.remove_edge(u, w);
      acc.push_back(u);
      if (find_vc(std::move(gu), budget - 1, acc)) return true;
      acc.pop_back();
    }
    // Branch v.
    {
      Graph gv = std::move(g);
      for (NodeId w : gv.neighbours(v)) gv.remove_edge(v, w);
      acc.push_back(v);
      if (find_vc(std::move(gv), budget - 1, acc)) return true;
      acc.pop_back();
    }
    return false;
  }
  return true;  // no edges left
}

bool colour_rec(const Graph& g, unsigned k, NodeId v,
                std::vector<NodeId>& colour) {
  if (v == g.n()) return true;
  // Symmetry breaking: first vertex may only take colour 0, and in general a
  // vertex may use at most one colour beyond those already in use.
  NodeId max_used = 0;
  for (NodeId u = 0; u < v; ++u) max_used = std::max(max_used, colour[u] + 1);
  const unsigned limit = std::min<unsigned>(k, max_used + 1);
  for (NodeId c = 0; c < limit; ++c) {
    bool ok = true;
    for (NodeId u = 0; u < v; ++u) {
      if (g.has_edge(u, v) && colour[u] == c) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    colour[v] = c;
    if (colour_rec(g, k, v + 1, colour)) return true;
  }
  return false;
}

// Extend a simple path; `remaining` = vertices still needed (including none).
bool extend_path(const Graph& g, unsigned target_len, BitVector& used,
                 std::vector<NodeId>& acc, bool close_cycle) {
  if (acc.size() == target_len) {
    return !close_cycle || g.has_edge(acc.back(), acc.front());
  }
  const NodeId last = acc.back();
  for (NodeId v : g.neighbours(last)) {
    if (used.get(v)) continue;
    used.set(v);
    acc.push_back(v);
    if (extend_path(g, target_len, used, acc, close_cycle)) return true;
    acc.pop_back();
    used.set(v, false);
  }
  return false;
}

bool subgraph_rec(const Graph& host, const Graph& pattern,
                  std::vector<NodeId>& map, BitVector& used,
                  std::size_t next) {
  if (next == pattern.n()) return true;
  for (NodeId cand = 0; cand < host.n(); ++cand) {
    if (used.get(cand)) continue;
    bool ok = true;
    for (std::size_t p = 0; p < next; ++p) {
      if (pattern.has_edge(static_cast<NodeId>(p),
                           static_cast<NodeId>(next)) &&
          !host.has_edge(map[p], cand)) {
        ok = false;
        break;
      }
      if (pattern.is_directed() &&
          pattern.has_edge(static_cast<NodeId>(next),
                           static_cast<NodeId>(p)) &&
          !host.has_edge(cand, map[p])) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    used.set(cand);
    map[next] = cand;
    if (subgraph_rec(host, pattern, map, used, next + 1)) return true;
    used.set(cand, false);
  }
  return false;
}

}  // namespace

std::optional<std::vector<NodeId>> independent_set(const Graph& g,
                                                   unsigned k) {
  if (k == 0) return std::vector<NodeId>{};
  if (k > g.n()) return std::nullopt;
  std::vector<NodeId> acc;
  if (find_is(g, k, 0, acc)) return acc;
  return std::nullopt;
}

std::vector<NodeId> max_independent_set(const Graph& g) {
  // Ascend: successful searches are cheap (greedy-ish first hits); only
  // the final failing size pays the full backtracking cost.
  std::vector<NodeId> best;
  for (unsigned k = 1; k <= g.n(); ++k) {
    auto w = independent_set(g, k);
    if (!w) break;
    best = std::move(*w);
  }
  return best;
}

std::optional<std::vector<NodeId>> dominating_set(const Graph& g,
                                                  unsigned k) {
  BitVector dominated(g.n());
  std::vector<NodeId> acc;
  if (find_ds(g, k, dominated, acc)) return acc;
  return std::nullopt;
}

std::vector<NodeId> min_dominating_set(const Graph& g) {
  for (unsigned k = 0; k <= g.n(); ++k) {
    if (auto w = dominating_set(g, k)) return *w;
  }
  return {};  // unreachable: V always dominates
}

std::optional<std::vector<NodeId>> vertex_cover(const Graph& g, unsigned k) {
  std::vector<NodeId> acc;
  if (find_vc(g, k, acc)) return acc;
  return std::nullopt;
}

std::vector<NodeId> min_vertex_cover(const Graph& g) {
  for (unsigned k = 0; k <= g.n(); ++k) {
    if (auto w = vertex_cover(g, k)) return *w;
  }
  return {};
}

std::optional<std::vector<NodeId>> k_colouring(const Graph& g, unsigned k) {
  std::vector<NodeId> colour(g.n(), 0);
  if (g.n() == 0) return colour;
  if (k == 0) return std::nullopt;
  if (colour_rec(g, k, 0, colour)) return colour;
  return std::nullopt;
}

std::optional<std::vector<NodeId>> hamiltonian_path(const Graph& g) {
  const NodeId n = g.n();
  if (n == 0) return std::vector<NodeId>{};
  CCQ_CHECK_MSG(n <= 22, "hamiltonian_path oracle limited to n <= 22");
  if (n == 1) return std::vector<NodeId>{0};
  // Held–Karp: reach[mask] bit v set iff a path visiting exactly `mask`
  // can end at v.
  const std::size_t full = std::size_t{1} << n;
  std::vector<std::uint32_t> reach(full, 0);
  for (NodeId v = 0; v < n; ++v)
    reach[std::size_t{1} << v] = std::uint32_t{1} << v;
  for (std::size_t mask = 1; mask < full; ++mask) {
    std::uint32_t ends = reach[mask];
    while (ends != 0) {
      const NodeId v = static_cast<NodeId>(std::countr_zero(ends));
      ends &= ends - 1;
      for (NodeId u : g.neighbours(v)) {
        const std::size_t bit = std::size_t{1} << u;
        if (mask & bit) continue;
        reach[mask | bit] |= std::uint32_t{1} << u;
      }
    }
  }
  const std::size_t all = full - 1;
  NodeId end = n;
  for (NodeId v = 0; v < n; ++v)
    if (reach[all] & (std::uint32_t{1} << v)) {
      end = v;
      break;
    }
  if (end == n) return std::nullopt;
  // Reconstruct backwards.
  std::vector<NodeId> order;
  std::size_t mask = all;
  NodeId cur = end;
  order.push_back(cur);
  while (order.size() < n) {
    const std::size_t prev_mask = mask & ~(std::size_t{1} << cur);
    for (NodeId u : g.neighbours(cur)) {
      const std::size_t bit = std::size_t{1} << u;
      if ((prev_mask & bit) && (reach[prev_mask] & (std::uint32_t{1} << u))) {
        mask = prev_mask;
        cur = u;
        order.push_back(cur);
        break;
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::optional<std::vector<NodeId>> k_clique(const Graph& g, unsigned k) {
  if (k == 0) return std::vector<NodeId>{};
  if (k > g.n()) return std::nullopt;
  std::vector<NodeId> acc;
  if (find_clique(g, k, 0, acc)) return acc;
  return std::nullopt;
}

std::optional<std::vector<NodeId>> k_cycle(const Graph& g, unsigned k) {
  if (k < 3 || k > g.n()) return std::nullopt;
  for (NodeId s = 0; s < g.n(); ++s) {
    BitVector used(g.n());
    used.set(s);
    std::vector<NodeId> acc{s};
    if (extend_path(g, k, used, acc, /*close_cycle=*/true)) return acc;
  }
  return std::nullopt;
}

std::optional<std::vector<NodeId>> k_path(const Graph& g, unsigned k) {
  if (k == 0) return std::vector<NodeId>{};
  if (k > g.n()) return std::nullopt;
  for (NodeId s = 0; s < g.n(); ++s) {
    BitVector used(g.n());
    used.set(s);
    std::vector<NodeId> acc{s};
    if (k == 1 || extend_path(g, k, used, acc, /*close_cycle=*/false))
      return acc;
  }
  return std::nullopt;
}

std::optional<std::vector<NodeId>> subgraph(const Graph& host,
                                            const Graph& pattern) {
  if (pattern.n() > host.n()) return std::nullopt;
  std::vector<NodeId> map(pattern.n());
  BitVector used(host.n());
  if (subgraph_rec(host, pattern, map, used, 0)) return map;
  return std::nullopt;
}

bool is_dominating_set(const Graph& g, const std::vector<NodeId>& set) {
  BitVector dominated(g.n());
  for (NodeId v : set) {
    dominated.set(v);
    for (NodeId u : g.neighbours(v)) dominated.set(u);
  }
  return dominated.popcount() == g.n();
}

bool is_vertex_cover(const Graph& g, const std::vector<NodeId>& set) {
  BitVector in(g.n());
  for (NodeId v : set) in.set(v);
  for (const Edge& e : g.edges()) {
    if (!in.get(e.u) && !in.get(e.v)) return false;
  }
  return true;
}

bool is_independent_set(const Graph& g, const std::vector<NodeId>& set) {
  for (std::size_t a = 0; a < set.size(); ++a)
    for (std::size_t b = a + 1; b < set.size(); ++b)
      if (set[a] == set[b] || g.has_edge(set[a], set[b])) return false;
  return true;
}

bool is_proper_colouring(const Graph& g, const std::vector<NodeId>& colour,
                         unsigned k) {
  if (colour.size() != g.n()) return false;
  for (NodeId v = 0; v < g.n(); ++v)
    if (colour[v] >= k) return false;
  for (const Edge& e : g.edges())
    if (colour[e.u] == colour[e.v]) return false;
  return true;
}

bool is_hamiltonian_path(const Graph& g, const std::vector<NodeId>& order) {
  if (order.size() != g.n()) return false;
  BitVector seen(g.n());
  for (NodeId v : order) {
    if (v >= g.n() || seen.get(v)) return false;
    seen.set(v);
  }
  for (std::size_t i = 0; i + 1 < order.size(); ++i)
    if (!g.has_edge(order[i], order[i + 1])) return false;
  return true;
}

std::vector<std::uint64_t> sssp(const Graph& g, NodeId s) {
  std::vector<std::uint64_t> dist(g.n(), kInfDist);
  dist[s] = 0;
  if (!g.is_weighted()) {
    std::queue<NodeId> q;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (NodeId u : g.neighbours(v)) {
        if (dist[u] == kInfDist) {
          dist[u] = dist[v] + 1;
          q.push(u);
        }
      }
    }
    return dist;
  }
  using Item = std::pair<std::uint64_t, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, s});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d != dist[v]) continue;
    for (NodeId u : g.neighbours(v)) {
      const std::uint64_t nd = d + g.weight(v, u);
      if (nd < dist[u]) {
        dist[u] = nd;
        pq.push({nd, u});
      }
    }
  }
  return dist;
}

std::vector<std::uint64_t> apsp(const Graph& g) {
  const std::size_t n = g.n();
  std::vector<std::uint64_t> d(n * n, kInfDist);
  for (std::size_t v = 0; v < n; ++v) d[v * n + v] = 0;
  for (const Edge& e : g.edges()) {
    d[static_cast<std::size_t>(e.u) * n + e.v] =
        std::min<std::uint64_t>(d[static_cast<std::size_t>(e.u) * n + e.v],
                                e.w);
    if (!g.is_directed())
      d[static_cast<std::size_t>(e.v) * n + e.u] =
          std::min<std::uint64_t>(d[static_cast<std::size_t>(e.v) * n + e.u],
                                  e.w);
  }
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t dik = d[i * n + k];
      if (dik == kInfDist) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint64_t via = dik + d[k * n + j];
        if (via < d[i * n + j]) d[i * n + j] = via;
      }
    }
  return d;
}

namespace {

struct UnionFind {
  std::vector<NodeId> parent;
  explicit UnionFind(NodeId n) : parent(n) {
    for (NodeId v = 0; v < n; ++v) parent[v] = v;
  }
  NodeId find(NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  }
  bool unite(NodeId a, NodeId b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent[std::max(a, b)] = std::min(a, b);
    return true;
  }
};

}  // namespace

std::vector<Edge> min_spanning_forest(const Graph& g) {
  CCQ_CHECK_MSG(!g.is_directed(), "MSF is defined for undirected graphs");
  std::vector<Edge> edges = g.edges();
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.w != b.w) return a.w < b.w;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  UnionFind uf(g.n());
  std::vector<Edge> forest;
  for (const Edge& e : edges) {
    if (uf.unite(e.u, e.v)) forest.push_back(e);
  }
  std::sort(forest.begin(), forest.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return forest;
}

std::uint64_t msf_weight(const Graph& g) {
  std::uint64_t total = 0;
  for (const Edge& e : min_spanning_forest(g)) total += e.w;
  return total;
}

bool is_connected(const Graph& g) {
  if (g.n() == 0) return true;
  auto dist = sssp(g, 0);
  for (auto d : dist)
    if (d == kInfDist) return false;
  return true;
}

}  // namespace ccq::oracle
