#pragma once

// Graph representation for the congested clique laboratory.
//
// Nodes are {0, ..., n-1} (the paper uses {1, ..., n}; we index from zero and
// translate in printed output). Adjacency is stored as one BitVector row per
// node so that a node's initial knowledge — exactly its incident edges, §3 of
// the paper — is literally `row(v)`. Optional O(log n)-bit edge weights and a
// directed mode cover the weighted/directed problem variants of Figure 1.

#include <cstdint>
#include <vector>

#include "util/bit_vector.hpp"
#include "util/check.hpp"

namespace ccq {

using NodeId = std::uint32_t;

struct Edge {
  NodeId u, v;
  std::uint32_t w = 1;
};

class Graph {
 public:
  Graph() = default;

  static Graph undirected(NodeId n) { return Graph(n, /*directed=*/false); }
  static Graph directed(NodeId n) { return Graph(n, /*directed=*/true); }

  NodeId n() const { return n_; }
  bool is_directed() const { return directed_; }
  bool is_weighted() const { return !weights_.empty(); }

  /// Number of edges (each undirected edge counted once).
  std::size_t m() const;

  void add_edge(NodeId u, NodeId v);
  void add_edge(NodeId u, NodeId v, std::uint32_t w);
  void remove_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const {
    CCQ_DCHECK(u < n_ && v < n_);
    return rows_[u].get(v);
  }

  /// Weight of an existing edge; unweighted graphs report 1.
  std::uint32_t weight(NodeId u, NodeId v) const;

  /// Out-neighbour row of v (== incident edges for undirected graphs).
  const BitVector& row(NodeId v) const {
    CCQ_DCHECK(v < n_);
    return rows_[v];
  }

  /// Degree (out-degree when directed).
  std::size_t degree(NodeId v) const { return rows_[v].popcount(); }

  std::vector<NodeId> neighbours(NodeId v) const;
  std::vector<Edge> edges() const;

  /// Complement graph (undirected, no self loops); weights are dropped.
  Graph complement() const;

  /// Subgraph induced by `keep` (nodes renumbered in increasing order).
  Graph induced(const std::vector<NodeId>& keep) const;

  bool operator==(const Graph& o) const {
    return n_ == o.n_ && directed_ == o.directed_ && rows_ == o.rows_ &&
           weights_ == o.weights_;
  }

 private:
  Graph(NodeId n, bool directed)
      : n_(n), directed_(directed), rows_(n, BitVector(n)) {}

  void ensure_weights();

  NodeId n_ = 0;
  bool directed_ = false;
  std::vector<BitVector> rows_;
  // Dense n*n weight matrix, allocated on first weighted add_edge.
  std::vector<std::uint32_t> weights_;
};

}  // namespace ccq
