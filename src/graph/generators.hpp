#pragma once

// Workload generators.
//
// Every generator is a pure function of its explicit seed, so experiment
// tables are reproducible bit-for-bit. Planted-instance generators return the
// planted witness alongside the graph: tests use it to assert that detectors
// find *a* witness whenever one was planted (completeness), and complement
// samplers give soundness checks.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ccq::gen {

/// Erdős–Rényi G(n, p).
Graph gnp(NodeId n, double p, std::uint64_t seed);

/// G(n, p) with independent uniform weights in [1, max_w].
Graph gnp_weighted(NodeId n, double p, std::uint32_t max_w,
                   std::uint64_t seed);

/// Directed G(n, p) (each ordered pair independently).
Graph gnp_directed(NodeId n, double p, std::uint64_t seed);

Graph cycle(NodeId n);
Graph path(NodeId n);
Graph complete(NodeId n);
Graph complete_bipartite(NodeId a, NodeId b);
Graph star(NodeId n);
Graph empty(NodeId n);

struct Planted {
  Graph graph;
  std::vector<NodeId> witness;
};

/// Random graph guaranteed to contain an independent set of size k
/// (the witness); background edges drawn with density p.
Planted planted_independent_set(NodeId n, unsigned k, double p,
                                std::uint64_t seed);

/// Random graph guaranteed to contain a dominating set of size k.
Planted planted_dominating_set(NodeId n, unsigned k, double p,
                               std::uint64_t seed);

/// Random graph containing a Hamiltonian path (witness = node order).
Planted planted_hamiltonian_path(NodeId n, double extra_p,
                                 std::uint64_t seed);

/// Random k-colourable graph (uniform random colour classes — possibly
/// unbalanced or empty — with cross-class density p); witness[v] = colour
/// of v.
Planted planted_k_colourable(NodeId n, unsigned k, double p,
                             std::uint64_t seed);

/// Random graph guaranteed to contain a k-clique.
Planted planted_clique(NodeId n, unsigned k, double p, std::uint64_t seed);

/// Random graph guaranteed to contain a simple cycle of length exactly k.
Planted planted_k_cycle(NodeId n, unsigned k, double p, std::uint64_t seed);

/// Random graph with a vertex cover of size ≤ k: edges only touch a random
/// k-subset (the witness).
Planted planted_vertex_cover(NodeId n, unsigned k, std::size_t m,
                             std::uint64_t seed);

/// Chung–Lu power-law graph: node v gets target weight
/// w_v ∝ (v+1)^(-1/(exponent-1)) scaled so the mean degree is avg_degree,
/// and edge {u,v} is drawn independently with probability
/// min(1, w_u·w_v / Σw). Degrees follow a power law with the given tail
/// exponent (the heavy end sits at low node ids — deterministic, so tests
/// can assert it). Requires exponent > 1 and 0 < avg_degree < n.
Graph powerlaw_chung_lu(NodeId n, double exponent, double avg_degree,
                        std::uint64_t seed);

/// Planted-partition (stochastic-block-style) community graph: each node is
/// assigned one of k communities uniformly at random; same-community pairs
/// are connected with probability p_in, cross-community pairs with p_out.
/// witness[v] = community of v.
Planted planted_communities(NodeId n, unsigned k, double p_in, double p_out,
                            std::uint64_t seed);

}  // namespace ccq::gen
