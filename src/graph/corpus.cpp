#include "graph/corpus.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace ccq::corpus {

namespace {

[[noreturn]] void fail(const std::string& origin, std::size_t line,
                       const std::string& msg) {
  std::ostringstream os;
  os << origin;
  if (line != 0) os << ":" << line;
  os << ": " << msg;
  throw ModelViolation(os.str());
}

// Strict unsigned parse: the whole token must be digits and the value must
// fit below `bound`. Loaders reject anything else — a token that silently
// truncated or wrapped would load a *different* graph, not fail.
std::uint64_t parse_uint(const std::string& tok, std::uint64_t bound,
                         const char* what, const std::string& origin,
                         std::size_t line) {
  if (tok.empty()) fail(origin, line, std::string("empty ") + what);
  std::uint64_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9')
      fail(origin, line,
           std::string(what) + " '" + tok + "' is not a non-negative integer");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (~std::uint64_t{0} - digit) / 10)
      fail(origin, line, std::string(what) + " '" + tok + "' overflows");
    v = v * 10 + digit;
  }
  if (v >= bound) {
    std::ostringstream os;
    os << what << " " << v << " out of range (must be < " << bound << ")";
    fail(origin, line, os.str());
  }
  return v;
}

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

std::string read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail(path, 0, "cannot open file");
  std::string data;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, got);
  std::fclose(f);
  return data;
}

void write_file(const std::string& path, const std::string& data) {
  FILE* f = std::fopen(path.c_str(), "wb");
  CCQ_CHECK_MSG(f != nullptr, "cannot open " << path << " for writing");
  const std::size_t wrote = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  CCQ_CHECK_MSG(wrote == data.size(), "short write to " << path);
}

// Little-endian fixed-width readers/writers for the CSR codec.
template <typename T>
void append_le(std::string* out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i)
    out->push_back(static_cast<char>((static_cast<std::uint64_t>(v) >>
                                      (8 * i)) & 0xff));
}

template <typename T>
T read_le(const std::string& data, std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data[offset + i]))
         << (8 * i);
  return static_cast<T>(v);
}

constexpr char kCsrMagic[8] = {'C', 'C', 'Q', 'C', 'S', 'R', '0', '1'};
constexpr std::uint32_t kFlagDirected = 1u << 0;
constexpr std::uint32_t kFlagWeighted = 1u << 1;

}  // namespace

// ---- edge-list text format ----------------------------------------------

Graph parse_edge_list(std::string_view text, const std::string& origin) {
  std::istringstream is{std::string(text)};
  std::string line;
  std::size_t lineno = 0;

  bool have_header = false, directed = false, weighted = false;
  NodeId n = 0;
  Graph g;
  while (std::getline(is, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto toks = split_ws(line);
    if (toks.empty() || toks[0][0] == '#') continue;

    if (!have_header) {
      if (toks[0] != "ccq-edges")
        fail(origin, lineno,
             "expected header 'ccq-edges <n> [directed] [weighted]', got '" +
                 toks[0] + "'");
      if (toks.size() < 2) fail(origin, lineno, "header is missing <n>");
      n = static_cast<NodeId>(
          parse_uint(toks[1], kMaxNodes + 1, "n", origin, lineno));
      for (std::size_t i = 2; i < toks.size(); ++i) {
        if (toks[i] == "directed") {
          directed = true;
        } else if (toks[i] == "weighted") {
          weighted = true;
        } else {
          fail(origin, lineno, "unknown header flag '" + toks[i] + "'");
        }
      }
      g = directed ? Graph::directed(n) : Graph::undirected(n);
      have_header = true;
      continue;
    }

    const std::size_t want = weighted ? 3 : 2;
    if (toks.size() != want) {
      std::ostringstream os;
      os << "expected " << want << " tokens ('u v" << (weighted ? " w" : "")
         << "'), got " << toks.size();
      fail(origin, lineno, os.str());
    }
    const NodeId u =
        static_cast<NodeId>(parse_uint(toks[0], n, "u", origin, lineno));
    const NodeId v =
        static_cast<NodeId>(parse_uint(toks[1], n, "v", origin, lineno));
    if (u == v) fail(origin, lineno, "self loop");
    if (g.has_edge(u, v))
      fail(origin, lineno,
           directed ? "duplicate arc" : "duplicate edge (either orientation)");
    if (weighted) {
      const std::uint64_t w = parse_uint(
          toks[2], std::uint64_t{1} << 32, "weight", origin, lineno);
      if (w == 0) fail(origin, lineno, "zero weight");
      g.add_edge(u, v, static_cast<std::uint32_t>(w));
    } else {
      g.add_edge(u, v);
    }
  }
  if (!have_header) fail(origin, lineno, "missing 'ccq-edges' header");
  return g;
}

Graph load_edge_list(const std::string& path) {
  return parse_edge_list(read_file(path), path);
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ostringstream os;
  os << "ccq-edges " << g.n();
  if (g.is_directed()) os << " directed";
  if (g.is_weighted()) os << " weighted";
  os << "\n";
  for (const Edge& e : g.edges()) {
    os << e.u << " " << e.v;
    if (g.is_weighted()) os << " " << e.w;
    os << "\n";
  }
  write_file(path, os.str());
}

// ---- CSR binary format ---------------------------------------------------

Graph load_csr(const std::string& path) {
  const std::string data = read_file(path);
  if (data.size() < 24) fail(path, 0, "file too short for a CSR header");
  if (std::memcmp(data.data(), kCsrMagic, 8) != 0)
    fail(path, 0, "bad magic (not a CCQCSR01 file)");
  const auto n64 = static_cast<std::uint64_t>(read_le<std::uint32_t>(data, 8));
  if (n64 > kMaxNodes) fail(path, 0, "n out of range");
  const NodeId n = static_cast<NodeId>(n64);
  const std::uint32_t flags = read_le<std::uint32_t>(data, 12);
  if ((flags & ~(kFlagDirected | kFlagWeighted)) != 0)
    fail(path, 0, "unknown flag bits set");
  const bool directed = (flags & kFlagDirected) != 0;
  const bool weighted = (flags & kFlagWeighted) != 0;
  const std::uint64_t nnz = read_le<std::uint64_t>(data, 16);
  if (nnz > n64 * n64) fail(path, 0, "nnz exceeds n^2");

  const std::uint64_t expect = 24 + 8 * (n64 + 1) + 4 * nnz * (weighted ? 2 : 1);
  if (data.size() != expect) {
    std::ostringstream os;
    os << "file size " << data.size() << " does not match header (expected "
       << expect << " bytes)";
    fail(path, 0, os.str());
  }

  const std::size_t row_ptr_off = 24;
  const std::size_t col_off = row_ptr_off + 8 * (n + 1);
  const std::size_t w_off = col_off + 4 * nnz;

  std::uint64_t prev = read_le<std::uint64_t>(data, row_ptr_off);
  if (prev != 0) fail(path, 0, "row_ptr[0] != 0");
  Graph g = directed ? Graph::directed(n) : Graph::undirected(n);
  for (NodeId r = 0; r < n; ++r) {
    const std::uint64_t end =
        read_le<std::uint64_t>(data, row_ptr_off + 8 * (r + 1));
    if (end < prev) {
      std::ostringstream os;
      os << "row_ptr not nondecreasing at row " << r;
      fail(path, 0, os.str());
    }
    if (end > nnz) fail(path, 0, "row_ptr exceeds nnz");
    std::uint64_t prev_col = 0;
    bool first = true;
    for (std::uint64_t i = prev; i < end; ++i) {
      const std::uint32_t c = read_le<std::uint32_t>(data, col_off + 4 * i);
      if (c >= n) {
        std::ostringstream os;
        os << "column " << c << " out of range in row " << r;
        fail(path, 0, os.str());
      }
      if (c == r) {
        std::ostringstream os;
        os << "self loop in row " << r;
        fail(path, 0, os.str());
      }
      if (!first && c <= prev_col) {
        std::ostringstream os;
        os << "columns not strictly increasing in row " << r;
        fail(path, 0, os.str());
      }
      first = false;
      prev_col = c;
      // Undirected files carry each edge in both rows; materialise it once
      // (the symmetry of the file itself is validated below).
      if (directed || r < c) {
        if (weighted) {
          const std::uint32_t w = read_le<std::uint32_t>(data, w_off + 4 * i);
          if (w == 0) {
            std::ostringstream os;
            os << "zero weight on arc (" << r << "," << c << ")";
            fail(path, 0, os.str());
          }
          g.add_edge(r, static_cast<NodeId>(c), w);
        } else {
          g.add_edge(r, static_cast<NodeId>(c));
        }
      }
    }
    prev = end;
  }
  if (prev != nnz) fail(path, 0, "row_ptr[n] != nnz");

  if (!directed) {
    // Re-scan and require every (r, c) arc's mirror — and, when weighted,
    // the same weight on both orientations. The lookup must run over the
    // file's own arc data: the Graph built above is symmetric by
    // construction, so asking it would mask a one-sided file.
    auto find_arc = [&](NodeId a, NodeId b) -> std::int64_t {
      std::uint64_t lo = read_le<std::uint64_t>(data, row_ptr_off + 8 * a);
      std::uint64_t hi =
          read_le<std::uint64_t>(data, row_ptr_off + 8 * (a + 1));
      while (lo < hi) {  // columns are strictly increasing (validated above)
        const std::uint64_t mid = lo + (hi - lo) / 2;
        const std::uint32_t c = read_le<std::uint32_t>(data, col_off + 4 * mid);
        if (c == b) return static_cast<std::int64_t>(mid);
        if (c < b) lo = mid + 1; else hi = mid;
      }
      return -1;
    };
    for (NodeId r = 0; r < n; ++r) {
      const std::uint64_t begin =
          read_le<std::uint64_t>(data, row_ptr_off + 8 * r);
      const std::uint64_t end =
          read_le<std::uint64_t>(data, row_ptr_off + 8 * (r + 1));
      for (std::uint64_t i = begin; i < end; ++i) {
        const auto c = static_cast<NodeId>(
            read_le<std::uint32_t>(data, col_off + 4 * i));
        const std::int64_t mirror = find_arc(c, r);
        if (mirror < 0) {
          std::ostringstream os;
          os << "undirected file is asymmetric: arc (" << r << "," << c
             << ") has no mirror";
          fail(path, 0, os.str());
        }
        if (weighted) {
          const std::uint32_t w = read_le<std::uint32_t>(data, w_off + 4 * i);
          const std::uint32_t wm = read_le<std::uint32_t>(
              data, w_off + 4 * static_cast<std::uint64_t>(mirror));
          if (w != wm) {
            std::ostringstream os;
            os << "undirected file has asymmetric weights on edge {" << r
               << "," << c << "}";
            fail(path, 0, os.str());
          }
        }
      }
    }
  }
  return g;
}

void save_csr(const Graph& g, const std::string& path) {
  const NodeId n = g.n();
  std::string out;
  out.append(kCsrMagic, 8);
  append_le<std::uint32_t>(&out, n);
  std::uint32_t flags = 0;
  if (g.is_directed()) flags |= kFlagDirected;
  if (g.is_weighted()) flags |= kFlagWeighted;
  append_le<std::uint32_t>(&out, flags);

  std::uint64_t nnz = 0;
  for (NodeId v = 0; v < n; ++v) nnz += g.row(v).popcount();
  append_le<std::uint64_t>(&out, nnz);

  std::uint64_t acc = 0;
  append_le<std::uint64_t>(&out, acc);
  for (NodeId v = 0; v < n; ++v) {
    acc += g.row(v).popcount();
    append_le<std::uint64_t>(&out, acc);
  }
  for (NodeId v = 0; v < n; ++v)
    for (NodeId c : g.neighbours(v)) append_le<std::uint32_t>(&out, c);
  if (g.is_weighted())
    for (NodeId v = 0; v < n; ++v)
      for (NodeId c : g.neighbours(v))
        append_le<std::uint32_t>(&out, g.weight(v, c));
  write_file(path, out);
}

// ---- family registry -----------------------------------------------------

const std::vector<std::string>& family_names() {
  static const std::vector<std::string> names = {
      "empty",    "complete", "cycle",     "path", "star",     "gnp",
      "gnp_weighted", "powerlaw", "community", "edgelist", "csr"};
  return names;
}

Graph make_family(const FamilySpec& spec, NodeId n) {
  CCQ_CHECK_MSG(n >= 1, "family size n must be >= 1");
  if (spec.name == "empty") return gen::empty(n);
  if (spec.name == "complete") return gen::complete(n);
  if (spec.name == "cycle") return gen::cycle(n);
  if (spec.name == "path") return gen::path(n);
  if (spec.name == "star") return gen::star(n);
  if (spec.name == "gnp") {
    CCQ_CHECK_MSG(spec.p >= 0 && spec.p <= 1, "gnp requires p in [0,1]");
    return gen::gnp(n, spec.p, spec.seed);
  }
  if (spec.name == "gnp_weighted") {
    CCQ_CHECK_MSG(spec.p >= 0 && spec.p <= 1,
                  "gnp_weighted requires p in [0,1]");
    return gen::gnp_weighted(n, spec.p, spec.max_w, spec.seed);
  }
  if (spec.name == "powerlaw")
    return gen::powerlaw_chung_lu(n, spec.exponent, spec.avg_degree,
                                  spec.seed);
  if (spec.name == "community")
    return gen::planted_communities(n, spec.k, spec.p_in, spec.p_out,
                                    spec.seed)
        .graph;
  if (spec.name == "edgelist" || spec.name == "csr") {
    CCQ_CHECK_MSG(!spec.path.empty(),
                  "family '" << spec.name << "' requires a path");
    Graph g = spec.name == "csr" ? load_csr(spec.path)
                                 : load_edge_list(spec.path);
    CCQ_CHECK_MSG(g.n() == n, "file " << spec.path << " has n = " << g.n()
                                      << " but the cell asks for n = " << n);
    return g;
  }
  std::ostringstream os;
  os << "unknown graph family '" << spec.name << "' (known:";
  for (const auto& f : family_names()) os << " " << f;
  os << ")";
  throw ModelViolation(os.str());
}

}  // namespace ccq::corpus
