#include "graph/graph.hpp"

namespace ccq {

std::size_t Graph::m() const {
  std::size_t total = 0;
  for (NodeId v = 0; v < n_; ++v) total += rows_[v].popcount();
  return directed_ ? total : total / 2;
}

void Graph::add_edge(NodeId u, NodeId v) {
  CCQ_CHECK_MSG(u < n_ && v < n_, "edge endpoint out of range");
  CCQ_CHECK_MSG(u != v, "self loops are not allowed");
  rows_[u].set(v);
  if (!directed_) rows_[v].set(u);
  if (!weights_.empty()) {
    weights_[static_cast<std::size_t>(u) * n_ + v] = 1;
    if (!directed_) weights_[static_cast<std::size_t>(v) * n_ + u] = 1;
  }
}

void Graph::add_edge(NodeId u, NodeId v, std::uint32_t w) {
  ensure_weights();
  add_edge(u, v);
  weights_[static_cast<std::size_t>(u) * n_ + v] = w;
  if (!directed_) weights_[static_cast<std::size_t>(v) * n_ + u] = w;
}

void Graph::remove_edge(NodeId u, NodeId v) {
  CCQ_CHECK(u < n_ && v < n_);
  rows_[u].set(v, false);
  if (!directed_) rows_[v].set(u, false);
}

std::uint32_t Graph::weight(NodeId u, NodeId v) const {
  CCQ_CHECK_MSG(has_edge(u, v), "weight() of a non-edge");
  if (weights_.empty()) return 1;
  return weights_[static_cast<std::size_t>(u) * n_ + v];
}

std::vector<NodeId> Graph::neighbours(NodeId v) const {
  std::vector<NodeId> out;
  const BitVector& r = row(v);
  for (std::size_t i = r.find_first(); i < r.size();
       i = r.find_first(i + 1)) {
    out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  for (NodeId u = 0; u < n_; ++u) {
    const BitVector& r = rows_[u];
    for (std::size_t i = r.find_first(); i < r.size();
         i = r.find_first(i + 1)) {
      const NodeId v = static_cast<NodeId>(i);
      if (directed_ || u < v) out.push_back({u, v, weight(u, v)});
    }
  }
  return out;
}

Graph Graph::complement() const {
  CCQ_CHECK_MSG(!directed_, "complement() defined for undirected graphs");
  Graph g = Graph::undirected(n_);
  for (NodeId u = 0; u < n_; ++u)
    for (NodeId v = u + 1; v < n_; ++v)
      if (!has_edge(u, v)) g.add_edge(u, v);
  return g;
}

Graph Graph::induced(const std::vector<NodeId>& keep) const {
  Graph g(static_cast<NodeId>(keep.size()), directed_);
  for (std::size_t a = 0; a < keep.size(); ++a) {
    for (std::size_t b = 0; b < keep.size(); ++b) {
      if (a == b) continue;
      if (has_edge(keep[a], keep[b])) {
        if (directed_ || a < b) {
          if (is_weighted())
            g.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b),
                       weight(keep[a], keep[b]));
          else
            g.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
        }
      }
    }
  }
  return g;
}

void Graph::ensure_weights() {
  if (weights_.empty()) {
    weights_.assign(static_cast<std::size_t>(n_) * n_, 1);
  }
}

}  // namespace ccq
