#include "clique/congest.hpp"

namespace ccq {

std::vector<std::optional<Word>> CongestCtx::round(
    std::span<const std::pair<NodeId, Word>> sends) {
  for (const auto& [dst, w] : sends) {
    (void)w;
    CCQ_CHECK_MSG(dst < inner_.n() && inner_.adj_row().get(dst),
                  "CONGEST violation: node "
                      << inner_.id() << " sent along non-edge to " << dst);
  }
  return inner_.round(sends);
}

RunResult run_congest(const Graph& g, const CongestProgram& program) {
  return Engine::run(g, [&program](NodeCtx& ctx) {
    CongestCtx cctx(ctx);
    program(cctx);
  });
}

}  // namespace ccq
