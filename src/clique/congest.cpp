#include "clique/congest.hpp"

namespace ccq {

namespace {

void check_edges(const NodeCtx& inner,
                 std::span<const std::pair<NodeId, Word>> sends) {
  for (const auto& [dst, w] : sends) {
    (void)w;
    CCQ_CHECK_MSG(dst < inner.n() && inner.adj_row().get(dst),
                  "CONGEST violation: node "
                      << inner.id() << " sent along non-edge to " << dst);
  }
}

}  // namespace

std::vector<std::optional<Word>> CongestCtx::round(
    std::span<const std::pair<NodeId, Word>> sends) {
  check_edges(inner_, sends);
  return inner_.round(sends);
}

FlatInbox CongestCtx::round_flat(
    std::span<const std::pair<NodeId, Word>> sends) {
  check_edges(inner_, sends);
  return inner_.round_flat(sends);
}

RunResult run_congest(const Graph& g, const CongestProgram& program) {
  return Engine::run(g, [&program](NodeCtx& ctx) {
    CongestCtx cctx(ctx);
    program(cctx);
  });
}

}  // namespace ccq
