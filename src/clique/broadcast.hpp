#pragma once

// The broadcast congested clique (§2 of the paper: "a version of the model
// where each node sends the same message to each other node every round" —
// the variant for which communication-complexity lower bounds are known
// [19]).
//
// BcastCtx restricts a node to one word per round, delivered to everyone;
// programs written against it are syntactically unable to exploit unicast.
// The engine underneath is unchanged, so costs remain fully metered.

#include <optional>

#include "clique/engine.hpp"

namespace ccq {

class BcastCtx {
 public:
  explicit BcastCtx(NodeCtx& inner) : inner_(inner) {}

  NodeId id() const { return inner_.id(); }
  NodeId n() const { return inner_.n(); }
  unsigned bandwidth() const { return inner_.bandwidth(); }
  const BitVector& adj_row() const { return inner_.adj_row(); }
  const BitVector& in_row() const { return inner_.in_row(); }
  bool weighted() const { return inner_.weighted(); }
  std::uint32_t edge_weight(NodeId u) const {
    return inner_.edge_weight(u);
  }
  const BitVector& private_bits() const { return inner_.private_bits(); }
  const BitVector& label(std::size_t i) const { return inner_.label(i); }
  std::uint64_t common_seed() const { return inner_.common_seed(); }

  /// One broadcast round: send `mine` (or nothing) to every other node;
  /// returns everyone's word.
  std::vector<std::optional<Word>> round(std::optional<Word> mine);

  /// Broadcast a long bit string (⌈bits/B⌉ rounds); all nodes must pass
  /// the same length. Returns all n strings.
  std::vector<BitVector> broadcast(const BitVector& mine) {
    return inner_.broadcast(mine);
  }

  void output(std::uint64_t v) { inner_.output(v); }
  void decide(bool accept) { inner_.decide(accept); }

 private:
  NodeCtx& inner_;
};

using BcastProgram = std::function<void(BcastCtx&)>;

/// Run a broadcast-clique program through the standard engine.
RunResult run_broadcast_clique(const Instance& instance,
                               const BcastProgram& program);
RunResult run_broadcast_clique(const Graph& g, const BcastProgram& program);

}  // namespace ccq
