#include "clique/scheduler.hpp"

#include <ucontext.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

// TSan has no visibility into ucontext stack switches; annotate them with
// the fiber API so the -fsanitize=thread CI job can vet the scheduler.
#if defined(__SANITIZE_THREAD__)
#define CCQ_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CCQ_TSAN 1
#endif
#endif
#ifdef CCQ_TSAN
#include <sanitizer/tsan_interface.h>
#endif

// glibc's swapcontext makes an rt_sigprocmask syscall per switch, which at
// n = 512 nodes means ~1000 syscalls per superstep — it dominates the pooled
// backend's cost. On x86-64 we switch stacks ourselves: save the System V
// callee-saved registers (plus mxcsr / x87 control words) and flip rsp, no
// syscall. TSan builds keep ucontext so the fiber annotations line up with
// what the sanitizer expects; other architectures keep ucontext for
// portability.
#if defined(__x86_64__) && !defined(CCQ_TSAN)
#define CCQ_FAST_FIBER 1
#endif

#ifdef CCQ_FAST_FIBER
extern "C" {
// Saves the current continuation at *save_sp and resumes the one at
// target_sp. Returns when someone swaps back to *save_sp.
void ccq_fiber_swap(void** save_sp, void* target_sp);
// First-activation shim: the seeded stack "returns" here with the Fiber*
// in r12 (see make_fiber); forwards it to ccq_fiber_main.
void ccq_fiber_entry();
// C++ side of the first activation; never returns.
void ccq_fiber_main(void* fiber);
}

// Restore path must mirror the seeded layout in make_fiber:
// sp → [fcw][mxcsr] [r15 r14 r13 r12 rbx rbp] [return address].
asm(R"(
.text
.align 16
.globl ccq_fiber_swap
.hidden ccq_fiber_swap
.type ccq_fiber_swap, @function
ccq_fiber_swap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq $16, %rsp
    stmxcsr 8(%rsp)
    fnstcw (%rsp)
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    ldmxcsr 8(%rsp)
    fldcw (%rsp)
    addq $16, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
.size ccq_fiber_swap, .-ccq_fiber_swap

.align 16
.globl ccq_fiber_entry
.hidden ccq_fiber_entry
.type ccq_fiber_entry, @function
ccq_fiber_entry:
    movq %r12, %rdi
    callq ccq_fiber_main
    ud2
.size ccq_fiber_entry, .-ccq_fiber_entry
)");
#endif  // CCQ_FAST_FIBER

namespace ccq {
namespace detail {

namespace {

// ---------------------------------------------------------------------------
// Reference backend: one OS thread per node, mutex/cv rendezvous.
// ---------------------------------------------------------------------------

class ThreadPerNodeScheduler final : public Scheduler {
 public:
  void run(NodeId n, const NodeBody& body) override {
    n_ = n;
    tags_.assign(n, OpTag{});
    arrived_ = 0;
    generation_ = 0;
    finished_ = 0;
    aborted_ = false;
    error_ = nullptr;

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      threads.emplace_back([this, &body, v] {
        try {
          body(v);
          task_returned();
        } catch (Aborted&) {
          // Another node already recorded the error.
        } catch (...) {
          abort_run(std::current_exception());
        }
      });
    }
    for (auto& t : threads) t.join();
    if (error_) std::rethrow_exception(error_);
  }

  // Rendezvous: deposit this node's payload, wait for everyone, have the
  // last arrival validate the op tags and run `leader` (delivery +
  // accounting), then release all nodes.
  void collective(NodeId id, OpTag tag, const Thunk& deposit,
                  const Thunk& leader) override {
    std::unique_lock<std::mutex> lk(mu_);
    if (aborted_) throw Aborted{};
    if (finished_ > 0) {
      fail_locked(
          "divergent collectives: a node entered a collective after another "
          "node finished its program");
    }
    tags_[id] = tag;
    deposit();
    ++arrived_;
    if (arrived_ == n_) {
      arrived_ = 0;
      ++generation_;
      for (NodeId v = 0; v < n_; ++v) {
        if (!(tags_[v] == tag)) {
          fail_locked(
              "divergent collectives: nodes issued different operations");
        }
      }
      try {
        leader();
      } catch (...) {
        abort_locked(std::current_exception());
        throw Aborted{};
      }
      cv_.notify_all();
    } else {
      const std::uint64_t my_gen = generation_;
      cv_.wait(lk, [&] { return generation_ != my_gen || aborted_; });
      if (aborted_) throw Aborted{};
    }
  }

 private:
  void abort_locked(std::exception_ptr e) {
    if (!aborted_) {
      aborted_ = true;
      error_ = std::move(e);
    }
    cv_.notify_all();
  }

  void abort_run(std::exception_ptr e) {
    std::lock_guard<std::mutex> lk(mu_);
    abort_locked(std::move(e));
  }

  [[noreturn]] void fail_locked(const std::string& msg) {
    abort_locked(std::make_exception_ptr(ModelViolation(msg)));
    throw Aborted{};
  }

  void task_returned() {
    std::lock_guard<std::mutex> lk(mu_);
    if (aborted_) return;
    if (arrived_ > 0) {
      abort_locked(std::make_exception_ptr(ModelViolation(
          "divergent collectives: a node finished while others were inside "
          "a collective")));
    }
    ++finished_;
  }

  NodeId n_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t finished_ = 0;
  bool aborted_ = false;
  std::exception_ptr error_;
  std::vector<OpTag> tags_;
};

// ---------------------------------------------------------------------------
// Fiber backends: node programs as stackful fibers over the shared pool.
//
// Two backends share the machinery below. kPooled multiplexes all n fibers
// over the worker team through a shared claim counter (dynamic balance);
// kSharded assigns each worker a static set of contiguous node shards and
// runs a plain id-ordered loop over them (owner-computes; no shared counter
// on the resume path, and each worker allocates — first-touches — the
// stacks it will keep resuming). Everything that decides results (the
// serial leader phase, delivery, accounting) is identical, which is the
// determinism argument: the backends differ only in who resumes a fiber,
// never in what the leader observes.
// ---------------------------------------------------------------------------

/// Workers the fiber backends draw from. One process-wide pool sized by
/// hardware_concurrency: engine runs are frequent and short, so per-run
/// thread creation would reintroduce exactly the overhead these backends
/// remove.
ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

class FiberSchedulerBase;

struct Fiber {
#ifdef CCQ_FAST_FIBER
  void* sp = nullptr;         // fiber's saved stack pointer while parked
  void* worker_sp = nullptr;  // resuming worker's saved stack pointer
#else
  ucontext_t ctx{};
  ucontext_t* resumer = nullptr;  // the worker context to yield back to
#endif
  std::unique_ptr<char[]> stack;
  FiberSchedulerBase* sched = nullptr;
  NodeId id = 0;
  bool finished = false;
  // Rendezvous payload while parked at a collective.
  OpTag tag{};
  const Scheduler::Thunk* leader = nullptr;
#ifdef CCQ_TSAN
  void* tsan_fiber = nullptr;
  void* tsan_resumer = nullptr;
#endif
};

// The fiber the calling worker thread is currently executing, if any.
thread_local Fiber* tls_fiber = nullptr;

void spin_pause(unsigned& spins) {
  if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  } else {
    std::this_thread::yield();
  }
}

class FiberSchedulerBase : public Scheduler {
 public:
  explicit FiberSchedulerBase(std::size_t stack_bytes)
      : stack_bytes_(stack_bytes == 0 ? kDefaultStackBytes : stack_bytes) {}

  void run(NodeId n, const NodeBody& body) final {
    n_ = n;
    body_ = &body;
    aborted_.store(false, std::memory_order_relaxed);
    any_returned_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    done_ = false;

    // One slot per node; plan_run (pooled) or the owning worker's first
    // resume phase (sharded) installs the fiber.
    destroy_fibers();
    fibers_.resize(n);

    ThreadPool& pool = shared_pool();
    participants_ = plan_run(pool.size());
    barrier_count_.store(0, std::memory_order_relaxed);
    barrier_sense_.store(false, std::memory_order_relaxed);

    pool.parallel_for(participants_,
                      [this](std::size_t w) { worker_loop(w); });

    destroy_fibers();
    if (error_) std::rethrow_exception(error_);
  }

  // Leader-issued parallel work. The other workers are guaranteed to be
  // spinning at the superstep barrier while a leader thunk runs, so they
  // double as the worker team: publish the chunk function, let everyone
  // (leader included) claim chunk indices, and wait until all chunks have
  // executed. Chunks write disjoint data (the caller's contract), so the
  // claim order cannot reach results.
  //
  // A leader thunk may issue several jobs back to back (FlatPlane::deliver
  // runs three), so a helper parked at the barrier can hold a stale view of
  // one job while the next is being published. Each publish therefore bumps
  // an epoch, and the whole claim state lives in one 64-bit ticket
  // ([epoch | chunks | next], see kTicket* below) that helpers advance with
  // a CAS: a claim taken against a superseded epoch fails the CAS instead
  // of consuming an index — a stale helper can neither run a retired
  // ChunkFn nor steal a chunk from (or credit job_done_ of) the new job.
  void leader_parallel_for(std::size_t chunks, const ChunkFn& fn) final {
    count_job(chunks);
    if (chunks <= 1 || participants_ <= 1 || chunks > kTicketFieldMask) {
      for (std::size_t i = 0; i < chunks; ++i) fn(i);
      return;
    }
    job_done_.store(0, std::memory_order_relaxed);
    job_fn_.store(&fn, std::memory_order_relaxed);
    job_epoch_ = (job_epoch_ + 1) & kTicketEpochMask;  // leader-owned
    job_ticket_.store((job_epoch_ << kTicketEpochShift) |
                          (static_cast<std::uint64_t>(chunks)
                           << kTicketChunksShift),
                      std::memory_order_release);  // publishes the above
    help_with_job();
    unsigned spins = 0;
    while (job_done_.load(std::memory_order_acquire) < chunks) {
      spin_pause(spins);
    }
    job_fn_.store(nullptr, std::memory_order_release);
    // A chunk that threw recorded the error; the delivery state is garbage
    // but the run is aborting, so unwind the leader thunk too.
    if (aborted_.load(std::memory_order_relaxed)) throw Aborted{};
  }

  void collective(NodeId id, OpTag tag, const Thunk& deposit,
                  const Thunk& leader) final {
    Fiber* f = tls_fiber;
    CCQ_CHECK_MSG(f != nullptr && f->sched == this && f->id == id,
                  "collective() called off its scheduler fiber");
    if (aborted_.load(std::memory_order_acquire)) throw Aborted{};
    deposit();
    f->tag = tag;
    // `leader` lives in the caller's frame on this fiber's stack; it stays
    // valid for exactly as long as the fiber is parked here.
    f->leader = &leader;
    yield_to_worker(*f);
    f->leader = nullptr;
    if (aborted_.load(std::memory_order_acquire)) throw Aborted{};
  }

 protected:
  static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  // ---- backend hooks ------------------------------------------------------
  // plan_run: serial (the caller's thread, before any worker starts) —
  // size the worker team and build the backend's resume schedule; returns
  // the team size (≥ 1). resume_phase: parallel — resume this worker's
  // share of the unfinished fibers until each parks at a collective or
  // finishes. end_superstep: serial (the barrier winner, after validation
  // and the leader thunk) — rebuild the resume schedule for the next
  // superstep.
  virtual std::size_t plan_run(std::size_t pool_size) = 0;
  virtual void resume_phase(std::size_t worker) = 0;
  virtual void end_superstep() {}

  NodeId n() const { return n_; }
  Fiber* fiber(NodeId v) const { return fibers_[v].get(); }

 private:
  // Job-ticket layout: [epoch:24 | chunks:20 | next:20]. 2^20 chunks is far
  // past any delivery fan-out (leader_parallel_for falls back to serial
  // beyond it), and `next` never exceeds `chunks` because claims stop once
  // the indices run out, so both fit the same field width.
  static constexpr unsigned kTicketFieldBits = 20;
  static constexpr std::uint64_t kTicketFieldMask =
      (std::uint64_t{1} << kTicketFieldBits) - 1;
  static constexpr unsigned kTicketChunksShift = kTicketFieldBits;
  static constexpr unsigned kTicketEpochShift = 2 * kTicketFieldBits;
  static constexpr std::uint64_t kTicketEpochMask =
      (std::uint64_t{1} << (64 - kTicketEpochShift)) - 1;

 protected:
  // Builds node v's fiber and installs it in the run's fiber table. The
  // pooled backend calls this serially from plan_run; the sharded backend
  // calls it from the owning worker's first resume phase (distinct v ⇒
  // distinct slots, and the superstep barrier orders the writes before the
  // serial phase reads them), so each stack is allocated and first-touched
  // by the worker that keeps resuming it.
  Fiber* make_fiber(NodeId v) {
    auto f = std::make_unique<Fiber>();
    f->sched = this;
    f->id = v;
    // Recycle a banked stack from the previous run if one is available
    // (EngineSession reuse: at a fixed n the steady state allocates no
    // stacks). The pool is mutex-guarded because the sharded backend calls
    // make_fiber from its owning workers in parallel; all stacks in the
    // pool were sized by this instance's fixed stack_bytes_, so any one
    // fits. Default-initialised (not value-initialised) allocation so
    // untouched stack pages stay lazily unmapped — 4096 fibers must not
    // commit a gigabyte.
    {
      std::lock_guard<std::mutex> lk(stack_pool_mu_);
      if (!stack_pool_.empty()) {
        f->stack = std::move(stack_pool_.back());
        stack_pool_.pop_back();
      }
    }
    if (f->stack == nullptr) f->stack.reset(new char[stack_bytes_]);
#ifdef CCQ_FAST_FIBER
    // Seed the stack so the first ccq_fiber_swap "returns" into
    // ccq_fiber_entry with the Fiber* in r12. The slot order matches the
    // swap's restore path; the -56-byte offset leaves rsp ≡ 8 (mod 16) so
    // the entry shim's call site sees a correctly aligned stack.
    const auto top =
        reinterpret_cast<std::uintptr_t>(f->stack.get() + stack_bytes_) &
        ~std::uintptr_t(15);
    auto* slots = reinterpret_cast<void**>(top);
    slots[-1] = reinterpret_cast<void*>(&ccq_fiber_entry);  // ret target
    slots[-2] = nullptr;                                    // rbp
    slots[-3] = nullptr;                                    // rbx
    slots[-4] = f.get();                                    // r12
    slots[-5] = nullptr;                                    // r13
    slots[-6] = nullptr;                                    // r14
    slots[-7] = nullptr;                                    // r15
    char* sp = reinterpret_cast<char*>(slots - 7) - 16;
    std::uint32_t mxcsr;
    asm("stmxcsr %0" : "=m"(mxcsr));
    std::uint16_t fcw;
    asm("fnstcw %0" : "=m"(fcw));
    std::memcpy(sp + 8, &mxcsr, sizeof mxcsr);
    std::memcpy(sp, &fcw, sizeof fcw);
    f->sp = sp;
#else
    CCQ_CHECK(getcontext(&f->ctx) == 0);
    f->ctx.uc_stack.ss_sp = f->stack.get();
    f->ctx.uc_stack.ss_size = stack_bytes_;
    f->ctx.uc_link = nullptr;
    // makecontext only passes ints; smuggle the Fiber* through two halves.
    const auto p = reinterpret_cast<std::uintptr_t>(f.get());
    makecontext(&f->ctx, reinterpret_cast<void (*)()>(&trampoline), 2,
                static_cast<unsigned>(p >> 32),
                static_cast<unsigned>(p & 0xffffffffu));
#endif
#ifdef CCQ_TSAN
    f->tsan_fiber = __tsan_create_fiber(0);
#endif
    fibers_[v] = std::move(f);
    return fibers_[v].get();
  }

 private:
  void destroy_fibers() {
    // Bank the stacks for the next run (serial: called from run() entry and
    // exit only). The fiber bookkeeping itself is rebuilt per run — only
    // the stack allocations, the expensive part, survive.
    std::lock_guard<std::mutex> lk(stack_pool_mu_);
    for (auto& f : fibers_) {
      if (!f) continue;
#ifdef CCQ_TSAN
      if (f->tsan_fiber) __tsan_destroy_fiber(f->tsan_fiber);
#endif
      stack_pool_.push_back(std::move(f->stack));
    }
    fibers_.clear();
  }

 public:
  // Top of every fiber stack: run the node body, swallow Aborted (another
  // node already recorded the error), record anything else, then yield for
  // the last time. A finished fiber is never resumed, so control cannot
  // fall off the end. Public so the fast-fiber first-activation shim
  // (ccq_fiber_main) can reach it.
  static void run_node(Fiber* f) {
    FiberSchedulerBase* sched = f->sched;
    try {
      (*sched->body_)(f->id);
      sched->any_returned_.store(true, std::memory_order_relaxed);
    } catch (Aborted&) {
    } catch (...) {
      sched->record_error(std::current_exception());
    }
    f->finished = true;
    sched->yield_to_worker(*f);
    std::abort();  // unreachable
  }

#ifndef CCQ_FAST_FIBER
  static void trampoline(unsigned hi, unsigned lo) {
    run_node(reinterpret_cast<Fiber*>((static_cast<std::uintptr_t>(hi) << 32) |
                                      static_cast<std::uintptr_t>(lo)));
  }
#endif

 protected:
  void resume(Fiber& f) {
    CCQ_DCHECK(!f.finished);
    count_switch();
    Fiber* prev = tls_fiber;
    tls_fiber = &f;
#ifdef CCQ_FAST_FIBER
    ccq_fiber_swap(&f.worker_sp, f.sp);
#else
    ucontext_t here;
    f.resumer = &here;
#ifdef CCQ_TSAN
    f.tsan_resumer = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(f.tsan_fiber, 0);
#endif
    swapcontext(&here, &f.ctx);
#endif
    tls_fiber = prev;
  }

  void yield_to_worker(Fiber& f) {
#ifdef CCQ_FAST_FIBER
    ccq_fiber_swap(&f.sp, f.worker_sp);
#else
#ifdef CCQ_TSAN
    __tsan_switch_to_fiber(f.tsan_resumer, 0);
#endif
    swapcontext(&f.ctx, f.resumer);
#endif
  }

 private:
  // Claim and run chunks of the currently published leader job, if any.
  // Each claim is a CAS that advances the ticket's `next` field while
  // re-asserting the epoch (and chunk count) captured in the snapshot, so a
  // helper holding state from a superseded job simply fails the CAS and
  // re-reads — it never consumes an index or increments job_done_ for a job
  // it did not observe. The ChunkFn is loaded between the snapshot and the
  // CAS: a successful claim of epoch e proves job e was still incomplete at
  // claim time, and a later epoch's fn (or the retiring nullptr store) only
  // becomes visible after job e's last job_done_ increment, which this very
  // chunk has yet to perform — so the loaded fn is necessarily job e's.
  void help_with_job() {
    std::uint64_t t = job_ticket_.load(std::memory_order_acquire);
    for (;;) {
      const std::uint64_t chunks = (t >> kTicketChunksShift) & kTicketFieldMask;
      const std::uint64_t i = t & kTicketFieldMask;
      if (i >= chunks) return;  // no job published, or all chunks claimed
      const ChunkFn* fn = job_fn_.load(std::memory_order_acquire);
      if (fn == nullptr) return;
      if (!job_ticket_.compare_exchange_weak(t, t + 1,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        continue;  // epoch moved on or another helper took i; re-validate
      }
      try {
        (*fn)(i);
      } catch (...) {
        record_error(std::current_exception());
      }
      job_done_.fetch_add(1, std::memory_order_acq_rel);
      t = job_ticket_.load(std::memory_order_acquire);
    }
  }

  void record_error(std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lk(error_mu_);
      if (!error_) error_ = std::move(e);
    }
    aborted_.store(true, std::memory_order_release);
  }

  // One superstep: resume this worker's share of the unfinished fibers
  // until each parks at a collective (or finishes), meet the other workers
  // at the sense-reversing barrier, and let the last arrival run the serial
  // leader step.
  void worker_loop(std::size_t worker) {
    bool sense = false;
    while (true) {
      resume_phase(worker);
      sense = !sense;
      if (barrier_count_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          participants_) {
        superstep_end();
        barrier_count_.store(0, std::memory_order_relaxed);
        barrier_sense_.store(sense, std::memory_order_release);
      } else {
        unsigned spins = 0;
        while (barrier_sense_.load(std::memory_order_acquire) != sense) {
          if (job_fn_.load(std::memory_order_acquire) != nullptr) {
            help_with_job();
            spins = 0;
          } else {
            spin_pause(spins);
          }
        }
      }
      if (done_) return;
    }
  }

  // Serial phase: every fiber has yielded, so plain accesses are safe (the
  // barrier orders them). Validates the rendezvous, runs the leader, and
  // lets the backend rebuild its resume schedule.
  void superstep_end() {
    std::size_t parked = 0;
    for (const auto& f : fibers_) {
      if (f && !f->finished) ++parked;
    }
    if (!aborted_.load(std::memory_order_relaxed) && parked > 0) {
      if (any_returned_.load(std::memory_order_relaxed)) {
        record_error(std::make_exception_ptr(ModelViolation(
            "divergent collectives: a node finished while others were inside "
            "a collective")));
      } else {
        // All n fibers are parked at a collective; validate and deliver.
        // (parked > 0 and no normal return means no fiber finished at all:
        // an exceptional finish would have set aborted_.)
        Fiber* first = fibers_.front().get();
        for (const auto& f : fibers_) {
          if (!(f->tag == first->tag)) {
            record_error(std::make_exception_ptr(ModelViolation(
                "divergent collectives: nodes issued different operations")));
            break;
          }
        }
        if (!aborted_.load(std::memory_order_relaxed)) {
          try {
            (*first->leader)();
          } catch (...) {
            record_error(std::current_exception());
          }
        }
      }
    }
    // Next superstep resumes every unfinished fiber — after an abort they
    // observe aborted_ and unwind with Aborted, draining the schedule.
    end_superstep();
    done_ = parked == 0;
  }

  const std::size_t stack_bytes_;
  // Recycled fiber stacks (all of size stack_bytes_); see make_fiber.
  std::mutex stack_pool_mu_;
  std::vector<std::unique_ptr<char[]>> stack_pool_;

  NodeId n_ = 0;
  const NodeBody* body_ = nullptr;
  // One entry per node id; slots are filled by plan_run or (sharded) by the
  // owning worker before the first barrier, so the serial phase always sees
  // a complete table.
  std::vector<std::unique_ptr<Fiber>> fibers_;
  bool done_ = false;  // written in the serial phase, read after release

  std::size_t participants_ = 0;
  std::atomic<std::size_t> barrier_count_{0};
  std::atomic<bool> barrier_sense_{false};

  // Leader-issued parallel job (leader_parallel_for). The ticket carries
  // the epoch, chunk count, and next unclaimed index in one word; its
  // release store in leader_parallel_for publishes job_fn_ and the
  // job_done_ reset. job_epoch_ is written only by the leader (the serial
  // phase) and reaches helpers through the ticket.
  std::atomic<const ChunkFn*> job_fn_{nullptr};
  std::atomic<std::uint64_t> job_ticket_{0};
  std::uint64_t job_epoch_ = 0;
  std::atomic<std::size_t> job_done_{0};

  std::atomic<bool> aborted_{false};
  std::atomic<bool> any_returned_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
};

// Dynamic balance: all n fibers sit in one run list and workers claim them
// through a shared counter, so a straggling node program cannot idle the
// rest of the team. The price is one contended fetch_add per resume.
class PooledScheduler final : public FiberSchedulerBase {
 public:
  PooledScheduler(std::size_t workers, std::size_t stack_bytes)
      : FiberSchedulerBase(stack_bytes), workers_cap_(workers) {}

 private:
  std::size_t plan_run(std::size_t pool_size) override {
    run_list_.clear();
    run_list_.reserve(n());
    for (NodeId v = 0; v < n(); ++v) run_list_.push_back(make_fiber(v));
    next_.store(0, std::memory_order_relaxed);
    std::size_t workers = std::min<std::size_t>(pool_size, n());
    if (workers_cap_ > 0) workers = std::min(workers, workers_cap_);
    return workers == 0 ? 1 : workers;
  }

  void resume_phase(std::size_t /*worker*/) override {
    std::size_t i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) <
           run_list_.size()) {
      resume(*run_list_[i]);
    }
  }

  void end_superstep() override {
    run_list_.clear();
    for (NodeId v = 0; v < n(); ++v) {
      Fiber* f = fiber(v);
      if (!f->finished) run_list_.push_back(f);
    }
    next_.store(0, std::memory_order_relaxed);
  }

  const std::size_t workers_cap_;
  std::vector<Fiber*> run_list_;  // mutated only in the serial phase
  std::atomic<std::size_t> next_{0};
};

// Owner-computes (the libgalois/libdist pattern): the id space is cut into
// `shards` contiguous blocks handed to workers statically, and each worker
// resumes its owned nodes with a plain id-ordered loop — no shared claim
// counter, no cross-worker cache traffic on the resume path, and fiber
// stacks are created by their owner on first resume so the memory a worker
// keeps switching through is memory it allocated itself. Static ownership
// trades the pooled backend's load balance for that locality, which is the
// right trade exactly when n ≫ cores: with hundreds of fibers per worker,
// per-shard imbalance averages out (bench_sharding measures this).
class ShardedScheduler final : public FiberSchedulerBase {
 public:
  ShardedScheduler(std::size_t shards, std::size_t stack_bytes)
      : FiberSchedulerBase(stack_bytes), shards_cfg_(shards) {}

 private:
  std::size_t plan_run(std::size_t pool_size) override {
    // Shard count: configured, else one shard per pool thread; clamped so
    // every shard is non-empty. The worker team never exceeds the shard
    // count — a worker with no shard would only spin at the barrier.
    std::size_t shards = shards_cfg_ == 0 ? pool_size : shards_cfg_;
    shards = std::max<std::size_t>(
        1, std::min<std::size_t>(shards, n()));
    const std::size_t workers =
        std::max<std::size_t>(1, std::min(pool_size, shards));
    owned_.assign(workers, {});
    // Shard s owns the contiguous block [s·n/S, (s+1)·n/S) — balanced to
    // ±1 node even when S does not divide n — and shards are dealt to
    // workers round-robin so a team smaller than S still covers every
    // node. Results cannot depend on any of this: ownership only decides
    // which worker resumes a fiber, never what the serial phase computes.
    for (std::size_t s = 0; s < shards; ++s) {
      const NodeId b = static_cast<NodeId>(s * n() / shards);
      const NodeId e = static_cast<NodeId>((s + 1) * n() / shards);
      if (b < e) owned_[s % workers].push_back({b, e});
    }
    return workers;
  }

  void resume_phase(std::size_t worker) override {
    for (const auto& [b, e] : owned_[worker]) {
      for (NodeId v = b; v < e; ++v) {
        Fiber* f = fiber(v);
        if (f == nullptr) f = make_fiber(v);  // first superstep, owner-local
        if (!f->finished) resume(*f);
      }
    }
  }

  const std::size_t shards_cfg_;
  // Per-worker owned shards as [begin, end) node-id ranges; built in
  // plan_run, read-only while workers run.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> owned_;
};

}  // namespace

#ifdef CCQ_FAST_FIBER
extern "C" void ccq_fiber_main(void* fiber) {
  FiberSchedulerBase::run_node(static_cast<Fiber*>(fiber));
}
#endif

bool on_scheduler_fiber() { return tls_fiber != nullptr; }

std::unique_ptr<Scheduler> make_scheduler(ExecutionBackend backend,
                                          std::size_t workers,
                                          std::size_t stack_bytes) {
  switch (backend) {
    case ExecutionBackend::kThreadPerNode:
      return std::make_unique<ThreadPerNodeScheduler>();
    case ExecutionBackend::kPooled:
      return std::make_unique<PooledScheduler>(workers, stack_bytes);
    case ExecutionBackend::kSharded:
      return std::make_unique<ShardedScheduler>(workers, stack_bytes);
  }
  CCQ_CHECK_MSG(false, "unknown execution backend");
  return nullptr;
}

}  // namespace detail
}  // namespace ccq
