#pragma once

// The congested clique engine.
//
// Execution model (faithful to §3 of the paper):
//   * n nodes, fully connected, synchronous rounds;
//   * per round, each ordered pair carries at most one word of at most
//     B = ⌈log₂n⌉ · c bits (c = Config::bandwidth_multiplier, default 1);
//   * unlimited local computation;
//   * all nodes run the same program (SPMD), parameterised by id().
//
// Programs are written MPI-style: a plain function `void(NodeCtx&)` that
// calls *collectives* — round(), exchange(), broadcast(), share_bit(). Every
// node must issue the identical collective sequence; the engine rendezvouses
// all nodes at each collective, verifies the sequences agree (a divergent
// sequence is a ModelViolation), delivers messages deterministically, and
// meters rounds from the actual per-pair queue drain.
//
// Node programs execute on a pluggable scheduler backend
// (Config::backend, see clique/scheduler.hpp): by default they run as
// cooperatively yielding fibers over a fixed worker pool, one superstep
// per collective; ExecutionBackend::kSharded statically shards the node id
// space across workers (owner-computes, for n ≫ cores — DESIGN.md §12);
// ExecutionBackend::kThreadPerNode keeps the historical thread-per-node
// execution as a reference. Results are bit-for-bit identical across
// backends, worker counts, shard counts, and schedules.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "clique/cost.hpp"
#include "clique/instance.hpp"
#include "clique/msgplane.hpp"
#include "clique/scheduler.hpp"
#include "clique/word.hpp"
#include "graph/graph.hpp"

namespace ccq {

class RoundTrace;  // clique/trace.hpp
class ChaosPlan;   // clique/chaos.hpp

namespace detail {
struct SharedState;
struct EngineAccess;  // engine.cpp-internal NodeCtx factory
}  // namespace detail

class NodeCtx {
 public:
  NodeId id() const { return id_; }
  NodeId n() const;
  /// Bandwidth B in bits per word.
  unsigned bandwidth() const;
  /// Shared public randomness (common seed; the model's nodes could agree
  /// on it in one round, and all our uses are charged or constant).
  std::uint64_t common_seed() const;

  // ---- initial local knowledge -------------------------------------------
  /// Incident-edge row (out-edges when directed).
  const BitVector& adj_row() const;
  /// Incoming-edge row (directed graphs; == adj_row() when undirected).
  const BitVector& in_row() const;
  bool directed() const;
  bool weighted() const;
  /// Weight of the incident edge {id(), u} (must exist).
  std::uint32_t edge_weight(NodeId u) const;
  /// Private input bits (§3 encoding or instance-provided).
  const BitVector& private_bits() const;
  /// Nondeterministic label z_{i}[v] for this node (i is 0-based).
  const BitVector& label(std::size_t i) const;
  std::size_t label_count() const;

  // ---- collectives (identical call sequence across all nodes) ------------
  /// One synchronous round: send at most one word to each other node;
  /// returns the word received from each node (index = sender). Costs
  /// exactly 1 round even if nothing is sent.
  std::vector<std::optional<Word>> round(
      std::span<const std::pair<NodeId, Word>> sends);

  /// Bulk exchange: queue any number of words per destination; the engine
  /// drains all queues one word per ordered pair per round, so the cost is
  /// max over ordered pairs of the queue length. Returns per-source inboxes
  /// in FIFO order. Words queued to self are delivered free of charge
  /// (local computation is unlimited). The rvalue overload lets the plane
  /// move (not copy) the self queue into the inbox.
  WordQueues exchange(const WordQueues& out);
  WordQueues exchange(WordQueues&& out);

  /// Allocation-free exchange fast path: sends are (dst, word) pairs in
  /// send order (any number per destination, self allowed); cost semantics
  /// are identical to exchange(). The returned view aliases the message
  /// plane's arena and is valid until this node's next collective — decode
  /// or copy out before communicating again.
  FlatInbox exchange_flat(std::span<const std::pair<NodeId, Word>> sends);

  /// Allocation-free round fast path: round() semantics (at most one word
  /// per destination, no self-sends, costs exactly 1 round) with the same
  /// arena-backed return as exchange_flat().
  FlatInbox round_flat(std::span<const std::pair<NodeId, Word>> sends);

  /// Every node broadcasts `mine` to everyone; all broadcasts run in
  /// parallel. All nodes must pass bit vectors of the same length L
  /// (engine-checked); costs ⌈L/B⌉ rounds. Returns all n vectors.
  std::vector<BitVector> broadcast(const BitVector& mine);

  /// One-bit broadcast (1 round); returns everyone's bit.
  std::vector<bool> share_bit(bool mine);

  /// Global disjunction / conjunction of one bit per node (1 round each).
  bool any(bool mine);
  bool all(bool mine);

  // ---- output -------------------------------------------------------------
  /// Final output of this node. Must be called exactly once.
  void output(std::uint64_t value);
  /// Decision-problem convenience: output(accept ? 1 : 0).
  void decide(bool accept) { output(accept ? 1 : 0); }

  /// Rounds consumed so far (nodes legitimately know the round number).
  std::uint64_t rounds_so_far() const;

  // ---- observability ------------------------------------------------------
  /// True when this run records a RoundTrace. Span push/pop are no-ops when
  /// false, so CCQ_TRACE_SPAN can stay in node code unconditionally.
  bool tracing() const;
  /// Span-stack plumbing for TraceSpan / CCQ_TRACE_SPAN; `label` must
  /// outlive the scope (string literals do). Prefer the macro.
  void trace_push(const char* label);
  void trace_pop();

 private:
  friend class Engine;
  friend struct detail::EngineAccess;
  NodeCtx(NodeId id, detail::SharedState* st) : id_(id), st_(st) {}

  NodeId id_;
  detail::SharedState* st_;
};

using NodeProgram = std::function<void(NodeCtx&)>;

/// RAII protocol-phase label (see clique/trace.hpp). While in scope, the
/// label is this node's innermost phase: collectives metered while node 0
/// is inside the span carry the label, and every node's span becomes a
/// per-node lane in the chrome export. Exception-safe — a ModelViolation
/// unwinding the node program closes the span at the abort coordinates.
/// No-op (one branch) when the run is untraced.
///
/// The span is anchored to a NodeCtx rather than a thread: pooled-backend
/// fibers migrate across OS threads between collectives, so thread-local
/// "current node" tracking would misattribute labels. Use the macro:
///
///   void my_protocol(NodeCtx& ctx) {
///     CCQ_TRACE_SPAN(ctx, "lenzen-phase1");
///     ...collectives...
///   }
class TraceSpan {
 public:
  TraceSpan(NodeCtx& ctx, const char* label) : ctx_(ctx) {
    ctx_.trace_push(label);
  }
  ~TraceSpan() { ctx_.trace_pop(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  NodeCtx& ctx_;
};

#define CCQ_TRACE_CONCAT_IMPL(a, b) a##b
#define CCQ_TRACE_CONCAT(a, b) CCQ_TRACE_CONCAT_IMPL(a, b)
/// Labels the rest of the enclosing scope as protocol phase `label` for
/// node `ctx`. Nests; pay-for-what-you-use (one branch when untraced).
#define CCQ_TRACE_SPAN(ctx, label) \
  ::ccq::TraceSpan CCQ_TRACE_CONCAT(ccq_trace_span_, __LINE__)(ctx, label)

struct RunResult {
  std::vector<std::uint64_t> outputs;  ///< one value per node
  CostMeter cost;

  /// All nodes output 1 (the paper's "algorithm accepts").
  bool accepted() const {
    for (auto v : outputs)
      if (v != 1) return false;
    return !outputs.empty();
  }
  /// All nodes output 0 (the paper's "algorithm rejects").
  bool rejected() const {
    for (auto v : outputs)
      if (v != 0) return false;
    return !outputs.empty();
  }
};

class Engine {
 public:
  struct Config {
    unsigned bandwidth_multiplier = 1;
    std::uint64_t max_rounds = 1u << 24;  ///< runaway-algorithm guard
    std::uint64_t seed = 0x9a7cc1e5u;     ///< common public randomness
    /// Execution backend; results are bit-identical across backends.
    ExecutionBackend backend = ExecutionBackend::kPooled;
    /// Message plane (delivery substrate); results are bit-identical across
    /// planes — kLegacy keeps the original per-pair vector queues as the
    /// auditable baseline, kFlat is the arena-backed counting-sort plane.
    MessagePlaneKind plane = MessagePlaneKind::kFlat;
    /// Pooled backend: cap on concurrent workers. Sharded backend: the
    /// shard count — the node id space is cut into this many contiguous
    /// owner-computes blocks (the worker team is min(shards, pool size)).
    /// 0 = one per shared-pool thread. Values above n are rejected at
    /// run() entry (ModelViolation).
    std::size_t workers = 0;
    /// Fiber backends: per-node fiber stack size (0 = 256 KiB). Nonzero
    /// values below the 16 KiB switch-frame floor are rejected at run()
    /// entry (ModelViolation).
    std::size_t fiber_stack_bytes = 0;
    /// Per-collective recorder (clique/trace.hpp); nullptr falls back to
    /// the process-wide trace::global() (benches' --trace), and untraced
    /// when that is null too. A trace already recording another run is
    /// skipped (the run executes untraced) rather than interleaved.
    RoundTrace* trace = nullptr;
    /// Fault-injection plan (clique/chaos.hpp); nullptr falls back to the
    /// process-wide chaos::global(), and fault-free when that is null too.
    /// Attached the same way as `trace`: a plan already driving another
    /// run is skipped (this run executes fault-free) rather than shared.
    ChaosPlan* chaos = nullptr;
  };

  /// Execute `program` on `instance`. Throws ModelViolation on any model
  /// rule violation (bandwidth overflow, requested bandwidth beyond the
  /// 64-bit word limit, divergent collectives, missing output, round-limit
  /// overrun) and propagates program exceptions.
  static RunResult run(const Instance& instance, const NodeProgram& program,
                       const Config& config);
  static RunResult run(const Instance& instance, const NodeProgram& program) {
    return run(instance, program, Config{});
  }

  /// Convenience: unlabelled graph instance.
  static RunResult run(const Graph& g, const NodeProgram& program,
                       const Config& config) {
    return run(Instance::of(g), program, config);
  }
  static RunResult run(const Graph& g, const NodeProgram& program) {
    return run(Instance::of(g), program, Config{});
  }
};

/// A warm engine for repeated runs of one fixed *shape*. Engine::run
/// constructs a fresh scheduler (n fiber stacks) and message plane per
/// call; a session constructs them once and re-initialises them per run,
/// so the fiber stacks, plane arenas and counting-sort arrays carry over —
/// at a fixed n the steady state allocates nothing per run. Results are
/// bit-for-bit identical to Engine::run with the same config (pinned by
/// tests/clique/session_test.cpp); only wall-clock changes.
///
/// Per-run parameters (seed, max_rounds, trace, chaos) vary freely through
/// the config passed to run(); the shape-valued fields of that config must
/// equal the session's shape (ModelViolation otherwise — a mismatched
/// config means the caller keyed its session cache wrong). Sessions are
/// single-threaded: one run at a time, and run() must not be called from
/// inside a node program (nested simulation goes through Engine::run).
class EngineSession {
 public:
  /// The cache key: everything that sizes the warm objects.
  struct Shape {
    NodeId n = 0;
    unsigned bandwidth_multiplier = 1;
    MessagePlaneKind plane = MessagePlaneKind::kFlat;
    ExecutionBackend backend = ExecutionBackend::kPooled;
    std::size_t workers = 0;
    std::size_t fiber_stack_bytes = 0;

    bool operator==(const Shape&) const = default;
  };

  explicit EngineSession(const Shape& shape);
  ~EngineSession();
  EngineSession(const EngineSession&) = delete;
  EngineSession& operator=(const EngineSession&) = delete;

  /// Engine::run semantics on the warm scheduler + plane. The instance must
  /// have shape().n nodes and `config`'s shape fields must match shape().
  RunResult run(const Instance& instance, const NodeProgram& program,
                const Engine::Config& config);

  const Shape& shape() const { return shape_; }
  /// Completed (non-throwing) runs — the service's warm-hit telemetry.
  std::uint64_t runs_completed() const { return runs_; }

 private:
  Shape shape_;
  std::unique_ptr<detail::Scheduler> sched_;
  std::unique_ptr<detail::MessagePlane> plane_;
  std::uint64_t runs_ = 0;
};

}  // namespace ccq
