#pragma once

// Routing collectives.
//
// §7.1 of the paper delivers the Dolev-style message pattern "using the
// routing protocol of Lenzen [43]". Lenzen's guarantee: if every node sends
// at most n messages and receives at most n messages, delivery takes O(1)
// rounds. We provide two deterministic routers (see DESIGN.md §1 for the
// substitution argument):
//
//  * route_direct — every message goes straight over its (source, dest)
//    link; the engine drains one word per ordered pair per round, so the
//    cost is the max per-pair multiplicity. For the balanced patterns the
//    paper actually routes (Theorem 9, Dolev et al. subgraph detection) this
//    already meets the O(n^{1-1/k}) budget, which tests assert.
//
//  * route_balanced — two-phase indirection: each source stripes its
//    (destination-sorted) messages across all n nodes as intermediaries with
//    a seed-salted offset, then intermediaries forward to the true
//    destinations. Relayed messages carry a destination header word, a
//    constant factor the model absorbs. For loads S = max sent, R = max
//    received per node, phase 1 costs ⌈S/n⌉ rounds and phase 2 is balanced
//    to O(R/n + 1) on non-adversarial inputs.
//
// A routed message is (dst, payload word). Payloads must fit the bandwidth.

#include <cstdint>
#include <vector>

#include "clique/engine.hpp"

namespace ccq {

struct RoutedMessage {
  NodeId dst;
  Word payload;
};

/// Direct delivery. Returns received payloads as (source, payload) pairs in
/// deterministic order (by source, then FIFO).
std::vector<std::pair<NodeId, Word>> route_direct(
    NodeCtx& ctx, const std::vector<RoutedMessage>& messages);

/// Two-phase balanced delivery (see header comment). Received pairs report
/// the *original* source and are sorted by source; unlike route_direct the
/// relative order of several messages from the same source is a
/// deterministic function of the relay schedule, not the submission order —
/// callers that need sequencing must encode it in the payload.
std::vector<std::pair<NodeId, Word>> route_balanced(
    NodeCtx& ctx, const std::vector<RoutedMessage>& messages);

/// A multi-word message routed atomically.
struct RoutedBlock {
  NodeId dst;
  BitVector payload;
};

/// Balanced two-phase routing of whole blocks: each block travels framed
/// ([dst|src] header, sequence number, word count, payload words), so block
/// boundaries and content survive relaying; blocks are striped across
/// intermediaries block-wise. Received blocks are sorted by (source,
/// submission order at the source). This is the collective behind the
/// Theorem 9 pattern, where every block is one adjacency row.
/// Requires every block's word count to be < n (true for row-sized blocks).
std::vector<std::pair<NodeId, BitVector>> route_blocks(
    NodeCtx& ctx, const std::vector<RoutedBlock>& blocks);

}  // namespace ccq
