#pragma once

// Message words.
//
// In the congested clique each node may send one O(log n)-bit message per
// ordered pair per round (§3 of the paper; we normalise to exactly
// B = ⌈log₂n⌉·c bits, with the constant c folded out of asymptotics exactly
// as the paper folds constants into running time). A Word is one such
// message: a value plus its declared bit width. The engine rejects any word
// wider than the per-run bandwidth — this check is the model's integrity.

#include <cstdint>
#include <span>
#include <vector>

#include "util/bit_vector.hpp"
#include "util/check.hpp"
#include "util/math.hpp"

namespace ccq {

struct Word {
  std::uint64_t value = 0;
  unsigned bits = 0;

  Word() = default;
  Word(std::uint64_t v, unsigned b) : value(v), bits(b) {
    CCQ_CHECK_MSG(b <= 64, "Word wider than 64 bits");
    if (b < 64)
      CCQ_CHECK_MSG(v < (std::uint64_t{1} << b),
                    "Word value " << v << " does not fit in " << b
                                  << " bits");
  }

  bool operator==(const Word& o) const {
    return value == o.value && bits == o.bits;
  }
};

/// Bit width needed to name any node of an n-node clique (≥1).
inline unsigned node_id_bits(std::uint32_t n) {
  return n <= 1 ? 1 : ceil_log2(n);
}

/// Split a bit vector into words of at most `word_bits` bits (LSB-first).
std::vector<Word> encode_bits(const BitVector& bv, unsigned word_bits);

/// Reassemble; `total_bits` is the original length. The span form accepts
/// views straight into a message-plane inbox arena (NodeCtx::exchange_flat)
/// without materialising a vector.
BitVector decode_words(std::span<const Word> words, std::size_t total_bits);
inline BitVector decode_words(const std::vector<Word>& words,
                              std::size_t total_bits) {
  return decode_words(std::span<const Word>(words), total_bits);
}

}  // namespace ccq
