#pragma once

// Deterministic fault injection for the message plane (the "chaos" layer).
//
// The nondeterministic results (§5–§8) are only as strong as their soundness
// direction: a verifier that accepts a corrupted certificate silently
// falsifies every hierarchy experiment built on it. Nothing in the honest
// engine ever feeds a verifier adversarial traffic, so this layer wraps
// either MessagePlane (Engine::Config::chaos, attached exactly like the
// round trace) and corrupts deposits before delivery:
//
//   * kFlip      — flip one uniformly chosen bit of a word;
//   * kDrop      — deliver the word as zero (width preserved, so framing
//                  survives and the corruption is semantic, not structural);
//   * kDuplicate — deliver the word twice (the duplicate is charged like
//                  any other word: faults are visible to the cost meter);
//   * kByzantine — every outgoing word of a marked node is replaced by an
//                  Adversary callback (default: a seeded uniform value).
//
// Every fault decision is a pure function of (plan seed, collective index,
// src, dst, word position): one SplitMix64 stream per (collective, src, dst)
// ordered pair, drawn in word order. That makes fault schedules bit-for-bit
// reproducible across planes, backends and worker counts — the same
// structural-determinism argument the planes themselves rely on — and lets a
// failing campaign trial be replayed from four integers.
//
// Words a node queues to itself never touch the network and are never
// faulted. Corruption happens at deposit time into chaos-owned queues (the
// wrapped plane validates the corrupted traffic exactly as it would honest
// traffic), and the per-node fault events are flushed into the plan's
// ledger by the serial leader in node-id order, so the ledger is
// deterministic too. The wrapper copies every outbox, which is fine: chaos
// is a correctness instrument for tests and the soundness campaign, not a
// production path.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "clique/msgplane.hpp"

namespace ccq {

enum class FaultKind : std::uint8_t {
  kFlip = 0,
  kDrop = 1,
  kDuplicate = 2,
  kByzantine = 3,
};
constexpr unsigned kFaultKinds = 4;
const char* fault_kind_name(FaultKind k);

/// One injected fault, as recorded in the plan's ledger.
struct FaultEvent {
  FaultKind kind = FaultKind::kFlip;
  std::uint64_t collective = 0;  ///< 0-based collective index within a run
  NodeId src = 0;
  NodeId dst = 0;
  /// Word position in the (src→dst) queue. 64-bit: queue lengths are
  /// size_t and the legacy plane accepts queues past 2³² words, so a
  /// narrower index would silently alias distinct fault positions.
  std::uint64_t index = 0;
  unsigned bit = 0;  ///< kFlip only: which bit was flipped
  Word before;
  Word after;

  bool operator==(const FaultEvent& o) const {
    return kind == o.kind && collective == o.collective && src == o.src &&
           dst == o.dst && index == o.index && bit == o.bit &&
           before == o.before && after == o.after;
  }
};

/// What a pluggable adversary sees when replacing one outgoing word of a
/// byzantine node. `rng` is the word's deterministic draw, so an adversary
/// built on it stays reproducible.
struct AdversaryView {
  std::uint64_t collective = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t index = 0;
  Word original;
  std::uint64_t rng = 0;
};

/// Returns the replacement value for a byzantine node's outgoing word. The
/// value is clamped to the original word's declared width (a byzantine node
/// can lie about content, not violate the bandwidth model — over-wide words
/// would be rejected by the wrapped plane, turning every attack into a
/// trivial ModelViolation instead of a soundness probe).
using Adversary = std::function<std::uint64_t(const AdversaryView&)>;

/// A fault schedule plus its ledger. Attach via Engine::Config::chaos or
/// process-wide via chaos::set_global (mirroring trace::set_global); a plan
/// already driving another run is skipped (the run executes fault-free)
/// rather than interleaved, and the ledger accumulates across sequential
/// runs until clear().
class ChaosPlan {
 public:
  struct Config {
    std::uint64_t seed = 0xc4a05u;
    double p_flip = 0.0;
    double p_drop = 0.0;
    double p_dup = 0.0;
    /// Nodes whose every outgoing word is replaced by `adversary`.
    std::vector<NodeId> byzantine;
    /// Null = seeded uniform replacement values.
    Adversary adversary;
    /// Ledger size cap; counts stay exact past it (ledger_overflow()).
    std::size_t max_ledger = std::size_t{1} << 20;
  };

  ChaosPlan() = default;
  explicit ChaosPlan(Config cfg) : cfg_(std::move(cfg)) {}

  const Config& config() const { return cfg_; }
  const std::vector<FaultEvent>& ledger() const { return ledger_; }
  std::uint64_t fault_count(FaultKind k) const {
    return counts_[static_cast<unsigned>(k)];
  }
  std::uint64_t total_faults() const {
    std::uint64_t t = 0;
    for (unsigned i = 0; i < kFaultKinds; ++i) t += counts_[i];
    return t;
  }
  /// Faults counted but not ledgered once max_ledger was reached.
  std::uint64_t ledger_overflow() const { return overflow_; }
  void clear() {
    ledger_.clear();
    counts_ = {};
    overflow_ = 0;
  }

  /// Single-run guard (same protocol as RoundTrace::try_acquire): the
  /// engine acquires the plan for the duration of one run and releases it
  /// on every exit path.
  bool try_acquire() {
    bool expected = false;
    return in_use_.compare_exchange_strong(expected, true);
  }
  void release() { in_use_.store(false); }

 private:
  friend class ChaosPlane;  // leader-side ledger flush
  void record(const FaultEvent& e) {
    counts_[static_cast<unsigned>(e.kind)] += 1;
    if (ledger_.size() < cfg_.max_ledger) {
      ledger_.push_back(e);
    } else {
      overflow_ += 1;
    }
  }

  Config cfg_;
  std::vector<FaultEvent> ledger_;
  std::array<std::uint64_t, kFaultKinds> counts_{};
  std::uint64_t overflow_ = 0;
  std::atomic<bool> in_use_{false};
};

namespace chaos {
/// Process-wide default plan picked up by every Engine::run whose config
/// carries no explicit plan (benches' fault campaigns). Not thread-safe
/// against concurrent set_global; runs racing on one plan are serialised by
/// try_acquire (the loser executes fault-free).
void set_global(ChaosPlan* plan);
ChaosPlan* global();
}  // namespace chaos

namespace detail {
/// Wrap `inner` so every deposited word passes through `plan`'s fault
/// schedule before delivery. The wrapper *borrows* `inner` — both `inner`
/// and `plan` must outlive the returned plane. (Borrowing is what lets an
/// EngineSession keep its warm plane across chaos and chaos-free runs.)
std::unique_ptr<MessagePlane> wrap_chaos(MessagePlane* inner,
                                         ChaosPlan* plan);
}  // namespace detail

}  // namespace ccq
