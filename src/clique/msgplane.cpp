#include "clique/msgplane.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace ccq {

// Sole builder of FlatInbox views (friend of FlatInbox): keeps the view's
// raw pointers constructible only by the planes in this translation unit.
class FlatInboxAccess {
 public:
  static FlatInbox flat(const Word* words, const std::uint32_t* cursor,
                        const std::uint32_t* counts, NodeId self, NodeId n) {
    FlatInbox ib;
    ib.words_ = words;
    ib.cursor_ = cursor;
    ib.counts_ = counts;
    ib.self_ = self;
    ib.n_ = n;
    return ib;
  }
  static FlatInbox legacy(const Word* words, const std::uint64_t* starts,
                          NodeId self, NodeId n) {
    FlatInbox ib;
    ib.words_ = words;
    ib.starts_ = starts;
    ib.self_ = self;
    ib.n_ = n;
    return ib;
  }
};

namespace detail {
namespace {

// Per-source totals computed during the deposit scan; the leader folds them
// in node-id order, so the meter never depends on scheduling.
struct NodeStats {
  std::uint64_t msgs = 0;     // words to other nodes (self excluded)
  std::uint64_t bits = 0;     // their total bit width
  std::uint64_t row_max = 0;  // longest non-self queue (rounds to drain)
};

#define CCQ_BANDWIDTH_CHECK(self, dst, w, bandwidth)                       \
  CCQ_CHECK_MSG((w).bits <= (bandwidth),                                   \
                "bandwidth violation: node " << (self) << " sent a "       \
                                             << (w).bits                   \
                                             << "-bit word to node "       \
                                             << (dst) << " but B = "       \
                                             << (bandwidth))

// ---------------------------------------------------------------------------
// LegacyPlane: the original per-ordered-pair vector queues, kept as the
// auditable baseline. Deposits validate + meter in one scan (instead of the
// old separate validate_words pass); delivery reuses inbox queue capacity
// (clear(), not assign(n, {})) and moves the self queue when the caller
// handed its outbox over by rvalue.
// ---------------------------------------------------------------------------
class LegacyPlane final : public MessagePlane {
 public:
  MessagePlaneKind kind() const override { return MessagePlaneKind::kLegacy; }

  void init(NodeId n, unsigned bandwidth) override {
    n_ = n;
    bandwidth_ = bandwidth;
    out_slots_.assign(n, nullptr);
    movable_.assign(n, 0);
    own_out_.resize(n);
    in_slots_.resize(n);
    stats_.assign(n, {});
    in_totals_.assign(n, 0);
    inbox_built_.assign(n, 0);
    inbox_words_.resize(n);
    inbox_starts_.resize(n);
  }

  void deposit_queues(NodeId self, const WordQueues* out,
                      bool movable) override {
    CCQ_CHECK_MSG(out->size() == n_, "outbox must have one queue per node");
    NodeStats s;
    for (NodeId dst = 0; dst < n_; ++dst) {
      const auto& q = (*out)[dst];
      // Same per-pair cap the flat plane enforces: the planes must accept
      // and reject identical outboxes, and downstream consumers (the chaos
      // ledger's word index, the flat-view conversion) assume it.
      CCQ_CHECK_MSG(q.size() <= 0xffffffffull,
                    "queue to node " << dst << " exceeds 2^32 words");
      if (dst == self || q.empty()) continue;  // self-delivery is free
      for (const Word& w : q) {
        CCQ_BANDWIDTH_CHECK(self, dst, w, bandwidth_);
        s.bits += w.bits;
      }
      s.msgs += q.size();
      s.row_max = std::max<std::uint64_t>(s.row_max, q.size());
    }
    stats_[self] = s;
    out_slots_[self] = out;
    movable_[self] = movable ? 1 : 0;
  }

  void deposit_pairs(NodeId self,
                     std::span<const std::pair<NodeId, Word>> out,
                     bool unique_dst) override {
    CCQ_CHECK_MSG(out.size() <= 0xffffffffull,
                  "deposit exceeds 2^32 words");
    WordQueues& qs = own_out_[self];
    qs.resize(n_);
    for (auto& q : qs) q.clear();
    NodeStats s;
    for (const auto& [dst, w] : out) {
      if (unique_dst) {
        CCQ_CHECK_MSG(dst < n_, "round(): destination out of range");
        CCQ_CHECK_MSG(dst != self, "round(): no self-messages in round()");
        CCQ_CHECK_MSG(qs[dst].empty(),
                      "round(): at most one word per destination per round");
      } else {
        CCQ_CHECK_MSG(dst < n_, "exchange_flat: destination out of range");
      }
      qs[dst].push_back(w);
      if (dst != self) {
        CCQ_BANDWIDTH_CHECK(self, dst, w, bandwidth_);
        s.bits += w.bits;
        s.msgs += 1;
        s.row_max = std::max<std::uint64_t>(s.row_max, qs[dst].size());
      }
    }
    stats_[self] = s;
    out_slots_[self] = &qs;
    movable_[self] = 1;  // plane-owned outbox: moving the self queue is fine
  }

  void deposit_broadcast(NodeId self, std::span<const Word> words) override {
    CCQ_CHECK_MSG(words.size() <= 0xffffffffull,
                  "broadcast exceeds 2^32 words");
    std::uint64_t wbits = 0;
    for (const Word& w : words) {
      CCQ_CHECK_MSG(w.bits <= bandwidth_,
                    "bandwidth violation: node "
                        << self << " broadcast a " << w.bits
                        << "-bit word but B = " << bandwidth_);
      wbits += w.bits;
    }
    WordQueues& qs = own_out_[self];
    qs.resize(n_);
    for (auto& q : qs) q.clear();
    for (NodeId v = 0; v < n_; ++v) {
      if (v == self) continue;
      qs[v].assign(words.begin(), words.end());
    }
    NodeStats s;
    if (n_ > 1 && !words.empty()) {
      s.msgs = static_cast<std::uint64_t>(n_ - 1) * words.size();
      s.bits = static_cast<std::uint64_t>(n_ - 1) * wbits;
      s.row_max = words.size();
    }
    stats_[self] = s;
    out_slots_[self] = &qs;
    movable_[self] = 1;
  }

  void deliver(Scheduler& /*sched*/, DeliveryAccounting& acc) override {
    for (NodeId u = 0; u < n_; ++u) {
      const NodeStats& s = stats_[u];
      acc.max_queue = std::max(acc.max_queue, s.row_max);
      acc.messages += s.msgs;
      acc.bits += s.bits;
      acc.sent_words[u] += s.msgs;
    }
    for (NodeId v = 0; v < n_; ++v) {
      in_slots_[v].resize(n_);
      for (auto& q : in_slots_[v]) q.clear();
      in_totals_[v] = 0;
      inbox_built_[v] = 0;
    }
    for (NodeId u = 0; u < n_; ++u) {
      const WordQueues& out = *out_slots_[u];
      for (NodeId v = 0; v < n_; ++v) {
        if (out[v].empty()) continue;
        if (u != v) {
          acc.received_words[v] += out[v].size();
          in_totals_[v] += out[v].size();
          in_slots_[v][u] = out[v];
        } else if (movable_[u]) {
          // Caller relinquished the outbox (rvalue / plane-owned): the self
          // queue need not survive delivery, so steal it instead of copying.
          in_slots_[u][u] = std::move(const_cast<WordQueues&>(out)[u]);
        } else {
          in_slots_[u][u] = out[u];
        }
      }
    }
    for (NodeId v = 0; v < n_; ++v) {
      acc.max_node_in = std::max(acc.max_node_in, in_totals_[v]);
    }
  }

  FlatInbox inbox(NodeId self) override {
    if (!inbox_built_[self]) {
      const WordQueues& in = in_slots_[self];
      auto& starts = inbox_starts_[self];
      auto& words = inbox_words_[self];
      starts.resize(static_cast<std::size_t>(n_) + 1);
      starts[0] = 0;
      const bool have = in.size() == n_;
      for (NodeId u = 0; u < n_; ++u) {
        starts[u + 1] = starts[u] + (have ? in[u].size() : 0);
      }
      words.resize(starts[n_]);
      for (NodeId u = 0; u < n_; ++u) {
        if (have && !in[u].empty()) {
          std::copy(in[u].begin(), in[u].end(), words.begin() + starts[u]);
        }
      }
      inbox_built_[self] = 1;
    }
    return FlatInboxAccess::legacy(inbox_words_[self].data(),
                                   inbox_starts_[self].data(), self, n_);
  }

  WordQueues take_queues(NodeId self) override {
    return std::move(in_slots_[self]);
  }

 private:
  NodeId n_ = 0;
  unsigned bandwidth_ = 0;
  std::vector<const WordQueues*> out_slots_;
  std::vector<std::uint8_t> movable_;
  std::vector<WordQueues> own_out_;  // backing for pair/broadcast deposits
  std::vector<WordQueues> in_slots_;
  std::vector<NodeStats> stats_;
  std::vector<std::uint64_t> in_totals_;  // per-collective inbox words
  // Lazy flat views for exchange_flat()/round_flat() callers.
  std::vector<std::uint8_t> inbox_built_;
  std::vector<std::vector<Word>> inbox_words_;
  std::vector<std::vector<std::uint64_t>> inbox_starts_;
};

// ---------------------------------------------------------------------------
// FlatPlane: arena-backed counting-sort delivery.
//
// Deposits record a pointer to the node's outbox and fill the node's row of
// a [src][dst] histogram (validating bandwidth in the same scan). Delivery
// runs entirely over persisted arrays:
//
//   1. fold per-source stats into the meter, in id order (serial, O(n));
//   2. column sums → words per destination, and received_words (parallel
//      over destination chunks);
//   3. exclusive prefix over destinations → each destination's base offset
//      in the shared arena (serial, O(n));
//   4. per-pair cursors: cursor[u][v] = base[v] + Σ_{u'<u} counts[u'][v],
//      i.e. where source u's run for destination v starts (parallel over
//      destination chunks — each chunk walks its columns top-down);
//   5. scatter: each source copies its words through its cursor row, leaving
//      every cursor one past the end of its run (parallel over source
//      chunks). FlatInbox recovers a run as [cursor - count, cursor).
//
// Every parallel pass writes data partitioned by node id, and every serial
// reduction iterates in id order, so results are bit-identical for any
// worker count and any backend.
//
// Delivery is block-sparse: the [src][dst] histogram is tiled into
// kChunk×kChunk shard blocks, each deposit records which destination
// chunks its row touches (one bit per chunk), and deliver() folds the row
// masks into per-source-block masks. The column-sum and cursor passes then
// skip blocks no deposit touched, so a sparse collective (a ring exchange
// at n = 8192, say) costs O(touched blocks) instead of O(n²) histogram
// reads. Skipped cursor entries keep stale values — sound because their
// counts are zero and FlatInbox::from returns an empty span without
// reading the cursor when the count is zero. Mask invariant, on which all
// of this rests: a clear chunk bit implies every count in that chunk of
// the row is zero (bits may over-approximate the other way).
//
// The histogram is double-buffered: a node may deposit for collective k+1
// while a straggler still reads its collective-k inbox (whose FlatInbox
// dereferences the *delivered* histogram), so deposits must not scribble on
// the buffer backing live inboxes. The arena and cursors need no buffering:
// they are rewritten only inside deliver(), which runs after every node has
// parked — no inbox from the previous collective can still be read.
// ---------------------------------------------------------------------------
class FlatPlane final : public MessagePlane {
 public:
  MessagePlaneKind kind() const override { return MessagePlaneKind::kFlat; }

  void init(NodeId n, unsigned bandwidth) override {
    n_ = n;
    bandwidth_ = bandwidth;
    parity_ = 0;
    read_parity_ = 0;
    const std::size_t nn = static_cast<std::size_t>(n) * n;
    counts_[0].assign(nn, 0);
    counts_[1].assign(nn, 0);
    cursor_.assign(nn, 0);
    col_base_.assign(static_cast<std::size_t>(n) + 1, 0);
    stats_.assign(n, {});
    deposits_.assign(n, {});
    mask_words_ = (num_chunks() + 63) / 64;
    touch_[0].assign(static_cast<std::size_t>(n) * mask_words_, 0);
    touch_[1].assign(static_cast<std::size_t>(n) * mask_words_, 0);
    block_touch_.assign(num_chunks() * mask_words_, 0);
  }

  void deposit_queues(NodeId self, const WordQueues* out,
                      bool /*movable*/) override {
    CCQ_CHECK_MSG(out->size() == n_, "outbox must have one queue per node");
    std::uint32_t* cnt = row(self);
    std::uint64_t* m = mask(self);
    std::fill_n(m, mask_words_, std::uint64_t{0});
    NodeStats s;
    for (NodeId dst = 0; dst < n_; ++dst) {
      const auto& q = (*out)[dst];
      // Guard before the narrowing cast: a >= 2^32-word queue would wrap the
      // histogram entry and slip past deliver()'s total-words check.
      CCQ_CHECK_MSG(q.size() <= 0xffffffffull,
                    "queue to node " << dst << " exceeds 2^32 words");
      cnt[dst] = static_cast<std::uint32_t>(q.size());
      if (!q.empty()) set_touch(m, dst);  // self runs live in the arena too
      if (dst == self || q.empty()) continue;  // self-delivery is free
      for (const Word& w : q) {
        CCQ_BANDWIDTH_CHECK(self, dst, w, bandwidth_);
        s.bits += w.bits;
      }
      s.msgs += q.size();
      s.row_max = std::max<std::uint64_t>(s.row_max, q.size());
    }
    stats_[self] = s;
    deposits_[self] = Deposit{Deposit::kQueues, out, nullptr, nullptr, 0};
  }

  void deposit_pairs(NodeId self,
                     std::span<const std::pair<NodeId, Word>> out,
                     bool unique_dst) override {
    // Per-destination counts are bounded by the deposit size, so one check
    // keeps every histogram increment below the uint32 wrap.
    CCQ_CHECK_MSG(out.size() <= 0xffffffffull,
                  "deposit exceeds 2^32 words");
    std::uint32_t* cnt = row(self);
    std::uint64_t* m = mask(self);
    // Zero only the chunks this row touched the last time it used this
    // buffer (the mask invariant says the rest already are) — a sparse
    // deposit costs O(sends + touched chunks), not O(n).
    clear_touched(cnt, m);
    NodeStats s;
    for (const auto& [dst, w] : out) {
      if (unique_dst) {
        CCQ_CHECK_MSG(dst < n_, "round(): destination out of range");
        CCQ_CHECK_MSG(dst != self, "round(): no self-messages in round()");
        CCQ_CHECK_MSG(cnt[dst] == 0,
                      "round(): at most one word per destination per round");
      } else {
        CCQ_CHECK_MSG(dst < n_, "exchange_flat: destination out of range");
      }
      ++cnt[dst];
      set_touch(m, dst);
      if (dst != self) {
        CCQ_BANDWIDTH_CHECK(self, dst, w, bandwidth_);
        s.bits += w.bits;
        s.msgs += 1;
        s.row_max = std::max<std::uint64_t>(s.row_max, cnt[dst]);
      }
    }
    stats_[self] = s;
    deposits_[self] =
        Deposit{Deposit::kPairs, nullptr, out.data(), nullptr, out.size()};
  }

  void deposit_broadcast(NodeId self, std::span<const Word> words) override {
    std::uint64_t wbits = 0;
    for (const Word& w : words) {
      CCQ_CHECK_MSG(w.bits <= bandwidth_,
                    "bandwidth violation: node "
                        << self << " broadcast a " << w.bits
                        << "-bit word but B = " << bandwidth_);
      wbits += w.bits;
    }
    std::uint32_t* cnt = row(self);
    CCQ_CHECK_MSG(words.size() <= 0xffffffffull,
                  "broadcast exceeds 2^32 words");
    const std::uint32_t k = static_cast<std::uint32_t>(words.size());
    std::fill_n(cnt, n_, k);
    cnt[self] = 0;
    // Dense row: every chunk is (over-approximately, around self) touched.
    std::uint64_t* m = mask(self);
    if (k > 0) {
      fill_all_touched(m);
    } else {
      std::fill_n(m, mask_words_, std::uint64_t{0});
    }
    NodeStats s;
    if (n_ > 1 && k > 0) {
      s.msgs = static_cast<std::uint64_t>(n_ - 1) * k;
      s.bits = static_cast<std::uint64_t>(n_ - 1) * wbits;
      s.row_max = k;
    }
    stats_[self] = s;
    deposits_[self] =
        Deposit{Deposit::kBcast, nullptr, nullptr, words.data(), words.size()};
  }

  void deliver(Scheduler& sched, DeliveryAccounting& acc) override {
    const std::uint32_t* cnt = counts_[parity_].data();
    for (NodeId u = 0; u < n_; ++u) {
      const NodeStats& s = stats_[u];
      acc.max_queue = std::max(acc.max_queue, s.row_max);
      acc.messages += s.msgs;
      acc.bits += s.bits;
      acc.sent_words[u] += s.msgs;
    }

    const std::size_t chunks = num_chunks();
    // Pass 1.5: fold the per-source touch masks into per-source-block masks
    // (OR over each kChunk-source block). Serial and O(n · maskwords) —
    // cheap next to what it lets passes 2 and 4 skip.
    {
      std::fill(block_touch_.begin(), block_touch_.end(), std::uint64_t{0});
      const std::uint64_t* tm = touch_[parity_].data();
      for (NodeId u = 0; u < n_; ++u) {
        std::uint64_t* bt = block_touch_.data() + (u / kChunk) * mask_words_;
        const std::uint64_t* rm = tm + static_cast<std::size_t>(u) * mask_words_;
        for (std::size_t i = 0; i < mask_words_; ++i) bt[i] |= rm[i];
      }
    }

    // Pass 2: column sums + received_words, chunked by destination; source
    // blocks that deposited nothing for this destination chunk are skipped
    // wholesale (the shard×shard block-sparse walk).
    sched.leader_parallel_for(chunks, [&](std::size_t c) {
      const NodeId v0 = chunk_begin(c), v1 = chunk_end(c);
      std::fill(col_base_.begin() + v0 + 1, col_base_.begin() + v1 + 1,
                std::uint64_t{0});
      const std::size_t cw = c >> 6;
      const std::uint64_t cb = std::uint64_t{1} << (c & 63);
      for (std::size_t b = 0; b < chunks; ++b) {
        if (!(block_touch_[b * mask_words_ + cw] & cb)) continue;
        const NodeId u0 = chunk_begin(b), u1 = chunk_end(b);
        for (NodeId u = u0; u < u1; ++u) {
          const std::uint32_t* r = cnt + static_cast<std::size_t>(u) * n_;
          for (NodeId v = v0; v < v1; ++v) col_base_[v + 1] += r[v];
        }
      }
      for (NodeId v = v0; v < v1; ++v) {
        acc.received_words[v] +=
            col_base_[v + 1] - cnt[static_cast<std::size_t>(v) * n_ + v];
      }
    });

    // Pass 3: exclusive prefix → per-destination arena base. Before the
    // prefix folds it away, col_base_[v + 1] is still v's raw column sum,
    // so the receiver-side max (self run excluded) falls out for free.
    col_base_[0] = 0;
    for (NodeId v = 0; v < n_; ++v) {
      acc.max_node_in = std::max(
          acc.max_node_in,
          col_base_[v + 1] - cnt[static_cast<std::size_t>(v) * n_ + v]);
      col_base_[v + 1] += col_base_[v];
    }
    const std::uint64_t total = col_base_[n_];
    CCQ_CHECK_MSG(total <= 0xffffffffull,
                  "collective exceeds 2^32 words in flight");
    if (arena_.size() < total) arena_.resize(total);

    // Pass 4: per-pair start cursors, chunked by destination. Each chunk
    // keeps a running cursor per column (seeded from the arena bases) and
    // walks only the touched source blocks top-down. An untouched block's
    // counts are all zero (mask invariant), so the running cursors pass over
    // it unchanged; its cursor entries keep stale values, which are never
    // read (count == 0 ⇒ FlatInbox::from returns early).
    sched.leader_parallel_for(chunks, [&](std::size_t c) {
      const NodeId v0 = chunk_begin(c), v1 = chunk_end(c);
      const std::size_t cw = c >> 6;
      const std::uint64_t cb = std::uint64_t{1} << (c & 63);
      std::uint32_t run[kChunk];
      for (NodeId v = v0; v < v1; ++v) {
        run[v - v0] = static_cast<std::uint32_t>(col_base_[v]);
      }
      for (std::size_t b = 0; b < chunks; ++b) {
        if (!(block_touch_[b * mask_words_ + cw] & cb)) continue;
        const NodeId u0 = chunk_begin(b), u1 = chunk_end(b);
        for (NodeId u = u0; u < u1; ++u) {
          const std::size_t base = static_cast<std::size_t>(u) * n_;
          for (NodeId v = v0; v < v1; ++v) {
            cursor_[base + v] = run[v - v0];
            run[v - v0] += cnt[base + v];
          }
        }
      }
    });

    // Pass 5: scatter, chunked by source; cursors finish one past the end
    // of each run.
    sched.leader_parallel_for(chunks, [&](std::size_t c) {
      const NodeId u0 = chunk_begin(c), u1 = chunk_end(c);
      for (NodeId u = u0; u < u1; ++u) scatter(u);
    });

    read_parity_ = parity_;
    parity_ ^= 1;
  }

  FlatInbox inbox(NodeId self) override {
    return FlatInboxAccess::flat(arena_.data(), cursor_.data(),
                                 counts_[read_parity_].data(), self, n_);
  }

  WordQueues take_queues(NodeId self) override {
    WordQueues qs(n_);
    const std::uint32_t* cnts = counts_[read_parity_].data();
    for (NodeId u = 0; u < n_; ++u) {
      const std::size_t i = static_cast<std::size_t>(u) * n_ + self;
      const std::uint32_t c = cnts[i];
      if (c == 0) continue;
      const Word* end = arena_.data() + cursor_[i];
      qs[u].assign(end - c, end);  // exact-size allocation per inbox queue
    }
    return qs;
  }

 private:
  struct Deposit {
    enum Kind : std::uint8_t { kQueues, kPairs, kBcast } kind = kQueues;
    const WordQueues* queues = nullptr;
    const std::pair<NodeId, Word>* pairs = nullptr;
    const Word* bcast = nullptr;
    std::size_t count = 0;  // pairs / broadcast words
  };

  static constexpr NodeId kChunk = 32;  // nodes per parallel chunk
  std::size_t num_chunks() const { return (n_ + kChunk - 1) / kChunk; }
  NodeId chunk_begin(std::size_t c) const {
    return static_cast<NodeId>(c * kChunk);
  }
  NodeId chunk_end(std::size_t c) const {
    return static_cast<NodeId>(
        std::min<std::size_t>(n_, (c + 1) * kChunk));
  }
  std::uint32_t* row(NodeId u) {
    return counts_[parity_].data() + static_cast<std::size_t>(u) * n_;
  }
  std::uint64_t* mask(NodeId u) {
    return touch_[parity_].data() + static_cast<std::size_t>(u) * mask_words_;
  }
  static void set_touch(std::uint64_t* m, NodeId dst) {
    const std::size_t c = dst / kChunk;
    m[c >> 6] |= std::uint64_t{1} << (c & 63);
  }
  /// Dense-row mask: every valid chunk bit set. The tail bits of the last
  /// word stay clear — clear_touched walks set bits as chunk indices, so a
  /// spurious bit would name a chunk past the histogram row.
  void fill_all_touched(std::uint64_t* m) const {
    std::fill_n(m, mask_words_, ~std::uint64_t{0});
    const unsigned tail = static_cast<unsigned>(num_chunks() & 63);
    if (tail != 0) m[mask_words_ - 1] = (std::uint64_t{1} << tail) - 1;
  }
  /// Zero exactly the count chunks the mask marks, then the mask itself —
  /// restoring the invariant "clear bit ⇒ all-zero chunk" for this row.
  void clear_touched(std::uint32_t* cnt, std::uint64_t* m) {
    for (std::size_t w = 0; w < mask_words_; ++w) {
      std::uint64_t bits = m[w];
      m[w] = 0;
      while (bits != 0) {
        const auto b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t c = (w << 6) + b;
        std::fill_n(cnt + chunk_begin(c),
                    static_cast<std::size_t>(chunk_end(c) - chunk_begin(c)),
                    std::uint32_t{0});
      }
    }
  }

  void scatter(NodeId u) {
    std::uint32_t* cur = cursor_.data() + static_cast<std::size_t>(u) * n_;
    Word* arena = arena_.data();
    const Deposit& d = deposits_[u];
    switch (d.kind) {
      case Deposit::kQueues:
        for (NodeId v = 0; v < n_; ++v) {
          const auto& q = (*d.queues)[v];
          if (q.empty()) continue;
          std::copy(q.begin(), q.end(), arena + cur[v]);
          cur[v] += static_cast<std::uint32_t>(q.size());
        }
        break;
      case Deposit::kPairs:
        for (std::size_t i = 0; i < d.count; ++i) {
          arena[cur[d.pairs[i].first]++] = d.pairs[i].second;
        }
        break;
      case Deposit::kBcast:
        for (NodeId v = 0; v < n_; ++v) {
          if (v == u) continue;
          std::copy(d.bcast, d.bcast + d.count, arena + cur[v]);
          cur[v] += static_cast<std::uint32_t>(d.count);
        }
        break;
    }
  }

  NodeId n_ = 0;
  unsigned bandwidth_ = 0;
  int parity_ = 0;       // histogram buffer receiving deposits
  int read_parity_ = 0;  // histogram buffer backing delivered inboxes
  std::vector<Deposit> deposits_;
  std::vector<NodeStats> stats_;
  std::vector<std::uint32_t> counts_[2];  // [src * n + dst], double-buffered
  std::vector<std::uint32_t> cursor_;     // [src * n + dst]
  std::vector<std::uint64_t> col_base_;   // [n + 1] arena base per dst
  std::vector<Word> arena_;               // shared flat inbox storage
  // Block-sparse tiling (see class comment): per-row destination-chunk
  // touch masks, double-buffered in lockstep with counts_, plus the
  // per-source-block fold deliver() rebuilds each collective.
  std::size_t mask_words_ = 0;              // ceil(num_chunks / 64)
  std::vector<std::uint64_t> touch_[2];     // [src * mask_words + w]
  std::vector<std::uint64_t> block_touch_;  // [src_chunk * mask_words + w]
};

#undef CCQ_BANDWIDTH_CHECK

}  // namespace

std::unique_ptr<MessagePlane> make_message_plane(MessagePlaneKind kind) {
  if (kind == MessagePlaneKind::kLegacy) {
    return std::make_unique<LegacyPlane>();
  }
  return std::make_unique<FlatPlane>();
}

}  // namespace detail
}  // namespace ccq
