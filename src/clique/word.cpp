#include "clique/word.hpp"

namespace ccq {

std::vector<Word> encode_bits(const BitVector& bv, unsigned word_bits) {
  CCQ_CHECK(word_bits >= 1 && word_bits <= 64);
  std::vector<Word> out;
  out.reserve(ceil_div(bv.size(), word_bits));
  for (std::size_t pos = 0; pos < bv.size(); pos += word_bits) {
    const unsigned take = static_cast<unsigned>(
        std::min<std::size_t>(word_bits, bv.size() - pos));
    out.emplace_back(bv.read_bits(pos, take), take);
  }
  return out;
}

BitVector decode_words(std::span<const Word> words, std::size_t total_bits) {
  BitVector bv;
  for (const Word& w : words) bv.append_bits(w.value, w.bits);
  CCQ_CHECK_MSG(bv.size() == total_bits,
                "decode_words: got " << bv.size() << " bits, expected "
                                     << total_bits);
  return bv;
}

}  // namespace ccq
