#pragma once

// Round-trace observability (ccq::RoundTrace).
//
// The cost meter (clique/cost.hpp) is the paper's instrument — but it is an
// aggregate: it says *how many* rounds and bits a protocol spent, never
// *where*. The round trace is the per-collective ledger behind the meter:
// one TraceRecord per engine collective (the engine's metering quantum —
// a collective charges 1..k model rounds), carrying
//
//   * the rounds/messages/bits that collective contributed to the meter
//     (summing any field over records reproduces the CostMeter total
//     exactly — asserted by tests and by every bench run with --trace);
//   * per-node traffic shape: max words sent / received by any one node in
//     this collective, plus log₂-bucketed histograms of both distributions
//     (the quantities Lenzen-style routing arguments are stated in);
//   * bandwidth-cap utilisation: bits actually moved vs the model's
//     rounds · n(n−1) · B capacity for the rounds charged;
//   * protocol-phase labels from CCQ_TRACE_SPAN scopes in node code;
//   * observability-only scheduler/plane occupancy: delivery wall-time,
//     fiber switches, leader_parallel_for jobs/chunks.
//
// Determinism contract: every field above the "observability-only" line is
// a pure function of (program, instance, config.bandwidth_multiplier,
// seed) — identical across {kLegacy, kFlat} planes, {kPooled, kSharded,
// kThreadPerNode} backends, and worker/shard counts. deterministic_eq()
// compares exactly that subset; the occupancy fields are wall-clock /
// backend-shaped and excluded. tests/clique/trace_test.cpp pins the
// contract on randomized traffic.
//
// Cost contract: a compiled-in but *disabled* trace (Engine::Config::trace
// == nullptr and no global trace installed) costs one pointer test per
// collective on the leader path and one per span push/pop in node code —
// nothing per deposited word. All per-node scans and allocations happen
// only when a trace is attached. bench_exchange carries the overhead gate.
//
// Exports: write_jsonl() (one self-describing JSON object per line; schema
// below, round-trips through load_jsonl) and write_chrome() (Trace Event
// Format, loadable in chrome://tracing / Perfetto: collectives on one lane
// per run, spans on one lane per node, 1 µs ≡ 1 model round).

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "clique/cost.hpp"
#include "graph/graph.hpp"

namespace ccq {

/// Log₂-bucketed distribution of a per-node word count. Bucket 0 counts
/// nodes with 0 words; bucket i ≥ 1 counts nodes with count in
/// [2^(i-1), 2^i); the last bucket absorbs everything larger.
struct TraceHistogram {
  static constexpr unsigned kBuckets = 20;
  std::array<std::uint32_t, kBuckets> bucket{};

  void add(std::uint64_t words) {
    unsigned b = 0;
    while (b + 1 < kBuckets && words != 0) {
      ++b;
      words >>= 1;
    }
    ++bucket[b];
  }
  std::uint64_t nodes() const {
    std::uint64_t s = 0;
    for (auto c : bucket) s += c;
    return s;
  }
  bool operator==(const TraceHistogram&) const = default;
};

/// One engine collective, as metered by the serial leader step.
struct TraceRecord {
  // -- identity -------------------------------------------------------------
  std::uint64_t run = 0;         ///< engine-run index within this trace
  std::uint64_t collective = 0;  ///< collective index within the run
  std::string op;                ///< "round" | "exchange" | "broadcast"
  std::string phase;  ///< innermost CCQ_TRACE_SPAN label on node 0 at
                      ///< deposit time ("" = unlabelled)

  // -- deterministic cost fields (the meter's ledger) -----------------------
  std::uint64_t round_begin = 0;  ///< rounds committed before this collective
  std::uint64_t rounds = 0;       ///< rounds this collective charged
  std::uint64_t messages = 0;     ///< non-self words delivered
  std::uint64_t bits = 0;         ///< their total bit width
  std::uint64_t max_sent = 0;     ///< max words sent by one node (self excl.)
  std::uint64_t max_received = 0;  ///< max words into one inbox (self excl.;
                                   ///< reported by the plane's stats scan)
  TraceHistogram sent_hist;      ///< per-node sent-word distribution
  TraceHistogram received_hist;  ///< per-node received-word distribution
  /// bits / (rounds · n(n−1) · B): fraction of the model's link capacity
  /// the charged rounds actually moved. 0 when rounds == 0 (free
  /// self-delivery collectives). Deterministic (pure function of ints).
  double cap_utilisation = 0;

  // -- observability-only fields (wall-clock / backend-shaped; excluded
  //    from deterministic_eq) ----------------------------------------------
  double delivery_ms = 0;  ///< wall time inside MessagePlane::deliver
  std::uint64_t fiber_switches = 0;   ///< node resumes since the previous
                                      ///< record (fiber backends — pooled
                                      ///< and sharded; 0 on thread-per-node)
  std::uint64_t parallel_jobs = 0;    ///< leader_parallel_for fan-outs
  std::uint64_t parallel_chunks = 0;  ///< chunks across those jobs

  bool deterministic_eq(const TraceRecord& o) const {
    return run == o.run && collective == o.collective && op == o.op &&
           phase == o.phase && round_begin == o.round_begin &&
           rounds == o.rounds && messages == o.messages && bits == o.bits &&
           max_sent == o.max_sent && max_received == o.max_received &&
           sent_hist == o.sent_hist && received_hist == o.received_hist &&
           cap_utilisation == o.cap_utilisation;
  }
};

/// One closed CCQ_TRACE_SPAN scope. Coordinates are (collective index,
/// committed rounds) at push/pop — deterministic across backends. A span
/// closed by exception unwinding (e.g. ModelViolation aborting the run) is
/// recorded like any other; the trace never holds open spans after a run.
struct TraceSpanEvent {
  std::uint64_t run = 0;
  NodeId node = 0;
  std::string label;
  unsigned depth = 0;  ///< nesting depth at push (0 = outermost)
  std::uint64_t begin_collective = 0, begin_round = 0;
  std::uint64_t end_collective = 0, end_round = 0;

  bool deterministic_eq(const TraceSpanEvent& o) const {
    return run == o.run && node == o.node && label == o.label &&
           depth == o.depth && begin_collective == o.begin_collective &&
           begin_round == o.begin_round && end_collective == o.end_collective &&
           end_round == o.end_round;
  }
};

/// Aggregated ledger for one phase label across a whole trace.
struct PhaseTotals {
  std::uint64_t collectives = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
};

/// Per-run metadata kept alongside the records.
struct TraceRunInfo {
  NodeId n = 0;
  unsigned bandwidth = 1;
  std::uint64_t round_offset = 0;  ///< chrome-timeline start of this run
  std::uint64_t rounds = 0;        ///< final metered rounds of this run
};

/// Per-collective recorder attached to Engine::run via
/// Engine::Config::trace (one run at a time) or installed process-wide
/// with trace::set_global (benches' --trace flag). Records accumulate
/// across runs until clear().
class RoundTrace {
 public:
  // ---- recorded data ------------------------------------------------------
  const std::vector<TraceRecord>& records() const { return records_; }
  const std::vector<TraceSpanEvent>& spans() const { return spans_; }
  const std::vector<TraceRunInfo>& run_info() const { return runs_info_; }
  std::uint64_t runs() const { return runs_info_.size(); }
  /// Sum of the final CostMeters of every traced run (totals accumulate,
  /// per-node maxima compose by max — CostMeter::add semantics).
  const CostMeter& metered_totals() const { return metered_; }

  /// Ledger check: records().rounds/messages/bits summed over all records
  /// must equal metered_totals() exactly. False means the trace missed a
  /// collective — a bug, never a rounding artefact.
  bool totals_match() const;
  /// Per-phase breakdown ("" renamed "unlabelled"); summing any field over
  /// the map reproduces the corresponding metered total.
  std::map<std::string, PhaseTotals> phase_totals() const;

  /// Deterministic-field equality with another trace (see header comment).
  bool deterministic_eq(const RoundTrace& o) const;

  // ---- export -------------------------------------------------------------
  /// JSONL: line 1 a {"type":"trace"} header, then one {"type":"run"|
  /// "collective"|"span"} object per line (schema documented in DESIGN.md
  /// §9). Returns false if the file cannot be written.
  bool write_jsonl(const std::string& path) const;
  /// Load a write_jsonl file back (used by the round-trip test and offline
  /// tooling). Returns false on unreadable file or malformed line.
  static bool load_jsonl(const std::string& path, RoundTrace* out);
  /// Chrome Trace Event Format (chrome://tracing, Perfetto). One process
  /// per run; collectives on tid 0, node spans on tid node+1; 1 µs ≡ 1
  /// model round. Runs are laid out back to back on the timeline.
  bool write_chrome(const std::string& path) const;

  void clear();

  // ---- engine-side hooks (called by Engine internals; not user API) -------
  /// Claim this trace for one run. Returns false when another run holds it
  /// (e.g. a nested Engine::run with the same global trace installed) —
  /// the engine then runs untraced rather than interleaving two runs.
  bool try_acquire();
  void on_run_begin(NodeId n, unsigned bandwidth);
  /// Leader step, once per collective, straight after plane delivery.
  void on_collective(TraceRecord&& rec);
  /// Leader step, straight after the rounds for the last collective are
  /// known (finalises rounds / round_begin / cap_utilisation).
  void on_rounds_charged(std::uint64_t round_begin, std::uint64_t rounds);
  /// Node-owned span stack ops (only node `id`'s fiber touches slot `id`).
  void node_push(NodeId id, const char* label, std::uint64_t collective,
                 std::uint64_t round);
  void node_pop(NodeId id, std::uint64_t collective, std::uint64_t round);
  /// Innermost open label on `id`'s stack ("" when empty). Leader-only.
  const std::string& current_phase(NodeId id) const;
  /// End of run (normal or aborting): closes surviving open spans at the
  /// final (collective, round) coordinates, folds `cost` into
  /// metered_totals, flushes per-node span buffers in node-id order, and
  /// releases the acquire.
  void on_run_end(const CostMeter& cost);

 private:
  struct NodeSpanState {
    std::vector<std::string> stack;            // open labels, outermost first
    std::vector<TraceSpanEvent> open;          // parallel to stack
    std::vector<TraceSpanEvent> closed;        // node-owned until run end
  };

  std::vector<TraceRecord> records_;
  std::vector<TraceSpanEvent> spans_;
  std::vector<TraceRunInfo> runs_info_;
  CostMeter metered_;
  // Current-run state (valid between on_run_begin / on_run_end).
  std::uint64_t cur_collective_ = 0;
  std::vector<NodeSpanState> node_spans_;
  std::atomic<bool> active_{false};  // one engine run at a time
};

namespace trace {
/// Install (or clear, with nullptr) the process-wide default trace:
/// Engine::run attaches it whenever Config::trace is null. Used by the
/// benches' --trace flag so every run in the process lands in one
/// timeline. Not thread-safe against concurrent Engine::runs: a run that
/// fails try_acquire (the trace is already recording another run) simply
/// runs untraced.
void set_global(RoundTrace* t);
RoundTrace* global();
}  // namespace trace

}  // namespace ccq
