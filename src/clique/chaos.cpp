#include "clique/chaos.hpp"

#include <utility>

#include "util/rng.hpp"

namespace ccq {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kFlip:
      return "flip";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kByzantine:
      return "byzantine";
  }
  return "fault";
}

namespace chaos {
namespace {
ChaosPlan* g_plan = nullptr;
}  // namespace
void set_global(ChaosPlan* plan) { g_plan = plan; }
ChaosPlan* global() { return g_plan; }
}  // namespace chaos

// The wrapper plane. Deposits run on node fibers and touch only the slots
// owned by `self` (own_[self], pending_[self]) — the same ownership
// discipline the real planes follow, so both backends and TSan are happy.
// The corrupted copy of the outbox is handed to the wrapped plane as a
// movable queue deposit; the inner plane then validates, meters and
// delivers the corrupted traffic exactly as it would honest traffic.
class ChaosPlane final : public detail::MessagePlane {
 public:
  ChaosPlane(detail::MessagePlane* inner, ChaosPlan* plan)
      : inner_(inner), plan_(plan) {}

  MessagePlaneKind kind() const override { return inner_->kind(); }

  void init(NodeId n, unsigned bandwidth) override {
    n_ = n;
    collective_ = 0;
    own_.assign(n, WordQueues(n));
    scratch_.assign(n, {});
    pending_.assign(n, {});
    byz_.assign(n, 0);
    for (NodeId v : plan_->config().byzantine) {
      CCQ_CHECK_MSG(v < n, "chaos: byzantine node " << v
                                                    << " out of range for n="
                                                    << n);
      byz_[v] = 1;
    }
    inner_->init(n, bandwidth);
  }

  void deposit_queues(NodeId self, const WordQueues* out,
                      bool movable) override {
    CCQ_CHECK_MSG(out->size() == n_,
                  "chaos: outbox must have one queue per node");
    WordQueues& mine = own_[self];
    // Self words never touch the network: pass them through unfaulted
    // (moving when the caller relinquished the outbox).
    mine[self] = movable ? std::move(const_cast<WordQueues&>(*out)[self])
                         : (*out)[self];
    for (NodeId dst = 0; dst < n_; ++dst) {
      if (dst == self) continue;
      mine[dst].clear();
      corrupt_queue(self, dst, (*out)[dst], mine[dst]);
    }
    inner_->deposit_queues(self, &mine, /*movable=*/true);
  }

  void deposit_pairs(NodeId self,
                     std::span<const std::pair<NodeId, Word>> out,
                     bool unique_dst) override {
    WordQueues& mine = own_[self];
    std::vector<Word>& tmp = scratch_[self];
    for (auto& q : mine) q.clear();
    // Validate the *honest* outbox under round() rules before faulting —
    // a duplication fault must not be blamed on the program.
    for (const auto& [dst, w] : out) {
      CCQ_CHECK_MSG(dst < n_, "chaos: destination " << dst
                                                    << " out of range");
      if (unique_dst) {
        CCQ_CHECK_MSG(dst != self, "round(): message to self");
        CCQ_CHECK_MSG(mine[dst].empty(),
                      "round(): duplicate destination " << dst);
      }
      mine[dst].push_back(w);
    }
    for (NodeId dst = 0; dst < n_; ++dst) {
      if (dst == self) continue;
      tmp = std::move(mine[dst]);
      mine[dst].clear();
      corrupt_queue(self, dst, tmp, mine[dst]);
    }
    inner_->deposit_queues(self, &mine, /*movable=*/true);
  }

  void deposit_broadcast(NodeId self, std::span<const Word> words) override {
    WordQueues& mine = own_[self];
    for (NodeId dst = 0; dst < n_; ++dst) {
      mine[dst].clear();
      if (dst == self) continue;
      corrupt_queue(self, dst, words, mine[dst]);
    }
    inner_->deposit_queues(self, &mine, /*movable=*/true);
  }

  void deliver(detail::Scheduler& sched,
               detail::DeliveryAccounting& acc) override {
    // Flush per-node fault buffers into the plan in node-id order: the
    // decisions are pure hashes, so the ledger is identical across planes,
    // backends and worker counts.
    for (NodeId v = 0; v < n_; ++v) {
      for (const FaultEvent& e : pending_[v]) plan_->record(e);
      pending_[v].clear();
    }
    inner_->deliver(sched, acc);
    ++collective_;
  }

  FlatInbox inbox(NodeId self) override { return inner_->inbox(self); }
  WordQueues take_queues(NodeId self) override {
    return inner_->take_queues(self);
  }

 private:
  // One fault stream per (collective, src, dst), drawn in word order — the
  // reproducibility contract: a fault is a function of (seed, collective,
  // src, dst, word index) and nothing else.
  static std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t c,
                                   NodeId src, NodeId dst) {
    std::uint64_t s = mix64(seed ^ (c * 0x9e3779b97f4a7c15ULL + 1));
    return mix64(s ^ ((static_cast<std::uint64_t>(src) << 32) | dst));
  }

  template <typename WordSeq>
  void corrupt_queue(NodeId src, NodeId dst, const WordSeq& in,
                     std::vector<Word>& out) {
    const ChaosPlan::Config& cfg = plan_->config();
    const bool byz = byz_[src] != 0;
    if (!byz && cfg.p_flip <= 0 && cfg.p_drop <= 0 && cfg.p_dup <= 0) {
      out.assign(in.begin(), in.end());
      return;
    }
    SplitMix64 rng(stream_seed(cfg.seed, collective_, src, dst));
    out.reserve(in.size());
    for (std::size_t pos = 0; pos < in.size(); ++pos) {
      const auto i = static_cast<std::uint64_t>(pos);
      Word w = in[pos];
      if (byz) {
        const std::uint64_t draw = rng.next();
        const std::uint64_t repl =
            cfg.adversary
                ? cfg.adversary({collective_, src, dst, i, w, draw})
                : draw;
        const std::uint64_t mask =
            w.bits >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << w.bits) - 1;
        const Word after(repl & mask, w.bits);
        if (!(after == w)) {
          note(src, {FaultKind::kByzantine, collective_, src, dst, i, 0, w,
                     after});
        }
        w = after;
      }
      if (cfg.p_flip > 0 && w.bits > 0 && rng.next_bool(cfg.p_flip)) {
        const unsigned bit = static_cast<unsigned>(rng.uniform(w.bits));
        const Word after(w.value ^ (std::uint64_t{1} << bit), w.bits);
        note(src,
             {FaultKind::kFlip, collective_, src, dst, i, bit, w, after});
        w = after;
      }
      if (cfg.p_drop > 0 && rng.next_bool(cfg.p_drop)) {
        const Word after(0, w.bits);
        note(src,
             {FaultKind::kDrop, collective_, src, dst, i, 0, w, after});
        w = after;
      }
      out.push_back(w);
      if (cfg.p_dup > 0 && rng.next_bool(cfg.p_dup)) {
        note(src,
             {FaultKind::kDuplicate, collective_, src, dst, i, 0, w, w});
        out.push_back(w);
      }
    }
  }

  void note(NodeId src, const FaultEvent& e) { pending_[src].push_back(e); }

  detail::MessagePlane* inner_;  // borrowed; outlives this wrapper
  ChaosPlan* plan_;
  NodeId n_ = 0;
  std::uint64_t collective_ = 0;  // written by the leader, read by deposits
                                  // of the next collective (barrier-ordered)
  std::vector<WordQueues> own_;           // [self] corrupted outboxes
  std::vector<std::vector<Word>> scratch_;  // [self] pre-fault staging
  std::vector<std::vector<FaultEvent>> pending_;  // [self] fault buffers
  std::vector<std::uint8_t> byz_;
};

namespace detail {

std::unique_ptr<MessagePlane> wrap_chaos(MessagePlane* inner,
                                         ChaosPlan* plan) {
  CCQ_CHECK(inner != nullptr && plan != nullptr);
  return std::make_unique<ChaosPlane>(inner, plan);
}

}  // namespace detail
}  // namespace ccq
