#include "clique/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace ccq {

namespace {

// The schema uses only identifier-safe labels; anything else is dropped to
// '_' at write time so the emitted JSON never needs escaping (mirrors the
// bench_json.hpp convention).
std::string sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.' || c == '/' || c == ' ';
    if (!ok) c = '_';
  }
  return out;
}

void append_hist(std::string& out, const char* key,
                 const TraceHistogram& h) {
  out += "\"";
  out += key;
  out += "\":[";
  for (unsigned i = 0; i < TraceHistogram::kBuckets; ++i) {
    if (i) out += ",";
    out += std::to_string(h.bucket[i]);
  }
  out += "]";
}

void append_u64(std::string& out, const char* key, std::uint64_t v,
                bool comma = true) {
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(v);
  if (comma) out += ",";
}

void append_str(std::string& out, const char* key, const std::string& v,
                bool comma = true) {
  out += "\"";
  out += key;
  out += "\":\"";
  out += sanitize(v);
  out += "\"";
  if (comma) out += ",";
}

void append_dbl(std::string& out, const char* key, double v,
                bool comma = true) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += "\"";
  out += key;
  out += "\":";
  out += buf;
  if (comma) out += ",";
}

// ---------------------------------------------------------------------------
// Minimal extractors for load_jsonl. The input is our own flat, unescaped
// schema, so a key scan is sufficient; every helper reports failure rather
// than guessing so a truncated/foreign file fails loudly.
// ---------------------------------------------------------------------------

bool find_key(const std::string& line, const char* key, std::size_t* pos) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *pos = at + needle.size();
  return true;
}

bool get_u64(const std::string& line, const char* key, std::uint64_t* out) {
  std::size_t pos;
  if (!find_key(line, key, &pos)) return false;
  char* end = nullptr;
  *out = std::strtoull(line.c_str() + pos, &end, 10);
  return end != line.c_str() + pos;
}

bool get_dbl(const std::string& line, const char* key, double* out) {
  std::size_t pos;
  if (!find_key(line, key, &pos)) return false;
  char* end = nullptr;
  *out = std::strtod(line.c_str() + pos, &end);
  return end != line.c_str() + pos;
}

bool get_str(const std::string& line, const char* key, std::string* out) {
  std::size_t pos;
  if (!find_key(line, key, &pos)) return false;
  if (pos >= line.size() || line[pos] != '"') return false;
  const std::size_t close = line.find('"', pos + 1);
  if (close == std::string::npos) return false;
  *out = line.substr(pos + 1, close - pos - 1);
  return true;
}

bool get_hist(const std::string& line, const char* key, TraceHistogram* out) {
  std::size_t pos;
  if (!find_key(line, key, &pos)) return false;
  if (pos >= line.size() || line[pos] != '[') return false;
  ++pos;
  for (unsigned i = 0; i < TraceHistogram::kBuckets; ++i) {
    char* end = nullptr;
    out->bucket[i] =
        static_cast<std::uint32_t>(std::strtoull(line.c_str() + pos, &end, 10));
    if (end == line.c_str() + pos) return false;
    pos = static_cast<std::size_t>(end - line.c_str());
    if (pos < line.size() && line[pos] == ',') ++pos;
  }
  return pos < line.size() && line[pos] == ']';
}

}  // namespace

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

bool RoundTrace::try_acquire() {
  bool expected = false;
  return active_.compare_exchange_strong(expected, true);
}

void RoundTrace::on_run_begin(NodeId n, unsigned bandwidth) {
  TraceRunInfo info;
  info.n = n;
  info.bandwidth = bandwidth;
  // Runs are laid back to back on the chrome timeline.
  info.round_offset = runs_info_.empty()
                          ? 0
                          : runs_info_.back().round_offset +
                                runs_info_.back().rounds;
  runs_info_.push_back(info);
  cur_collective_ = 0;
  node_spans_.assign(n, {});
}

void RoundTrace::on_collective(TraceRecord&& rec) {
  rec.run = runs_info_.size() - 1;
  rec.collective = cur_collective_++;
  records_.push_back(std::move(rec));
}

void RoundTrace::on_rounds_charged(std::uint64_t round_begin,
                                   std::uint64_t rounds) {
  CCQ_CHECK_MSG(!records_.empty(), "rounds charged before any collective");
  TraceRecord& rec = records_.back();
  rec.round_begin = round_begin;
  rec.rounds = rounds;
  const TraceRunInfo& run = runs_info_.back();
  if (rounds > 0 && run.n > 1) {
    const double capacity = static_cast<double>(rounds) *
                            static_cast<double>(run.n) *
                            static_cast<double>(run.n - 1) * run.bandwidth;
    rec.cap_utilisation = static_cast<double>(rec.bits) / capacity;
  }
}

void RoundTrace::node_push(NodeId id, const char* label,
                           std::uint64_t collective, std::uint64_t round) {
  NodeSpanState& s = node_spans_[id];
  TraceSpanEvent ev;
  ev.run = runs_info_.size() - 1;
  ev.node = id;
  ev.label = label;
  ev.depth = static_cast<unsigned>(s.stack.size());
  ev.begin_collective = collective;
  ev.begin_round = round;
  s.stack.emplace_back(label);
  s.open.push_back(std::move(ev));
}

void RoundTrace::node_pop(NodeId id, std::uint64_t collective,
                          std::uint64_t round) {
  NodeSpanState& s = node_spans_[id];
  CCQ_CHECK_MSG(!s.stack.empty(), "trace span pop without push");
  TraceSpanEvent ev = std::move(s.open.back());
  s.open.pop_back();
  s.stack.pop_back();
  ev.end_collective = collective;
  ev.end_round = round;
  s.closed.push_back(std::move(ev));
}

const std::string& RoundTrace::current_phase(NodeId id) const {
  static const std::string kEmpty;
  const NodeSpanState& s = node_spans_[id];
  return s.stack.empty() ? kEmpty : s.stack.back();
}

void RoundTrace::on_run_end(const CostMeter& cost) {
  runs_info_.back().rounds = cost.rounds;
  metered_.add(cost);
  // Flush per-node span buffers in node-id order (deterministic output
  // order regardless of which fibers closed their spans first). Spans that
  // are still open — the run aborted before RAII unwinding could pop them,
  // which only happens if a node program leaked a TraceSpan — are closed at
  // the run's final coordinates so exports never carry dangling spans.
  for (NodeId v = 0; v < static_cast<NodeId>(node_spans_.size()); ++v) {
    NodeSpanState& s = node_spans_[v];
    while (!s.stack.empty()) {
      TraceSpanEvent ev = std::move(s.open.back());
      s.open.pop_back();
      s.stack.pop_back();
      ev.end_collective = cur_collective_;
      ev.end_round = cost.rounds;
      s.closed.push_back(std::move(ev));
    }
    // Node-local close order is pop order; sort by begin for readability.
    std::stable_sort(s.closed.begin(), s.closed.end(),
                     [](const TraceSpanEvent& a, const TraceSpanEvent& b) {
                       return a.begin_collective != b.begin_collective
                                  ? a.begin_collective < b.begin_collective
                                  : a.depth < b.depth;
                     });
    for (TraceSpanEvent& ev : s.closed) spans_.push_back(std::move(ev));
    s = {};
  }
  active_.store(false);
}

void RoundTrace::clear() {
  CCQ_CHECK_MSG(!active_.load(), "clear() while a run is recording");
  records_.clear();
  spans_.clear();
  runs_info_.clear();
  metered_ = CostMeter{};
  node_spans_.clear();
  cur_collective_ = 0;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

bool RoundTrace::totals_match() const {
  std::uint64_t rounds = 0, messages = 0, bits = 0, collectives = 0;
  for (const TraceRecord& r : records_) {
    rounds += r.rounds;
    messages += r.messages;
    bits += r.bits;
    collectives += 1;
  }
  return rounds == metered_.rounds && messages == metered_.messages &&
         bits == metered_.bits && collectives == metered_.collectives;
}

std::map<std::string, PhaseTotals> RoundTrace::phase_totals() const {
  std::map<std::string, PhaseTotals> out;
  for (const TraceRecord& r : records_) {
    PhaseTotals& t = out[r.phase.empty() ? "unlabelled" : r.phase];
    t.collectives += 1;
    t.rounds += r.rounds;
    t.messages += r.messages;
    t.bits += r.bits;
  }
  return out;
}

bool RoundTrace::deterministic_eq(const RoundTrace& o) const {
  if (records_.size() != o.records_.size() ||
      spans_.size() != o.spans_.size() ||
      runs_info_.size() != o.runs_info_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].deterministic_eq(o.records_[i])) return false;
  }
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    if (!spans_[i].deterministic_eq(o.spans_[i])) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// JSONL export / import
// ---------------------------------------------------------------------------

bool RoundTrace::write_jsonl(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  {
    std::string line = "{";
    append_str(line, "type", "trace");
    append_u64(line, "version", 1);
    append_u64(line, "runs", runs());
    append_u64(line, "records", records_.size());
    append_u64(line, "spans", spans_.size());
    append_u64(line, "total_rounds", metered_.rounds);
    append_u64(line, "total_messages", metered_.messages);
    append_u64(line, "total_bits", metered_.bits);
    append_u64(line, "total_collectives", metered_.collectives,
               /*comma=*/false);
    f << line << "}\n";
  }
  for (std::size_t i = 0; i < runs_info_.size(); ++i) {
    const TraceRunInfo& r = runs_info_[i];
    std::string line = "{";
    append_str(line, "type", "run");
    append_u64(line, "run", i);
    append_u64(line, "n", r.n);
    append_u64(line, "bandwidth", r.bandwidth);
    append_u64(line, "round_offset", r.round_offset);
    append_u64(line, "rounds", r.rounds, /*comma=*/false);
    f << line << "}\n";
  }
  for (const TraceRecord& r : records_) {
    std::string line = "{";
    append_str(line, "type", "collective");
    append_u64(line, "run", r.run);
    append_u64(line, "collective", r.collective);
    append_str(line, "op", r.op);
    append_str(line, "phase", r.phase);
    append_u64(line, "round_begin", r.round_begin);
    append_u64(line, "rounds", r.rounds);
    append_u64(line, "messages", r.messages);
    append_u64(line, "bits", r.bits);
    append_u64(line, "max_sent", r.max_sent);
    append_u64(line, "max_received", r.max_received);
    append_hist(line, "sent_hist", r.sent_hist);
    line += ",";
    append_hist(line, "received_hist", r.received_hist);
    line += ",";
    append_dbl(line, "cap_utilisation", r.cap_utilisation);
    append_dbl(line, "delivery_ms", r.delivery_ms);
    append_u64(line, "fiber_switches", r.fiber_switches);
    append_u64(line, "parallel_jobs", r.parallel_jobs);
    append_u64(line, "parallel_chunks", r.parallel_chunks, /*comma=*/false);
    f << line << "}\n";
  }
  for (const TraceSpanEvent& s : spans_) {
    std::string line = "{";
    append_str(line, "type", "span");
    append_u64(line, "run", s.run);
    append_u64(line, "node", s.node);
    append_str(line, "label", s.label);
    append_u64(line, "depth", s.depth);
    append_u64(line, "begin_collective", s.begin_collective);
    append_u64(line, "begin_round", s.begin_round);
    append_u64(line, "end_collective", s.end_collective);
    append_u64(line, "end_round", s.end_round, /*comma=*/false);
    f << line << "}\n";
  }
  return static_cast<bool>(f);
}

bool RoundTrace::load_jsonl(const std::string& path, RoundTrace* out) {
  std::ifstream f(path);
  if (!f) return false;
  out->clear();
  CostMeter totals;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::string type;
    if (!get_str(line, "type", &type)) return false;
    if (type == "trace") {
      if (!get_u64(line, "total_rounds", &totals.rounds) ||
          !get_u64(line, "total_messages", &totals.messages) ||
          !get_u64(line, "total_bits", &totals.bits) ||
          !get_u64(line, "total_collectives", &totals.collectives)) {
        return false;
      }
    } else if (type == "run") {
      TraceRunInfo r;
      std::uint64_t n = 0, bw = 0;
      if (!get_u64(line, "n", &n) || !get_u64(line, "bandwidth", &bw) ||
          !get_u64(line, "round_offset", &r.round_offset) ||
          !get_u64(line, "rounds", &r.rounds)) {
        return false;
      }
      r.n = static_cast<NodeId>(n);
      r.bandwidth = static_cast<unsigned>(bw);
      out->runs_info_.push_back(r);
    } else if (type == "collective") {
      TraceRecord r;
      if (!get_u64(line, "run", &r.run) ||
          !get_u64(line, "collective", &r.collective) ||
          !get_str(line, "op", &r.op) || !get_str(line, "phase", &r.phase) ||
          !get_u64(line, "round_begin", &r.round_begin) ||
          !get_u64(line, "rounds", &r.rounds) ||
          !get_u64(line, "messages", &r.messages) ||
          !get_u64(line, "bits", &r.bits) ||
          !get_u64(line, "max_sent", &r.max_sent) ||
          !get_u64(line, "max_received", &r.max_received) ||
          !get_hist(line, "sent_hist", &r.sent_hist) ||
          !get_hist(line, "received_hist", &r.received_hist) ||
          !get_dbl(line, "cap_utilisation", &r.cap_utilisation) ||
          !get_dbl(line, "delivery_ms", &r.delivery_ms) ||
          !get_u64(line, "fiber_switches", &r.fiber_switches) ||
          !get_u64(line, "parallel_jobs", &r.parallel_jobs) ||
          !get_u64(line, "parallel_chunks", &r.parallel_chunks)) {
        return false;
      }
      out->records_.push_back(std::move(r));
    } else if (type == "span") {
      TraceSpanEvent s;
      std::uint64_t node = 0, depth = 0;
      if (!get_u64(line, "run", &s.run) || !get_u64(line, "node", &node) ||
          !get_str(line, "label", &s.label) ||
          !get_u64(line, "depth", &depth) ||
          !get_u64(line, "begin_collective", &s.begin_collective) ||
          !get_u64(line, "begin_round", &s.begin_round) ||
          !get_u64(line, "end_collective", &s.end_collective) ||
          !get_u64(line, "end_round", &s.end_round)) {
        return false;
      }
      s.node = static_cast<NodeId>(node);
      s.depth = static_cast<unsigned>(depth);
      out->spans_.push_back(std::move(s));
    } else {
      return false;  // unknown record type: not one of our files
    }
  }
  out->metered_ = totals;
  return true;
}

// ---------------------------------------------------------------------------
// Chrome Trace Event Format
// ---------------------------------------------------------------------------

bool RoundTrace::write_chrome(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) f << ",\n";
    first = false;
    f << ev;
  };
  for (std::size_t i = 0; i < runs_info_.size(); ++i) {
    const TraceRunInfo& r = runs_info_[i];
    std::string ev = "{";
    append_str(ev, "name", "process_name");
    append_str(ev, "ph", "M");
    append_u64(ev, "pid", i);
    append_u64(ev, "tid", 0);
    ev += "\"args\":{\"name\":\"ccq run " + std::to_string(i) + " (n=" +
          std::to_string(r.n) + ", B=" + std::to_string(r.bandwidth) +
          ")\"}}";
    emit(ev);
  }
  for (const TraceRecord& r : records_) {
    const TraceRunInfo& run = runs_info_[r.run];
    std::string ev = "{";
    append_str(ev, "name", r.phase.empty() ? r.op : r.phase + ":" + r.op);
    append_str(ev, "cat", "collective");
    append_str(ev, "ph", "X");
    append_u64(ev, "pid", r.run);
    append_u64(ev, "tid", 0);
    // 1 µs ≡ 1 model round. Zero-round collectives (free self-delivery)
    // still get a sliver so they are visible and clickable.
    append_u64(ev, "ts", run.round_offset + r.round_begin);
    append_dbl(ev, "dur", r.rounds > 0 ? static_cast<double>(r.rounds) : 0.1);
    ev += "\"args\":{";
    append_u64(ev, "collective", r.collective);
    append_u64(ev, "rounds", r.rounds);
    append_u64(ev, "messages", r.messages);
    append_u64(ev, "bits", r.bits);
    append_u64(ev, "max_sent", r.max_sent);
    append_u64(ev, "max_received", r.max_received);
    append_dbl(ev, "cap_utilisation", r.cap_utilisation);
    append_dbl(ev, "delivery_ms", r.delivery_ms);
    append_u64(ev, "fiber_switches", r.fiber_switches);
    append_u64(ev, "parallel_chunks", r.parallel_chunks, /*comma=*/false);
    ev += "}}";
    emit(ev);
  }
  for (const TraceSpanEvent& s : spans_) {
    const TraceRunInfo& run = runs_info_[s.run];
    std::string ev = "{";
    append_str(ev, "name", s.label);
    append_str(ev, "cat", "span");
    append_str(ev, "ph", "X");
    append_u64(ev, "pid", s.run);
    append_u64(ev, "tid", std::uint64_t{s.node} + 1);
    append_u64(ev, "ts", run.round_offset + s.begin_round);
    const std::uint64_t dur = s.end_round - s.begin_round;
    append_dbl(ev, "dur", dur > 0 ? static_cast<double>(dur) : 0.1);
    ev += "\"args\":{";
    append_u64(ev, "node", s.node);
    append_u64(ev, "begin_collective", s.begin_collective);
    append_u64(ev, "end_collective", s.end_collective, /*comma=*/false);
    ev += "}}";
    emit(ev);
  }
  f << "\n]}\n";
  return static_cast<bool>(f);
}

// ---------------------------------------------------------------------------
// Process-wide default trace (benches' --trace flag)
// ---------------------------------------------------------------------------

namespace trace {
namespace {
std::atomic<RoundTrace*> g_trace{nullptr};
}  // namespace

void set_global(RoundTrace* t) { g_trace.store(t); }
RoundTrace* global() { return g_trace.load(); }
}  // namespace trace

}  // namespace ccq
