#pragma once

// Clique-on-clique simulation accounting (the overhead argument of
// Theorem 10's proof: "each node is simulating at most O(k²) nodes in G′
// ... the overhead from simulating O(k²) nodes per each node in G is
// O(k⁴) rounds for each round in G′").
//
// Hosting an m-node clique on n hosts (host h simulates ⌈m/n⌉ nodes), one
// simulated round moves at most ⌈m/n⌉² words across each ordered host
// pair, i.e. ⌈m/n⌉² host rounds per simulated round. We run gadget graphs
// on their own clique (exact round meters); these helpers convert those
// meters to the paper-faithful host cost so benches can report both.

#include <cstdint>

#include "util/math.hpp"

namespace ccq {

/// Host rounds needed per simulated round of an m-node clique on n hosts.
inline std::uint64_t simulation_round_overhead(std::uint64_t m,
                                               std::uint64_t n) {
  const std::uint64_t per_host = ceil_div(m, n);
  return per_host * per_host;
}

/// Total host rounds for `simulated_rounds` rounds of an m-node clique.
inline std::uint64_t simulated_host_rounds(std::uint64_t simulated_rounds,
                                           std::uint64_t m,
                                           std::uint64_t n) {
  return simulated_rounds * simulation_round_overhead(m, n);
}

}  // namespace ccq
