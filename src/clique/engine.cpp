#include "clique/engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "clique/scheduler.hpp"

namespace ccq {

namespace detail {

enum OpCode : int {
  kOpRound = 1,
  kOpExchange = 2,
  kOpBroadcast = 3,
};

struct SharedState {
  // Immutable run parameters.
  const Instance* instance = nullptr;
  NodeId n = 0;
  unsigned bandwidth = 1;
  std::uint64_t max_rounds = 0;
  std::uint64_t seed = 0;
  std::vector<BitVector> in_rows;       // transposed adjacency (directed)
  std::vector<BitVector> private_bits;  // resolved §3 encoding

  // Rendezvous backend; provides the ordering guarantees for the slots and
  // accounting below (deposits write only node-owned slots; the serial
  // leader step reads and writes everything).
  Scheduler* sched = nullptr;

  // Collective payload slots.
  std::vector<const WordQueues*> out_slots;
  std::vector<WordQueues> in_slots;

  // Results. `cost` and the per-node totals are mutated only by the serial
  // leader; `rounds_committed` mirrors cost.rounds for mid-run reads
  // (NodeCtx::rounds_so_far) without racing the leader.
  CostMeter cost;
  std::atomic<std::uint64_t> rounds_committed{0};
  std::vector<std::uint64_t> sent_words;  // per-node totals (run-wide)
  std::vector<std::uint64_t> received_words;
  std::vector<std::uint64_t> outputs;
  std::vector<std::uint8_t> has_output;
};

namespace {

void validate_words(const WordQueues& out, NodeId self, unsigned bandwidth,
                    NodeId n) {
  CCQ_CHECK_MSG(out.size() == n, "outbox must have one queue per node");
  for (NodeId dst = 0; dst < n; ++dst) {
    if (dst == self) continue;  // self-delivery is free local computation
    for (const Word& w : out[dst]) {
      CCQ_CHECK_MSG(
          w.bits <= bandwidth,
          "bandwidth violation: node " << self << " sent a " << w.bits
                                       << "-bit word to node " << dst
                                       << " but B = " << bandwidth);
    }
  }
}

// Deliver all deposited queues; cost = max over ordered (u,v), u != v, of
// the queue length (one word per ordered pair per synchronous round).
// Returns the number of rounds charged. Leader-only.
std::uint64_t deliver(SharedState& st) {
  const NodeId n = st.n;
  std::uint64_t max_queue = 0, msgs = 0, bits = 0;
  for (NodeId v = 0; v < n; ++v) {
    st.in_slots[v].assign(n, {});
  }
  for (NodeId u = 0; u < n; ++u) {
    const WordQueues& out = *st.out_slots[u];
    for (NodeId v = 0; v < n; ++v) {
      if (out[v].empty()) continue;
      if (u != v) {
        max_queue = std::max<std::uint64_t>(max_queue, out[v].size());
        msgs += out[v].size();
        for (const Word& w : out[v]) bits += w.bits;
        st.sent_words[u] += out[v].size();
        st.received_words[v] += out[v].size();
      }
      st.in_slots[v][u] = out[v];
    }
  }
  st.cost.messages += msgs;
  st.cost.bits += bits;
  st.cost.collectives += 1;
  return max_queue;
}

// Leader-only: commit rounds and enforce the runaway guard (throwing from
// the leader aborts the run through the scheduler).
void charge_rounds(SharedState& st, std::uint64_t rounds) {
  st.cost.rounds += rounds;
  st.rounds_committed.store(st.cost.rounds, std::memory_order_release);
  if (st.cost.rounds > st.max_rounds) {
    throw ModelViolation("round limit exceeded (runaway algorithm?)");
  }
}

}  // namespace
}  // namespace detail

using detail::OpTag;
using detail::SharedState;

NodeId NodeCtx::n() const { return st_->n; }
unsigned NodeCtx::bandwidth() const { return st_->bandwidth; }
std::uint64_t NodeCtx::common_seed() const { return st_->seed; }

const BitVector& NodeCtx::adj_row() const {
  return st_->instance->graph.row(id_);
}

const BitVector& NodeCtx::in_row() const {
  return st_->instance->graph.is_directed() ? st_->in_rows[id_]
                                            : st_->instance->graph.row(id_);
}

bool NodeCtx::directed() const { return st_->instance->graph.is_directed(); }
bool NodeCtx::weighted() const { return st_->instance->graph.is_weighted(); }

std::uint32_t NodeCtx::edge_weight(NodeId u) const {
  // Incident edges in either orientation are local knowledge (§3).
  const Graph& g = st_->instance->graph;
  if (g.has_edge(id_, u)) return g.weight(id_, u);
  return g.weight(u, id_);  // throws for a non-edge
}

const BitVector& NodeCtx::private_bits() const {
  return st_->private_bits[id_];
}

const BitVector& NodeCtx::label(std::size_t i) const {
  CCQ_CHECK_MSG(i < st_->instance->labels.size(),
                "label index " << i << " out of range");
  return st_->instance->labels[i][id_];
}

std::size_t NodeCtx::label_count() const {
  return st_->instance->labels.size();
}

std::uint64_t NodeCtx::rounds_so_far() const {
  return st_->rounds_committed.load(std::memory_order_acquire);
}

WordQueues NodeCtx::exchange(const WordQueues& out) {
  detail::validate_words(out, id_, st_->bandwidth, st_->n);
  st_->sched->collective(
      id_, OpTag{detail::kOpExchange, 0},
      [&] { st_->out_slots[id_] = &out; },
      [st = st_] { detail::charge_rounds(*st, detail::deliver(*st)); });
  return std::move(st_->in_slots[id_]);
}

std::vector<std::optional<Word>> NodeCtx::round(
    std::span<const std::pair<NodeId, Word>> sends) {
  const NodeId nn = st_->n;
  WordQueues out(nn);
  for (const auto& [dst, w] : sends) {
    CCQ_CHECK_MSG(dst < nn, "round(): destination out of range");
    CCQ_CHECK_MSG(dst != id_, "round(): no self-messages in round()");
    CCQ_CHECK_MSG(out[dst].empty(),
                  "round(): at most one word per destination per round");
    out[dst].push_back(w);
  }
  detail::validate_words(out, id_, st_->bandwidth, nn);

  st_->sched->collective(
      id_, OpTag{detail::kOpRound, 0},
      [&] { st_->out_slots[id_] = &out; },
      [st = st_] {
        // A round costs exactly 1 regardless of occupancy.
        detail::deliver(*st);
        detail::charge_rounds(*st, 1);
      });

  std::vector<std::optional<Word>> received(nn);
  const WordQueues& in = st_->in_slots[id_];
  for (NodeId src = 0; src < nn; ++src) {
    if (!in[src].empty()) received[src] = in[src].front();
  }
  return received;
}

std::vector<BitVector> NodeCtx::broadcast(const BitVector& mine) {
  const NodeId nn = st_->n;
  const unsigned B = st_->bandwidth;
  const std::vector<Word> words = encode_bits(mine, B);
  WordQueues out(nn);
  for (NodeId v = 0; v < nn; ++v) {
    if (v == id_) continue;
    out[v] = words;
  }
  const std::size_t length = mine.size();
  st_->sched->collective(
      id_, OpTag{detail::kOpBroadcast, length},
      [&] { st_->out_slots[id_] = &out; },
      [st = st_, length, B] {
        detail::deliver(*st);
        // ⌈L/B⌉ rounds (equals the max queue length by construction, but we
        // charge it explicitly so an all-empty broadcast of L bits still
        // costs its rounds).
        detail::charge_rounds(*st, ceil_div(length, B));
      });

  std::vector<BitVector> result(nn);
  const WordQueues& in = st_->in_slots[id_];
  for (NodeId src = 0; src < nn; ++src) {
    if (src == id_) {
      result[src] = mine;
    } else {
      result[src] = decode_words(in[src], mine.size());
    }
  }
  return result;
}

std::vector<bool> NodeCtx::share_bit(bool mine) {
  const NodeId nn = st_->n;
  std::vector<std::pair<NodeId, Word>> sends;
  sends.reserve(nn > 0 ? nn - 1 : 0);
  for (NodeId v = 0; v < nn; ++v) {
    if (v != id_) sends.emplace_back(v, Word(mine ? 1 : 0, 1));
  }
  auto received = round(sends);
  std::vector<bool> bits(nn, false);
  for (NodeId v = 0; v < nn; ++v) {
    if (v == id_) {
      bits[v] = mine;
    } else {
      CCQ_CHECK_MSG(received[v].has_value(), "share_bit: missing bit");
      bits[v] = received[v]->value != 0;
    }
  }
  return bits;
}

bool NodeCtx::any(bool mine) {
  for (bool b : share_bit(mine))
    if (b) return true;
  return false;
}

bool NodeCtx::all(bool mine) {
  for (bool b : share_bit(mine))
    if (!b) return false;
  return true;
}

void NodeCtx::output(std::uint64_t value) {
  // Node-owned slots; no synchronisation needed under either backend.
  CCQ_CHECK_MSG(!st_->has_output[id_],
                "node " << id_ << " called output() twice");
  st_->outputs[id_] = value;
  st_->has_output[id_] = 1;
}

RunResult Engine::run(const Instance& instance, const NodeProgram& program,
                      const Config& config) {
  const NodeId n = instance.graph.n();
  CCQ_CHECK_MSG(n >= 1, "empty clique");
  CCQ_CHECK_MSG(n <= 4096, "clique too large for the simulator");
  CCQ_CHECK(config.bandwidth_multiplier >= 1);
  for (const Labelling& z : instance.labels) {
    CCQ_CHECK_MSG(z.size() == n, "labelling must assign a label per node");
  }
  if (!instance.private_bits.empty()) {
    CCQ_CHECK_MSG(instance.private_bits.size() == n,
                  "private bits must cover every node");
  }

  SharedState st;
  st.instance = &instance;
  st.n = n;
  const unsigned base = node_id_bits(n);
  const std::uint64_t wide =
      static_cast<std::uint64_t>(base) * config.bandwidth_multiplier;
  CCQ_CHECK_MSG(wide <= 64,
                "bandwidth B = ⌈log₂n⌉·multiplier = "
                    << base << "·" << config.bandwidth_multiplier << " = "
                    << wide
                    << " bits exceeds the 64-bit word limit; lower "
                       "bandwidth_multiplier");
  st.bandwidth = static_cast<unsigned>(wide);
  st.max_rounds = config.max_rounds;
  st.seed = config.seed;
  st.out_slots.assign(n, nullptr);
  st.in_slots.resize(n);
  st.outputs.assign(n, 0);
  st.has_output.assign(n, 0);
  st.sent_words.assign(n, 0);
  st.received_words.assign(n, 0);

  if (instance.graph.is_directed()) {
    st.in_rows.assign(n, BitVector(n));
    for (NodeId u = 0; u < n; ++u) {
      const BitVector& r = instance.graph.row(u);
      for (std::size_t v = r.find_first(); v < r.size();
           v = r.find_first(v + 1)) {
        st.in_rows[v].set(u);
      }
    }
  }
  st.private_bits = instance.private_bits.empty()
                        ? private_bit_encoding(instance.graph)
                        : instance.private_bits;

  // A node program that itself calls Engine::run (nested simulation) must
  // not re-enter the shared worker pool from one of its fibers.
  ExecutionBackend backend = config.backend;
  if (detail::on_scheduler_fiber()) {
    backend = ExecutionBackend::kThreadPerNode;
  }
  auto sched = detail::make_scheduler(backend, config.workers,
                                      config.fiber_stack_bytes);
  st.sched = sched.get();
  sched->run(n, [&st, &program](NodeId v) {
    NodeCtx ctx(v, &st);
    program(ctx);
  });

  for (NodeId v = 0; v < n; ++v) {
    CCQ_CHECK_MSG(st.has_output[v],
                  "node " << v << " terminated without calling output()");
  }
  RunResult result;
  result.outputs = std::move(st.outputs);
  result.cost = st.cost;
  for (NodeId v = 0; v < n; ++v) {
    result.cost.max_node_sent =
        std::max(result.cost.max_node_sent, st.sent_words[v]);
    result.cost.max_node_received =
        std::max(result.cost.max_node_received, st.received_words[v]);
  }
  return result;
}

std::vector<BitVector> private_bit_encoding(const Graph& g) {
  const NodeId n = g.n();
  std::vector<BitVector> bits(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      bits[u].push_back(g.has_edge(u, v));
    }
  }
  return bits;
}

}  // namespace ccq
