#include "clique/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "clique/chaos.hpp"
#include "clique/scheduler.hpp"
#include "clique/trace.hpp"

namespace ccq {

namespace detail {

enum OpCode : int {
  kOpRound = 1,
  kOpExchange = 2,
  kOpBroadcast = 3,
};

struct SharedState {
  // Immutable run parameters.
  const Instance* instance = nullptr;
  NodeId n = 0;
  unsigned bandwidth = 1;
  std::uint64_t max_rounds = 0;
  std::uint64_t seed = 0;
  std::vector<BitVector> in_rows;  // transposed adjacency (directed)
  // Resolved §3 encoding: instance-provided bits are borrowed (no per-run
  // O(n²) copy — warm-path instances precompute them once), the fallback
  // encoding is computed into the owned storage.
  const std::vector<BitVector>* private_bits = nullptr;
  std::vector<BitVector> private_bits_storage;

  // Rendezvous backend; provides the ordering guarantees for the plane and
  // accounting below (deposits write only node-owned slots; the serial
  // leader step reads and writes everything).
  Scheduler* sched = nullptr;

  // Delivery substrate (Config::plane). Owns outbox slots, the inbox
  // storage, and — for the flat plane — the persistent counting-sort
  // arrays, so steady-state collectives allocate nothing. `plane` is the
  // active substrate for this run: either `owned_plane` (plain Engine::run),
  // a session's warm plane (EngineSession::run), or — for chaos runs — the
  // `chaos_wrapper` borrowing one of those.
  MessagePlane* plane = nullptr;
  std::unique_ptr<MessagePlane> owned_plane;
  std::unique_ptr<MessagePlane> chaos_wrapper;

  // Results. `cost` and the per-node totals are mutated only by the serial
  // leader; `rounds_committed` mirrors cost.rounds for mid-run reads
  // (NodeCtx::rounds_so_far) without racing the leader.
  CostMeter cost;
  std::atomic<std::uint64_t> rounds_committed{0};
  std::vector<std::uint64_t> sent_words;  // per-node totals (run-wide)
  std::vector<std::uint64_t> received_words;
  std::vector<std::uint64_t> outputs;
  std::vector<std::uint8_t> has_output;

  // Round-trace recorder (null = untraced; the common case). Record fields
  // are filled in the serial leader step; span push/pop from node fibers
  // touch only node-owned slots inside the trace. `collectives_committed`
  // mirrors the trace's collective counter for mid-run reads from node
  // fibers (span coordinates), like rounds_committed does for rounds.
  RoundTrace* trace = nullptr;
  std::atomic<std::uint64_t> collectives_committed{0};
  std::vector<std::uint64_t> trace_prev_sent;  // per-node snapshots for
  std::vector<std::uint64_t> trace_prev_recv;  // per-collective deltas
  SchedulerStats trace_prev_sched{};
};

namespace {

const char* op_name(int opcode) {
  switch (opcode) {
    case kOpRound:
      return "round";
    case kOpExchange:
      return "exchange";
    case kOpBroadcast:
      return "broadcast";
  }
  return "op";
}

// Traced delivery tail: build the per-collective TraceRecord from the
// accounting and the per-node total deltas. Leader-only, and only reached
// when a trace is attached — the O(n) scans below never run untraced.
void trace_collective(SharedState& st, const DeliveryAccounting& acc,
                      int opcode, double delivery_ms) {
  TraceRecord rec;
  rec.op = op_name(opcode);
  // A collective's phase is node 0's innermost open span at deposit time:
  // collective sequences are identical across nodes (engine-enforced), so
  // node 0's label is as canonical as any, and one node's stack keeps the
  // record single-valued when nodes nest spans differently.
  rec.phase = st.trace->current_phase(0);
  rec.messages = acc.messages;
  rec.bits = acc.bits;
  std::uint64_t max_sent = 0, max_recv = 0;
  for (NodeId v = 0; v < st.n; ++v) {
    const std::uint64_t ds = st.sent_words[v] - st.trace_prev_sent[v];
    const std::uint64_t dr = st.received_words[v] - st.trace_prev_recv[v];
    st.trace_prev_sent[v] = st.sent_words[v];
    st.trace_prev_recv[v] = st.received_words[v];
    rec.sent_hist.add(ds);
    rec.received_hist.add(dr);
    max_sent = std::max(max_sent, ds);
    max_recv = std::max(max_recv, dr);
  }
  rec.max_sent = max_sent;
  // The plane reports the receiver-side max itself (max_node_in); it must
  // agree with the delta scan or the plane delivered an impossible inbox.
  CCQ_CHECK_MSG(acc.max_node_in == max_recv,
                "message plane reported a receiver-side max of "
                    << acc.max_node_in << " words but per-node totals say "
                    << max_recv);
  rec.max_received = acc.max_node_in;
  rec.delivery_ms = delivery_ms;
  const SchedulerStats ss = st.sched->stats();
  rec.fiber_switches = ss.fiber_switches - st.trace_prev_sched.fiber_switches;
  rec.parallel_jobs = ss.parallel_jobs - st.trace_prev_sched.parallel_jobs;
  rec.parallel_chunks =
      ss.parallel_chunks - st.trace_prev_sched.parallel_chunks;
  st.trace_prev_sched = ss;
  st.trace->on_collective(std::move(rec));
}

// Deliver all deposits through the message plane; cost = max over ordered
// (u,v), u != v, of the queue length (one word per ordered pair per
// synchronous round). Returns the number of rounds charged. Leader-only:
// the plane may fan the delivery passes out via sched->leader_parallel_for.
std::uint64_t deliver(SharedState& st, int opcode) {
  DeliveryAccounting acc;
  acc.sent_words = st.sent_words.data();
  acc.received_words = st.received_words.data();
  if (st.trace == nullptr) {  // the only per-collective cost of tracing off
    st.plane->deliver(*st.sched, acc);
  } else {
    const auto t0 = std::chrono::steady_clock::now();
    st.plane->deliver(*st.sched, acc);
    const auto t1 = std::chrono::steady_clock::now();
    trace_collective(
        st, acc, opcode,
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  // CostMeter::add checks for 64-bit wrap — the meter is the experimental
  // instrument, so a silently wrapped total would poison every table built
  // on it (the per-collective increments themselves cannot wrap: they are
  // bounded by words actually materialised in memory).
  CostMeter delta;
  delta.messages = acc.messages;
  delta.bits = acc.bits;
  delta.collectives = 1;
  st.cost.add(delta);
  return acc.max_queue;
}

// Leader-only: commit rounds and enforce the runaway guard (throwing from
// the leader aborts the run through the scheduler).
void charge_rounds(SharedState& st, std::uint64_t rounds) {
  const std::uint64_t begin = st.cost.rounds;
  st.cost.rounds += rounds;
  // A wrapped counter would sail under the max_rounds check below and keep
  // the run alive with a corrupt meter; fail loudly instead.
  CCQ_CHECK_MSG(st.cost.rounds >= begin,
                "round counter overflowed 64 bits");
  st.rounds_committed.store(st.cost.rounds, std::memory_order_release);
  if (st.trace != nullptr) {
    // Finalise the record before the runaway check so an aborting run's
    // last collective still carries its rounds.
    st.trace->on_rounds_charged(begin, rounds);
    st.collectives_committed.fetch_add(1, std::memory_order_release);
  }
  if (st.cost.rounds > st.max_rounds) {
    throw ModelViolation("round limit exceeded (runaway algorithm?)");
  }
}

}  // namespace
}  // namespace detail

using detail::OpTag;
using detail::SharedState;

NodeId NodeCtx::n() const { return st_->n; }
unsigned NodeCtx::bandwidth() const { return st_->bandwidth; }
std::uint64_t NodeCtx::common_seed() const { return st_->seed; }

const BitVector& NodeCtx::adj_row() const {
  return st_->instance->graph.row(id_);
}

const BitVector& NodeCtx::in_row() const {
  return st_->instance->graph.is_directed() ? st_->in_rows[id_]
                                            : st_->instance->graph.row(id_);
}

bool NodeCtx::directed() const { return st_->instance->graph.is_directed(); }
bool NodeCtx::weighted() const { return st_->instance->graph.is_weighted(); }

std::uint32_t NodeCtx::edge_weight(NodeId u) const {
  // Incident edges in either orientation are local knowledge (§3).
  const Graph& g = st_->instance->graph;
  if (g.has_edge(id_, u)) return g.weight(id_, u);
  return g.weight(u, id_);  // throws for a non-edge
}

const BitVector& NodeCtx::private_bits() const {
  return (*st_->private_bits)[id_];
}

const BitVector& NodeCtx::label(std::size_t i) const {
  CCQ_CHECK_MSG(i < st_->instance->labels.size(),
                "label index " << i << " out of range");
  return st_->instance->labels[i][id_];
}

std::size_t NodeCtx::label_count() const {
  return st_->instance->labels.size();
}

std::uint64_t NodeCtx::rounds_so_far() const {
  return st_->rounds_committed.load(std::memory_order_acquire);
}

bool NodeCtx::tracing() const { return st_->trace != nullptr; }

void NodeCtx::trace_push(const char* label) {
  if (st_->trace == nullptr) return;
  // Span coordinates are (collectives committed, rounds committed) at push
  // time — serial-phase values, stable through the parallel phase, and
  // pure functions of the program, so spans are backend-independent.
  st_->trace->node_push(
      id_, label, st_->collectives_committed.load(std::memory_order_acquire),
      st_->rounds_committed.load(std::memory_order_acquire));
}

void NodeCtx::trace_pop() {
  if (st_->trace == nullptr) return;
  st_->trace->node_pop(
      id_, st_->collectives_committed.load(std::memory_order_acquire),
      st_->rounds_committed.load(std::memory_order_acquire));
}

WordQueues NodeCtx::exchange(const WordQueues& out) {
  // Validation (bandwidth, outbox shape) happens inside the deposit scan.
  st_->sched->collective(
      id_, OpTag{detail::kOpExchange, 0},
      [&] { st_->plane->deposit_queues(id_, &out, /*movable=*/false); },
      [st = st_] {
        detail::charge_rounds(*st, detail::deliver(*st, detail::kOpExchange));
      });
  return st_->plane->take_queues(id_);
}

WordQueues NodeCtx::exchange(WordQueues&& out) {
  // The caller relinquished `out`: the plane may move the self queue into
  // the inbox instead of copying it. `out` lives in this frame until the
  // collective completes, so the deposited pointer stays valid.
  st_->sched->collective(
      id_, OpTag{detail::kOpExchange, 0},
      [&] { st_->plane->deposit_queues(id_, &out, /*movable=*/true); },
      [st = st_] {
        detail::charge_rounds(*st, detail::deliver(*st, detail::kOpExchange));
      });
  return st_->plane->take_queues(id_);
}

FlatInbox NodeCtx::exchange_flat(
    std::span<const std::pair<NodeId, Word>> sends) {
  st_->sched->collective(
      id_, OpTag{detail::kOpExchange, 0},
      [&] { st_->plane->deposit_pairs(id_, sends, /*unique_dst=*/false); },
      [st = st_] {
        detail::charge_rounds(*st, detail::deliver(*st, detail::kOpExchange));
      });
  return st_->plane->inbox(id_);
}

FlatInbox NodeCtx::round_flat(
    std::span<const std::pair<NodeId, Word>> sends) {
  st_->sched->collective(
      id_, OpTag{detail::kOpRound, 0},
      [&] { st_->plane->deposit_pairs(id_, sends, /*unique_dst=*/true); },
      [st = st_] {
        // A round costs exactly 1 regardless of occupancy.
        detail::deliver(*st, detail::kOpRound);
        detail::charge_rounds(*st, 1);
      });
  return st_->plane->inbox(id_);
}

std::vector<std::optional<Word>> NodeCtx::round(
    std::span<const std::pair<NodeId, Word>> sends) {
  const NodeId nn = st_->n;
  const FlatInbox in = round_flat(sends);
  std::vector<std::optional<Word>> received(nn);
  for (NodeId src = 0; src < nn; ++src) {
    const auto got = in.from(src);
    if (!got.empty()) received[src] = got.front();
  }
  return received;
}

std::vector<BitVector> NodeCtx::broadcast(const BitVector& mine) {
  const NodeId nn = st_->n;
  const unsigned B = st_->bandwidth;
  const std::vector<Word> words = encode_bits(mine, B);
  const std::size_t length = mine.size();
  st_->sched->collective(
      id_, OpTag{detail::kOpBroadcast, length},
      [&] { st_->plane->deposit_broadcast(id_, words); },
      [st = st_, length, B] {
        detail::deliver(*st, detail::kOpBroadcast);
        // ⌈L/B⌉ rounds (equals the max queue length by construction, but we
        // charge it explicitly so an all-empty broadcast of L bits still
        // costs its rounds).
        detail::charge_rounds(*st, ceil_div(length, B));
      });

  const FlatInbox in = st_->plane->inbox(id_);
  std::vector<BitVector> result(nn);
  for (NodeId src = 0; src < nn; ++src) {
    if (src == id_) {
      result[src] = mine;
    } else {
      result[src] = decode_words(in.from(src), mine.size());
    }
  }
  return result;
}

std::vector<bool> NodeCtx::share_bit(bool mine) {
  const NodeId nn = st_->n;
  std::vector<std::pair<NodeId, Word>> sends;
  sends.reserve(nn > 0 ? nn - 1 : 0);
  for (NodeId v = 0; v < nn; ++v) {
    if (v != id_) sends.emplace_back(v, Word(mine ? 1 : 0, 1));
  }
  auto received = round(sends);
  std::vector<bool> bits(nn, false);
  for (NodeId v = 0; v < nn; ++v) {
    if (v == id_) {
      bits[v] = mine;
    } else {
      CCQ_CHECK_MSG(received[v].has_value(), "share_bit: missing bit");
      bits[v] = received[v]->value != 0;
    }
  }
  return bits;
}

bool NodeCtx::any(bool mine) {
  for (bool b : share_bit(mine))
    if (b) return true;
  return false;
}

bool NodeCtx::all(bool mine) {
  for (bool b : share_bit(mine))
    if (!b) return false;
  return true;
}

void NodeCtx::output(std::uint64_t value) {
  // Node-owned slots; no synchronisation needed under either backend.
  CCQ_CHECK_MSG(!st_->has_output[id_],
                "node " << id_ << " called output() twice");
  st_->outputs[id_] = value;
  st_->has_output[id_] = 1;
}

namespace detail {

// NodeCtx's constructor is private to keep user code from forging
// contexts; the run body below mints them through this keyhole.
struct EngineAccess {
  static NodeCtx make(NodeId id, SharedState* st) { return NodeCtx(id, st); }
};

namespace {

// The one engine-run body. Plain Engine::run passes null session hooks and
// gets ephemeral construction (a fresh scheduler and plane per run);
// EngineSession::run passes its persistent scheduler + plane so the fiber
// stacks, plane arenas and counting-sort arrays stay warm across runs.
// Results are bit-for-bit identical either way: the session objects are
// re-initialised per run (MessagePlane::init, Scheduler::run entry reset)
// and nothing downstream reads anything but the run's own state.
RunResult run_engine(const Instance& instance, const NodeProgram& program,
                     const Engine::Config& config, Scheduler* session_sched,
                     MessagePlane* session_plane) {
  const NodeId n = instance.graph.n();
  CCQ_CHECK_MSG(n >= 1, "empty clique");
  CCQ_CHECK_MSG(n <= 8192, "clique too large for the simulator");
  // Config-value validation, all at run() entry so a nonsense config fails
  // here with a ModelViolation instead of crashing or hanging mid-run.
  CCQ_CHECK_MSG(config.bandwidth_multiplier >= 1,
                "bandwidth_multiplier must be at least 1 (0 would make "
                "every word a bandwidth violation)");
  CCQ_CHECK_MSG(config.workers <= n,
                "config.workers = " << config.workers << " exceeds n = " << n
                                    << "; a worker (or shard) beyond the "
                                       "node count can never own a node");
  // 16 KiB floor: the fiber switch already parks a signal frame, the
  // resume trampoline and the collective's deposit scan on that stack; an
  // 8 KiB stack overflows it before the first rendezvous.
  CCQ_CHECK_MSG(config.fiber_stack_bytes == 0 ||
                    config.fiber_stack_bytes >= 16 * 1024,
                "config.fiber_stack_bytes = "
                    << config.fiber_stack_bytes
                    << " is below the 16 KiB fiber-switch floor (0 selects "
                       "the 256 KiB default)");
  for (const Labelling& z : instance.labels) {
    CCQ_CHECK_MSG(z.size() == n, "labelling must assign a label per node");
  }
  if (!instance.private_bits.empty()) {
    CCQ_CHECK_MSG(instance.private_bits.size() == n,
                  "private bits must cover every node");
  }

  SharedState st;
  st.instance = &instance;
  st.n = n;
  const unsigned base = node_id_bits(n);
  const std::uint64_t wide =
      static_cast<std::uint64_t>(base) * config.bandwidth_multiplier;
  CCQ_CHECK_MSG(wide <= 64,
                "bandwidth B = ⌈log₂n⌉·multiplier = "
                    << base << "·" << config.bandwidth_multiplier << " = "
                    << wide
                    << " bits exceeds the 64-bit word limit; lower "
                       "bandwidth_multiplier");
  st.bandwidth = static_cast<unsigned>(wide);
  st.max_rounds = config.max_rounds;
  st.seed = config.seed;
  if (session_plane != nullptr) {
    CCQ_CHECK_MSG(session_plane->kind() == config.plane,
                  "session plane kind does not match config.plane");
    st.plane = session_plane;
  } else {
    st.owned_plane = detail::make_message_plane(config.plane);
    st.plane = st.owned_plane.get();
  }
  // Attach the fault plane, if any: Config::chaos wins, else the
  // process-wide default. Same single-run protocol as the trace below — a
  // plan already driving another run leaves this run fault-free.
  ChaosPlan* chaos_plan =
      config.chaos != nullptr ? config.chaos : chaos::global();
  if (chaos_plan != nullptr && !chaos_plan->try_acquire()) {
    chaos_plan = nullptr;
  }
  struct ChaosCloser {
    ChaosPlan* plan;
    ~ChaosCloser() {
      if (plan != nullptr) plan->release();
    }
  } chaos_closer{chaos_plan};
  if (chaos_plan != nullptr) {
    st.chaos_wrapper = detail::wrap_chaos(st.plane, chaos_plan);
    st.plane = st.chaos_wrapper.get();
  }
  st.plane->init(n, st.bandwidth);
  st.outputs.assign(n, 0);
  st.has_output.assign(n, 0);
  st.sent_words.assign(n, 0);
  st.received_words.assign(n, 0);

  if (instance.graph.is_directed()) {
    st.in_rows.assign(n, BitVector(n));
    for (NodeId u = 0; u < n; ++u) {
      const BitVector& r = instance.graph.row(u);
      for (std::size_t v = r.find_first(); v < r.size();
           v = r.find_first(v + 1)) {
        st.in_rows[v].set(u);
      }
    }
  }
  if (instance.private_bits.empty()) {
    st.private_bits_storage = private_bit_encoding(instance.graph);
    st.private_bits = &st.private_bits_storage;
  } else {
    st.private_bits = &instance.private_bits;
  }

  // Attach the round trace, if any: Config::trace wins, else the
  // process-wide default (benches' --trace). try_acquire keeps a trace
  // single-run — a nested Engine::run seeing the same trace (or two
  // concurrent runs sharing the global) executes untraced instead of
  // interleaving records.
  RoundTrace* trace = config.trace != nullptr ? config.trace : trace::global();
  if (trace != nullptr && !trace->try_acquire()) trace = nullptr;
  st.trace = trace;
  if (trace != nullptr) {
    trace->on_run_begin(n, st.bandwidth);
    st.trace_prev_sent.assign(n, 0);
    st.trace_prev_recv.assign(n, 0);
  }
  // Close the trace on every exit path: an aborting run (ModelViolation,
  // program exception) still flushes its spans and releases the acquire.
  struct TraceCloser {
    SharedState& st;
    ~TraceCloser() {
      if (st.trace == nullptr) return;
      CostMeter c = st.cost;
      for (NodeId v = 0; v < st.n; ++v) {
        c.max_node_sent = std::max(c.max_node_sent, st.sent_words[v]);
        c.max_node_received = std::max(c.max_node_received,
                                       st.received_words[v]);
      }
      st.trace->on_run_end(c);
    }
  } trace_closer{st};

  // A node program that itself calls Engine::run (nested simulation) must
  // not re-enter the shared worker pool from one of its fibers.
  Scheduler* sched = session_sched;
  std::unique_ptr<Scheduler> owned_sched;
  if (sched == nullptr) {
    ExecutionBackend backend = config.backend;
    if (detail::on_scheduler_fiber()) {
      backend = ExecutionBackend::kThreadPerNode;
    }
    owned_sched = detail::make_scheduler(backend, config.workers,
                                         config.fiber_stack_bytes);
    sched = owned_sched.get();
  } else {
    // A session scheduler cannot be rerouted to thread-per-node mid-run;
    // nested simulation must go through plain Engine::run.
    CCQ_CHECK_MSG(!detail::on_scheduler_fiber(),
                  "EngineSession::run called from inside a node program; "
                  "nested simulation must use Engine::run");
  }
  sched->enable_stats(trace != nullptr);
  st.sched = sched;
  sched->run(n, [&st, &program](NodeId v) {
    NodeCtx ctx = EngineAccess::make(v, &st);
    program(ctx);
  });

  for (NodeId v = 0; v < n; ++v) {
    CCQ_CHECK_MSG(st.has_output[v],
                  "node " << v << " terminated without calling output()");
  }
  RunResult result;
  result.outputs = std::move(st.outputs);
  result.cost = st.cost;
  for (NodeId v = 0; v < n; ++v) {
    result.cost.max_node_sent =
        std::max(result.cost.max_node_sent, st.sent_words[v]);
    result.cost.max_node_received =
        std::max(result.cost.max_node_received, st.received_words[v]);
  }
  return result;
}

}  // namespace
}  // namespace detail

RunResult Engine::run(const Instance& instance, const NodeProgram& program,
                      const Config& config) {
  return detail::run_engine(instance, program, config, nullptr, nullptr);
}

EngineSession::EngineSession(const Shape& shape) : shape_(shape) {
  CCQ_CHECK_MSG(shape.n >= 1 && shape.n <= 8192,
                "EngineSession shape.n = " << shape.n
                                           << " outside [1, 8192]");
  sched_ = detail::make_scheduler(shape.backend, shape.workers,
                                  shape.fiber_stack_bytes);
  plane_ = detail::make_message_plane(shape.plane);
}

EngineSession::~EngineSession() = default;

RunResult EngineSession::run(const Instance& instance,
                             const NodeProgram& program,
                             const Engine::Config& config) {
  // The warm objects are shaped by (n, B, plane, backend, workers, stacks);
  // a config naming a different shape must not silently run on them — the
  // caller keyed its cache wrong.
  CCQ_CHECK_MSG(instance.graph.n() == shape_.n,
                "EngineSession built for n = "
                    << shape_.n << " got an instance with n = "
                    << instance.graph.n());
  CCQ_CHECK_MSG(config.bandwidth_multiplier == shape_.bandwidth_multiplier &&
                    config.plane == shape_.plane &&
                    config.backend == shape_.backend &&
                    config.workers == shape_.workers &&
                    config.fiber_stack_bytes == shape_.fiber_stack_bytes,
                "EngineSession::run config names a different engine shape "
                "than the session was built for");
  RunResult result = detail::run_engine(instance, program, config,
                                        sched_.get(), plane_.get());
  ++runs_;  // only counted when the run completed without throwing
  return result;
}

std::vector<BitVector> private_bit_encoding(const Graph& g) {
  const NodeId n = g.n();
  std::vector<BitVector> bits(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      bits[u].push_back(g.has_edge(u, v));
    }
  }
  return bits;
}

}  // namespace ccq
