#pragma once

// The CONGEST model, for comparison (§2 of the paper: CONGEST lower bounds
// "boil down to constructing graphs with bottlenecks ... A key motivation
// for the study of the congested clique model is to understand computation
// in networks that do not have such bottlenecks").
//
// CongestCtx restricts communication to the *input graph's* edges: a node
// may send one ≤B-bit word per incident edge per round. Same engine, same
// meters — so clique-vs-CONGEST comparisons are apples-to-apples measured
// rounds, and the bottleneck phenomenon (bench_congest) is demonstrated
// with real message flows.

#include <optional>

#include "clique/engine.hpp"

namespace ccq {

class CongestCtx {
 public:
  explicit CongestCtx(NodeCtx& inner) : inner_(inner) {}

  NodeId id() const { return inner_.id(); }
  NodeId n() const { return inner_.n(); }
  unsigned bandwidth() const { return inner_.bandwidth(); }
  const BitVector& adj_row() const { return inner_.adj_row(); }
  bool weighted() const { return inner_.weighted(); }
  std::uint32_t edge_weight(NodeId u) const {
    return inner_.edge_weight(u);
  }
  const BitVector& private_bits() const { return inner_.private_bits(); }
  std::uint64_t common_seed() const { return inner_.common_seed(); }

  /// One synchronous round: send at most one word along each *incident
  /// input edge*; sending to a non-neighbour is a ModelViolation.
  std::vector<std::optional<Word>> round(
      std::span<const std::pair<NodeId, Word>> sends);

  /// Allocation-free variant: same edge restriction and cost, arena-backed
  /// return (see NodeCtx::round_flat for the view's lifetime).
  FlatInbox round_flat(std::span<const std::pair<NodeId, Word>> sends);

  /// Flood one bit to the whole (connected) graph: rounds = eccentricity
  /// of the source; convenience built on round().
  void output(std::uint64_t v) { inner_.output(v); }
  void decide(bool accept) { inner_.decide(accept); }

 private:
  NodeCtx& inner_;
};

using CongestProgram = std::function<void(CongestCtx&)>;

/// Run a CONGEST program (communication only along g's edges).
RunResult run_congest(const Graph& g, const CongestProgram& program);

}  // namespace ccq
