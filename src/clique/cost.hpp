#pragma once

// Round and bandwidth accounting.
//
// The round counter is the experimental instrument of this whole repository:
// every table reproduced from the paper reports values of this meter, never
// an analytic formula. Messages and bits are tracked as secondary statistics
// (they drive e.g. the Theorem 3 certificate-size experiment).

#include <algorithm>
#include <cstdint>

#include "util/check.hpp"

namespace ccq {

struct CostMeter {
  std::uint64_t rounds = 0;    ///< synchronous communication rounds
  std::uint64_t messages = 0;  ///< individual ≤B-bit words sent (self excl.)
  std::uint64_t bits = 0;      ///< total bits across those words
  std::uint64_t collectives = 0;  ///< engine synchronisation points
  /// Heaviest per-node traffic over the whole run (words sent by any one
  /// node / received by any one node) — the quantities Lenzen-style
  /// routing bounds are stated in (≤ n each ⇒ O(1) rounds).
  std::uint64_t max_node_sent = 0;
  std::uint64_t max_node_received = 0;

  /// Compose two phases run back to back. Totals accumulate; the per-node
  /// maxima are run-wide maxima, so composition takes the larger of the two
  /// phases — summing them would overstate the Lenzen-routing statistic.
  /// RoundTrace::metered_totals() composes traced runs with exactly this
  /// operation, which is why its per-record rounds/messages/bits sum to the
  /// meter while max_sent/max_received do not (clique/trace.hpp).
  ///
  /// Accumulation is overflow-checked: the meter is the experimental
  /// instrument of the repository, and composition is unbounded (a trace
  /// accumulates runs until clear()), so a wrapped total must raise a
  /// ModelViolation rather than quietly corrupt every table built on it.
  void add(const CostMeter& o) {
    rounds = checked_sum(rounds, o.rounds, "rounds");
    messages = checked_sum(messages, o.messages, "messages");
    bits = checked_sum(bits, o.bits, "bits");
    collectives = checked_sum(collectives, o.collectives, "collectives");
    max_node_sent = std::max(max_node_sent, o.max_node_sent);
    max_node_received = std::max(max_node_received, o.max_node_received);
  }

 private:
  static std::uint64_t checked_sum(std::uint64_t a, std::uint64_t b,
                                   const char* what) {
    const std::uint64_t s = a + b;
    CCQ_CHECK_MSG(s >= a, "cost meter overflow: " << what << " total "
                              << a << " + " << b
                              << " exceeds 64 bits");
    return s;
  }
};

}  // namespace ccq
