#pragma once

// Problem instances as presented to the clique engine.
//
// §3 of the paper: node v initially knows its unique identifier and the
// edges incident to v. We additionally allow (a) per-node private input bits
// — the encoding used by the counting arguments, where each potential edge's
// bit belongs to exactly one endpoint — and (b) a stack of labellings
// z_1, ..., z_k for the nondeterministic / alternating experiments (§5, §6).

#include <vector>

#include "graph/graph.hpp"
#include "util/bit_vector.hpp"

namespace ccq {

/// One label per node — a "labelling" in the paper's sense.
using Labelling = std::vector<BitVector>;

struct Instance {
  Graph graph;
  /// Optional private inputs (size n or empty). When empty and a program
  /// asks for private bits, the engine derives the §3 private-bit encoding
  /// from the graph: bit for edge {u,v} with u<v belongs to u.
  std::vector<BitVector> private_bits;
  /// Nondeterministic labellings z_1 ... z_k (possibly empty).
  std::vector<Labelling> labels;

  static Instance of(Graph g) {
    Instance inst;
    inst.graph = std::move(g);
    return inst;
  }

  Instance with_label(Labelling z) const {
    Instance copy = *this;
    copy.labels.push_back(std::move(z));
    return copy;
  }
};

/// The §3 private-bit encoding: the bit of edge {u,v}, u<v, is assigned to
/// endpoint u; node v's private string lists its owned bits in increasing
/// order of the other endpoint. Every node owns n-1-v ≥ 0 bits; the paper's
/// ⌊(n-1)/2⌋ lower bound per node is an inessential normalisation (one round
/// converts between encodings either way, as noted in §3).
std::vector<BitVector> private_bit_encoding(const Graph& g);

}  // namespace ccq
