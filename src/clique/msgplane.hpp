#pragma once

// Message planes: the engine's delivery substrate.
//
// Every collective funnels through the same superstep shape — each node
// deposits an outbox, a leader step delivers all deposits and meters the
// cost, and each node reads its inbox. A MessagePlane owns that data path.
// Two implementations exist:
//
//   * MessagePlaneKind::kLegacy — per-ordered-pair vector queues
//     (`WordQueues`), the original delivery loop. Θ(n²) vector objects per
//     collective regardless of traffic; kept as the auditable semantic
//     baseline.
//
//   * MessagePlaneKind::kFlat (default) — a reusable CSR-style arena.
//     Deposits are recorded as pointers into node-owned buffers plus a
//     per-source histogram row (one scan validates bandwidth and counts at
//     the same time). Delivery is a two-pass counting sort: column sums →
//     exclusive prefix (inbox base per destination) → per-pair cursors →
//     scatter into one shared flat Word arena. The column, cursor and
//     scatter passes run on the scheduler's worker team
//     (Scheduler::leader_parallel_for) over disjoint node ranges, and all
//     arrays persist across collectives, so steady-state collectives
//     perform zero heap allocations and the delivery step scales with
//     cores.
//
// Both planes deliver bit-for-bit identical inboxes and meter identical
// costs (asserted by tests/clique/msgplane_test.cpp across backends,
// worker counts and traffic patterns); determinism is structural — chunk
// outputs are partitioned by node id, and every reduction the leader
// performs iterates nodes in id order.

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "clique/scheduler.hpp"
#include "clique/word.hpp"
#include "graph/graph.hpp"

namespace ccq {

/// Per-destination (or per-source) word queues; index = peer node id.
using WordQueues = std::vector<std::vector<Word>>;

/// Which delivery substrate Engine::run uses (Engine::Config::plane).
enum class MessagePlaneKind {
  kLegacy,  ///< per-pair vector queues (reference)
  kFlat,    ///< default: arena-backed counting-sort delivery
};

/// Read-only view of one node's delivered inbox: the words received from
/// each source, FIFO per source, as spans into the plane's storage. Valid
/// until this node's next collective (the next delivery reuses the arena).
class FlatInbox {
 public:
  std::span<const Word> from(NodeId src) const {
    if (cursor_ != nullptr) {
      // Flat plane: cursors sit one past the end of each (src → self) run
      // after the scatter; the run length is the histogram entry. An empty
      // run must not touch the cursor at all — the block-sparse delivery
      // passes skip cursor writes for untouched shard×shard blocks, so a
      // zero-count entry may sit over a stale cursor value.
      const std::size_t i = static_cast<std::size_t>(src) * n_ + self_;
      const std::uint32_t count = counts_[i];
      if (count == 0) return {};
      return {words_ + (cursor_[i] - count), count};
    }
    return {words_ + starts_[src],
            static_cast<std::size_t>(starts_[src + 1] - starts_[src])};
  }
  NodeId n() const { return n_; }

 private:
  friend class FlatInboxAccess;
  const Word* words_ = nullptr;
  // Flat-plane layout: row-major [src * n + dst] cursor/count arrays
  // (32-bit: a collective's arena cannot reach 2³² words on any host this
  // simulator fits on, and the engine checks).
  const std::uint32_t* cursor_ = nullptr;
  const std::uint32_t* counts_ = nullptr;
  // Legacy layout: per-source exclusive prefix (n + 1 entries).
  const std::uint64_t* starts_ = nullptr;
  NodeId self_ = 0;
  NodeId n_ = 0;
};

namespace detail {

/// Accounting the leader folds into the CostMeter after each delivery.
struct DeliveryAccounting {
  std::uint64_t max_queue = 0;  ///< rounds to drain (self pairs excluded)
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  /// Receiver-side per-collective max: most words delivered into any one
  /// inbox (self excluded). The sender side is validated against B at
  /// deposit time; this is the plane's own report of the symmetric
  /// quantity, which the trace cross-checks against its per-node deltas so
  /// it can never show an impossible inbox.
  std::uint64_t max_node_in = 0;
  std::uint64_t* sent_words = nullptr;      ///< [n] run-wide accumulators
  std::uint64_t* received_words = nullptr;  ///< [n]
};

// The delivery substrate. Deposit methods run on node fibers and may touch
// only slots owned by `self`; they validate the outbox (bandwidth bound,
// destination range, round() uniqueness) during their single scan, so the
// engine never re-walks an outbox just to check it. deliver() runs in the
// serial leader step and may fan work out via sched.leader_parallel_for.
// inbox()/take_queues() run on node fibers after delivery.
class MessagePlane {
 public:
  virtual ~MessagePlane() = default;
  virtual MessagePlaneKind kind() const = 0;

  /// Reset for a run with n nodes and B-bit words.
  virtual void init(NodeId n, unsigned bandwidth) = 0;

  /// Outbox = one queue per destination. `movable` permits the plane to
  /// move (not copy) the self queue into the inbox — legal only when the
  /// caller passed its outbox by rvalue.
  virtual void deposit_queues(NodeId self, const WordQueues* out,
                              bool movable) = 0;
  /// Outbox = (dst, word) pairs in send order. `unique_dst` enforces
  /// round()'s one-word-per-destination, no-self rule.
  virtual void deposit_pairs(NodeId self,
                             std::span<const std::pair<NodeId, Word>> out,
                             bool unique_dst) = 0;
  /// Outbox = the same word sequence to every other node (broadcast).
  virtual void deposit_broadcast(NodeId self,
                                 std::span<const Word> words) = 0;

  /// Deliver every deposit and fill `acc`. Leader-only.
  virtual void deliver(Scheduler& sched, DeliveryAccounting& acc) = 0;

  /// This node's inbox as per-source spans (see FlatInbox lifetime).
  virtual FlatInbox inbox(NodeId self) = 0;
  /// This node's inbox as per-source queues (exchange() compatibility);
  /// consumes the inbox.
  virtual WordQueues take_queues(NodeId self) = 0;
};

std::unique_ptr<MessagePlane> make_message_plane(MessagePlaneKind kind);

}  // namespace detail
}  // namespace ccq
