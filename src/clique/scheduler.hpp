#pragma once

// Execution backends for the clique engine.
//
// The engine's unit of execution is the *superstep*: all n node programs
// run until they meet at the next collective, a single serial "leader"
// step validates the rendezvous and delivers messages, and everyone
// resumes. Three backends realise this contract:
//
//   * ExecutionBackend::kThreadPerNode — the reference backend: one OS
//     thread per simulated node, rendezvoused through a mutex + condition
//     variable. Simple, but thread-creation and wakeup-storm overhead
//     dominates wall-clock once n reaches the hierarchy-bench sizes.
//
//   * ExecutionBackend::kPooled — the default: node programs run as
//     cooperatively yielding fibers (ucontext stackful contexts)
//     multiplexed over a fixed worker team hosted on the shared
//     ccq::ThreadPool; workers meet at a sense-reversing spin barrier
//     between the parallel (resume fibers) and serial (validate +
//     deliver) phases of each superstep. Workers claim fibers from a
//     shared run list (one atomic fetch_add per resume), so load balance
//     is dynamic but every resume touches a contended cache line.
//
//   * ExecutionBackend::kSharded — owner-computes for n ≫ cores: the node
//     id space is split into contiguous shards (Config::workers = shard
//     count) assigned statically to workers. Each worker drives a plain
//     id-ordered loop over its owned nodes — no shared claim counter on
//     the resume path — and creates its fibers itself on first resume, so
//     stacks are allocated (and first-touched) by the worker that will
//     run them for the whole run (DESIGN.md §12).
//
// All backends produce bit-for-bit identical RunResults (outputs, rounds,
// messages, bits, per-node maxima) for any program and any worker or shard
// count — asserted by tests/clique/scheduler_test.cpp and
// tests/clique/sharded_test.cpp. Message delivery and cost accounting
// always happen in the serial leader step, iterating nodes in id order, so
// scheduling order can never leak into results.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "graph/graph.hpp"

namespace ccq {

/// Which execution backend Engine::run uses (Engine::Config::backend).
enum class ExecutionBackend {
  kThreadPerNode,  ///< reference: one OS thread per simulated node
  kPooled,         ///< default: fibers over a fixed worker pool
  kSharded,        ///< owner-computes: static contiguous node shards
};

/// Occupancy counters a scheduler accumulates when stats are enabled
/// (RoundTrace observability; see clique/trace.hpp). Run-wide and
/// monotonic — the trace diffs consecutive snapshots per collective. All
/// values are wall-clock/backend-shaped: they are *not* covered by the
/// determinism contract.
struct SchedulerStats {
  std::uint64_t fiber_switches = 0;   ///< node-fiber resumes (fiber backends)
  std::uint64_t parallel_jobs = 0;    ///< leader_parallel_for invocations
  std::uint64_t parallel_chunks = 0;  ///< chunks across those jobs
};

namespace detail {

// Thrown into node programs to unwind them after another node failed (or a
// model rule was violated); never escapes Scheduler::run.
struct Aborted {};

// Identifies a collective operation for divergence checking.
struct OpTag {
  int opcode = 0;
  std::uint64_t param = 0;
  bool operator==(const OpTag& o) const {
    return opcode == o.opcode && param == o.param;
  }
};

// Runs n node bodies to completion, rendezvousing them at collectives.
//
// Contract (identical across backends; the determinism suite asserts it):
//   * run(n, body) invokes body(v) exactly once for every v in [0, n) and
//     returns once every body has unwound; the first captured error (a body
//     exception, a leader exception, or a divergence ModelViolation) is
//     rethrown.
//   * collective(id, tag, deposit, leader) may only be called from inside
//     body(id). deposit() runs immediately and may touch only node-owned
//     slots. Once all n nodes have arrived with equal tags, leader() runs
//     exactly once, serially, with every deposit visible; afterwards all
//     nodes resume with the leader's writes visible. Unequal tags, or a
//     body returning while others sit inside a collective, abort the run
//     with a ModelViolation.
//   * after an abort, nodes parked in collectives are resumed with Aborted
//     so their stacks unwind; Aborted itself never escapes run().
class Scheduler {
 public:
  using NodeBody = std::function<void(NodeId)>;
  using Thunk = std::function<void()>;
  using ChunkFn = std::function<void(std::size_t)>;

  virtual ~Scheduler() = default;

  virtual void run(NodeId n, const NodeBody& body) = 0;
  virtual void collective(NodeId id, OpTag tag, const Thunk& deposit,
                          const Thunk& leader) = 0;

  // Run fn(chunk) for every chunk in [0, chunks), possibly in parallel.
  // May only be called from inside a leader() thunk: the pooled backend
  // hands chunks to the workers spinning at the superstep barrier, so the
  // serial phase scales with cores instead of running leader-only. Each
  // chunk must write only chunk-owned data (the message plane partitions
  // by node id), which makes the result schedule-independent by
  // construction. The default implementation runs chunks serially in
  // index order — the reference semantics every backend must match.
  virtual void leader_parallel_for(std::size_t chunks, const ChunkFn& fn) {
    count_job(chunks);
    for (std::size_t i = 0; i < chunks; ++i) fn(i);
  }

  /// Occupancy accounting for the round trace. Off by default: with stats
  /// disabled the counters cost one branch per fiber resume / leader job
  /// and nothing per deposited word. Engine::run enables them only when a
  /// RoundTrace is attached.
  void enable_stats(bool on) { stats_on_ = on; }
  bool stats_enabled() const { return stats_on_; }
  SchedulerStats stats() const {
    SchedulerStats s;
    s.fiber_switches = fiber_switches_.load(std::memory_order_relaxed);
    s.parallel_jobs = parallel_jobs_;
    s.parallel_chunks = parallel_chunks_;
    return s;
  }

 protected:
  // Job/chunk counters are leader-owned (serial phase); the fiber-switch
  // counter is bumped by whichever worker resumes a fiber, so it is the one
  // atomic (relaxed — it is a telemetry tally, not a synchronisation edge).
  void count_job(std::size_t chunks) {
    if (stats_on_) {
      parallel_jobs_ += 1;
      parallel_chunks_ += chunks;
    }
  }
  void count_switch() {
    if (stats_on_) {
      fiber_switches_.fetch_add(1, std::memory_order_relaxed);
    }
  }

 private:
  bool stats_on_ = false;
  std::atomic<std::uint64_t> fiber_switches_{0};
  std::uint64_t parallel_jobs_ = 0;
  std::uint64_t parallel_chunks_ = 0;
};

/// Backend factory. `workers` caps the pooled worker team, or sets the
/// sharded backend's shard count (0 = one per shared-pool thread);
/// `stack_bytes` sizes fiber stacks (0 = 256 KiB). Both are ignored by the
/// thread-per-node backend. Value validation (workers ≤ n, stack floor) is
/// Engine::run's job — the factory only wires the backend.
std::unique_ptr<Scheduler> make_scheduler(ExecutionBackend backend,
                                          std::size_t workers,
                                          std::size_t stack_bytes);

/// True when the calling thread is currently executing a pooled-scheduler
/// fiber. Engine::run uses this to route nested runs (a node program that
/// itself simulates a clique) to the thread-per-node backend instead of
/// deadlocking the shared worker pool.
bool on_scheduler_fiber();

}  // namespace detail
}  // namespace ccq
