#include "clique/routing.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace ccq {

namespace {

/// Send list in (dst, word) form for NodeCtx::exchange_flat — the
/// allocation-free outbox representation (no per-destination vectors).
using SendList = std::vector<std::pair<NodeId, Word>>;

}  // namespace

std::vector<std::pair<NodeId, Word>> route_direct(
    NodeCtx& ctx, const std::vector<RoutedMessage>& messages) {
  const NodeId n = ctx.n();
  CCQ_TRACE_SPAN(ctx, "route-direct");
  SendList sends;
  sends.reserve(messages.size());
  for (const RoutedMessage& m : messages) {
    CCQ_CHECK_MSG(m.dst < n, "route_direct: destination out of range");
    sends.emplace_back(m.dst, m.payload);
  }
  const FlatInbox in = ctx.exchange_flat(sends);
  std::vector<std::pair<NodeId, Word>> received;
  for (NodeId src = 0; src < n; ++src) {
    for (const Word& w : in.from(src)) received.emplace_back(src, w);
  }
  return received;
}

std::vector<std::pair<NodeId, Word>> route_balanced(
    NodeCtx& ctx, const std::vector<RoutedMessage>& messages) {
  const NodeId n = ctx.n();
  const unsigned idb = node_id_bits(n);

  // Phase 1: stripe destination-sorted messages across intermediaries,
  // starting from a seed-salted offset so that structured workloads do not
  // systematically collide. Each relayed message is a (dst-header, payload)
  // word pair on the wire.
  std::vector<RoutedMessage> sorted = messages;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const RoutedMessage& a, const RoutedMessage& b) {
                     return a.dst < b.dst;
                   });
  const NodeId offset = static_cast<NodeId>(mix64_below(
      ctx.common_seed() ^ (static_cast<std::uint64_t>(ctx.id()) + 1), n));

  SendList phase1;
  phase1.reserve(2 * sorted.size());
  for (std::size_t j = 0; j < sorted.size(); ++j) {
    CCQ_CHECK_MSG(sorted[j].dst < n, "route_balanced: destination range");
    const NodeId mid = static_cast<NodeId>(
        (offset + j) % static_cast<std::size_t>(n));
    phase1.emplace_back(mid, Word(sorted[j].dst, idb));
    phase1.emplace_back(mid, sorted[j].payload);
  }
  FlatInbox relay_in;
  {
    CCQ_TRACE_SPAN(ctx, "route-scatter");
    relay_in = ctx.exchange_flat(phase1);
  }

  // Phase 2: forward to the true destinations with an origin header. The
  // relay inbox spans stay valid until this node's next collective, so they
  // are fully consumed before the second exchange below.
  SendList phase2;
  for (NodeId src = 0; src < n; ++src) {
    const auto q = relay_in.from(src);
    CCQ_CHECK_MSG(q.size() % 2 == 0, "route_balanced: torn relay pair");
    for (std::size_t i = 0; i < q.size(); i += 2) {
      const NodeId dst = static_cast<NodeId>(q[i].value);
      CCQ_CHECK_MSG(dst < n, "route_balanced: relayed destination range");
      phase2.emplace_back(dst, Word(src, idb));
      phase2.emplace_back(dst, q[i + 1]);
    }
  }
  FlatInbox final_in;
  {
    CCQ_TRACE_SPAN(ctx, "route-deliver");
    final_in = ctx.exchange_flat(phase2);
  }

  std::vector<std::pair<NodeId, Word>> received;
  for (NodeId mid = 0; mid < n; ++mid) {
    const auto q = final_in.from(mid);
    CCQ_CHECK_MSG(q.size() % 2 == 0, "route_balanced: torn delivery pair");
    for (std::size_t i = 0; i < q.size(); i += 2) {
      received.emplace_back(static_cast<NodeId>(q[i].value), q[i + 1]);
    }
  }
  std::stable_sort(received.begin(), received.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  return received;
}

std::vector<std::pair<NodeId, BitVector>> route_blocks(
    NodeCtx& ctx, const std::vector<RoutedBlock>& blocks) {
  const NodeId n = ctx.n();
  const unsigned idb = node_id_bits(n);
  const unsigned B = ctx.bandwidth();
  const std::uint64_t max_len = std::uint64_t{1} << (2 * idb);

  // Assign per-(src,dst) sequence numbers in submission order and stripe
  // blocks across intermediaries (block-wise, destination-sorted).
  struct Item {
    NodeId dst;
    std::uint64_t seq;
    const BitVector* payload;
  };
  std::vector<Item> items;
  items.reserve(blocks.size());
  // Blocks addressed to self never touch the network (free local
  // computation); they are appended to the result directly.
  std::vector<const BitVector*> self_blocks;
  {
    std::vector<std::uint64_t> next_seq(n, 0);
    for (const RoutedBlock& b : blocks) {
      CCQ_CHECK_MSG(b.dst < n, "route_blocks: destination out of range");
      CCQ_CHECK_MSG(b.payload.size() < max_len,
                    "route_blocks: block too large to frame");
      if (b.dst == ctx.id()) {
        self_blocks.push_back(&b.payload);
        continue;
      }
      items.push_back({b.dst, next_seq[b.dst]++, &b.payload});
    }
    for (NodeId v = 0; v < n; ++v) {
      CCQ_CHECK_MSG(next_seq[v] <= (std::uint64_t{1} << idb),
                    "route_blocks: too many blocks for one destination");
    }
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.dst < b.dst; });

  const NodeId offset = static_cast<NodeId>(mix64_below(
      ctx.common_seed() ^ (static_cast<std::uint64_t>(ctx.id()) + 7), n));

  auto frame = [&](SendList& out, NodeId to, NodeId head, const Item& it) {
    out.emplace_back(to, Word(head, idb));
    out.emplace_back(to, Word(it.seq, idb));
    const std::uint64_t len = it.payload->size();
    out.emplace_back(to, Word(len & ((std::uint64_t{1} << idb) - 1), idb));
    out.emplace_back(to, Word(len >> idb, idb));
    for (const Word& w : encode_bits(*it.payload, B)) out.emplace_back(to, w);
  };

  SendList phase1;
  for (std::size_t j = 0; j < items.size(); ++j) {
    const NodeId mid = static_cast<NodeId>(
        (offset + j) % static_cast<std::size_t>(n));
    frame(phase1, mid, items[j].dst, items[j]);
  }
  FlatInbox relay_in;
  {
    CCQ_TRACE_SPAN(ctx, "blocks-scatter");
    relay_in = ctx.exchange_flat(phase1);
  }

  // Relay: reframe with the origin in the header.
  SendList phase2;
  for (NodeId src = 0; src < n; ++src) {
    const auto q = relay_in.from(src);
    std::size_t pos = 0;
    while (pos < q.size()) {
      CCQ_CHECK_MSG(pos + 4 <= q.size(), "route_blocks: torn frame header");
      const NodeId dst = static_cast<NodeId>(q[pos].value);
      const std::uint64_t seq = q[pos + 1].value;
      const std::uint64_t len = q[pos + 2].value | (q[pos + 3].value << idb);
      const std::size_t nwords = ceil_div(len, B);
      CCQ_CHECK_MSG(pos + 4 + nwords <= q.size(),
                    "route_blocks: torn frame payload");
      CCQ_CHECK_MSG(dst < n, "route_blocks: relayed destination range");
      phase2.emplace_back(dst, Word(src, idb));
      phase2.emplace_back(dst, Word(seq, idb));
      phase2.emplace_back(dst,
                          Word(len & ((std::uint64_t{1} << idb) - 1), idb));
      phase2.emplace_back(dst, Word(len >> idb, idb));
      for (std::size_t i = 0; i < nwords; ++i)
        phase2.emplace_back(dst, q[pos + 4 + i]);
      pos += 4 + nwords;
    }
  }
  FlatInbox final_in;
  {
    CCQ_TRACE_SPAN(ctx, "blocks-deliver");
    final_in = ctx.exchange_flat(phase2);
  }

  struct Received {
    NodeId src;
    std::uint64_t seq;
    BitVector payload;
  };
  std::vector<Received> got;
  for (NodeId mid = 0; mid < n; ++mid) {
    const auto q = final_in.from(mid);
    std::size_t pos = 0;
    while (pos < q.size()) {
      CCQ_CHECK_MSG(pos + 4 <= q.size(), "route_blocks: torn delivery");
      const NodeId src = static_cast<NodeId>(q[pos].value);
      const std::uint64_t seq = q[pos + 1].value;
      const std::uint64_t len = q[pos + 2].value | (q[pos + 3].value << idb);
      const std::size_t nwords = ceil_div(len, B);
      CCQ_CHECK_MSG(pos + 4 + nwords <= q.size(),
                    "route_blocks: torn delivery payload");
      got.push_back({src, seq, decode_words(q.subspan(pos + 4, nwords), len)});
      pos += 4 + nwords;
    }
  }
  for (std::size_t i = 0; i < self_blocks.size(); ++i) {
    got.push_back({ctx.id(), i, *self_blocks[i]});
  }
  std::sort(got.begin(), got.end(), [](const Received& a, const Received& b) {
    return a.src != b.src ? a.src < b.src : a.seq < b.seq;
  });
  std::vector<std::pair<NodeId, BitVector>> out;
  out.reserve(got.size());
  for (auto& r : got) out.emplace_back(r.src, std::move(r.payload));
  return out;
}

}  // namespace ccq
