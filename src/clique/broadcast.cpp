#include "clique/broadcast.hpp"

namespace ccq {

std::vector<std::optional<Word>> BcastCtx::round(std::optional<Word> mine) {
  std::vector<std::pair<NodeId, Word>> sends;
  if (mine.has_value()) {
    sends.reserve(n() > 0 ? n() - 1 : 0);
    for (NodeId v = 0; v < n(); ++v) {
      if (v != id()) sends.emplace_back(v, *mine);
    }
  }
  auto received = inner_.round(sends);
  if (mine.has_value()) received[id()] = *mine;  // own word visible locally
  return received;
}

RunResult run_broadcast_clique(const Instance& instance,
                               const BcastProgram& program) {
  return Engine::run(instance, [&program](NodeCtx& ctx) {
    BcastCtx bctx(ctx);
    program(bctx);
  });
}

RunResult run_broadcast_clique(const Graph& g,
                               const BcastProgram& program) {
  return run_broadcast_clique(Instance::of(g), program);
}

}  // namespace ccq
