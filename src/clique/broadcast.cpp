#include "clique/broadcast.hpp"

namespace ccq {

std::vector<std::optional<Word>> BcastCtx::round(std::optional<Word> mine) {
  std::vector<std::pair<NodeId, Word>> sends;
  if (mine.has_value()) {
    sends.reserve(n() > 0 ? n() - 1 : 0);
    for (NodeId v = 0; v < n(); ++v) {
      if (v != id()) sends.emplace_back(v, *mine);
    }
  }
  // round_flat keeps round()'s cost semantics (exactly 1 round even when
  // everyone stays silent) but returns arena-backed spans, skipping the
  // per-call queue allocations of the generic round().
  const FlatInbox in = inner_.round_flat(sends);
  std::vector<std::optional<Word>> received(n());
  for (NodeId v = 0; v < n(); ++v) {
    const auto got = in.from(v);
    if (!got.empty()) received[v] = got.front();
  }
  if (mine.has_value()) received[id()] = *mine;  // own word visible locally
  return received;
}

RunResult run_broadcast_clique(const Instance& instance,
                               const BcastProgram& program) {
  return Engine::run(instance, [&program](NodeCtx& ctx) {
    BcastCtx bctx(ctx);
    program(bctx);
  });
}

RunResult run_broadcast_clique(const Graph& g,
                               const BcastProgram& program) {
  return run_broadcast_clique(Instance::of(g), program);
}

}  // namespace ccq
