#include "harness/sweep.hpp"

#include <chrono>
#include <sstream>

#include "algebra/distributed_mm.hpp"
#include "clique/chaos.hpp"
#include "clique/engine.hpp"
#include "clique/routing.hpp"
#include "clique/trace.hpp"
#include "util/rng.hpp"

namespace ccq::harness {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv_fold(std::uint64_t fp, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i) {
    fp = (fp ^ (v & 0xff)) * kFnvPrime;
    v >>= 8;
  }
  return fp;
}

// ---- registered node programs -------------------------------------------
//
// Each program reads only the cell's instance (adjacency row + id) so a
// cell is a pure function of its CellSpec. Outputs are per-node
// fingerprints: any delivery or compute divergence is visible in output_fp.

// One payload word per incident edge, delivered link-direct. Payloads are
// single bits, so the program is insensitive to chaos bit-flips' *framing*
// (a flipped payload changes outputs, never the collective structure).
void routing_direct_program(NodeCtx& ctx) {
  const NodeId n = ctx.n();
  std::vector<RoutedMessage> msgs;
  const BitVector& adj = ctx.adj_row();
  for (NodeId v = 0; v < n; ++v)
    if (adj.get(v)) msgs.push_back({v, Word((ctx.id() + v) & 1, 1)});
  std::uint64_t fp = kFnvOffset;
  for (const auto& [src, w] : route_direct(ctx, msgs))
    fp = fnv_fold(fp, (std::uint64_t{src} << 8) | w.value);
  ctx.output(fp);
}

// The same per-edge load through the two-phase balanced router (relay
// headers + salted stripes — the Lenzen-regime collective).
void routing_balanced_program(NodeCtx& ctx) {
  const NodeId n = ctx.n();
  std::vector<RoutedMessage> msgs;
  const BitVector& adj = ctx.adj_row();
  for (NodeId v = 0; v < n; ++v)
    if (adj.get(v)) msgs.push_back({v, Word((ctx.id() + v) & 1, 1)});
  std::uint64_t fp = kFnvOffset;
  for (const auto& [src, w] : route_balanced(ctx, msgs))
    fp = fnv_fold(fp, (std::uint64_t{src} << 8) | w.value);
  ctx.output(fp);
}

// Learn-everything primitive: every node broadcasts its adjacency row
// (⌈n/B⌉ rounds) and fingerprints the full graph it received.
void broadcast_adj_program(NodeCtx& ctx) {
  std::uint64_t fp = kFnvOffset;
  for (const BitVector& row : ctx.broadcast(ctx.adj_row()))
    for (std::uint64_t w : row.words()) fp = fnv_fold(fp, w);
  ctx.output(fp);
}

// Boolean A² of the adjacency matrix via the 3-D semiring schedule
// (§7 / Censor-Hillel et al.); node v ends with row v of A².
void mm_bool_3d_program(NodeCtx& ctx) {
  const NodeId n = ctx.n();
  const BitVector& adj = ctx.adj_row();
  std::vector<std::uint8_t> row(n);
  for (NodeId j = 0; j < n; ++j) row[j] = adj.get(j) ? 1 : 0;
  const auto row_c = mm_distributed_3d<BoolSemiring>(ctx, row, row, 1);
  std::uint64_t fp = kFnvOffset;
  for (NodeId j = 0; j < n; ++j) fp = fnv_fold(fp, row_c[j]);
  ctx.output(fp);
}

// Triangle count through v: |{ j : (A²)[v][j] ∧ A[v][j] }| — the MM-based
// detector pattern, output-sensitive to the family's clustering.
void triangle_mm_program(NodeCtx& ctx) {
  const NodeId n = ctx.n();
  const BitVector& adj = ctx.adj_row();
  std::vector<std::uint8_t> row(n);
  for (NodeId j = 0; j < n; ++j) row[j] = adj.get(j) ? 1 : 0;
  const auto row_c = mm_distributed_3d<BoolSemiring>(ctx, row, row, 1);
  std::uint64_t count = 0;
  for (NodeId j = 0; j < n; ++j)
    if (row_c[j] != 0 && adj.get(j)) ++count;
  ctx.output(count);
}

struct Algo {
  const char* name;
  void (*fn)(NodeCtx&);
};

constexpr Algo kAlgos[] = {
    {"routing_direct", routing_direct_program},
    {"routing_balanced", routing_balanced_program},
    {"broadcast_adj", broadcast_adj_program},
    {"mm_bool_3d", mm_bool_3d_program},
    {"triangle_mm", triangle_mm_program},
};

}  // namespace

NodeProgram find_algorithm(const std::string& name) {
  for (const Algo& a : kAlgos)
    if (name == a.name) return NodeProgram(a.fn);
  std::ostringstream os;
  os << "unknown sweep algorithm '" << name << "'";
  throw ModelViolation(os.str());
}

bool meters_equal(const CostMeter& a, const CostMeter& b) {
  return a.rounds == b.rounds && a.messages == b.messages &&
         a.bits == b.bits && a.collectives == b.collectives &&
         a.max_node_sent == b.max_node_sent &&
         a.max_node_received == b.max_node_received;
}

std::uint64_t outputs_fp(const std::vector<std::uint64_t>& outputs) {
  std::uint64_t fp = kFnvOffset;
  for (std::uint64_t v : outputs) fp = fnv_fold(fp, v);
  return fp;
}

std::uint64_t ledger_fingerprint(const RoundTrace& trace) {
  std::uint64_t fp = kFnvOffset;
  auto fold_str = [&](const std::string& s) {
    for (unsigned char c : s) fp = (fp ^ c) * kFnvPrime;
    fp = (fp ^ 0xff) * kFnvPrime;  // terminator: "ab","c" != "a","bc"
  };
  for (const TraceRecord& r : trace.records()) {
    fold_str(r.op);
    fold_str(r.phase);
    fp = fnv_fold(fp, r.run);
    fp = fnv_fold(fp, r.collective);
    fp = fnv_fold(fp, r.round_begin);
    fp = fnv_fold(fp, r.rounds);
    fp = fnv_fold(fp, r.messages);
    fp = fnv_fold(fp, r.bits);
    fp = fnv_fold(fp, r.max_sent);
    fp = fnv_fold(fp, r.max_received);
    for (std::uint32_t b : r.sent_hist.bucket) fp = fnv_fold(fp, b);
    for (std::uint32_t b : r.received_hist.bucket) fp = fnv_fold(fp, b);
  }
  return fp;
}

Engine::Config cell_engine_config(const CellSpec& spec) {
  Engine::Config cfg;
  cfg.plane = spec.plane;
  cfg.backend = spec.backend;
  cfg.workers = std::min<std::size_t>(spec.workers, spec.n);
  cfg.bandwidth_multiplier = spec.bandwidth;
  cfg.seed = mix64(spec.seed ^ 0x5ce9a11ceull);
  return cfg;
}

ChaosPlan::Config cell_chaos_config(const CellSpec& spec) {
  ChaosPlan::Config ch;
  ch.seed = mix64(spec.seed ^ 0xc4a05ull);
  ch.p_flip = spec.chaos_flip;
  ch.p_drop = spec.chaos_drop;
  ch.p_dup = spec.chaos_dup;
  return ch;
}

const std::vector<std::string>& algorithm_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const Algo& a : kAlgos) v.emplace_back(a.name);
    return v;
  }();
  return names;
}

CellResult run_cell(const CellSpec& spec, int trials) {
  CCQ_CHECK_MSG(trials >= 1, "run_cell requires trials >= 1");
  CellResult out;
  out.spec = spec;

  const Graph g = corpus::make_family(spec.family, spec.n);
  const NodeProgram program = find_algorithm(spec.algorithm);
  Engine::Config cfg = cell_engine_config(spec);

  bool have_ref = false;
  std::vector<std::uint64_t> ref_outputs;
  for (int t = 0; t < trials; ++t) {
    RoundTrace trace;
    cfg.trace = &trace;
    ChaosPlan plan(cell_chaos_config(spec));
    cfg.chaos = spec.chaos ? &plan : nullptr;

    RunResult res;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      res = Engine::run(g, program, cfg);
    } catch (const std::exception& e) {
      out.ok = false;
      out.fail_reason = std::string("engine run failed: ") + e.what();
      return out;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (t == 0 || ms < out.wall_ms) out.wall_ms = ms;

    // Per-cell ledger cross-check: the trace's per-record sums must
    // reproduce its own metered totals, and those totals must be exactly
    // the run's CostMeter — the meter and the ledger are two independent
    // accountings of the same collectives.
    if (!trace.totals_match()) {
      out.ok = false;
      out.fail_reason = "trace ledger does not sum to its metered totals";
      return out;
    }
    if (!meters_equal(trace.metered_totals(), res.cost)) {
      out.ok = false;
      out.fail_reason = "trace metered totals diverge from the run's meter";
      return out;
    }

    if (!have_ref) {
      have_ref = true;
      ref_outputs = res.outputs;
      out.cost = res.cost;
      out.output_fp = outputs_fp(res.outputs);
      out.faults = plan.total_faults();
    } else {
      if (res.outputs != ref_outputs || !meters_equal(res.cost, out.cost)) {
        out.ok = false;
        out.fail_reason = "trials disagree (nondeterministic cell)";
        return out;
      }
      if (plan.total_faults() != out.faults) {
        out.ok = false;
        out.fail_reason = "fault schedule not reproducible across trials";
        return out;
      }
    }
  }
  out.ok = true;
  return out;
}

std::string check_worker_determinism(const CellSpec& spec) {
  CellSpec alt = spec;
  // Pick a genuinely different worker/shard count (clamped to n inside
  // cell_config); determinism across team sizes is the engine contract
  // every backend pins.
  alt.workers = spec.workers == 3 ? 2 : 3;
  const CellResult a = run_cell(spec, 1);
  const CellResult b = run_cell(alt, 1);
  if (!a.ok) return "base cell failed: " + a.fail_reason;
  if (!b.ok) return "alt-workers cell failed: " + b.fail_reason;
  if (a.output_fp != b.output_fp)
    return "outputs differ across worker counts";
  if (!meters_equal(a.cost, b.cost))
    return "meters differ across worker counts";
  if (a.faults != b.faults)
    return "fault counts differ across worker counts";
  return "";
}

}  // namespace ccq::harness
