#pragma once

// Declarative sweep manifests for the scenario matrix (DESIGN.md §14).
//
// A manifest is a JSON file describing a grid of measurement cells:
// {algorithm} × {graph family} × {n} × {plane/backend} × {chaos on/off}.
// Each entry in "cells" is a *group* whose axis-valued keys (algorithm,
// family, n, plane, backend, chaos) may be single values or arrays; the
// group expands to the cross product. Parsing is strict: unknown keys,
// unknown enum values, out-of-range numbers, and duplicate expanded cell
// ids are all ModelViolations naming the manifest — a manifest nobody can
// trust is a trajectory nobody can read.
//
// The full schema (every key, type, default, validation rule) is documented
// in DESIGN.md §14; tools/check_docs.py cross-checks that table against the
// key lists in manifest.cpp, so the two cannot drift apart.

#include <cstdint>
#include <string>
#include <vector>

#include "clique/engine.hpp"
#include "graph/corpus.hpp"
#include "util/json.hpp"

namespace ccq::harness {

/// One fully expanded measurement cell.
struct CellSpec {
  std::string label;      ///< optional manifest-author prefix for id()
  std::string algorithm;  ///< sweep registry key (harness/sweep.hpp)
  corpus::FamilySpec family;
  NodeId n = 64;
  MessagePlaneKind plane = MessagePlaneKind::kFlat;
  ExecutionBackend backend = ExecutionBackend::kPooled;
  bool chaos = false;
  // Default fault profile is flip+drop only: both preserve word counts, so
  // any algorithm survives them structurally (corruption stays semantic).
  // Duplicates add words and are rejected by fixed-framing collectives
  // (broadcast, MM) as ModelViolations — enable chaos_dup only on cells
  // whose protocol tolerates variable inbox sizes (e.g. routing_direct).
  double chaos_flip = 0.02;
  double chaos_drop = 0.01;
  double chaos_dup = 0.0;
  std::size_t workers = 0;
  unsigned bandwidth = 1;
  std::uint64_t seed = 1;

  /// Canonical identity used to match cells across runs (the trajectory
  /// checker's join key): "[label/]algorithm/family/n=../plane/backend/
  /// chaos=on|off[/w=..][/B=..]". Tuning parameters (p, seed, ...) are not
  /// part of the id — cells are *scenarios*; retuning one is a baseline
  /// refresh, not a new scenario.
  std::string id() const;
};

struct Manifest {
  std::string name;
  int trials = 2;
  std::vector<CellSpec> cells;  ///< fully expanded, ids unique
};

/// Parse a manifest from memory; `origin` names the source in errors.
Manifest parse_manifest(const std::string& text, const std::string& origin);

/// Load and parse `path` (ModelViolation on unreadable file or any
/// validation failure).
Manifest load_manifest(const std::string& path);

/// Parse one ccqd job body (an already-parsed JSON object using the cell
/// schema above). Same validation as a manifest cell group, but the object
/// must expand to exactly one cell — axis arrays are rejected. `origin`
/// names the connection in errors.
CellSpec parse_job_cell(const json::Value& job, const std::string& origin);

const char* plane_name(MessagePlaneKind k);
const char* backend_name(ExecutionBackend b);

}  // namespace ccq::harness
