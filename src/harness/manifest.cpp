#include "harness/manifest.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "harness/sweep.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace ccq::harness {

namespace {

// The strict JSON reader lives in util/json.{hpp,cpp} (shared with the
// ccqd service protocol); these aliases keep the validation code below
// reading as before.
using JsonValue = json::Value;
using json::as_bool;
using json::as_number;
using json::as_prob;
using json::as_string;
using json::as_uint;
using json::fail_at;

// Accepted keys — the single source of truth for the schema. The DESIGN.md
// §14 schema table documents exactly these names; tools/check_docs.py
// fails the docs job if either side drifts.
// manifest-keys-begin
constexpr const char* kTopLevelKeys[] = {"name", "trials", "cells"};
constexpr const char* kCellKeys[] = {
    "label",      "algorithm", "family",     "n",         "plane",
    "backend",    "chaos",     "workers",    "bandwidth", "seed",
    "p",          "max_w",     "exponent",   "avg_degree", "k",
    "p_in",       "p_out",     "path",       "chaos_flip", "chaos_drop",
    "chaos_dup"};
// manifest-keys-end

// ---- manifest validation --------------------------------------------------

template <std::size_t N>
void check_keys(const JsonValue& obj, const char* const (&known)[N],
                const char* what, const std::string& origin) {
  for (const auto& [k, v] : obj.obj) {
    if (std::find_if(std::begin(known), std::end(known),
                     [&](const char* s) { return k == s; }) ==
        std::end(known)) {
      std::ostringstream os;
      os << "unknown " << what << " key '" << k << "' (accepted:";
      for (const char* s : known) os << " " << s;
      os << ")";
      fail_at(origin, v.line, os.str());
    }
  }
}

/// Scalar-or-array axis: returns the scalar, or each array element, as
/// JsonValue pointers in manifest order.
std::vector<const JsonValue*> axis_values(const JsonValue* v) {
  std::vector<const JsonValue*> out;
  if (v == nullptr) return out;
  if (v->kind == JsonValue::Kind::kArray) {
    for (const auto& e : v->arr) out.push_back(&e);
  } else {
    out.push_back(v);
  }
  return out;
}

MessagePlaneKind parse_plane(const JsonValue& v, const std::string& origin) {
  const std::string s = as_string(v, "plane", origin);
  if (s == "flat") return MessagePlaneKind::kFlat;
  if (s == "legacy") return MessagePlaneKind::kLegacy;
  fail_at(origin, v.line,
          "unknown plane '" + s + "' (accepted: flat, legacy)");
}

ExecutionBackend parse_backend(const JsonValue& v,
                               const std::string& origin) {
  const std::string s = as_string(v, "backend", origin);
  if (s == "pooled") return ExecutionBackend::kPooled;
  if (s == "sharded") return ExecutionBackend::kSharded;
  if (s == "threaded") return ExecutionBackend::kThreadPerNode;
  fail_at(origin, v.line,
          "unknown backend '" + s + "' (accepted: pooled, sharded, threaded)");
}

std::string read_file(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw ModelViolation(path + ": cannot open manifest");
  std::string data;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, got);
  std::fclose(f);
  return data;
}

}  // namespace

const char* plane_name(MessagePlaneKind k) {
  return k == MessagePlaneKind::kFlat ? "flat" : "legacy";
}

const char* backend_name(ExecutionBackend b) {
  switch (b) {
    case ExecutionBackend::kPooled: return "pooled";
    case ExecutionBackend::kSharded: return "sharded";
    default: return "threaded";
  }
}

std::string CellSpec::id() const {
  std::ostringstream os;
  if (!label.empty()) os << label << "/";
  os << algorithm << "/" << family.name << "/n=" << n << "/"
     << plane_name(plane) << "/" << backend_name(backend)
     << "/chaos=" << (chaos ? "on" : "off");
  if (workers != 0) os << "/w=" << workers;
  if (bandwidth != 1) os << "/B=" << bandwidth;
  return os.str();
}

namespace {

// Expand one cell group (a JSON object with scalar-or-array axis keys) into
// `out`, checking expanded ids against `seen_ids`. Shared by parse_manifest
// (each entry of "cells") and parse_job_cell (a ccqd job body, which must
// expand to exactly one cell).
void expand_cell_group(const JsonValue& group, const std::string& origin,
                       std::set<std::string>& seen_ids,
                       std::vector<CellSpec>& out) {
  if (group.kind != JsonValue::Kind::kObject)
    fail_at(origin, group.line, "each cell must be a JSON object");
  check_keys(group, kCellKeys, "cell", origin);

  CellSpec base;
  if (const JsonValue* v = group.find("label"))
    base.label = as_string(*v, "label", origin);
  if (const JsonValue* v = group.find("workers"))
    base.workers = static_cast<std::size_t>(
        as_uint(*v, 0, 8192, "workers", origin));
  if (const JsonValue* v = group.find("bandwidth"))
    base.bandwidth =
        static_cast<unsigned>(as_uint(*v, 1, 4, "bandwidth", origin));
  if (const JsonValue* v = group.find("seed"))
    base.seed = as_uint(*v, 0, ~std::uint64_t{0}, "seed", origin);
  if (const JsonValue* v = group.find("p"))
    base.family.p = as_prob(*v, "p", origin);
  if (const JsonValue* v = group.find("max_w"))
    base.family.max_w = static_cast<std::uint32_t>(
        as_uint(*v, 1, 0xffffffffu, "max_w", origin));
  if (const JsonValue* v = group.find("exponent")) {
    base.family.exponent = as_number(*v, "exponent", origin);
    if (base.family.exponent <= 1.0)
      fail_at(origin, v->line, "exponent must be > 1");
  }
  if (const JsonValue* v = group.find("avg_degree")) {
    base.family.avg_degree = as_number(*v, "avg_degree", origin);
    if (base.family.avg_degree <= 0)
      fail_at(origin, v->line, "avg_degree must be > 0");
  }
  if (const JsonValue* v = group.find("k"))
    base.family.k =
        static_cast<unsigned>(as_uint(*v, 1, 1u << 20, "k", origin));
  if (const JsonValue* v = group.find("p_in"))
    base.family.p_in = as_prob(*v, "p_in", origin);
  if (const JsonValue* v = group.find("p_out"))
    base.family.p_out = as_prob(*v, "p_out", origin);
  if (const JsonValue* v = group.find("path"))
    base.family.path = as_string(*v, "path", origin);
  if (const JsonValue* v = group.find("chaos_flip"))
    base.chaos_flip = as_prob(*v, "chaos_flip", origin);
  if (const JsonValue* v = group.find("chaos_drop"))
    base.chaos_drop = as_prob(*v, "chaos_drop", origin);
  if (const JsonValue* v = group.find("chaos_dup"))
    base.chaos_dup = as_prob(*v, "chaos_dup", origin);
  base.family.seed = base.seed;

  const JsonValue* alg = group.find("algorithm");
  if (alg == nullptr) fail_at(origin, group.line, "missing 'algorithm'");
  const JsonValue* fam = group.find("family");
  if (fam == nullptr) fail_at(origin, group.line, "missing 'family'");
  const JsonValue* nv = group.find("n");
  if (nv == nullptr) fail_at(origin, group.line, "missing 'n'");

  const auto algs = axis_values(alg);
  const auto fams = axis_values(fam);
  const auto ns = axis_values(nv);
  auto planes = axis_values(group.find("plane"));
  auto backends = axis_values(group.find("backend"));
  auto chaoses = axis_values(group.find("chaos"));

  for (const JsonValue* av : algs) {
    CellSpec a = base;
    a.algorithm = as_string(*av, "algorithm", origin);
    const auto& known = algorithm_names();
    if (std::find(known.begin(), known.end(), a.algorithm) == known.end()) {
      std::ostringstream os;
      os << "unknown algorithm '" << a.algorithm << "' (known:";
      for (const auto& s : known) os << " " << s;
      os << ")";
      fail_at(origin, av->line, os.str());
    }
    for (const JsonValue* fv : fams) {
      CellSpec f = a;
      f.family.name = as_string(*fv, "family", origin);
      const auto& fnames = corpus::family_names();
      if (std::find(fnames.begin(), fnames.end(), f.family.name) ==
          fnames.end()) {
        std::ostringstream os;
        os << "unknown family '" << f.family.name << "' (known:";
        for (const auto& s : fnames) os << " " << s;
        os << ")";
        fail_at(origin, fv->line, os.str());
      }
      for (const JsonValue* nn : ns) {
        CellSpec c = f;
        c.n = static_cast<NodeId>(as_uint(*nn, 1, 8192, "n", origin));
        std::vector<MessagePlaneKind> pl;
        if (planes.empty()) {
          pl.push_back(MessagePlaneKind::kFlat);
        } else {
          for (const JsonValue* pv : planes)
            pl.push_back(parse_plane(*pv, origin));
        }
        std::vector<ExecutionBackend> be;
        if (backends.empty()) {
          be.push_back(ExecutionBackend::kPooled);
        } else {
          for (const JsonValue* bv : backends)
            be.push_back(parse_backend(*bv, origin));
        }
        std::vector<bool> ch;
        if (chaoses.empty()) {
          ch.push_back(false);
        } else {
          for (const JsonValue* cv : chaoses)
            ch.push_back(as_bool(*cv, "chaos", origin));
        }
        for (MessagePlaneKind p : pl)
          for (ExecutionBackend b : be)
            for (bool cx : ch) {
              CellSpec cell = c;
              cell.plane = p;
              cell.backend = b;
              cell.chaos = cx;
              const std::string cid = cell.id();
              if (!seen_ids.insert(cid).second)
                fail_at(origin, group.line,
                        "duplicate expanded cell id '" + cid +
                            "' (use 'label' to disambiguate)");
              out.push_back(std::move(cell));
            }
      }
    }
  }
}

}  // namespace

Manifest parse_manifest(const std::string& text, const std::string& origin) {
  const JsonValue root = json::parse(text, origin);
  if (root.kind != JsonValue::Kind::kObject)
    fail_at(origin, root.line, "manifest must be a JSON object");
  check_keys(root, kTopLevelKeys, "manifest", origin);

  Manifest m;
  const JsonValue* name = root.find("name");
  if (name == nullptr) fail_at(origin, root.line, "missing 'name'");
  m.name = as_string(*name, "name", origin);
  if (const JsonValue* t = root.find("trials"))
    m.trials = static_cast<int>(as_uint(*t, 1, 100, "trials", origin));

  const JsonValue* cells = root.find("cells");
  if (cells == nullptr || cells->kind != JsonValue::Kind::kArray ||
      cells->arr.empty())
    fail_at(origin, root.line, "'cells' must be a non-empty array");

  std::set<std::string> seen_ids;
  for (const JsonValue& group : cells->arr)
    expand_cell_group(group, origin, seen_ids, m.cells);
  return m;
}

CellSpec parse_job_cell(const json::Value& job, const std::string& origin) {
  std::set<std::string> seen_ids;
  std::vector<CellSpec> cells;
  expand_cell_group(job, origin, seen_ids, cells);
  if (cells.size() != 1)
    fail_at(origin, job.line,
            "a job must describe exactly one cell (axis arrays expand to " +
                std::to_string(cells.size()) + "; sweep grids are for "
                "manifests, not ccqd jobs)");
  return cells.front();
}

Manifest load_manifest(const std::string& path) {
  return parse_manifest(read_file(path), path);
}

}  // namespace ccq::harness
