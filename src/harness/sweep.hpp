#pragma once

// Scenario-matrix sweep runner (DESIGN.md §14).
//
// run_cell() executes one manifest cell end to end: instantiate the graph
// family, build the Engine::Config the cell names (plane, backend, workers,
// bandwidth), attach a fresh RoundTrace (and, for chaos cells, a fresh
// ChaosPlan), run the registered algorithm, and cross-check the CostMeter
// against the trace ledger — per cell, every run. A cell whose ledger does
// not reproduce its meter, or whose repeated trials disagree on outputs or
// meters, reports ok == false with a reason; bench_matrix exits non-zero
// on it, so a broken cell can never be committed as a baseline.
//
// Algorithms are node programs over the cell's graph instance, registered
// by name (algorithm_names()): they exercise the routing, broadcast, and
// distributed-MM collectives the benches measure, parameterised only by
// the instance, so every cell is a pure function of its CellSpec.

#include <cstdint>
#include <string>
#include <vector>

#include "clique/chaos.hpp"
#include "clique/cost.hpp"
#include "clique/trace.hpp"
#include "harness/manifest.hpp"

namespace ccq::harness {

/// Registered sweep algorithms: routing_direct, routing_balanced,
/// broadcast_adj, mm_bool_3d, triangle_mm.
const std::vector<std::string>& algorithm_names();

/// Resolve a registered algorithm by name (ModelViolation if unknown).
NodeProgram find_algorithm(const std::string& name);

/// The Engine::Config a cell names: plane, backend, workers (clamped to n),
/// bandwidth, and the cell-derived engine seed. trace/chaos are left null —
/// callers attach per-run instruments.
Engine::Config cell_engine_config(const CellSpec& spec);

/// The cell's deterministic fault schedule (seeded from the cell seed).
ChaosPlan::Config cell_chaos_config(const CellSpec& spec);

/// FNV-1a over the per-node outputs — the cross-run output join key.
std::uint64_t outputs_fp(const std::vector<std::uint64_t>& outputs);

/// FNV-1a over the deterministic fields of every trace record, in ledger
/// order. Two runs of the same cell must produce equal fingerprints on any
/// backend/plane/worker count; ccqd results carry this so a service-side
/// ledger can be compared bit-for-bit against a library-path run.
std::uint64_t ledger_fingerprint(const RoundTrace& trace);

/// Exact CostMeter equality (every deterministic field).
bool meters_equal(const CostMeter& a, const CostMeter& b);

struct CellResult {
  CellSpec spec;
  bool ok = false;          ///< ledger cross-check + trial agreement
  std::string fail_reason;  ///< set when !ok
  CostMeter cost;           ///< deterministic across trials (asserted)
  double wall_ms = 0;       ///< best of trials
  std::uint64_t output_fp = 0;  ///< FNV-1a over the per-node outputs
  std::uint64_t faults = 0;     ///< chaos faults injected (0 when off)
};

/// Run one cell for `trials` repetitions (>= 1). Throws ModelViolation on
/// unknown family/algorithm or unloadable corpus file; engine-level
/// violations surface as ok == false with the exception text.
CellResult run_cell(const CellSpec& spec, int trials);

/// Determinism probe used by bench_matrix --check: rerun the cell at a
/// different worker count and require bit-identical outputs and meters.
/// Returns empty string on agreement, a diagnostic otherwise.
std::string check_worker_determinism(const CellSpec& spec);

}  // namespace ccq::harness
