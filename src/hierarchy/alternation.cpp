#include "hierarchy/alternation.hpp"

#include "util/math.hpp"

namespace ccq {

namespace {

// Recursive exhaustive quantifier evaluation. labels[j] enumerated over all
// 2^{n·bits} assignments; leaf = engine run.
bool quantify(const Graph& g, const KLabelAlgorithm& a,
              std::vector<Labelling>& labels, unsigned j,
              bool existential) {
  const NodeId n = g.n();
  const std::size_t bits = a.label_bits(n);
  if (j == a.k) {
    Instance inst = Instance::of(g);
    inst.labels = labels;
    return Engine::run(inst, a.program).accepted();
  }
  const std::uint64_t count = std::uint64_t{1} << (n * bits);
  for (std::uint64_t code = 0; code < count; ++code) {
    Labelling z(n);
    for (NodeId v = 0; v < n; ++v) {
      BitVector b(bits);
      for (std::size_t i = 0; i < bits; ++i) {
        b.set(i, (code >> (v * bits + i)) & 1);
      }
      z[v] = std::move(b);
    }
    labels[j] = std::move(z);
    const bool sub = quantify(g, a, labels, j + 1, !existential);
    if (existential && sub) return true;
    if (!existential && !sub) return false;
  }
  return !existential;
}

std::size_t edge_count(NodeId n) {
  return static_cast<std::size_t>(n) * (n - 1) / 2;
}

std::size_t edge_index(NodeId u, NodeId v, NodeId n) {
  if (u > v) std::swap(u, v);
  return static_cast<std::size_t>(u) * n -
         static_cast<std::size_t>(u) * (u + 1) / 2 + (v - u - 1);
}

// Endpoints of edge `e` in the canonical order (inverse of edge_index).
std::pair<NodeId, NodeId> edge_endpoints(std::size_t e, NodeId n) {
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t row = n - 1 - u;
    if (e < row) return {u, static_cast<NodeId>(u + 1 + e)};
    e -= row;
  }
  CCQ_CHECK_MSG(false, "edge index out of range");
  return {0, 0};
}

}  // namespace

bool alternating_accepts(const Graph& g, const KLabelAlgorithm& a,
                         bool leading_exists, unsigned max_total_bits) {
  const std::size_t total = a.k * g.n() * a.label_bits(g.n());
  CCQ_CHECK_MSG(total <= max_total_bits,
                "exhaustive alternation limited to " << max_total_bits
                                                     << " total bits");
  std::vector<Labelling> labels(a.k);
  return quantify(g, a, labels, 0, leading_exists);
}

bool accepts_for_all_suffix(const Graph& g, const KLabelAlgorithm& a,
                            const Labelling& z1,
                            unsigned max_total_bits) {
  CCQ_CHECK(a.k >= 2);
  const std::size_t total = (a.k - 1) * g.n() * a.label_bits(g.n());
  // NOTE: label_bits governs the *suffix* labellings here; sigma2_universal
  // has asymmetric sizes, so this helper receives the algorithm with
  // label_bits describing z₂..z_k and z1 passed explicitly.
  CCQ_CHECK_MSG(total <= max_total_bits,
                "exhaustive suffix limited to " << max_total_bits
                                                << " total bits");
  std::vector<Labelling> labels(a.k);
  labels[0] = z1;
  // Enumerate the suffix starting at j=1 with a ∀ quantifier.
  std::function<bool(unsigned, bool)> rec = [&](unsigned j,
                                                bool existential) -> bool {
    const NodeId n = g.n();
    const std::size_t bits = a.label_bits(n);
    if (j == a.k) {
      Instance inst = Instance::of(g);
      inst.labels = labels;
      return Engine::run(inst, a.program).accepted();
    }
    const std::uint64_t count = std::uint64_t{1} << (n * bits);
    for (std::uint64_t code = 0; code < count; ++code) {
      Labelling z(n);
      for (NodeId v = 0; v < n; ++v) {
        BitVector b(bits);
        for (std::size_t i = 0; i < bits; ++i) {
          b.set(i, (code >> (v * bits + i)) & 1);
        }
        z[v] = std::move(b);
      }
      labels[j] = std::move(z);
      const bool sub = rec(j + 1, !existential);
      if (existential && sub) return true;
      if (!existential && !sub) return false;
    }
    return !existential;
  };
  return rec(1, /*existential=*/false);
}

BitVector sigma2_encode_guess(const Graph& g) {
  const NodeId n = g.n();
  BitVector bits(edge_count(n));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      bits.set(edge_index(u, v, n), g.has_edge(u, v));
    }
  }
  return bits;
}

Labelling sigma2_honest_guess(const Graph& g) {
  return Labelling(g.n(), sigma2_encode_guess(g));
}

KLabelAlgorithm sigma2_universal(
    std::string language_name,
    std::function<bool(const Graph&)> language) {
  KLabelAlgorithm a;
  a.name = "sigma2-universal(" + language_name + ")";
  a.k = 2;
  // NOTE (Theorem 7 vs Theorem 8): z₁ is n(n-1)/2 bits per node — beyond
  // the logarithmic hierarchy's O(n log n) budget for large n. z₂ is
  // O(log n). label_bits here reports the *probe* size because the
  // exhaustive-suffix helper quantifies over z₂ only; the engine validates
  // the true sizes per labelling.
  a.label_bits = [](NodeId n) {
    return std::max<std::size_t>(1, ceil_log2(edge_count(n)));
  };
  a.program = [language](NodeCtx& ctx) {
    const NodeId n = ctx.n();
    const std::size_t edges = edge_count(n);
    const std::size_t pbits = std::max<std::size_t>(1, ceil_log2(edges));
    const BitVector& guess = ctx.label(0);
    CCQ_CHECK_MSG(guess.size() == edges, "sigma2: bad guess size");

    // Universal probe: broadcast (index, my guess's bit at index).
    std::size_t idx =
        static_cast<std::size_t>(ctx.label(1).read_bits(
            0, static_cast<unsigned>(pbits)));
    if (edges > 0) idx %= edges;
    BitVector probe;
    probe.append_bits(idx, static_cast<unsigned>(pbits));
    probe.push_back(edges > 0 && guess.get(idx));
    auto all = ctx.broadcast(probe);

    bool ok = true;
    for (NodeId v = 0; v < n && edges > 0; ++v) {
      std::size_t vi = static_cast<std::size_t>(
          all[v].read_bits(0, static_cast<unsigned>(pbits)));
      vi %= edges;
      const bool val = all[v].get(pbits);
      // Consistent with my own guess?
      if (guess.get(vi) != val) {
        ok = false;
        break;
      }
      // Consistent with my local view of the true graph?
      const auto [eu, ev] = edge_endpoints(vi, n);
      if (eu == ctx.id() || ev == ctx.id()) {
        const NodeId other = eu == ctx.id() ? ev : eu;
        if (ctx.adj_row().get(other) != val) {
          ok = false;
          break;
        }
      }
    }

    if (!ok) {
      ctx.decide(false);
      return;
    }
    // Decode my guess and decide the language locally.
    Graph gp = Graph::undirected(n);
    for (std::size_t e = 0; e < edges; ++e) {
      if (guess.get(e)) {
        const auto [eu, ev] = edge_endpoints(e, n);
        gp.add_edge(eu, ev);
      }
    }
    ctx.decide(language(gp));
  };
  return a;
}

}  // namespace ccq
