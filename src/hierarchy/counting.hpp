#pragma once

// Lemma 1 and the counting side of Theorems 2, 4 and 8.
//
// Lemma 1 (Applebaum et al. [1]): the number of (n,b,L,t)-protocols is at
// most 2^{2bn·2^{L+bt(n-1)}}, while the number of functions
// {0,1}^{nL} → {0,1} is 2^{2^{nL}}. Whenever the first exponent is o() of
// the second, *most* functions have no protocol — the engine of every
// separation in the paper. The theorem-specific parameter choices
// (L = T·log n etc.) are reproduced as table rows for the benches.

#include <cstdint>
#include <vector>

#include "hierarchy/protocol.hpp"
#include "util/big_uint.hpp"
#include "util/log2_real.hpp"

namespace ccq {

/// log₂ of the Lemma 1 protocol-count bound: 2bn·2^{L+bt(n-1)}.
/// Overflows double once the exponent passes ~1024 — use the loglog
/// variants for theorem-scale parameters.
double lemma1_log2_protocols(double n, double b, double L, double t);

/// log₂ of the function count: 2^{nL}.
double log2_functions(double n, double L);

/// log₂log₂ of the same counts — finite for every parameter scale; the
/// comparison loglog(protocols) < loglog(functions) is equivalent because
/// both counts exceed 2.
double lemma1_loglog_protocols(double n, double b, double L, double t);
double loglog_functions(double n, double L);

/// Exact counts as arbitrary-precision integers (small exponents only).
BigUInt lemma1_protocols_exact(unsigned n, unsigned b, unsigned L,
                               unsigned t);
BigUInt functions_exact(unsigned n, unsigned L);

// ---- theorem parameterisations (each row is one bench table line) -------

/// Theorem 2 (deterministic hierarchy): L = T·⌈log₂n⌉, lower-bound budget
/// t = T/2. A hard function exists whenever protocols ≪ functions.
struct Thm2Row {
  std::uint64_t n, T, L;
  double loglog_protocols;  ///< log₂log₂ of the count, at t = T/2
  double loglog_funcs;      ///< log₂log₂ of 2^{2^{nL}} = nL
  bool hard_function_exists;  ///< protocols < functions
};
Thm2Row thm2_row(std::uint64_t n, std::uint64_t T);

/// Theorem 4 (nondeterministic): label budget M = ¼·T·n·log n; protocols
/// over M+L input bits at t = T/4 are counted against 2^{nL} functions.
/// The theorem's inequality M + L + T(n-1)·log n < ¾·T·n·log n must hold.
struct Thm4Row {
  std::uint64_t n, T, L, M;
  double loglog_nondet_protocols;
  double loglog_funcs;
  bool inequality_holds;  ///< the ¾·nL budget check from the proof
  bool hard_function_exists;
};
Thm4Row thm4_row(std::uint64_t n, std::uint64_t T);

/// Theorem 8 (logarithmic hierarchy): L = T²·log n, M = ¼·T·n·log n;
/// for every k ≤ T the count of (n, log n, kM+L, T²/4)-protocols stays
/// 2^{o(2^{nL})}.
struct Thm8Row {
  std::uint64_t n, T, k, L, M;
  double loglog_protocols;
  double loglog_funcs;
  bool inequality_holds;  ///< kM + L + ¼T²(n-1)log n < ¾·nL
  bool hard_function_exists;
};
Thm8Row thm8_row(std::uint64_t n, std::uint64_t T, std::uint64_t k);

// ---- toy-scale achievability with quantifiers ----------------------------

/// Functions over {0,1}^{nL} computable by some nondeterministic
/// (n,b,M+L,t)-protocol: f(x)=1 ⇔ ∃z ∈ {0,1}^{nM} : P(z₁x₁,...) accepts
/// (acceptance = all nodes output 1). Returns the achievability bitmap in
/// the same index convention as ProtocolSpace::achievable_functions.
std::vector<bool> achievable_nondet_functions(unsigned n, unsigned b,
                                              unsigned L, unsigned M,
                                              unsigned t,
                                              unsigned max_genome_bits = 24);

/// Functions Σ_k-computable by an (n,b,kM+L,t)-protocol:
/// f(x)=1 ⇔ ∃z₁∀z₂...Q z_k : P accepts.
std::vector<bool> achievable_sigma_functions(unsigned n, unsigned b,
                                             unsigned L, unsigned M,
                                             unsigned t, unsigned k,
                                             unsigned max_genome_bits = 24);

/// Π_k variant (leading universal quantifier):
/// f(x)=1 ⇔ ∀z₁∃z₂...Q z_k : P accepts. §6.2's duality — L ∈ Σ_k iff
/// L̄ ∈ Π_k — holds exactly on these bitmaps (tested).
std::vector<bool> achievable_pi_functions(unsigned n, unsigned b,
                                          unsigned L, unsigned M,
                                          unsigned t, unsigned k,
                                          unsigned max_genome_bits = 24);

}  // namespace ccq
