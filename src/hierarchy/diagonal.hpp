#pragma once

// Theorem 2, run constructively at toy scale.
//
// The proof constructs a language L by, for each n, picking the
// lexicographically-first function f_n : {0,1}^{nL} → {0,1} with no
// (n, log n, L, T/2)-protocol, and putting G ∈ L iff f_n evaluates to 1 on
// the L-bit prefixes of the nodes' private inputs. L is decidable in
// ~⌈L/B⌉ rounds (broadcast the prefixes, recompute f_n locally by
// exhaustive enumeration — the paper's own algorithm), but by construction
// no protocol within the lower budget computes f_n.
//
// We instantiate the construction exactly, at parameters where the protocol
// enumeration is exhaustive, and run the deciding algorithm on the metered
// engine.

#include <optional>

#include "clique/engine.hpp"
#include "hierarchy/protocol.hpp"

namespace ccq {

class ToyDiagonalisation {
 public:
  /// Build the diagonal language for an n-node clique with L prefix bits
  /// per node and lower-bound budget t_lower rounds (bandwidth b = 1 in the
  /// protocol space, matching ⌈log₂n⌉ = 1 at n = 2; for n > 2 the space
  /// uses b = ⌈log₂n⌉).
  static std::optional<ToyDiagonalisation> make(NodeId n, unsigned L,
                                                unsigned t_lower);

  const ProtocolSpace& space() const { return space_; }
  const BitVector& hard_function() const { return hard_fn_; }

  /// The per-node L-bit prefix inputs derived from the graph (§3 private
  /// bit encoding, zero padded — see balanced_private_prefixes).
  std::uint64_t input_code(const Graph& g) const;

  /// Membership by direct evaluation (the language's definition).
  bool in_language(const Graph& g) const;

  /// The Theorem 2 upper-bound algorithm on the engine: every node
  /// broadcasts its prefix and evaluates f_n locally.
  RunResult decide_clique(const Graph& g) const;

  /// Certified lower bound: no protocol in space() computes f_n (true by
  /// construction; re-verified in tests via the achievability bitmap).
  bool hard_by_construction() const { return true; }

 private:
  ToyDiagonalisation(ProtocolSpace space, BitVector hard_fn, unsigned L)
      : space_(space), hard_fn_(std::move(hard_fn)), L_(L) {}

  ProtocolSpace space_;
  BitVector hard_fn_;
  unsigned L_;
};

/// Balanced §3 private-bit assignment: the bit of edge {u,v}, u<v, belongs
/// to u when u+v is even and to v otherwise; every node's bits are listed
/// by increasing partner id and zero-padded to `bits` length.
std::vector<BitVector> balanced_private_prefixes(const Graph& g,
                                                 unsigned bits);

}  // namespace ccq
