#include "hierarchy/protocol.hpp"

namespace ccq {

ProtocolSpace::ProtocolSpace(unsigned n_, unsigned b_, unsigned L_,
                             unsigned t_)
    : n(n_), b(b_), L(L_), t(t_) {
  CCQ_CHECK(n >= 2 && b >= 1);
  CCQ_CHECK_MSG(L + transcript_bits(t) <= 24,
                "protocol table domain too large to enumerate");
  CCQ_CHECK_MSG(n * L <= 20, "input space too large");
}

std::size_t ProtocolSpace::genome_bits() const {
  std::size_t bits = 0;
  // Message tables: node v, round r, destination u (≠ v).
  for (unsigned r = 0; r < t; ++r) {
    bits += static_cast<std::size_t>(n) * (n - 1) * b * message_domain(r);
  }
  // Output tables.
  bits += static_cast<std::size_t>(n) * message_domain(t);
  return bits;
}

namespace {

// Table offsets mirror genome_bits(): all message tables in (r, v, dst)
// order, then output tables by v.
struct GenomeLayout {
  const ProtocolSpace& s;

  // Offset of the message table for (round r, node v, k-th destination).
  std::size_t message_table(unsigned r, unsigned v, unsigned dst_k) const {
    std::size_t off = 0;
    for (unsigned rr = 0; rr < r; ++rr)
      off += static_cast<std::size_t>(s.n) * (s.n - 1) * s.b *
             s.message_domain(rr);
    off += (static_cast<std::size_t>(v) * (s.n - 1) + dst_k) * s.b *
           s.message_domain(r);
    return off;
  }

  std::size_t output_table(unsigned v) const {
    std::size_t off = 0;
    for (unsigned rr = 0; rr < s.t; ++rr)
      off += static_cast<std::size_t>(s.n) * (s.n - 1) * s.b *
             s.message_domain(rr);
    off += static_cast<std::size_t>(v) * s.message_domain(s.t);
    return off;
  }
};

}  // namespace

std::vector<bool> ProtocolSpace::evaluate(const BitVector& genome,
                                          std::uint64_t x) const {
  CCQ_CHECK(genome.size() == genome_bits());
  CCQ_CHECK(x < input_count());
  const GenomeLayout layout{*this};

  // Per-node table key: own input (L low bits) then received transcript
  // bits appended round by round.
  std::vector<std::uint64_t> key(n);
  const std::uint64_t in_mask = (std::uint64_t{1} << L) - 1;
  for (unsigned v = 0; v < n; ++v) {
    key[v] = (x >> (v * L)) & in_mask;
  }

  for (unsigned r = 0; r < t; ++r) {
    // Compute all messages of round r from current keys.
    // msg[v][k] = b bits from v to its k-th destination.
    std::vector<std::vector<std::uint64_t>> msg(
        n, std::vector<std::uint64_t>(n - 1, 0));
    for (unsigned v = 0; v < n; ++v) {
      for (unsigned k = 0; k < n - 1; ++k) {
        const std::size_t base = layout.message_table(r, v, k);
        msg[v][k] =
            genome.read_bits(base + static_cast<std::size_t>(key[v]) * b,
                             b);
      }
    }
    // Append received bits (senders in increasing id order) to each key.
    for (unsigned v = 0; v < n; ++v) {
      unsigned shift = static_cast<unsigned>(L + transcript_bits(r));
      for (unsigned u = 0; u < n; ++u) {
        if (u == v) continue;
        // v is u's k-th destination where k skips u itself.
        const unsigned k = v < u ? v : v - 1;
        key[v] |= msg[u][k] << shift;
        shift += b;
      }
    }
  }

  std::vector<bool> outputs(n);
  for (unsigned v = 0; v < n; ++v) {
    const std::size_t base = layout.output_table(v);
    outputs[v] = genome.get(base + static_cast<std::size_t>(key[v]));
  }
  return outputs;
}

std::optional<BitVector> ProtocolSpace::computed_function(
    const BitVector& genome) const {
  BitVector table(input_count());
  for (std::uint64_t x = 0; x < input_count(); ++x) {
    auto outs = evaluate(genome, x);
    for (unsigned v = 1; v < n; ++v) {
      if (outs[v] != outs[0]) return std::nullopt;  // disagreement
    }
    table.set(x, outs[0]);
  }
  return table;
}

BitVector ProtocolSpace::genome_from_code(std::uint64_t code) const {
  const std::size_t gb = genome_bits();
  CCQ_CHECK_MSG(gb <= 64, "genome too large for integer codes");
  BitVector genome(gb);
  for (std::size_t i = 0; i < gb; ++i) genome.set(i, (code >> i) & 1);
  return genome;
}

std::vector<bool> ProtocolSpace::achievable_functions(
    unsigned max_genome_bits) const {
  const std::size_t gb = genome_bits();
  CCQ_CHECK_MSG(gb <= max_genome_bits,
                "enumeration limited to 2^" << max_genome_bits
                                            << " protocols, need 2^" << gb);
  CCQ_CHECK_MSG(input_count() <= 20,
                "function-table bitmap limited to 2^20 entries");
  std::vector<bool> achievable(std::size_t{1} << input_count(), false);
  const std::uint64_t genomes = std::uint64_t{1} << gb;
  for (std::uint64_t code = 0; code < genomes; ++code) {
    auto table = computed_function(genome_from_code(code));
    if (table) achievable[index_from_table(*table)] = true;
  }
  return achievable;
}

std::optional<BitVector> ProtocolSpace::first_hard_function(
    unsigned max_genome_bits) const {
  auto achievable = achievable_functions(max_genome_bits);
  const std::size_t inputs = input_count();
  // Lexicographic order: table bit 0 (input 0) is the most significant.
  for (std::uint64_t j = 0; j < achievable.size(); ++j) {
    BitVector table(inputs);
    for (std::size_t i = 0; i < inputs; ++i) {
      table.set(i, (j >> (inputs - 1 - i)) & 1);
    }
    if (!achievable[index_from_table(table)]) return table;
  }
  return std::nullopt;
}

BitVector table_from_index(std::uint64_t index, std::size_t inputs) {
  BitVector table(inputs);
  for (std::size_t i = 0; i < inputs; ++i) table.set(i, (index >> i) & 1);
  return table;
}

std::uint64_t index_from_table(const BitVector& table) {
  CCQ_CHECK(table.size() <= 64);
  std::uint64_t idx = 0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table.get(i)) idx |= std::uint64_t{1} << i;
  }
  return idx;
}

}  // namespace ccq
