#include "hierarchy/diagonal.hpp"

#include "util/math.hpp"

namespace ccq {

std::vector<BitVector> balanced_private_prefixes(const Graph& g,
                                                 unsigned bits) {
  const NodeId n = g.n();
  std::vector<BitVector> prefixes(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const NodeId owner = ((u + v) % 2 == 0) ? u : v;
      prefixes[owner].push_back(g.has_edge(u, v));
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    // Truncate or zero-pad to exactly `bits` (Theorem 2 uses the L-bit
    // prefix; at toy scale some nodes own fewer bits, which only means the
    // function ignores the padding positions).
    BitVector p(bits);
    for (unsigned i = 0; i < bits && i < prefixes[v].size(); ++i) {
      p.set(i, prefixes[v].get(i));
    }
    prefixes[v] = std::move(p);
  }
  return prefixes;
}

std::optional<ToyDiagonalisation> ToyDiagonalisation::make(NodeId n,
                                                           unsigned L,
                                                           unsigned t_lower) {
  const unsigned b = node_id_bits(n);
  ProtocolSpace space(n, b, L, t_lower);
  auto hard = space.first_hard_function();
  if (!hard) return std::nullopt;  // every function achievable: no diagonal
  return ToyDiagonalisation(space, std::move(*hard), L);
}

std::uint64_t ToyDiagonalisation::input_code(const Graph& g) const {
  CCQ_CHECK(g.n() == space_.n);
  auto prefixes = balanced_private_prefixes(g, L_);
  std::uint64_t x = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    x |= prefixes[v].read_bits(0, L_) << (v * L_);
  }
  return x;
}

bool ToyDiagonalisation::in_language(const Graph& g) const {
  return hard_fn_.get(input_code(g));
}

RunResult ToyDiagonalisation::decide_clique(const Graph& g) const {
  CCQ_CHECK(g.n() == space_.n);
  const unsigned L = L_;
  const BitVector& table = hard_fn_;
  auto prefixes = balanced_private_prefixes(g, L);

  Instance inst = Instance::of(g);
  inst.private_bits = prefixes;

  return Engine::run(inst, [L, &table](NodeCtx& ctx) {
    // Step 1 (Theorem 2): broadcast the L-bit prefix.
    auto all = ctx.broadcast(ctx.private_bits());
    // Step 2: locally evaluate f_n. (In the paper each node re-derives f_n
    // by enumerating all protocols — deterministic local computation; we
    // pass the identical precomputed table, which every node could have
    // recomputed itself.)
    std::uint64_t x = 0;
    for (NodeId v = 0; v < ctx.n(); ++v) {
      x |= all[v].read_bits(0, L) << (v * L);
    }
    ctx.decide(table.get(x));
  });
}

}  // namespace ccq
