#include "hierarchy/counting.hpp"

#include <cmath>

#include "util/math.hpp"

namespace ccq {

double lemma1_log2_protocols(double n, double b, double L, double t) {
  return 2.0 * b * n * std::exp2(L + b * t * (n - 1));
}

double log2_functions(double n, double L) { return std::exp2(n * L); }

double lemma1_loglog_protocols(double n, double b, double L, double t) {
  return std::log2(2.0 * b * n) + L + b * t * (n - 1);
}

double loglog_functions(double n, double L) { return n * L; }

BigUInt lemma1_protocols_exact(unsigned n, unsigned b, unsigned L,
                               unsigned t) {
  const std::uint64_t exponent =
      2ull * b * n *
      (std::uint64_t{1} << (L + static_cast<std::uint64_t>(b) * t * (n - 1)));
  return BigUInt::pow2(exponent);
}

BigUInt functions_exact(unsigned n, unsigned L) {
  return BigUInt::pow2(std::uint64_t{1} << (static_cast<std::uint64_t>(n) *
                                            L));
}

Thm2Row thm2_row(std::uint64_t n, std::uint64_t T) {
  Thm2Row row;
  row.n = n;
  row.T = T;
  const double logn = static_cast<double>(ceil_log2(n));
  row.L = T * static_cast<std::uint64_t>(logn);
  row.loglog_protocols = lemma1_loglog_protocols(
      static_cast<double>(n), logn, static_cast<double>(row.L),
      static_cast<double>(T) / 2.0);
  row.loglog_funcs =
      loglog_functions(static_cast<double>(n), static_cast<double>(row.L));
  row.hard_function_exists = row.loglog_protocols < row.loglog_funcs;
  return row;
}

Thm4Row thm4_row(std::uint64_t n, std::uint64_t T) {
  Thm4Row row;
  row.n = n;
  row.T = T;
  const double logn = static_cast<double>(ceil_log2(n));
  row.L = T * static_cast<std::uint64_t>(logn);
  row.M = static_cast<std::uint64_t>(
      std::llround(0.25 * static_cast<double>(T) * static_cast<double>(n) *
                   logn));
  row.loglog_nondet_protocols = lemma1_loglog_protocols(
      static_cast<double>(n), logn,
      static_cast<double>(row.M) + static_cast<double>(row.L),
      static_cast<double>(T) / 4.0);
  row.loglog_funcs =
      loglog_functions(static_cast<double>(n), static_cast<double>(row.L));
  // The proof's inequality with the t = T/4 round budget:
  // M + L + (T/4)(n-1)log n ≤ (1/2 + 1/n)·T·n·log n < ¾·T·n·log n = ¾·nL.
  const double lhs = static_cast<double>(row.M) +
                     static_cast<double>(row.L) +
                     0.25 * static_cast<double>(T) * (n - 1) * logn;
  const double rhs =
      0.75 * static_cast<double>(n) * static_cast<double>(row.L);
  row.inequality_holds = lhs < rhs;
  row.hard_function_exists = row.loglog_nondet_protocols < row.loglog_funcs;
  return row;
}

Thm8Row thm8_row(std::uint64_t n, std::uint64_t T, std::uint64_t k) {
  Thm8Row row;
  row.n = n;
  row.T = T;
  row.k = k;
  const double logn = static_cast<double>(ceil_log2(n));
  row.L = T * T * static_cast<std::uint64_t>(logn);
  row.M = static_cast<std::uint64_t>(
      std::llround(0.25 * static_cast<double>(T) * static_cast<double>(n) *
                   logn));
  row.loglog_protocols = lemma1_loglog_protocols(
      static_cast<double>(n), logn,
      static_cast<double>(k) * row.M + static_cast<double>(row.L),
      static_cast<double>(T) * static_cast<double>(T) / 4.0);
  row.loglog_funcs =
      loglog_functions(static_cast<double>(n), static_cast<double>(row.L));
  const double lhs = static_cast<double>(k) * row.M +
                     static_cast<double>(row.L) +
                     0.25 * static_cast<double>(T) * T * (n - 1) * logn;
  const double rhs =
      0.75 * static_cast<double>(n) * static_cast<double>(row.L);
  row.inequality_holds = lhs < rhs;
  row.hard_function_exists = row.loglog_protocols < row.loglog_funcs;
  return row;
}

namespace {

// Shared quantifier evaluation: protocols over per-node inputs
// (z_1..z_k | x), z blocks low bits first, x in the high bits.
struct QuantifiedSpace {
  ProtocolSpace space;
  unsigned n, L, M, k;

  QuantifiedSpace(unsigned n_, unsigned b, unsigned L_, unsigned M_,
                  unsigned t, unsigned k_)
      : space(n_, b, L_ + k_ * M_, t), n(n_), L(L_), M(M_), k(k_) {}

  // Combine per-node x bits and a full z-block assignment into a protocol
  // input. zs[j] packs all nodes' j-th labels (M bits per node).
  std::uint64_t combine(std::uint64_t x,
                        const std::vector<std::uint64_t>& zs) const {
    std::uint64_t input = 0;
    const unsigned per = L + k * M;
    for (unsigned v = 0; v < n; ++v) {
      std::uint64_t node_bits = 0;
      unsigned off = 0;
      for (unsigned j = 0; j < k; ++j) {
        node_bits |= ((zs[j] >> (v * M)) & ((std::uint64_t{1} << M) - 1))
                     << off;
        off += M;
      }
      node_bits |= ((x >> (v * L)) & ((std::uint64_t{1} << L) - 1)) << off;
      input |= node_bits << (v * per);
    }
    return input;
  }

  bool accepts(const BitVector& genome, std::uint64_t input) const {
    auto outs = space.evaluate(genome, input);
    for (bool o : outs) {
      if (!o) return false;
    }
    return true;
  }

  // Quantified evaluation from level j; `lead_exists` fixes whether level
  // 0 is existential (Σ) or universal (Π).
  bool quantified(const BitVector& genome, std::uint64_t x,
                  std::vector<std::uint64_t>& zs, unsigned j,
                  bool lead_exists = true) const {
    if (j == k) return accepts(genome, combine(x, zs));
    const std::uint64_t count = std::uint64_t{1} << (n * M);
    const bool existential = (j % 2 == 0) == lead_exists;
    for (std::uint64_t z = 0; z < count; ++z) {
      zs[j] = z;
      const bool sub = quantified(genome, x, zs, j + 1, lead_exists);
      if (existential && sub) return true;
      if (!existential && !sub) return false;
    }
    return !existential;
  }
};

std::vector<bool> achievable_quantified(unsigned n, unsigned b, unsigned L,
                                        unsigned M, unsigned t, unsigned k,
                                        unsigned max_genome_bits,
                                        bool lead_exists = true) {
  QuantifiedSpace qs(n, b, L, M, t, k);
  const std::size_t gb = qs.space.genome_bits();
  CCQ_CHECK_MSG(gb <= max_genome_bits,
                "quantified enumeration limited to 2^" << max_genome_bits);
  const std::size_t x_count = std::size_t{1} << (n * L);
  CCQ_CHECK_MSG(x_count <= 20, "function-table bitmap limited to 2^20");
  std::vector<bool> achievable(std::size_t{1} << x_count, false);
  const std::uint64_t genomes = std::uint64_t{1} << gb;
  std::vector<std::uint64_t> zs(k, 0);
  for (std::uint64_t code = 0; code < genomes; ++code) {
    const BitVector genome = qs.space.genome_from_code(code);
    BitVector table(x_count);
    for (std::uint64_t x = 0; x < x_count; ++x) {
      table.set(x, qs.quantified(genome, x, zs, 0, lead_exists));
    }
    achievable[index_from_table(table)] = true;
  }
  return achievable;
}

}  // namespace

std::vector<bool> achievable_nondet_functions(unsigned n, unsigned b,
                                              unsigned L, unsigned M,
                                              unsigned t,
                                              unsigned max_genome_bits) {
  return achievable_quantified(n, b, L, M, t, 1, max_genome_bits);
}

std::vector<bool> achievable_sigma_functions(unsigned n, unsigned b,
                                             unsigned L, unsigned M,
                                             unsigned t, unsigned k,
                                             unsigned max_genome_bits) {
  return achievable_quantified(n, b, L, M, t, k, max_genome_bits, true);
}

std::vector<bool> achievable_pi_functions(unsigned n, unsigned b,
                                          unsigned L, unsigned M,
                                          unsigned t, unsigned k,
                                          unsigned max_genome_bits) {
  return achievable_quantified(n, b, L, M, t, k, max_genome_bits, false);
}

}  // namespace ccq
