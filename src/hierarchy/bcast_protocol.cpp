#include "hierarchy/bcast_protocol.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace ccq {

namespace {

struct OneRoundSetting {
  unsigned n, b, L;
  std::size_t inputs;  // 2^{nL}

  OneRoundSetting(unsigned n_, unsigned b_, unsigned L_)
      : n(n_), b(b_), L(L_), inputs(std::size_t{1} << (n_ * L_)) {
    CCQ_CHECK(n >= 2 && b >= 1 && L >= 1);
    CCQ_CHECK_MSG(n * L <= 4, "one-round analysis limited to nL ≤ 4");
  }

  std::uint64_t node_input(std::uint64_t x, unsigned v) const {
    return (x >> (v * L)) & ((std::uint64_t{1} << L) - 1);
  }
};

struct Dsu {
  std::vector<unsigned> p;
  explicit Dsu(std::size_t n) : p(n) { std::iota(p.begin(), p.end(), 0u); }
  unsigned find(unsigned x) {
    while (p[x] != x) {
      p[x] = p[p[x]];
      x = p[x];
    }
    return x;
  }
  void unite(unsigned a, unsigned b) { p[find(a)] = find(b); }
};

// Mark every function constant on the view-equivalence components of one
// message scheme. view(v, x) is supplied by the caller.
template <typename ViewFn>
void mark_scheme(const OneRoundSetting& s, ViewFn view,
                 std::vector<bool>& achievable) {
  // Union inputs that some node cannot distinguish.
  Dsu dsu(s.inputs);
  for (unsigned v = 0; v < s.n; ++v) {
    // Group inputs by view; same view → same output at v → same f value.
    std::vector<std::pair<std::uint64_t, unsigned>> keyed;
    keyed.reserve(s.inputs);
    for (std::uint64_t x = 0; x < s.inputs; ++x) {
      keyed.emplace_back(view(v, x), static_cast<unsigned>(x));
    }
    std::sort(keyed.begin(), keyed.end());
    for (std::size_t i = 1; i < keyed.size(); ++i) {
      if (keyed[i].first == keyed[i - 1].first) {
        dsu.unite(keyed[i].second, keyed[i - 1].second);
      }
    }
  }
  // Enumerate components and all 2^{#components} constant-per-component
  // tables.
  std::vector<unsigned> comp_of(s.inputs);
  std::vector<unsigned> comps;
  for (std::uint64_t x = 0; x < s.inputs; ++x) {
    const unsigned root = dsu.find(static_cast<unsigned>(x));
    auto it = std::find(comps.begin(), comps.end(), root);
    if (it == comps.end()) {
      comp_of[x] = static_cast<unsigned>(comps.size());
      comps.push_back(root);
    } else {
      comp_of[x] = static_cast<unsigned>(it - comps.begin());
    }
  }
  const std::size_t ncomp = comps.size();
  for (std::uint64_t assign = 0; assign < (std::uint64_t{1} << ncomp);
       ++assign) {
    std::uint64_t table = 0;
    for (std::uint64_t x = 0; x < s.inputs; ++x) {
      if ((assign >> comp_of[x]) & 1) table |= std::uint64_t{1} << x;
    }
    achievable[table] = true;
  }
}

}  // namespace

std::vector<bool> achievable_one_round_broadcast(unsigned n, unsigned b,
                                                 unsigned L) {
  const OneRoundSetting s(n, b, L);
  // Scheme: per node a map 2^L -> 2^b; total bits n·b·2^L.
  const unsigned scheme_bits = n * b * (1u << L);
  CCQ_CHECK_MSG(scheme_bits <= 24, "broadcast scheme space too large");
  std::vector<bool> achievable(std::size_t{1} << s.inputs, false);
  const std::uint64_t bmask = (std::uint64_t{1} << b) - 1;
  for (std::uint64_t scheme = 0; scheme < (std::uint64_t{1} << scheme_bits);
       ++scheme) {
    auto message = [&](unsigned v, std::uint64_t xin) {
      const unsigned slot = v * (1u << L) + static_cast<unsigned>(xin);
      return (scheme >> (slot * b)) & bmask;
    };
    auto view = [&](unsigned v, std::uint64_t x) {
      // Own input + everyone's broadcast word (including own — harmless).
      std::uint64_t key = s.node_input(x, v);
      unsigned shift = L;
      for (unsigned u = 0; u < s.n; ++u) {
        if (u == v) continue;
        key |= message(u, s.node_input(x, u)) << shift;
        shift += b;
      }
      return key;
    };
    mark_scheme(s, view, achievable);
  }
  return achievable;
}

std::vector<bool> achievable_one_round_unicast(unsigned n, unsigned b,
                                               unsigned L) {
  const OneRoundSetting s(n, b, L);
  // Scheme: per (node, destination) a map 2^L -> 2^b.
  const unsigned scheme_bits = n * (n - 1) * b * (1u << L);
  CCQ_CHECK_MSG(scheme_bits <= 24, "unicast scheme space too large");
  std::vector<bool> achievable(std::size_t{1} << s.inputs, false);
  const std::uint64_t bmask = (std::uint64_t{1} << b) - 1;
  for (std::uint64_t scheme = 0; scheme < (std::uint64_t{1} << scheme_bits);
       ++scheme) {
    auto message = [&](unsigned v, unsigned dst_k, std::uint64_t xin) {
      const unsigned slot =
          (v * (s.n - 1) + dst_k) * (1u << L) + static_cast<unsigned>(xin);
      return (scheme >> (slot * b)) & bmask;
    };
    auto view = [&](unsigned v, std::uint64_t x) {
      std::uint64_t key = s.node_input(x, v);
      unsigned shift = L;
      for (unsigned u = 0; u < s.n; ++u) {
        if (u == v) continue;
        const unsigned k = v < u ? v : v - 1;  // v's index among u's dsts
        key |= message(u, k, s.node_input(x, u)) << shift;
        shift += b;
      }
      return key;
    };
    mark_scheme(s, view, achievable);
  }
  return achievable;
}

ModelGap one_round_model_gap(unsigned n, unsigned b, unsigned L) {
  auto uni = achievable_one_round_unicast(n, b, L);
  auto bc = achievable_one_round_broadcast(n, b, L);
  ModelGap gap;
  for (std::size_t i = 0; i < uni.size(); ++i) {
    gap.unicast_count += uni[i];
    gap.broadcast_count += bc[i];
    if (uni[i] && !bc[i]) gap.separating_functions.push_back(i);
    CCQ_CHECK_MSG(!(bc[i] && !uni[i]),
                  "broadcast protocols are a subset of unicast");
  }
  return gap;
}

}  // namespace ccq
